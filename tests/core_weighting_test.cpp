#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/path_weighting.h"
#include "core/subcarrier_weighting.h"

namespace mulink::core {
namespace {

TEST(SubcarrierWeights, SinglePacketProportionalToMu) {
  const std::vector<double> mu = {0.1, 0.2, 0.3, 0.4};
  const auto w = ComputeSubcarrierWeightsSinglePacket(mu);
  ASSERT_EQ(w.weights.size(), 4u);
  // With one packet, r_k is 1 for mu above the median, 0 otherwise; the
  // mean mu is mu itself. Above-median subcarriers carry all the weight.
  EXPECT_EQ(w.stability[0], 0.0);
  EXPECT_EQ(w.stability[1], 0.0);
  EXPECT_EQ(w.stability[2], 1.0);
  EXPECT_EQ(w.stability[3], 1.0);
  EXPECT_GT(w.weights[3], w.weights[2]);
  EXPECT_EQ(w.weights[0], 0.0);
}

TEST(SubcarrierWeights, MeanMuIsTemporalMean) {
  const std::vector<std::vector<double>> mu = {{0.1, 0.5}, {0.3, 0.7}};
  const auto w = ComputeSubcarrierWeights(mu);
  EXPECT_NEAR(w.mean_mu[0], 0.2, 1e-12);
  EXPECT_NEAR(w.mean_mu[1], 0.6, 1e-12);
}

TEST(SubcarrierWeights, StabilityCountsAboveMedianVotes) {
  // Subcarrier 2 is above the per-packet median every time; subcarrier 0
  // never; subcarrier 1 half the time.
  const std::vector<std::vector<double>> mu = {
      {0.1, 0.5, 0.9},
      {0.1, 0.2, 0.9},
      {0.1, 0.5, 0.9},
      {0.1, 0.2, 0.9},
  };
  const auto w = ComputeSubcarrierWeights(mu);
  EXPECT_NEAR(w.stability[0], 0.0, 1e-12);
  EXPECT_NEAR(w.stability[1], 0.0, 1e-12);  // 0.5 and 0.2: never > median?
  EXPECT_NEAR(w.stability[2], 1.0, 1e-12);
}

TEST(SubcarrierWeights, ConsistentlyLargeMuBeatsFlickering) {
  // Two subcarriers with the same mean mu: one steady, one flickering.
  // The steady one must get at least as much weight (Eq. 15's intent).
  std::vector<std::vector<double>> mu;
  for (int m = 0; m < 10; ++m) {
    // sc0 steady at 0.5; sc1 alternates 0.05 / 0.95; sc2,3 background 0.2.
    mu.push_back({0.5, (m % 2 == 0) ? 0.05 : 0.95, 0.2, 0.2});
  }
  const auto w = ComputeSubcarrierWeights(mu);
  EXPECT_NEAR(w.mean_mu[0], w.mean_mu[1], 1e-12);
  EXPECT_GT(w.stability[0], w.stability[1]);
  EXPECT_GT(w.weights[0], w.weights[1]);
}

TEST(SubcarrierWeights, WeightsSumBounded) {
  Rng rng(7);
  std::vector<std::vector<double>> mu(20, std::vector<double>(30));
  for (auto& row : mu) {
    for (auto& v : row) v = rng.Uniform(0.0, 1.0);
  }
  const auto w = ComputeSubcarrierWeights(mu);
  double sum = 0.0;
  for (double v : w.weights) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  // sum_k mu_k r_k <= sum_k mu_k * sum_k r_k (both factors positive), so the
  // normalized weights sum to <= 1.
  EXPECT_LE(sum, 1.0 + 1e-12);
  EXPECT_GT(sum, 0.0);
}

TEST(SubcarrierWeights, DegenerateAllZeroFallsBackToUniform) {
  const std::vector<std::vector<double>> mu = {{0.0, 0.0, 0.0}};
  const auto w = ComputeSubcarrierWeights(mu);
  for (double v : w.weights) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(SubcarrierWeights, RaggedInputThrows) {
  EXPECT_THROW(ComputeSubcarrierWeights({{0.1, 0.2}, {0.1}}),
               PreconditionError);
  EXPECT_THROW(ComputeSubcarrierWeights(std::vector<std::vector<double>>{}),
               PreconditionError);
}

TEST(SubcarrierWeights, ApplyMultipliesElementwise) {
  SubcarrierWeights w;
  w.weights = {0.5, 0.25, 0.25};
  const auto out = ApplySubcarrierWeights(w, {2.0, -4.0, 8.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0], 1.0, 1e-12);
  EXPECT_NEAR(out[1], -1.0, 1e-12);
  EXPECT_NEAR(out[2], 2.0, 1e-12);
}

TEST(SubcarrierWeights, ApplySizeMismatchThrows) {
  SubcarrierWeights w;
  w.weights = {0.5, 0.5};
  EXPECT_THROW(ApplySubcarrierWeights(w, {1.0}), PreconditionError);
}

Pseudospectrum MakeSpectrum(std::vector<double> theta,
                            std::vector<double> power) {
  Pseudospectrum s;
  s.theta_deg = std::move(theta);
  s.power = std::move(power);
  return s;
}

TEST(PathWeights, InverseOfStaticSpectrumInsideWindow) {
  const auto s = MakeSpectrum({-90, -60, 0, 60, 90}, {1, 2, 4, 2, 1});
  const auto w = ComputePathWeights(s);
  ASSERT_EQ(w.weights.size(), 5u);
  EXPECT_EQ(w.weights[0], 0.0);  // outside [-60, 60]
  EXPECT_EQ(w.weights[4], 0.0);
  EXPECT_NEAR(w.weights[1], 0.5, 1e-12);
  EXPECT_NEAR(w.weights[2], 0.25, 1e-12);
  EXPECT_NEAR(w.weights[3], 0.5, 1e-12);
}

TEST(PathWeights, WindowBoundsConfigurable) {
  PathWeightingConfig config;
  config.theta_min_deg = -30.0;
  config.theta_max_deg = 30.0;
  const auto s = MakeSpectrum({-60, -30, 0, 30, 60}, {1, 1, 1, 1, 1});
  const auto w = ComputePathWeights(s, config);
  EXPECT_EQ(w.weights[0], 0.0);
  EXPECT_GT(w.weights[1], 0.0);
  EXPECT_GT(w.weights[2], 0.0);
  EXPECT_GT(w.weights[3], 0.0);
  EXPECT_EQ(w.weights[4], 0.0);
}

TEST(PathWeights, FloorPreventsBlowup) {
  PathWeightingConfig config;
  config.spectrum_floor_ratio = 0.01;
  const auto s = MakeSpectrum({-10, 0, 10}, {1e-9, 100.0, 1e-9});
  const auto w = ComputePathWeights(s, config);
  // Floor = 1.0 -> weight at the nulls is 1/1.0, not 1e9.
  EXPECT_NEAR(w.weights[0], 1.0, 1e-9);
  EXPECT_NEAR(w.weights[2], 1.0, 1e-9);
}

TEST(PathWeights, DeemphasizesLosBoostsNlos) {
  // The core coverage mechanism: the strong LOS direction gets the smallest
  // weight, weak NLOS directions the largest (within the window). Use a tiny
  // floor so the weak directions are not clipped.
  PathWeightingConfig config;
  config.spectrum_floor_ratio = 1e-3;
  const auto s = MakeSpectrum({-45, 0, 45}, {2.0, 50.0, 1.0});
  const auto w = ComputePathWeights(s, config);
  EXPECT_LT(w.weights[1], w.weights[0]);
  EXPECT_LT(w.weights[0], w.weights[2]);
}

TEST(PathWeights, ApplyWeightsElementwise) {
  const auto s = MakeSpectrum({-45, 0, 45}, {2.0, 4.0, 8.0});
  PathWeights w;
  w.theta_deg = s.theta_deg;
  w.weights = {1.0, 0.5, 0.0};
  const auto out = ApplyPathWeights(w, s);
  EXPECT_NEAR(out[0], 2.0, 1e-12);
  EXPECT_NEAR(out[1], 2.0, 1e-12);
  EXPECT_NEAR(out[2], 0.0, 1e-12);
}

TEST(PathWeights, EqualizedStaticSpectrumIsFlat) {
  // w(theta) * Ps(theta) == 1 inside the window, by construction — the
  // "uniform detection coverage" intuition of Sec. IV-B2. A tiny floor
  // keeps all of these directions un-clipped.
  PathWeightingConfig config;
  config.spectrum_floor_ratio = 1e-3;
  const auto s = MakeSpectrum({-50, -20, 0, 20, 50}, {1.0, 3.0, 10.0, 2.0, 0.5});
  const auto w = ComputePathWeights(s, config);
  const auto flat = ApplyPathWeights(w, s);
  for (double v : flat) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(PathWeights, ValidatesArguments) {
  EXPECT_THROW(ComputePathWeights(MakeSpectrum({}, {})), PreconditionError);
  PathWeightingConfig bad;
  bad.theta_min_deg = 10.0;
  bad.theta_max_deg = -10.0;
  EXPECT_THROW(ComputePathWeights(MakeSpectrum({0}, {1}), bad),
               PreconditionError);
}

}  // namespace
}  // namespace mulink::core
