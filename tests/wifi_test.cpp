#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/rng.h"
#include "propagation/path.h"
#include "wifi/array.h"
#include "wifi/band.h"
#include "wifi/cfr.h"
#include "wifi/csi.h"
#include "wifi/noise.h"

namespace mulink::wifi {
namespace {

TEST(BandPlan, Intel5300Layout) {
  const auto band = BandPlan::Intel5300Channel11();
  EXPECT_EQ(band.NumSubcarriers(), 30u);
  EXPECT_DOUBLE_EQ(band.center_hz(), kChannel11CenterHz);
  EXPECT_DOUBLE_EQ(band.FrequencyHz(0),
                   kChannel11CenterHz - 28 * kSubcarrierSpacingHz);
  EXPECT_DOUBLE_EQ(band.FrequencyHz(29),
                   kChannel11CenterHz + 28 * kSubcarrierSpacingHz);
  EXPECT_DOUBLE_EQ(band.OffsetHz(14), -kSubcarrierSpacingHz);
  EXPECT_NEAR(band.CenterWavelength(), kWavelength, 1e-15);
}

TEST(BandPlan, AllFrequenciesConsistent) {
  const auto band = BandPlan::Intel5300Channel11();
  const auto fs = band.AllFrequenciesHz();
  const auto offs = band.AllOffsetsHz();
  ASSERT_EQ(fs.size(), 30u);
  for (std::size_t k = 0; k < 30; ++k) {
    EXPECT_DOUBLE_EQ(fs[k], band.center_hz() + offs[k]);
  }
}

TEST(BandPlan, CustomPlanValidation) {
  EXPECT_THROW(BandPlan(0.0, {1}, 1.0), PreconditionError);
  EXPECT_THROW(BandPlan(1e9, {}, 1.0), PreconditionError);
  EXPECT_THROW(BandPlan(1e9, {1}, -1.0), PreconditionError);
}

TEST(Ula, AntennaOffsetsCenteredAndOrdered) {
  const UniformLinearArray array(3, 0.06, 0.0);
  EXPECT_NEAR(array.AntennaOffset(0), -0.06, 1e-12);
  EXPECT_NEAR(array.AntennaOffset(1), 0.0, 1e-12);
  EXPECT_NEAR(array.AntennaOffset(2), 0.06, 1e-12);
  double sum = 0.0;
  for (std::size_t m = 0; m < 3; ++m) sum += array.AntennaOffset(m);
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(Ula, BroadsideAngleOfHeadOnRay) {
  // Array axis along +y; broadside faces +x or -x. A ray travelling in -x
  // (source at +x) hits broadside: theta = 0.
  const UniformLinearArray array = UniformLinearArray::HalfWavelength3(kPi / 2);
  EXPECT_NEAR(array.BroadsideAngle(kPi), 0.0, 1e-12);
  EXPECT_NEAR(array.BroadsideAngle(0.0), 0.0, 1e-12);
}

TEST(Ula, BroadsideAngleSigns) {
  // Axis along +y. Source up the axis (+y): ray travels -y, toward_source =
  // +y = axis direction -> theta = +90 deg.
  const UniformLinearArray array = UniformLinearArray::HalfWavelength3(kPi / 2);
  EXPECT_NEAR(array.BroadsideAngle(-kPi / 2), kPi / 2, 1e-9);
  EXPECT_NEAR(array.BroadsideAngle(kPi / 2), -kPi / 2, 1e-9);
}

TEST(Ula, SteeringVectorAtBroadsideIsFlat) {
  const UniformLinearArray array = UniformLinearArray::HalfWavelength3(0.0);
  const auto a = array.SteeringVector(0.0, kChannel11CenterHz);
  ASSERT_EQ(a.size(), 3u);
  for (const auto& v : a) {
    EXPECT_NEAR(std::abs(v - Complex(1.0, 0.0)), 0.0, 1e-12);
  }
}

TEST(Ula, SteeringVectorPhaseProgressionMatchesEq16) {
  // At half-wavelength spacing the inter-element phase shift is
  // pi * sin(theta) (paper Eq. 16).
  const UniformLinearArray array = UniformLinearArray::HalfWavelength3(0.0);
  for (double theta_deg : {-60.0, -30.0, 0.0, 15.0, 45.0, 75.0}) {
    const double theta = DegToRad(theta_deg);
    const auto a = array.SteeringVector(theta, kChannel11CenterHz);
    const double measured = std::arg(a[1] * std::conj(a[0]));
    double expected = kPi * std::sin(theta);
    // Compare on the unit circle to dodge wrap-around.
    EXPECT_NEAR(std::abs(std::polar(1.0, measured) - std::polar(1.0, expected)),
                0.0, 1e-9)
        << "theta=" << theta_deg;
  }
}

TEST(Ula, SteeringVectorUnitModulus) {
  const UniformLinearArray array(4, 0.05, 0.3);
  const auto a = array.SteeringVector(0.7, kChannel11CenterHz);
  for (const auto& v : a) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Ula, RejectsBadConstruction) {
  EXPECT_THROW(UniformLinearArray(0, 0.06, 0.0), PreconditionError);
  EXPECT_THROW(UniformLinearArray(3, 0.0, 0.0), PreconditionError);
}

TEST(Cfr, SinglePathAmplitude) {
  propagation::Path p;
  p.kind = propagation::PathKind::kLineOfSight;
  p.vertices = {{0, 0}, {3, 0}};
  p.length_m = 3.0;
  p.gain_at_center = 0.01;
  p.arrival_direction_rad = 0.0;

  const auto band = BandPlan::Intel5300Channel11();
  const auto cfr = SynthesizeCfrSingle({p}, band);
  ASSERT_EQ(cfr.size(), 30u);
  for (std::size_t k = 0; k < 30; ++k) {
    // |H| = gain at f_k (1/f scaling, tiny across the band).
    EXPECT_NEAR(std::abs(cfr[k]), p.GainAt(band.FrequencyHz(k)), 1e-12);
  }
}

TEST(Cfr, SinglePathPhaseSlopeEncodesDelay) {
  propagation::Path p;
  p.vertices = {{0, 0}, {3, 0}};
  p.length_m = 3.0;
  p.gain_at_center = 1.0;
  const auto band = BandPlan::Intel5300Channel11();
  const auto cfr = SynthesizeCfrSingle({p}, band);
  // Phase difference between adjacent reported subcarriers k=0,1 (2 bins):
  // -2 pi (2 df) d / c.
  const double dphi = std::arg(cfr[1] * std::conj(cfr[0]));
  const double expected =
      -2.0 * kPi * (2.0 * kSubcarrierSpacingHz) * 3.0 / kSpeedOfLight;
  EXPECT_NEAR(dphi, expected, 1e-9);
}

TEST(Cfr, TwoPathInterferenceVariesAcrossBand) {
  propagation::Path los, refl;
  los.vertices = {{0, 0}, {4, 0}};
  los.length_m = 4.0;
  los.gain_at_center = 1.0;
  refl = los;
  refl.kind = propagation::PathKind::kWallReflection;
  // 17 m excess rotates the relative phase through a full 2 pi across the
  // 17.5 MHz reported span, guaranteeing both constructive and destructive
  // subcarriers somewhere in the band.
  refl.length_m = 21.0;
  refl.gain_at_center = 0.5;

  const auto band = BandPlan::Intel5300Channel11();
  const auto cfr = SynthesizeCfrSingle({los, refl}, band);
  double min_amp = 1e9, max_amp = 0.0;
  for (const auto& h : cfr) {
    min_amp = std::min(min_amp, std::abs(h));
    max_amp = std::max(max_amp, std::abs(h));
  }
  // Frequency-selective fading: somewhere near constructive (1.5) and
  // somewhere near destructive (0.5).
  EXPECT_GT(max_amp, 1.3);
  EXPECT_LT(min_amp, 0.7);
}

TEST(Cfr, MultiAntennaPhaseEncodesAoa) {
  propagation::Path p;
  p.vertices = {{0, 0}, {3, 0}};
  p.length_m = 3.0;
  p.gain_at_center = 1.0;
  // Ray travelling in +x; array axis chosen so it arrives at 30 degrees.
  const double theta = DegToRad(30.0);
  // toward_source = pi; want cos(pi - axis) = sin(theta).
  const double axis = kPi - std::acos(std::sin(theta));
  const UniformLinearArray array = UniformLinearArray::HalfWavelength3(axis);
  p.arrival_direction_rad = 0.0;

  const auto band = BandPlan::Intel5300Channel11();
  const auto h = SynthesizeCfr({p}, band, array);
  ASSERT_EQ(h.rows(), 3u);
  const double measured = std::arg(h.At(1, 15) * std::conj(h.At(0, 15)));
  const double expected = kPi * std::sin(theta) *
                          band.FrequencyHz(15) / kChannel11CenterHz;
  EXPECT_NEAR(std::abs(std::polar(1.0, measured) - std::polar(1.0, expected)),
              0.0, 1e-6);
}

TEST(Cfr, EmptyPathSetThrows) {
  const auto band = BandPlan::Intel5300Channel11();
  EXPECT_THROW(SynthesizeCfrSingle({}, band), PreconditionError);
}

TEST(CsiPacket, AccessorsAndPower) {
  CsiPacket packet;
  packet.csi = linalg::CMatrix(2, 3);
  packet.csi.At(0, 0) = {3.0, 4.0};
  packet.csi.At(1, 2) = {0.0, 2.0};
  EXPECT_EQ(packet.NumAntennas(), 2u);
  EXPECT_EQ(packet.NumSubcarriers(), 3u);
  EXPECT_NEAR(packet.SubcarrierPower(0, 0), 25.0, 1e-12);
  EXPECT_NEAR(packet.SubcarrierPowerDb(0, 0), 10.0 * std::log10(25.0), 1e-9);
  EXPECT_NEAR(packet.TotalPower(), 29.0, 1e-12);
  const auto row = packet.AntennaCfr(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_NEAR(std::abs(row[2] - Complex(0.0, 2.0)), 0.0, 1e-15);
}

TEST(Noise, ZeroNoiseConfigIsIdentity) {
  linalg::CMatrix cfr(2, 4);
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t k = 0; k < 4; ++k) {
      cfr.At(m, k) = Complex(1.0 + static_cast<double>(k), 0.5);
    }
  }
  const linalg::CMatrix original = cfr;
  NoiseModel quiet;
  quiet.snr_db = 300.0;  // effectively no AWGN
  quiet.random_common_phase = false;
  quiet.sto_range_s = 0.0;
  quiet.gain_drift_db = 0.0;
  Rng rng(1);
  ApplyNoise(cfr, std::vector<double>(4, 0.0), quiet, rng);
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(std::abs(cfr.At(m, k) - original.At(m, k)), 0.0, 1e-9);
    }
  }
}

TEST(Noise, AwgnAtConfiguredSnr) {
  const std::size_t trials = 4000;
  const double snr_db = 20.0;
  double signal_power = 0.0, error_power = 0.0;
  Rng rng(5);
  for (std::size_t t = 0; t < trials; ++t) {
    linalg::CMatrix cfr(1, 8);
    for (std::size_t k = 0; k < 8; ++k) cfr.At(0, k) = Complex(1.0, 0.0);
    NoiseModel model;
    model.snr_db = snr_db;
    model.random_common_phase = false;
    model.sto_range_s = 0.0;
    model.gain_drift_db = 0.0;
    ApplyNoise(cfr, std::vector<double>(8, 0.0), model, rng);
    for (std::size_t k = 0; k < 8; ++k) {
      signal_power += 1.0;
      error_power += std::norm(cfr.At(0, k) - Complex(1.0, 0.0));
    }
  }
  const double measured_snr_db = 10.0 * std::log10(signal_power / error_power);
  EXPECT_NEAR(measured_snr_db, snr_db, 0.5);
}

TEST(Noise, CommonPhaseSharedAcrossAntennasAndSubcarriers) {
  linalg::CMatrix cfr(3, 5);
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t k = 0; k < 5; ++k) cfr.At(m, k) = Complex(1.0, 0.0);
  }
  NoiseModel model;
  model.snr_db = 300.0;
  model.random_common_phase = true;
  model.sto_range_s = 0.0;
  model.gain_drift_db = 0.0;
  Rng rng(9);
  ApplyNoise(cfr, std::vector<double>(5, 0.0), model, rng);
  const double phase0 = std::arg(cfr.At(0, 0));
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t k = 0; k < 5; ++k) {
      EXPECT_NEAR(std::arg(cfr.At(m, k)), phase0, 1e-9);
    }
  }
}

TEST(Noise, StoAddsLinearPhaseAcrossOffsets) {
  linalg::CMatrix cfr(1, 3);
  for (std::size_t k = 0; k < 3; ++k) cfr.At(0, k) = Complex(1.0, 0.0);
  const std::vector<double> offsets = {-1e6, 0.0, 1e6};
  NoiseModel model;
  model.snr_db = 300.0;
  model.random_common_phase = false;
  model.sto_range_s = 50e-9;
  model.gain_drift_db = 0.0;
  Rng rng(13);
  ApplyNoise(cfr, offsets, model, rng);
  // Center subcarrier (offset 0) untouched; edges rotated oppositely.
  EXPECT_NEAR(std::arg(cfr.At(0, 1)), 0.0, 1e-9);
  const double left = std::arg(cfr.At(0, 0));
  const double right = std::arg(cfr.At(0, 2));
  EXPECT_NEAR(left, -right, 1e-9);
  EXPECT_GT(std::abs(left), 0.0);
}

}  // namespace
}  // namespace mulink::wifi
