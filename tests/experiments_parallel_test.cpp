// Determinism regression for ParallelCampaignRunner: the campaign result —
// every scored window, in order — must be bit-identical across thread
// counts AND identical to the serial RunCampaign, because RNG streams are
// pre-forked per case and collection is ordered.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "experiments/campaign.h"
#include "experiments/parallel_runner.h"
#include "obs/metrics.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

// A small two-case campaign that still exercises calibration, negatives and
// positives on every scheme.
struct SmallCampaign {
  std::vector<ex::LinkCase> cases;
  std::vector<std::vector<ex::HumanSpot>> spots;
  std::vector<core::DetectionScheme> schemes = {
      core::DetectionScheme::kBaseline,
      core::DetectionScheme::kSubcarrierWeighting,
      core::DetectionScheme::kSubcarrierAndPathWeighting,
  };
  ex::CampaignConfig config;

  SmallCampaign() {
    cases = {ex::MakeClassroomLink(), ex::MakeShortWallLink()};
    for (const auto& c : cases) {
      spots.push_back({ex::MakeSpot(c, {2.0, 4.5}), ex::MakeSpot(c, {1.2, 3.0})});
    }
    config.packets_per_location = 100;
    config.calibration_packets = 100;
    config.empty_packets = 100;
    config.window_packets = 25;
    config.seed = 1234;
  }
};

void ExpectIdentical(const ex::CampaignResult& a, const ex::CampaignResult& b) {
  ASSERT_EQ(a.schemes.size(), b.schemes.size());
  for (std::size_t s = 0; s < a.schemes.size(); ++s) {
    EXPECT_EQ(a.schemes[s].scheme, b.schemes[s].scheme);
    ASSERT_EQ(a.schemes[s].positives.size(), b.schemes[s].positives.size());
    ASSERT_EQ(a.schemes[s].negatives.size(), b.schemes[s].negatives.size());
    for (std::size_t i = 0; i < a.schemes[s].positives.size(); ++i) {
      const auto& wa = a.schemes[s].positives[i];
      const auto& wb = b.schemes[s].positives[i];
      EXPECT_EQ(wa.score, wb.score) << "positive " << i;
      EXPECT_EQ(wa.case_index, wb.case_index);
      EXPECT_EQ(wa.distance_to_rx_m, wb.distance_to_rx_m);
      EXPECT_EQ(wa.angle_deg, wb.angle_deg);
    }
    for (std::size_t i = 0; i < a.schemes[s].negatives.size(); ++i) {
      EXPECT_EQ(a.schemes[s].negatives[i].score,
                b.schemes[s].negatives[i].score)
          << "negative " << i;
      EXPECT_EQ(a.schemes[s].negatives[i].case_index,
                b.schemes[s].negatives[i].case_index);
    }
  }
}

TEST(ParallelCampaignRunner, BitIdenticalAcrossThreadCounts) {
  const SmallCampaign c;
  const auto serial =
      ex::RunCampaign(c.cases, c.spots, c.schemes, c.config);
  ASSERT_FALSE(serial.schemes.empty());
  ASSERT_FALSE(serial.schemes[0].positives.empty());
  ASSERT_FALSE(serial.schemes[0].negatives.empty());

  for (std::size_t threads : {1u, 2u, 8u}) {
    const ex::ParallelCampaignRunner runner(threads);
    EXPECT_EQ(runner.num_threads(), threads);
    const auto parallel = runner.Run(c.cases, c.spots, c.schemes, c.config);
    ExpectIdentical(serial, parallel);
  }
}

// Histogram counts (how many times each stage ran) are part of the
// determinism contract; the recorded nanoseconds are wall-clock
// observations and deliberately are not.
void ExpectIdenticalMetrics(const obs::Registry& a, const obs::Registry& b) {
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(a.counters()[i], b.counters()[i])
        << "counter " << obs::ToString(static_cast<obs::Counter>(i));
  }
  for (std::size_t i = 0; i < obs::kNumStages; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    EXPECT_EQ(a.StageLatency(stage).count, b.StageLatency(stage).count)
        << "stage " << obs::ToString(stage);
  }
}

TEST(ParallelCampaignRunner, MetricTotalsBitIdenticalAcrossThreadCounts) {
  const SmallCampaign c;
  const auto serial = ex::RunCampaign(c.cases, c.spots, c.schemes, c.config);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(serial.metrics.Get(obs::Counter::kCasesRun), 0u);
    EXPECT_GT(serial.metrics.Get(obs::Counter::kWindowsScored), 0u);
    EXPECT_GT(serial.metrics.Get(obs::Counter::kCalibrations), 0u);
  }
  for (std::size_t threads : {1u, 2u, 4u}) {
    const ex::ParallelCampaignRunner runner(threads);
    const auto parallel = runner.Run(c.cases, c.spots, c.schemes, c.config);
    ExpectIdenticalMetrics(serial.metrics, parallel.metrics);
  }
}

TEST(ParallelCampaignRunner, TraceCollectionCoversEveryCase) {
  SmallCampaign c;
  c.config.collect_trace = true;
  const ex::ParallelCampaignRunner runner(2);
  const auto result = runner.Run(c.cases, c.spots, c.schemes, c.config);
  if constexpr (obs::kEnabled) {
    ASSERT_FALSE(result.trace.empty());
    std::vector<bool> seen(c.cases.size(), false);
    for (const auto& event : result.trace) {
      if (event.stage == obs::Stage::kCase && event.scope >= 0) {
        seen[static_cast<std::size_t>(event.scope)] = true;
      }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_TRUE(seen[i]) << "no kCase span for case " << i;
    }
  } else {
    EXPECT_TRUE(result.trace.empty());
  }
}

TEST(ParallelCampaignRunner, RepeatedRunsAreIdentical) {
  const SmallCampaign c;
  const ex::ParallelCampaignRunner runner(4);
  const auto first = runner.Run(c.cases, c.spots, c.schemes, c.config);
  const auto second = runner.Run(c.cases, c.spots, c.schemes, c.config);
  ExpectIdentical(first, second);
}

TEST(ParallelCampaignRunner, ParallelForCoversAllIndicesOnce) {
  const ex::ParallelCampaignRunner runner(8);
  std::vector<int> hits(100, 0);
  runner.ParallelFor(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelCampaignRunner, ParallelForPropagatesExceptions) {
  const ex::ParallelCampaignRunner runner(4);
  EXPECT_THROW(
      runner.ParallelFor(16,
                         [](std::size_t i) {
                           if (i == 7) throw PreconditionError("boom");
                         }),
      PreconditionError);
}

TEST(ParallelCampaignRunner, ValidatesInputs) {
  const SmallCampaign c;
  const ex::ParallelCampaignRunner runner(2);
  EXPECT_THROW(runner.Run(c.cases, {}, c.schemes, c.config),
               PreconditionError);
}

}  // namespace
