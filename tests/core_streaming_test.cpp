// Streaming detector + multi-link fusion tests.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/fusion.h"
#include "core/streaming.h"
#include "experiments/scenario.h"

namespace mulink::core {
namespace {

namespace ex = mulink::experiments;

struct Rig {
  Rig()
      : link(ex::MakeClassroomLink()),
        sim(ex::MakeSimulator(link)),
        rng(1234) {
    DetectorConfig config;
    config.scheme = DetectionScheme::kSubcarrierAndPathWeighting;
    detector.emplace(Detector::Calibrate(
        sim.CaptureSession(300, std::nullopt, rng), sim.band(), sim.array(),
        config));
    for (int i = 0; i < 12; ++i) {
      empty_windows.push_back(sim.CaptureSession(25, std::nullopt, rng));
    }
    detector->CalibrateThreshold(empty_windows);
    for (const auto& w : empty_windows) {
      empty_scores.push_back(detector->Score(w));
    }
  }

  ex::LinkCase link;
  nic::ChannelSimulator sim;
  Rng rng;
  std::optional<Detector> detector;
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  std::vector<double> empty_scores;
};

TEST(Streaming, DecisionCadenceFollowsHop) {
  Rig rig;
  StreamingConfig config;
  config.window_packets = 25;
  config.hop_packets = 25;
  StreamingDetector stream(*rig.detector, rig.empty_scores, config);

  int decisions = 0;
  for (int i = 0; i < 100; ++i) {
    const auto packet = rig.sim.CapturePacket(std::nullopt, rig.rng);
    if (stream.Push(packet).has_value()) ++decisions;
  }
  EXPECT_EQ(decisions, 4);  // 100 packets / hop 25
}

TEST(Streaming, OverlappingHopProducesMoreDecisions) {
  Rig rig;
  StreamingConfig config;
  config.window_packets = 25;
  config.hop_packets = 5;
  StreamingDetector stream(*rig.detector, rig.empty_scores, config);
  int decisions = 0;
  for (int i = 0; i < 100; ++i) {
    if (stream.Push(rig.sim.CapturePacket(std::nullopt, rig.rng))
            .has_value()) {
      ++decisions;
    }
  }
  // First decision after 25 packets, then every 5: 1 + (100-25)/5 = 16.
  EXPECT_EQ(decisions, 16);
}

TEST(Streaming, DetectsPersonAndRecovers) {
  Rig rig;
  StreamingConfig config;
  StreamingDetector stream(*rig.detector, rig.empty_scores, config);

  // Empty room: stays idle.
  for (int i = 0; i < 75; ++i) {
    stream.Push(rig.sim.CapturePacket(std::nullopt, rig.rng));
  }
  EXPECT_FALSE(stream.occupied());

  // Person on the LOS: flips occupied within a few windows.
  propagation::HumanBody body;
  body.position = (rig.link.tx + rig.link.rx) * 0.5;
  for (int i = 0; i < 100; ++i) {
    stream.Push(rig.sim.CapturePacket(body, rig.rng));
  }
  EXPECT_TRUE(stream.occupied());
  EXPECT_GT(stream.posterior(), 0.8);

  // Person leaves: posterior decays back.
  for (int i = 0; i < 200; ++i) {
    stream.Push(rig.sim.CapturePacket(std::nullopt, rig.rng));
  }
  EXPECT_FALSE(stream.occupied());
}

TEST(Streaming, ResetClearsState) {
  Rig rig;
  StreamingDetector stream(*rig.detector, rig.empty_scores, {});
  propagation::HumanBody body;
  body.position = (rig.link.tx + rig.link.rx) * 0.5;
  for (int i = 0; i < 100; ++i) {
    stream.Push(rig.sim.CapturePacket(body, rig.rng));
  }
  EXPECT_TRUE(stream.occupied());
  stream.Reset();
  EXPECT_FALSE(stream.occupied());
  // Needs a full window again before the next decision.
  const auto decision =
      stream.Push(rig.sim.CapturePacket(std::nullopt, rig.rng));
  EXPECT_FALSE(decision.has_value());
}

TEST(Streaming, RawThresholdModeWorksWithoutHmm) {
  Rig rig;
  StreamingConfig config;
  config.use_hmm = false;
  StreamingDetector stream(*rig.detector, {}, config);
  propagation::HumanBody body;
  body.position = (rig.link.tx + rig.link.rx) * 0.5;
  std::optional<PresenceDecision> last;
  for (int i = 0; i < 50; ++i) {
    auto d = stream.Push(rig.sim.CapturePacket(body, rig.rng));
    if (d.has_value()) last = d;
  }
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(last->occupied);
  EXPECT_EQ(last->posterior, 1.0);
}

TEST(Streaming, ValidatesConfig) {
  Rig rig;
  StreamingConfig bad;
  bad.hop_packets = 30;  // > window
  EXPECT_THROW(StreamingDetector(*rig.detector, rig.empty_scores, bad),
               PreconditionError);
  StreamingConfig one;
  one.window_packets = 1;
  EXPECT_THROW(StreamingDetector(*rig.detector, rig.empty_scores, one),
               PreconditionError);
}

TEST(Fusion, RuleNames) {
  EXPECT_STREQ(ToString(FusionRule::kAny), "any");
  EXPECT_STREQ(ToString(FusionRule::kMajority), "majority");
  EXPECT_STREQ(ToString(FusionRule::kMeanScore), "mean-score");
  EXPECT_STREQ(ToString(FusionRule::kMaxScore), "max-score");
}

class FusionTest : public ::testing::Test {
 protected:
  FusionTest() : rng_(77) {
    // Two links across the classroom sharing a room but crossing paths.
    auto lc1 = ex::MakeClassroomLink();
    auto lc2 = lc1;
    lc2.tx = {3.0, 1.0};
    lc2.rx = {3.0, 7.0};
    for (auto* lc : {&lc1, &lc2}) {
      sims_.emplace_back(ex::MakeSimulator(*lc));
      DetectorConfig config;
      config.scheme = DetectionScheme::kSubcarrierWeighting;
      auto det = Detector::Calibrate(
          sims_.back().CaptureSession(200, std::nullopt, rng_),
          sims_.back().band(), sims_.back().array(), config);
      std::vector<std::vector<wifi::CsiPacket>> empties;
      for (int i = 0; i < 8; ++i) {
        empties.push_back(sims_.back().CaptureSession(25, std::nullopt, rng_));
      }
      det.CalibrateThreshold(empties);
      detectors_.push_back(std::move(det));
    }
  }

  std::vector<std::vector<wifi::CsiPacket>> Windows(
      const std::optional<propagation::HumanBody>& human) {
    std::vector<std::vector<wifi::CsiPacket>> windows;
    for (auto& sim : sims_) {
      windows.push_back(sim.CaptureSession(25, human, rng_));
    }
    return windows;
  }

  Rng rng_;
  std::vector<nic::ChannelSimulator> sims_;
  std::vector<Detector> detectors_;
};

TEST_F(FusionTest, AnyRuleDetectsWhenOneLinkSees) {
  MultiLinkDetector fused(FusionRule::kAny);
  fused.AddLink(detectors_[0]);
  fused.AddLink(detectors_[1]);
  ASSERT_EQ(fused.NumLinks(), 2u);

  // A person on link 1's LOS but far from link 2.
  propagation::HumanBody body;
  body.position = {4.5, 4.0};
  EXPECT_TRUE(fused.Detect(Windows(body)));
  // Empty room: quiet.
  EXPECT_FALSE(fused.Detect(Windows(std::nullopt)));
}

TEST_F(FusionTest, NormalizedScoresUseLinkThresholds) {
  MultiLinkDetector fused(FusionRule::kMeanScore);
  fused.AddLink(detectors_[0]);
  fused.AddLink(detectors_[1]);
  const auto scores = fused.NormalizedScores(Windows(std::nullopt));
  ASSERT_EQ(scores.size(), 2u);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 1.5);  // empty windows sit near/below each link's threshold
  }
}

TEST_F(FusionTest, MaxScoreRuleMatchesStrongestLink) {
  MultiLinkDetector fused(FusionRule::kMaxScore);
  fused.AddLink(detectors_[0]);
  fused.AddLink(detectors_[1]);
  const auto windows = Windows(std::nullopt);
  const auto scores = fused.NormalizedScores(windows);
  EXPECT_NEAR(fused.FusedScore(windows),
              std::max(scores[0], scores[1]), 1e-12);
}

TEST_F(FusionTest, RequiresThresholdedLinks) {
  MultiLinkDetector fused(FusionRule::kAny);
  DetectorConfig config;
  auto raw = Detector::Calibrate(
      sims_[0].CaptureSession(50, std::nullopt, rng_), sims_[0].band(),
      sims_[0].array(), config);
  EXPECT_THROW(fused.AddLink(raw), PreconditionError);
}

TEST_F(FusionTest, WindowCountMustMatchLinks) {
  MultiLinkDetector fused(FusionRule::kAny);
  fused.AddLink(detectors_[0]);
  fused.AddLink(detectors_[1]);
  std::vector<std::vector<wifi::CsiPacket>> one;
  one.push_back(sims_[0].CaptureSession(25, std::nullopt, rng_));
  EXPECT_THROW(fused.Detect(one), PreconditionError);
}

}  // namespace
}  // namespace mulink::core
