#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/rng.h"
#include "dsp/delay_domain.h"
#include "dsp/fit.h"
#include "dsp/peaks.h"
#include "dsp/stats.h"

namespace mulink::dsp {
namespace {

TEST(Stats, MeanVarianceStdDev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(Mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(Variance(xs), 4.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), 2.0, 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_NEAR(Median({3.0, 1.0, 2.0}), 2.0, 1e-12);
  EXPECT_NEAR(Median({4.0, 1.0, 3.0, 2.0}), 2.5, 1e-12);
  EXPECT_NEAR(Median({7.0}), 7.0, 1e-12);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(Quantile(xs, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.5), 2.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.25), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.125), 0.5, 1e-12);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 4.0};
  EXPECT_EQ(Min(xs), -1.0);
  EXPECT_EQ(Max(xs), 4.0);
}

TEST(Stats, CorrelationSigns) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {5, 4, 3, 2, 1};
  EXPECT_NEAR(Correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(Correlation(xs, down), -1.0, 1e-12);
}

TEST(Stats, EmptyInputThrows) {
  EXPECT_THROW(Mean({}), PreconditionError);
  EXPECT_THROW(Median({}), PreconditionError);
  EXPECT_THROW(Quantile({}, 0.5), PreconditionError);
}

TEST(Stats, EmpiricalCdfMonotone) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.Gaussian(0.0, 1.0));
  const auto cdf = EmpiricalCdf(xs, 51);
  ASSERT_EQ(cdf.size(), 51u);
  EXPECT_NEAR(cdf.front().probability, 0.0, 1e-12);
  EXPECT_NEAR(cdf.back().probability, 1.0, 1e-12);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].probability, cdf[i].probability);
  }
}

TEST(Stats, CdfAtEndpoints) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(CdfAt(xs, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(CdfAt(xs, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(CdfAt(xs, 10.0), 1.0, 1e-12);
}

TEST(Stats, HistogramBinning) {
  const std::vector<double> xs = {0.1, 0.2, 0.6, 1.0, -0.5, 2.0};
  const auto h = MakeHistogram(xs, 0.0, 1.0, 2);
  // -0.5 and 2.0 fall outside; 1.0 lands in the last bin.
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_NEAR(h.BinCenter(0), 0.25, 1e-12);
  EXPECT_NEAR(h.BinWidth(), 0.5, 1e-12);
}

TEST(Fit, LinearExact) {
  const std::vector<double> xs = {0, 1, 2, 3};
  const std::vector<double> ys = {1, 3, 5, 7};  // y = 1 + 2x
  const auto fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-10);
  EXPECT_NEAR(fit.slope, 2.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.num_points, 4u);
  EXPECT_NEAR(fit.Evaluate(10.0), 21.0, 1e-9);
}

TEST(Fit, LinearNoisyRSquaredBelowOne) {
  Rng rng(11);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(3.0 - 0.5 * x + rng.Gaussian(0.0, 0.3));
  }
  const auto fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 0.15);
  EXPECT_NEAR(fit.slope, -0.5, 0.05);
  EXPECT_GT(fit.r_squared, 0.8);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(Fit, LogarithmicRecoversModel) {
  // y = 2 + 3 ln x.
  std::vector<double> xs, ys;
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    xs.push_back(x);
    ys.push_back(2.0 + 3.0 * std::log(x));
  }
  const auto fit = FitLogarithmic(xs, ys);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(EvaluateLogFit(fit, std::exp(1.0)), 5.0, 1e-9);
}

TEST(Fit, LogarithmicSkipsNonPositiveX) {
  const std::vector<double> xs = {-1.0, 0.0, 1.0, std::exp(1.0)};
  const std::vector<double> ys = {99.0, 98.0, 1.0, 2.0};  // y = 1 + ln x
  const auto fit = FitLogarithmic(xs, ys);
  EXPECT_EQ(fit.num_points, 2u);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-10);
  EXPECT_NEAR(fit.slope, 1.0, 1e-10);
}

TEST(Fit, TooFewPointsThrows) {
  EXPECT_THROW(FitLinear({1.0}, {1.0}), PreconditionError);
  EXPECT_THROW(FitLogarithmic({-1.0, -2.0, 1.0}, {0.0, 0.0, 0.0}),
               PreconditionError);
}

TEST(DelayDomain, DominantTapIsMeanMagnitude) {
  // Flat CFR: dominant tap power = |a|^2.
  const std::vector<Complex> cfr(30, Complex(2.0, 0.0));
  EXPECT_NEAR(DominantTapPower(cfr), 4.0, 1e-12);
}

TEST(DelayDomain, SinglePathPeaksAtItsDelay) {
  // H(f) = exp(-j 2 pi f tau0) over baseband offsets.
  const double tau0 = 30e-9;
  std::vector<double> offsets;
  std::vector<Complex> cfr;
  for (int i = -28; i <= 28; i += 2) {
    const double f = kSubcarrierSpacingHz * i;
    offsets.push_back(f);
    const double ph = -2.0 * kPi * f * tau0;
    cfr.push_back(Complex(std::cos(ph), std::sin(ph)));
  }
  std::vector<double> delays;
  for (int i = 0; i <= 100; ++i) delays.push_back(1e-9 * i);
  const auto taps = DelayTransform(cfr, offsets, delays);
  std::size_t best = 0;
  for (std::size_t i = 1; i < taps.size(); ++i) {
    if (std::abs(taps[i]) > std::abs(taps[best])) best = i;
  }
  EXPECT_NEAR(delays[best], tau0, 2e-9);
  // At the true delay the transform is coherent: |h| = 1.
  EXPECT_NEAR(std::abs(taps[best]), 1.0, 1e-6);
}

TEST(DelayDomain, PowerDelayProfileNormalization) {
  const std::vector<Complex> cfr(10, Complex(1.0, 0.0));
  const std::vector<double> offsets(10, 0.0);
  const auto pdp = PowerDelayProfile(cfr, offsets, 100e-9, 11);
  ASSERT_EQ(pdp.size(), 11u);
  // Zero offsets: profile is flat at |1|^2.
  for (double p : pdp) EXPECT_NEAR(p, 1.0, 1e-12);
}

TEST(DelayDomain, SizeMismatchThrows) {
  EXPECT_THROW(
      DelayTransform({Complex(1, 0)}, {0.0, 1.0}, {0.0}),
      PreconditionError);
}

TEST(Peaks, FindsTwoSeparatedPeaks) {
  std::vector<double> xs(101, 0.0);
  for (int i = 0; i < 101; ++i) {
    const double t = (i - 30) / 5.0;
    const double u = (i - 70) / 5.0;
    xs[static_cast<std::size_t>(i)] =
        std::exp(-t * t) + 0.6 * std::exp(-u * u);
  }
  const auto peaks = FindPeaks(xs);
  ASSERT_GE(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 30u);
  EXPECT_EQ(peaks[1].index, 70u);
  EXPECT_GT(peaks[0].value, peaks[1].value);
}

TEST(Peaks, MaxPeaksLimit) {
  std::vector<double> xs(50, 0.0);
  for (int c : {10, 20, 30, 40}) {
    xs[static_cast<std::size_t>(c)] = 1.0;
  }
  PeakOptions options;
  options.max_peaks = 2;
  const auto peaks = FindPeaks(xs, options);
  EXPECT_EQ(peaks.size(), 2u);
}

TEST(Peaks, RejectsLowProminenceRipple) {
  // A big peak with a tiny ripple on its shoulder.
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) {
    const double t = (i - 50) / 10.0;
    double v = std::exp(-t * t);
    if (i == 62) v += 0.001;
    xs.push_back(v);
  }
  PeakOptions options;
  options.min_relative_prominence = 0.05;
  const auto peaks = FindPeaks(xs, options);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 50u);
}

TEST(Peaks, MonotoneInputHasNoPeaks) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(i);
  EXPECT_TRUE(FindPeaks(xs).empty());
}

}  // namespace
}  // namespace mulink::dsp
