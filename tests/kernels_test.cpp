// Parity and accuracy tests for the vectorized kernel layer (DESIGN.md §14).
//
// The layer's contract is that the scalar backend defines the semantics and
// the AVX2 backend reproduces it bit for bit — elementwise kernels with
// lane == element, reductions with the fixed 4-way striping. These tests pin
// that contract over the shapes the detector actually runs (30 subcarriers
// x 1–3 antennas), plus odd lengths and unaligned base pointers so every
// SIMD tail path executes. The trig kernels are additionally checked against
// libm within their documented tolerance, and the engine-level tests require
// the full combined-scheme score to be bit-identical across backends.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/scenario.h"
#include "kernels/kernels.h"
#include "linalg/cmatrix.h"
#include "linalg/hermitian_eig.h"

namespace mulink::kernels {
namespace {

// Odd lengths around the 4-lane width, the detector's 30-subcarrier shape,
// and one past a full 8x unroll.
constexpr std::size_t kLengths[] = {1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 29, 30, 31, 33};

::testing::AssertionResult BitIdentical(std::span<const double> a,
                                        std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i] << " (delta "
             << a[i] - b[i] << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitIdenticalC(std::span<const Complex> a,
                                         std::span<const Complex> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(Complex)) != 0) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<double> RandomVector(Rng& rng, std::size_t n, double lo,
                                 double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Uniform(lo, hi);
  return v;
}

std::vector<Complex> RandomComplex(Rng& rng, std::size_t n) {
  std::vector<Complex> v(n);
  for (auto& x : v) x = {rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0)};
  return v;
}

class KernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetBackend(); }

  bool HasAvx2() const { return BackendAvailable(Backend::kAvx2); }
};

TEST_F(KernelsTest, BackendIntrospection) {
  EXPECT_TRUE(BackendAvailable(Backend::kScalar));
  EXPECT_STREQ(ToString(Backend::kScalar), "scalar");
  EXPECT_STREQ(ToString(Backend::kAvx2), "avx2");
  if (!SimdCompiledIn()) {
    EXPECT_FALSE(BackendAvailable(Backend::kAvx2));
    EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  }
  SetBackend(Backend::kScalar);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  ResetBackend();
}

// ---- accuracy vs libm ---------------------------------------------------

TEST_F(KernelsTest, Atan2MatchesLibmWithinTolerance) {
  Rng rng(11);
  const std::size_t n = 513;
  auto y = RandomVector(rng, n, -1000.0, 1000.0);
  auto x = RandomVector(rng, n, -1000.0, 1000.0);
  // Axis cases the sanitize path can produce (zero CSI sums).
  y[0] = 0.0; x[0] = 3.0;
  y[1] = 0.0; x[1] = -3.0;
  y[2] = 5.0; x[2] = 0.0;
  y[3] = -5.0; x[3] = 0.0;
  y[4] = 0.0; x[4] = 0.0;
  std::vector<double> out(n);
  for (Backend b : {Backend::kScalar, Backend::kAvx2}) {
    if (!BackendAvailable(b)) continue;
    SetBackend(b);
    Atan2(y.data(), x.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i], std::atan2(y[i], x[i]), 1e-12)
          << ToString(b) << " atan2(" << y[i] << ", " << x[i] << ")";
    }
  }
}

TEST_F(KernelsTest, SinCosMatchesLibmWithinTolerance) {
  Rng rng(13);
  const std::size_t n = 513;
  // Sanitize corrections live well inside |x| < 1e6.
  auto x = RandomVector(rng, n, -1e4, 1e4);
  x[0] = 0.0;
  x[1] = kPi;
  x[2] = -kPi / 2.0;
  std::vector<double> s(n), c(n);
  for (Backend b : {Backend::kScalar, Backend::kAvx2}) {
    if (!BackendAvailable(b)) continue;
    SetBackend(b);
    SinCos(x.data(), n, s.data(), c.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(s[i], std::sin(x[i]), 1e-12) << ToString(b) << " sin " << x[i];
      EXPECT_NEAR(c[i], std::cos(x[i]), 1e-12) << ToString(b) << " cos " << x[i];
    }
  }
}

// ---- scalar vs AVX2 bitwise parity --------------------------------------

TEST_F(KernelsTest, ElementwiseParityOddLengthsAndUnalignedTails) {
  if (!HasAvx2()) GTEST_SKIP() << "AVX2 backend not available";
  Rng rng(17);
  for (std::size_t n : kLengths) {
    for (std::size_t off : {std::size_t{0}, std::size_t{1}}) {
      // +1 double offset makes every base pointer 8-mod-16 aligned, so the
      // AVX2 loads exercise their unaligned path and the tail masks.
      auto y = RandomVector(rng, n + off, -50.0, 50.0);
      auto x = RandomVector(rng, n + off, -50.0, 50.0);
      auto w = RandomVector(rng, n + off, 0.0, 4.0);

      std::vector<double> a1(n), a2(n);
      SetBackend(Backend::kScalar);
      Atan2(y.data() + off, x.data() + off, n, a1.data());
      SetBackend(Backend::kAvx2);
      Atan2(y.data() + off, x.data() + off, n, a2.data());
      EXPECT_TRUE(BitIdentical(a1, a2)) << "Atan2 n=" << n << " off=" << off;

      std::vector<double> s1(n), c1(n), s2(n), c2(n);
      SetBackend(Backend::kScalar);
      SinCos(x.data() + off, n, s1.data(), c1.data());
      SetBackend(Backend::kAvx2);
      SinCos(x.data() + off, n, s2.data(), c2.data());
      EXPECT_TRUE(BitIdentical(s1, s2)) << "SinCos sin n=" << n << " off=" << off;
      EXPECT_TRUE(BitIdentical(c1, c2)) << "SinCos cos n=" << n << " off=" << off;

      std::vector<double> m1(n), m2(n);
      SetBackend(Backend::kScalar);
      Multiply(w.data() + off, x.data() + off, n, m1.data());
      SetBackend(Backend::kAvx2);
      Multiply(w.data() + off, x.data() + off, n, m2.data());
      EXPECT_TRUE(BitIdentical(m1, m2)) << "Multiply n=" << n << " off=" << off;
    }
  }
}

TEST_F(KernelsTest, ComplexKernelParityAcrossDetectorShapes) {
  if (!HasAvx2()) GTEST_SKIP() << "AVX2 backend not available";
  Rng rng(19);
  for (std::size_t antennas : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    for (std::size_t n : {std::size_t{7}, std::size_t{30}, std::size_t{31}}) {
      auto src = RandomComplex(rng, antennas * n);
      auto cos_v = RandomVector(rng, n, -1.0, 1.0);
      auto sin_v = RandomVector(rng, n, -1.0, 1.0);
      auto los = RandomVector(rng, n, 0.0, 1.0);
      const double dominant = rng.Uniform(0.1, 2.0);

      std::vector<Complex> r1(antennas * n), r2(antennas * n);
      SetBackend(Backend::kScalar);
      RotateRows(src.data(), antennas, n, cos_v.data(), sin_v.data(), r1.data());
      SetBackend(Backend::kAvx2);
      RotateRows(src.data(), antennas, n, cos_v.data(), sin_v.data(), r2.data());
      EXPECT_TRUE(BitIdenticalC(r1, r2))
          << "RotateRows " << antennas << "x" << n;

      std::vector<double> re1(n), im1(n), re2(n), im2(n);
      SetBackend(Backend::kScalar);
      Deinterleave(src.data(), n, re1.data(), im1.data());
      SetBackend(Backend::kAvx2);
      Deinterleave(src.data(), n, re2.data(), im2.data());
      EXPECT_TRUE(BitIdentical(re1, re2)) << "Deinterleave re n=" << n;
      EXPECT_TRUE(BitIdentical(im1, im2)) << "Deinterleave im n=" << n;

      std::vector<double> mu1(n, 0.25), mu2(n, 0.25);
      SetBackend(Backend::kScalar);
      MuAccumulateRow(src.data(), los.data(), dominant, n, mu1.data());
      SetBackend(Backend::kAvx2);
      MuAccumulateRow(src.data(), los.data(), dominant, n, mu2.data());
      EXPECT_TRUE(BitIdentical(mu1, mu2)) << "MuAccumulateRow n=" << n;

      std::vector<double> mean1(n, 0.5), st1(n, 1.0), mean2(n, 0.5), st2(n, 1.0);
      const double median = dsp::Median(los);
      SetBackend(Backend::kScalar);
      MeanStabilityAccumulate(los.data(), median, n, mean1.data(), st1.data());
      SetBackend(Backend::kAvx2);
      MeanStabilityAccumulate(los.data(), median, n, mean2.data(), st2.data());
      EXPECT_TRUE(BitIdentical(mean1, mean2)) << "MeanStability mean n=" << n;
      EXPECT_TRUE(BitIdentical(st1, st2)) << "MeanStability stability n=" << n;
    }
  }
}

TEST_F(KernelsTest, ReductionParityOddLengthsAndUnalignedTails) {
  if (!HasAvx2()) GTEST_SKIP() << "AVX2 backend not available";
  Rng rng(23);
  for (std::size_t n : kLengths) {
    for (std::size_t off : {std::size_t{0}, std::size_t{1}}) {
      auto a = RandomVector(rng, n + off, -10.0, 10.0);
      auto b = RandomVector(rng, n + off, -10.0, 10.0);
      SetBackend(Backend::kScalar);
      const double ss1 = SumSquares(a.data() + off, n);
      const double nd1 =
          NormalizedDistanceSq(a.data() + off, b.data() + off, 3.5, n);
      SetBackend(Backend::kAvx2);
      const double ss2 = SumSquares(a.data() + off, n);
      const double nd2 =
          NormalizedDistanceSq(a.data() + off, b.data() + off, 3.5, n);
      EXPECT_EQ(ss1, ss2) << "SumSquares n=" << n << " off=" << off;
      EXPECT_EQ(nd1, nd2) << "NormalizedDistanceSq n=" << n << " off=" << off;
    }
  }
}

TEST_F(KernelsTest, WeightedCovarianceParityAndHermitianStructure) {
  if (!HasAvx2()) GTEST_SKIP() << "AVX2 backend not available";
  Rng rng(29);
  for (std::size_t antennas : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    for (std::size_t n : {std::size_t{29}, std::size_t{30}, std::size_t{750}}) {
      auto re = RandomVector(rng, antennas * n, -2.0, 2.0);
      auto im = RandomVector(rng, antennas * n, -2.0, 2.0);
      auto w = RandomVector(rng, n, 0.0, 1.0);
      std::vector<Complex> c1(antennas * antennas), c2(antennas * antennas);
      SetBackend(Backend::kScalar);
      WeightedCovariance(re.data(), im.data(), antennas, n, w.data(), c1.data());
      SetBackend(Backend::kAvx2);
      WeightedCovariance(re.data(), im.data(), antennas, n, w.data(), c2.data());
      EXPECT_TRUE(BitIdenticalC(c1, c2))
          << "WeightedCovariance " << antennas << "x" << n;
      for (std::size_t i = 0; i < antennas; ++i) {
        EXPECT_EQ(c1[i * antennas + i].imag(), 0.0) << "diagonal must be real";
        for (std::size_t j = i + 1; j < antennas; ++j) {
          EXPECT_EQ(c1[j * antennas + i], std::conj(c1[i * antennas + j]))
              << "exact Hermitian symmetry " << i << "," << j;
        }
      }
    }
  }
}

TEST_F(KernelsTest, WeightedCovarianceMatchesNaiveReference) {
  Rng rng(31);
  const std::size_t antennas = 3;
  const std::size_t n = 30 * 25;  // subcarriers x window packets
  auto re = RandomVector(rng, antennas * n, -2.0, 2.0);
  auto im = RandomVector(rng, antennas * n, -2.0, 2.0);
  auto w = RandomVector(rng, n, 0.0, 1.0);
  std::vector<Complex> out(antennas * antennas);
  WeightedCovariance(re.data(), im.data(), antennas, n, w.data(), out.data());
  for (std::size_t i = 0; i < antennas; ++i) {
    for (std::size_t j = 0; j < antennas; ++j) {
      Complex ref(0.0, 0.0);
      for (std::size_t t = 0; t < n; ++t) {
        const Complex xi(re[i * n + t], im[i * n + t]);
        const Complex xj(re[j * n + t], im[j * n + t]);
        ref += w[t] * xi * std::conj(xj);
      }
      EXPECT_NEAR(out[i * antennas + j].real(), ref.real(), 1e-9)
          << i << "," << j;
      EXPECT_NEAR(out[i * antennas + j].imag(), ref.imag(), 1e-9)
          << i << "," << j;
    }
  }
}

TEST_F(KernelsTest, SpectralScanParity) {
  if (!HasAvx2()) GTEST_SKIP() << "AVX2 backend not available";
  Rng rng(37);
  const std::size_t points = 181;
  for (std::size_t antennas : {std::size_t{2}, std::size_t{3}}) {
    auto steer_re = RandomVector(rng, antennas * points, -1.0, 1.0);
    auto steer_im = RandomVector(rng, antennas * points, -1.0, 1.0);

    // Two packed Hermitian covariances, batched like the combined scheme's
    // monitor/profile pair.
    linalg::CMatrix cov_a(antennas, antennas), cov_b(antennas, antennas);
    for (std::size_t i = 0; i < antennas; ++i) {
      cov_a.At(i, i) = {rng.Uniform(0.5, 2.0), 0.0};
      cov_b.At(i, i) = {rng.Uniform(0.5, 2.0), 0.0};
      for (std::size_t j = i + 1; j < antennas; ++j) {
        const Complex va(rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0));
        const Complex vb(rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0));
        cov_a.At(i, j) = va;
        cov_a.At(j, i) = std::conj(va);
        cov_b.At(i, j) = vb;
        cov_b.At(j, i) = std::conj(vb);
      }
    }
    std::vector<double> packed_a(PackedHermitianSize(antennas));
    std::vector<double> packed_b(PackedHermitianSize(antennas));
    PackHermitian(cov_a.raw(), antennas, packed_a.data());
    PackHermitian(cov_b.raw(), antennas, packed_b.data());
    const double* covs[2] = {packed_a.data(), packed_b.data()};

    std::vector<double> out_a1(points), out_b1(points), out_a2(points),
        out_b2(points);
    double* outs1[2] = {out_a1.data(), out_b1.data()};
    double* outs2[2] = {out_a2.data(), out_b2.data()};
    const double inv_norm = 1.0 / static_cast<double>(antennas * antennas);
    SetBackend(Backend::kScalar);
    BartlettScan(steer_re.data(), steer_im.data(), points, antennas, covs, 2,
                 inv_norm, outs1);
    SetBackend(Backend::kAvx2);
    BartlettScan(steer_re.data(), steer_im.data(), points, antennas, covs, 2,
                 inv_norm, outs2);
    EXPECT_TRUE(BitIdentical(out_a1, out_a2)) << "Bartlett A=" << antennas;
    EXPECT_TRUE(BitIdentical(out_b1, out_b2)) << "Bartlett B=" << antennas;
    for (double v : out_a1) EXPECT_GE(v, 0.0);

    // MUSIC over one noise eigenvector.
    auto noise_re = RandomVector(rng, antennas, -1.0, 1.0);
    auto noise_im = RandomVector(rng, antennas, -1.0, 1.0);
    std::vector<double> mu1(points), mu2(points);
    SetBackend(Backend::kScalar);
    MusicScan(steer_re.data(), steer_im.data(), points, antennas,
              noise_re.data(), noise_im.data(), 1, 1e-12, mu1.data());
    SetBackend(Backend::kAvx2);
    MusicScan(steer_re.data(), steer_im.data(), points, antennas,
              noise_re.data(), noise_im.data(), 1, 1e-12, mu2.data());
    EXPECT_TRUE(BitIdentical(mu1, mu2)) << "MusicScan A=" << antennas;
  }
}

// ---- closed-form smallest eigenvalue ------------------------------------

TEST(SmallestEigenvalueTest, MatchesFullJacobiDecomposition) {
  Rng rng(41);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{4}}) {
    for (int trial = 0; trial < 25; ++trial) {
      // PSD (B^H B) plus a random real shift — covers the covariance-like
      // inputs and indefinite ones.
      linalg::CMatrix b(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          b.At(i, j) = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
        }
      }
      linalg::CMatrix a = b.Adjoint() * b;
      const double shift = rng.Uniform(-1.0, 1.0);
      for (std::size_t i = 0; i < n; ++i) {
        a.At(i, i) += Complex(shift, 0.0);
      }
      const auto eig = linalg::HermitianEigen(a);
      const double lambda_min = linalg::SmallestHermitianEigenvalue(a);
      double norm = 0.0;
      for (std::size_t i = 0; i < n * n; ++i) norm += std::norm(a.raw()[i]);
      norm = std::sqrt(norm);
      EXPECT_NEAR(lambda_min, eig.values.front(), 1e-9 * (1.0 + norm))
          << "n=" << n << " trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace mulink::kernels

// ---- engine-level parity ------------------------------------------------

namespace mulink::core {
namespace {

class EngineParityTest : public ::testing::Test {
 protected:
  EngineParityTest()
      : link_(experiments::MakeClassroomLink()),
        simulator_(experiments::MakeSimulator(link_)),
        rng_(123) {}

  void TearDown() override { kernels::ResetBackend(); }

  Detector MakeDetector(DetectionScheme scheme) {
    DetectorConfig config;
    config.scheme = scheme;
    const auto calibration = simulator_.CaptureSession(200, std::nullopt, rng_);
    return Detector::Calibrate(calibration, simulator_.band(),
                               simulator_.array(), config);
  }

  std::vector<wifi::CsiPacket> Window(bool human) {
    if (!human) return simulator_.CaptureSession(25, std::nullopt, rng_);
    propagation::HumanBody body;
    body.position = (link_.tx + link_.rx) * 0.5;
    return simulator_.CaptureSession(25, body, rng_);
  }

  experiments::LinkCase link_;
  nic::ChannelSimulator simulator_;
  Rng rng_;
};

TEST_F(EngineParityTest, ScoresBitIdenticalAcrossBackends) {
  if (!kernels::BackendAvailable(kernels::Backend::kAvx2)) {
    GTEST_SKIP() << "AVX2 backend not available";
  }
  for (auto scheme : {DetectionScheme::kSubcarrierWeighting,
                      DetectionScheme::kSubcarrierAndPathWeighting,
                      DetectionScheme::kVarianceMobile}) {
    auto detector = MakeDetector(scheme);
    const auto empty = Window(false);
    const auto human = Window(true);
    // Fresh scratch per backend so each side derives its own cached profile
    // stack under its own dispatch — those must agree too.
    DetectorScratch scalar_scratch, avx2_scratch;
    kernels::SetBackend(kernels::Backend::kScalar);
    const double empty_scalar = detector.Score(std::span(empty), scalar_scratch);
    const double human_scalar = detector.Score(std::span(human), scalar_scratch);
    kernels::SetBackend(kernels::Backend::kAvx2);
    const double empty_avx2 = detector.Score(std::span(empty), avx2_scratch);
    const double human_avx2 = detector.Score(std::span(human), avx2_scratch);
    kernels::ResetBackend();
    EXPECT_EQ(empty_scalar, empty_avx2) << ToString(scheme);
    EXPECT_EQ(human_scalar, human_avx2) << ToString(scheme);
  }
}

TEST_F(EngineParityTest, PreparedFactorsScoreMatchesRecompute) {
  auto detector = MakeDetector(DetectionScheme::kSubcarrierAndPathWeighting);
  for (bool human : {false, true}) {
    const auto window = Window(human);
    DetectorScratch recompute_scratch, prepared_scratch;
    std::vector<wifi::CsiPacket> sanitized;
    SanitizePhaseInto(std::span(window), detector.band(), sanitized,
                      recompute_scratch.sanitize);

    const double direct =
        detector.ScoreSanitized(std::span(sanitized), recompute_scratch);

    // Derive the factors exactly as the engine's ingest path does: one mu
    // row + median per packet.
    MultipathScratch mp;
    std::vector<double> median_scratch;
    std::vector<std::vector<double>> mu(sanitized.size());
    std::vector<double> medians(sanitized.size());
    std::vector<const double*> rows(sanitized.size());
    for (std::size_t i = 0; i < sanitized.size(); ++i) {
      MeasureMultipathFactorsInto(sanitized[i], detector.band(), mu[i], mp);
      medians[i] = dsp::Median(mu[i], median_scratch);
      rows[i] = mu[i].data();
    }
    Detector::PreparedWindowFactors factors;
    factors.mu_rows = std::span<const double* const>(rows);
    factors.medians = std::span<const double>(medians);
    const double prepared = detector.ScoreSanitizedPrepared(
        std::span(sanitized), factors, prepared_scratch);

    EXPECT_EQ(direct, prepared) << (human ? "human" : "empty");
  }
}

}  // namespace
}  // namespace mulink::core
