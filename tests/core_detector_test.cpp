#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/detector.h"
#include "experiments/scenario.h"

namespace mulink::core {
namespace {

class DetectorTest : public ::testing::Test {
 protected:
  DetectorTest()
      : link_(experiments::MakeClassroomLink()),
        simulator_(experiments::MakeSimulator(link_)),
        rng_(123) {}

  Detector MakeDetector(DetectionScheme scheme,
                        std::size_t calibration_packets = 200) {
    DetectorConfig config;
    config.scheme = scheme;
    const auto calibration =
        simulator_.CaptureSession(calibration_packets, std::nullopt, rng_);
    return Detector::Calibrate(calibration, simulator_.band(),
                               simulator_.array(), config);
  }

  std::vector<wifi::CsiPacket> EmptyWindow(std::size_t n = 25) {
    return simulator_.CaptureSession(n, std::nullopt, rng_);
  }

  std::vector<wifi::CsiPacket> HumanWindow(geometry::Vec2 pos,
                                           std::size_t n = 25) {
    propagation::HumanBody body;
    body.position = pos;
    return simulator_.CaptureSession(n, body, rng_);
  }

  experiments::LinkCase link_;
  nic::ChannelSimulator simulator_;
  Rng rng_;
};

TEST_F(DetectorTest, AllSchemesSeparateOnLosHumanFromEmpty) {
  const geometry::Vec2 mid = (link_.tx + link_.rx) * 0.5;
  for (auto scheme : {DetectionScheme::kBaseline,
                      DetectionScheme::kSubcarrierWeighting,
                      DetectionScheme::kSubcarrierAndPathWeighting}) {
    auto detector = MakeDetector(scheme);
    double empty_max = 0.0;
    for (int i = 0; i < 5; ++i) {
      empty_max = std::max(empty_max, detector.Score(EmptyWindow()));
    }
    double human_min = 1e18;
    for (int i = 0; i < 5; ++i) {
      human_min = std::min(human_min, detector.Score(HumanWindow(mid)));
    }
    EXPECT_GT(human_min, empty_max) << ToString(scheme);
  }
}

TEST_F(DetectorTest, ScoresAreNonNegative) {
  auto detector = MakeDetector(DetectionScheme::kSubcarrierWeighting);
  EXPECT_GE(detector.Score(EmptyWindow()), 0.0);
  EXPECT_GE(detector.Score(HumanWindow({3.0, 4.5})), 0.0);
}

TEST_F(DetectorTest, DetectRequiresThreshold) {
  auto detector = MakeDetector(DetectionScheme::kBaseline);
  EXPECT_THROW(detector.Detect(EmptyWindow()), PreconditionError);
  detector.SetThreshold(0.5);
  EXPECT_NO_THROW(detector.Detect(EmptyWindow()));
}

TEST_F(DetectorTest, CalibrateThresholdSuppressesEmptyWindows) {
  auto detector = MakeDetector(DetectionScheme::kSubcarrierAndPathWeighting);
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  for (int i = 0; i < 10; ++i) empty_windows.push_back(EmptyWindow());
  detector.CalibrateThreshold(empty_windows);
  EXPECT_GT(detector.threshold(), 0.0);
  // Fresh empty windows overwhelmingly stay quiet.
  int alarms = 0;
  for (int i = 0; i < 10; ++i) {
    if (detector.Detect(EmptyWindow())) ++alarms;
  }
  EXPECT_LE(alarms, 2);
  // A person on the LOS trips it.
  EXPECT_TRUE(detector.Detect(HumanWindow((link_.tx + link_.rx) * 0.5)));
}

TEST_F(DetectorTest, ScoreSessionWindowsCount) {
  auto detector = MakeDetector(DetectionScheme::kBaseline);
  const auto session = simulator_.CaptureSession(100, std::nullopt, rng_);
  const auto scores = detector.ScoreSession(session);
  EXPECT_EQ(scores.size(), 4u);  // 100 / 25
}

TEST_F(DetectorTest, ScoreSessionTooShortThrows) {
  auto detector = MakeDetector(DetectionScheme::kBaseline);
  const auto session = simulator_.CaptureSession(10, std::nullopt, rng_);
  EXPECT_THROW(detector.ScoreSession(session), PreconditionError);
}

TEST_F(DetectorTest, CalibrationValidatesDimensions) {
  DetectorConfig config;
  const auto calibration = simulator_.CaptureSession(10, std::nullopt, rng_);
  // Wrong antenna count in the array.
  const wifi::UniformLinearArray wrong_array(2, kWavelength / 2.0, 0.0);
  EXPECT_THROW(Detector::Calibrate(calibration, simulator_.band(), wrong_array,
                                   config),
               PreconditionError);
  // Too few packets.
  const std::vector<wifi::CsiPacket> one(calibration.begin(),
                                         calibration.begin() + 1);
  EXPECT_THROW(Detector::Calibrate(one, simulator_.band(), simulator_.array(),
                                   config),
               PreconditionError);
}

TEST_F(DetectorTest, CombinedSchemeRequiresTwoAntennas) {
  // Build a single-antenna simulator and try the combined scheme.
  auto sim1 = experiments::MakeSimulator(link_, experiments::DefaultSimConfig(),
                                         1);
  Rng rng(5);
  const auto calibration = sim1.CaptureSession(20, std::nullopt, rng);
  DetectorConfig config;
  config.scheme = DetectionScheme::kSubcarrierAndPathWeighting;
  EXPECT_THROW(Detector::Calibrate(calibration, sim1.band(), sim1.array(),
                                   config),
               PreconditionError);
  // Baseline works fine with one antenna.
  config.scheme = DetectionScheme::kBaseline;
  EXPECT_NO_THROW(Detector::Calibrate(calibration, sim1.band(), sim1.array(),
                                      config));
}

TEST_F(DetectorTest, StaticSpectrumSeesLineOfSight) {
  auto detector = MakeDetector(DetectionScheme::kSubcarrierAndPathWeighting);
  const auto peaks = detector.static_spectrum().PeakAngles(1);
  ASSERT_FALSE(peaks.empty());
  // The array is built so the LOS arrives at broadside.
  EXPECT_NEAR(peaks[0], 0.0, 5.0);
}

TEST_F(DetectorTest, PathWeightsZeroOutsideWindow) {
  auto detector = MakeDetector(DetectionScheme::kSubcarrierAndPathWeighting);
  const auto& w = detector.path_weights();
  ASSERT_FALSE(w.weights.empty());
  for (std::size_t i = 0; i < w.theta_deg.size(); ++i) {
    if (w.theta_deg[i] < -60.0 || w.theta_deg[i] > 60.0) {
      EXPECT_EQ(w.weights[i], 0.0);
    }
  }
}

TEST_F(DetectorTest, WindowDimensionMismatchThrows) {
  auto detector = MakeDetector(DetectionScheme::kBaseline);
  auto sim1 = experiments::MakeSimulator(link_, experiments::DefaultSimConfig(),
                                         1);
  Rng rng(9);
  const auto window = sim1.CaptureSession(5, std::nullopt, rng);
  EXPECT_THROW(detector.Score(window), PreconditionError);
}

TEST_F(DetectorTest, SchemeNamesAreStable) {
  EXPECT_STREQ(ToString(DetectionScheme::kBaseline), "baseline");
  EXPECT_STREQ(ToString(DetectionScheme::kSubcarrierWeighting),
               "subcarrier-weighting");
  EXPECT_STREQ(ToString(DetectionScheme::kSubcarrierAndPathWeighting),
               "subcarrier+path-weighting");
}

TEST_F(DetectorTest, OffLinkHumanScoresLowerThanOnLos) {
  // Averaged over windows, a person far from the link must move the
  // baseline statistic less than a person on the LOS.
  auto detector = MakeDetector(DetectionScheme::kBaseline);
  const geometry::Vec2 on_los = (link_.tx + link_.rx) * 0.5;
  const geometry::Vec2 far_off = {3.0, 7.2};
  double on = 0.0, off = 0.0;
  for (int i = 0; i < 6; ++i) {
    on += detector.Score(HumanWindow(on_los));
    off += detector.Score(HumanWindow(far_off));
  }
  EXPECT_GT(on, off);
}

}  // namespace
}  // namespace mulink::core
