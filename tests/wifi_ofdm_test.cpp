// FFT and OFDM baseband chain tests: the from-first-principles CSI
// estimation must agree with the frequency-domain shortcut the rest of the
// simulator uses (the substitution DESIGN.md makes for the Intel CSI Tool).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "dsp/fft.h"
#include "experiments/scenario.h"
#include "wifi/cfr.h"
#include "wifi/ofdm.h"

namespace mulink::wifi {
namespace {

TEST(Fft, KnownFourPointTransform) {
  std::vector<Complex> x = {{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  dsp::Fft(x);
  EXPECT_NEAR(std::abs(x[0] - Complex(10, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - Complex(-2, 2)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[2] - Complex(-2, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[3] - Complex(-2, -2)), 0.0, 1e-12);
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(3);
  std::vector<Complex> x(64);
  for (auto& v : x) v = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  auto y = x;
  dsp::Fft(y);
  dsp::Ifft(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(5);
  std::vector<Complex> x(128);
  for (auto& v : x) v = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  auto y = x;
  dsp::Fft(y);
  double freq_energy = 0.0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-8 * freq_energy);
}

TEST(Fft, SingleToneLandsInItsBin) {
  const std::size_t n = 64;
  std::vector<Complex> x(n);
  const int k0 = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * kPi * k0 * static_cast<double>(i) / n;
    x[i] = Complex(std::cos(phase), std::sin(phase));
  }
  dsp::Fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0) {
      EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(6);
  EXPECT_THROW(dsp::Fft(x), PreconditionError);
  EXPECT_TRUE(dsp::IsPowerOfTwo(64));
  EXPECT_FALSE(dsp::IsPowerOfTwo(48));
  EXPECT_FALSE(dsp::IsPowerOfTwo(0));
}

TEST(Ofdm, TrainingSymbolHasCyclicPrefix) {
  const OfdmConfig config;
  const auto symbol = ModulateTrainingSymbol(config);
  ASSERT_EQ(symbol.size(), config.cyclic_prefix + config.fft_size);
  for (std::size_t i = 0; i < config.cyclic_prefix; ++i) {
    EXPECT_EQ(symbol[i], symbol[config.fft_size + i]);
  }
}

TEST(Ofdm, OccupiedMapAndTrainingShape) {
  const auto occupied = Ht20OccupiedSubcarriers();
  EXPECT_EQ(occupied.size(), 56u);
  EXPECT_EQ(occupied.front(), -28);
  EXPECT_EQ(occupied.back(), 28);
  const auto training = TrainingSequence();
  EXPECT_EQ(training.size(), 56u);
  for (double v : training) EXPECT_EQ(std::abs(v), 1.0);
}

TEST(Ofdm, IdealChannelEstimateIsFlat) {
  // A single zero-ish-delay unit path: the estimate must be ~unit magnitude
  // on every reported subcarrier.
  propagation::Path p;
  p.vertices = {{0, 0}, {0.3, 0}};
  p.length_m = 0.3;
  p.gain_at_center = 1.0;
  const auto band = BandPlan::Intel5300Channel11();
  const UniformLinearArray array(1, kWavelength / 2.0, 0.0);
  Rng rng(7);
  const auto csi = EstimateCfrViaOfdm({p}, band, array, {}, rng);
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    EXPECT_NEAR(std::abs(csi.At(0, k)), 1.0, 0.02) << k;
  }
}

TEST(Ofdm, EstimateMatchesFrequencyDomainSynthesis) {
  // The headline property: the OFDM receive path reproduces SynthesizeCfr
  // on a realistic multipath channel (noiseless, no CFO).
  const auto lc = experiments::MakeClassroomLink();
  const auto sim = experiments::MakeSimulator(lc);
  const auto paths = sim.StaticPaths();
  const auto band = BandPlan::Intel5300Channel11();
  const auto array = experiments::MakeArray(lc);

  const auto reference = SynthesizeCfr(paths, band, array);
  Rng rng(9);
  const auto estimated = EstimateCfrViaOfdm(paths, band, array, {}, rng);

  double err = 0.0, ref_power = 0.0;
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t k = 0; k < 30; ++k) {
      err += std::norm(estimated.At(m, k) - reference.At(m, k));
      ref_power += std::norm(reference.At(m, k));
    }
  }
  // Normalized error well under 1% power (fractional-delay interpolation
  // and the 1/f gain tilt are the residuals).
  EXPECT_LT(err / ref_power, 0.01);
}

TEST(Ofdm, CfoAppearsAsCommonPhase) {
  propagation::Path p;
  p.vertices = {{0, 0}, {3, 0}};
  p.length_m = 3.0;
  p.gain_at_center = 1.0;
  const auto band = BandPlan::Intel5300Channel11();
  const UniformLinearArray array(1, kWavelength / 2.0, 0.0);

  Rng rng_a(11), rng_b(11);
  const auto clean = EstimateCfrViaOfdm({p}, band, array, {}, rng_a);
  OfdmConfig with_cfo;
  with_cfo.cfo_hz = 20e3;  // ~8 ppm at 2.4 GHz
  const auto shifted = EstimateCfrViaOfdm({p}, band, array, with_cfo, rng_b);

  // Per-subcarrier phase difference is dominated by a common rotation; the
  // residual per-subcarrier spread is genuine inter-carrier interference
  // (20 kHz CFO = 6.4% of the subcarrier spacing).
  Complex mean_rot(0.0, 0.0);
  std::vector<double> diffs;
  for (std::size_t k = 0; k < 30; ++k) {
    diffs.push_back(std::arg(shifted.At(0, k) * std::conj(clean.At(0, k))));
    mean_rot += std::polar(1.0, diffs.back());
  }
  mean_rot /= 30.0;
  EXPECT_GT(std::abs(mean_rot), 0.9);  // strongly aligned = mostly common
  const double common = std::arg(mean_rot);
  for (double d : diffs) {
    EXPECT_NEAR(std::abs(std::polar(1.0, d) - std::polar(1.0, common)), 0.0,
                0.35);
  }
  EXPECT_GT(std::abs(common), 0.05);  // the phase did move
}

TEST(Ofdm, NoiseScalesEstimateError) {
  const auto lc = experiments::MakeClassroomLink();
  const auto paths = experiments::MakeSimulator(lc).StaticPaths();
  const auto band = BandPlan::Intel5300Channel11();
  const auto array = experiments::MakeArray(lc);
  const auto reference = SynthesizeCfr(paths, band, array);

  const auto error_at = [&](double snr_db, std::uint64_t seed) {
    Rng rng(seed);
    OfdmConfig config;
    config.snr_db = snr_db;
    const auto est = EstimateCfrViaOfdm(paths, band, array, config, rng);
    double err = 0.0, ref = 0.0;
    for (std::size_t m = 0; m < 3; ++m) {
      for (std::size_t k = 0; k < 30; ++k) {
        err += std::norm(est.At(m, k) - reference.At(m, k));
        ref += std::norm(reference.At(m, k));
      }
    }
    return err / ref;
  };
  const double noisy = error_at(10.0, 13);
  const double quiet = error_at(30.0, 13);
  EXPECT_GT(noisy, 10.0 * quiet);
}

TEST(Ofdm, ConfigValidation) {
  OfdmConfig bad;
  bad.fft_size = 48;
  EXPECT_THROW(ModulateTrainingSymbol(bad), PreconditionError);
  bad.fft_size = 64;
  bad.cyclic_prefix = 64;
  EXPECT_THROW(ModulateTrainingSymbol(bad), PreconditionError);
  EXPECT_THROW(EstimateChannel(std::vector<Complex>(10), {}),
               PreconditionError);
  EXPECT_THROW(ExtractReported(std::vector<Complex>(30),
                               BandPlan::Intel5300Channel11()),
               PreconditionError);
}

}  // namespace
}  // namespace mulink::wifi
