// Adaptive profile updating (closed-loop drift compensation) and the
// promoted new-path angle estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/detector.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

namespace mulink::core {
namespace {

namespace ex = mulink::experiments;

std::vector<wifi::CsiPacket> Scaled(std::vector<wifi::CsiPacket> window,
                                    double gain) {
  for (auto& packet : window) packet.csi *= Complex(gain, 0.0);
  return window;
}

TEST(AdaptiveProfile, TracksPersistentGainShift) {
  // A persistent +2.5 dB TX-power step (firmware update, cable reseat):
  // without adaptation the subcarrier scheme alarms forever; repeated
  // UpdateProfile calls on believed-empty windows absorb it.
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(3);
  DetectorConfig config;
  config.scheme = DetectionScheme::kSubcarrierWeighting;
  auto detector = Detector::Calibrate(
      sim.CaptureSession(200, std::nullopt, rng), sim.band(), sim.array(),
      config);

  const double gain = std::pow(10.0, 2.5 / 20.0);
  const double before =
      detector.Score(Scaled(sim.CaptureSession(25, std::nullopt, rng), gain));

  for (int i = 0; i < 60; ++i) {
    detector.UpdateProfile(
        Scaled(sim.CaptureSession(25, std::nullopt, rng), gain), 0.1);
  }
  const double after =
      detector.Score(Scaled(sim.CaptureSession(25, std::nullopt, rng), gain));
  EXPECT_LT(after, 0.3 * before);
}

TEST(AdaptiveProfile, DoesNotEraseSensitivity) {
  // After adapting to the drifted empty room, a person is still detected.
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(5);
  DetectorConfig config;
  config.scheme = DetectionScheme::kSubcarrierWeighting;
  auto detector = Detector::Calibrate(
      sim.CaptureSession(200, std::nullopt, rng), sim.band(), sim.array(),
      config);
  const double gain = std::pow(10.0, 1.5 / 20.0);
  for (int i = 0; i < 60; ++i) {
    detector.UpdateProfile(
        Scaled(sim.CaptureSession(25, std::nullopt, rng), gain), 0.1);
  }
  propagation::HumanBody body;
  body.position = (lc.tx + lc.rx) * 0.5;
  const double empty_score =
      detector.Score(Scaled(sim.CaptureSession(25, std::nullopt, rng), gain));
  const double human_score =
      detector.Score(Scaled(sim.CaptureSession(25, body, rng), gain));
  EXPECT_GT(human_score, 3.0 * empty_score);
}

TEST(AdaptiveProfile, ValidatesArguments) {
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(7);
  DetectorConfig config;
  auto detector = Detector::Calibrate(
      sim.CaptureSession(50, std::nullopt, rng), sim.band(), sim.array(),
      config);
  const auto window = sim.CaptureSession(10, std::nullopt, rng);
  EXPECT_THROW(detector.UpdateProfile(window, 0.0), PreconditionError);
  EXPECT_THROW(detector.UpdateProfile(window, 1.5), PreconditionError);
  EXPECT_THROW(detector.UpdateProfile({}, 0.1), PreconditionError);
}

TEST(NewPathAngle, RecoversHumanReflectionAngle) {
  const auto lc = ex::MakeShortWallLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(9);
  const auto calibration = SanitizePhase(
      sim.CaptureSession(200, std::nullopt, rng), sim.band());
  const auto static_cov = SampleCovariance(calibration);

  // Off-LOS angles only: a person ON the LOS mostly *removes* power (the
  // shadowed direct path), which is not a "new path" for this estimator.
  for (double truth : {-35.0, 30.0, 50.0}) {
    const auto spots = ex::AngularArc(lc, 1.2, {truth});
    propagation::HumanBody body;
    body.position = spots[0].position;
    const auto window = SanitizePhase(sim.CaptureSession(40, body, rng),
                                      sim.band());
    const double estimate =
        EstimateNewPathAngleDeg(window, static_cov, sim.array(), sim.band());
    // 3-antenna aperture: generous tolerance (the paper's Fig. 10 reports
    // >20-degree medians).
    EXPECT_NEAR(estimate, spots[0].angle_deg, 25.0) << truth;
  }
}

TEST(NewPathAngle, ValidatesCovarianceSize) {
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(11);
  const auto window = sim.CaptureSession(10, std::nullopt, rng);
  const auto wrong = linalg::CMatrix::Identity(2);
  EXPECT_THROW(
      EstimateNewPathAngleDeg(window, wrong, sim.array(), sim.band()),
      PreconditionError);
}

}  // namespace
}  // namespace mulink::core
