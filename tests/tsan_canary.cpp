// Negative control for the ThreadSanitizer wiring (DESIGN.md §12): two
// threads increment one counter with no synchronization — the textbook data
// race. scripts/run_tsan.sh and the tsan CI job run this binary EXPECTING a
// nonzero exit (TSAN_OPTIONS=halt_on_error=1): if the canary ever passes,
// the sanitizer is not actually armed and the green "race-clean" suite
// means nothing. Built only under -DMULINK_TSAN=ON and deliberately never
// registered with ctest.
#include <cstdio>
#include <thread>

namespace {
int racy_counter = 0;  // intentionally unsynchronized
}  // namespace

int main() {
  std::thread a([] {
    for (int i = 0; i < 100000; ++i) ++racy_counter;
  });
  std::thread b([] {
    for (int i = 0; i < 100000; ++i) ++racy_counter;
  });
  a.join();
  b.join();
  std::printf("tsan_canary: counter=%d (expected a TSan report, not this)\n",
              racy_counter);
  return 0;
}
