// End-to-end integration tests: the full stack (geometry -> rays -> CFR ->
// NIC -> sanitize -> mu -> weighting -> MUSIC -> detector) reproduces the
// paper's qualitative claims on small workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/detector.h"
#include "core/link_model.h"
#include "core/multipath_factor.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "dsp/fit.h"
#include "dsp/stats.h"
#include "experiments/campaign.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

namespace mulink {
namespace {

using experiments::LinkCase;

// Mean subcarrier RSS change (dB) between a human-present window and the
// empty profile, on antenna 0.
double MeanRssChangeDb(nic::ChannelSimulator& sim,
                       const std::vector<double>& profile_db,
                       geometry::Vec2 pos, Rng& rng, std::size_t n = 40) {
  propagation::HumanBody body;
  body.position = pos;
  const auto session = sim.CaptureSession(n, body, rng);
  const auto clean = core::SanitizePhase(session, sim.band());
  double change = 0.0;
  for (std::size_t k = 0; k < sim.band().NumSubcarriers(); ++k) {
    double p = 0.0;
    for (const auto& packet : clean) p += packet.SubcarrierPower(0, k);
    p /= static_cast<double>(clean.size());
    change += 10.0 * std::log10(std::max(p, 1e-30)) - profile_db[k];
  }
  return change / static_cast<double>(sim.band().NumSubcarriers());
}

std::vector<double> ProfileDb(nic::ChannelSimulator& sim, Rng& rng,
                              std::size_t n = 100) {
  const auto session = sim.CaptureSession(n, std::nullopt, rng);
  const auto clean = core::SanitizePhase(session, sim.band());
  std::vector<double> profile(sim.band().NumSubcarriers());
  for (std::size_t k = 0; k < profile.size(); ++k) {
    double p = 0.0;
    for (const auto& packet : clean) p += packet.SubcarrierPower(0, k);
    p /= static_cast<double>(clean.size());
    profile[k] = 10.0 * std::log10(std::max(p, 1e-30));
  }
  return profile;
}

TEST(Integration, ShadowingDropsRssReflectionCanRaiseIt) {
  // Fig. 2's core observation: a multipath link shows diverse RSS change —
  // big drops on the LOS, and both signs near the link.
  const LinkCase lc = experiments::MakeClassroomLink();
  auto sim = experiments::MakeSimulator(lc);
  Rng rng(5);
  const auto profile = ProfileDb(sim, rng);

  // Dead-center on the LOS: strong drop.
  const double on_los =
      MeanRssChangeDb(sim, profile, (lc.tx + lc.rx) * 0.5, rng);
  EXPECT_LT(on_los, -2.0);

  // Sweep near-link locations: the change takes both signs somewhere.
  bool saw_rise = false, saw_drop = false;
  for (double x = 1.5; x <= 4.5; x += 0.25) {
    for (double off : {0.35, 0.5, 0.7}) {
      const double d = MeanRssChangeDb(sim, profile, {x, 4.0 + off}, rng, 20);
      if (d > 0.15) saw_rise = true;
      if (d < -0.15) saw_drop = true;
    }
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_rise);
}

TEST(Integration, MultipathFactorPredictsSensitivityMonotonically) {
  // Fig. 3b: per-subcarrier RSS change falls (roughly log-linearly) with the
  // multipath factor measured at runtime, i.e. from the monitoring packets
  // themselves — exactly how Sec. IV-A2 consumes mu.
  const LinkCase lc = experiments::MakeClassroomLink();
  auto sim = experiments::MakeSimulator(lc);
  Rng rng(7);

  const auto profile = ProfileDb(sim, rng);

  // Fig. 3b's protocol: per-packet (mu, Delta_s) pairs at a fixed subcarrier
  // (f5 in the paper) across many human presence locations near the link.
  const std::size_t k5 = 4;
  std::vector<double> mus, deltas;
  const auto spots = experiments::RandomNearLink(lc, 100, 0.6, rng);
  for (const auto& spot : spots) {
    propagation::HumanBody body;
    body.position = spot.position;
    const auto session = sim.CaptureSession(10, body, rng);
    const auto clean = core::SanitizePhase(session, sim.band());
    const auto mu_rows = core::MeasureMultipathFactors(clean, sim.band());
    for (std::size_t m = 0; m < clean.size(); ++m) {
      mus.push_back(mu_rows[m][k5]);
      deltas.push_back(
          10.0 * std::log10(std::max(clean[m].SubcarrierPower(0, k5), 1e-30)) -
          profile[k5]);
    }
  }

  // The paper reports the trend as "roughly falls monotonously": assert a
  // negative logarithmic fit plus a decisive median drop from the low-mu
  // tercile to the high-mu tercile (the raw scatter is noisy in the paper
  // too — it warns about "error-prone fitting" on quiet subcarriers).
  const auto fit = dsp::FitLogarithmic(mus, deltas);
  EXPECT_LT(fit.slope, 0.0);

  std::vector<std::size_t> order(mus.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return mus[a] < mus[b]; });
  const std::size_t tercile = order.size() / 3;
  std::vector<double> low, high;
  for (std::size_t i = 0; i < tercile; ++i) {
    low.push_back(deltas[order[i]]);
    high.push_back(deltas[order[order.size() - 1 - i]]);
  }
  EXPECT_GT(dsp::Median(low) - dsp::Median(high), 1.5);
}

TEST(Integration, MusicSeesWallReflectionOnShortWallLink) {
  // Fig. 5b: the 3 m link near a wall shows an LOS peak at ~0 deg and a
  // distinct reflected-path peak.
  const LinkCase lc = experiments::MakeShortWallLink();
  auto sim = experiments::MakeSimulator(lc);
  Rng rng(11);
  const auto session = sim.CaptureSession(100, std::nullopt, rng);
  const auto clean = core::SanitizePhase(session, sim.band());
  const auto spectrum =
      core::ComputeMusicSpectrum(clean, sim.array(), sim.band());
  const auto peaks = spectrum.PeakAngles(2);
  ASSERT_EQ(peaks.size(), 2u);
  // One peak near broadside (the LOS), one distinctly off-axis (the wall
  // reflection) — MUSIC peak heights are not power-ordered, so check the
  // pair without assuming which is taller.
  const double near_peak = std::min(std::abs(peaks[0]), std::abs(peaks[1]));
  const double far_peak = std::max(std::abs(peaks[0]), std::abs(peaks[1]));
  // 3-antenna MUSIC has ~10-degree-scale bias when correlated reflections
  // share the spectrum (the paper's Fig. 10 reports >20-degree errors).
  EXPECT_LT(near_peak, 12.0);
  EXPECT_GT(far_peak, 15.0);
}

TEST(Integration, SubcarrierWeightingBeatsBaselineForWeakTargets) {
  // The headline mechanism: for human presence far from the link (weak
  // impact), weighting by the multipath factor should improve the ROC.
  const LinkCase lc = experiments::MakeClassroomLink();
  experiments::CampaignConfig config;
  config.packets_per_location = 250;
  config.calibration_packets = 200;
  config.empty_packets = 400;
  config.seed = 31;

  // Far-from-RX spots only (the regime where the baseline struggles).
  std::vector<experiments::HumanSpot> spots = {
      experiments::MakeSpot(lc, {1.2, 5.2}),
      experiments::MakeSpot(lc, {1.5, 2.7}),
      experiments::MakeSpot(lc, {0.8, 5.0}),
  };
  const auto result = experiments::RunCampaign(
      {lc}, {spots},
      {core::DetectionScheme::kBaseline,
       core::DetectionScheme::kSubcarrierWeighting},
      config);
  const double auc_base =
      result.ForScheme(core::DetectionScheme::kBaseline).Roc().Auc();
  const double auc_weighted =
      result.ForScheme(core::DetectionScheme::kSubcarrierWeighting)
          .Roc()
          .Auc();
  EXPECT_GE(auc_weighted, auc_base - 0.02);
}

TEST(Integration, WalkAcrossLinkShowsClearEvent) {
  // Fig. 2b's setup: a person walks across the link; windows near the
  // crossing must score far above windows before/after it.
  const LinkCase lc = experiments::MakeClassroomLink();
  auto sim = experiments::MakeSimulator(lc);
  Rng rng(13);

  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierWeighting;
  const auto calibration = sim.CaptureSession(200, std::nullopt, rng);
  auto detector = core::Detector::Calibrate(calibration, sim.band(),
                                            sim.array(), config);

  const auto trace = experiments::CrossLinkWalk(lc, 0.5, 2.0);
  propagation::HumanBody body;
  // 4 m walk at 0.5 m/s = 8 s = 400 packets; crossing around packet 200,
  // with ~1.5 s of dwell inside the link's sensitivity region.
  const auto packets = sim.CaptureWalk(400, body, trace.from, trace.to, 0.5,
                                       rng);
  const auto scores = detector.ScoreSession(packets);
  ASSERT_EQ(scores.size(), 16u);
  // Peak score lands in the middle windows (the crossing).
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  EXPECT_GE(best, 5u);
  EXPECT_LE(best, 10u);
  // Crossing windows dominate the typical walk-edge window (median of the 3
  // first + 3 last windows; a max would be hostage to one interference
  // burst). The edges are not empty-room quiet — a person 2 m from the link
  // still perturbs it — so the required contrast is moderate.
  std::vector<double> edges = {scores[0], scores[1], scores[2],
                               scores[13], scores[14], scores[15]};
  EXPECT_GT(scores[best], 1.5 * dsp::Median(edges));
}

TEST(Integration, DetectionRangeOrderingAcrossDistance) {
  // Fig. 9's qualitative shape on a small workload: near targets score
  // higher than far targets under every scheme.
  const LinkCase lc = experiments::MakeClassroomLink();
  auto sim = experiments::MakeSimulator(lc);
  Rng rng(17);

  const auto calibration = sim.CaptureSession(200, std::nullopt, rng);
  for (auto scheme : {core::DetectionScheme::kBaseline,
                      core::DetectionScheme::kSubcarrierWeighting}) {
    core::DetectorConfig config;
    config.scheme = scheme;
    auto detector = core::Detector::Calibrate(calibration, sim.band(),
                                              sim.array(), config);
    // Near: on the LOS 1 m from the RX. Far: an off-link corner ~4.9 m out.
    const auto near_spot = experiments::MakeSpot(lc, {4.0, 4.0});
    const auto far_spot = experiments::MakeSpot(lc, {0.6, 6.8});
    double near_score = 0.0, far_score = 0.0;
    for (int i = 0; i < 8; ++i) {
      propagation::HumanBody body;
      body.position = near_spot.position;
      near_score += detector.Score(sim.CaptureSession(25, body, rng));
      body.position = far_spot.position;
      far_score += detector.Score(sim.CaptureSession(25, body, rng));
    }
    EXPECT_GT(near_score, far_score) << core::ToString(scheme);
  }
}

}  // namespace
}  // namespace mulink
