// Crowd counting (paper ref [29]) and CFO estimation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/crowd.h"
#include "experiments/scenario.h"
#include "wifi/ofdm.h"

namespace mulink::core {
namespace {

namespace ex = mulink::experiments;

class CrowdTest : public ::testing::Test {
 protected:
  CrowdTest()
      : link_([] {
          auto lc = ex::MakeClassroomLink();
          lc.walker_bases.clear();
          return lc;
        }()),
        sim_(ex::MakeSimulator(link_, [] {
          auto config = ex::DefaultSimConfig();
          config.interference_entry_prob = 0.0;  // count people, not bursts
          return config;
        }())),
        rng_(31) {}

  std::vector<propagation::HumanBody> People(std::size_t count) {
    // Spread people across distinct spots near the link.
    const std::vector<geometry::Vec2> spots = {
        {2.0, 4.3}, {3.5, 3.6}, {4.2, 4.6}, {2.8, 5.0}, {1.6, 3.4}};
    std::vector<propagation::HumanBody> people;
    for (std::size_t i = 0; i < count && i < spots.size(); ++i) {
      propagation::HumanBody body;
      body.position = spots[i];
      people.push_back(body);
    }
    return people;
  }

  std::vector<wifi::CsiPacket> Window(std::size_t count) {
    return sim_.CaptureSessionMulti(50, People(count), rng_);
  }

  ex::LinkCase link_;
  nic::ChannelSimulator sim_;
  Rng rng_;
};

TEST_F(CrowdTest, PerturbedFractionGrowsWithHeadCount) {
  const auto estimator =
      CrowdEstimator::Calibrate(sim_.CaptureSession(200, std::nullopt, rng_));
  double previous = -1.0;
  for (std::size_t count : {0u, 1u, 3u}) {
    const double fraction = estimator.PerturbedFraction(Window(count));
    EXPECT_GT(fraction, previous) << count << " people";
    previous = fraction;
  }
}

TEST_F(CrowdTest, EmptyRoomFractionIsSmall) {
  const auto estimator =
      CrowdEstimator::Calibrate(sim_.CaptureSession(200, std::nullopt, rng_));
  EXPECT_LT(estimator.PerturbedFraction(Window(0)), 0.25);
}

TEST_F(CrowdTest, TrainedEstimatorCountsApproximately) {
  auto estimator =
      CrowdEstimator::Calibrate(sim_.CaptureSession(200, std::nullopt, rng_));
  std::vector<std::pair<std::size_t, std::vector<wifi::CsiPacket>>> labelled;
  for (std::size_t count : {0u, 1u, 2u, 3u, 4u}) {
    labelled.emplace_back(count, Window(count));
  }
  estimator.Train(labelled);
  EXPECT_TRUE(estimator.trained());

  // Fresh windows: counts within +-1 of truth.
  for (std::size_t truth : {0u, 1u, 2u, 4u}) {
    const auto estimate = estimator.EstimateCount(Window(truth));
    EXPECT_LE(estimate, truth + 1) << "truth " << truth;
    EXPECT_GE(estimate + 1, truth) << "truth " << truth;
  }
}

TEST_F(CrowdTest, ValidatesUsage) {
  EXPECT_THROW(CrowdEstimator::Calibrate(
                   sim_.CaptureSession(5, std::nullopt, rng_)),
               PreconditionError);
  auto estimator =
      CrowdEstimator::Calibrate(sim_.CaptureSession(50, std::nullopt, rng_));
  EXPECT_THROW(estimator.EstimateCount(Window(1)), PreconditionError);
  EXPECT_THROW(estimator.Train({}), PreconditionError);
}

TEST(MultiHuman, TwoPeoplePerturbMoreThanOne) {
  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(7);
  const auto empty = sim.CaptureSession(40, std::nullopt, rng);
  double empty_power = 0.0;
  for (const auto& packet : empty) empty_power += packet.TotalPower();

  propagation::HumanBody a, b;
  a.position = {2.5, 4.0};  // on the LOS
  b.position = {3.5, 4.0};  // also on the LOS
  const auto one = sim.CaptureSessionMulti(40, {a}, rng);
  const auto two = sim.CaptureSessionMulti(40, {a, b}, rng);
  double one_power = 0.0, two_power = 0.0;
  for (const auto& packet : one) one_power += packet.TotalPower();
  for (const auto& packet : two) two_power += packet.TotalPower();
  // Two on-LOS blockers shadow more than one.
  EXPECT_LT(two_power, one_power);
  EXPECT_LT(one_power, empty_power);
}

TEST(Cfo, EstimatedFromCyclicPrefix) {
  propagation::Path p;
  p.vertices = {{0, 0}, {3, 0}};
  p.length_m = 3.0;
  p.gain_at_center = 1.0;
  const wifi::UniformLinearArray array(1, kWavelength / 2.0, 0.0);
  Rng rng(11);
  for (double cfo : {-40e3, -5e3, 0.0, 12e3, 60e3}) {
    wifi::OfdmConfig config;
    config.cfo_hz = cfo;
    config.snr_db = 35.0;
    const auto tx = wifi::ModulateTrainingSymbol(config);
    const auto rx = wifi::ApplyChannel(tx, {p}, array, 0, 2.462e9, config,
                                       rng);
    EXPECT_NEAR(wifi::EstimateCfo(rx, config), cfo, 2e3) << cfo;
  }
}

TEST(Cfo, CorrectionRestoresTheEstimate) {
  propagation::Path p;
  p.vertices = {{0, 0}, {4, 0}};
  p.length_m = 4.0;
  p.gain_at_center = 1.0;
  const wifi::UniformLinearArray array(1, kWavelength / 2.0, 0.0);
  Rng rng(13);
  wifi::OfdmConfig config;
  config.cfo_hz = 25e3;
  const auto tx = wifi::ModulateTrainingSymbol(config);
  const auto rx = wifi::ApplyChannel(tx, {p}, array, 0, 2.462e9, config, rng);
  const double estimated = wifi::EstimateCfo(rx, config);
  const auto corrected =
      wifi::CorrectCfo(rx, estimated, config.sample_rate_hz);
  // Residual CFO after correction is near zero.
  EXPECT_NEAR(wifi::EstimateCfo(corrected, config), 0.0, 500.0);
}

}  // namespace
}  // namespace mulink::core
