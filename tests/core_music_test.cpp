#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/music.h"
#include "propagation/path.h"
#include "wifi/cfr.h"
#include "wifi/noise.h"

namespace mulink::core {
namespace {

// Build CSI packets for a set of plane waves at given broadside angles.
// Uses the real forward model (SynthesizeCfr) with an array along +y so
// arrival directions map cleanly onto broadside angles.
std::vector<wifi::CsiPacket> MakePackets(
    const std::vector<double>& angles_deg, const std::vector<double>& gains,
    std::size_t num_packets, double snr_db, Rng& rng,
    std::size_t num_antennas = 3) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(num_antennas, kWavelength / 2.0,
                                       kPi / 2.0);
  propagation::PathSet paths;
  for (std::size_t i = 0; i < angles_deg.size(); ++i) {
    propagation::Path p;
    const double theta = DegToRad(angles_deg[i]);
    // Array axis +y, broadside +x/-x. A source at broadside angle theta sits
    // at direction (cos from -x ...). toward_source - axis: we need
    // sin(theta) = cos(toward_source - pi/2) => toward_source = pi/2 +-
    // acos(sin theta). Choose travel = toward_source + pi.
    const double toward_source = kPi / 2.0 + std::acos(std::sin(theta));
    p.arrival_direction_rad = toward_source + kPi;
    p.length_m = 3.0 + 0.37 * static_cast<double>(i);  // decorrelate phases
    p.gain_at_center = gains[i];
    paths.push_back(p);
  }

  std::vector<wifi::CsiPacket> packets;
  wifi::NoiseModel noise;
  noise.snr_db = snr_db;
  noise.random_common_phase = true;
  noise.sto_range_s = 0.0;
  noise.gain_drift_db = 0.0;
  for (std::size_t n = 0; n < num_packets; ++n) {
    // Give each path a small random length jitter so snapshots decorrelate
    // (a perfectly static coherent scene is MUSIC's known degenerate case).
    propagation::PathSet jittered = paths;
    for (auto& p : jittered) {
      p.length_m += rng.Gaussian(0.0, 0.01);
    }
    auto cfr = wifi::SynthesizeCfr(jittered, band, array);
    wifi::ApplyNoise(cfr, band.AllOffsetsHz(), noise, rng);
    wifi::CsiPacket packet;
    packet.csi = std::move(cfr);
    packets.push_back(std::move(packet));
  }
  return packets;
}

TEST(AngleFromPhaseShift, Eq16KnownValues) {
  EXPECT_NEAR(AngleFromPhaseShift(0.0), 0.0, 1e-12);
  EXPECT_NEAR(AngleFromPhaseShift(kPi / 2.0), DegToRad(30.0), 1e-9);
  EXPECT_NEAR(AngleFromPhaseShift(kPi), DegToRad(90.0), 1e-9);
  EXPECT_NEAR(AngleFromPhaseShift(-kPi / 2.0), DegToRad(-30.0), 1e-9);
}

TEST(AngleFromPhaseShift, ClampsOutOfRange) {
  EXPECT_NEAR(AngleFromPhaseShift(1.5 * kPi), kPi / 2.0, 1e-12);
  EXPECT_NEAR(AngleFromPhaseShift(-1.5 * kPi), -kPi / 2.0, 1e-12);
}

TEST(SampleCovariance, HermitianPsd) {
  Rng rng(3);
  const auto packets = MakePackets({0.0, 40.0}, {1.0, 0.5}, 10, 25.0, rng);
  const auto r = SampleCovariance(packets);
  EXPECT_EQ(r.rows(), 3u);
  EXPECT_TRUE(r.IsHermitian(1e-9));
  // Diagonal real and positive.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(r.At(i, i).real(), 0.0);
    EXPECT_NEAR(r.At(i, i).imag(), 0.0, 1e-12);
  }
}

TEST(SampleCovariance, WeightsChangeResult) {
  Rng rng(5);
  const auto packets = MakePackets({10.0}, {1.0}, 5, 20.0, rng);
  const auto r_uniform = SampleCovariance(packets);
  std::vector<double> weights(30, 0.0);
  weights[3] = 1.0;  // only subcarrier 3 contributes
  const auto r_weighted = SampleCovariance(packets, weights);
  EXPECT_GT((r_uniform - r_weighted).FrobeniusNorm(), 0.0);
}

TEST(SampleCovariance, AllZeroWeightsThrow) {
  Rng rng(5);
  const auto packets = MakePackets({10.0}, {1.0}, 2, 20.0, rng);
  EXPECT_THROW(SampleCovariance(packets, std::vector<double>(30, 0.0)),
               PreconditionError);
}

TEST(Music, ResolvesSingleSource) {
  Rng rng(7);
  for (double angle : {-50.0, -20.0, 0.0, 15.0, 45.0}) {
    const auto packets = MakePackets({angle}, {1.0}, 20, 30.0, rng);
    MusicConfig config;
    config.num_sources = 1;
    const auto spectrum = ComputeMusicSpectrum(packets,
                                               wifi::UniformLinearArray(
                                                   3, kWavelength / 2.0,
                                                   kPi / 2.0),
                                               wifi::BandPlan::Intel5300Channel11(),
                                               config);
    const auto peaks = spectrum.PeakAngles(1);
    ASSERT_FALSE(peaks.empty()) << "angle=" << angle;
    EXPECT_NEAR(peaks[0], angle, 4.0) << "angle=" << angle;
  }
}

TEST(Music, ResolvesTwoWellSeparatedSources) {
  Rng rng(11);
  const auto packets = MakePackets({-10.0, 50.0}, {1.0, 0.7}, 40, 30.0, rng);
  const auto spectrum = ComputeMusicSpectrum(
      packets, wifi::UniformLinearArray(3, kWavelength / 2.0, kPi / 2.0),
      wifi::BandPlan::Intel5300Channel11());
  const auto peaks = spectrum.PeakAngles(2);
  ASSERT_EQ(peaks.size(), 2u);
  const double lo = std::min(peaks[0], peaks[1]);
  const double hi = std::max(peaks[0], peaks[1]);
  EXPECT_NEAR(lo, -10.0, 6.0);
  EXPECT_NEAR(hi, 50.0, 6.0);
}

TEST(Music, StrongerSourceHasTallerPeak) {
  Rng rng(13);
  const auto packets = MakePackets({-30.0, 30.0}, {1.0, 0.4}, 40, 30.0, rng);
  const auto spectrum = ComputeMusicSpectrum(
      packets, wifi::UniformLinearArray(3, kWavelength / 2.0, kPi / 2.0),
      wifi::BandPlan::Intel5300Channel11());
  EXPECT_GT(spectrum.ValueAt(-30.0), spectrum.ValueAt(30.0));
}

TEST(Music, LargerArrayResolvesCloseSources) {
  // The paper's future-work note: angular resolution is set by the antenna
  // aperture. Two sources 14 degrees apart must be cleanly resolved by an
  // 8-element array.
  Rng rng(17);
  const auto p8 = MakePackets({0.0, 14.0}, {1.0, 0.9}, 60, 30.0, rng, 8);
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto s8 = ComputeMusicSpectrum(
      p8, wifi::UniformLinearArray(8, kWavelength / 2.0, kPi / 2.0), band);
  const auto peaks = s8.PeakAngles(2);
  ASSERT_EQ(peaks.size(), 2u);
  const double lo = std::min(peaks[0], peaks[1]);
  const double hi = std::max(peaks[0], peaks[1]);
  EXPECT_NEAR(lo, 0.0, 4.0);
  EXPECT_NEAR(hi, 14.0, 4.0);
}

TEST(Music, NormalizedSpectrumHasUnitNorm) {
  Rng rng(19);
  const auto packets = MakePackets({0.0}, {1.0}, 10, 25.0, rng);
  const auto spectrum =
      ComputeMusicSpectrum(packets,
                           wifi::UniformLinearArray(3, kWavelength / 2.0,
                                                    kPi / 2.0),
                           wifi::BandPlan::Intel5300Channel11())
          .Normalized();
  double norm = 0.0;
  for (double v : spectrum.power) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(Music, ConfigValidation) {
  Rng rng(23);
  const auto packets = MakePackets({0.0}, {1.0}, 3, 25.0, rng);
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(3, kWavelength / 2.0, kPi / 2.0);
  MusicConfig bad;
  bad.num_sources = 3;  // must be < antennas
  EXPECT_THROW(ComputeMusicSpectrum(packets, array, band, bad),
               PreconditionError);
  bad.num_sources = 0;
  EXPECT_THROW(ComputeMusicSpectrum(packets, array, band, bad),
               PreconditionError);
  MusicConfig bad_range;
  bad_range.theta_min_deg = 10.0;
  bad_range.theta_max_deg = -10.0;
  EXPECT_THROW(ComputeMusicSpectrum(packets, array, band, bad_range),
               PreconditionError);
}

TEST(Music, GridCoversConfiguredRange) {
  Rng rng(29);
  const auto packets = MakePackets({0.0}, {1.0}, 5, 25.0, rng);
  MusicConfig config;
  config.theta_min_deg = -45.0;
  config.theta_max_deg = 45.0;
  config.num_points = 91;
  const auto spectrum = ComputeMusicSpectrum(
      packets, wifi::UniformLinearArray(3, kWavelength / 2.0, kPi / 2.0),
      wifi::BandPlan::Intel5300Channel11(), config);
  ASSERT_EQ(spectrum.theta_deg.size(), 91u);
  EXPECT_NEAR(spectrum.theta_deg.front(), -45.0, 1e-12);
  EXPECT_NEAR(spectrum.theta_deg.back(), 45.0, 1e-12);
  EXPECT_NEAR(spectrum.theta_deg[1] - spectrum.theta_deg[0], 1.0, 1e-12);
}

}  // namespace
}  // namespace mulink::core
