#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/rng.h"
#include "core/sanitize.h"
#include "propagation/path.h"
#include "wifi/cfr.h"
#include "wifi/noise.h"

namespace mulink::core {
namespace {

wifi::CsiPacket MakePacket(const linalg::CMatrix& csi) {
  wifi::CsiPacket p;
  p.csi = csi;
  return p;
}

TEST(Unwrap, NoJumpsUnchanged) {
  const std::vector<double> phases = {0.0, 0.3, 0.6, 0.9};
  EXPECT_EQ(UnwrapPhase(phases), phases);
}

TEST(Unwrap, RecoversLinearRamp) {
  // A steep linear ramp wrapped into (-pi, pi] unwraps back to a line.
  std::vector<double> wrapped;
  const double slope = 1.9;  // rad per step, below the pi Nyquist limit
  for (int i = 0; i < 40; ++i) {
    double ph = slope * i;
    while (ph > kPi) ph -= 2.0 * kPi;
    wrapped.push_back(ph);
  }
  const auto unwrapped = UnwrapPhase(wrapped);
  for (int i = 0; i < 40; ++i) {
    EXPECT_NEAR(unwrapped[static_cast<std::size_t>(i)], slope * i, 1e-9);
  }
}

TEST(Unwrap, HandlesNegativeRamp) {
  std::vector<double> wrapped;
  for (int i = 0; i < 30; ++i) {
    double ph = -0.9 * i;
    while (ph <= -kPi) ph += 2.0 * kPi;
    wrapped.push_back(ph);
  }
  const auto unwrapped = UnwrapPhase(wrapped);
  for (int i = 1; i < 30; ++i) {
    EXPECT_NEAR(unwrapped[static_cast<std::size_t>(i)] -
                    unwrapped[static_cast<std::size_t>(i - 1)],
                -0.9, 1e-9);
  }
}

TEST(Sanitize, RemovesCommonPhase) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  linalg::CMatrix csi(1, band.NumSubcarriers());
  const double common = 1.234;
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    csi.At(0, k) = std::polar(1.0, common);
  }
  const auto clean = SanitizePhase(MakePacket(csi), band);
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    EXPECT_NEAR(std::arg(clean.csi.At(0, k)), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(clean.csi.At(0, k)), 1.0, 1e-12);
  }
}

TEST(Sanitize, RemovesStoSlope) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  linalg::CMatrix csi(1, band.NumSubcarriers());
  const double sto = 60e-9;
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    csi.At(0, k) = std::polar(1.0, -2.0 * kPi * band.OffsetHz(k) * sto);
  }
  const auto clean = SanitizePhase(MakePacket(csi), band);
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    EXPECT_NEAR(std::arg(clean.csi.At(0, k)), 0.0, 1e-6);
  }
}

TEST(Sanitize, PreservesAmplitudes) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  Rng rng(3);
  linalg::CMatrix csi(2, band.NumSubcarriers());
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
      csi.At(m, k) = std::polar(rng.Uniform(0.1, 2.0), rng.Uniform(-3.0, 3.0));
    }
  }
  const auto packet = MakePacket(csi);
  const auto clean = SanitizePhase(packet, band);
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
      EXPECT_NEAR(std::abs(clean.csi.At(m, k)), std::abs(csi.At(m, k)),
                  1e-12);
    }
  }
}

TEST(Sanitize, PreservesInterAntennaPhase) {
  // The correction must be common-mode so MUSIC's inter-antenna phase
  // relations survive: synthesize a 30-degree plane wave, add common phase
  // + STO, sanitize, and check antenna-pair phase differences are intact.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto array = wifi::UniformLinearArray::HalfWavelength3(0.0);

  propagation::Path p;
  p.vertices = {{0, 0}, {3, 0}};
  p.length_m = 3.0;
  p.gain_at_center = 1.0;
  p.arrival_direction_rad = 2.0;  // arbitrary oblique arrival

  linalg::CMatrix csi = wifi::SynthesizeCfr({p}, band, array);
  std::vector<double> before(band.NumSubcarriers());
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    before[k] = std::arg(csi.At(1, k) * std::conj(csi.At(0, k)));
  }

  wifi::NoiseModel model;
  model.snr_db = 300.0;
  model.random_common_phase = true;
  model.sto_range_s = 40e-9;
  model.gain_drift_db = 0.0;
  Rng rng(11);
  wifi::ApplyNoise(csi, band.AllOffsetsHz(), model, rng);

  const auto clean = SanitizePhase(MakePacket(csi), band);
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    const double after =
        std::arg(clean.csi.At(1, k) * std::conj(clean.csi.At(0, k)));
    EXPECT_NEAR(std::abs(std::polar(1.0, after) - std::polar(1.0, before[k])),
                0.0, 1e-6);
  }
}

TEST(Sanitize, CentersDominantTapNearZeroDelay) {
  // After sanitization the LOS energy lands at (near) zero delay, making
  // DominantTapPower meaningful per packet — the property Eq. 10 relies on.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  propagation::Path p;
  p.vertices = {{0, 0}, {4, 0}};
  p.length_m = 4.0;
  p.gain_at_center = 1.0;
  linalg::CMatrix csi(1, band.NumSubcarriers());
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    csi.At(0, k) = p.CoefficientAt(band.FrequencyHz(k));
  }
  const auto clean = SanitizePhase(MakePacket(csi), band);
  // All phases equal after de-sloping a single path -> the complex mean is
  // fully coherent: |mean of H_k| == mean of |H_k| (amplitudes still carry
  // the physical 1/f tilt, so compare against the amplitude mean).
  Complex mean(0, 0);
  double amp_mean = 0.0;
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    mean += clean.csi.At(0, k);
    amp_mean += std::abs(clean.csi.At(0, k));
  }
  mean /= 30.0;
  amp_mean /= 30.0;
  EXPECT_NEAR(std::abs(mean), amp_mean, 1e-6);
}

TEST(Sanitize, SessionVariantMatchesPerPacket) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  Rng rng(17);
  std::vector<wifi::CsiPacket> session;
  for (int i = 0; i < 3; ++i) {
    linalg::CMatrix csi(1, band.NumSubcarriers());
    for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
      csi.At(0, k) = std::polar(rng.Uniform(0.5, 1.5), rng.Uniform(-3, 3));
    }
    session.push_back(MakePacket(csi));
  }
  const auto cleaned = SanitizePhase(session, band);
  ASSERT_EQ(cleaned.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto one = SanitizePhase(session[i], band);
    for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
      EXPECT_EQ(cleaned[i].csi.At(0, k), one.csi.At(0, k));
    }
  }
}

}  // namespace
}  // namespace mulink::core
