#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "experiments/campaign.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

namespace mulink::experiments {
namespace {

TEST(Scenario, ClassroomMatchesPaperSetup) {
  const auto lc = MakeClassroomLink();
  EXPECT_EQ(lc.room.width(), 6.0);
  EXPECT_EQ(lc.room.depth(), 8.0);
  EXPECT_NEAR(lc.LinkLength(), 4.0, 1e-12);
  EXPECT_FALSE(lc.room.scatterers().empty());
}

TEST(Scenario, ShortWallLinkNearWall) {
  const auto lc = MakeShortWallLink();
  EXPECT_NEAR(lc.LinkLength(), 3.0, 1e-12);
  // Near the south wall: strong reflected path geometry (Fig. 5a), yet with
  // enough clearance for the 1 m arc of Fig. 5c test locations.
  EXPECT_LT(lc.tx.y, 1.5);
  EXPECT_GT(lc.tx.y, 1.0);
}

TEST(Scenario, PaperCasesCoverTwoRoomsAndFiveLinks) {
  const auto cases = MakePaperCases();
  ASSERT_EQ(cases.size(), 5u);
  // Distances are diverse, 3..5 m.
  double min_len = 1e9, max_len = 0.0;
  for (const auto& c : cases) {
    min_len = std::min(min_len, c.LinkLength());
    max_len = std::max(max_len, c.LinkLength());
    EXPECT_TRUE(c.room.Contains(c.tx));
    EXPECT_TRUE(c.room.Contains(c.rx));
    EXPECT_FALSE(c.room.scatterers().empty());
  }
  EXPECT_LT(min_len, 3.2);
  EXPECT_GT(max_len, 4.4);
  // Two distinct room shapes.
  EXPECT_NE(cases[0].room.width(), cases[4].room.width());
}

TEST(Scenario, ArrayFacesTransmitter) {
  const auto lc = MakeClassroomLink();
  const auto array = MakeArray(lc);
  EXPECT_EQ(array.num_antennas(), 3u);
  // LOS travel direction maps to broadside angle 0.
  EXPECT_NEAR(array.BroadsideAngle(lc.LinkDirection()), 0.0, 1e-9);
}

TEST(Scenario, SpotAngleConsistentWithArc) {
  const auto lc = MakeClassroomLink();
  for (double angle : {-45.0, 0.0, 30.0}) {
    const auto spots = AngularArc(lc, 1.0, {angle});
    ASSERT_EQ(spots.size(), 1u);
    EXPECT_NEAR(spots[0].angle_deg, angle, 1.0);
    EXPECT_NEAR(spots[0].distance_to_rx_m, 1.0, 0.05);
  }
}

TEST(Workload, GridHasNineInRoomSpots) {
  const auto lc = MakeClassroomLink();
  const auto spots = Grid3x3(lc);
  ASSERT_EQ(spots.size(), 9u);
  for (const auto& s : spots) {
    EXPECT_TRUE(lc.room.Contains(s.position));
    EXPECT_GT(s.distance_to_rx_m, 0.3);
  }
}

TEST(Workload, GridCoversNearAndFar) {
  const auto lc = MakeClassroomLink();
  const auto spots = Grid3x3(lc);
  double dmin = 1e9, dmax = 0.0;
  for (const auto& s : spots) {
    dmin = std::min(dmin, s.distance_to_rx_m);
    dmax = std::max(dmax, s.distance_to_rx_m);
  }
  EXPECT_LT(dmin, 1.6);
  EXPECT_GT(dmax, 3.5);
}

TEST(Workload, RandomNearLinkStaysNearLink) {
  const auto lc = MakeClassroomLink();
  Rng rng(3);
  const auto spots = RandomNearLink(lc, 200, 1.0, rng);
  ASSERT_EQ(spots.size(), 200u);
  const geometry::Segment los{lc.tx, lc.rx};
  for (const auto& s : spots) {
    EXPECT_TRUE(lc.room.Contains(s.position));
    EXPECT_LE(geometry::DistancePointToSegment(s.position, los), 1.0 + 1e-9);
  }
}

TEST(Workload, RangeSweepDistances) {
  const auto lc = MakeClassroomLink();
  const auto spots = RangeSweep(lc, {1.0, 2.0}, {0.0, 0.5});
  ASSERT_EQ(spots.size(), 4u);
  EXPECT_NEAR(spots[0].distance_to_rx_m, 1.0, 1e-9);
  EXPECT_NEAR(spots[1].distance_to_rx_m, std::hypot(1.0, 0.5), 1e-9);
}

TEST(Workload, CrossLinkWalkPerpendicularAndCentered) {
  const auto lc = MakeClassroomLink();
  const auto trace = CrossLinkWalk(lc, 0.5, 1.5);
  const geometry::Vec2 mid = (trace.from + trace.to) * 0.5;
  const geometry::Vec2 expected = (lc.tx + lc.rx) * 0.5;
  EXPECT_NEAR((mid - expected).Norm(), 0.0, 1e-9);
  // Perpendicular to the link.
  const geometry::Vec2 walk_dir = (trace.to - trace.from).Normalized();
  const geometry::Vec2 link_dir = (lc.rx - lc.tx).Normalized();
  EXPECT_NEAR(walk_dir.Dot(link_dir), 0.0, 1e-9);
}

TEST(Format, SeriesAndTableOutput) {
  std::ostringstream oss;
  PrintSeries(oss, "test", "x", "y", {1.0, 2.0}, {3.0, 4.0});
  EXPECT_NE(oss.str().find("## test"), std::string::npos);
  EXPECT_NE(oss.str().find("1.000\t3.000"), std::string::npos);

  std::ostringstream oss2;
  PrintTable(oss2, "tbl", {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_NE(oss2.str().find("tbl"), std::string::npos);
  EXPECT_NE(oss2.str().find("3"), std::string::npos);
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
}

TEST(Campaign, MiniCampaignProducesLabelledScores) {
  // One case, two spots, small packet counts: structure check, not accuracy.
  const auto lc = MakeClassroomLink();
  CampaignConfig config;
  config.packets_per_location = 100;
  config.calibration_packets = 100;
  config.empty_packets = 100;
  config.window_packets = 25;

  std::vector<HumanSpot> spots = {
      MakeSpot(lc, (lc.tx + lc.rx) * 0.5),
      MakeSpot(lc, {3.0, 5.0}),
  };
  const auto result = RunCampaign(
      {lc}, {spots},
      {core::DetectionScheme::kBaseline,
       core::DetectionScheme::kSubcarrierWeighting},
      config);

  ASSERT_EQ(result.schemes.size(), 2u);
  for (const auto& scheme : result.schemes) {
    EXPECT_EQ(scheme.positives.size(), 2u * 4u);  // 2 spots x 4 windows
    EXPECT_EQ(scheme.negatives.size(), 4u);
    for (const auto& w : scheme.positives) {
      EXPECT_EQ(w.case_index, 0);
      EXPECT_GT(w.distance_to_rx_m, 0.0);
    }
  }
  // ForScheme finds the right results.
  EXPECT_EQ(result.ForScheme(core::DetectionScheme::kBaseline).scheme,
            core::DetectionScheme::kBaseline);
  EXPECT_THROW(
      result.ForScheme(core::DetectionScheme::kSubcarrierAndPathWeighting),
      mulink::PreconditionError);
}

TEST(Campaign, RocFromMiniCampaignBeatsChance) {
  const auto lc = MakeClassroomLink();
  CampaignConfig config;
  config.packets_per_location = 150;
  config.calibration_packets = 150;
  config.empty_packets = 150;

  // On-LOS spots: should be easily detectable.
  std::vector<HumanSpot> spots = {
      MakeSpot(lc, (lc.tx + lc.rx) * 0.5),
      MakeSpot(lc, lc.tx + (lc.rx - lc.tx) * 0.25),
  };
  const auto result = RunCampaign(
      {lc}, {spots}, {core::DetectionScheme::kSubcarrierWeighting}, config);
  const auto roc = result.schemes[0].Roc();
  EXPECT_GT(roc.Auc(), 0.9);
}

TEST(Campaign, DetectionRateFiltering) {
  SchemeResult r;
  r.scheme = core::DetectionScheme::kBaseline;
  r.positives = {{1.0, 0, 1.0, 0.0}, {3.0, 0, 5.0, 0.0}};
  r.negatives = {{0.5, 0, 0.0, 0.0}};
  EXPECT_NEAR(r.DetectionRate(2.0), 0.5, 1e-12);
  EXPECT_NEAR(r.DetectionRate(0.5), 1.0, 1e-12);
  EXPECT_NEAR(r.FalsePositiveRate(0.4), 1.0, 1e-12);
  EXPECT_NEAR(r.FalsePositiveRate(0.6), 0.0, 1e-12);
  // Subset: only far windows.
  EXPECT_NEAR(r.DetectionRate(2.0,
                              [](const ScoredWindow& w) {
                                return w.distance_to_rx_m > 3.0;
                              }),
              1.0, 1e-12);
}

}  // namespace
}  // namespace mulink::experiments
