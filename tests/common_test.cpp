#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/assert.h"
#include "common/constants.h"
#include "common/error.h"
#include "common/rng.h"

namespace mulink {
namespace {

TEST(Constants, Channel11Wavelength) {
  // 2.462 GHz -> ~12.18 cm.
  EXPECT_NEAR(kWavelength, 0.1218, 0.0005);
}

TEST(Constants, SubcarrierMapMatchesCsiToolFootnote) {
  ASSERT_EQ(kIntel5300SubcarrierIndices.size(), 30u);
  EXPECT_EQ(kIntel5300SubcarrierIndices.front(), -28);
  EXPECT_EQ(kIntel5300SubcarrierIndices.back(), 28);
  // Strictly increasing.
  for (std::size_t i = 1; i < kIntel5300SubcarrierIndices.size(); ++i) {
    EXPECT_LT(kIntel5300SubcarrierIndices[i - 1],
              kIntel5300SubcarrierIndices[i]);
  }
  // The irregular center hop of the CSI tool map: ..., -2, -1, 1, 3, ...
  EXPECT_EQ(kIntel5300SubcarrierIndices[13], -2);
  EXPECT_EQ(kIntel5300SubcarrierIndices[14], -1);
  EXPECT_EQ(kIntel5300SubcarrierIndices[15], 1);
  EXPECT_EQ(kIntel5300SubcarrierIndices[16], 3);
}

TEST(Constants, SubcarrierFrequencySpansHt20) {
  const double lo = SubcarrierFrequencyHz(0);
  const double hi = SubcarrierFrequencyHz(29);
  EXPECT_DOUBLE_EQ(hi - lo, 56 * kSubcarrierSpacingHz);
  EXPECT_LT(lo, kChannel11CenterHz);
  EXPECT_GT(hi, kChannel11CenterHz);
}

TEST(Constants, DbConversionsRoundTrip) {
  EXPECT_NEAR(DbToPowerRatio(10.0), 10.0, 1e-12);
  EXPECT_NEAR(PowerRatioToDb(100.0), 20.0, 1e-12);
  EXPECT_NEAR(DbToAmplitudeRatio(20.0), 10.0, 1e-12);
  EXPECT_NEAR(AmplitudeRatioToDb(10.0), 20.0, 1e-12);
  for (double db : {-37.0, -3.0, 0.0, 1.5, 12.0}) {
    EXPECT_NEAR(PowerRatioToDb(DbToPowerRatio(db)), db, 1e-10);
    EXPECT_NEAR(AmplitudeRatioToDb(DbToAmplitudeRatio(db)), db, 1e-10);
  }
}

TEST(Constants, DbConversionRejectsNonPositive) {
  EXPECT_THROW(PowerRatioToDb(0.0), PreconditionError);
  EXPECT_THROW(AmplitudeRatioToDb(-1.0), PreconditionError);
}

TEST(Constants, DegRadRoundTrip) {
  EXPECT_NEAR(DegToRad(180.0), kPi, 1e-12);
  EXPECT_NEAR(RadToDeg(kPi / 2.0), 90.0, 1e-12);
}

TEST(Assert, RequireThrowsPrecondition) {
  EXPECT_THROW(MULINK_REQUIRE(false, "boom"), PreconditionError);
}

TEST(Assert, AssertThrowsInvariant) {
  EXPECT_THROW(MULINK_ASSERT(1 == 2), InvariantError);
}

TEST(Assert, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(MULINK_ASSERT(true));
  EXPECT_NO_THROW(MULINK_REQUIRE(true, "fine"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextU32() == child2.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(17);
  const auto perm = rng.Permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(19);
  const auto perm = rng.Permutation(100);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 15u);
}

TEST(Rng, GaussianRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.Gaussian(0.0, -1.0), PreconditionError);
}

}  // namespace
}  // namespace mulink
