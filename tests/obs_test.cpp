// Unit tests for the observability spine (src/obs): histogram bucketing and
// merge, registry counter/gauge semantics, deterministic shard merging, the
// trace ring's bounded-overwrite contract, and the serialized schemas the
// CLI and CI scrapers rely on.
//
// Recording calls compile to no-ops under -DMULINK_OBS=OFF, so every
// expectation about recorded state is gated on obs::kEnabled; the schema
// tests still run (all keys must exist with zero values) because scrapers
// must not break when the subsystem is compiled out.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "nic/frame_guard.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace mulink;

namespace {

TEST(LatencyHistogram, RecordsIntoPowerOfTwoBuckets) {
  obs::LatencyHistogram h;
  h.Record(100.0);    // below the floor -> bucket 0
  h.Record(300.0);    // [250, 500) -> bucket 0
  h.Record(600.0);    // [500, 1000) -> bucket 1
  h.Record(1.0e9);    // far past the top edge -> overflow bucket
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[obs::LatencyHistogram::kNumBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(h.min_ns, 100.0);
  EXPECT_DOUBLE_EQ(h.max_ns, 1.0e9);
  EXPECT_DOUBLE_EQ(h.total_ns, 100.0 + 300.0 + 600.0 + 1.0e9);
}

TEST(LatencyHistogram, MergeAccumulatesAndTracksExtremes) {
  obs::LatencyHistogram a;
  obs::LatencyHistogram b;
  a.Record(300.0);
  b.Record(50.0);
  b.Record(4000.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min_ns, 50.0);
  EXPECT_DOUBLE_EQ(a.max_ns, 4000.0);
  EXPECT_DOUBLE_EQ(a.total_ns, 4350.0);
  // Merging an empty histogram must not disturb the extremes.
  a.MergeFrom(obs::LatencyHistogram{});
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min_ns, 50.0);
}

TEST(LatencyHistogram, QuantilesAreMonotoneAndBounded) {
  obs::LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(250.0 * (1 + i % 64));
  const double p10 = h.ApproxQuantileNs(0.10);
  const double p50 = h.ApproxQuantileNs(0.50);
  const double p95 = h.ApproxQuantileNs(0.95);
  EXPECT_GT(p10, 0.0);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, h.max_ns + 1e-9);
  EXPECT_DOUBLE_EQ(obs::LatencyHistogram{}.ApproxQuantileNs(0.5), 0.0);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  obs::LatencyHistogram h;
  h.Record(1000.0);
  h.Reset();
  EXPECT_EQ(h.count, 0u);
  EXPECT_DOUBLE_EQ(h.total_ns, 0.0);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 0.0);
  for (const auto bucket : h.buckets) EXPECT_EQ(bucket, 0u);
}

TEST(Registry, CountersAndGaugesRoundTrip) {
  obs::Registry r;
  EXPECT_TRUE(r.Empty());
  r.Add(obs::Counter::kDecisions);
  r.Add(obs::Counter::kPacketsIngested, 24);
  r.Set(obs::Gauge::kPosterior, 0.875);
  if constexpr (obs::kEnabled) {
    EXPECT_FALSE(r.Empty());
    EXPECT_EQ(r.Get(obs::Counter::kDecisions), 1u);
    EXPECT_EQ(r.Get(obs::Counter::kPacketsIngested), 24u);
    EXPECT_TRUE(r.GaugeSet(obs::Gauge::kPosterior));
    EXPECT_FALSE(r.GaugeSet(obs::Gauge::kLastScore));
    EXPECT_DOUBLE_EQ(r.Get(obs::Gauge::kPosterior), 0.875);
  } else {
    EXPECT_TRUE(r.Empty());
    EXPECT_EQ(r.Get(obs::Counter::kDecisions), 0u);
  }
}

TEST(Registry, MergeFromIsOrderDeterministic) {
  obs::Registry a;
  obs::Registry b;
  a.Add(obs::Counter::kWindowsScored, 3);
  a.Set(obs::Gauge::kLastScore, 1.0);
  a.RecordStageNs(obs::Stage::kScore, 500.0);
  b.Add(obs::Counter::kWindowsScored, 4);
  b.Set(obs::Gauge::kLastScore, 2.0);
  b.RecordStageNs(obs::Stage::kScore, 900.0);

  obs::Registry total;
  total.MergeFrom(a);
  total.MergeFrom(b);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(total.Get(obs::Counter::kWindowsScored), 7u);
    // Submission order: the later shard's gauge wins.
    EXPECT_DOUBLE_EQ(total.Get(obs::Gauge::kLastScore), 2.0);
    EXPECT_EQ(total.StageLatency(obs::Stage::kScore).count, 2u);
    // A shard that never set the gauge must not clobber the merged value.
    total.MergeFrom(obs::Registry{});
    EXPECT_DOUBLE_EQ(total.Get(obs::Gauge::kLastScore), 2.0);
  }
}

TEST(Registry, IngestSamplingIsDeterministicPerShard) {
  obs::Registry r;
  std::vector<bool> pattern;
  for (std::uint64_t i = 0; i < 2 * obs::kIngestSampleEvery; ++i) {
    pattern.push_back(r.SampleIngestTick());
  }
  if constexpr (obs::kEnabled) {
    EXPECT_TRUE(pattern[0]);
    EXPECT_TRUE(pattern[obs::kIngestSampleEvery]);
    std::size_t sampled = 0;
    for (const bool hit : pattern) sampled += hit ? 1u : 0u;
    EXPECT_EQ(sampled, 2u);
    // A fresh shard replays the identical pattern.
    obs::Registry r2;
    for (std::uint64_t i = 0; i < pattern.size(); ++i) {
      EXPECT_EQ(r2.SampleIngestTick(), pattern[i]) << "tick " << i;
    }
  } else {
    for (const bool hit : pattern) EXPECT_FALSE(hit);
  }
}

TEST(Registry, ScopedStageTimerRecordsOnlyWithASink) {
  obs::Registry r;
  { obs::ScopedStageTimer timer(&r, obs::Stage::kFusion); }
  { obs::ScopedStageTimer timer(nullptr, obs::Stage::kFusion); }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(r.StageLatency(obs::Stage::kFusion).count, 1u);
  } else {
    EXPECT_EQ(r.StageLatency(obs::Stage::kFusion).count, 0u);
  }
}

TEST(TraceRing, OverwritesOldestAndCountsDrops) {
  const auto epoch = obs::TraceRing::Clock::now();
  obs::TraceRing ring(4, epoch, 9);
  for (int i = 0; i < 6; ++i) {
    obs::TraceEvent event;
    event.stage = obs::Stage::kScore;
    event.scope = i;
    ring.Record(event);
  }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 2u);
    const auto events = ring.Snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Oldest two (scope 0, 1) were overwritten; order is preserved.
    EXPECT_EQ(events.front().scope, 2);
    EXPECT_EQ(events.back().scope, 5);
  }
}

TEST(TraceRing, DrainIntoAppendsInOrderAndClears) {
  obs::TraceRing ring(8);
  for (int i = 0; i < 3; ++i) {
    obs::TraceEvent event;
    event.scope = i;
    ring.Record(event);
  }
  std::vector<obs::TraceEvent> out;
  ring.DrainInto(out);
  EXPECT_EQ(ring.size(), 0u);
  if constexpr (obs::kEnabled) {
    ASSERT_EQ(out.size(), 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].scope, i);
  }
}

TEST(TraceSpan, RecordsWithRingTidAndNullRingIsNoOp) {
  const auto epoch = obs::TraceRing::Clock::now();
  obs::TraceRing ring(8, epoch, 3);
  { obs::TraceSpan span(&ring, obs::Stage::kCase, 7); }
  { obs::TraceSpan span(nullptr, obs::Stage::kCase); }
  if constexpr (obs::kEnabled) {
    const auto events = ring.Snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].tid, 3u);
    EXPECT_EQ(events[0].scope, 7);
    EXPECT_EQ(events[0].stage, obs::Stage::kCase);
    EXPECT_GE(events[0].dur_us, 0.0);
  } else {
    EXPECT_EQ(ring.size(), 0u);
  }
}

// The JSON schema is the CI contract: every counter and stage key must be
// present even when its value is zero, so a scraper can assert on the shape
// without probing which links were active.
TEST(Export, MetricsJsonAlwaysContainsEveryKey) {
  obs::Registry r;
  std::ostringstream json;
  obs::WriteMetricsJson(json, r);
  const std::string text = json.str();
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const auto* name = obs::ToString(static_cast<obs::Counter>(i));
    EXPECT_NE(text.find('"' + std::string(name) + '"'), std::string::npos)
        << "missing counter key " << name;
  }
  for (std::size_t i = 0; i < obs::kNumStages; ++i) {
    const auto* name = obs::ToString(static_cast<obs::Stage>(i));
    EXPECT_NE(text.find('"' + std::string(name) + '"'), std::string::npos)
        << "missing stage key " << name;
  }
  EXPECT_NE(text.find("\"obs_enabled\""), std::string::npos);
}

TEST(Export, MetricsTableListsRecordedActivity) {
  obs::Registry r;
  r.Add(obs::Counter::kDecisions, 12);
  r.RecordStageNs(obs::Stage::kScore, 1500.0);
  std::ostringstream out;
  obs::WriteMetricsTable(out, r);
  if constexpr (obs::kEnabled) {
    EXPECT_NE(out.str().find("decisions"), std::string::npos);
    EXPECT_NE(out.str().find("score"), std::string::npos);
  }
}

TEST(Export, ChromeTraceIsCompleteEventFormat) {
  std::vector<obs::TraceEvent> events(1);
  events[0].stage = obs::Stage::kCalibrate;
  events[0].scope = 2;
  events[0].tid = 1;
  events[0].ts_us = 10.0;
  events[0].dur_us = 5.0;
  std::ostringstream out;
  obs::WriteChromeTrace(out, events);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("calibrate"), std::string::npos);
}

TEST(Export, LinkHealthJsonCarriesGuardCounters) {
  nic::LinkHealth health;
  health.received = 100;
  health.accepted = 90;
  health.quarantined = 10;
  std::ostringstream out;
  obs::WriteLinkHealthJson(out, health);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"received\": 100"), std::string::npos);
  EXPECT_NE(text.find("\"quarantined\": 10"), std::string::npos);
}

TEST(Export, OneLineSummaryMentionsDecisions) {
  obs::Registry r;
  r.Add(obs::Counter::kDecisions, 3);
  const std::string line = obs::OneLineSummary(r);
  if constexpr (obs::kEnabled) {
    EXPECT_NE(line.find("dec=3"), std::string::npos);
  }
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

}  // namespace
