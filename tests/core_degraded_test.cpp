// Degraded-mode sensing tests: guarded ingest equivalence on clean streams,
// graceful fallback under injected NIC faults, the profile-drift watchdog,
// and the CI fault-matrix hook (MULINK_FAULT_PRESET).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "core/engine.h"
#include "core/streaming.h"
#include "experiments/scenario.h"
#include "nic/frame_guard.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

const core::DetectionScheme kAllSchemes[] = {
    core::DetectionScheme::kBaseline,
    core::DetectionScheme::kSubcarrierWeighting,
    core::DetectionScheme::kSubcarrierAndPathWeighting,
    core::DetectionScheme::kVarianceMobile,
};

struct DegradedFixture {
  ex::LinkCase link = ex::MakeClassroomLink();
  nic::ChannelSimulator sim = ex::MakeSimulator(link);
  Rng rng{321};
  std::vector<wifi::CsiPacket> calibration =
      sim.CaptureSession(300, std::nullopt, rng);
  std::vector<wifi::CsiPacket> empty_session =
      sim.CaptureSession(200, std::nullopt, rng);
  std::vector<wifi::CsiPacket> occupied_session;

  DegradedFixture() {
    propagation::HumanBody body;
    body.position = {3.0, 4.2};
    occupied_session = sim.CaptureSession(200, body, rng);
  }

  core::Detector Calibrated(core::DetectionScheme scheme) const {
    core::DetectorConfig config;
    config.scheme = scheme;
    auto detector = core::Detector::Calibrate(calibration, sim.band(),
                                              sim.array(), config);
    std::vector<std::vector<wifi::CsiPacket>> windows;
    for (std::size_t s = 0; s + 25 <= calibration.size(); s += 25) {
      windows.emplace_back(
          calibration.begin() + static_cast<std::ptrdiff_t>(s),
          calibration.begin() + static_cast<std::ptrdiff_t>(s + 25));
    }
    detector.CalibrateThreshold(windows);
    return detector;
  }
};

DegradedFixture& Fixture() {
  static DegradedFixture f;
  return f;
}

// For every scheme except the combined one (which always falls back to the
// subcarrier-only statistic), a full live mask must reproduce Score bit for
// bit — the mask plumbing adds no FP operations.
TEST(DegradedScoring, FullMaskBitIdenticalToScore) {
  auto& f = Fixture();
  for (auto scheme : kAllSchemes) {
    if (scheme == core::DetectionScheme::kSubcarrierAndPathWeighting) continue;
    const auto detector = f.Calibrated(scheme);
    const std::uint32_t full = (1u << detector.num_antennas()) - 1u;
    core::DetectorScratch scratch;
    const std::span<const wifi::CsiPacket> span(f.occupied_session);
    for (std::size_t start = 0; start + 25 <= span.size(); start += 25) {
      const auto window = span.subspan(start, 25);
      EXPECT_EQ(detector.Score(window, scratch),
                detector.ScoreDegraded(window, scratch, full))
          << core::ToString(scheme) << " window at " << start;
    }
  }
}

// The combined scheme's fallback lives on its own scale: CalibrateThreshold
// must derive a distinct fallback threshold; single-statistic schemes share
// the primary one.
TEST(DegradedScoring, FallbackThresholdCalibration) {
  auto& f = Fixture();
  const auto combined =
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
  EXPECT_NE(combined.fallback_threshold(), combined.threshold());
  EXPECT_GT(combined.fallback_threshold(), 0.0);
  const auto subcarrier =
      f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  EXPECT_EQ(subcarrier.fallback_threshold(), subcarrier.threshold());
}

// Masked scoring with a genuinely dead row must stay finite and must not
// see the dead row at all: zeroing a masked-out antenna changes nothing.
TEST(DegradedScoring, MaskedScoreIgnoresDeadRow) {
  auto& f = Fixture();
  for (auto scheme : kAllSchemes) {
    const auto detector = f.Calibrated(scheme);
    core::DetectorScratch scratch;
    const std::span<const wifi::CsiPacket> span(f.occupied_session);
    std::vector<wifi::CsiPacket> killed(span.begin(), span.begin() + 25);
    for (auto& packet : killed) {
      for (std::size_t k = 0; k < packet.NumSubcarriers(); ++k) {
        packet.csi.At(2, k) = Complex(0.0, 0.0);
      }
    }
    const std::uint32_t live = 0b011;
    const double with_zeros = detector.ScoreDegraded(
        std::span<const wifi::CsiPacket>(killed), scratch, live);
    EXPECT_TRUE(std::isfinite(with_zeros)) << core::ToString(scheme);
    const double from_clean =
        detector.ScoreDegraded(span.subspan(0, 25), scratch, live);
    // The phase-sanitize fit averages over antennas (dead row included), so
    // sanitizing schemes see a slightly different rotation; amplitude-only
    // baseline must match exactly.
    if (scheme == core::DetectionScheme::kBaseline) {
      EXPECT_EQ(with_zeros, from_clean);
    } else {
      EXPECT_TRUE(std::isfinite(from_clean)) << core::ToString(scheme);
    }
  }
}

// A guarded engine fed a clean stream must reproduce the unguarded engine's
// decisions bit for bit — the guard is free when nothing is wrong (the
// PR 1 equivalence contract with injection disabled).
TEST(GuardedIngest, CleanStreamBitIdenticalToUnguarded) {
  auto& f = Fixture();
  for (auto scheme : {core::DetectionScheme::kSubcarrierWeighting,
                      core::DetectionScheme::kSubcarrierAndPathWeighting}) {
    core::StreamingConfig plain;
    plain.use_hmm = false;
    core::StreamingConfig guarded = plain;
    guarded.guard_enabled = true;

    core::SensingEngine engine;
    engine.AddLink(f.Calibrated(scheme), {}, plain);
    engine.AddLink(f.Calibrated(scheme), {}, guarded);

    for (const auto* session : {&f.empty_session, &f.occupied_session}) {
      const std::span<const wifi::CsiPacket> span(*session);
      const auto& a = engine.ProcessBatch(0, span);
      std::vector<core::PresenceDecision> reference(a.decisions);
      const auto& b = engine.ProcessBatch(1, span);
      ASSERT_EQ(reference.size(), b.decisions.size())
          << core::ToString(scheme);
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].score, b.decisions[i].score);
        EXPECT_EQ(reference[i].posterior, b.decisions[i].posterior);
        EXPECT_EQ(reference[i].occupied, b.decisions[i].occupied);
        EXPECT_FALSE(b.decisions[i].degraded);
      }
    }
  }
}

// StreamingDetector and the engine must agree decision-for-decision under
// the same fault stream (the GuardedIngest state is shared logic).
TEST(GuardedIngest, StreamingAndBatchAgreeUnderFaults) {
  auto& f = Fixture();
  nic::FaultInjectionConfig faults;
  faults.enabled = true;
  faults.seed = 13;
  faults.drop_prob = 0.05;
  faults.corrupt_prob = 0.01;
  faults.dead_antenna = 2;
  faults.dead_from_packet = 100;
  auto config = ex::DefaultSimConfig();
  config.faults = faults;
  auto faulty = ex::MakeSimulator(f.link, config);
  Rng rng(808);
  propagation::HumanBody body;
  body.position = {3.0, 4.2};
  const auto session = faulty.CaptureSession(400, body, rng);

  core::StreamingConfig stream;
  stream.use_hmm = false;
  stream.guard_enabled = true;

  auto detector =
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
  core::StreamingDetector streaming(detector, {}, stream);
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), {}, stream);

  std::vector<core::PresenceDecision> pushed;
  for (const auto& packet : session) {
    if (auto d = streaming.Push(packet)) pushed.push_back(*d);
  }
  const auto& batch =
      engine.ProcessBatch(std::span<const wifi::CsiPacket>(session));
  ASSERT_EQ(pushed.size(), batch.decisions.size());
  ASSERT_FALSE(pushed.empty());
  bool any_degraded = false;
  for (std::size_t i = 0; i < pushed.size(); ++i) {
    EXPECT_EQ(pushed[i].score, batch.decisions[i].score);
    EXPECT_EQ(pushed[i].occupied, batch.decisions[i].occupied);
    EXPECT_EQ(pushed[i].degraded, batch.decisions[i].degraded);
    any_degraded |= pushed[i].degraded;
  }
  EXPECT_TRUE(any_degraded);
  const auto health = engine.Health(0);
  EXPECT_EQ(health.dead_antenna_mask, 1u << 2);
  EXPECT_GT(health.degraded_decisions, 0u);
}

// The fig07-style acceptance scenario: under 5% drop, 1% corruption and one
// dead RX chain, the guarded engine must emit only finite scores, fall back
// to the subcarrier-only statistic, and stay within the documented accuracy
// margin of the clean run (the fallback is the paper's subcarrier-weighting
// scheme, which gives up roughly 6 points of TP rate vs the combined one on
// fig07 — the 25-point margin below covers that plus small-sample noise).
TEST(GuardedIngest, AccuracyUnderFaultsWithinMarginOfCleanRun) {
  auto& f = Fixture();

  // Paired captures: same channel RNG seed, so the faulty stream rides the
  // identical channel realization (the injector has its own RNG stream).
  const auto capture = [&](bool with_faults) {
    auto config = ex::DefaultSimConfig();
    if (with_faults) {
      config.faults.enabled = true;
      config.faults.seed = 21;
      config.faults.drop_prob = 0.05;
      config.faults.corrupt_prob = 0.01;
      config.faults.dead_antenna = 2;
      config.faults.dead_from_packet = 100;
    }
    auto sim = ex::MakeSimulator(f.link, config);
    Rng rng(555);
    propagation::HumanBody body;
    body.position = {3.0, 4.2};
    std::pair<std::vector<wifi::CsiPacket>, std::vector<wifi::CsiPacket>> out;
    out.first = sim.CaptureSession(400, std::nullopt, rng);
    out.second = sim.CaptureSession(400, body, rng);
    return out;
  };
  const auto [clean_empty, clean_occupied] = capture(false);
  const auto [faulty_empty, faulty_occupied] = capture(true);

  core::StreamingConfig stream;
  stream.use_hmm = false;
  stream.guard_enabled = true;
  core::SensingEngine engine;
  engine.AddLink(
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting), {},
      stream);

  struct Rates {
    double positive_rate = 0.0;
    std::size_t decisions = 0;
    std::size_t degraded = 0;
  };
  const auto run = [&](const std::vector<wifi::CsiPacket>& session) {
    engine.Reset(0);
    const auto& batch =
        engine.ProcessBatch(std::span<const wifi::CsiPacket>(session));
    Rates rates;
    rates.decisions = batch.decisions.size();
    for (const auto& d : batch.decisions) {
      EXPECT_TRUE(std::isfinite(d.score));
      EXPECT_TRUE(std::isfinite(d.posterior));
      if (d.occupied) rates.positive_rate += 1.0;
      if (d.degraded) ++rates.degraded;
    }
    if (rates.decisions > 0) {
      rates.positive_rate /= static_cast<double>(rates.decisions);
    }
    return rates;
  };

  const Rates clean_fp = run(clean_empty);
  const Rates clean_tp = run(clean_occupied);
  const Rates faulty_fp = run(faulty_empty);
  const Rates faulty_tp = run(faulty_occupied);

  ASSERT_GT(faulty_tp.decisions, 0u);
  ASSERT_GT(faulty_fp.decisions, 0u);
  // The dead chain (from packet 100 of the faulty empty capture) must have
  // pushed the engine into fallback scoring.
  EXPECT_GT(faulty_fp.degraded + faulty_tp.degraded, 0u);
  // Documented margin: 25 points of TP rate, 30 points of FP rate. The FP
  // side is wider because the fallback threshold is calibrated on full-array
  // windows but applied to two-antenna scores, which sit slightly closer to
  // it on empty traffic.
  EXPECT_GE(faulty_tp.positive_rate, clean_tp.positive_rate - 0.25);
  EXPECT_LE(faulty_fp.positive_rate, clean_fp.positive_rate + 0.30);
  // The clean run itself must be sane, or the margins mean nothing.
  EXPECT_GT(clean_tp.positive_rate, 0.8);
  EXPECT_LT(clean_fp.positive_rate, 0.2);
}

// Watchdog: believed-empty windows whose scores climb toward the threshold
// must trip profile_drift; with a generous fraction it must stay quiet.
TEST(GuardedIngest, ProfileDriftWatchdog) {
  auto& f = Fixture();
  core::StreamingConfig stream;
  stream.use_hmm = false;
  stream.guard_enabled = true;
  stream.watchdog_min_windows = 4;

  // A tiny fraction makes ordinary empty-room scores count as drift: the
  // mechanism (EWMA over believed-empty windows, trip after min windows)
  // is what's under test.
  stream.watchdog_score_fraction = 0.01;
  core::SensingEngine engine;
  engine.AddLink(
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting), {},
      stream);
  engine.ProcessBatch(0, std::span<const wifi::CsiPacket>(f.empty_session));
  EXPECT_TRUE(engine.Health(0).profile_drift);
  EXPECT_GT(engine.Health(0).empty_score_ewma, 0.0);

  // Far above any empty score: never trips on a healthy profile.
  stream.watchdog_score_fraction = 2.0;
  core::SensingEngine quiet;
  quiet.AddLink(
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting), {},
      stream);
  quiet.ProcessBatch(0, std::span<const wifi::CsiPacket>(f.empty_session));
  EXPECT_FALSE(quiet.Health(0).profile_drift);

  // Reset clears the watchdog with the rest of the link state.
  engine.Reset(0);
  EXPECT_FALSE(engine.Health(0).profile_drift);
  EXPECT_EQ(engine.Health(0).empty_score_ewma, 0.0);
}

// CI fault-matrix hook: MULINK_FAULT_PRESET=drop|reorder|corrupt cranks one
// fault axis well past its default rate; whatever the preset, the guarded
// engine must keep every decision finite and the health ledger consistent.
TEST(FaultMatrix, PresetStreamKeepsDecisionsFiniteAndLedgerConsistent) {
  auto& f = Fixture();
  nic::FaultInjectionConfig faults;
  faults.enabled = true;
  faults.seed = 31;
  faults.drop_prob = 0.02;
  faults.reorder_prob = 0.01;
  faults.corrupt_prob = 0.005;
  if (const char* preset = std::getenv("MULINK_FAULT_PRESET")) {
    const std::string p(preset);
    if (p == "drop") faults.drop_prob = 0.15;
    if (p == "reorder") faults.reorder_prob = 0.15;
    if (p == "corrupt") faults.corrupt_prob = 0.08;
  }
  auto config = ex::DefaultSimConfig();
  config.faults = faults;
  auto sim = ex::MakeSimulator(f.link, config);
  Rng rng(606);
  propagation::HumanBody body;
  body.position = {3.0, 4.2};
  const auto empty = sim.CaptureSession(300, std::nullopt, rng);
  const auto occupied = sim.CaptureSession(300, body, rng);

  core::StreamingConfig stream;
  stream.guard_enabled = true;
  core::SensingEngine engine;
  engine.AddLink(
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting),
      {0.01, 0.02, 0.015, 0.02}, stream);

  std::size_t decisions = 0;
  for (const auto* session : {&empty, &occupied}) {
    const auto& batch =
        engine.ProcessBatch(std::span<const wifi::CsiPacket>(*session));
    decisions += batch.decisions.size();
    for (const auto& d : batch.decisions) {
      EXPECT_TRUE(std::isfinite(d.score));
      EXPECT_TRUE(std::isfinite(d.posterior));
    }
  }
  EXPECT_GT(decisions, 0u);

  // Drops shrink the capture itself, so "received" is whatever the NIC
  // delivered; every delivered frame must be accounted for in the ledger.
  const auto health = engine.Health(0);
  EXPECT_EQ(health.received, empty.size() + occupied.size());
  EXPECT_GT(health.received, 0u);
  EXPECT_EQ(health.received,
            health.accepted + health.repaired + health.quarantined);
}

}  // namespace
