#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/hmm.h"

namespace mulink::core {
namespace {

// Synthetic empty-room scores: log-normal around 0.1.
std::vector<double> EmptyScores(Rng& rng, std::size_t n, double log_mean = -2.3,
                                double log_sigma = 0.3) {
  std::vector<double> scores;
  for (std::size_t i = 0; i < n; ++i) {
    scores.push_back(std::exp(rng.Gaussian(log_mean, log_sigma)));
  }
  return scores;
}

TEST(Hmm, FitRecoversEmptyStatistics) {
  Rng rng(3);
  const auto hmm = PresenceHmm::FitFromEmptyScores(EmptyScores(rng, 5000));
  EXPECT_NEAR(hmm.empty_log_mean(), -2.3, 0.05);
  EXPECT_NEAR(hmm.empty_log_sigma(), 0.3, 0.05);
}

TEST(Hmm, PosteriorLowOnEmptyHighOnOccupied) {
  Rng rng(5);
  const auto hmm = PresenceHmm::FitFromEmptyScores(EmptyScores(rng, 500));
  // Occupied-like scores: ~e^(-2.3 + 4*0.3) ~ 0.33 and above.
  std::vector<double> sequence;
  for (int i = 0; i < 10; ++i) sequence.push_back(0.1);
  for (int i = 0; i < 10; ++i) sequence.push_back(0.5);
  const auto posterior = hmm.PosteriorOccupied(sequence);
  ASSERT_EQ(posterior.size(), 20u);
  for (int i = 2; i < 8; ++i) EXPECT_LT(posterior[i], 0.2) << i;
  for (int i = 12; i < 18; ++i) EXPECT_GT(posterior[i], 0.8) << i;
}

TEST(Hmm, AbsorbsIsolatedOutlier) {
  // One interference-burst window in an otherwise empty stream: the
  // memoryless threshold would alarm; the HMM posterior stays below 0.5.
  Rng rng(7);
  const auto hmm = PresenceHmm::FitFromEmptyScores(EmptyScores(rng, 500));
  std::vector<double> sequence(21, 0.1);
  sequence[10] = 0.6;  // way above any sane threshold
  const auto posterior = hmm.PosteriorOccupied(sequence);
  EXPECT_LT(posterior[10], 0.5);
  const auto states = hmm.Decode(sequence);
  EXPECT_FALSE(states[10]);
}

TEST(Hmm, SustainedEvidenceWins) {
  // Three consecutive hot windows should flip the state even though one
  // does not.
  Rng rng(9);
  const auto hmm = PresenceHmm::FitFromEmptyScores(EmptyScores(rng, 500));
  std::vector<double> sequence(20, 0.1);
  for (int i = 9; i < 14; ++i) sequence[static_cast<std::size_t>(i)] = 0.6;
  const auto states = hmm.Decode(sequence);
  EXPECT_TRUE(states[11]);
  EXPECT_FALSE(states[2]);
  EXPECT_FALSE(states[18]);
}

TEST(Hmm, ViterbiAgreesWithPosteriorOnClearSequences) {
  Rng rng(11);
  const auto hmm = PresenceHmm::FitFromEmptyScores(EmptyScores(rng, 500));
  std::vector<double> sequence;
  for (int i = 0; i < 15; ++i) sequence.push_back(0.08);
  for (int i = 0; i < 15; ++i) sequence.push_back(0.7);
  const auto posterior = hmm.PosteriorOccupied(sequence);
  const auto states = hmm.Decode(sequence);
  for (std::size_t t = 2; t + 2 < sequence.size(); ++t) {
    if (t < 13) {
      EXPECT_FALSE(states[t]) << t;
      EXPECT_LT(posterior[t], 0.5) << t;
    } else if (t > 16) {
      EXPECT_TRUE(states[t]) << t;
      EXPECT_GT(posterior[t], 0.5) << t;
    }
  }
}

TEST(Hmm, OnlineFilterTracksOccupancy) {
  Rng rng(13);
  const auto hmm = PresenceHmm::FitFromEmptyScores(EmptyScores(rng, 500));
  PresenceHmm::Filter filter(hmm);
  // Feed empty windows: posterior decays low.
  double p = 0.0;
  for (int i = 0; i < 10; ++i) p = filter.Update(0.1);
  EXPECT_LT(p, 0.2);
  // Feed occupied windows: posterior rises.
  for (int i = 0; i < 3; ++i) p = filter.Update(0.6);
  EXPECT_GT(p, 0.8);
  // Reset restores the prior.
  filter.Reset();
  EXPECT_NEAR(filter.posterior(), hmm.config().occupancy_prior, 1e-12);
}

TEST(Hmm, FilterIsCausalPosteriorIsNot) {
  // The smoother can use future evidence the filter cannot: right before a
  // long occupied run begins, the smoothed posterior anticipates it.
  Rng rng(15);
  const auto hmm = PresenceHmm::FitFromEmptyScores(EmptyScores(rng, 500));
  std::vector<double> sequence(10, 0.1);
  for (int i = 0; i < 10; ++i) sequence.push_back(0.7);

  PresenceHmm::Filter filter(hmm);
  std::vector<double> causal;
  for (double s : sequence) causal.push_back(filter.Update(s));
  const auto smoothed = hmm.PosteriorOccupied(sequence);
  // At the boundary window (first hot one), the smoother is at least as
  // confident as the causal filter.
  EXPECT_GE(smoothed[10] + 1e-9, causal[10]);
}

TEST(Hmm, ValidatesArguments) {
  EXPECT_THROW(PresenceHmm::FitFromEmptyScores({0.1}), PreconditionError);
  EXPECT_THROW(PresenceHmm::FitFromEmptyScores({0.1, -0.2}),
               PreconditionError);
  HmmConfig bad;
  bad.transition_prob = 0.0;
  EXPECT_THROW(PresenceHmm::FitFromEmptyScores({0.1, 0.2}, bad),
               PreconditionError);
  Rng rng(17);
  const auto hmm = PresenceHmm::FitFromEmptyScores(EmptyScores(rng, 100));
  EXPECT_THROW(hmm.PosteriorOccupied({}), PreconditionError);
  EXPECT_THROW(hmm.Decode({}), PreconditionError);
}

TEST(Hmm, DegenerateConstantScoresStillFit) {
  // All-identical calibration scores: sigma floor keeps the model sane.
  const auto hmm = PresenceHmm::FitFromEmptyScores({0.1, 0.1, 0.1, 0.1});
  EXPECT_GE(hmm.empty_log_sigma(), 0.05);
  const auto posterior = hmm.PosteriorOccupied({0.1, 0.1});
  for (double p : posterior) EXPECT_LT(p, 0.5);
}

}  // namespace
}  // namespace mulink::core
