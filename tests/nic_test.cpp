#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/rng.h"
#include "experiments/scenario.h"
#include "nic/channel_simulator.h"
#include "nic/intel5300.h"

namespace mulink::nic {
namespace {

TEST(Intel5300, PassThroughWithoutQuantization) {
  linalg::CMatrix cfr(1, 2);
  cfr.At(0, 0) = {0.123456, -0.654321};
  cfr.At(0, 1) = {1e-6, 2e-6};
  Intel5300Config config;
  config.quantize = false;
  const Intel5300Emulator nic(config);
  const auto packet = nic.Report(cfr, 1.5, 42);
  EXPECT_EQ(packet.timestamp_s, 1.5);
  EXPECT_EQ(packet.sequence, 42u);
  EXPECT_NEAR(std::abs(packet.csi.At(0, 0) - cfr.At(0, 0)), 0.0, 1e-15);
}

TEST(Intel5300, QuantizationPreservesScale) {
  linalg::CMatrix cfr(1, 3);
  cfr.At(0, 0) = {0.01, 0.0};
  cfr.At(0, 1) = {0.005, -0.003};
  cfr.At(0, 2) = {-0.002, 0.008};
  const Intel5300Emulator nic;
  const auto packet = nic.Report(cfr, 0.0, 0);
  // Quantization error is bounded by half an LSB of the AGC scale:
  // peak = 0.01 maps to 90 -> LSB = 0.01/90.
  const double lsb = 0.01 / 90.0;
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(packet.csi.At(0, k).real(), cfr.At(0, k).real(), 0.51 * lsb);
    EXPECT_NEAR(packet.csi.At(0, k).imag(), cfr.At(0, k).imag(), 0.51 * lsb);
  }
}

TEST(Intel5300, QuantizationCrushesTinyComponents) {
  linalg::CMatrix cfr(1, 2);
  cfr.At(0, 0) = {1.0, 0.0};
  cfr.At(0, 1) = {1e-5, 0.0};  // far below one LSB at full scale 90
  const Intel5300Emulator nic;
  const auto packet = nic.Report(cfr, 0.0, 0);
  EXPECT_EQ(packet.csi.At(0, 1), Complex(0.0, 0.0));
}

TEST(Intel5300, RssiReflectsTotalPower) {
  linalg::CMatrix cfr(1, 1);
  cfr.At(0, 0) = {10.0, 0.0};
  Intel5300Config config;
  config.quantize = false;
  const Intel5300Emulator nic(config);
  const auto packet = nic.Report(cfr, 0.0, 0);
  EXPECT_NEAR(packet.rssi_db, 20.0, 1e-9);
}

class ChannelSimulatorTest : public ::testing::Test {
 protected:
  ChannelSimulatorTest()
      : link_(experiments::MakeClassroomLink()),
        simulator_(experiments::MakeSimulator(link_)) {}

  experiments::LinkCase link_;
  ChannelSimulator simulator_;
};

TEST_F(ChannelSimulatorTest, PacketDimensions) {
  Rng rng(1);
  const auto packet = simulator_.CapturePacket(std::nullopt, rng);
  EXPECT_EQ(packet.NumAntennas(), 3u);
  EXPECT_EQ(packet.NumSubcarriers(), 30u);
  EXPECT_GT(packet.TotalPower(), 0.0);
}

TEST_F(ChannelSimulatorTest, TimestampsFollowPacketRate) {
  Rng rng(2);
  const auto session = simulator_.CaptureSession(5, std::nullopt, rng);
  ASSERT_EQ(session.size(), 5u);
  for (std::size_t i = 1; i < session.size(); ++i) {
    EXPECT_NEAR(session[i].timestamp_s - session[i - 1].timestamp_s,
                1.0 / 50.0, 1e-12);
    EXPECT_EQ(session[i].sequence, session[i - 1].sequence + 1);
  }
}

TEST_F(ChannelSimulatorTest, DeterministicGivenSeed) {
  auto sim_a = experiments::MakeSimulator(link_);
  auto sim_b = experiments::MakeSimulator(link_);
  Rng rng_a(99), rng_b(99);
  const auto pa = sim_a.CapturePacket(std::nullopt, rng_a);
  const auto pb = sim_b.CapturePacket(std::nullopt, rng_b);
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t k = 0; k < 30; ++k) {
      EXPECT_EQ(pa.csi.At(m, k), pb.csi.At(m, k));
    }
  }
}

TEST_F(ChannelSimulatorTest, HumanOnLosReducesPower) {
  // Average over packets to beat noise; human on the LOS midpoint shadows
  // the dominant path.
  Rng rng(3);
  const auto empty = simulator_.CaptureSession(60, std::nullopt, rng);
  propagation::HumanBody body;
  body.position = (link_.tx + link_.rx) * 0.5;
  const auto blocked = simulator_.CaptureSession(60, body, rng);
  double p_empty = 0.0, p_blocked = 0.0;
  for (const auto& p : empty) p_empty += p.TotalPower();
  for (const auto& p : blocked) p_blocked += p.TotalPower();
  EXPECT_LT(p_blocked, 0.75 * p_empty);
}

TEST_F(ChannelSimulatorTest, WalkCoversTrace) {
  Rng rng(4);
  propagation::HumanBody body;
  const geometry::Vec2 from{3.0, 2.0}, to{3.0, 6.0};
  // 4 m at 1 m/s at 50 pkt/s = 200 packets to finish the walk.
  const auto packets = simulator_.CaptureWalk(200, body, from, to, 1.0, rng);
  EXPECT_EQ(packets.size(), 200u);
}

TEST_F(ChannelSimulatorTest, StaticPathsContainLosAndReflections) {
  const auto paths = simulator_.StaticPaths();
  EXPECT_GE(propagation::FindLineOfSight(paths), 0);
  bool has_wall = false;
  for (const auto& p : paths) {
    if (p.kind == propagation::PathKind::kWallReflection) has_wall = true;
  }
  EXPECT_TRUE(has_wall);
}

TEST_F(ChannelSimulatorTest, BackgroundJitterPerturbsScatterPathsOnly) {
  // With huge background jitter, successive empty packets still carry a
  // stable LOS (jitter affects scatterers, not walls/TX/RX).
  nic::ChannelSimConfig config = experiments::DefaultSimConfig();
  config.background_jitter_m = 0.5;
  config.noise.snr_db = 300.0;
  config.noise.random_common_phase = false;
  config.noise.sto_range_s = 0.0;
  config.noise.gain_drift_db = 0.0;
  config.nic.quantize = false;
  auto simulator = experiments::MakeSimulator(link_, config);
  Rng rng(5);
  const auto a = simulator.CapturePacket(std::nullopt, rng);
  const auto b = simulator.CapturePacket(std::nullopt, rng);
  // Packets differ (scatterers moved)...
  double diff = 0.0;
  for (std::size_t k = 0; k < 30; ++k) {
    diff += std::abs(a.csi.At(0, k) - b.csi.At(0, k));
  }
  EXPECT_GT(diff, 0.0);
  // ...but not wildly: scatter paths are weak relative to LOS.
  double rel = 0.0;
  for (std::size_t k = 0; k < 30; ++k) {
    rel += std::abs(a.csi.At(0, k) - b.csi.At(0, k)) /
           std::abs(a.csi.At(0, k));
  }
  EXPECT_LT(rel / 30.0, 0.5);
}

}  // namespace
}  // namespace mulink::nic
