// Tests for smoothed MUSIC (Sec. IV-B1's rejected alternative) and the
// variance-based mobile-target scheme (Sec. III's statistic for moving
// people).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/detector.h"
#include "core/music.h"
#include "linalg/hermitian_eig.h"
#include "dsp/peaks.h"
#include "dsp/stats.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"
#include "propagation/path.h"
#include "wifi/cfr.h"
#include "wifi/noise.h"

namespace mulink::core {
namespace {

namespace ex = mulink::experiments;

// Two FULLY COHERENT sources (same per-packet jitter): plain MUSIC's known
// failure case and spatial smoothing's reason to exist.
std::vector<wifi::CsiPacket> CoherentTwoSource(double angle1_deg,
                                               double angle2_deg,
                                               std::size_t antennas,
                                               std::size_t packets, Rng& rng) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(antennas, kWavelength / 2.0, kPi / 2.0);
  const auto make_path = [&](double angle_deg, double length) {
    propagation::Path p;
    const double theta = DegToRad(angle_deg);
    p.arrival_direction_rad =
        kPi / 2.0 + std::acos(std::sin(theta)) + kPi;
    p.length_m = length;
    p.gain_at_center = 1.0;
    return p;
  };
  wifi::NoiseModel noise;
  noise.snr_db = 30.0;
  noise.sto_range_s = 0.0;
  noise.gain_drift_db = 0.0;

  std::vector<wifi::CsiPacket> out;
  for (std::size_t n = 0; n < packets; ++n) {
    // Coherent: both paths share one common phase realization — they are
    // copies of the SAME signal (multipath of one transmission).
    const double common = rng.Uniform(0.0, 0.02);
    propagation::PathSet paths = {make_path(angle1_deg, 3.0 + common),
                                  make_path(angle2_deg, 3.7 + common)};
    auto cfr = wifi::SynthesizeCfr(paths, band, array);
    wifi::ApplyNoise(cfr, band.AllOffsetsHz(), noise, rng);
    wifi::CsiPacket packet;
    packet.csi = std::move(cfr);
    out.push_back(std::move(packet));
  }
  return out;
}

TEST(SmoothedMusic, CovarianceShapeAndHermiticity) {
  Rng rng(3);
  const auto packets = CoherentTwoSource(-20.0, 30.0, 8, 20, rng);
  const auto full = SampleCovariance(packets);
  const auto smoothed = SpatiallySmoothedCovariance(full, 5);
  EXPECT_EQ(smoothed.rows(), 5u);
  EXPECT_EQ(smoothed.cols(), 5u);
  EXPECT_TRUE(smoothed.IsHermitian(1e-9));
}

TEST(SmoothedMusic, RestoresRankForCoherentSources) {
  // Full covariance of two coherent sources is (noise aside) rank 1; the
  // smoothed covariance regains a second significant eigenvalue.
  Rng rng(5);
  const auto packets = CoherentTwoSource(-20.0, 30.0, 8, 40, rng);
  const auto full = SampleCovariance(packets);
  const auto eig_full = linalg::HermitianEigen(full);
  const auto smoothed = SpatiallySmoothedCovariance(full, 5);
  const auto eig_smooth = linalg::HermitianEigen(smoothed);

  const auto second_ratio = [](const std::vector<double>& values) {
    // second-largest / largest
    return values[values.size() - 2] / values.back();
  };
  EXPECT_GT(second_ratio(eig_smooth.values),
            3.0 * second_ratio(eig_full.values));
}

TEST(SmoothedMusic, ResolvesCoherentPairWithLargeArray) {
  Rng rng(7);
  const auto packets = CoherentTwoSource(-20.0, 30.0, 8, 40, rng);
  const wifi::UniformLinearArray array(8, kWavelength / 2.0, kPi / 2.0);
  const auto spectrum = ComputeSmoothedMusicSpectrum(
      packets, array, wifi::BandPlan::Intel5300Channel11(), 5);
  const auto peaks = spectrum.PeakAngles(2);
  ASSERT_EQ(peaks.size(), 2u);
  const double lo = std::min(peaks[0], peaks[1]);
  const double hi = std::max(peaks[0], peaks[1]);
  EXPECT_NEAR(lo, -20.0, 8.0);
  EXPECT_NEAR(hi, 30.0, 8.0);
}

TEST(SmoothedMusic, ThreeAntennasResolveOnlyOnePath) {
  // The paper's stated reason for NOT smoothing: with 3 antennas the
  // subarrays have size 2, leaving room for a single source.
  Rng rng(9);
  const auto packets = CoherentTwoSource(-20.0, 30.0, 3, 40, rng);
  const wifi::UniformLinearArray array(3, kWavelength / 2.0, kPi / 2.0);
  MusicConfig config;
  config.num_sources = 1;  // all a size-2 subarray allows
  const auto spectrum = ComputeSmoothedMusicSpectrum(
      packets, array, wifi::BandPlan::Intel5300Channel11(), 2, config);
  // Only one broad peak: the second path cannot be separated.
  dsp::PeakOptions options;
  options.min_relative_height = 0.3;
  const auto peaks = dsp::FindPeaks(spectrum.power, options);
  EXPECT_LE(peaks.size(), 1u);
  // And two sources are rejected outright at this subarray size.
  MusicConfig two;
  two.num_sources = 2;
  EXPECT_THROW(ComputeSmoothedMusicSpectrum(
                   packets, array, wifi::BandPlan::Intel5300Channel11(), 2,
                   two),
               PreconditionError);
}

TEST(SmoothedMusic, ValidatesSubarraySize) {
  Rng rng(11);
  const auto packets = CoherentTwoSource(-20.0, 30.0, 3, 5, rng);
  const auto full = SampleCovariance(packets);
  EXPECT_THROW(SpatiallySmoothedCovariance(full, 1), PreconditionError);
  EXPECT_THROW(SpatiallySmoothedCovariance(full, 4), PreconditionError);
}

class MobileSchemeTest : public ::testing::Test {
 protected:
  MobileSchemeTest()
      : link_(ex::MakeClassroomLink()),
        sim_(ex::MakeSimulator(link_)),
        rng_(21) {
    DetectorConfig config;
    config.scheme = DetectionScheme::kVarianceMobile;
    detector_.emplace(Detector::Calibrate(
        sim_.CaptureSession(300, std::nullopt, rng_), sim_.band(),
        sim_.array(), config));
  }

  ex::LinkCase link_;
  nic::ChannelSimulator sim_;
  Rng rng_;
  std::optional<Detector> detector_;
};

TEST_F(MobileSchemeTest, WalkerThroughRoomScoresAboveEmpty) {
  std::vector<double> empty, moving;
  for (int i = 0; i < 6; ++i) {
    empty.push_back(detector_->Score(
        sim_.CaptureSession(25, std::nullopt, rng_)));
  }
  // A person walking across the room at 1 m/s.
  propagation::HumanBody body;
  const auto trace = ex::CrossLinkWalk(link_, 0.5, 1.5);
  const auto walk = sim_.CaptureWalk(150, body, trace.from, trace.to, 1.0,
                                     rng_);
  for (std::size_t start = 0; start + 25 <= walk.size(); start += 25) {
    moving.push_back(detector_->Score(std::vector<wifi::CsiPacket>(
        walk.begin() + static_cast<std::ptrdiff_t>(start),
        walk.begin() + static_cast<std::ptrdiff_t>(start + 25))));
  }
  // The mid-walk windows (near the link) must dominate every empty window.
  std::sort(moving.begin(), moving.end());
  EXPECT_GT(moving.back(), 2.0 * dsp::Max(empty));
}

TEST_F(MobileSchemeTest, MovingBeatsStationaryForVarianceStatistic) {
  // The paper's point: variance is the statistic for MOBILE targets. A
  // walking person modulates the channel packet-to-packet far more than the
  // same person standing still.
  propagation::HumanBody body;
  body.position = {3.0, 5.0};
  const double stationary =
      detector_->Score(sim_.CaptureSession(25, body, rng_));
  const auto trace = ex::CrossLinkWalk(link_, 0.5, 1.0);
  const auto walk = sim_.CaptureWalk(25, body, trace.from, trace.to, 1.5,
                                     rng_);
  const double moving = detector_->Score(walk);
  EXPECT_GT(moving, stationary);
}

TEST_F(MobileSchemeTest, RequiresTwoPackets) {
  const auto single = sim_.CaptureSession(1, std::nullopt, rng_);
  EXPECT_THROW(detector_->Score(single), PreconditionError);
}

TEST_F(MobileSchemeTest, SchemeNameIsStable) {
  EXPECT_STREQ(ToString(DetectionScheme::kVarianceMobile), "variance-mobile");
}

}  // namespace
}  // namespace mulink::core
