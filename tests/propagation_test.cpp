#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "geometry/segment.h"
#include "propagation/friis.h"
#include "propagation/human.h"
#include "propagation/path.h"
#include "propagation/ray_tracer.h"

namespace mulink::propagation {
namespace {

using geometry::Room;
using geometry::Vec2;

TEST(Friis, FreeSpaceMatchesTextbook) {
  // Free-space path loss at 2.4 GHz over 1 m: 20 lg(4 pi f d / c) ~ 40.05 dB.
  const FriisModel friis;
  const double gain = friis.PowerGain(1.0, 2.4e9);
  EXPECT_NEAR(-10.0 * std::log10(gain), 40.05, 0.1);
}

TEST(Friis, InverseSquareWithDistance) {
  const FriisModel friis;
  const double g1 = friis.PowerGain(1.0, kChannel11CenterHz);
  const double g2 = friis.PowerGain(2.0, kChannel11CenterHz);
  EXPECT_NEAR(g1 / g2, 4.0, 1e-9);
}

TEST(Friis, AttenuationFactorSteepensFalloff) {
  FriisModel lossy;
  lossy.attenuation_factor = 3.0;
  const double g1 = lossy.PowerGain(1.0, kChannel11CenterHz);
  const double g2 = lossy.PowerGain(2.0, kChannel11CenterHz);
  EXPECT_NEAR(g1 / g2, 8.0, 1e-9);
}

TEST(Friis, FrequencySquaredDependence) {
  const FriisModel friis;
  const double g1 = friis.PowerGain(3.0, 2.4e9);
  const double g2 = friis.PowerGain(3.0, 4.8e9);
  EXPECT_NEAR(g1 / g2, 4.0, 1e-9);
}

TEST(Friis, AmplitudeIsSqrtOfPower) {
  const FriisModel friis;
  const double p = friis.PowerGain(2.5, kChannel11CenterHz);
  const double a = friis.AmplitudeGain(2.5, kChannel11CenterHz);
  EXPECT_NEAR(a * a, p, 1e-15);
}

TEST(Friis, RejectsBadArguments) {
  const FriisModel friis;
  EXPECT_THROW(friis.PowerGain(0.0, 2.4e9), PreconditionError);
  EXPECT_THROW(friis.PowerGain(1.0, -1.0), PreconditionError);
}

TEST(BistaticScatter, SymmetricInLegs) {
  const double a = BistaticScatterAmplitude(1.0, 3.0, 2.4e9, 0.5);
  const double b = BistaticScatterAmplitude(3.0, 1.0, 2.4e9, 0.5);
  EXPECT_NEAR(a, b, 1e-15);
}

TEST(BistaticScatter, FallsWithLegProduct) {
  const double near = BistaticScatterAmplitude(1.0, 1.0, 2.4e9, 0.5);
  const double far = BistaticScatterAmplitude(2.0, 2.0, 2.4e9, 0.5);
  EXPECT_NEAR(near / far, 4.0, 1e-9);
}

TEST(BistaticScatter, ScalesWithSqrtCrossSection) {
  const double s1 = BistaticScatterAmplitude(2.0, 2.0, 2.4e9, 1.0);
  const double s4 = BistaticScatterAmplitude(2.0, 2.0, 2.4e9, 4.0);
  EXPECT_NEAR(s4 / s1, 2.0, 1e-12);
}

TEST(Path, CoefficientPhaseMatchesDelay) {
  Path p;
  p.length_m = kSpeedOfLight / kChannel11CenterHz;  // exactly one wavelength
  p.gain_at_center = 1.0;
  const Complex c = p.CoefficientAt(kChannel11CenterHz);
  // One full cycle: phase wraps to ~0.
  EXPECT_NEAR(std::arg(c), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Path, GainFollowsInverseFrequency) {
  Path p;
  p.gain_at_center = 2.0;
  EXPECT_NEAR(p.GainAt(kChannel11CenterHz), 2.0, 1e-15);
  EXPECT_NEAR(p.GainAt(2.0 * kChannel11CenterHz), 1.0, 1e-15);
}

TEST(Path, DelaySeconds) {
  Path p;
  p.length_m = 3.0;
  EXPECT_NEAR(p.DelaySeconds(), 3.0 / kSpeedOfLight, 1e-20);
}

class RayTracerTest : public ::testing::Test {
 protected:
  Room room_ = Room::Rectangular(6.0, 8.0, 0.5);
  FriisModel friis_;
};

TEST_F(RayTracerTest, LosAlwaysPresent) {
  const RayTracer tracer(room_, friis_, {});
  const auto paths = tracer.Trace({1, 4}, {5, 4});
  const int los = FindLineOfSight(paths);
  ASSERT_GE(los, 0);
  const auto& p = paths[static_cast<std::size_t>(los)];
  EXPECT_NEAR(p.length_m, 4.0, 1e-12);
  EXPECT_NEAR(p.arrival_direction_rad, 0.0, 1e-12);
}

TEST_F(RayTracerTest, OneBounceCountAndGeometry) {
  TraceOptions options;
  options.include_scatterers = false;
  options.min_relative_gain = 0.0;
  const RayTracer tracer(room_, friis_, options);
  const auto paths = tracer.Trace({1, 4}, {5, 4});
  // LOS + 4 wall bounces in an empty rectangle.
  ASSERT_EQ(paths.size(), 5u);

  for (const auto& p : paths) {
    if (p.kind != PathKind::kWallReflection) continue;
    // Image method invariant: polyline length equals |image(tx) - rx|, and
    // both legs make equal angles with the wall (specular reflection).
    ASSERT_EQ(p.vertices.size(), 3u);
    const Vec2 tx = p.vertices[0];
    const Vec2 bounce = p.vertices[1];
    const Vec2 rx = p.vertices[2];
    // Reflection law: angle of incidence = angle of reflection. The bounce
    // point is on a wall; check via mirrored collinearity: the mirror of tx
    // across the wall, the bounce and rx are collinear.
    bool found_wall = false;
    for (const auto& wall : room_.walls()) {
      if (geometry::DistancePointToSegment(bounce, wall.segment) < 1e-9) {
        const Vec2 image = geometry::MirrorAcross(tx, wall.segment);
        const Vec2 d1 = (bounce - image).Normalized();
        const Vec2 d2 = (rx - bounce).Normalized();
        EXPECT_NEAR((d1 - d2).Norm(), 0.0, 1e-9);
        EXPECT_NEAR(p.length_m,
                    geometry::Distance(tx, bounce) +
                        geometry::Distance(bounce, rx),
                    1e-9);
        found_wall = true;
      }
    }
    EXPECT_TRUE(found_wall);
  }
}

TEST_F(RayTracerTest, SymmetricLinkGivesSymmetricBounces) {
  TraceOptions options;
  options.include_scatterers = false;
  const RayTracer tracer(room_, friis_, options);
  const auto paths = tracer.Trace({1, 4}, {5, 4});
  // The y=0 and y=8 walls are equidistant from the link at y=4: equal
  // lengths, mirrored arrival angles.
  std::vector<const Path*> side_bounces;
  for (const auto& p : paths) {
    if (p.kind == PathKind::kWallReflection &&
        std::abs(std::abs(p.arrival_direction_rad) - kPi) > 0.1 &&
        std::abs(p.arrival_direction_rad) > 0.1) {
      side_bounces.push_back(&p);
    }
  }
  ASSERT_EQ(side_bounces.size(), 2u);
  EXPECT_NEAR(side_bounces[0]->length_m, side_bounces[1]->length_m, 1e-9);
  EXPECT_NEAR(side_bounces[0]->arrival_direction_rad,
              -side_bounces[1]->arrival_direction_rad, 1e-9);
}

TEST_F(RayTracerTest, WallReflectionWeakerThanLos) {
  const RayTracer tracer(room_, friis_, {});
  const auto paths = tracer.Trace({1, 4}, {5, 4});
  const int los = FindLineOfSight(paths);
  ASSERT_GE(los, 0);
  const double los_gain = paths[static_cast<std::size_t>(los)].gain_at_center;
  for (const auto& p : paths) {
    if (p.kind != PathKind::kLineOfSight) {
      EXPECT_LT(p.gain_at_center, los_gain);
    }
  }
}

TEST_F(RayTracerTest, TwoBounceAddsPaths) {
  TraceOptions one, two;
  one.include_scatterers = two.include_scatterers = false;
  one.max_wall_bounces = 1;
  two.max_wall_bounces = 2;
  one.min_relative_gain = two.min_relative_gain = 0.0;
  const auto p1 = RayTracer(room_, friis_, one).Trace({1, 4}, {5, 4});
  const auto p2 = RayTracer(room_, friis_, two).Trace({1, 4}, {5, 4});
  EXPECT_GT(p2.size(), p1.size());
}

TEST_F(RayTracerTest, ScatterersAddScatterPaths) {
  Room room = room_;
  room.AddScatterer({{3.0, 6.0}, 0.5, "cabinet"});
  TraceOptions options;
  options.min_relative_gain = 0.0;
  const RayTracer tracer(room, friis_, options);
  const auto paths = tracer.Trace({1, 4}, {5, 4});
  int scatter_count = 0;
  for (const auto& p : paths) {
    if (p.kind == PathKind::kScatter) {
      ++scatter_count;
      EXPECT_NEAR(p.length_m,
                  geometry::Distance({1, 4}, {3, 6}) +
                      geometry::Distance({3, 6}, {5, 4}),
                  1e-12);
    }
  }
  EXPECT_EQ(scatter_count, 1);
}

TEST_F(RayTracerTest, PruneDropsNegligiblePaths) {
  Room room = room_;
  room.AddScatterer({{3.0, 7.9}, 1e-8, "dust"});
  TraceOptions keep_all;
  keep_all.min_relative_gain = 0.0;
  TraceOptions prune;
  prune.min_relative_gain = 1e-3;
  const auto all = RayTracer(room, friis_, keep_all).Trace({1, 4}, {5, 4});
  const auto pruned = RayTracer(room, friis_, prune).Trace({1, 4}, {5, 4});
  EXPECT_GT(all.size(), pruned.size());
  // LOS survives pruning.
  EXPECT_GE(FindLineOfSight(pruned), 0);
}

TEST_F(RayTracerTest, CoincidentEndpointsThrow) {
  const RayTracer tracer(room_, friis_, {});
  EXPECT_THROW(tracer.Trace({1, 4}, {1, 4}), PreconditionError);
}

TEST(HumanShadow, FullBlockHitsBetaMin) {
  HumanBody body;
  body.min_shadow_amplitude = 0.3;
  EXPECT_NEAR(ShadowAttenuation(body, 0.0), 0.3, 1e-12);
}

TEST(HumanShadow, FarAwayIsTransparent) {
  HumanBody body;
  EXPECT_NEAR(ShadowAttenuation(body, 10.0), 1.0, 1e-9);
  EXPECT_NEAR(ShadowAttenuation(body,
                                std::numeric_limits<double>::infinity()),
              1.0, 1e-12);
}

TEST(HumanShadow, MonotoneInClearance) {
  HumanBody body;
  double prev = 0.0;
  for (double u = 0.0; u <= 3.0; u += 0.1) {
    const double b = ShadowAttenuation(body, u);
    EXPECT_GE(b, prev - 1e-12);
    prev = b;
  }
}

class HumanModelTest : public ::testing::Test {
 protected:
  Room room_ = Room::Rectangular(6.0, 8.0, 0.5);
  FriisModel friis_;
  Vec2 tx_{1, 4}, rx_{5, 4};

  PathSet StaticPaths() const {
    TraceOptions options;
    options.include_scatterers = false;
    return RayTracer(room_, friis_, options).Trace(tx_, rx_);
  }
};

TEST_F(HumanModelTest, OnLosShadowsLosPath) {
  const auto statics = StaticPaths();
  HumanBody body;
  body.position = {3, 4};  // dead on the LOS
  const auto with_human = ApplyHuman(statics, tx_, rx_, body);

  const int los_before = FindLineOfSight(statics);
  const int los_after = FindLineOfSight(with_human);
  ASSERT_GE(los_before, 0);
  ASSERT_GE(los_after, 0);
  const double g0 = statics[static_cast<std::size_t>(los_before)].gain_at_center;
  const double g1 =
      with_human[static_cast<std::size_t>(los_after)].gain_at_center;
  EXPECT_NEAR(g1 / g0, body.min_shadow_amplitude, 1e-6);
}

TEST_F(HumanModelTest, AddsExactlyOneReflectionPath) {
  const auto statics = StaticPaths();
  HumanBody body;
  body.position = {3, 5};
  const auto with_human = ApplyHuman(statics, tx_, rx_, body);
  ASSERT_EQ(with_human.size(), statics.size() + 1);
  const auto& refl = with_human.back();
  EXPECT_EQ(refl.kind, PathKind::kHumanReflection);
  EXPECT_NEAR(refl.length_m,
              geometry::Distance(tx_, body.position) +
                  geometry::Distance(body.position, rx_),
              1e-12);
}

TEST_F(HumanModelTest, OffLosLeavesLosUntouched) {
  const auto statics = StaticPaths();
  HumanBody body;
  body.position = {3, 6.5};  // far off the LOS
  const auto with_human = ApplyHuman(statics, tx_, rx_, body);
  const int los = FindLineOfSight(statics);
  ASSERT_GE(los, 0);
  EXPECT_NEAR(
      with_human[static_cast<std::size_t>(los)].gain_at_center /
          statics[static_cast<std::size_t>(los)].gain_at_center,
      1.0, 1e-3);
}

TEST_F(HumanModelTest, CanShadowReflectedPathOnly) {
  // Stand on a wall-reflection leg but away from the LOS: the LOS keeps its
  // gain while that reflection is attenuated (the paper's location A in
  // Fig. 1b).
  const auto statics = StaticPaths();
  // South wall (y=0) bounce of the 4 m link at y=4 happens at (3, 0);
  // stand on the TX->bounce leg at its midpoint (2, 2).
  HumanBody body;
  body.position = {2, 2};
  const auto with_human = ApplyHuman(statics, tx_, rx_, body);

  const int los = FindLineOfSight(statics);
  EXPECT_NEAR(with_human[static_cast<std::size_t>(los)].gain_at_center /
                  statics[static_cast<std::size_t>(los)].gain_at_center,
              1.0, 1e-3);

  bool shadowed_reflection = false;
  for (std::size_t i = 0; i < statics.size(); ++i) {
    if (statics[i].kind == PathKind::kWallReflection &&
        with_human[i].gain_at_center < 0.9 * statics[i].gain_at_center) {
      shadowed_reflection = true;
    }
  }
  EXPECT_TRUE(shadowed_reflection);
}

TEST_F(HumanModelTest, ReflectionStrongerWhenCloserToLink) {
  const auto statics = StaticPaths();
  HumanBody near_body, far_body;
  near_body.position = {3, 4.6};
  far_body.position = {3, 7.0};
  const auto near_paths = ApplyHuman(statics, tx_, rx_, near_body);
  const auto far_paths = ApplyHuman(statics, tx_, rx_, far_body);
  EXPECT_GT(near_paths.back().gain_at_center,
            far_paths.back().gain_at_center);
}

}  // namespace
}  // namespace mulink::propagation
