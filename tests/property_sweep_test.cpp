// Cross-cutting property sweeps (TEST_P) over randomized inputs: ray-tracer
// invariants in random rooms, link-model identities on parameter grids, and
// detector invariances.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/rng.h"
#include "core/detector.h"
#include "core/link_model.h"
#include "core/multipath_factor.h"
#include "core/subcarrier_weighting.h"
#include "dsp/stats.h"
#include "experiments/scenario.h"
#include "propagation/ray_tracer.h"
#include "propagation/transmission.h"
#include "wifi/cfr.h"

namespace mulink {
namespace {

namespace ex = mulink::experiments;

class RayTracerProperty : public ::testing::TestWithParam<int> {};

TEST_P(RayTracerProperty, InvariantsHoldInRandomRooms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const double width = rng.Uniform(4.0, 10.0);
  const double depth = rng.Uniform(4.0, 10.0);
  geometry::Room room =
      geometry::Room::Rectangular(width, depth, rng.Uniform(0.2, 0.7));
  const int num_scatterers = rng.UniformInt(0, 4);
  for (int i = 0; i < num_scatterers; ++i) {
    room.AddScatterer({{rng.Uniform(0.5, width - 0.5),
                        rng.Uniform(0.5, depth - 0.5)},
                       rng.Uniform(0.1, 0.5),
                       "random"});
  }
  const geometry::Vec2 tx{rng.Uniform(0.5, width - 0.5),
                          rng.Uniform(0.5, depth - 0.5)};
  geometry::Vec2 rx{rng.Uniform(0.5, width - 0.5),
                    rng.Uniform(0.5, depth - 0.5)};
  if (geometry::Distance(tx, rx) < 0.5) rx.x = std::min(width - 0.5, rx.x + 1.0);

  propagation::TraceOptions options;
  options.max_wall_bounces = 2;
  options.min_relative_gain = 0.0;
  const propagation::RayTracer tracer(room, propagation::FriisModel{},
                                      options);
  const auto paths = tracer.Trace(tx, rx);

  // (1) Exactly one LOS, and it is the shortest path.
  int los_count = 0;
  double los_length = 0.0;
  for (const auto& p : paths) {
    if (p.kind == propagation::PathKind::kLineOfSight) {
      ++los_count;
      los_length = p.length_m;
    }
  }
  ASSERT_EQ(los_count, 1);
  for (const auto& p : paths) {
    EXPECT_GE(p.length_m, los_length - 1e-9) << p.Describe();
    // (2) Positive finite gains, vertices anchored at TX and RX.
    EXPECT_GT(p.gain_at_center, 0.0);
    EXPECT_TRUE(std::isfinite(p.gain_at_center));
    EXPECT_NEAR(geometry::Distance(p.vertices.front(), tx), 0.0, 1e-9);
    EXPECT_NEAR(geometry::Distance(p.vertices.back(), rx), 0.0, 1e-9);
    // (3) Polyline length equals the recorded length.
    double poly = 0.0;
    for (std::size_t i = 0; i + 1 < p.vertices.size(); ++i) {
      poly += geometry::Distance(p.vertices[i], p.vertices[i + 1]);
    }
    EXPECT_NEAR(poly, p.length_m, 1e-9);
    // (4) Bounce vertices lie on walls.
    for (std::size_t i = 1; i + 1 < p.vertices.size(); ++i) {
      if (p.kind != propagation::PathKind::kWallReflection) continue;
      double nearest = 1e9;
      for (const auto& wall : room.walls()) {
        nearest = std::min(nearest, geometry::DistancePointToSegment(
                                        p.vertices[i], wall.segment));
      }
      EXPECT_LT(nearest, 1e-6);
    }
  }

  // (5) Swapping TX and RX preserves the path-length multiset (reciprocity).
  auto reverse_paths = tracer.Trace(rx, tx);
  ASSERT_EQ(reverse_paths.size(), paths.size());
  std::vector<double> forward_lengths, reverse_lengths;
  for (const auto& p : paths) forward_lengths.push_back(p.length_m);
  for (const auto& p : reverse_paths) reverse_lengths.push_back(p.length_m);
  std::sort(forward_lengths.begin(), forward_lengths.end());
  std::sort(reverse_lengths.begin(), reverse_lengths.end());
  for (std::size_t i = 0; i < forward_lengths.size(); ++i) {
    EXPECT_NEAR(forward_lengths[i], reverse_lengths[i], 1e-9);
  }

  // (6) Wall transmission in a shell-only room is a no-op.
  const auto transmitted = propagation::ApplyWallTransmission(paths, room);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_NEAR(transmitted[i].gain_at_center, paths[i].gain_at_center,
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRooms, RayTracerProperty,
                         ::testing::Range(0, 16));

class LinkModelGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LinkModelGrid, IdentitiesAcrossTheParameterPlane) {
  const double beta = std::get<0>(GetParam());
  const double gamma = std::get<1>(GetParam());
  for (double phi = 0.05; phi < 6.2; phi += 0.25) {
    const double mu = core::MultipathFactorClosedForm(gamma, phi);
    // mu stays within its physical range for gamma > 1.
    if (gamma > 1.0) {
      EXPECT_GT(mu, 0.0);
      EXPECT_LT(mu, gamma * gamma / ((gamma - 1.0) * (gamma - 1.0)) + 1e-9);
    }
    // Eq. 5 == Eq. 6 through mu.
    EXPECT_NEAR(core::ShadowingDeltaDbFromPhase(beta, gamma, phi),
                core::ShadowingDeltaDbFromMu(beta, gamma, mu), 1e-9);
    // beta = 1 (no attenuation) means no change.
    EXPECT_NEAR(core::ShadowingDeltaDbFromPhase(1.0, gamma, phi), 0.0, 1e-9);
    // eta = 0 (no new path) means no change.
    EXPECT_NEAR(core::ReflectionDeltaDbFromMu(0.0, gamma, phi, 1.0, mu), 0.0,
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BetaGammaGrid, LinkModelGrid,
    ::testing::Combine(::testing::Values(0.2, 0.4, 0.6, 0.8),
                       ::testing::Values(1.2, 2.0, 4.0, 8.0)));

TEST(DetectorInvariance, MedianSchemesIgnorePacketOrder) {
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(3);
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierWeighting;
  const auto detector = core::Detector::Calibrate(
      sim.CaptureSession(150, std::nullopt, rng), sim.band(), sim.array(),
      config);

  auto window = sim.CaptureSession(25, std::nullopt, rng);
  const double forward = detector.Score(window);
  std::reverse(window.begin(), window.end());
  EXPECT_NEAR(detector.Score(window), forward, 1e-12);
}

TEST(DetectorInvariance, CombinedSchemeGainResponseIsPredictable) {
  // The Bartlett angular statistic deliberately keeps amplitude sensitivity
  // (a vacant link changes mostly in amplitude — paper case 3), so a
  // uniform receive-gain change g moves the score to ~|g^2 - 1| (the
  // weighted spectrum difference relative to the profile). Small AGC drift
  // (fractions of a dB) therefore contributes only a few percent.
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(5);
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  const auto detector = core::Detector::Calibrate(
      sim.CaptureSession(150, std::nullopt, rng), sim.band(), sim.array(),
      config);

  auto window = sim.CaptureSession(25, std::nullopt, rng);
  const double g = 1.6;
  for (auto& packet : window) packet.csi *= Complex(g, 0.0);
  const double expected = g * g - 1.0;
  EXPECT_NEAR(detector.Score(window), expected, 0.15 * expected);

  // A realistic 0.2 dB AGC wobble stays near the noise floor of the score.
  auto mild = sim.CaptureSession(25, std::nullopt, rng);
  const double baseline_score = detector.Score(mild);
  const double wobble = std::pow(10.0, 0.2 / 20.0);
  for (auto& packet : mild) packet.csi *= Complex(wobble, 0.0);
  EXPECT_LT(detector.Score(mild), baseline_score + 0.08);
}

class WeightInvariance : public ::testing::TestWithParam<int> {};

TEST_P(WeightInvariance, WeightsArePermutationEquivariant) {
  // Permuting subcarrier columns of the mu matrix permutes the weights the
  // same way (no hidden positional dependence).
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  std::vector<std::vector<double>> mu(15, std::vector<double>(30));
  for (auto& row : mu) {
    for (auto& v : row) v = rng.Uniform(0.0, 1.0);
  }
  const auto base = core::ComputeSubcarrierWeights(mu);

  const auto perm = rng.Permutation(30);
  std::vector<std::vector<double>> permuted(15, std::vector<double>(30));
  for (std::size_t m = 0; m < 15; ++m) {
    for (std::size_t k = 0; k < 30; ++k) {
      permuted[m][k] = mu[m][perm[k]];
    }
  }
  const auto shuffled = core::ComputeSubcarrierWeights(permuted);
  for (std::size_t k = 0; k < 30; ++k) {
    EXPECT_NEAR(shuffled.weights[k], base.weights[perm[k]], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightInvariance, ::testing::Range(0, 8));

}  // namespace
}  // namespace mulink
