// Edge-case coverage across modules: degenerate inputs, boundary geometry,
// and statistical sanity checks that the main suites do not reach.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/roc.h"
#include "core/subcarrier_weighting.h"
#include "dsp/delay_domain.h"
#include "dsp/peaks.h"
#include "dsp/stats.h"
#include "geometry/fresnel.h"
#include "geometry/segment.h"
#include "linalg/hermitian_eig.h"
#include "propagation/human.h"
#include "propagation/ray_tracer.h"
#include "wifi/array.h"

namespace mulink {
namespace {

TEST(EdgeStats, SingleElementInputs) {
  EXPECT_EQ(dsp::Mean(std::vector<double>{5.0}), 5.0);
  EXPECT_EQ(dsp::Variance(std::vector<double>{5.0}), 0.0);
  EXPECT_EQ(dsp::Median({5.0}), 5.0);
  EXPECT_EQ(dsp::MedianAbsDeviation({5.0}), 0.0);
  EXPECT_EQ(dsp::Quantile({5.0}, 0.3), 5.0);
}

TEST(EdgeStats, MadIgnoresSingleOutlier) {
  std::vector<double> xs(21, 1.0);
  xs[10] = 1000.0;
  EXPECT_EQ(dsp::MedianAbsDeviation(xs), 0.0);
  // ...where the classical std-dev explodes.
  EXPECT_GT(dsp::StdDev(xs), 100.0);
}

TEST(EdgeStats, CorrelationRejectsConstantInput) {
  EXPECT_THROW(dsp::Correlation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}),
               PreconditionError);
}

TEST(EdgeStats, RngChiSquareUniformity) {
  // 16-bin chi-square on 32k uniform draws; bound is ~2x the 99.9th
  // percentile of chi2(15) — loose enough to never flake, tight enough to
  // catch a broken generator.
  Rng rng(12345);
  std::array<int, 16> bins{};
  const int n = 32768;
  for (int i = 0; i < n; ++i) {
    ++bins[static_cast<std::size_t>(rng.NextDouble() * 16.0)];
  }
  const double expected = n / 16.0;
  double chi2 = 0.0;
  for (int count : bins) {
    chi2 += (count - expected) * (count - expected) / expected;
  }
  EXPECT_LT(chi2, 60.0);
}

TEST(EdgeGeometry, DegenerateSegment) {
  const geometry::Segment point{{2, 3}, {2, 3}};
  EXPECT_EQ(point.Length(), 0.0);
  EXPECT_NEAR(geometry::DistancePointToSegment({5, 7}, point), 5.0, 1e-12);
  EXPECT_EQ(geometry::ClosestParameter({5, 7}, point), 0.0);
}

TEST(EdgeGeometry, CollinearSegmentsDoNotIntersect) {
  // Parallel-overlapping segments: the cross-product test reports no proper
  // intersection (documented behaviour of the image-method helper).
  EXPECT_FALSE(
      geometry::Intersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}).has_value());
}

TEST(EdgeGeometry, FresnelAtExactEndpointIsInfinite) {
  const geometry::Segment link{{0, 0}, {4, 0}};
  EXPECT_TRUE(std::isinf(
      geometry::FresnelClearanceRatio(link, {0, 0}, kWavelength)));
  EXPECT_TRUE(std::isinf(
      geometry::FresnelClearanceRatio(link, {4, 0}, kWavelength)));
}

TEST(EdgeEigen, NearDegenerateEigenvaluesStillOrthogonal) {
  // Two nearly equal eigenvalues: the eigenvectors must still come out
  // orthonormal.
  linalg::CMatrix a(3, 3);
  a.At(0, 0) = {1.0, 0.0};
  a.At(1, 1) = {1.0 + 1e-9, 0.0};
  a.At(2, 2) = {5.0, 0.0};
  a.At(0, 1) = {1e-10, 1e-10};
  a.At(1, 0) = std::conj(a.At(0, 1));
  const auto es = linalg::HermitianEigen(a);
  const auto vhv = es.vectors.Adjoint() * es.vectors;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(std::abs(vhv.At(r, c)), r == c ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(EdgeRoc, TiedScoresHandled) {
  // All positives and negatives share one value: the ROC is the two corner
  // points plus the all-or-nothing operating point.
  const auto curve = core::ComputeRoc({1.0, 1.0}, {1.0, 1.0});
  EXPECT_NEAR(curve.Auc(), 0.5, 1e-9);
  const auto best = curve.BestBalancedAccuracy();
  EXPECT_NEAR(core::BalancedAccuracy(best), 0.5, 1e-9);
}

TEST(EdgeRoc, ExtremeClassImbalance) {
  std::vector<double> positives = {10.0};
  std::vector<double> negatives(1000, 0.0);
  negatives[0] = 20.0;  // one hot negative
  const auto curve = core::ComputeRoc(positives, negatives);
  // TPR 1.0 is reachable at FPR 1/1000.
  EXPECT_NEAR(curve.TruePositiveAt(0.001), 1.0, 1e-9);
}

TEST(EdgeWeights, SingleSubcarrier) {
  const auto w = core::ComputeSubcarrierWeights({{0.4}, {0.5}});
  ASSERT_EQ(w.weights.size(), 1u);
  // One subcarrier: mu is never > its own median, so the stability vote is
  // zero and the fallback kicks in with the uniform weight.
  EXPECT_NEAR(w.weights[0], 1.0, 1e-12);
}

TEST(EdgePeaks, EndpointMaximaAreNotPeaks) {
  // Strictly decreasing: the maximum sits at index 0, which is not a local
  // peak by this detector's (interior-only) definition.
  EXPECT_TRUE(dsp::FindPeaks({5.0, 4.0, 3.0, 2.0}).empty());
}

TEST(EdgeDelay, SingleSubcarrierTransform) {
  const std::vector<Complex> cfr = {Complex(2.0, 0.0)};
  EXPECT_NEAR(dsp::DominantTapPower(cfr), 4.0, 1e-12);
  const auto taps = dsp::DelayTransform(cfr, {0.0}, {0.0, 1e-9});
  EXPECT_NEAR(std::abs(taps[0]), 2.0, 1e-12);
}

TEST(EdgeArray, SingleAntennaArray) {
  const wifi::UniformLinearArray solo(1, kWavelength / 2.0, 0.0);
  EXPECT_EQ(solo.AntennaOffset(0), 0.0);
  const auto a = solo.SteeringVector(0.7, kChannel11CenterHz);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_NEAR(std::abs(a[0] - Complex(1.0, 0.0)), 0.0, 1e-12);
}

TEST(EdgeHuman, ZeroCrossSectionMeansNoReflection) {
  const geometry::Room room = geometry::Room::Rectangular(6.0, 6.0, 0.0);
  propagation::TraceOptions options;
  options.include_scatterers = false;
  options.max_wall_bounces = 0;
  const propagation::RayTracer tracer(room, propagation::FriisModel{},
                                      options);
  const auto paths = tracer.Trace({1, 3}, {5, 3});
  propagation::HumanBody ghost;
  ghost.position = {3.0, 4.0};
  ghost.cross_section_m2 = 0.0;
  const auto with_ghost =
      propagation::ApplyHuman(paths, {1, 3}, {5, 3}, ghost);
  // The reflection path exists but carries zero gain.
  ASSERT_EQ(with_ghost.size(), paths.size() + 1);
  EXPECT_EQ(with_ghost.back().gain_at_center, 0.0);
}

TEST(EdgeHuman, BodyAtTxOrRxDoesNotCrash) {
  const geometry::Room room = geometry::Room::Rectangular(6.0, 6.0, 0.3);
  const propagation::RayTracer tracer(room, propagation::FriisModel{}, {});
  const auto paths = tracer.Trace({1, 3}, {5, 3});
  for (const geometry::Vec2 pos : {geometry::Vec2{1, 3}, geometry::Vec2{5, 3}}) {
    propagation::HumanBody body;
    body.position = pos;
    const auto out = propagation::ApplyHuman(paths, {1, 3}, {5, 3}, body);
    for (const auto& p : out) {
      EXPECT_TRUE(std::isfinite(p.gain_at_center)) << p.Describe();
      EXPECT_GE(p.gain_at_center, 0.0);
    }
  }
}

}  // namespace
}  // namespace mulink
