#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "experiments/scenario.h"
#include "core/detector.h"
#include "nic/csi_io.h"

namespace mulink::nic {
namespace {

namespace ex = mulink::experiments;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<wifi::CsiPacket> SampleSession(std::size_t n) {
  auto sim = ex::MakeSimulator(ex::MakeClassroomLink());
  Rng rng(42);
  return sim.CaptureSession(n, std::nullopt, rng);
}

TEST(CsiIo, BinaryRoundTripIsLossless) {
  const auto session = SampleSession(20);
  const auto path = TempPath("roundtrip.mlnk");
  WriteCsiSession(path, session);
  const auto loaded = ReadCsiSession(path);
  ASSERT_EQ(loaded.size(), session.size());
  for (std::size_t p = 0; p < session.size(); ++p) {
    EXPECT_EQ(loaded[p].timestamp_s, session[p].timestamp_s);
    EXPECT_EQ(loaded[p].rssi_db, session[p].rssi_db);
    EXPECT_EQ(loaded[p].sequence, session[p].sequence);
    ASSERT_EQ(loaded[p].NumAntennas(), session[p].NumAntennas());
    ASSERT_EQ(loaded[p].NumSubcarriers(), session[p].NumSubcarriers());
    for (std::size_t m = 0; m < session[p].NumAntennas(); ++m) {
      for (std::size_t k = 0; k < session[p].NumSubcarriers(); ++k) {
        EXPECT_EQ(loaded[p].csi.At(m, k), session[p].csi.At(m, k));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CsiIo, RejectsEmptySession) {
  EXPECT_THROW(WriteCsiSession(TempPath("empty.mlnk"), {}),
               PreconditionError);
}

TEST(CsiIo, RejectsInconsistentShapes) {
  auto session = SampleSession(2);
  session[1].csi = linalg::CMatrix(1, 30);
  EXPECT_THROW(WriteCsiSession(TempPath("ragged.mlnk"), session),
               PreconditionError);
}

TEST(CsiIo, RejectsMissingFile) {
  EXPECT_THROW(ReadCsiSession(TempPath("does-not-exist.mlnk")), Error);
}

TEST(CsiIo, RejectsBadMagic) {
  const auto path = TempPath("bad-magic.mlnk");
  std::ofstream out(path, std::ios::binary);
  out << "JUNKJUNKJUNKJUNKJUNKJUNK";
  out.close();
  EXPECT_THROW(ReadCsiSession(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(CsiIo, RejectsTruncatedFile) {
  const auto session = SampleSession(5);
  const auto path = TempPath("truncated.mlnk");
  WriteCsiSession(path, session);
  // Truncate to half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::string data(size / 2, '\0');
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  EXPECT_THROW(ReadCsiSession(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(CsiIo, RejectsTrailingBytes) {
  const auto session = SampleSession(3);
  const auto path = TempPath("trailing.mlnk");
  WriteCsiSession(path, session);
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write("extra", 5);
  out.close();
  EXPECT_THROW(ReadCsiSession(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(CsiIo, RejectsHeaderPacketCountMismatch) {
  const auto session = SampleSession(4);
  const auto path = TempPath("count-mismatch.mlnk");
  WriteCsiSession(path, session);
  // Claim one more packet than the body holds (offset 8: after magic and
  // version).
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(8);
  const std::uint32_t lied = 5;
  file.write(reinterpret_cast<const char*>(&lied), sizeof(lied));
  file.close();
  EXPECT_THROW(ReadCsiSession(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(CsiIo, RejectsNonFiniteCsiValues) {
  const auto session = SampleSession(3);
  const auto path = TempPath("nan-patch.mlnk");
  WriteCsiSession(path, session);
  // Overwrite the first CSI double of packet 0 with NaN: header is 20
  // bytes, per-packet metadata 24 bytes.
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(20 + 24);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  file.write(reinterpret_cast<const char*>(&nan), sizeof(nan));
  file.close();
  EXPECT_THROW(ReadCsiSession(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(CsiIo, TolerantModeAdmitsNonFinitePayloadForTheGuard) {
  const auto session = SampleSession(3);
  const auto path = TempPath("nan-tolerant.mlnk");
  WriteCsiSession(path, session);
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(20 + 24);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  file.write(reinterpret_cast<const char*>(&nan), sizeof(nan));
  file.close();
  // Strict read refuses; the tolerant read hands the corrupt frame through
  // so a FrameGuard can quarantine it with a diagnosis.
  EXPECT_THROW(ReadCsiSession(path), PreconditionError);
  const auto loaded = ReadCsiSession(path, CsiReadMode::kTolerant);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_TRUE(std::isnan(loaded[0].csi.At(0, 0).real()));
  // Structural checks still apply in tolerant mode.
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write("extra", 5);
  out.close();
  EXPECT_THROW(ReadCsiSession(path, CsiReadMode::kTolerant),
               PreconditionError);
  std::remove(path.c_str());
}

TEST(CsiIo, RejectsImplausibleHeaderDimensions) {
  const auto session = SampleSession(2);
  const auto path = TempPath("huge-header.mlnk");
  WriteCsiSession(path, session);
  // Claim 2^31 antennas (offset 12) — must be rejected before any
  // allocation is attempted.
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(12);
  const std::uint32_t absurd = 1u << 31;
  file.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  file.close();
  EXPECT_THROW(ReadCsiSession(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(CsiIo, CsvExportHasHeaderAndRows) {
  const auto session = SampleSession(3);
  const auto path = TempPath("export.csv");
  ExportCsiCsv(path, session);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("sequence,timestamp_s,antenna,amp_db_1"),
            std::string::npos);
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3u * 3u);  // packets x antennas
  std::remove(path.c_str());
}

TEST(CsiIo, ReplayedSessionDrivesTheDetector) {
  // The point of the format: a stored session is interchangeable with a live
  // capture. Calibrate from a file round-trip and score a window.
  auto sim = ex::MakeSimulator(ex::MakeClassroomLink());
  Rng rng(7);
  const auto calibration = sim.CaptureSession(100, std::nullopt, rng);
  const auto path = TempPath("calibration.mlnk");
  WriteCsiSession(path, calibration);
  const auto replayed = ReadCsiSession(path);

  mulink::core::DetectorConfig config;
  config.scheme = mulink::core::DetectionScheme::kSubcarrierWeighting;
  auto live = mulink::core::Detector::Calibrate(calibration, sim.band(), sim.array(),
                                        config);
  auto from_file = mulink::core::Detector::Calibrate(replayed, sim.band(), sim.array(),
                                             config);
  const auto window = sim.CaptureSession(25, std::nullopt, rng);
  EXPECT_DOUBLE_EQ(live.Score(window), from_file.Score(window));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mulink::nic
