// Exit-code contract tests for the mulink CLI, run in-process via RunCli.
//
// The table scripts rely on (tools/cli.h):
//   0  success
//   1  runtime Error (e.g. unreadable file)
//   2  PreconditionError — every argument-parse failure lands here
//   3  NumericalError, 4 InvariantError, 5 anything else
//
// Every parse failure must carry a "usage: mulink" hint on stderr, and
// option validation must run before any file IO so a malformed flag is
// exit 2 even when the files are bad too.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.h"

using mulink::tools::RunCli;

namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult Cli(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = RunCli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "mulink_cli_test_" + name;
}

TEST(CliExitCodes, NoArgumentsPrintsUsageAndSucceeds) {
  const auto r = Cli({});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("commands:"), std::string::npos);
  EXPECT_NE(r.out.find("exit codes:"), std::string::npos);
}

TEST(CliExitCodes, UnknownCommandIsPreconditionError) {
  const auto r = Cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliExitCodes, UnknownOptionIsExitTwoWithUsageHint) {
  const auto r = Cli({"detect", "--no-such-flag"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option '--no-such-flag'"), std::string::npos);
  EXPECT_NE(r.err.find("usage: mulink"), std::string::npos);
}

TEST(CliExitCodes, MissingOptionValueIsExitTwo) {
  const auto r = Cli({"simulate", "--packets"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("needs a value"), std::string::npos);
  EXPECT_NE(r.err.find("usage: mulink"), std::string::npos);
}

TEST(CliExitCodes, MalformedNumericIsExitTwoEvenWithMissingFiles) {
  // --window must be rejected before the (nonexistent) files are opened.
  const auto r = Cli({"detect", "--calibration", "/nonexistent/cal.mlnk",
                      "--session", "/nonexistent/ses.mlnk", "--window",
                      "25abc"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("expects a number"), std::string::npos);
}

TEST(CliExitCodes, NegativePacketCountIsExitTwo) {
  const auto r = Cli({"simulate", "--packets", "-5", "--out",
                      TempPath("never_written.mlnk")});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("non-negative integer"), std::string::npos);
}

TEST(CliExitCodes, WrongPositionalCountIsExitTwo) {
  EXPECT_EQ(Cli({"info"}).code, 2);
  EXPECT_EQ(Cli({"info", "a.mlnk", "extra.mlnk"}).code, 2);
  EXPECT_EQ(Cli({"export-csv", "only_one.mlnk"}).code, 2);
}

TEST(CliExitCodes, UnknownSchemeAndScenarioAreExitTwo) {
  EXPECT_EQ(Cli({"detect", "--calibration", "c", "--session", "s", "--scheme",
                 "psychic"})
                .code,
            2);
  EXPECT_EQ(
      Cli({"simulate", "--scenario", "atlantis", "--out", TempPath("x.mlnk")})
          .code,
      2);
}

TEST(CliExitCodes, UnreadableFileIsRuntimeErrorExitOne) {
  const auto r = Cli({"info", "/nonexistent/path/session.mlnk"});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST(CliRoundTrip, SimulateInfoDetectSucceed) {
  const auto empty_path = TempPath("empty.mlnk");
  const auto person_path = TempPath("person.mlnk");
  ASSERT_EQ(Cli({"simulate", "--scenario", "classroom", "--packets", "150",
                 "--out", empty_path})
                .code,
            0);
  ASSERT_EQ(Cli({"simulate", "--scenario", "classroom", "--packets", "100",
                 "--human", "3.0,4.5", "--out", person_path})
                .code,
            0);

  const auto info = Cli({"info", empty_path});
  EXPECT_EQ(info.code, 0);
  EXPECT_NE(info.out.find("packets:"), std::string::npos);

  const auto detect = Cli({"detect", "--calibration", empty_path, "--session",
                           person_path, "--metrics-json", "--guard-json"});
  EXPECT_EQ(detect.code, 0);
  // Both machine-readable surfaces ride on the obs serializers.
  EXPECT_NE(detect.out.find("\"obs_enabled\""), std::string::npos);
  EXPECT_NE(detect.out.find("\"counters\""), std::string::npos);
  EXPECT_NE(detect.out.find("\"quarantined\""), std::string::npos);
}

TEST(CliServe, UsageErrorsAreExitTwo) {
  EXPECT_EQ(Cli({"serve", "--links", "0"}).code, 2);
  EXPECT_EQ(Cli({"serve", "--packets", "0"}).code, 2);
  EXPECT_EQ(Cli({"serve", "--policy", "bogus"}).code, 2);
  EXPECT_EQ(Cli({"serve", "--links", "not-a-number"}).code, 2);
  EXPECT_EQ(Cli({"serve", "--no-such-flag"}).code, 2);
}

TEST(CliServe, SmokeRunReportsFleetCounters) {
  const auto r = Cli({"serve", "--links", "6", "--packets", "40", "--shards",
                      "2", "--window", "10"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("serve: 6 links over 2 shard(s)"), std::string::npos);
  EXPECT_NE(r.out.find("decisions:"), std::string::npos);
  EXPECT_NE(r.out.find("shard 0:"), std::string::npos);
  EXPECT_NE(r.out.find("shard 1:"), std::string::npos);
}

TEST(CliServe, DeterministicDecisionLogIsShardCountInvariant) {
  const auto log1 = TempPath("serve_log_1shard.txt");
  const auto log2 = TempPath("serve_log_2shard.txt");
  ASSERT_EQ(Cli({"serve", "--links", "5", "--packets", "30", "--window", "10",
                 "--shards", "1", "--deterministic", "--decision-log", log1})
                .code,
            0);
  ASSERT_EQ(Cli({"serve", "--links", "5", "--packets", "30", "--window", "10",
                 "--shards", "2", "--deterministic", "--decision-log", log2})
                .code,
            0);
  std::ifstream f1(log1), f2(log2);
  ASSERT_TRUE(f1 && f2);
  std::stringstream s1, s2;
  s1 << f1.rdbuf();
  s2 << f2.rdbuf();
  EXPECT_FALSE(s1.str().empty());
  // Hexfloat serialization makes bit-identity a plain byte compare.
  EXPECT_EQ(s1.str(), s2.str());
}

}  // namespace
