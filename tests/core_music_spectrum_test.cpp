// Tests for the Bartlett beamformer spectrum and pseudospectrum smoothing —
// the angular machinery the combined detection scheme runs on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/music.h"
#include "linalg/hermitian_eig.h"
#include "propagation/path.h"
#include "wifi/cfr.h"
#include "wifi/noise.h"

namespace mulink::core {
namespace {

std::vector<wifi::CsiPacket> PlaneWavePackets(double angle_deg, double gain,
                                              std::size_t num_packets,
                                              double snr_db, Rng& rng) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(3, kWavelength / 2.0, kPi / 2.0);
  propagation::Path p;
  const double theta = DegToRad(angle_deg);
  p.arrival_direction_rad = kPi / 2.0 + std::acos(std::sin(theta)) + kPi;
  p.length_m = 3.0;
  p.gain_at_center = gain;

  wifi::NoiseModel noise;
  noise.snr_db = snr_db;
  noise.sto_range_s = 0.0;
  noise.gain_drift_db = 0.0;

  std::vector<wifi::CsiPacket> packets;
  for (std::size_t n = 0; n < num_packets; ++n) {
    propagation::PathSet jittered = {p};
    jittered[0].length_m += rng.Gaussian(0.0, 0.01);
    auto cfr = wifi::SynthesizeCfr(jittered, band, array);
    wifi::ApplyNoise(cfr, band.AllOffsetsHz(), noise, rng);
    wifi::CsiPacket packet;
    packet.csi = std::move(cfr);
    packets.push_back(std::move(packet));
  }
  return packets;
}

const wifi::UniformLinearArray kArray(3, kWavelength / 2.0, kPi / 2.0);

TEST(Bartlett, PeakAtSourceAngle) {
  Rng rng(3);
  for (double angle : {-40.0, 0.0, 25.0}) {
    const auto packets = PlaneWavePackets(angle, 1.0, 20, 30.0, rng);
    const auto spectrum = ComputeBartlettSpectrum(
        packets, kArray, wifi::BandPlan::Intel5300Channel11());
    const auto peaks = spectrum.PeakAngles(1);
    ASSERT_FALSE(peaks.empty());
    EXPECT_NEAR(peaks[0], angle, 5.0) << "angle=" << angle;
  }
}

TEST(Bartlett, LinearInCovariance) {
  // B(theta; aR1 + bR2) == a B(theta; R1) + b B(theta; R2) — the property
  // Sec. IV-C's weighting argument needs.
  Rng rng(5);
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto p1 = PlaneWavePackets(-20.0, 1.0, 10, 25.0, rng);
  const auto p2 = PlaneWavePackets(35.0, 0.7, 10, 25.0, rng);
  const auto r1 = SampleCovariance(p1);
  const auto r2 = SampleCovariance(p2);
  const auto combined = r1 * Complex(2.0, 0.0) + r2 * Complex(3.0, 0.0);

  const auto b1 = ComputeBartlettSpectrum(r1, kArray, band);
  const auto b2 = ComputeBartlettSpectrum(r2, kArray, band);
  const auto bc = ComputeBartlettSpectrum(combined, kArray, band);
  for (std::size_t i = 0; i < bc.power.size(); ++i) {
    EXPECT_NEAR(bc.power[i], 2.0 * b1.power[i] + 3.0 * b2.power[i],
                1e-9 * (1.0 + bc.power[i]));
  }
}

TEST(Bartlett, ScalesWithSignalPower) {
  // Unlike MUSIC, Bartlett carries absolute power — doubling the amplitude
  // quadruples the spectrum.
  Rng rng(7);
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto weak = PlaneWavePackets(10.0, 1.0, 30, 60.0, rng);
  const auto strong = PlaneWavePackets(10.0, 2.0, 30, 60.0, rng);
  const auto bw = ComputeBartlettSpectrum(weak, kArray, band);
  const auto bs = ComputeBartlettSpectrum(strong, kArray, band);
  EXPECT_NEAR(bs.ValueAt(10.0) / bw.ValueAt(10.0), 4.0, 0.4);
}

TEST(Bartlett, NonNegativeEverywhere) {
  Rng rng(9);
  const auto packets = PlaneWavePackets(0.0, 1.0, 5, 10.0, rng);
  const auto spectrum = ComputeBartlettSpectrum(
      packets, kArray, wifi::BandPlan::Intel5300Channel11());
  for (double v : spectrum.power) EXPECT_GE(v, 0.0);
}

TEST(Bartlett, WhiteNoiseGivesFlatSpectrum) {
  // A scaled identity covariance (spatially white) has a constant Bartlett
  // spectrum: a^H I a = ||a||^2 = M for unit-modulus steering vectors.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto r = linalg::CMatrix::Identity(3) * Complex(5.0, 0.0);
  const auto spectrum = ComputeBartlettSpectrum(r, kArray, band);
  for (double v : spectrum.power) {
    EXPECT_NEAR(v, spectrum.power[0], 1e-9);
  }
}

TEST(Bartlett, RejectsBadConfig) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto r = linalg::CMatrix::Identity(2);
  EXPECT_THROW(ComputeBartlettSpectrum(r, kArray, band), PreconditionError);
}

TEST(Smoothed, PreservesTotalMassApproximately) {
  Pseudospectrum s;
  for (int i = 0; i <= 180; ++i) {
    s.theta_deg.push_back(-90.0 + i);
    s.power.push_back(i == 90 ? 100.0 : 1.0);
  }
  const auto smoothed = s.Smoothed(5.0);
  double before = 0.0, after = 0.0;
  for (double v : s.power) before += v;
  for (double v : smoothed.power) after += v;
  EXPECT_NEAR(after, before, 0.02 * before);
}

TEST(Smoothed, SpreadsASpike) {
  Pseudospectrum s;
  for (int i = 0; i <= 100; ++i) {
    s.theta_deg.push_back(static_cast<double>(i));
    s.power.push_back(i == 50 ? 10.0 : 0.0);
  }
  const auto smoothed = s.Smoothed(3.0);
  EXPECT_LT(smoothed.power[50], 10.0);
  EXPECT_GT(smoothed.power[47], 0.0);
  EXPECT_GT(smoothed.power[53], 0.0);
  // Symmetric around the spike.
  EXPECT_NEAR(smoothed.power[47], smoothed.power[53], 1e-12);
}

TEST(Smoothed, FlatStaysFlat) {
  Pseudospectrum s;
  for (int i = 0; i <= 60; ++i) {
    s.theta_deg.push_back(static_cast<double>(i));
    s.power.push_back(2.5);
  }
  const auto smoothed = s.Smoothed(4.0);
  for (double v : smoothed.power) EXPECT_NEAR(v, 2.5, 1e-12);
}

TEST(Smoothed, RejectsBadSigma) {
  Pseudospectrum s;
  s.theta_deg = {0.0, 1.0};
  s.power = {1.0, 1.0};
  EXPECT_THROW(s.Smoothed(0.0), PreconditionError);
  EXPECT_THROW(s.Smoothed(-1.0), PreconditionError);
}

TEST(NoiseFloorSubtraction, RemovesWhiteComponent) {
  // R = signal + sigma^2 I; subtracting lambda_min I should recover a
  // near-rank-deficient matrix whose Bartlett peak ratio sharpens.
  Rng rng(11);
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto packets = PlaneWavePackets(20.0, 1.0, 60, 5.0, rng);  // noisy
  auto r = SampleCovariance(packets);
  const auto eig = linalg::HermitianEigen(r);
  auto cleaned = r;
  for (std::size_t i = 0; i < 3; ++i) {
    cleaned.At(i, i) -= Complex(eig.values.front(), 0.0);
  }
  const auto raw = ComputeBartlettSpectrum(r, kArray, band);
  const auto sub = ComputeBartlettSpectrum(cleaned, kArray, band);
  const double contrast_raw = raw.ValueAt(20.0) / raw.ValueAt(-60.0);
  const double contrast_sub = sub.ValueAt(20.0) / sub.ValueAt(-60.0);
  EXPECT_GT(contrast_sub, contrast_raw);
}

}  // namespace
}  // namespace mulink::core
