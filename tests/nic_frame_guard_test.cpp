// Frame-guard taxonomy and fault-injector determinism tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "experiments/scenario.h"
#include "nic/channel_simulator.h"
#include "nic/fault_injection.h"
#include "nic/frame_guard.h"

namespace mulink::nic {
namespace {

namespace ex = mulink::experiments;

wifi::CsiPacket MakePacket(std::uint64_t seq, double rssi = -40.0) {
  wifi::CsiPacket p;
  p.timestamp_s = static_cast<double>(seq) * 0.02;
  p.rssi_db = rssi;
  p.sequence = seq;
  p.csi = linalg::CMatrix(3, 30);
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t k = 0; k < 30; ++k) {
      p.csi.At(m, k) = Complex(1.0 + 0.1 * static_cast<double>(m), 0.5);
    }
  }
  return p;
}

TEST(FrameGuard, AcceptsCleanStream) {
  FrameGuard guard;
  for (std::uint64_t s = 0; s < 50; ++s) {
    const auto report = guard.Inspect(MakePacket(s));
    EXPECT_EQ(report.verdict, FrameVerdict::kAccept);
    EXPECT_EQ(report.faults, 0u);
  }
  EXPECT_EQ(guard.health().received, 50u);
  EXPECT_EQ(guard.health().accepted, 50u);
  EXPECT_EQ(guard.health().quarantined, 0u);
  EXPECT_EQ(Status(guard.health()), LinkStatus::kHealthy);
}

TEST(FrameGuard, QuarantinesNonFiniteCsi) {
  FrameGuard guard;
  (void)guard.Inspect(MakePacket(0));
  auto bad = MakePacket(1);
  bad.csi.At(1, 7) = Complex(std::numeric_limits<double>::quiet_NaN(), 0.0);
  const auto report = guard.Inspect(bad);
  EXPECT_EQ(report.verdict, FrameVerdict::kQuarantine);
  EXPECT_TRUE(report.Has(FrameFault::kNonFinite));

  auto inf_meta = MakePacket(1);
  inf_meta.rssi_db = std::numeric_limits<double>::infinity();
  EXPECT_EQ(guard.Inspect(inf_meta).verdict, FrameVerdict::kQuarantine);
  EXPECT_EQ(guard.health().FaultCount(FrameFault::kNonFinite), 2u);
}

TEST(FrameGuard, QuarantinesZeroEnergyAndShapeMismatch) {
  FrameGuard guard;
  (void)guard.Inspect(MakePacket(0));

  auto silent = MakePacket(1);
  silent.csi *= Complex(0.0, 0.0);
  const auto zero = guard.Inspect(silent);
  EXPECT_EQ(zero.verdict, FrameVerdict::kQuarantine);
  EXPECT_TRUE(zero.Has(FrameFault::kZeroEnergy));

  auto wrong = MakePacket(2);
  wrong.csi = linalg::CMatrix(2, 30);
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t k = 0; k < 30; ++k) wrong.csi.At(m, k) = Complex(1, 0);
  }
  const auto shape = guard.Inspect(wrong);
  EXPECT_EQ(shape.verdict, FrameVerdict::kQuarantine);
  EXPECT_TRUE(shape.Has(FrameFault::kShapeMismatch));
}

TEST(FrameGuard, SequenceDiscipline) {
  FrameGuard guard;
  (void)guard.Inspect(MakePacket(10));

  // Duplicate and reordered frames are quarantined.
  EXPECT_TRUE(guard.Inspect(MakePacket(10))
                  .Has(FrameFault::kDuplicateSequence));
  EXPECT_TRUE(guard.Inspect(MakePacket(9))
                  .Has(FrameFault::kReorderedSequence));

  // A gap is counted but the frame is usable.
  const auto gap = guard.Inspect(MakePacket(14));
  EXPECT_EQ(gap.verdict, FrameVerdict::kAccept);
  EXPECT_TRUE(gap.Has(FrameFault::kSequenceGap));
  EXPECT_EQ(gap.gap, 3u);
  EXPECT_FALSE(gap.resync);
  EXPECT_EQ(guard.health().missing, 3u);

  // A gap beyond max_gap_packets demands a ring flush.
  const auto outage = guard.Inspect(MakePacket(14 + 52));
  EXPECT_TRUE(outage.resync);
}

TEST(FrameGuard, QuarantinedFrameSurfacesAsGapOnNextGoodFrame) {
  FrameGuard guard;
  (void)guard.Inspect(MakePacket(0));
  auto bad = MakePacket(1);
  bad.csi.At(0, 0) = Complex(std::numeric_limits<double>::quiet_NaN(), 0.0);
  (void)guard.Inspect(bad);  // quarantined: must NOT advance the sequence
  const auto next = guard.Inspect(MakePacket(2));
  EXPECT_EQ(next.verdict, FrameVerdict::kAccept);
  EXPECT_TRUE(next.Has(FrameFault::kSequenceGap));
  EXPECT_EQ(next.gap, 1u);
}

TEST(FrameGuard, DeadAntennaConfirmationAndRevival) {
  FrameGuardConfig config;
  config.dead_antenna_packets = 5;
  FrameGuard guard(config);

  auto kill = [](wifi::CsiPacket p) {
    for (std::size_t k = 0; k < p.NumSubcarriers(); ++k) {
      p.csi.At(2, k) = Complex(0.0, 0.0);
    }
    return p;
  };

  std::uint64_t seq = 0;
  (void)guard.Inspect(MakePacket(seq++));
  // Four silent frames: streak not yet confirmed.
  for (int i = 0; i < 4; ++i) {
    const auto r = guard.Inspect(kill(MakePacket(seq++)));
    EXPECT_EQ(r.verdict, FrameVerdict::kAccept) << i;
    EXPECT_EQ(r.antenna_died, -1) << i;
  }
  // The fifth confirms: repair verdict, mask set, death reported once.
  const auto died = guard.Inspect(kill(MakePacket(seq++)));
  EXPECT_EQ(died.verdict, FrameVerdict::kRepair);
  EXPECT_TRUE(died.Has(FrameFault::kDeadAntenna));
  EXPECT_EQ(died.antenna_died, 2);
  EXPECT_EQ(guard.dead_antenna_mask(), 1u << 2);
  EXPECT_EQ(guard.Inspect(kill(MakePacket(seq++))).antenna_died, -1);
  EXPECT_EQ(Status(guard.health()), LinkStatus::kDegraded);

  // The same streak of live frames revives the chain.
  for (int i = 0; i < 5; ++i) (void)guard.Inspect(MakePacket(seq++));
  EXPECT_EQ(guard.dead_antenna_mask(), 0u);
}

TEST(FrameGuard, RssiOutlierAfterWarmup) {
  FrameGuardConfig config;
  config.rssi_warmup_packets = 10;
  FrameGuard guard(config);
  Rng rng(5);
  std::uint64_t seq = 0;
  for (int i = 0; i < 30; ++i) {
    const auto r =
        guard.Inspect(MakePacket(seq++, -40.0 + rng.Gaussian(0.0, 0.5)));
    ASSERT_FALSE(r.Has(FrameFault::kRssiOutlier)) << i;
  }
  // A 20 dB AGC jump is far beyond 6 sigma of the ~0.5 dB jitter.
  const auto jump = guard.Inspect(MakePacket(seq++, -20.0));
  EXPECT_EQ(jump.verdict, FrameVerdict::kRepair);
  EXPECT_TRUE(jump.Has(FrameFault::kRssiOutlier));
}

TEST(FrameGuard, ResetMatchesFreshGuard) {
  FrameGuard used;
  for (std::uint64_t s = 0; s < 40; ++s) (void)used.Inspect(MakePacket(s));
  used.Reset();
  FrameGuard fresh;
  for (std::uint64_t s = 100; s < 140; ++s) {
    const auto a = used.Inspect(MakePacket(s));
    const auto b = fresh.Inspect(MakePacket(s));
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.gap, b.gap);
  }
  EXPECT_EQ(used.health().received, fresh.health().received);
  EXPECT_EQ(used.health().accepted, fresh.health().accepted);
}

// ---- Fault injector -------------------------------------------------------

std::vector<wifi::CsiPacket> Capture(const FaultInjectionConfig& faults,
                                     std::size_t n, std::uint64_t seed) {
  auto config = ex::DefaultSimConfig();
  config.faults = faults;
  auto sim = ex::MakeSimulator(ex::MakeClassroomLink(), config);
  Rng rng(seed);
  return sim.CaptureSession(n, std::nullopt, rng);
}

bool PacketsIdentical(const wifi::CsiPacket& a, const wifi::CsiPacket& b) {
  if (a.sequence != b.sequence || a.timestamp_s != b.timestamp_s) return false;
  if (a.rssi_db != b.rssi_db) return false;
  if (a.NumAntennas() != b.NumAntennas() ||
      a.NumSubcarriers() != b.NumSubcarriers()) {
    return false;
  }
  for (std::size_t m = 0; m < a.NumAntennas(); ++m) {
    for (std::size_t k = 0; k < a.NumSubcarriers(); ++k) {
      const Complex x = a.csi.At(m, k);
      const Complex y = b.csi.At(m, k);
      // NaN-tolerant bitwise-style equality for corrupted cells.
      const bool re_eq = x.real() == y.real() ||
                         (std::isnan(x.real()) && std::isnan(y.real()));
      const bool im_eq = x.imag() == y.imag() ||
                         (std::isnan(x.imag()) && std::isnan(y.imag()));
      if (!re_eq || !im_eq) return false;
    }
  }
  return true;
}

// The injector's private RNG must not perturb the channel: an armed
// injector with every fault process at zero produces the exact clean
// capture.
TEST(FaultInjector, ArmedButIdleInjectorIsIdentity) {
  FaultInjectionConfig off;  // enabled = false
  FaultInjectionConfig idle;
  idle.enabled = true;
  idle.seed = 999;  // seed must not matter when no process fires
  const auto clean = Capture(off, 60, 4242);
  const auto guarded = Capture(idle, 60, 4242);
  ASSERT_EQ(clean.size(), guarded.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_TRUE(PacketsIdentical(clean[i], guarded[i])) << "packet " << i;
  }
}

// Same seeds -> bit-identical faulty sessions, run after run.
TEST(FaultInjector, FaultySessionsAreDeterministic) {
  FaultInjectionConfig faults;
  faults.enabled = true;
  faults.seed = 77;
  faults.drop_prob = 0.05;
  faults.duplicate_prob = 0.02;
  faults.reorder_prob = 0.03;
  faults.corrupt_prob = 0.02;
  faults.agc_jump_prob = 0.01;
  const auto a = Capture(faults, 120, 4242);
  const auto b = Capture(faults, 120, 4242);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(PacketsIdentical(a[i], b[i])) << "packet " << i;
  }
}

// A dead chain reports exact zeros from dead_from_packet onward while the
// surviving rows stay finite and powered.
TEST(FaultInjector, DeadChainReportsExactZeros) {
  FaultInjectionConfig faults;
  faults.enabled = true;
  faults.dead_antenna = 1;
  faults.dead_from_packet = 10;
  const auto session = Capture(faults, 30, 4242);
  ASSERT_EQ(session.size(), 30u);
  for (std::size_t i = 0; i < session.size(); ++i) {
    double dead_row = 0.0;
    double live_row = 0.0;
    for (std::size_t k = 0; k < session[i].NumSubcarriers(); ++k) {
      dead_row += std::norm(session[i].csi.At(1, k));
      live_row += std::norm(session[i].csi.At(0, k));
    }
    EXPECT_GT(live_row, 0.0) << "packet " << i;
    if (i < 10) {
      EXPECT_GT(dead_row, 0.0) << "packet " << i;
    } else {
      EXPECT_EQ(dead_row, 0.0) << "packet " << i;
    }
  }
}

// Dropping frames leaves sequence gaps the guard can count.
TEST(FaultInjector, DropsLeaveSequenceGaps) {
  FaultInjectionConfig faults;
  faults.enabled = true;
  faults.seed = 3;
  faults.drop_prob = 0.1;
  const auto session = Capture(faults, 200, 4242);
  ASSERT_LT(session.size(), 200u);

  FrameGuard guard;
  for (const auto& packet : session) (void)guard.Inspect(packet);
  // Every interior drop surfaces as a gap (drops after the last delivered
  // frame are invisible, so `missing` can fall short of the drop count).
  EXPECT_GT(guard.health().missing, 0u);
  EXPECT_LE(guard.health().missing, 200u - session.size());
  EXPECT_GT(guard.health().FaultCount(FrameFault::kSequenceGap), 0u);
}

}  // namespace
}  // namespace mulink::nic
