#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/cmatrix.h"
#include "linalg/hermitian_eig.h"
#include "linalg/solve.h"

namespace mulink::linalg {
namespace {

CMatrix RandomHermitian(std::size_t n, Rng& rng) {
  CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.At(i, i) = Complex(rng.Uniform(-3.0, 3.0), 0.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const Complex v(rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0));
      a.At(i, j) = v;
      a.At(j, i) = std::conj(v);
    }
  }
  return a;
}

TEST(CMatrix, ZeroInitialized) {
  CMatrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(m.At(r, c), Complex(0.0, 0.0));
    }
  }
}

TEST(CMatrix, IdentityMultiplicationIsIdentity) {
  Rng rng(5);
  CMatrix a = RandomHermitian(4, rng);
  const CMatrix i4 = CMatrix::Identity(4);
  const CMatrix left = i4 * a;
  const CMatrix right = a * i4;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(std::abs(left.At(r, c) - a.At(r, c)), 0.0, 1e-12);
      EXPECT_NEAR(std::abs(right.At(r, c) - a.At(r, c)), 0.0, 1e-12);
    }
  }
}

TEST(CMatrix, AdjointTwiceIsOriginal) {
  Rng rng(6);
  CMatrix a(3, 5);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      a.At(r, c) = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
    }
  }
  const CMatrix aa = a.Adjoint().Adjoint();
  EXPECT_EQ(aa.rows(), a.rows());
  EXPECT_EQ(aa.cols(), a.cols());
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(std::abs(aa.At(r, c) - a.At(r, c)), 0.0, 1e-14);
    }
  }
}

TEST(CMatrix, OuterProductRankOne) {
  const std::vector<Complex> x = {{1, 0}, {0, 1}};
  const auto m = CMatrix::OuterProduct(x, x);
  // [ [1, -i], [i, 1] ]
  EXPECT_NEAR(std::abs(m.At(0, 0) - Complex(1, 0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(m.At(0, 1) - Complex(0, -1)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(m.At(1, 0) - Complex(0, 1)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(m.At(1, 1) - Complex(1, 0)), 0.0, 1e-15);
  EXPECT_TRUE(m.IsHermitian());
}

TEST(CMatrix, MultiplyDimensionMismatchThrows) {
  CMatrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, PreconditionError);
}

TEST(CMatrix, ApplyMatchesManualProduct) {
  CMatrix a(2, 2);
  a.At(0, 0) = {1, 1};
  a.At(0, 1) = {2, 0};
  a.At(1, 0) = {0, -1};
  a.At(1, 1) = {1, 0};
  const std::vector<Complex> x = {{1, 0}, {0, 2}};
  const auto y = a.Apply(x);
  EXPECT_NEAR(std::abs(y[0] - Complex(1, 5)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(y[1] - Complex(0, 1)), 0.0, 1e-14);
}

TEST(CMatrix, TraceAndFrobenius) {
  CMatrix a(2, 2);
  a.At(0, 0) = {3, 0};
  a.At(1, 1) = {4, 0};
  EXPECT_NEAR(std::abs(a.Trace() - Complex(7, 0)), 0.0, 1e-14);
  EXPECT_NEAR(a.FrobeniusNorm(), 5.0, 1e-14);
}

TEST(CMatrix, IsHermitianDetectsViolations) {
  CMatrix a(2, 2);
  a.At(0, 1) = {1, 2};
  a.At(1, 0) = {1, 2};  // should be conj: (1,-2)
  EXPECT_FALSE(a.IsHermitian());
  a.At(1, 0) = {1, -2};
  EXPECT_TRUE(a.IsHermitian());
}

TEST(Dot, ConjugateLinear) {
  const std::vector<Complex> x = {{0, 1}};
  const std::vector<Complex> y = {{0, 1}};
  // <x,y> = conj(i)*i = 1.
  EXPECT_NEAR(std::abs(Dot(x, y) - Complex(1, 0)), 0.0, 1e-15);
}

TEST(HermitianEigen, DiagonalMatrix) {
  CMatrix a(3, 3);
  a.At(0, 0) = {5, 0};
  a.At(1, 1) = {-1, 0};
  a.At(2, 2) = {2, 0};
  const auto es = HermitianEigen(a);
  ASSERT_EQ(es.values.size(), 3u);
  EXPECT_NEAR(es.values[0], -1.0, 1e-10);
  EXPECT_NEAR(es.values[1], 2.0, 1e-10);
  EXPECT_NEAR(es.values[2], 5.0, 1e-10);
}

TEST(HermitianEigen, KnownTwoByTwo) {
  // [[2, i], [-i, 2]] has eigenvalues 1 and 3.
  CMatrix a(2, 2);
  a.At(0, 0) = {2, 0};
  a.At(0, 1) = {0, 1};
  a.At(1, 0) = {0, -1};
  a.At(1, 1) = {2, 0};
  const auto es = HermitianEigen(a);
  EXPECT_NEAR(es.values[0], 1.0, 1e-10);
  EXPECT_NEAR(es.values[1], 3.0, 1e-10);
}

TEST(HermitianEigen, RejectsNonHermitian) {
  CMatrix a(2, 2);
  a.At(0, 1) = {1, 0};
  // a.At(1,0) stays 0 -> not Hermitian.
  EXPECT_THROW(HermitianEigen(a), PreconditionError);
}

TEST(HermitianEigen, RejectsNonSquare) {
  CMatrix a(2, 3);
  EXPECT_THROW(HermitianEigen(a), PreconditionError);
}

TEST(HermitianEigen, SizeOneMatrix) {
  CMatrix a(1, 1);
  a.At(0, 0) = {4.5, 0};
  const auto es = HermitianEigen(a);
  ASSERT_EQ(es.values.size(), 1u);
  EXPECT_NEAR(es.values[0], 4.5, 1e-14);
}

class HermitianEigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(HermitianEigenProperty, ReconstructionAndUnitarity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 7;
  const CMatrix a = RandomHermitian(n, rng);
  const auto es = HermitianEigen(a);

  // Eigenvalues ascending.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_LE(es.values[i - 1], es.values[i] + 1e-12);
  }

  // V unitary: V^H V = I.
  const CMatrix vhv = es.vectors.Adjoint() * es.vectors;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const double expected = r == c ? 1.0 : 0.0;
      EXPECT_NEAR(std::abs(vhv.At(r, c)), expected, 1e-8);
    }
  }

  // A v_k = lambda_k v_k.
  for (std::size_t k = 0; k < n; ++k) {
    const auto v = es.Vector(k);
    const auto av = a.Apply(v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(av[i] - es.values[k] * v[i]), 0.0, 1e-7);
    }
  }

  // Trace preserved.
  double eig_sum = 0.0;
  for (double v : es.values) eig_sum += v;
  EXPECT_NEAR(eig_sum, a.Trace().real(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, HermitianEigenProperty,
                         ::testing::Range(0, 24));

TEST(HermitianEigen, PositiveSemidefiniteCovarianceHasNonNegativeEigs) {
  Rng rng(33);
  // R = sum of outer products is PSD by construction.
  CMatrix r(3, 3);
  for (int s = 0; s < 10; ++s) {
    std::vector<Complex> x(3);
    for (auto& v : x) v = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
    r += CMatrix::OuterProduct(x, x);
  }
  const auto es = HermitianEigen(r);
  for (double v : es.values) EXPECT_GE(v, -1e-9);
}

TEST(SolveLinear, KnownSystem) {
  RMatrix a(2, 2);
  a.At(0, 0) = 2.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 3.0;
  const auto x = SolveLinear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  RMatrix a(2, 2);
  a.At(0, 0) = 0.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 0.0;
  const auto x = SolveLinear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  RMatrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 2.0;
  a.At(1, 0) = 2.0;
  a.At(1, 1) = 4.0;
  EXPECT_THROW(SolveLinear(a, {1.0, 2.0}), NumericalError);
}

TEST(SolveLeastSquares, ExactForSquare) {
  RMatrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = -1.0;
  const auto x = SolveLeastSquares(a, {3.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLeastSquares, OverdeterminedLine) {
  // Fit y = 2x + 1 exactly through 4 points.
  RMatrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a.At(static_cast<std::size_t>(i), 0) = 1.0;
    a.At(static_cast<std::size_t>(i), 1) = i;
    b[static_cast<std::size_t>(i)] = 2.0 * i + 1.0;
  }
  const auto x = SolveLeastSquares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(SolveLeastSquares, MinimizesResidual) {
  // Inconsistent system: LS solution should beat nearby perturbations.
  RMatrix a(3, 1);
  a.At(0, 0) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(2, 0) = 1.0;
  const std::vector<double> b = {1.0, 2.0, 6.0};
  const auto x = SolveLeastSquares(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);  // the mean
}

}  // namespace
}  // namespace mulink::linalg
