// Tests for the environment-dynamics features of the channel simulator:
// background walkers, slow gain drift, co-channel interference bursts, the
// AP-height shadow model, and the weighting-mode ablation hooks.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/subcarrier_weighting.h"
#include "dsp/stats.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"
#include "geometry/fresnel.h"
#include "nic/channel_simulator.h"
#include "propagation/friis.h"
#include "propagation/human.h"
#include "propagation/ray_tracer.h"

namespace mulink {
namespace {

namespace ex = mulink::experiments;

nic::ChannelSimConfig QuietConfig() {
  nic::ChannelSimConfig config = ex::DefaultSimConfig();
  config.noise.snr_db = 300.0;
  config.noise.random_common_phase = false;
  config.noise.sto_range_s = 0.0;
  config.noise.gain_drift_db = 0.0;
  config.nic.quantize = false;
  config.background_jitter_m = 0.0;
  config.slow_gain_drift_db = 0.0;
  config.interference_entry_prob = 0.0;
  return config;
}

TEST(Walkers, PerturbTheChannel) {
  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();  // isolate: only the walker under test moves
  auto quiet = QuietConfig();
  auto with_walker = quiet;
  nic::BackgroundWalker walker;
  walker.base = {5.0, 7.0};
  with_walker.walkers.push_back(walker);

  auto sim_quiet = ex::MakeSimulator(lc, quiet);
  auto sim_walker = ex::MakeSimulator(lc, with_walker);
  Rng rng_a(3), rng_b(3);
  // Quiet simulator: identical consecutive packets.
  const auto q1 = sim_quiet.CapturePacket(std::nullopt, rng_a);
  const auto q2 = sim_quiet.CapturePacket(std::nullopt, rng_a);
  double quiet_diff = 0.0;
  for (std::size_t k = 0; k < 30; ++k) {
    quiet_diff += std::abs(q1.csi.At(0, k) - q2.csi.At(0, k));
  }
  EXPECT_NEAR(quiet_diff, 0.0, 1e-12);

  // Walker wanders: packets differ.
  const auto w1 = sim_walker.CapturePacket(std::nullopt, rng_b);
  const auto w2 = sim_walker.CapturePacket(std::nullopt, rng_b);
  double walker_diff = 0.0;
  for (std::size_t k = 0; k < 30; ++k) {
    walker_diff += std::abs(w1.csi.At(0, k) - w2.csi.At(0, k));
  }
  EXPECT_GT(walker_diff, 1e-9);
}

TEST(Walkers, StayNearTheirBase) {
  const auto lc = ex::MakeClassroomLink();
  auto config = QuietConfig();
  nic::BackgroundWalker walker;
  walker.base = {5.0, 7.0};
  config.walkers.push_back(walker);
  auto sim = ex::MakeSimulator(lc, config);
  Rng rng(5);
  // After many packets the wander stays bounded; verify indirectly via the
  // channel staying within a sane range (no walker blow-up near an antenna).
  const auto session = sim.CaptureSession(500, std::nullopt, rng);
  std::vector<double> powers;
  for (const auto& p : session) powers.push_back(p.TotalPower());
  EXPECT_LT(dsp::Max(powers) / dsp::Min(powers), 3.0);
}

TEST(SlowGainDrift, CorrelatedAcrossPackets) {
  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();  // isolate the drift from walker dynamics
  auto config = QuietConfig();
  config.slow_gain_drift_db = 1.0;
  config.slow_gain_drift_tau_s = 3.0;  // 150 packets at 50 pkt/s
  auto sim = ex::MakeSimulator(lc, config);
  Rng rng(7);
  const auto session = sim.CaptureSession(400, std::nullopt, rng);
  std::vector<double> level;
  for (const auto& p : session) {
    level.push_back(10.0 * std::log10(p.TotalPower()));
  }
  // Adjacent packets near-identical (slow drift), distant packets spread.
  std::vector<double> adjacent_diffs;
  for (std::size_t i = 1; i < level.size(); ++i) {
    adjacent_diffs.push_back(std::abs(level[i] - level[i - 1]));
  }
  EXPECT_LT(dsp::Mean(adjacent_diffs), 0.25);
  EXPECT_GT(dsp::StdDev(level), 0.25);  // but the session wanders dB-scale
}

TEST(Interference, BurstsRaisePowerOnAClump) {
  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto config = QuietConfig();
  config.interference_entry_prob = 1.0;  // always bursting
  config.interference_exit_prob = 0.0;
  config.interference_power_db = 20.0;
  config.interference_width_subcarriers = 4;
  auto clean_config = QuietConfig();
  auto sim = ex::MakeSimulator(lc, config);
  auto sim_clean = ex::MakeSimulator(lc, clean_config);
  Rng rng_a(9), rng_b(9);
  const auto hit = sim.CapturePacket(std::nullopt, rng_a);
  const auto ref = sim_clean.CapturePacket(std::nullopt, rng_b);
  // Count subcarriers whose power changed by > 3 dB.
  int changed = 0;
  for (std::size_t k = 0; k < 30; ++k) {
    const double ratio =
        hit.SubcarrierPower(0, k) / std::max(ref.SubcarrierPower(0, k), 1e-30);
    if (std::abs(10.0 * std::log10(ratio)) > 3.0) ++changed;
  }
  EXPECT_GE(changed, 2);
  EXPECT_LE(changed, 6);  // a clump, not the whole band
}

TEST(Interference, DisabledByZeroEntryProb) {
  const auto lc = ex::MakeClassroomLink();
  auto config = QuietConfig();
  auto sim_a = ex::MakeSimulator(lc, config);
  auto sim_b = ex::MakeSimulator(lc, config);
  Rng rng_a(11), rng_b(11);
  const auto a = sim_a.CapturePacket(std::nullopt, rng_a);
  const auto b = sim_b.CapturePacket(std::nullopt, rng_b);
  for (std::size_t k = 0; k < 30; ++k) {
    EXPECT_EQ(a.csi.At(0, k), b.csi.At(0, k));
  }
}

TEST(HeightModel, ElevatedApShieldsNearApPositions) {
  // Same 2-D geometry, different AP heights: a person standing 1 m from the
  // AP blocks a tabletop link but not a wall-mounted one.
  const geometry::Room room = geometry::Room::Rectangular(7.0, 9.0, 0.0);
  const propagation::FriisModel friis;
  propagation::TraceOptions options;
  options.include_scatterers = false;
  options.max_wall_bounces = 0;
  const propagation::RayTracer tracer(room, friis, options);
  const geometry::Vec2 tx{1.0, 4.0}, rx{6.0, 4.0};
  const auto paths = tracer.Trace(tx, rx);

  propagation::HumanBody body;
  body.position = {1.7, 4.0};  // on the LOS, 0.7 m from the AP

  const auto low = propagation::ApplyHuman(paths, tx, rx, body, kWavelength,
                                           {1.2, 1.1});
  const auto high = propagation::ApplyHuman(paths, tx, rx, body, kWavelength,
                                            {2.4, 1.1});
  const double g0 = paths[0].gain_at_center;
  EXPECT_LT(low[0].gain_at_center, 0.6 * g0);    // tabletop AP: blocked
  EXPECT_GT(high[0].gain_at_center, 0.9 * g0);   // wall AP: path overhead
}

TEST(HeightModel, MidLinkBlockedRegardlessOfApHeight) {
  // Mid-link the interpolated path height drops below head height even for
  // a 2.4 m AP (rx at 1.1 m): the person still shadows there.
  const geometry::Room room = geometry::Room::Rectangular(7.0, 9.0, 0.0);
  const propagation::FriisModel friis;
  propagation::TraceOptions options;
  options.include_scatterers = false;
  options.max_wall_bounces = 0;
  const propagation::RayTracer tracer(room, friis, options);
  const geometry::Vec2 tx{1.0, 4.0}, rx{6.0, 4.0};
  const auto paths = tracer.Trace(tx, rx);
  propagation::HumanBody body;
  body.position = {4.5, 4.0};  // 70% of the way to the RX
  const auto shadowed = propagation::ApplyHuman(paths, tx, rx, body,
                                                kWavelength, {2.4, 1.1});
  EXPECT_LT(shadowed[0].gain_at_center, 0.5 * paths[0].gain_at_center);
}

TEST(FarField, BistaticAmplitudeClampedNearAntenna) {
  // The radar-equation amplitude stops growing once a leg is inside the
  // far-field floor.
  const double at_floor =
      propagation::BistaticScatterAmplitude(0.4, 3.0, 2.4e9, 1.0);
  const double inside = propagation::BistaticScatterAmplitude(0.05, 3.0,
                                                              2.4e9, 1.0);
  EXPECT_NEAR(at_floor, inside, 1e-15);
  const double outside =
      propagation::BistaticScatterAmplitude(0.8, 3.0, 2.4e9, 1.0);
  EXPECT_LT(outside, at_floor);
}

TEST(WeightingModes, ModesProduceDifferentWeights) {
  Rng rng(13);
  std::vector<std::vector<double>> mu(30, std::vector<double>(30));
  for (auto& row : mu) {
    for (auto& v : row) v = rng.Uniform(0.0, 1.0);
  }
  const auto uniform =
      core::ComputeSubcarrierWeights(mu, core::WeightingMode::kUniform);
  const auto mu_only =
      core::ComputeSubcarrierWeights(mu, core::WeightingMode::kMeanMuOnly);
  const auto r_only =
      core::ComputeSubcarrierWeights(mu, core::WeightingMode::kStabilityOnly);
  const auto product = core::ComputeSubcarrierWeights(
      mu, core::WeightingMode::kMeanMuTimesStability);

  for (double w : uniform.weights) EXPECT_NEAR(w, 1.0 / 30.0, 1e-12);
  // Each non-uniform mode normalizes to sum 1 (mu-only / r-only) and the
  // product to <= 1.
  const auto sum = [](const std::vector<double>& w) {
    double s = 0.0;
    for (double v : w) s += v;
    return s;
  };
  EXPECT_NEAR(sum(mu_only.weights), 1.0, 1e-12);
  EXPECT_NEAR(sum(r_only.weights), 1.0, 1e-12);
  EXPECT_LE(sum(product.weights), 1.0 + 1e-12);
  // Modes genuinely differ.
  double diff = 0.0;
  for (std::size_t k = 0; k < 30; ++k) {
    diff += std::abs(mu_only.weights[k] - r_only.weights[k]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(WeightingModes, NamesAreStable) {
  EXPECT_STREQ(core::ToString(core::WeightingMode::kUniform), "uniform");
  EXPECT_STREQ(core::ToString(core::WeightingMode::kMeanMuOnly), "mean-mu");
  EXPECT_STREQ(core::ToString(core::WeightingMode::kStabilityOnly),
               "stability");
  EXPECT_STREQ(core::ToString(core::WeightingMode::kMeanMuTimesStability),
               "mean-mu*stability");
}

TEST(Scenario, PaperCasesHaveWalkersAndHeights) {
  for (const auto& lc : ex::MakePaperCases()) {
    EXPECT_FALSE(lc.walker_bases.empty()) << lc.name;
    EXPECT_GT(lc.heights.tx_m, 1.2) << lc.name;
    EXPECT_NEAR(lc.heights.rx_m, 1.1, 0.2) << lc.name;
    // Walkers stay well away from the link (paper: ~5 m).
    const geometry::Segment link{lc.tx, lc.rx};
    for (const auto& base : lc.walker_bases) {
      EXPECT_GT(geometry::DistancePointToSegment(base, link), 2.0) << lc.name;
    }
  }
}

TEST(Workload, SpotsRespectEndpointClearance) {
  const auto lc = ex::MakeClassroomLink();
  // A spot requested exactly at the TX gets pushed away.
  const auto spot = ex::MakeSpot(lc, lc.tx);
  EXPECT_GE(geometry::Distance(spot.position, lc.tx), 0.6 - 1e-9);
  const auto spot2 = ex::MakeSpot(lc, lc.rx + geometry::Vec2{0.1, 0.0});
  EXPECT_GE(geometry::Distance(spot2.position, lc.rx), 0.6 - 1e-9);
}

}  // namespace
}  // namespace mulink
