#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "core/link_model.h"

namespace mulink::core {
namespace {

TEST(MultipathFactor, PureLosLimit) {
  // gamma -> inf: mu -> 1 (all power in the LOS).
  EXPECT_NEAR(MultipathFactorClosedForm(1e6, 1.0), 1.0, 1e-5);
}

TEST(MultipathFactor, ConstructiveVsDestructive) {
  const double gamma = 2.0;
  const double constructive = MultipathFactorClosedForm(gamma, 0.0);
  const double destructive = MultipathFactorClosedForm(gamma, kPi);
  // Constructive superposition -> more total power -> smaller mu.
  EXPECT_LT(constructive, destructive);
  EXPECT_NEAR(constructive, gamma * gamma / ((gamma + 1) * (gamma + 1)),
              1e-12);
  EXPECT_NEAR(destructive, gamma * gamma / ((gamma - 1) * (gamma - 1)),
              1e-12);
}

TEST(MultipathFactor, QuadraturePhaseGivesPowerShare) {
  // phi = pi/2: |h|^2 = gamma^2 + 1, mu = gamma^2/(gamma^2+1).
  const double gamma = 3.0;
  EXPECT_NEAR(MultipathFactorClosedForm(gamma, kPi / 2),
              9.0 / 10.0, 1e-12);
}

TEST(MultipathFactor, RejectsNonPositiveGamma) {
  EXPECT_THROW(MultipathFactorClosedForm(0.0, 1.0), PreconditionError);
  EXPECT_THROW(MultipathFactorClosedForm(-1.0, 1.0), PreconditionError);
}

TEST(MultipathFactor, DegenerateCancellationThrows) {
  // gamma = 1, phi = pi: total power is exactly zero.
  EXPECT_THROW(MultipathFactorClosedForm(1.0, kPi), PreconditionError);
}

TEST(Shadowing, Eq5AndEq6Agree) {
  // Eq. 6 is Eq. 5 re-parameterized through mu; they must agree exactly.
  for (double beta : {0.3, 0.5, 0.8}) {
    for (double gamma : {1.5, 2.0, 5.0, 10.0}) {
      for (double phi = 0.0; phi < 2.0 * kPi; phi += 0.37) {
        const double mu = MultipathFactorClosedForm(gamma, phi);
        const double via_phase = ShadowingDeltaDbFromPhase(beta, gamma, phi);
        const double via_mu = ShadowingDeltaDbFromMu(beta, gamma, mu);
        EXPECT_NEAR(via_phase, via_mu, 1e-9)
            << "beta=" << beta << " gamma=" << gamma << " phi=" << phi;
      }
    }
  }
}

TEST(Shadowing, SinglePathLimitRecoversTenLgBetaSquared) {
  // gamma -> inf, any phi: Delta_s -> 10 lg beta^2.
  const double beta = 0.4;
  const double delta = ShadowingDeltaDbFromPhase(beta, 1e9, 1.0);
  EXPECT_NEAR(delta, SinglePathShadowingDeltaDb(beta), 1e-4);
  EXPECT_NEAR(SinglePathShadowingDeltaDb(beta), 20.0 * std::log10(beta),
              1e-12);
}

TEST(Shadowing, RssRiseConditionFromPaper) {
  // Sec. III-B: if cos(phi) < -gamma (beta^2+1) / (2...)  — operationally:
  // with strong destructive static superposition, removing LOS energy can
  // RAISE RSS. Verify a known such configuration.
  const double beta = 0.3, gamma = 1.05;
  // Near-destructive static channel.
  const double phi = kPi * 0.98;
  EXPECT_TRUE(ShadowingRaisesRss(beta, gamma, phi));
  EXPECT_GT(ShadowingDeltaDbFromPhase(beta, gamma, phi), 0.0);
  // And a constructive one always drops.
  EXPECT_FALSE(ShadowingRaisesRss(beta, gamma, 0.0));
}

TEST(Shadowing, MultipathCanBeatSinglePathSensitivity) {
  // Sec. III-B: |Delta_s| can exceed |10 lg beta^2| under destructive
  // superposition — multipath can IMPROVE sensitivity.
  const double beta = 0.8, gamma = 1.2;
  const double single = std::abs(SinglePathShadowingDeltaDb(beta));
  const double multi =
      std::abs(ShadowingDeltaDbFromPhase(beta, gamma, kPi * 0.95));
  EXPECT_GT(multi, single);
}

class ShadowingMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ShadowingMonotonicity, DeltaSFallsWithMuWhenBetaGammaSqAboveOne) {
  // Eq. 6: slope in mu has sign of (1-beta)(1-beta gamma^2); for
  // beta*gamma^2 > 1 (the common strong-LOS regime) Delta_s decreases
  // monotonically with mu — the paper's Fig. 3b trend.
  const double beta = GetParam();
  const double gamma = 4.0;  // beta*gamma^2 >= 16*0.1 > 1 for all params
  double prev = 1e9;
  for (double mu = 0.05; mu <= 1.0; mu += 0.05) {
    const double d = ShadowingDeltaDbFromMu(beta, gamma, mu);
    EXPECT_LT(d, prev);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, ShadowingMonotonicity,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

TEST(Shadowing, Eq6ArgumentIsAffineInMu) {
  // Eq. 6 states Delta_s = 10 lg(a + b mu): the *power ratio* is affine in
  // mu. Verify exact affinity: second differences of 10^(Delta_s/10) vanish.
  const double beta = 0.4, gamma = 3.0;
  const auto ratio = [&](double mu) {
    return std::pow(10.0, ShadowingDeltaDbFromMu(beta, gamma, mu) / 10.0);
  };
  const double r1 = ratio(0.2), r2 = ratio(0.4), r3 = ratio(0.6);
  EXPECT_NEAR(r3 - r2, r2 - r1, 1e-12);
  // Slope sign: for beta*gamma^2 > 1 the ratio falls with mu.
  EXPECT_LT(r2, r1);
}

TEST(Reflection, NoReflectorMeansNoChange) {
  EXPECT_NEAR(ReflectionDeltaDbFromMu(0.0, 2.0, 1.0, 0.5, 0.5), 0.0, 1e-12);
}

TEST(Reflection, InPhaseReflectionRaisesRss) {
  // phi' = 0 and phi = 0: the new path adds constructively.
  const double d = ReflectionDeltaDbFromMu(0.5, 2.0, 0.0, 0.0, 0.5);
  EXPECT_GT(d, 0.0);
}

TEST(Reflection, AntiPhaseReflectionDropsRss) {
  // phi' = pi against a constructive static channel: destructive add.
  const double d = ReflectionDeltaDbFromMu(0.5, 2.0, 0.0, kPi, 0.5);
  EXPECT_LT(d, 0.0);
}

TEST(Reflection, MatchesDirectPhasorComputation) {
  // Independent check of Eq. 8 against raw phasor arithmetic.
  const double gamma = 2.5, eta = 0.7, phi = 1.1, phi_prime = 2.3;
  const double aL = gamma, aR = 1.0, aRp = eta;
  const Complex hN = aL + aR * std::polar(1.0, -phi);
  const Complex hR = hN + aRp * std::polar(1.0, -phi_prime);
  const double expected = 10.0 * std::log10(std::norm(hR) / std::norm(hN));
  const double mu = MultipathFactorClosedForm(gamma, phi);
  const double got = ReflectionDeltaDbFromMu(eta, gamma, phi, phi_prime, mu);
  EXPECT_NEAR(got, expected, 1e-9);
}

class ReflectionPhasorProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ReflectionPhasorProperty, Eq8AgreesWithPhasors) {
  const double gamma = std::get<0>(GetParam());
  const double eta = std::get<1>(GetParam());
  for (double phi = 0.1; phi < 6.2; phi += 0.53) {
    for (double phi_prime = 0.0; phi_prime < 6.2; phi_prime += 0.71) {
      const Complex hN = gamma + std::polar(1.0, -phi);
      const Complex hR = hN + eta * std::polar(1.0, -phi_prime);
      if (std::norm(hN) < 1e-6 || std::norm(hR) < 1e-9) continue;
      const double expected =
          10.0 * std::log10(std::norm(hR) / std::norm(hN));
      const double mu = MultipathFactorClosedForm(gamma, phi);
      EXPECT_NEAR(ReflectionDeltaDbFromMu(eta, gamma, phi, phi_prime, mu),
                  expected, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GammaEtaGrid, ReflectionPhasorProperty,
    ::testing::Combine(::testing::Values(1.3, 2.0, 4.0, 8.0),
                       ::testing::Values(0.1, 0.5, 1.0)));

TEST(PhaseFromExcess, KnownValues) {
  // Excess of one wavelength -> 2 pi.
  const double lambda = kSpeedOfLight / kChannel11CenterHz;
  EXPECT_NEAR(PhaseFromExcessLength(lambda, kChannel11CenterHz), 2.0 * kPi,
              1e-9);
  EXPECT_NEAR(PhaseFromExcessLength(0.0, kChannel11CenterHz), 0.0, 1e-12);
}

TEST(PhaseFromExcess, FrequencyConfigurability) {
  // The same excess length yields different phases at different subcarrier
  // frequencies — the basis of Sec. III-B's "Configurable Link Sensitivity".
  const double excess = 3.0;
  const double f_lo = SubcarrierFrequencyHz(0);
  const double f_hi = SubcarrierFrequencyHz(29);
  const double dphi = PhaseFromExcessLength(excess, f_hi) -
                      PhaseFromExcessLength(excess, f_lo);
  EXPECT_NEAR(dphi, 2.0 * kPi * (f_hi - f_lo) * excess / kSpeedOfLight, 1e-9);
  EXPECT_GT(std::abs(dphi), 0.5);  // non-trivial across the HT20 band
}

TEST(LinkModel, ArgumentValidation) {
  EXPECT_THROW(ShadowingDeltaDbFromPhase(0.0, 2.0, 1.0), PreconditionError);
  EXPECT_THROW(ShadowingDeltaDbFromPhase(1.2, 2.0, 1.0), PreconditionError);
  EXPECT_THROW(ShadowingDeltaDbFromMu(0.5, 2.0, 0.0), PreconditionError);
  EXPECT_THROW(ReflectionDeltaDbFromMu(-0.1, 2.0, 0.0, 0.0, 0.5),
               PreconditionError);
  EXPECT_THROW(PhaseFromExcessLength(-1.0, 1e9), PreconditionError);
}

}  // namespace
}  // namespace mulink::core
