// Radio Tomographic Imaging tests — synthetic inversion properties plus an
// end-to-end run on the channel simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/rti.h"
#include "core/sanitize.h"
#include "experiments/scenario.h"

namespace mulink::core {
namespace {

TEST(PerimeterNodes, EvenlySpacedOnTheBoundary) {
  const auto nodes = PerimeterNodes(6.0, 8.0, 8, 0.5);
  ASSERT_EQ(nodes.size(), 8u);
  for (const auto& n : nodes) {
    const bool on_x_edge =
        std::abs(n.x - 0.5) < 1e-9 || std::abs(n.x - 5.5) < 1e-9;
    const bool on_y_edge =
        std::abs(n.y - 0.5) < 1e-9 || std::abs(n.y - 7.5) < 1e-9;
    EXPECT_TRUE(on_x_edge || on_y_edge);
    EXPECT_GE(n.x, 0.5 - 1e-9);
    EXPECT_LE(n.x, 5.5 + 1e-9);
  }
  EXPECT_THROW(PerimeterNodes(1.0, 1.0, 8, 0.6), PreconditionError);
  EXPECT_THROW(PerimeterNodes(6.0, 8.0, 2), PreconditionError);
}

TEST(RtiImager, LinkAndGridBookkeeping) {
  const auto nodes = PerimeterNodes(6.0, 6.0, 6);
  const RtiImager imager(nodes, 6.0, 6.0);
  EXPECT_EQ(imager.links().size(), 15u);  // 6 choose 2
  EXPECT_EQ(imager.grid().nx, 20u);       // 6 m / 0.3 m
  EXPECT_EQ(imager.grid().ny, 20u);
  // Pixel centers sweep the area.
  const auto first = imager.grid().PixelCenter(0);
  EXPECT_NEAR(first.x, 0.15, 1e-12);
  EXPECT_NEAR(first.y, 0.15, 1e-12);
}

TEST(RtiImager, WeightsLiveInsideTheEllipse) {
  const std::vector<geometry::Vec2> nodes = {{1, 3}, {5, 3}, {3, 1}};
  const RtiImager imager(nodes, 6.0, 6.0);
  // Link 0 connects (1,3)-(5,3). A pixel on that segment is inside its
  // ellipse; a pixel far above is not.
  const auto& grid = imager.grid();
  std::size_t on_link = 0, far_away = 0;
  for (std::size_t p = 0; p < grid.NumPixels(); ++p) {
    const auto c = grid.PixelCenter(p);
    if (std::abs(c.y - 3.0) < 0.16 && c.x > 1.2 && c.x < 4.8) on_link = p;
    if (c.y > 5.5) far_away = p;
  }
  EXPECT_GT(imager.Weight(0, on_link), 0.0);
  EXPECT_EQ(imager.Weight(0, far_away), 0.0);
}

TEST(RtiImager, ReconstructsSyntheticBlob) {
  // Forward-project a single attenuating pixel through the weight model and
  // invert: the image peak must land on that pixel.
  const auto nodes = PerimeterNodes(6.0, 6.0, 8);
  const RtiImager imager(nodes, 6.0, 6.0);
  const auto& grid = imager.grid();

  const geometry::Vec2 person{3.2, 2.6};
  std::size_t person_pixel = 0;
  double best = 1e9;
  for (std::size_t p = 0; p < grid.NumPixels(); ++p) {
    const double d = geometry::Distance(grid.PixelCenter(p), person);
    if (d < best) {
      best = d;
      person_pixel = p;
    }
  }

  std::vector<double> delta(imager.links().size(), 0.0);
  for (std::size_t l = 0; l < imager.links().size(); ++l) {
    delta[l] = 5.0 * imager.Weight(l, person_pixel);  // 5 dB-ish attenuation
  }
  const auto image = imager.Reconstruct(delta);
  const auto located = imager.LocateMax(image);
  EXPECT_LT(geometry::Distance(located, person), 0.5);
  EXPECT_GT(imager.PeakValue(image), 0.0);
}

TEST(RtiImager, EmptyMeasurementsGiveFlatImage) {
  const auto nodes = PerimeterNodes(6.0, 6.0, 6);
  const RtiImager imager(nodes, 6.0, 6.0);
  const std::vector<double> zeros(imager.links().size(), 0.0);
  const auto image = imager.Reconstruct(zeros);
  for (double v : image) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(RtiImager, RegularizationTamesNoise) {
  const auto nodes = PerimeterNodes(6.0, 6.0, 8);
  RtiConfig weak, strong;
  weak.regularization = 0.5;
  strong.regularization = 50.0;
  const RtiImager imager_weak(nodes, 6.0, 6.0, weak);
  const RtiImager imager_strong(nodes, 6.0, 6.0, strong);

  Rng rng(5);
  std::vector<double> noise(imager_weak.links().size());
  for (auto& v : noise) v = rng.Gaussian(0.0, 1.0);
  const double peak_weak = imager_weak.PeakValue(imager_weak.Reconstruct(noise));
  const double peak_strong =
      imager_strong.PeakValue(imager_strong.Reconstruct(noise));
  EXPECT_LT(peak_strong, peak_weak);
}

TEST(RtiImager, ValidatesArguments) {
  EXPECT_THROW(RtiImager({{1, 1}, {2, 2}}, 6.0, 6.0), PreconditionError);
  const auto nodes = PerimeterNodes(6.0, 6.0, 4);
  const RtiImager imager(nodes, 6.0, 6.0);
  EXPECT_THROW(imager.Reconstruct({1.0}), PreconditionError);
}

TEST(RtiEndToEnd, LocalizesAPersonWithSimulatedLinks) {
  // 8 perimeter nodes in the classroom; each pair is a simulated 1-antenna
  // link. Delta-RSS per link feeds the imager; the peak should land near the
  // person.
  auto lc = experiments::MakeClassroomLink();
  lc.walker_bases.clear();
  const double width = lc.room.width(), depth = lc.room.depth();
  const auto nodes = PerimeterNodes(width, depth, 8, 0.5);
  RtiConfig config;
  config.ellipse_excess_m = 0.3;
  const RtiImager imager(nodes, width, depth, config);

  // One simulator per link (single antenna, calmer noise for test speed).
  auto sim_config = experiments::DefaultSimConfig();
  sim_config.interference_entry_prob = 0.0;
  sim_config.slow_gain_drift_db = 0.05;
  std::vector<nic::ChannelSimulator> sims;
  for (const auto& [a, b] : imager.links()) {
    sims.emplace_back(lc.room, nodes[a], nodes[b],
                      wifi::UniformLinearArray(1, kWavelength / 2.0, 0.0),
                      wifi::BandPlan::Intel5300Channel11(), sim_config);
  }

  Rng rng(9);
  const geometry::Vec2 person{2.5, 5.0};
  std::vector<double> delta(imager.links().size(), 0.0);
  for (std::size_t l = 0; l < sims.size(); ++l) {
    const auto empty = sims[l].CaptureSession(20, std::nullopt, rng);
    propagation::HumanBody body;
    body.position = person;
    const auto occupied = sims[l].CaptureSession(20, body, rng);
    double p_empty = 0.0, p_occupied = 0.0;
    for (const auto& packet : empty) p_empty += packet.TotalPower();
    for (const auto& packet : occupied) p_occupied += packet.TotalPower();
    // Attenuation in dB (positive when the person removed energy).
    delta[l] = std::max(0.0, 10.0 * std::log10(p_empty / p_occupied));
  }

  const auto image = imager.Reconstruct(delta);
  const auto located = imager.LocateMax(image);
  EXPECT_LT(geometry::Distance(located, person), 1.2);
}

}  // namespace
}  // namespace mulink::core
