// Adaptive-calibration tests: the QuietScorePosterior / ProfilePosterior
// sufficient statistics, the recalibration ladder's state machine
// (drift confirmation, AGC fast re-baseline, blackout escape, starvation
// fallback, timeout/backoff/freeze, swap-spacing de-escalation), the
// legacy profile-drift watchdog's edge cases (reset, degraded windows,
// dead-chain revive), and streaming-vs-batch bit-identity with the ladder
// active under long-horizon drift faults.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/calibration/calibration.h"
#include "core/detector.h"
#include "core/engine.h"
#include "core/streaming.h"
#include "experiments/scenario.h"
#include "nic/fault_injection.h"
#include "nic/frame_guard.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

constexpr std::size_t kWindow = 25;

struct CalibrationFixture {
  ex::LinkCase link = ex::MakeClassroomLink();
  nic::ChannelSimulator sim = ex::MakeSimulator(link);
  Rng rng{4242};
  std::vector<wifi::CsiPacket> calibration =
      sim.CaptureSession(400, std::nullopt, rng);
  std::vector<wifi::CsiPacket> empty_session =
      sim.CaptureSession(600, std::nullopt, rng);

  core::Detector Calibrated(core::DetectionScheme scheme) const {
    core::DetectorConfig config;
    config.scheme = scheme;
    auto detector =
        core::Detector::Calibrate(calibration, sim.band(), sim.array(), config);
    std::vector<std::vector<wifi::CsiPacket>> windows;
    for (std::size_t s = 0; s + kWindow <= calibration.size(); s += kWindow) {
      windows.emplace_back(
          calibration.begin() + static_cast<std::ptrdiff_t>(s),
          calibration.begin() + static_cast<std::ptrdiff_t>(s + kWindow));
    }
    detector.CalibrateThreshold(windows);
    return detector;
  }

  std::vector<double> EmptyScores(const core::Detector& detector) const {
    std::vector<double> scores;
    for (std::size_t s = 0; s + kWindow <= empty_session.size(); s += kWindow) {
      const std::vector<wifi::CsiPacket> window(
          empty_session.begin() + static_cast<std::ptrdiff_t>(s),
          empty_session.begin() + static_cast<std::ptrdiff_t>(s + kWindow));
      scores.push_back(detector.Score(window));
    }
    return scores;
  }
};

CalibrationFixture& Fixture() {
  static CalibrationFixture f;
  return f;
}

// ------------------------------------------------- QuietScorePosterior --

TEST(QuietScorePosterior, SeedMatchesSampleMoments) {
  core::QuietScorePosterior posterior;
  const double scores[] = {1.0, 2.0, 3.0, 4.0};
  posterior.Seed(scores);
  EXPECT_DOUBLE_EQ(posterior.EffectiveWindows(), 4.0);
  EXPECT_DOUBLE_EQ(posterior.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(posterior.Variance(), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(posterior.SeedMean(), 2.5);
  EXPECT_DOUBLE_EQ(posterior.Threshold(2.0), 2.5 + 2.0 * std::sqrt(1.25));
  const double expected_log =
      (std::log(1.0) + std::log(2.0) + std::log(3.0) + std::log(4.0)) / 4.0;
  EXPECT_NEAR(posterior.LogMean(), expected_log, 1e-12);
}

TEST(QuietScorePosterior, ObserveWithoutForgettingMatchesBatchSeed) {
  const double scores[] = {0.8, 1.3, 0.6, 1.1, 0.9};
  core::QuietScorePosterior batch;
  batch.Seed(scores);
  core::QuietScorePosterior online;
  online.Seed(std::span<const double>{});
  for (const double s : scores) online.Observe(s, /*forgetting=*/1.0);
  EXPECT_NEAR(online.Mean(), batch.Mean(), 1e-12);
  EXPECT_NEAR(online.Variance(), batch.Variance(), 1e-12);
  EXPECT_NEAR(online.LogMean(), batch.LogMean(), 1e-12);
  EXPECT_NEAR(online.LogSigma(), batch.LogSigma(), 1e-12);
}

TEST(QuietScorePosterior, ForgettingTracksALevelShift) {
  core::QuietScorePosterior posterior;
  const double seed[] = {1.0, 1.02, 0.98, 1.01, 0.99};
  posterior.Seed(seed);
  for (int i = 0; i < 60; ++i) posterior.Observe(2.0, 0.8);
  // Effective memory saturates at 1/(1-forgetting) and the mean converges
  // on the new level.
  EXPECT_NEAR(posterior.EffectiveWindows(), 5.0, 0.1);
  EXPECT_NEAR(posterior.Mean(), 2.0, 0.01);
}

TEST(QuietScorePosterior, DeweightCapsEvidenceKeepsEstimate) {
  core::QuietScorePosterior posterior;
  std::vector<double> scores;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(1.0 + 0.1 * static_cast<double>(i % 7));
  }
  posterior.Seed(scores);
  const double mean = posterior.Mean();
  const double std_dev = posterior.StdDev();
  posterior.Deweight(1.0);
  EXPECT_DOUBLE_EQ(posterior.EffectiveWindows(), 1.0);
  EXPECT_DOUBLE_EQ(posterior.Mean(), mean);
  // M2 scales with the weight, so the per-window spread is preserved.
  EXPECT_NEAR(posterior.StdDev(), std_dev, 1e-12);
}

TEST(QuietScorePosterior, ResetRestoresTheSeededPrior) {
  core::QuietScorePosterior posterior;
  const double seed[] = {0.9, 1.0, 1.1};
  posterior.Seed(seed);
  const double mean = posterior.Mean();
  const double variance = posterior.Variance();
  const double log_mean = posterior.LogMean();
  for (int i = 0; i < 20; ++i) posterior.Observe(7.0, 0.9);
  EXPECT_NE(posterior.Mean(), mean);
  posterior.Reset();
  EXPECT_DOUBLE_EQ(posterior.Mean(), mean);
  EXPECT_DOUBLE_EQ(posterior.Variance(), variance);
  EXPECT_DOUBLE_EQ(posterior.LogMean(), log_mean);
}

TEST(QuietScorePosterior, ReseedScaledMovesLocationKeepsShape) {
  core::QuietScorePosterior posterior;
  const double seed[] = {0.8, 1.0, 1.2, 0.9, 1.1};
  posterior.Seed(seed);
  const double seed_std = posterior.StdDev();
  const double seed_log_mean = posterior.LogMean();
  const double seed_log_sigma = posterior.LogSigma();
  for (int i = 0; i < 10; ++i) posterior.Observe(3.0, 0.8);
  posterior.ReseedScaled(2.0);
  EXPECT_DOUBLE_EQ(posterior.Mean(), 2.0);
  EXPECT_NEAR(posterior.StdDev(), 2.0 * seed_std, 1e-12);
  EXPECT_NEAR(posterior.LogMean(), seed_log_mean + std::log(2.0), 1e-12);
  EXPECT_NEAR(posterior.LogSigma(), seed_log_sigma, 1e-12);
}

TEST(QuietScorePosterior, LogSigmaIsFlooredLikeTheHmmFit) {
  core::QuietScorePosterior posterior;
  const double seed[] = {1.0, 1.0, 1.0, 1.0};
  posterior.Seed(seed);
  EXPECT_DOUBLE_EQ(posterior.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(posterior.LogSigma(), 0.05);  // PresenceHmm's floor
}

// ---------------------------------------------------- ProfilePosterior --

TEST(ProfilePosterior, SeedFromAnchorsAtTheActiveProfile) {
  auto& f = Fixture();
  const auto detector =
      f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  core::ProfilePosterior posterior;
  posterior.Configure(detector.num_antennas(), detector.num_subcarriers());
  posterior.SeedFrom(detector);
  EXPECT_DOUBLE_EQ(posterior.EffectiveWindows(), 1.0);
  const auto& power = detector.profile_power();
  for (std::size_t m = 0; m < detector.num_antennas(); ++m) {
    for (std::size_t k = 0; k < detector.num_subcarriers(); ++k) {
      EXPECT_DOUBLE_EQ(posterior.MeanPower(m, k), power[m][k]);
      EXPECT_DOUBLE_EQ(posterior.MeanAmplitude(m, k),
                       std::sqrt(power[m][k]));
      EXPECT_DOUBLE_EQ(posterior.MeanVariance(m, k), 0.0);
    }
  }
}

TEST(ProfilePosterior, ObserveConvergesOnWindowStatsAndResetRestores) {
  auto& f = Fixture();
  const auto detector =
      f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  core::ProfilePosterior posterior;
  posterior.Configure(detector.num_antennas(), detector.num_subcarriers());
  posterior.SeedFrom(detector);
  const std::span<const wifi::CsiPacket> window(f.empty_session.data(),
                                                kWindow);
  // Fold the same window in with fast forgetting: the posterior mean must
  // converge on the window's own per-cell mean power.
  for (int i = 0; i < 40; ++i) posterior.Observe(window, 0.5);
  double expected = 0.0;
  for (const auto& packet : window) expected += packet.SubcarrierPower(1, 7);
  expected /= static_cast<double>(window.size());
  EXPECT_NEAR(posterior.MeanPower(1, 7), expected,
              1e-9 * std::max(1.0, std::abs(expected)));
  // Temporal variance picks up a nonzero floor from the fading channel.
  EXPECT_GT(posterior.MeanVariance(1, 7), 0.0);

  posterior.Reset();
  EXPECT_DOUBLE_EQ(posterior.EffectiveWindows(), 1.0);
  EXPECT_DOUBLE_EQ(posterior.MeanPower(1, 7),
                   detector.profile_power()[1][7]);
  EXPECT_DOUBLE_EQ(posterior.MeanVariance(1, 7), 0.0);
}

// ------------------------------------------------------------- ladder --

// Harness that drives LinkCalibrator::ObserveDecision directly with
// synthetic scores/posteriors and real empty-room windows, so every ladder
// transition is pinned deterministically.
struct LadderHarness {
  core::Detector detector;
  std::vector<double> empty_scores;
  core::LinkCalibrator calibrator;
  std::size_t next_window = 0;
  double threshold = 0.0;
  double quiet_level = 0.0;

  explicit LadderHarness(const core::CalibrationConfig& config)
      : detector(Fixture().Calibrated(
            core::DetectionScheme::kSubcarrierWeighting)),
        empty_scores(Fixture().EmptyScores(detector)) {
    calibrator.Configure(detector, empty_scores, config);
    threshold = detector.threshold();
    quiet_level = calibrator.score_posterior().Mean();
  }

  std::span<const wifi::CsiPacket> NextWindow() {
    auto& session = Fixture().empty_session;
    const std::size_t windows = session.size() / kWindow;
    const std::span<const wifi::CsiPacket> window(
        session.data() + (next_window % windows) * kWindow, kWindow);
    ++next_window;
    return window;
  }

  bool Feed(double score, double posterior,
            core::CalibrationWindowContext context = {}) {
    return calibrator.ObserveDecision(score, posterior, NextWindow(), detector,
                                      context);
  }

  bool Quiet(double score) { return Feed(score, 0.0); }
  bool Loud(double score) { return Feed(score, 1.0); }
  bool Tainted(double score) {
    core::CalibrationWindowContext context;
    context.repaired_frames = 1;
    return Feed(score, 1.0, context);
  }

  core::LadderState state() const { return calibrator.state(); }
};

core::CalibrationConfig FastLadderConfig() {
  core::CalibrationConfig config;
  config.enabled = true;
  config.quiet_posterior_max = 0.2;
  // Instant EWMAs make each fed score the drift/ambient level directly.
  config.drift_ewma_alpha = 1.0;
  config.drift_confirm_windows = 2;
  config.recalibration_quiet_windows = 3;
  config.recalibration_timeout_windows = 10;
  config.starvation_windows = 4;
  config.blackout_windows = 6;
  config.max_consecutive_swaps = 2;
  config.degraded_backoff_windows = 8;
  config.max_degraded_entries = 2;
  config.heal_windows = 4;
  return config;
}

TEST(RecalibrationLadder, DriftConfirmationWalksToASwapAndBack) {
  LadderHarness h(FastLadderConfig());
  ASSERT_EQ(h.state(), core::LadderState::kHealthy);
  EXPECT_FALSE(h.calibrator.drift_flagged());

  // Quiet windows persistently just under the threshold: suspect, confirm,
  // recalibrate.
  const double drifting = 0.97 * h.threshold;
  h.Quiet(drifting);
  h.Quiet(drifting);
  EXPECT_EQ(h.state(), core::LadderState::kDriftSuspected);
  EXPECT_TRUE(h.calibrator.drift_flagged());
  h.Quiet(drifting);
  h.Quiet(drifting);
  EXPECT_EQ(h.state(), core::LadderState::kRecalibrating);

  // recalibration_quiet_windows of evidence apply the swap in place.
  EXPECT_FALSE(h.Quiet(drifting));
  EXPECT_FALSE(h.Quiet(drifting));
  EXPECT_TRUE(h.Quiet(drifting));
  EXPECT_EQ(h.state(), core::LadderState::kHealthy);
  EXPECT_FALSE(h.calibrator.drift_flagged());
  EXPECT_EQ(h.calibrator.profile_swaps(), 1u);
  EXPECT_GT(h.calibrator.quiet_windows(), 0u);
  // The swap re-applied the calibrated margin on the rebased quiet level,
  // clamped to [1, 1.5]x the calibration-time operating point.
  EXPECT_GT(h.calibrator.adaptive_threshold(), 0.0);
  EXPECT_DOUBLE_EQ(h.calibrator.adaptive_threshold(), h.detector.threshold());
  EXPECT_GE(h.detector.threshold(), 0.999 * h.threshold);
  EXPECT_LE(h.detector.threshold(), 1.501 * h.threshold);
}

TEST(RecalibrationLadder, CalmWindowsWalkBackFromDriftSuspected) {
  LadderHarness h(FastLadderConfig());
  const double drifting = 0.97 * h.threshold;
  h.Quiet(drifting);
  h.Quiet(drifting);
  ASSERT_EQ(h.state(), core::LadderState::kDriftSuspected);
  h.Quiet(h.quiet_level);
  h.Quiet(h.quiet_level);
  EXPECT_EQ(h.state(), core::LadderState::kHealthy);
  EXPECT_EQ(h.calibrator.profile_swaps(), 0u);
  EXPECT_FALSE(h.calibrator.drift_flagged());
}

TEST(RecalibrationLadder, AgcBurstFastRebaselines) {
  LadderHarness h(FastLadderConfig());
  core::CalibrationWindowContext agc;
  agc.repaired_frames = 6;
  agc.agc_frames = 6;  // >= agc_frames_min
  h.Feed(h.quiet_level, 0.0, agc);
  EXPECT_EQ(h.state(), core::LadderState::kRecalibrating);
  EXPECT_EQ(h.calibrator.agc_rebaselines(), 1u);
  // The fast path only fires from Healthy/DriftSuspected: a second burst
  // while already Recalibrating does not count again.
  h.Feed(h.quiet_level, 0.0, agc);
  EXPECT_EQ(h.calibrator.agc_rebaselines(), 1u);
  h.Quiet(h.quiet_level);
  h.Quiet(h.quiet_level);
  h.Quiet(h.quiet_level);
  EXPECT_EQ(h.calibrator.profile_swaps(), 1u);
  EXPECT_EQ(h.state(), core::LadderState::kHealthy);
}

TEST(RecalibrationLadder, TaintedWindowsNeverFeedThePosteriors) {
  LadderHarness h(FastLadderConfig());
  const double before_mean = h.calibrator.score_posterior().Mean();
  core::CalibrationWindowContext repaired;
  repaired.repaired_frames = 2;
  core::CalibrationWindowContext degraded;
  degraded.degraded = true;
  for (int i = 0; i < 10; ++i) {
    h.Feed(0.97 * h.threshold, 0.0, repaired);
    h.Feed(0.97 * h.threshold, 0.0, degraded);
  }
  EXPECT_EQ(h.calibrator.quiet_windows(), 0u);
  EXPECT_EQ(h.state(), core::LadderState::kHealthy);
  EXPECT_DOUBLE_EQ(h.calibrator.score_posterior().Mean(), before_mean);
}

TEST(RecalibrationLadder, OccupiedWindowsNeverFeedThePosteriors) {
  LadderHarness h(FastLadderConfig());
  const double before_mean = h.calibrator.score_posterior().Mean();
  // Clean windows below the threshold but with a confident-occupied
  // posterior: drift sensing may track them, the posteriors must not.
  for (int i = 0; i < 10; ++i) h.Feed(h.quiet_level, 0.9);
  EXPECT_EQ(h.calibrator.quiet_windows(), 0u);
  EXPECT_DOUBLE_EQ(h.calibrator.score_posterior().Mean(), before_mean);
}

TEST(RecalibrationLadder, BlackoutEscapeRebaselinesAfterAStepChange) {
  LadderHarness h(FastLadderConfig());
  // A step change: every untainted window lands far above every gate the
  // ladder owns, with the filter saturated occupied.
  const double loud = 3.0 * h.threshold;
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(h.state(), core::LadderState::kHealthy) << "window " << i;
    h.Loud(loud);
  }
  // blackout_windows of that and the ladder concludes the room moved past
  // its gates; the starvation clock enters Recalibrating pre-expired, so
  // the ambient-EWMA fallback band admits the loud-but-vacant windows
  // immediately.
  EXPECT_EQ(h.state(), core::LadderState::kRecalibrating);
  h.Loud(loud);
  h.Loud(loud);
  h.Loud(loud);
  EXPECT_EQ(h.calibrator.profile_swaps(), 1u);
  EXPECT_EQ(h.state(), core::LadderState::kHealthy);
}

TEST(RecalibrationLadder, TimeoutDegradesThenFreezesAndResetRearms) {
  auto config = FastLadderConfig();
  config.blackout_windows = 0;  // isolate the timeout/backoff path
  LadderHarness h(config);

  const double drifting = 0.97 * h.threshold;
  auto drive_to_recalibrating = [&] {
    while (h.state() != core::LadderState::kRecalibrating &&
           h.state() != core::LadderState::kFrozen) {
      h.Quiet(drifting);
    }
  };

  drive_to_recalibrating();
  // Tainted windows advance the clocks but never count as evidence: the
  // collection times out and the ladder degrades.
  for (int i = 0; i < 10; ++i) h.Tainted(5.0 * h.threshold);
  EXPECT_EQ(h.state(), core::LadderState::kDegraded);
  EXPECT_TRUE(h.calibrator.drift_flagged());

  // The backoff expires into a retry; the retry starves the same way and
  // the second degradation freezes the ladder.
  for (int i = 0; i < 8; ++i) h.Tainted(5.0 * h.threshold);
  EXPECT_EQ(h.state(), core::LadderState::kRecalibrating);
  for (int i = 0; i < 10 && h.state() != core::LadderState::kFrozen; ++i) {
    h.Tainted(5.0 * h.threshold);
  }
  EXPECT_EQ(h.state(), core::LadderState::kFrozen);

  // Frozen is inert: even perfect quiet evidence is ignored.
  const auto frozen_quiet = h.calibrator.quiet_windows();
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(h.Quiet(h.quiet_level));
  EXPECT_EQ(h.state(), core::LadderState::kFrozen);
  EXPECT_EQ(h.calibrator.quiet_windows(), frozen_quiet);

  // Only an explicit Reset re-arms it, with the full escalation budget.
  h.calibrator.Reset(h.detector);
  EXPECT_EQ(h.state(), core::LadderState::kHealthy);
  EXPECT_EQ(h.calibrator.quiet_windows(), 0u);
  drive_to_recalibrating();
  EXPECT_EQ(h.state(), core::LadderState::kRecalibrating);
}

TEST(RecalibrationLadder, BlackoutEscapeCutsTheDegradedBackoffShort) {
  auto config = FastLadderConfig();
  config.blackout_windows = 4;
  config.degraded_backoff_windows = 100;
  LadderHarness h(config);
  const double drifting = 0.97 * h.threshold;
  while (h.state() != core::LadderState::kRecalibrating) h.Quiet(drifting);
  for (int i = 0; i < 10; ++i) h.Tainted(5.0 * h.threshold);
  ASSERT_EQ(h.state(), core::LadderState::kDegraded);
  // A step change lands during the backoff: untainted windows above every
  // gate escape to Recalibrating long before the 100-window backoff.
  h.Loud(3.0 * h.threshold);
  h.Loud(3.0 * h.threshold);
  h.Loud(3.0 * h.threshold);
  h.Loud(3.0 * h.threshold);
  EXPECT_EQ(h.state(), core::LadderState::kRecalibrating);
}

// Swap-chasing is measured by swap-to-swap spacing: back-to-back swaps
// escalate toward Degraded, while the same number of swaps spaced at least
// 2 x heal_windows apart are independent re-anchors and never escalate.
TEST(RecalibrationLadder, SwapSpacingControlsEscalation) {
  auto config = FastLadderConfig();
  config.max_consecutive_swaps = 1;
  core::CalibrationWindowContext agc;
  agc.repaired_frames = 6;
  agc.agc_frames = 6;

  auto swap_via_agc = [&](LadderHarness& h) {
    h.Feed(h.quiet_level, 0.0, agc);
    h.Quiet(h.quiet_level);
    h.Quiet(h.quiet_level);
    h.Quiet(h.quiet_level);
  };

  {  // Chasing: a second swap hot on the heels of the first escalates.
    LadderHarness h(config);
    swap_via_agc(h);
    ASSERT_EQ(h.calibrator.profile_swaps(), 1u);
    ASSERT_EQ(h.state(), core::LadderState::kHealthy);
    swap_via_agc(h);
    EXPECT_EQ(h.calibrator.profile_swaps(), 2u);
    EXPECT_EQ(h.state(), core::LadderState::kDegraded);
  }
  {  // Pacing: identical swaps separated by 2 x heal_windows of decisions
    // (tainted spacers, so no other heal bookkeeping can mask the rule).
    LadderHarness h(config);
    swap_via_agc(h);
    ASSERT_EQ(h.state(), core::LadderState::kHealthy);
    for (int i = 0; i < 8; ++i) h.Tainted(h.quiet_level);
    swap_via_agc(h);
    EXPECT_EQ(h.calibrator.profile_swaps(), 2u);
    EXPECT_EQ(h.state(), core::LadderState::kHealthy);
  }
}

TEST(RecalibrationLadder, FillHealthExportsTheLadder) {
  LadderHarness h(FastLadderConfig());
  const double drifting = 0.97 * h.threshold;
  h.Quiet(drifting);
  h.Quiet(drifting);
  ASSERT_EQ(h.state(), core::LadderState::kDriftSuspected);
  nic::LinkHealth health;
  h.calibrator.FillHealth(health);
  EXPECT_EQ(health.calibration_state, nic::CalibrationLadder::kDriftSuspected);
  EXPECT_TRUE(health.profile_drift);  // the ladder owns the flag
  EXPECT_EQ(health.quiet_windows, h.calibrator.quiet_windows());
  EXPECT_EQ(health.profile_swaps, 0u);
  EXPECT_DOUBLE_EQ(health.empty_score_ewma, h.calibrator.quiet_score_ewma());
  EXPECT_EQ(nic::Status(health), nic::LinkStatus::kDegraded);

  // A disabled calibrator must leave the snapshot alone.
  core::LinkCalibrator inert;
  nic::LinkHealth untouched;
  untouched.profile_drift = true;
  inert.FillHealth(untouched);
  EXPECT_TRUE(untouched.profile_drift);
  EXPECT_EQ(untouched.calibration_state, nic::CalibrationLadder::kHealthy);
}

// ------------------------------------- legacy watchdog edge cases --

core::StreamingConfig WatchdogConfig(const core::Detector& detector,
                                     const std::vector<double>& empty_scores) {
  core::StreamingConfig config;
  config.use_hmm = false;
  config.guard_enabled = true;
  config.watchdog_min_windows = 4;
  // Place the watchdog reference safely below the quiet level so plain
  // empty traffic trips the flag after watchdog_min_windows — the tests
  // below pin WHEN the flag may move, not the detection margin itself.
  double mean = 0.0;
  for (const double s : empty_scores) mean += s;
  mean /= static_cast<double>(empty_scores.size());
  config.watchdog_score_fraction = 0.8 * mean / detector.threshold();
  return config;
}

TEST(ProfileDriftWatchdog, FlagAndEwmaSeedSurviveReset) {
  auto& f = Fixture();
  auto detector = f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  const auto empty_scores = f.EmptyScores(detector);
  const auto config = WatchdogConfig(detector, empty_scores);
  double seed = 0.0;
  for (const double s : empty_scores) seed += s;
  seed /= static_cast<double>(empty_scores.size());

  core::StreamingDetector streaming(std::move(detector), empty_scores, config);
  // Before any window the EWMA sits at the calibration seed, not 0.
  EXPECT_DOUBLE_EQ(streaming.Health().empty_score_ewma, seed);

  for (const auto& packet : f.empty_session) streaming.Push(packet);
  EXPECT_TRUE(streaming.Health().profile_drift);

  streaming.Reset();
  EXPECT_FALSE(streaming.Health().profile_drift);
  // The cold-start seed survives the reset: the first windows after a
  // reset blend into a warm EWMA instead of jumping from 0.
  EXPECT_DOUBLE_EQ(streaming.Health().empty_score_ewma, seed);

  // And the same tail trips the flag again — reset does not blind it.
  for (const auto& packet : f.empty_session) streaming.Push(packet);
  EXPECT_TRUE(streaming.Health().profile_drift);
}

TEST(ProfileDriftWatchdog, DegradedWindowsAreIgnoredUntilTheChainRevives) {
  auto& f = Fixture();
  auto detector = f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  const auto empty_scores = f.EmptyScores(detector);
  const auto config = WatchdogConfig(detector, empty_scores);
  core::StreamingDetector streaming(std::move(detector), empty_scores, config);

  // First half of the stream arrives with RX chain 2 silenced: the guard
  // confirms the dead chain and every decision is degraded.
  const std::size_t half = f.empty_session.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    wifi::CsiPacket killed = f.empty_session[i];
    for (std::size_t k = 0; k < killed.NumSubcarriers(); ++k) {
      killed.csi.At(2, k) = Complex(0.0, 0.0);
    }
    streaming.Push(killed);
  }
  {
    const auto health = streaming.Health();
    EXPECT_EQ(health.dead_antenna_mask, 1u << 2);
    EXPECT_GT(health.degraded_decisions, 0u);
    // Degraded decisions score a different statistic on a different
    // scale — the watchdog must not learn (or flag) from them, however
    // long the outage runs.
    EXPECT_FALSE(health.profile_drift);
  }

  // The chain revives: clean decisions resume feeding the watchdog and the
  // (deliberately hair-triggered) flag now trips.
  for (std::size_t i = half; i < f.empty_session.size(); ++i) {
    streaming.Push(f.empty_session[i]);
  }
  const auto health = streaming.Health();
  EXPECT_EQ(health.dead_antenna_mask, 0u);
  EXPECT_TRUE(health.profile_drift);
}

// ----------------------------------- streaming/batch bit-identity --

// With the ladder active under long-horizon drift faults (gain ramp,
// furniture step, scheduled AGC jumps), StreamingDetector and SensingEngine
// must agree decision-for-decision and ladder-state-for-ladder-state.
TEST(AdaptiveCalibration, StreamingAndBatchAgreeUnderDriftFaults) {
  auto& f = Fixture();
  nic::FaultInjectionConfig faults;
  faults.enabled = true;
  faults.seed = 77;
  faults.drift_ramp_db_per_1k = 2.0;
  faults.furniture_step_packets = 900;
  faults.furniture_step_sigma_db = 1.0;
  faults.agc_schedule_every_packets = 700;  // multiple of the window length
  auto sim_config = ex::DefaultSimConfig();
  sim_config.faults = faults;
  auto drifting = ex::MakeSimulator(f.link, sim_config);
  Rng rng(909);
  const auto session = drifting.CaptureSession(2100, std::nullopt, rng);

  auto detector = f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  const auto empty_scores = f.EmptyScores(detector);
  core::StreamingConfig stream;
  stream.guard_enabled = true;
  stream.calibration = FastLadderConfig();
  stream.calibration.drift_ewma_alpha = 0.3;

  core::StreamingDetector streaming(detector, empty_scores, stream);
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), empty_scores, stream);

  std::vector<core::PresenceDecision> pushed;
  for (const auto& packet : session) {
    if (auto d = streaming.Push(packet)) pushed.push_back(*d);
  }
  const auto& batch =
      engine.ProcessBatch(std::span<const wifi::CsiPacket>(session));
  ASSERT_EQ(pushed.size(), batch.decisions.size());
  ASSERT_FALSE(pushed.empty());
  for (std::size_t i = 0; i < pushed.size(); ++i) {
    EXPECT_EQ(pushed[i].score, batch.decisions[i].score);
    EXPECT_EQ(pushed[i].posterior, batch.decisions[i].posterior);
    EXPECT_EQ(pushed[i].occupied, batch.decisions[i].occupied);
    EXPECT_EQ(pushed[i].degraded, batch.decisions[i].degraded);
  }

  const auto& push_cal = streaming.calibrator();
  const auto& batch_cal = engine.Calibrator(0);
  EXPECT_EQ(push_cal.state(), batch_cal.state());
  EXPECT_EQ(push_cal.quiet_windows(), batch_cal.quiet_windows());
  EXPECT_EQ(push_cal.profile_swaps(), batch_cal.profile_swaps());
  EXPECT_EQ(push_cal.agc_rebaselines(), batch_cal.agc_rebaselines());
  EXPECT_EQ(push_cal.adaptive_threshold(), batch_cal.adaptive_threshold());
  EXPECT_EQ(push_cal.quiet_log_mean(), batch_cal.quiet_log_mean());

  // The ladder actually moved under these faults: quiet evidence was
  // collected and the window-aligned scheduled AGC bursts drove the fast
  // re-baseline path through the robust RSSI guard.
  EXPECT_GT(push_cal.quiet_windows(), 0u);
  EXPECT_GE(push_cal.agc_rebaselines(), 1u);

  const auto health = engine.Health(0);
  EXPECT_EQ(health.calibration_state, push_cal.state());
  EXPECT_EQ(health.quiet_windows, push_cal.quiet_windows());
}

}  // namespace
