// Higher-level sensing extensions: respiration estimation, fingerprint
// localization, and channel-sweep frequency diversity.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/breath.h"
#include "core/fingerprint.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/scenario.h"

namespace mulink::core {
namespace {

namespace ex = mulink::experiments;

nic::ChannelSimConfig CalmConfig() {
  // Breathing is a millimetre-scale signal: suppress the bursty stressors
  // (a sleep-monitoring deployment is a quiet bedroom, not a busy office).
  auto config = ex::DefaultSimConfig();
  config.interference_entry_prob = 0.0;
  config.slow_gain_drift_db = 0.05;
  config.human_sway_sigma_m = 0.001;
  config.background_jitter_m = 0.001;
  return config;
}

class BreathTest : public ::testing::TestWithParam<double> {};

TEST_P(BreathTest, RecoversTheRespirationRate) {
  const double true_rate = GetParam();
  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto sim = ex::MakeSimulator(lc, CalmConfig());
  Rng rng(3);

  propagation::HumanBody sleeper;
  sleeper.position = {3.0, 4.6};  // 0.6 m off the LOS
  sleeper.breathing_amplitude_m = 0.006;
  sleeper.breathing_rate_hz = true_rate;

  // 20 s of packets at 50 pkt/s.
  const auto session = sim.CaptureSession(1000, sleeper, rng);
  const auto estimate = EstimateBreathing(session, 50.0);
  EXPECT_NEAR(estimate.rate_hz, true_rate, 0.03) << "rate " << true_rate;
  EXPECT_GT(estimate.confidence, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, BreathTest,
                         ::testing::Values(0.2, 0.25, 0.3, 0.4, 0.5));

TEST(Breath, EmptyRoomHasLowConfidence) {
  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto sim = ex::MakeSimulator(lc, CalmConfig());
  Rng rng(5);
  const auto session = sim.CaptureSession(1000, std::nullopt, rng);
  const auto estimate = EstimateBreathing(session, 50.0);
  EXPECT_LT(estimate.confidence, 3.0);
}

TEST(Breath, StillPersonHasLowerConfidenceThanBreather) {
  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto sim = ex::MakeSimulator(lc, CalmConfig());
  Rng rng(7);
  propagation::HumanBody still;
  still.position = {3.0, 4.6};
  const auto still_session = sim.CaptureSession(1000, still, rng);
  propagation::HumanBody breather = still;
  breather.breathing_amplitude_m = 0.006;
  breather.breathing_rate_hz = 0.3;
  const auto breathing_session = sim.CaptureSession(1000, breather, rng);
  EXPECT_GT(EstimateBreathing(breathing_session, 50.0).confidence,
            2.0 * EstimateBreathing(still_session, 50.0).confidence);
}

TEST(Breath, ValidatesArguments) {
  auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc, CalmConfig());
  Rng rng(9);
  const auto tiny = sim.CaptureSession(10, std::nullopt, rng);
  EXPECT_THROW(EstimateBreathing(tiny, 50.0), PreconditionError);
  const auto session = sim.CaptureSession(100, std::nullopt, rng);
  BreathConfig bad;
  bad.fft_size = 64;  // < session length
  EXPECT_THROW(EstimateBreathing(session, 50.0, bad), PreconditionError);
  BreathConfig nyquist;
  nyquist.max_rate_hz = 30.0;
  EXPECT_THROW(EstimateBreathing(session, 50.0, nyquist), PreconditionError);
}

class FingerprintTest : public ::testing::Test {
 protected:
  FingerprintTest()
      : link_([] {
          auto lc = ex::MakeClassroomLink();
          return lc;
        }()),
        sim_(ex::MakeSimulator(link_)),
        rng_(11) {}

  std::vector<wifi::CsiPacket> Window(
      const std::optional<propagation::HumanBody>& human) {
    return sim_.CaptureSession(25, human, rng_);
  }

  ex::LinkCase link_;
  nic::ChannelSimulator sim_;
  Rng rng_;
};

TEST_F(FingerprintTest, LocatesTrainedCells) {
  const std::vector<std::pair<std::string, geometry::Vec2>> cells = {
      {"north", {3.0, 6.0}}, {"center", {3.0, 4.5}}, {"south", {3.0, 2.0}}};
  FingerprintLocalizer localizer;
  for (const auto& [label, pos] : cells) {
    propagation::HumanBody body;
    body.position = pos;
    for (int i = 0; i < 6; ++i) {
      localizer.AddTrainingWindow(label, Window(body));
    }
  }
  localizer.AddTrainingWindow("empty", Window(std::nullopt));
  localizer.AddTrainingWindow("empty", Window(std::nullopt));
  localizer.AddTrainingWindow("empty", Window(std::nullopt));

  int correct = 0, total = 0;
  for (const auto& [label, pos] : cells) {
    propagation::HumanBody body;
    body.position = pos;
    for (int i = 0; i < 4; ++i) {
      ++total;
      if (localizer.Locate(Window(body)).label == label) ++correct;
    }
  }
  ++total;
  if (localizer.Locate(Window(std::nullopt)).label == "empty") ++correct;
  EXPECT_GE(correct, total - 2);  // a stray confusion is acceptable
}

TEST_F(FingerprintTest, FeatureIsScaleInvariant) {
  auto window = Window(std::nullopt);
  const auto feature = FingerprintLocalizer::Feature(window);
  for (auto& packet : window) {
    packet.csi *= Complex(3.7, 0.0);  // AGC / TX-power rescale
  }
  const auto scaled = FingerprintLocalizer::Feature(window);
  ASSERT_EQ(feature.size(), scaled.size());
  for (std::size_t i = 0; i < feature.size(); ++i) {
    EXPECT_NEAR(feature[i], scaled[i], 1e-9);
  }
  // Unit norm.
  double norm = 0.0;
  for (double v : feature) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST_F(FingerprintTest, ValidatesUsage) {
  FingerprintLocalizer localizer;
  EXPECT_THROW(localizer.Locate(Window(std::nullopt)), PreconditionError);
  EXPECT_THROW(localizer.AddTrainingWindow("", Window(std::nullopt)),
               PreconditionError);
  localizer.AddTrainingWindow("a", Window(std::nullopt));
  EXPECT_EQ(localizer.NumTrainingSamples(), 1u);
  EXPECT_EQ(localizer.Labels().size(), 1u);
}

TEST(ChannelSweep, ChannelsHaveDistinctCenters) {
  for (int ch = 1; ch <= 13; ++ch) {
    const auto band = wifi::BandPlan::Intel5300Channel(ch);
    EXPECT_NEAR(band.center_hz(), 2.412e9 + 5e6 * (ch - 1), 1.0);
  }
  EXPECT_NEAR(wifi::BandPlan::Intel5300Channel(11).center_hz(),
              kChannel11CenterHz, 1.0);
  EXPECT_THROW(wifi::BandPlan::Intel5300Channel(0), PreconditionError);
  EXPECT_THROW(wifi::BandPlan::Intel5300Channel(14), PreconditionError);
}

TEST(ChannelSweep, SuperpositionStatusVariesAcrossChannels) {
  // Sec. III-B "Configurable Link Sensitivity": phi = 2 pi f delta_d / c, so
  // hopping channels re-rolls the superposition. The per-subcarrier mu
  // pattern on channel 1 must differ measurably from channel 11.
  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto config = CalmConfig();
  const auto mu_on_channel = [&](int channel) {
    nic::ChannelSimulator sim(lc.room, lc.tx, lc.rx, ex::MakeArray(lc),
                              wifi::BandPlan::Intel5300Channel(channel),
                              config);
    Rng rng(13);
    const auto clean = core::SanitizePhase(
        sim.CaptureSession(50, std::nullopt, rng), sim.band());
    const auto rows = core::MeasureMultipathFactors(clean, sim.band());
    std::vector<double> mu(30, 0.0);
    for (const auto& row : rows) {
      for (std::size_t k = 0; k < 30; ++k) mu[k] += row[k];
    }
    for (auto& v : mu) v /= static_cast<double>(rows.size());
    return mu;
  };
  const auto mu1 = mu_on_channel(1);
  const auto mu11 = mu_on_channel(11);
  // Correlated (same geometry) but clearly not identical.
  double max_rel_diff = 0.0;
  for (std::size_t k = 0; k < 30; ++k) {
    max_rel_diff = std::max(max_rel_diff,
                            std::abs(mu1[k] - mu11[k]) / mu11[k]);
  }
  EXPECT_GT(max_rel_diff, 0.1);
}

}  // namespace
}  // namespace mulink::core
