#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/roc.h"

namespace mulink::core {
namespace {

TEST(Roc, PerfectSeparation) {
  const auto curve = ComputeRoc({10.0, 11.0, 12.0}, {1.0, 2.0, 3.0});
  EXPECT_NEAR(curve.Auc(), 1.0, 1e-12);
  const auto best = curve.BestBalancedAccuracy();
  EXPECT_NEAR(best.true_positive_rate, 1.0, 1e-12);
  EXPECT_NEAR(best.false_positive_rate, 0.0, 1e-12);
  EXPECT_NEAR(BalancedAccuracy(best), 1.0, 1e-12);
}

TEST(Roc, ChanceLevelForIdenticalDistributions) {
  Rng rng(3);
  std::vector<double> pos, neg;
  for (int i = 0; i < 3000; ++i) {
    pos.push_back(rng.Gaussian(0.0, 1.0));
    neg.push_back(rng.Gaussian(0.0, 1.0));
  }
  const auto curve = ComputeRoc(pos, neg);
  EXPECT_NEAR(curve.Auc(), 0.5, 0.03);
  EXPECT_NEAR(BalancedAccuracy(curve.BestBalancedAccuracy()), 0.5, 0.05);
}

TEST(Roc, CurveIsMonotone) {
  Rng rng(5);
  std::vector<double> pos, neg;
  for (int i = 0; i < 500; ++i) {
    pos.push_back(rng.Gaussian(1.0, 1.0));
    neg.push_back(rng.Gaussian(0.0, 1.0));
  }
  const auto curve = ComputeRoc(pos, neg);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].true_positive_rate,
              curve.points[i - 1].true_positive_rate);
    EXPECT_GE(curve.points[i].false_positive_rate,
              curve.points[i - 1].false_positive_rate);
    EXPECT_LE(curve.points[i].threshold, curve.points[i - 1].threshold);
  }
  EXPECT_NEAR(curve.points.front().false_positive_rate, 0.0, 1e-12);
  EXPECT_NEAR(curve.points.back().true_positive_rate, 1.0, 1e-12);
}

TEST(Roc, AucIncreasesWithSeparation) {
  Rng rng(7);
  std::vector<double> neg, pos_weak, pos_strong;
  for (int i = 0; i < 800; ++i) {
    neg.push_back(rng.Gaussian(0.0, 1.0));
    pos_weak.push_back(rng.Gaussian(0.5, 1.0));
    pos_strong.push_back(rng.Gaussian(2.5, 1.0));
  }
  const double auc_weak = ComputeRoc(pos_weak, neg).Auc();
  const double auc_strong = ComputeRoc(pos_strong, neg).Auc();
  EXPECT_GT(auc_strong, auc_weak);
  EXPECT_GT(auc_weak, 0.5);
}

TEST(Roc, PointAtFalsePositiveRespectsCap) {
  Rng rng(9);
  std::vector<double> pos, neg;
  for (int i = 0; i < 1000; ++i) {
    pos.push_back(rng.Gaussian(1.5, 1.0));
    neg.push_back(rng.Gaussian(0.0, 1.0));
  }
  const auto curve = ComputeRoc(pos, neg);
  const auto point = curve.PointAtFalsePositive(0.05);
  EXPECT_LE(point.false_positive_rate, 0.05);
  // It should be the best TPR under the cap: any other point under the cap
  // has TPR <= this one.
  for (const auto& p : curve.points) {
    if (p.false_positive_rate <= 0.05) {
      EXPECT_LE(p.true_positive_rate, point.true_positive_rate + 1e-12);
    }
  }
}

TEST(Roc, TruePositiveAtInterpolates) {
  // Simple hand-built case: pos = {2, 4}, neg = {1, 3}.
  const auto curve = ComputeRoc({2.0, 4.0}, {1.0, 3.0});
  // Threshold sweep: t=4 -> (tpr .5, fpr 0); t=3 -> (.5, .5); t=2 -> (1, .5);
  // t=1 -> (1, 1).
  EXPECT_NEAR(curve.TruePositiveAt(0.0), 0.5, 1e-12);
  EXPECT_NEAR(curve.TruePositiveAt(0.5), 1.0, 1e-12);
  EXPECT_NEAR(curve.TruePositiveAt(0.25), 0.5, 1e-12);
  EXPECT_NEAR(curve.TruePositiveAt(1.0), 1.0, 1e-12);
}

TEST(Roc, ThresholdSemanticsInclusive) {
  // Scores >= threshold are detections.
  const auto curve = ComputeRoc({1.0}, {0.0});
  bool found = false;
  for (const auto& p : curve.points) {
    if (p.threshold == 1.0) {
      EXPECT_NEAR(p.true_positive_rate, 1.0, 1e-12);
      EXPECT_NEAR(p.false_positive_rate, 0.0, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Roc, EmptyInputsThrow) {
  EXPECT_THROW(ComputeRoc({}, {1.0}), PreconditionError);
  EXPECT_THROW(ComputeRoc({1.0}, {}), PreconditionError);
}

TEST(Roc, BalancedAccuracyFormula) {
  RocPoint p;
  p.true_positive_rate = 0.92;
  p.false_positive_rate = 0.045;
  EXPECT_NEAR(BalancedAccuracy(p), 0.9375, 1e-12);
}

}  // namespace
}  // namespace mulink::core
