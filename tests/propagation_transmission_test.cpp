// Wall transmission / through-wall propagation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/detector.h"
#include "experiments/scenario.h"
#include "propagation/ray_tracer.h"
#include "propagation/transmission.h"

namespace mulink::propagation {
namespace {

using geometry::Room;
using geometry::Vec2;
using geometry::Wall;

Room RoomWithPartition(double loss_db) {
  Room room = Room::Rectangular(6.0, 4.0, 0.4);
  Wall partition;
  partition.segment = {{3.0, 0.0}, {3.0, 4.0}};
  partition.reflection_coefficient = 0.3;
  partition.transmission_loss_db = loss_db;
  partition.name = "partition";
  room.AddWall(partition);
  return room;
}

TEST(WallCrossings, CountsProperCrossings) {
  const Room room = RoomWithPartition(6.0);
  // Leg crossing the partition once.
  EXPECT_EQ(CountWallCrossings({1, 2}, {5, 2}, room), 1u);
  // Leg staying on one side: no crossings.
  EXPECT_EQ(CountWallCrossings({1, 1}, {2, 3}, room), 0u);
  // Leg ending exactly ON the outer wall (a bounce vertex): not a crossing.
  EXPECT_EQ(CountWallCrossings({1, 2}, {0, 2}, room), 0u);
}

TEST(WallCrossings, EndpointOnPartitionNotCounted) {
  const Room room = RoomWithPartition(6.0);
  EXPECT_EQ(CountWallCrossings({1, 2}, {3, 2}, room), 0u);
  EXPECT_EQ(CountWallCrossings({3, 2}, {5, 2}, room), 0u);
}

TEST(WallTransmission, AttenuatesCrossingPaths) {
  const Room room = RoomWithPartition(6.0);
  Path crossing;
  crossing.vertices = {{1, 2}, {5, 2}};
  crossing.length_m = 4.0;
  crossing.gain_at_center = 1.0;
  Path same_side;
  same_side.vertices = {{1, 1}, {2, 3}};
  same_side.length_m = 2.24;
  same_side.gain_at_center = 1.0;

  const auto out = ApplyWallTransmission({crossing, same_side}, room);
  // 6 dB power loss = factor 10^(-6/20) ~ 0.501 on amplitude.
  EXPECT_NEAR(out[0].gain_at_center, std::pow(10.0, -6.0 / 20.0), 1e-9);
  EXPECT_NEAR(out[1].gain_at_center, 1.0, 1e-12);
}

TEST(WallTransmission, MultiLegPathsAccumulateLoss) {
  const Room room = RoomWithPartition(6.0);
  // TX west -> bounce on the east outer wall -> RX west: crosses the
  // partition on BOTH legs.
  Path bounce;
  bounce.vertices = {{1.0, 1.0}, {6.0, 2.0}, {1.0, 3.0}};
  bounce.length_m = 10.2;
  bounce.gain_at_center = 1.0;
  const auto out = ApplyWallTransmission({bounce}, room);
  EXPECT_NEAR(out[0].gain_at_center, std::pow(10.0, -12.0 / 20.0), 1e-9);
}

TEST(WallTransmission, RectangularRoomIsUnaffected) {
  // No interior walls: in-room legs never properly cross the shell.
  const Room room = Room::Rectangular(6.0, 4.0, 0.5);
  const FriisModel friis;
  const RayTracer tracer(room, friis, {});
  const auto paths = tracer.Trace({1, 2}, {5, 2});
  const auto out = ApplyWallTransmission(paths, room);
  ASSERT_EQ(out.size(), paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_NEAR(out[i].gain_at_center, paths[i].gain_at_center, 1e-12);
  }
}

TEST(ThroughWall, ScenarioGeometryIsSane) {
  const auto lc = experiments::MakeThroughWallLink();
  // TX west of the partition, RX east.
  EXPECT_LT(lc.tx.x, 3.0);
  EXPECT_GT(lc.rx.x, 3.0);
  // Partition present (6 walls: 4 shell + 2 partition segments).
  EXPECT_EQ(lc.room.walls().size(), 6u);
}

TEST(ThroughWall, PartitionAttenuatesTheLink) {
  // The same link with and without the partition: through-wall total power
  // is several dB lower.
  const auto lc = experiments::MakeThroughWallLink();
  Room open_room = Room::Rectangular(7.0, 6.0, 0.5);
  for (const auto& s : lc.room.scatterers()) open_room.AddScatterer(s);

  const FriisModel friis;
  TraceOptions options;
  const RayTracer tracer_wall(lc.room, friis, options);
  const RayTracer tracer_open(open_room, friis, options);

  const auto with_wall = ApplyWallTransmission(
      tracer_wall.Trace(lc.tx, lc.rx), lc.room);
  const auto without = ApplyWallTransmission(
      tracer_open.Trace(lc.tx, lc.rx), open_room);
  const double p_wall = TotalPathPower(with_wall);
  const double p_open = TotalPathPower(without);
  const double loss_db = 10.0 * std::log10(p_open / p_wall);
  EXPECT_GT(loss_db, 3.0);
  EXPECT_LT(loss_db, 15.0);
}

TEST(ThroughWall, DetectionStillWorksThroughDrywall) {
  // End-to-end: calibrate on the empty two-room space, then detect a person
  // in the receiver's room — and (harder) one in the AP's room.
  const auto lc = experiments::MakeThroughWallLink();
  auto sim = experiments::MakeSimulator(lc);
  Rng rng(71);
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  auto detector = core::Detector::Calibrate(
      sim.CaptureSession(300, std::nullopt, rng), sim.band(), sim.array(),
      config);
  std::vector<std::vector<wifi::CsiPacket>> empties;
  for (int i = 0; i < 10; ++i) {
    empties.push_back(sim.CaptureSession(25, std::nullopt, rng));
  }
  detector.CalibrateThreshold(empties);

  propagation::HumanBody east_room_person;
  east_room_person.position = {4.5, 3.0};  // on the LOS, east of the wall
  int hits = 0;
  for (int i = 0; i < 5; ++i) {
    if (detector.Detect(sim.CaptureSession(25, east_room_person, rng))) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 4);
}

}  // namespace
}  // namespace mulink::propagation
