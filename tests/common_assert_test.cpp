// Contract-macro coverage (DESIGN.md §12): the always-on macros must fire —
// as typed exceptions for in-process recovery and as a hard nonzero-exit
// death when nothing catches them — and the debug-only MULINK_DASSERT must
// compile out of NDEBUG builds without evaluating its expression.
#include "common/assert.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mulink {
namespace {

TEST(ContractMacros, AssertThrowsInvariantErrorWithContext) {
  try {
    MULINK_ASSERT(1 + 1 == 3);
    FAIL() << "MULINK_ASSERT(false) did not throw";
  } catch (const InvariantError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("assertion"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("common_assert_test.cpp"), std::string::npos) << what;
  }
}

TEST(ContractMacros, AssertMsgCarriesMessage) {
  EXPECT_THROW(MULINK_ASSERT_MSG(false, "ledger corrupted"), InvariantError);
  try {
    MULINK_ASSERT_MSG(false, "ledger corrupted");
  } catch (const InvariantError& err) {
    EXPECT_NE(std::string(err.what()).find("ledger corrupted"),
              std::string::npos);
  }
}

TEST(ContractMacros, RequireThrowsPreconditionError) {
  EXPECT_THROW(MULINK_REQUIRE(false, "caller bug"), PreconditionError);
  // PreconditionError and InvariantError stay distinct types: callers
  // catch the former at API boundaries, never the latter.
  EXPECT_NO_THROW({
    try {
      MULINK_REQUIRE(false, "caller bug");
    } catch (const PreconditionError&) {
    }
  });
}

TEST(ContractMacros, PassingChecksAreSilent) {
  EXPECT_NO_THROW(MULINK_ASSERT(true));
  EXPECT_NO_THROW(MULINK_ASSERT_MSG(true, "unused"));
  EXPECT_NO_THROW(MULINK_REQUIRE(true, "unused"));
}

// The exit-code half of the contract: a failed check nobody catches must
// kill the process with a nonzero status (std::terminate -> SIGABRT), with
// the contract kind and expression visible on stderr. Long-running monitors
// rely on this — a supervisor restarts a crashed process, but nothing can
// restart one that silently kept going on a corrupted ledger.
//
// The noexcept boundary is load-bearing: GTest's death-test child catches
// exceptions that escape the statement directly and reports "threw" instead
// of dying, so the throw must hit std::terminate before unwinding reaches
// the harness — exactly what happens in production when a contract failure
// crosses a worker-thread or callback boundary. terminate's handler prints
// the exception's what() to stderr, which the regexes match.
void AssertAcrossNoexceptBoundary() noexcept { MULINK_ASSERT(2 < 1); }
void RequireAcrossNoexceptBoundary() noexcept {
  MULINK_REQUIRE(false, "bad argument");
}

TEST(ContractDeathTest, UncaughtAssertDiesNonzero) {
  EXPECT_DEATH(AssertAcrossNoexceptBoundary(), "assertion.*2 < 1");
}

TEST(ContractDeathTest, UncaughtRequireDiesNonzero) {
  EXPECT_DEATH(RequireAcrossNoexceptBoundary(), "precondition.*bad argument");
}

#if defined(NDEBUG)

TEST(ContractMacros, DassertCompilesOutInRelease) {
  int evaluations = 0;
  // The predicate must never run: sizeof keeps it unevaluated, so a Release
  // build pays nothing — no branch, no side effect.
  MULINK_DASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
  // And a failing predicate must not fire.
  EXPECT_NO_THROW(MULINK_DASSERT(false));
}

#else

TEST(ContractMacros, DassertFiresInDebug) {
  int evaluations = 0;
  MULINK_DASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(MULINK_DASSERT(false), InvariantError);
}

void DassertAcrossNoexceptBoundary() noexcept { MULINK_DASSERT(0 == 1); }

TEST(ContractDeathTest, UncaughtDassertDiesNonzeroInDebug) {
  EXPECT_DEATH(DassertAcrossNoexceptBoundary(), "assertion");
}

#endif  // NDEBUG

}  // namespace
}  // namespace mulink
