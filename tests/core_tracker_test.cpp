#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/tracker.h"
#include "dsp/stats.h"

namespace mulink::core {
namespace {

TEST(Tracker, FirstMeasurementInitializes) {
  PositionTracker tracker;
  EXPECT_FALSE(tracker.initialized());
  const auto out = tracker.Update({2.0, 3.0}, 0.5);
  EXPECT_TRUE(tracker.initialized());
  EXPECT_NEAR(out.x, 2.0, 1e-12);
  EXPECT_NEAR(out.y, 3.0, 1e-12);
  EXPECT_NEAR(tracker.velocity().Norm(), 0.0, 1e-12);
}

TEST(Tracker, SmoothsNoisyLinearMotion) {
  // Ground truth: walk from (1,1) at (0.8, 0.4) m/s; measurements carry
  // 0.5 m noise. The filtered track must beat the raw fixes.
  Rng rng(3);
  PositionTracker tracker;
  const geometry::Vec2 start{1.0, 1.0}, speed{0.8, 0.4};
  const double dt = 0.5;
  std::vector<double> raw_errors, filtered_errors;
  for (int i = 0; i < 60; ++i) {
    const geometry::Vec2 truth = start + speed * (i * dt);
    const geometry::Vec2 fix{truth.x + rng.Gaussian(0.0, 0.5),
                             truth.y + rng.Gaussian(0.0, 0.5)};
    const auto filtered = tracker.Update(fix, dt);
    if (i >= 10) {  // after convergence
      raw_errors.push_back(geometry::Distance(fix, truth));
      filtered_errors.push_back(geometry::Distance(filtered, truth));
    }
  }
  EXPECT_LT(dsp::Mean(filtered_errors), 0.6 * dsp::Mean(raw_errors));
}

TEST(Tracker, EstimatesVelocity) {
  Rng rng(5);
  PositionTracker tracker;
  const geometry::Vec2 speed{1.2, -0.5};
  for (int i = 0; i < 80; ++i) {
    const geometry::Vec2 truth{speed.x * i * 0.5, 5.0 + speed.y * i * 0.5};
    tracker.Update({truth.x + rng.Gaussian(0.0, 0.3),
                    truth.y + rng.Gaussian(0.0, 0.3)},
                   0.5);
  }
  EXPECT_NEAR(tracker.velocity().x, speed.x, 0.3);
  EXPECT_NEAR(tracker.velocity().y, speed.y, 0.3);
}

TEST(Tracker, PredictCoastsAlongTheTrack) {
  Rng rng(7);
  PositionTracker tracker;
  for (int i = 0; i < 50; ++i) {
    tracker.Update({0.1 * i + rng.Gaussian(0.0, 0.05), 2.0}, 0.5);
  }
  // 0.1 m per 0.5 s = 0.2 m/s along x; predicting 2 s ahead adds ~0.4 m.
  const auto now = tracker.position();
  const auto ahead = tracker.Predict(2.0);
  EXPECT_NEAR(ahead.x - now.x, 0.4, 0.12);
  EXPECT_NEAR(ahead.y - now.y, 0.0, 0.1);
}

TEST(Tracker, ResetForgetsTheTrack) {
  PositionTracker tracker;
  tracker.Update({1.0, 1.0}, 0.5);
  tracker.Reset();
  EXPECT_FALSE(tracker.initialized());
  EXPECT_THROW(tracker.Predict(1.0), PreconditionError);
}

TEST(Tracker, ValidatesArguments) {
  TrackerConfig bad;
  bad.measurement_sigma_m = 0.0;
  EXPECT_THROW(PositionTracker{bad}, PreconditionError);
  PositionTracker tracker;
  tracker.Update({0, 0}, 0.5);
  EXPECT_THROW(tracker.Update({1, 1}, -0.1), PreconditionError);
}

TEST(Tracker, StationaryTargetConverges) {
  Rng rng(9);
  PositionTracker tracker;
  geometry::Vec2 last;
  for (int i = 0; i < 100; ++i) {
    last = tracker.Update({4.0 + rng.Gaussian(0.0, 0.4),
                           6.0 + rng.Gaussian(0.0, 0.4)},
                          0.5);
  }
  EXPECT_NEAR(last.x, 4.0, 0.25);
  EXPECT_NEAR(last.y, 6.0, 0.25);
  EXPECT_LT(tracker.velocity().Norm(), 0.2);
}

}  // namespace
}  // namespace mulink::core
