#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/fade_level.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/scenario.h"
#include "propagation/path.h"
#include "wifi/cfr.h"

namespace mulink::core {
namespace {

wifi::CsiPacket PacketFromCfr(const std::vector<Complex>& cfr) {
  wifi::CsiPacket packet;
  packet.csi = linalg::CMatrix(1, cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) packet.csi.At(0, k) = cfr[k];
  return packet;
}

propagation::Path LosPath(double length, double gain) {
  propagation::Path p;
  p.vertices = {{0, 0}, {length, 0}};
  p.length_m = length;
  p.gain_at_center = gain;
  return p;
}

TEST(FadeLevel, PureFreeSpaceLinkIsNearZero) {
  // A channel that IS the model's prediction has fade level ~0 dB.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const propagation::FriisModel friis;
  const double d = 4.0;
  propagation::Path los = LosPath(d, friis.AmplitudeGain(d, band.center_hz()));
  const auto packet = PacketFromCfr(wifi::SynthesizeCfrSingle({los}, band));
  EXPECT_NEAR(MeasureFadeLevel(packet, band, d), 0.0, 0.1);
}

TEST(FadeLevel, DestructiveChannelIsDeepFade) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const propagation::FriisModel friis;
  const double d = 4.0;
  const double a = friis.AmplitudeGain(d, band.center_hz());
  propagation::Path los = LosPath(d, a);
  // Near-perfect destructive second path: half a wavelength of excess.
  propagation::Path refl = LosPath(d + kWavelength / 2.0, 0.8 * a);
  refl.kind = propagation::PathKind::kWallReflection;
  const auto packet =
      PacketFromCfr(wifi::SynthesizeCfrSingle({los, refl}, band));
  EXPECT_LT(MeasureFadeLevel(packet, band, d), -5.0);
}

TEST(FadeLevel, ConstructiveChannelIsAntiFade) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const propagation::FriisModel friis;
  const double d = 4.0;
  const double a = friis.AmplitudeGain(d, band.center_hz());
  propagation::Path los = LosPath(d, a);
  propagation::Path refl = LosPath(d + kWavelength, 0.8 * a);  // in phase
  refl.kind = propagation::PathKind::kWallReflection;
  const auto packet =
      PacketFromCfr(wifi::SynthesizeCfrSingle({los, refl}, band));
  EXPECT_GT(MeasureFadeLevel(packet, band, d), 3.0);
}

TEST(FadeLevel, PerSubcarrierMatchesAggregateOnFlatChannel) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const propagation::FriisModel friis;
  const double d = 3.0;
  propagation::Path los = LosPath(d, friis.AmplitudeGain(d, band.center_hz()));
  const auto packet = PacketFromCfr(wifi::SynthesizeCfrSingle({los}, band));
  const auto per_sc = MeasureFadeLevelPerSubcarrier(packet, band, d);
  ASSERT_EQ(per_sc.size(), 30u);
  const double aggregate = MeasureFadeLevel(packet, band, d);
  EXPECT_NEAR(dsp::Mean(per_sc), aggregate, 0.05);
}

TEST(FadeLevel, MostFadedSubcarrierIsTheDeepestNull) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const propagation::FriisModel friis;
  const double d = 4.0;
  const double a = friis.AmplitudeGain(d, band.center_hz());
  propagation::Path los = LosPath(d, a);
  propagation::Path refl = LosPath(d + 17.0, 0.7 * a);  // nulls inside band
  refl.kind = propagation::PathKind::kWallReflection;
  const auto cfr = wifi::SynthesizeCfrSingle({los, refl}, band);
  const auto packet = PacketFromCfr(cfr);
  const std::size_t chosen = MostFadedSubcarrier(packet, band, d);
  // It must be the global minimum of |H_k|.
  std::size_t true_min = 0;
  for (std::size_t k = 1; k < cfr.size(); ++k) {
    if (std::abs(cfr[k]) < std::abs(cfr[true_min])) true_min = k;
  }
  EXPECT_EQ(chosen, true_min);
}

TEST(FadeLevel, ModelMismatchBiasesFadeLevelButNotMu) {
  // The paper's criticism (1): fade level leans on a propagation formula.
  // Feed both metrics the same channel but give the fade-level model a wrong
  // path-loss exponent: fade level shifts by several dB, mu is untouched.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const propagation::FriisModel truth;  // n = 2
  const double d = 4.0;
  propagation::Path los = LosPath(d, truth.AmplitudeGain(d, band.center_hz()));
  const auto cfr = wifi::SynthesizeCfrSingle({los}, band);
  const auto packet = PacketFromCfr(cfr);

  FadeLevelModel right;
  FadeLevelModel wrong;
  wrong.friis.attenuation_factor = 3.0;  // believes a lossier world
  const double fl_right = MeasureFadeLevel(packet, band, d, right);
  const double fl_wrong = MeasureFadeLevel(packet, band, d, wrong);
  EXPECT_GT(std::abs(fl_wrong - fl_right), 5.0);

  // mu has no model input at all: identical by construction.
  const auto mu = MeasureMultipathFactors(cfr, band);
  EXPECT_FALSE(mu.empty());
}

TEST(FadeLevel, DeepFadedLinksAreMoreMotionSensitive) {
  // The fade-level literature's core claim, reproduced end-to-end: perturb
  // deep-fade vs anti-fade two-path channels with the same small extra path
  // and compare the power change.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const propagation::FriisModel friis;
  const double d = 4.0;
  const double a = friis.AmplitudeGain(d, band.center_hz());

  const auto response = [&](double excess) {
    propagation::Path los = LosPath(d, a);
    propagation::Path refl = LosPath(d + excess, 0.8 * a);
    const auto before = wifi::SynthesizeCfrSingle({los, refl}, band);
    propagation::Path human = LosPath(d + 0.37, 0.05 * a);
    human.kind = propagation::PathKind::kHumanReflection;
    const auto after = wifi::SynthesizeCfrSingle({los, refl, human}, band);
    double change = 0.0;
    for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
      change += std::abs(10.0 * std::log10(std::norm(after[k]) /
                                           std::norm(before[k])));
    }
    return change / static_cast<double>(band.NumSubcarriers());
  };
  const double deep_fade_response = response(kWavelength / 2.0);
  const double anti_fade_response = response(kWavelength);
  EXPECT_GT(deep_fade_response, 2.0 * anti_fade_response);
}

TEST(FadeLevel, ArgumentValidation) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  wifi::CsiPacket packet;
  packet.csi = linalg::CMatrix(1, 30);
  EXPECT_THROW(MeasureFadeLevel(packet, band, 0.0), PreconditionError);
  wifi::CsiPacket wrong;
  wrong.csi = linalg::CMatrix(1, 10);
  EXPECT_THROW(MeasureFadeLevel(wrong, band, 1.0), PreconditionError);
}

}  // namespace
}  // namespace mulink::core
