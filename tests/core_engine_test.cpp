// Equivalence suite for the workspace-based sensing engine: the scratch
// Score path, ProcessBatch, and the streaming detector must all produce
// BIT-IDENTICAL results to the legacy allocating APIs — the refactor is a
// pure hot-path restructuring, not a numerical change.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <optional>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/detector.h"
#include "core/engine.h"
#include "core/music.h"
#include "core/streaming.h"
#include "experiments/scenario.h"
#include "obs/metrics.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

struct EngineFixture {
  ex::LinkCase link = ex::MakeClassroomLink();
  nic::ChannelSimulator sim = ex::MakeSimulator(link);
  Rng rng{321};
  std::vector<wifi::CsiPacket> calibration =
      sim.CaptureSession(300, std::nullopt, rng);
  std::vector<wifi::CsiPacket> empty_session =
      sim.CaptureSession(200, std::nullopt, rng);
  std::vector<wifi::CsiPacket> occupied_session;

  EngineFixture() {
    propagation::HumanBody body;
    body.position = {3.0, 4.2};
    occupied_session = sim.CaptureSession(200, body, rng);
  }

  core::Detector Calibrated(core::DetectionScheme scheme) const {
    core::DetectorConfig config;
    config.scheme = scheme;
    return core::Detector::Calibrate(calibration, sim.band(), sim.array(),
                                     config);
  }
};

EngineFixture& Fixture() {
  static EngineFixture f;
  return f;
}

const core::DetectionScheme kAllSchemes[] = {
    core::DetectionScheme::kBaseline,
    core::DetectionScheme::kSubcarrierWeighting,
    core::DetectionScheme::kSubcarrierAndPathWeighting,
    core::DetectionScheme::kVarianceMobile,
};

// The scratch Score must be bit-identical to the legacy allocating Score
// for every scheme, on empty and occupied windows alike.
TEST(EngineEquivalence, ScratchScoreBitIdenticalAllSchemes) {
  auto& f = Fixture();
  for (auto scheme : kAllSchemes) {
    const auto detector = f.Calibrated(scheme);
    core::DetectorScratch scratch;
    for (const auto* session : {&f.empty_session, &f.occupied_session}) {
      const std::span<const wifi::CsiPacket> span(*session);
      for (std::size_t start = 0; start + 25 <= session->size(); start += 25) {
        const std::vector<wifi::CsiPacket> window(
            session->begin() + static_cast<std::ptrdiff_t>(start),
            session->begin() + static_cast<std::ptrdiff_t>(start + 25));
        const double legacy = detector.Score(window);
        const double scratch_score =
            detector.Score(span.subspan(start, 25), scratch);
        EXPECT_EQ(legacy, scratch_score)
            << core::ToString(scheme) << " window at " << start;
      }
    }
  }
}

// Reusing one scratch across windows of different content must not leak
// state between calls: A, then B, then A again must reproduce A's score
// exactly.
TEST(EngineEquivalence, ScratchReuseIsStateless) {
  auto& f = Fixture();
  for (auto scheme : kAllSchemes) {
    const auto detector = f.Calibrated(scheme);
    core::DetectorScratch scratch;
    const std::span<const wifi::CsiPacket> empty(f.empty_session);
    const std::span<const wifi::CsiPacket> occupied(f.occupied_session);
    const double a1 = detector.Score(empty.subspan(0, 25), scratch);
    const double b = detector.Score(occupied.subspan(50, 25), scratch);
    const double a2 = detector.Score(empty.subspan(0, 25), scratch);
    EXPECT_EQ(a1, a2) << core::ToString(scheme);
    EXPECT_NE(a1, b) << core::ToString(scheme)
                     << ": occupied window scored like an empty one";
  }
}

// ScoreSession (now span-based internally) must agree with scoring each
// window through the legacy API.
TEST(EngineEquivalence, ScoreSessionMatchesPerWindowScores) {
  auto& f = Fixture();
  const auto detector =
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
  const auto scores = detector.ScoreSession(f.occupied_session);
  ASSERT_EQ(scores.size(), f.occupied_session.size() / 25);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const std::vector<wifi::CsiPacket> window(
        f.occupied_session.begin() + static_cast<std::ptrdiff_t>(i * 25),
        f.occupied_session.begin() + static_cast<std::ptrdiff_t>((i + 1) * 25));
    EXPECT_EQ(scores[i], detector.Score(window));
  }
}

std::vector<double> EmptyScores(const EngineFixture& f,
                                const core::Detector& detector) {
  std::vector<double> scores;
  for (std::size_t start = 0; start + 25 <= f.empty_session.size();
       start += 25) {
    const std::vector<wifi::CsiPacket> window(
        f.empty_session.begin() + static_cast<std::ptrdiff_t>(start),
        f.empty_session.begin() + static_cast<std::ptrdiff_t>(start + 25));
    scores.push_back(detector.Score(window));
  }
  return scores;
}

// ProcessBatch must reproduce StreamingDetector::Push decision-for-decision
// regardless of how the packet stream is chopped into batches.
TEST(EngineEquivalence, ProcessBatchMatchesStreamingPush) {
  auto& f = Fixture();
  for (bool use_hmm : {false, true}) {
    auto detector =
        f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
    const auto empty_scores = EmptyScores(f, detector);
    detector.SetThreshold(1.0);

    core::StreamingConfig config;
    config.window_packets = 25;
    config.hop_packets = 10;
    config.use_hmm = use_hmm;

    core::StreamingDetector streaming(detector, empty_scores, config);
    core::SensingEngine engine;
    engine.AddLink(std::move(detector), empty_scores, config);

    std::vector<core::PresenceDecision> push_decisions;
    for (const auto& packet : f.occupied_session) {
      if (auto d = streaming.Push(packet)) push_decisions.push_back(*d);
    }

    // Chop the same stream into uneven batches.
    std::vector<core::PresenceDecision> batch_decisions;
    const std::span<const wifi::CsiPacket> session(f.occupied_session);
    const std::size_t cuts[] = {7, 40, 1, 25, 60, 3};
    std::size_t pos = 0, cut = 0;
    while (pos < session.size()) {
      const std::size_t n = std::min(cuts[cut % 6], session.size() - pos);
      const auto& result = engine.ProcessBatch(session.subspan(pos, n));
      batch_decisions.insert(batch_decisions.end(), result.decisions.begin(),
                             result.decisions.end());
      pos += n;
      ++cut;
    }

    ASSERT_EQ(push_decisions.size(), batch_decisions.size())
        << "use_hmm=" << use_hmm;
    for (std::size_t i = 0; i < push_decisions.size(); ++i) {
      EXPECT_EQ(push_decisions[i].timestamp_s, batch_decisions[i].timestamp_s);
      EXPECT_EQ(push_decisions[i].score, batch_decisions[i].score);
      EXPECT_EQ(push_decisions[i].posterior, batch_decisions[i].posterior);
      EXPECT_EQ(push_decisions[i].occupied, batch_decisions[i].occupied);
    }
    EXPECT_EQ(streaming.occupied(), engine.occupied(0));
    EXPECT_EQ(streaming.posterior(), engine.posterior(0));
  }
}

// Repeated ProcessBatch on the same link must keep producing identical
// decisions after Reset — the reused result/ring/scratch buffers must not
// accumulate state.
TEST(EngineEquivalence, RepeatedBatchesAfterResetAreIdentical) {
  auto& f = Fixture();
  auto detector =
      f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  const auto empty_scores = EmptyScores(f, detector);
  detector.SetThreshold(1.0);

  core::SensingEngine engine;
  engine.AddLink(std::move(detector), empty_scores, {});
  const std::span<const wifi::CsiPacket> session(f.occupied_session);

  const auto& first = engine.ProcessBatch(session);
  std::vector<core::PresenceDecision> reference(first.decisions);
  ASSERT_FALSE(reference.empty());

  for (int round = 0; round < 3; ++round) {
    engine.Reset(0);
    const auto& again = engine.ProcessBatch(session);
    ASSERT_EQ(again.decisions.size(), reference.size()) << "round " << round;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(again.decisions[i].score, reference[i].score);
      EXPECT_EQ(again.decisions[i].posterior, reference[i].posterior);
      EXPECT_EQ(again.decisions[i].occupied, reference[i].occupied);
    }
  }
}

// The warm profile-covariance cache must be invalidated when the detector's
// profile changes: a scratch warmed before UpdateProfile must score exactly
// like a fresh one afterwards.
TEST(EngineEquivalence, ProfileCacheInvalidatedByUpdateProfile) {
  auto& f = Fixture();
  auto detector =
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
  core::DetectorScratch warm;
  const std::span<const wifi::CsiPacket> occupied(f.occupied_session);
  (void)detector.Score(occupied.subspan(0, 25), warm);  // warms the cache

  const std::vector<wifi::CsiPacket> update_window(
      f.empty_session.begin(), f.empty_session.begin() + 25);
  detector.UpdateProfile(update_window, 0.2);

  const double with_warm = detector.Score(occupied.subspan(25, 25), warm);
  core::DetectorScratch fresh;
  const double with_fresh = detector.Score(occupied.subspan(25, 25), fresh);
  EXPECT_EQ(with_warm, with_fresh);
}

// One scratch shared across two different detector instances must not reuse
// the first detector's cached profile stack for the second.
TEST(EngineEquivalence, ScratchSharedAcrossDetectorsIsSafe) {
  auto& f = Fixture();
  const auto d0 =
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  config.retained_calibration_packets = 64;  // different profile content
  const auto d1 = core::Detector::Calibrate(f.calibration, f.sim.band(),
                                            f.sim.array(), config);

  core::DetectorScratch shared;
  const std::span<const wifi::CsiPacket> occupied(f.occupied_session);
  (void)d0.Score(occupied.subspan(0, 25), shared);  // warm with d0's profile
  const double shared_score = d1.Score(occupied.subspan(0, 25), shared);
  core::DetectorScratch fresh;
  EXPECT_EQ(shared_score, d1.Score(occupied.subspan(0, 25), fresh));
}

// The cached per-subcarrier stack recombination computes the same weighted
// sample covariance as the direct per-packet scan, up to summation order.
TEST(SubcarrierCovarianceStack, MatchesDirectSampleCovariance) {
  auto& f = Fixture();
  const std::vector<wifi::CsiPacket> packets(
      f.calibration.begin(), f.calibration.begin() + 64);
  std::vector<double> weights(packets[0].NumSubcarriers());
  for (std::size_t k = 0; k < weights.size(); ++k) {
    weights[k] = (k % 7 == 0) ? 0.0 : 1.0 / static_cast<double>(k + 1);
  }

  const auto direct = core::SampleCovariance(packets, weights);
  core::SubcarrierCovarianceStack stack;
  core::BuildSubcarrierCovarianceStack(
      std::span<const wifi::CsiPacket>(packets), stack);
  linalg::CMatrix combined;
  core::CombineSubcarrierCovariances(stack, weights, combined);

  ASSERT_EQ(combined.rows(), direct.rows());
  ASSERT_EQ(combined.cols(), direct.cols());
  for (std::size_t i = 0; i < direct.rows(); ++i) {
    for (std::size_t j = 0; j < direct.cols(); ++j) {
      EXPECT_NEAR(std::abs(combined.At(i, j) - direct.At(i, j)), 0.0,
                  1e-12 * std::abs(direct.At(i, j)) + 1e-15)
          << "entry (" << i << "," << j << ")";
    }
  }
}

// Multi-link bookkeeping: links are independent and indexed stably.
TEST(SensingEngine, LinksAreIndependent) {
  auto& f = Fixture();
  auto d0 = f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  auto d1 = f.Calibrated(core::DetectionScheme::kBaseline);
  d0.SetThreshold(1.0);
  d1.SetThreshold(1.0);

  core::StreamingConfig config;
  config.use_hmm = false;
  core::SensingEngine engine;
  const auto i0 = engine.AddLink(std::move(d0), {}, config);
  const auto i1 = engine.AddLink(std::move(d1), {}, config);
  ASSERT_EQ(engine.NumLinks(), 2u);

  const std::span<const wifi::CsiPacket> session(f.occupied_session);
  const auto& r0 = engine.ProcessBatch(i0, session.subspan(0, 50));
  ASSERT_EQ(r0.decisions.size(), 2u);
  // Link 1 saw nothing yet.
  EXPECT_EQ(engine.posterior(i1), 0.0);
  EXPECT_FALSE(engine.occupied(i1));

  const auto& r1 = engine.ProcessBatch(i1, session.subspan(0, 50));
  ASSERT_EQ(r1.decisions.size(), 2u);
  // Different schemes -> different scores on the same packets.
  EXPECT_NE(r0.decisions[0].score, r1.decisions[0].score);
}

// Reset mid-stream must restore a link to its just-constructed state:
// decisions on the tail after Reset are bit-identical to a fresh engine fed
// the same tail, for both a mid-window cut and a mid-hop cut.
TEST(SensingEngine, ResetMidStreamMatchesFreshEngine) {
  auto& f = Fixture();
  for (std::size_t cut : {13u, 30u}) {
    for (bool guard : {false, true}) {
      core::StreamingConfig config;
      config.use_hmm = false;
      config.guard_enabled = guard;

      auto detector =
          f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
      detector.SetThreshold(1.0);
      const std::span<const wifi::CsiPacket> session(f.occupied_session);

      core::SensingEngine resumed;
      resumed.AddLink(detector, {}, config);
      resumed.ProcessBatch(0, session.subspan(0, cut));
      resumed.Reset(0);
      const auto& after_reset =
          resumed.ProcessBatch(0, session.subspan(cut));

      core::SensingEngine fresh;
      fresh.AddLink(std::move(detector), {}, config);
      const auto& from_fresh = fresh.ProcessBatch(0, session.subspan(cut));

      ASSERT_EQ(after_reset.decisions.size(), from_fresh.decisions.size())
          << "cut=" << cut << " guard=" << guard;
      for (std::size_t i = 0; i < from_fresh.decisions.size(); ++i) {
        EXPECT_EQ(after_reset.decisions[i].timestamp_s,
                  from_fresh.decisions[i].timestamp_s);
        EXPECT_EQ(after_reset.decisions[i].score,
                  from_fresh.decisions[i].score);
        EXPECT_EQ(after_reset.decisions[i].posterior,
                  from_fresh.decisions[i].posterior);
        EXPECT_EQ(after_reset.decisions[i].occupied,
                  from_fresh.decisions[i].occupied);
      }
    }
  }
}

// ResetAll is Reset over every link: both links of a two-link engine must
// match their fresh counterparts on the tail.
TEST(SensingEngine, ResetAllMatchesFreshEngines) {
  auto& f = Fixture();
  core::StreamingConfig config;
  config.use_hmm = false;
  config.guard_enabled = true;

  auto d0 = f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  auto d1 = f.Calibrated(core::DetectionScheme::kBaseline);
  d0.SetThreshold(1.0);
  d1.SetThreshold(1.0);
  const std::span<const wifi::CsiPacket> session(f.occupied_session);

  core::SensingEngine resumed;
  resumed.AddLink(d0, {}, config);
  resumed.AddLink(d1, {}, config);
  resumed.ProcessBatch(0, session.subspan(0, 40));
  resumed.ProcessBatch(1, session.subspan(0, 17));
  resumed.ResetAll();

  core::SensingEngine fresh;
  fresh.AddLink(std::move(d0), {}, config);
  fresh.AddLink(std::move(d1), {}, config);

  for (std::size_t link = 0; link < 2; ++link) {
    const auto& a = resumed.ProcessBatch(link, session.subspan(40));
    std::vector<core::PresenceDecision> reference(a.decisions);
    const auto& b = fresh.ProcessBatch(link, session.subspan(40));
    ASSERT_EQ(reference.size(), b.decisions.size()) << "link " << link;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].score, b.decisions[i].score);
      EXPECT_EQ(reference[i].occupied, b.decisions[i].occupied);
    }
  }
}

// The single-link convenience overload refuses multi-link engines.
TEST(SensingEngine, SingleLinkOverloadRequiresOneLink) {
  auto& f = Fixture();
  core::SensingEngine engine;
  const std::span<const wifi::CsiPacket> session(f.occupied_session);
  EXPECT_THROW(engine.ProcessBatch(session.subspan(0, 25)),
               PreconditionError);
}

// Recording metrics must never change decisions: the same stream scored with
// metrics on and off produces bit-identical scores, posteriors and verdicts.
TEST(SensingEngine, MetricsOnOffDecisionsBitIdentical) {
  auto& f = Fixture();
  for (bool guard : {false, true}) {
    core::StreamingConfig config;
    config.guard_enabled = guard;

    auto detector =
        f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
    const auto empty_scores = EmptyScores(f, detector);
    detector.SetThreshold(1.0);
    const std::span<const wifi::CsiPacket> session(f.occupied_session);

    core::SensingEngine with_metrics;
    with_metrics.AddLink(detector, empty_scores, config);
    with_metrics.SetMetricsEnabled(true);
    const auto& on = with_metrics.ProcessBatch(0, session);
    std::vector<core::PresenceDecision> reference(on.decisions);

    core::SensingEngine without_metrics;
    without_metrics.AddLink(std::move(detector), empty_scores, config);
    without_metrics.SetMetricsEnabled(false);
    const auto& off = without_metrics.ProcessBatch(0, session);

    ASSERT_EQ(reference.size(), off.decisions.size()) << "guard=" << guard;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].score, off.decisions[i].score);
      EXPECT_EQ(reference[i].posterior, off.decisions[i].posterior);
      EXPECT_EQ(reference[i].occupied, off.decisions[i].occupied);
    }
    // The disabled engine must have recorded nothing at all.
    EXPECT_TRUE(without_metrics.Metrics(0).Empty());
  }
}

// The per-link registry mirrors what the engine actually did: exact packet
// and decision counts, windows scored, and the profile cache hit pattern
// (first window rebuilds, later windows hit the warm stack).
TEST(SensingEngine, MetricsCountersMatchBatchActivity) {
  auto& f = Fixture();
  auto detector =
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
  const auto empty_scores = EmptyScores(f, detector);
  detector.SetThreshold(1.0);

  core::StreamingConfig config;
  config.window_packets = 25;
  config.hop_packets = 25;
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), empty_scores, config);

  const std::span<const wifi::CsiPacket> session(f.occupied_session);
  const auto& result = engine.ProcessBatch(0, session);
  const auto& m = engine.Metrics(0);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(m.Get(obs::Counter::kPacketsIngested), session.size());
    EXPECT_EQ(m.Get(obs::Counter::kBatches), 1u);
    EXPECT_EQ(m.Get(obs::Counter::kDecisions), result.decisions.size());
    EXPECT_EQ(m.Get(obs::Counter::kWindowsScored), result.decisions.size());
    EXPECT_EQ(m.Get(obs::Counter::kHmmUpdates), result.decisions.size());
    ASSERT_GT(result.decisions.size(), 1u);
    EXPECT_EQ(m.Get(obs::Counter::kProfileStackRebuilds), 1u);
    EXPECT_EQ(m.Get(obs::Counter::kProfileStackHits),
              result.decisions.size() - 1);
    EXPECT_EQ(m.StageLatency(obs::Stage::kScore).count,
              result.decisions.size());
    EXPECT_TRUE(m.GaugeSet(obs::Gauge::kLastScore));
    EXPECT_DOUBLE_EQ(m.Get(obs::Gauge::kLastScore),
                     result.decisions.back().score);
    // AggregateMetrics over one link is that link's registry.
    const obs::Registry totals = engine.AggregateMetrics();
    EXPECT_EQ(totals.counters(), m.counters());
    // Reset clears the shard with the rest of the link state.
    engine.Reset(0);
    EXPECT_TRUE(engine.Metrics(0).Empty());
  } else {
    EXPECT_TRUE(m.Empty());
  }
}

// Packet-at-a-time ingest (the serving-tier entry point) must be
// decision-for-decision identical to batch ingest of the same stream.
TEST(EngineEquivalence, ProcessPacketMatchesProcessBatch) {
  auto& f = Fixture();
  for (const auto scheme : kAllSchemes) {
    auto detector = f.Calibrated(scheme);
    const auto empty_scores = EmptyScores(f, detector);
    detector.SetThreshold(1.0);

    core::StreamingConfig config;
    config.window_packets = 25;
    config.hop_packets = 10;
    config.use_hmm = false;

    core::SensingEngine batch_engine;
    batch_engine.AddLink(detector, empty_scores, config);
    core::SensingEngine packet_engine;
    packet_engine.AddLink(std::move(detector), empty_scores, config);

    const std::span<const wifi::CsiPacket> session(f.occupied_session);
    const auto& batch = batch_engine.ProcessBatch(0, session);
    std::vector<core::PresenceDecision> packet_decisions;
    for (const auto& packet : f.occupied_session) {
      if (auto d = packet_engine.ProcessPacket(0, packet)) {
        packet_decisions.push_back(*d);
      }
    }

    ASSERT_EQ(packet_decisions.size(), batch.decisions.size());
    ASSERT_FALSE(packet_decisions.empty());
    for (std::size_t i = 0; i < packet_decisions.size(); ++i) {
      EXPECT_EQ(packet_decisions[i].timestamp_s,
                batch.decisions[i].timestamp_s);
      EXPECT_EQ(packet_decisions[i].score, batch.decisions[i].score);
      EXPECT_EQ(packet_decisions[i].posterior, batch.decisions[i].posterior);
      EXPECT_EQ(packet_decisions[i].occupied, batch.decisions[i].occupied);
    }
    EXPECT_EQ(packet_engine.occupied(0), batch_engine.occupied(0));
    EXPECT_EQ(packet_engine.posterior(0), batch_engine.posterior(0));
  }
}

// Fleet-mode registration — many links on one immutable shared detector,
// scoring through the engine-owned shared scratch — must be bit-identical
// to per-link owned copies with private scratch.
TEST(EngineEquivalence, SharedDetectorSharedScratchMatchesOwned) {
  auto& f = Fixture();
  auto detector =
      f.Calibrated(core::DetectionScheme::kSubcarrierAndPathWeighting);
  const auto empty_scores = EmptyScores(f, detector);
  detector.SetThreshold(1.0);
  const auto shared =
      std::make_shared<const core::Detector>(std::move(detector));

  core::StreamingConfig config;
  config.window_packets = 25;
  config.hop_packets = 5;

  core::SensingEngine owned_engine;
  core::SensingEngine fleet_engine;
  fleet_engine.UseSharedScratch();
  constexpr std::size_t kLinks = 3;
  for (std::size_t l = 0; l < kLinks; ++l) {
    owned_engine.AddLink(core::Detector(*shared), empty_scores, config);
    fleet_engine.AddLink(shared, empty_scores, config);
  }

  // Interleave the links so the shared scratch is handed between them
  // mid-stream (profile-stack cache crossing link boundaries).
  const std::span<const wifi::CsiPacket> session(f.occupied_session);
  for (std::size_t pos = 0; pos + 10 <= session.size(); pos += 10) {
    for (std::size_t l = 0; l < kLinks; ++l) {
      const auto& a = owned_engine.ProcessBatch(l, session.subspan(pos, 10));
      // Copy: the fleet engine's ProcessBatch reuses the same result slot
      // pattern per link, so compare before the next call.
      const std::vector<core::PresenceDecision> owned(a.decisions);
      const auto& b = fleet_engine.ProcessBatch(l, session.subspan(pos, 10));
      ASSERT_EQ(owned.size(), b.decisions.size());
      for (std::size_t i = 0; i < owned.size(); ++i) {
        EXPECT_EQ(owned[i].score, b.decisions[i].score);
        EXPECT_EQ(owned[i].posterior, b.decisions[i].posterior);
        EXPECT_EQ(owned[i].occupied, b.decisions[i].occupied);
      }
    }
  }
}

// The baseline ingest cache must stay coherent under the recalibration
// ladder: when a profile swap bumps the detector's profile epoch
// mid-stream, stale cached packet scores must not leak into decisions —
// pinned by bit-identity against StreamingDetector (which never caches).
TEST(EngineEquivalence, BaselineIngestCacheSurvivesRecalibration) {
  auto& f = Fixture();
  auto detector = f.Calibrated(core::DetectionScheme::kBaseline);
  const auto empty_scores = EmptyScores(f, detector);
  detector.SetThreshold(1.0);

  core::StreamingConfig config;
  config.window_packets = 25;
  config.hop_packets = 5;
  config.calibration.enabled = true;
  config.calibration.quiet_posterior_max = 0.2;
  config.calibration.drift_ewma_alpha = 1.0;
  config.calibration.drift_confirm_windows = 2;
  config.calibration.recalibration_quiet_windows = 3;
  config.calibration.recalibration_timeout_windows = 10;

  core::StreamingDetector streaming(detector, empty_scores, config);
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), empty_scores, config);

  // Empty-room stream: quiet windows feed the ladder, which recalibrates
  // (ApplyProfile bumps the epoch) while the cache holds pre-swap scores.
  std::vector<core::PresenceDecision> push_decisions;
  for (const auto& packet : f.empty_session) {
    if (auto d = streaming.Push(packet)) push_decisions.push_back(*d);
  }
  std::vector<core::PresenceDecision> engine_decisions;
  for (const auto& packet : f.empty_session) {
    if (auto d = engine.ProcessPacket(0, packet)) {
      engine_decisions.push_back(*d);
    }
  }

  ASSERT_EQ(push_decisions.size(), engine_decisions.size());
  ASSERT_FALSE(push_decisions.empty());
  for (std::size_t i = 0; i < push_decisions.size(); ++i) {
    EXPECT_EQ(push_decisions[i].score, engine_decisions[i].score);
    EXPECT_EQ(push_decisions[i].posterior, engine_decisions[i].posterior);
    EXPECT_EQ(push_decisions[i].occupied, engine_decisions[i].occupied);
  }
}

// Serving-tier eviction: RemoveLink frees the slot for the next AddLink,
// leaves every other link untouched, and the recycled slot behaves like a
// brand-new link.
TEST(SensingEngine, RemoveLinkRecyclesSlot) {
  auto& f = Fixture();
  auto d0 = f.Calibrated(core::DetectionScheme::kSubcarrierWeighting);
  const auto empty_scores = EmptyScores(f, d0);
  d0.SetThreshold(1.0);
  auto d1 = d0;
  auto d2 = d0;

  core::SensingEngine engine;
  const std::size_t a = engine.AddLink(std::move(d0), empty_scores, {});
  const std::size_t b = engine.AddLink(std::move(d1), empty_scores, {});
  EXPECT_EQ(engine.NumActiveLinks(), 2u);

  const std::span<const wifi::CsiPacket> session(f.occupied_session);
  (void)engine.ProcessBatch(a, session.subspan(0, 30));
  const std::vector<core::PresenceDecision> b_before(
      engine.ProcessBatch(b, session.subspan(0, 60)).decisions);
  ASSERT_FALSE(b_before.empty());

  engine.RemoveLink(a);
  EXPECT_FALSE(engine.LinkActive(a));
  EXPECT_TRUE(engine.LinkActive(b));
  EXPECT_EQ(engine.NumActiveLinks(), 1u);

  // The freed slot is reused before any new one is appended.
  const std::size_t c = engine.AddLink(std::move(d2), empty_scores, {});
  EXPECT_EQ(c, a);
  EXPECT_EQ(engine.NumLinks(), 2u);
  EXPECT_EQ(engine.NumActiveLinks(), 2u);

  // The recycled slot starts from a clean ring: feeding it the same stream
  // reproduces a fresh link's decisions, and link b is unaffected.
  const auto& c_result = engine.ProcessBatch(c, session.subspan(0, 60));
  const std::vector<core::PresenceDecision> c_decisions(c_result.decisions);
  const auto& b_again = engine.ProcessBatch(b, session.subspan(60, 60));
  ASSERT_FALSE(b_again.decisions.empty());
  ASSERT_EQ(c_decisions.size(), b_before.size());
  for (std::size_t i = 0; i < c_decisions.size(); ++i) {
    EXPECT_EQ(c_decisions[i].score, b_before[i].score);
  }
}

}  // namespace
