// Serving-tier tests: the SPSC ring's ordering/backpressure contract, the
// link→shard routing, the admission/eviction ladder, and the headline
// determinism guarantee — per-link decision logs bit-identical across
// 1/2/4 shards. The determinism cases double as the TSan campaign for the
// demux/worker handoff (scripts/run_tsan.sh runs this suite under
// -DMULINK_TSAN=ON).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "experiments/scenario.h"
#include "serve/serve.h"
#include "serve/spsc_ring.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

// ---- SpscRing -------------------------------------------------------------

TEST(SpscRing, FifoOrderAndEmptyPop) {
  serve::SpscRing<int> ring(4);
  int out = -1;
  EXPECT_FALSE(ring.TryPop(out));  // empty
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_TRUE(ring.TryPush(3));
  EXPECT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(ring.TryPop(out));  // drained
}

TEST(SpscRing, FullPushFailsAndCapacityRoundsUp) {
  // Capacity 3 rounds up to 4 cells.
  serve::SpscRing<int> ring(3);
  EXPECT_TRUE(ring.TryPush(10));
  EXPECT_TRUE(ring.TryPush(11));
  EXPECT_TRUE(ring.TryPush(12));
  EXPECT_TRUE(ring.TryPush(13));
  EXPECT_FALSE(ring.TryPush(14));  // full at the rounded capacity
  int out = -1;
  EXPECT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(ring.TryPush(14));  // slot freed
}

TEST(SpscRing, WrapAroundManyCycles) {
  serve::SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_pop = 0;
  std::uint64_t next_push = 0;
  // Push/pop in bursts so head and tail lap the cell array many times.
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.TryPush(next_push++));
    for (int i = 0; i < 5; ++i) {
      std::uint64_t out = ~std::uint64_t{0};
      ASSERT_TRUE(ring.TryPop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  EXPECT_EQ(ring.ApproxSize(), 0u);
}

TEST(SpscRing, DiscardOldestDisplacesHeadOfQueue) {
  serve::SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.TryPush(i));
  ASSERT_FALSE(ring.TryPush(4));
  EXPECT_TRUE(ring.DiscardOldest());  // drops 0
  EXPECT_TRUE(ring.TryPush(4));
  int out = -1;
  for (int expected = 1; expected <= 4; ++expected) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_FALSE(ring.DiscardOldest());  // nothing left to drop
}

TEST(SpscRing, InPlaceProduceConsumeMatchesPushPop) {
  serve::SpscRing<int> ring(4);
  // Produce writes the claimed cell directly; mixed with TryPush, FIFO
  // order must hold across both producer APIs.
  ASSERT_TRUE(ring.TryProduce([](int& cell) { cell = 10; }));
  ASSERT_TRUE(ring.TryPush(20));
  ASSERT_TRUE(ring.TryProduce([](int& cell) { cell = 30; }));
  std::vector<int> seen;
  // Consume runs on the claimed cell in place; mixed with TryPop.
  EXPECT_TRUE(ring.TryConsume([&](const int& cell) { seen.push_back(cell); }));
  int out = -1;
  ASSERT_TRUE(ring.TryPop(out));
  seen.push_back(out);
  EXPECT_TRUE(ring.TryConsume([&](const int& cell) { seen.push_back(cell); }));
  EXPECT_EQ(seen, (std::vector<int>{10, 20, 30}));
  EXPECT_FALSE(ring.TryConsume([](const int&) { FAIL(); }));
}

TEST(SpscRing, InPlaceProduceFailsWhenFullWithoutRunningWriter) {
  serve::SpscRing<int> ring(2);
  ASSERT_TRUE(ring.TryProduce([](int& cell) { cell = 1; }));
  ASSERT_TRUE(ring.TryProduce([](int& cell) { cell = 2; }));
  // Full ring: the writer must not run on any cell.
  EXPECT_FALSE(ring.TryProduce([](int&) { FAIL(); }));
  EXPECT_TRUE(ring.DiscardOldest());
  ASSERT_TRUE(ring.TryProduce([](int& cell) { cell = 3; }));
  int out = -1;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 3);
}

// ---- Shared serving fixture ----------------------------------------------

struct ServeFixture {
  ex::LinkCase link = ex::MakeClassroomLink();
  nic::ChannelSimulator sim = ex::MakeSimulator(link);
  Rng rng{911};
  std::shared_ptr<const core::Detector> detector;
  std::vector<double> empty_scores;

  ServeFixture() {
    core::DetectorConfig config;
    config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
    config.window_packets = 10;
    const auto calibration = sim.CaptureSession(200, std::nullopt, rng);
    auto d = core::Detector::Calibrate(calibration, sim.band(), sim.array(),
                                       config);
    std::vector<std::vector<wifi::CsiPacket>> windows;
    for (std::size_t start = 0; start + 10 <= calibration.size(); start += 10) {
      windows.emplace_back(
          calibration.begin() + static_cast<std::ptrdiff_t>(start),
          calibration.begin() + static_cast<std::ptrdiff_t>(start + 10));
    }
    d.CalibrateThreshold(windows);
    core::DetectorScratch scratch;
    for (const auto& w : windows) {
      empty_scores.push_back(
          d.Score(std::span<const wifi::CsiPacket>(w), scratch));
    }
    detector = std::make_shared<const core::Detector>(std::move(d));
  }

  core::StreamingConfig Stream() const {
    core::StreamingConfig stream;
    stream.window_packets = 10;
    stream.hop_packets = 1;
    stream.use_hmm = false;
    return stream;
  }

  // One independent packet stream per link, forked in link order.
  std::vector<std::vector<wifi::CsiPacket>> Streams(std::size_t links,
                                                    std::size_t frames) {
    Rng base(4242);
    std::vector<std::vector<wifi::CsiPacket>> streams;
    streams.reserve(links);
    for (std::size_t l = 0; l < links; ++l) {
      auto fork = base.Fork();
      streams.push_back(sim.CaptureSession(frames, std::nullopt, fork));
    }
    return streams;
  }
};

ServeFixture& Fixture() {
  static ServeFixture f;
  return f;
}

std::vector<serve::DecisionRecord> RunDeterministic(
    ServeFixture& f, const std::vector<std::vector<wifi::CsiPacket>>& streams,
    std::size_t shards) {
  serve::ServeConfig config;
  config.num_shards = shards;
  config.queue_capacity = 32;
  config.deterministic = true;
  config.collect_decision_log = true;
  config.stream = f.Stream();
  serve::ServeCore core(config);
  const auto profile = core.RegisterProfile(f.detector, f.empty_scores);
  core.Start();
  const std::size_t frames = streams.front().size();
  for (std::size_t p = 0; p < frames; ++p) {
    for (std::size_t l = 0; l < streams.size(); ++l) {
      core.Submit(l, profile, streams[l][p]);
    }
  }
  core.Stop();
  return core.MergedDecisionLog();
}

// ---- Routing --------------------------------------------------------------

TEST(ServeRouting, ShardOfIsStableAndCovers) {
  serve::ServeConfig config;
  config.num_shards = 4;
  serve::ServeCore a(config);
  serve::ServeCore b(config);
  std::set<std::size_t> hit;
  for (std::uint64_t id = 0; id < 256; ++id) {
    const std::size_t shard = a.ShardOf(id);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, b.ShardOf(id));  // pure function of (id, num_shards)
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 4u);  // splitmix64 spreads 256 ids over all shards
}

// ---- End-to-end counters --------------------------------------------------

TEST(ServeCore, CountsFramesAndDecisions) {
  auto& f = Fixture();
  const std::size_t links = 6;
  const std::size_t frames = 30;
  const auto streams = f.Streams(links, frames);

  serve::ServeConfig config;
  config.num_shards = 2;
  config.queue_capacity = 64;
  config.policy = serve::BackPressure::kBlock;
  config.stream = f.Stream();
  serve::ServeCore core(config);
  const auto profile = core.RegisterProfile(f.detector, f.empty_scores);
  core.Start();
  for (std::size_t p = 0; p < frames; ++p) {
    for (std::size_t l = 0; l < links; ++l) {
      EXPECT_TRUE(core.Submit(l, profile, streams[l][p]));
    }
  }
  core.Stop();

  std::uint64_t routed = 0, processed = 0, decisions = 0, admitted = 0;
  for (const auto& s : core.Stats()) {
    routed += s.frames_routed;
    processed += s.frames_processed;
    decisions += s.decisions;
    admitted += s.links_admitted;
  }
  EXPECT_EQ(routed, links * frames);
  EXPECT_EQ(processed, links * frames);  // kBlock loses nothing
  EXPECT_EQ(admitted, links);
  // Hop 1, window 10: one decision per frame once the window is full.
  EXPECT_EQ(decisions, links * (frames - 10 + 1));
}

// ---- Determinism ----------------------------------------------------------

TEST(ServeDeterminism, MergedLogBitIdenticalAcross124Shards) {
  auto& f = Fixture();
  const auto streams = f.Streams(12, 25);
  const auto log1 = RunDeterministic(f, streams, 1);
  const auto log2 = RunDeterministic(f, streams, 2);
  const auto log4 = RunDeterministic(f, streams, 4);

  ASSERT_FALSE(log1.empty());
  ASSERT_EQ(log1.size(), log2.size());
  ASSERT_EQ(log1.size(), log4.size());
  for (std::size_t i = 0; i < log1.size(); ++i) {
    for (const auto* other : {&log2[i], &log4[i]}) {
      EXPECT_EQ(log1[i].link_id, other->link_id);
      // Bitwise: the contract is bit-identity, not tolerance.
      EXPECT_EQ(log1[i].decision.score, other->decision.score);
      EXPECT_EQ(log1[i].decision.posterior, other->decision.posterior);
      EXPECT_EQ(log1[i].decision.occupied, other->decision.occupied);
      EXPECT_EQ(log1[i].decision.degraded, other->decision.degraded);
      EXPECT_EQ(log1[i].decision.timestamp_s, other->decision.timestamp_s);
    }
  }
}

TEST(ServeDeterminism, LogIsLinkMajorWithPerLinkOrderPreserved) {
  auto& f = Fixture();
  const auto streams = f.Streams(5, 20);
  const auto log = RunDeterministic(f, streams, 2);
  ASSERT_FALSE(log.empty());
  for (std::size_t i = 1; i < log.size(); ++i) {
    ASSERT_GE(log[i].link_id, log[i - 1].link_id);  // link-id-major
    if (log[i].link_id == log[i - 1].link_id) {
      // Within a link, arrival order = timestamp order.
      ASSERT_GE(log[i].decision.timestamp_s, log[i - 1].decision.timestamp_s);
    }
  }
}

// ---- Admission / eviction -------------------------------------------------

TEST(ServeEviction, CapacityEvictsLruAndReadmitsFreely) {
  auto& f = Fixture();
  const auto streams = f.Streams(3, 15);

  serve::ServeConfig config;
  config.num_shards = 1;
  config.queue_capacity = 64;
  config.policy = serve::BackPressure::kBlock;
  config.max_resident_per_shard = 2;
  config.stream = f.Stream();
  serve::ServeCore core(config);
  const auto profile = core.RegisterProfile(f.detector, f.empty_scores);
  core.Start();

  // Bursts: link 0, link 1 (roster full), link 2 evicts the LRU link 0.
  for (std::size_t l = 0; l < 3; ++l) {
    for (const auto& packet : streams[l]) core.Submit(l, profile, packet);
    core.Drain();
  }
  auto stats = core.Stats();
  EXPECT_EQ(stats[0].links_admitted, 3u);
  EXPECT_EQ(stats[0].links_evicted, 1u);
  EXPECT_EQ(stats[0].resident_links, 2u);

  // Capacity eviction carries no cooldown: link 0 readmits on its next
  // frame (evicting the now-LRU link 1) and still produces decisions.
  const std::uint64_t decisions_before = stats[0].decisions;
  for (const auto& packet : streams[0]) core.Submit(0, profile, packet);
  core.Stop();
  stats = core.Stats();
  EXPECT_EQ(stats[0].links_admitted, 4u);
  EXPECT_EQ(stats[0].links_evicted, 2u);
  EXPECT_EQ(stats[0].links_readmitted, 1u);
  EXPECT_GT(stats[0].decisions, decisions_before);
}

TEST(ServeEviction, QuarantineStormEvictsWithOwnFrameCooldown) {
  auto& f = Fixture();
  // Pattern {good, bad, bad}: quarantine ratio 2/3 > 0.5, while the good
  // frames (sequence gaps of 2, well inside the guard's resync limit) keep
  // filling windows so decisions — where the health check runs — still
  // fire.
  Rng rng(77);
  auto stream = f.sim.CaptureSession(120, std::nullopt, rng);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (i % 3 != 0) {
      stream[i].csi.At(0, 0) =
          Complex(std::numeric_limits<double>::quiet_NaN(), 0.0);
    }
  }

  serve::ServeConfig config;
  config.num_shards = 1;
  config.queue_capacity = 64;
  config.policy = serve::BackPressure::kBlock;
  config.evict_unhealthy = true;
  config.max_quarantine_ratio = 0.5;
  config.health_check_min_frames = 9;
  config.readmit_after_frames = 6;
  config.stream = f.Stream();
  config.stream.guard_enabled = true;
  serve::ServeCore core(config);
  const auto profile = core.RegisterProfile(f.detector, f.empty_scores);
  core.Start();
  for (const auto& packet : stream) core.Submit(0, profile, packet);
  core.Stop();

  const auto stats = core.Stats();
  // The link is evicted at the first post-threshold decision, barred for 6
  // of its own frames, readmitted, and (still unhealthy) evicted again.
  EXPECT_GE(stats[0].links_evicted, 2u);
  EXPECT_GE(stats[0].links_readmitted, 1u);
  EXPECT_EQ(stats[0].frames_processed, stream.size());
}

}  // namespace
