// Bounded random-input robustness for the ingest boundary (DESIGN.md §16).
//
// ReadCsiSession and FrameGuard::Inspect are the two places where bytes from
// outside the process become pipeline state. Their contract is total: for
// ANY input, either a well-formed session/report comes back or a typed
// mulink error is thrown — never a crash, never an uncaught foreign
// exception, never an unbounded allocation driven by a hostile header.
//
// This suite drives that contract with deterministic garbage: every blob of
// random bytes, every truncation and every bit flip is drawn from an
// explicitly seeded mulink::Rng, so a failure reproduces bit-for-bit from
// the test name alone (the repo's no-ambient-randomness rule, enforced by
// mulink-analyze's determinism rule, is what makes this cheap). Rounds are
// bounded (a few hundred cases, each ≤ ~64 KiB) so the suite stays inside
// the ordinary ctest budget rather than being a fuzzer in disguise; the
// corpus shapes (random bytes, valid-prefix mutations, structured-garbage
// packets) mirror what an actual driver bug emits.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "experiments/scenario.h"
#include "nic/csi_io.h"
#include "nic/frame_guard.h"

namespace mulink::nic {
namespace {

namespace ex = mulink::experiments;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteBytes(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good());
}

std::vector<std::uint8_t> RandomBytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (auto& byte : bytes) {
    byte = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  }
  return bytes;
}

// The contract under test: ReadCsiSession either returns or throws a typed
// mulink error. Anything else (segfault, std::bad_alloc from a hostile
// packet count, foreign exception types) fails the test.
void ExpectTotal(const std::string& path, CsiReadMode mode) {
  try {
    const auto session = ReadCsiSession(path, mode);
    // Loading succeeded: the result must honour the documented invariant
    // that a loaded session is shape-consistent.
    for (const auto& packet : session) {
      EXPECT_EQ(packet.NumAntennas(), session.front().NumAntennas());
      EXPECT_EQ(packet.NumSubcarriers(), session.front().NumSubcarriers());
    }
  } catch (const Error&) {
    // Typed rejection (PreconditionError derives from Error): the documented
    // outcome for malformed input.
  } catch (const std::exception& err) {
    ADD_FAILURE() << path << ": non-mulink exception leaked: " << err.what();
  }
}

std::vector<std::uint8_t> ValidSessionBytes(std::size_t packets) {
  auto sim = ex::MakeSimulator(ex::MakeClassroomLink());
  Rng rng(42);
  const auto session = sim.CaptureSession(packets, std::nullopt, rng);
  const auto path = TempPath("valid_template.mlnk");
  WriteCsiSession(path, session);
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  std::remove(path.c_str());
  return bytes;
}

TEST(NicRobustness, RandomBytesNeverCrashTheReader) {
  Rng rng(0x5EED0001);
  const auto path = TempPath("random_blob.mlnk");
  for (int round = 0; round < 200; ++round) {
    const auto size = static_cast<std::size_t>(rng.UniformInt(0, 4096));
    WriteBytes(path, RandomBytes(rng, size));
    ExpectTotal(path, CsiReadMode::kStrict);
    ExpectTotal(path, CsiReadMode::kTolerant);
  }
  std::remove(path.c_str());
}

TEST(NicRobustness, RandomBytesBehindValidMagicNeverCrashTheReader) {
  // Random blobs almost always die at the magic check; pinning the magic
  // (and sometimes the version) pushes the garbage into the header and
  // payload validators, where the hostile-dimension and size-vs-header
  // checks do the real work.
  Rng rng(0x5EED0002);
  const auto path = TempPath("magic_blob.mlnk");
  for (int round = 0; round < 200; ++round) {
    const auto size = static_cast<std::size_t>(rng.UniformInt(8, 8192));
    auto bytes = RandomBytes(rng, size);
    bytes[0] = 'M';
    bytes[1] = 'L';
    bytes[2] = 'N';
    bytes[3] = 'K';
    if (rng.UniformInt(0, 1) == 1) {
      bytes[4] = 1;  // plausible format version, little-endian
      bytes[5] = bytes[6] = bytes[7] = 0;
    }
    WriteBytes(path, bytes);
    ExpectTotal(path, CsiReadMode::kStrict);
    ExpectTotal(path, CsiReadMode::kTolerant);
  }
  std::remove(path.c_str());
}

TEST(NicRobustness, TruncationsOfValidSessionsAreTypedRejections) {
  const auto valid = ValidSessionBytes(12);
  Rng rng(0x5EED0003);
  const auto path = TempPath("truncated.mlnk");
  for (int round = 0; round < 100; ++round) {
    const auto cut = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(valid.size()) - 1));
    WriteBytes(path, {valid.begin(), valid.begin() +
                                         static_cast<std::ptrdiff_t>(cut)});
    // A strict prefix of a valid file can never satisfy the size-vs-header
    // check, so both modes must reject it (with a typed error, not a
    // short-read crash).
    EXPECT_THROW(ReadCsiSession(path, CsiReadMode::kStrict), Error);
    EXPECT_THROW(ReadCsiSession(path, CsiReadMode::kTolerant), Error);
  }
  std::remove(path.c_str());
}

TEST(NicRobustness, BitFlippedSessionsStayTotalAndQuarantinable) {
  const auto valid = ValidSessionBytes(12);
  Rng rng(0x5EED0004);
  const auto path = TempPath("bitflip.mlnk");
  int loaded_tolerant = 0;
  for (int round = 0; round < 150; ++round) {
    auto bytes = valid;
    const int flips = rng.UniformInt(1, 8);
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<std::uint8_t>(1 << rng.UniformInt(0, 7));
    }
    WriteBytes(path, bytes);
    ExpectTotal(path, CsiReadMode::kStrict);
    // Flips confined to the payload typically survive the structural
    // checks under kTolerant — exactly the mode's purpose: corrupt frames
    // reach the FrameGuard, which must quarantine the non-finite ones.
    try {
      const auto session = ReadCsiSession(path, CsiReadMode::kTolerant);
      ++loaded_tolerant;
      FrameGuard guard;
      for (const auto& packet : session) {
        const FrameReport report = guard.Inspect(packet);
        bool finite = std::isfinite(packet.timestamp_s) &&
                      std::isfinite(packet.rssi_db);
        for (std::size_t m = 0; finite && m < packet.NumAntennas(); ++m) {
          for (std::size_t k = 0; finite && k < packet.NumSubcarriers();
               ++k) {
            const auto value = packet.csi.At(m, k);
            finite = std::isfinite(value.real()) &&
                     std::isfinite(value.imag());
          }
        }
        if (!finite) {
          EXPECT_EQ(report.verdict, FrameVerdict::kQuarantine);
          EXPECT_TRUE(report.Has(FrameFault::kNonFinite));
        }
      }
      const auto& health = guard.health();
      EXPECT_EQ(health.received,
                health.accepted + health.repaired + health.quarantined);
    } catch (const Error&) {
      // Structural damage (header/shape/size) — typed rejection is fine.
    }
  }
  // The corpus must actually exercise the tolerant-load path, not just
  // bounce off the header checks.
  EXPECT_GT(loaded_tolerant, 0);
  std::remove(path.c_str());
}

TEST(NicRobustness, GarbagePacketsGetTypedVerdictsNeverCrashes) {
  // Structured garbage straight into FrameGuard::Inspect — random shapes,
  // random sequence numbers, NaN/Inf/zero injections — classifying into the
  // typed verdict taxonomy, with counters that always reconcile.
  Rng rng(0x5EED0005);
  FrameGuard guard;
  std::uint64_t quarantined_nonfinite = 0;
  for (int round = 0; round < 300; ++round) {
    wifi::CsiPacket packet;
    // Mostly the locked 3x30 shape (the guard pins the first frame's shape
    // and quarantines everything else on kShapeMismatch BEFORE the finite
    // scan, so all-random shapes would starve the non-finite path); a
    // 1-in-10 round still throws a random shape at the mismatch check.
    std::size_t antennas = 3;
    std::size_t subcarriers = 30;
    if (rng.UniformInt(0, 9) == 0) {
      antennas = static_cast<std::size_t>(rng.UniformInt(1, 4));
      subcarriers = static_cast<std::size_t>(rng.UniformInt(1, 40));
    }
    packet.csi = linalg::CMatrix(antennas, subcarriers);
    for (std::size_t m = 0; m < antennas; ++m) {
      for (std::size_t k = 0; k < subcarriers; ++k) {
        double re = rng.Gaussian(0.0, 1.0);
        double im = rng.Gaussian(0.0, 1.0);
        switch (rng.UniformInt(0, 19)) {
          case 0:
            re = std::numeric_limits<double>::quiet_NaN();
            break;
          case 1:
            im = std::numeric_limits<double>::infinity();
            break;
          case 2:
            re = im = 0.0;
            break;
          default:
            break;
        }
        packet.csi.At(m, k) = {re, im};
      }
    }
    packet.timestamp_s = rng.Uniform(-1.0, 1e9);
    packet.rssi_db = rng.Uniform(-200.0, 100.0);
    packet.sequence = static_cast<std::uint64_t>(rng.NextU32());
    if (rng.UniformInt(0, 9) == 0) {
      packet.rssi_db = std::numeric_limits<double>::quiet_NaN();
    }

    const FrameReport report = guard.Inspect(packet);
    EXPECT_TRUE(report.verdict == FrameVerdict::kAccept ||
                report.verdict == FrameVerdict::kRepair ||
                report.verdict == FrameVerdict::kQuarantine);
    if (report.Has(FrameFault::kNonFinite)) {
      EXPECT_EQ(report.verdict, FrameVerdict::kQuarantine);
      ++quarantined_nonfinite;
    }
  }
  const auto& health = guard.health();
  EXPECT_EQ(health.received, 300u);
  EXPECT_EQ(health.received,
            health.accepted + health.repaired + health.quarantined);
  // With a 3-in-20 corruption rate per cell the corpus must have produced
  // (and the guard must have caught) a healthy number of non-finite frames.
  EXPECT_GT(quarantined_nonfinite, 50u);
  EXPECT_GE(health.quarantined, quarantined_nonfinite);
}

}  // namespace
}  // namespace mulink::nic
