#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "geometry/fresnel.h"
#include "geometry/room.h"
#include "geometry/segment.h"
#include "geometry/vec2.h"

namespace mulink::geometry {
namespace {

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec2{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Vec2{2.0, 4.0}));
  EXPECT_EQ((a / 2.0), (Vec2{0.5, 1.0}));
}

TEST(Vec2, NormAndDot) {
  const Vec2 v{3.0, 4.0};
  EXPECT_NEAR(v.Norm(), 5.0, 1e-12);
  EXPECT_NEAR(v.NormSq(), 25.0, 1e-12);
  EXPECT_NEAR(v.Dot({1.0, 0.0}), 3.0, 1e-12);
  EXPECT_NEAR(v.Cross({1.0, 0.0}), -4.0, 1e-12);
}

TEST(Vec2, NormalizedAndPerp) {
  const Vec2 v{0.0, 5.0};
  EXPECT_NEAR((v.Normalized() - Vec2{0.0, 1.0}).Norm(), 0.0, 1e-12);
  EXPECT_NEAR((v.Perp() - Vec2{-5.0, 0.0}).Norm(), 0.0, 1e-12);
  // Perp is orthogonal.
  EXPECT_NEAR(v.Dot(v.Perp()), 0.0, 1e-12);
  // Zero vector normalizes to zero, not NaN.
  EXPECT_EQ(Vec2{}.Normalized(), (Vec2{0.0, 0.0}));
}

TEST(Vec2, DirectionAngle) {
  EXPECT_NEAR(DirectionAngle({0, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(DirectionAngle({0, 0}, {0, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(DirectionAngle({1, 1}, {0, 1}), kPi, 1e-12);
}

TEST(Segment, LengthMidpointPointAt) {
  const Segment s{{0, 0}, {4, 0}};
  EXPECT_NEAR(s.Length(), 4.0, 1e-12);
  EXPECT_EQ(s.Midpoint(), (Vec2{2, 0}));
  EXPECT_EQ(s.PointAt(0.25), (Vec2{1, 0}));
}

TEST(Segment, DistancePointToSegment) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_NEAR(DistancePointToSegment({5, 3}, s), 3.0, 1e-12);
  // Beyond an endpoint, distance is to that endpoint.
  EXPECT_NEAR(DistancePointToSegment({-3, 4}, s), 5.0, 1e-12);
  EXPECT_NEAR(DistancePointToSegment({13, 4}, s), 5.0, 1e-12);
  // On the segment.
  EXPECT_NEAR(DistancePointToSegment({7, 0}, s), 0.0, 1e-12);
}

TEST(Segment, ClosestParameterClamped) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_NEAR(ClosestParameter({5, 1}, s), 0.5, 1e-12);
  EXPECT_NEAR(ClosestParameter({-5, 1}, s), 0.0, 1e-12);
  EXPECT_NEAR(ClosestParameter({15, 1}, s), 1.0, 1e-12);
}

TEST(Segment, IntersectCrossing) {
  const Segment a{{0, 0}, {2, 2}};
  const Segment b{{0, 2}, {2, 0}};
  const auto p = Intersect(a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR((*p - Vec2{1, 1}).Norm(), 0.0, 1e-12);
}

TEST(Segment, IntersectDisjointAndParallel) {
  EXPECT_FALSE(Intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}).has_value());
  EXPECT_FALSE(Intersect({{0, 0}, {1, 1}}, {{3, 0}, {4, 0}}).has_value());
}

TEST(Segment, IntersectAtSharedEndpoint) {
  const auto p = Intersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR((*p - Vec2{1, 1}).Norm(), 0.0, 1e-9);
}

TEST(Segment, MirrorAcrossHorizontalWall) {
  const Segment wall{{0, 2}, {10, 2}};
  const Vec2 m = MirrorAcross({3, 5}, wall);
  EXPECT_NEAR((m - Vec2{3, -1}).Norm(), 0.0, 1e-12);
}

TEST(Segment, MirrorAcrossDiagonalWallIsInvolution) {
  const Segment wall{{0, 0}, {3, 4}};
  const Vec2 p{2.0, -1.0};
  const Vec2 m = MirrorAcross(MirrorAcross(p, wall), wall);
  EXPECT_NEAR((m - p).Norm(), 0.0, 1e-12);
}

TEST(Segment, MirrorPreservesDistanceToWallLine) {
  const Segment wall{{1, 0}, {1, 5}};
  const Vec2 p{4, 2};
  const Vec2 m = MirrorAcross(p, wall);
  EXPECT_NEAR((m - Vec2{-2, 2}).Norm(), 0.0, 1e-12);
}

TEST(Room, RectangularHasFourWalls) {
  const Room room = Room::Rectangular(6.0, 8.0, 0.4);
  EXPECT_EQ(room.walls().size(), 4u);
  EXPECT_EQ(room.width(), 6.0);
  EXPECT_EQ(room.depth(), 8.0);
  for (const auto& wall : room.walls()) {
    EXPECT_EQ(wall.reflection_coefficient, 0.4);
  }
}

TEST(Room, ContainsWithMargin) {
  const Room room = Room::Rectangular(6.0, 8.0);
  EXPECT_TRUE(room.Contains({3.0, 4.0}));
  EXPECT_FALSE(room.Contains({-0.1, 4.0}));
  EXPECT_FALSE(room.Contains({3.0, 8.1}));
  EXPECT_TRUE(room.Contains({0.5, 0.5}));
  EXPECT_FALSE(room.Contains({0.5, 0.5}, 1.0));
}

TEST(Room, RejectsBadArguments) {
  EXPECT_THROW(Room::Rectangular(-1.0, 5.0), PreconditionError);
  EXPECT_THROW(Room::Rectangular(5.0, 5.0, 1.5), PreconditionError);
}

TEST(Fresnel, RadiusLargestAtMidpoint) {
  const Segment link{{0, 0}, {4, 0}};
  const double mid = FresnelRadiusAt(link, {2, 1}, kWavelength);
  const double quarter = FresnelRadiusAt(link, {1, 1}, kWavelength);
  EXPECT_GT(mid, quarter);
  // r1 at midpoint of a 4 m link: sqrt(lambda * 2 * 2 / 4) = sqrt(lambda).
  EXPECT_NEAR(mid, std::sqrt(kWavelength), 1e-9);
}

TEST(Fresnel, SecondZoneLargerByRootTwo) {
  const Segment link{{0, 0}, {4, 0}};
  const double z1 = FresnelRadiusAt(link, {2, 1}, kWavelength, 1);
  const double z2 = FresnelRadiusAt(link, {2, 1}, kWavelength, 2);
  EXPECT_NEAR(z2 / z1, std::sqrt(2.0), 1e-12);
}

TEST(Fresnel, ClearanceZeroOnLosLine) {
  const Segment link{{0, 0}, {4, 0}};
  EXPECT_NEAR(FresnelClearanceRatio(link, {2, 0}, kWavelength), 0.0, 1e-12);
}

TEST(Fresnel, ClearanceGrowsWithLateralOffset) {
  const Segment link{{0, 0}, {4, 0}};
  const double near = FresnelClearanceRatio(link, {2, 0.1}, kWavelength);
  const double far = FresnelClearanceRatio(link, {2, 0.5}, kWavelength);
  EXPECT_GT(far, near);
  EXPECT_GT(near, 0.0);
}

TEST(Fresnel, BeyondEndpointsIsInfinite) {
  const Segment link{{0, 0}, {4, 0}};
  EXPECT_TRUE(std::isinf(FresnelClearanceRatio(link, {-1, 0.0}, kWavelength)));
  EXPECT_TRUE(std::isinf(FresnelClearanceRatio(link, {5, 0.2}, kWavelength)));
}

TEST(Fresnel, SensitivityRegionMatchesPaper) {
  // The paper (citing [19]) puts the LOS sensitivity region at 5-6
  // wavelengths around the link. For a 4 m link at 2.4 GHz the first
  // Fresnel radius at midpoint is ~0.35 m ~ 2.9 lambda, so a person 6
  // wavelengths away sits near clearance ratio ~2 — where our shadowing
  // model (width 0.8) is within 2% of no-attenuation.
  const Segment link{{0, 0}, {4, 0}};
  const double six_lambda = 6.0 * kWavelength;
  const double u = FresnelClearanceRatio(link, {2, six_lambda}, kWavelength);
  EXPECT_GT(u, 1.8);
  EXPECT_LT(u, 2.4);
}

}  // namespace
}  // namespace mulink::geometry
