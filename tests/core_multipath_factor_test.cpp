#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "core/link_model.h"
#include "core/multipath_factor.h"
#include "dsp/stats.h"
#include "propagation/path.h"
#include "wifi/cfr.h"

namespace mulink::core {
namespace {

std::vector<Complex> TwoPathCfr(const wifi::BandPlan& band, double los_len,
                                double refl_len, double refl_gain) {
  propagation::Path los, refl;
  los.vertices = {{0, 0}, {los_len, 0}};
  los.length_m = los_len;
  los.gain_at_center = 1.0;
  refl.kind = propagation::PathKind::kWallReflection;
  refl.vertices = los.vertices;
  refl.length_m = refl_len;
  refl.gain_at_center = refl_gain;
  return wifi::SynthesizeCfrSingle({los, refl}, band);
}

TEST(LosPowerEstimate, SumsToDominantTapPower) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto cfr = TwoPathCfr(band, 4.0, 7.0, 0.4);
  const auto los = EstimateLosPower(cfr, band);
  double sum = 0.0;
  for (double p : los) sum += p;
  // Eq. 10 splits |h(0)|^2 across subcarriers; the split must be exact.
  Complex mean(0, 0);
  for (const auto& h : cfr) mean += h;
  mean /= static_cast<double>(cfr.size());
  EXPECT_NEAR(sum, std::norm(mean), 1e-12);
}

TEST(LosPowerEstimate, FollowsInverseFrequencySquared) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto cfr = TwoPathCfr(band, 4.0, 7.0, 0.4);
  const auto los = EstimateLosPower(cfr, band);
  // P_L(f_k) * f_k^2 constant across subcarriers.
  const double ref = los[0] * band.FrequencyHz(0) * band.FrequencyHz(0);
  for (std::size_t k = 1; k < los.size(); ++k) {
    EXPECT_NEAR(los[k] * band.FrequencyHz(k) * band.FrequencyHz(k), ref,
                ref * 1e-12);
  }
}

TEST(MultipathFactor, PureLosGivesUniformFactors) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  propagation::Path los;
  los.vertices = {{0, 0}, {4, 0}};
  los.length_m = 4.0;
  los.gain_at_center = 1.0;
  const auto cfr = wifi::SynthesizeCfrSingle({los}, band);
  const auto mu = MeasureMultipathFactors(cfr, band);
  // With a single path |h(0)|^2 < |H_k|^2 * K only by the phase decoherence
  // across subcarriers; after the delay-induced phase ramp the coherent mean
  // loses some power, but the mu profile stays nearly flat.
  const double mean = dsp::Mean(mu);
  for (double v : mu) {
    EXPECT_NEAR(v, mean, 0.15 * mean);
  }
}

TEST(MultipathFactor, DestructiveSubcarriersGetLargerMu) {
  // mu_k ~ 1/|H_k|^2: subcarriers in a fade have larger multipath factor.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto cfr = TwoPathCfr(band, 4.0, 9.0, 0.6);
  const auto mu = MeasureMultipathFactors(cfr, band);
  std::size_t k_min_amp = 0, k_max_amp = 0;
  for (std::size_t k = 1; k < cfr.size(); ++k) {
    if (std::abs(cfr[k]) < std::abs(cfr[k_min_amp])) k_min_amp = k;
    if (std::abs(cfr[k]) > std::abs(cfr[k_max_amp])) k_max_amp = k;
  }
  EXPECT_GT(mu[k_min_amp], mu[k_max_amp]);
}

TEST(MultipathFactor, ScaleInvariant) {
  // mu is a power ratio: scaling the CFR must not change it.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  auto cfr = TwoPathCfr(band, 4.0, 7.5, 0.5);
  const auto mu1 = MeasureMultipathFactors(cfr, band);
  for (auto& h : cfr) h *= Complex(3.0, 0.0);
  const auto mu2 = MeasureMultipathFactors(cfr, band);
  for (std::size_t k = 0; k < mu1.size(); ++k) {
    EXPECT_NEAR(mu1[k], mu2[k], 1e-12);
  }
}

TEST(MultipathFactor, ZeroSubcarrierYieldsZeroMu) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  auto cfr = TwoPathCfr(band, 4.0, 7.5, 0.5);
  cfr[7] = Complex(0.0, 0.0);
  const auto mu = MeasureMultipathFactors(cfr, band);
  EXPECT_EQ(mu[7], 0.0);
}

TEST(MultipathFactor, TracksClosedFormOrderingAcrossPhases) {
  // Sweep the reflected path's excess length so its phase walks the circle;
  // the measured mu (averaged over subcarriers) must rank configurations in
  // the same order as the closed-form Eq. 3 at the center frequency.
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const double gamma = 2.5;
  std::vector<double> measured, closed_form;
  for (double excess = 2.0; excess < 2.0 + kWavelength;
       excess += kWavelength / 7.0) {
    const auto cfr = TwoPathCfr(band, 4.0, 4.0 + excess, 1.0 / gamma);
    const auto mu = MeasureMultipathFactors(cfr, band);
    measured.push_back(dsp::Mean(mu));
    const double phi = PhaseFromExcessLength(excess, band.center_hz());
    closed_form.push_back(MultipathFactorClosedForm(gamma, phi));
  }
  // Strong positive rank correlation (Pearson > 0.9 suffices here).
  EXPECT_GT(dsp::Correlation(measured, closed_form), 0.9);
}

TEST(MultipathFactor, PacketVariantAveragesAntennas) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto cfr = TwoPathCfr(band, 4.0, 7.0, 0.4);
  wifi::CsiPacket packet;
  packet.csi = linalg::CMatrix(2, band.NumSubcarriers());
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    packet.csi.At(0, k) = cfr[k];
    packet.csi.At(1, k) = cfr[k] * Complex(2.0, 0.0);  // same mu (scale-inv)
  }
  const auto mu_packet = MeasureMultipathFactors(packet, band);
  const auto mu_single = MeasureMultipathFactors(cfr, band);
  for (std::size_t k = 0; k < mu_single.size(); ++k) {
    EXPECT_NEAR(mu_packet[k], mu_single[k], 1e-12);
  }
}

TEST(MultipathFactor, SessionVariantShape) {
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const auto cfr = TwoPathCfr(band, 4.0, 7.0, 0.4);
  wifi::CsiPacket packet;
  packet.csi = linalg::CMatrix(1, band.NumSubcarriers());
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    packet.csi.At(0, k) = cfr[k];
  }
  const auto mu =
      MeasureMultipathFactors(std::vector<wifi::CsiPacket>{packet, packet},
                              band);
  ASSERT_EQ(mu.size(), 2u);
  EXPECT_EQ(mu[0].size(), band.NumSubcarriers());
  EXPECT_EQ(mu[0], mu[1]);
}

}  // namespace
}  // namespace mulink::core
