// Quickstart: simulate one WiFi link in a furnished room, calibrate a
// detector on the empty room, then check whether a person standing at a few
// spots is detected.
//
// This walks the whole public API surface: scenario construction, the
// channel/NIC simulator, calibration, multipath-factor measurement, MUSIC,
// and the three detection schemes.
#include <iostream>

#include "core/detector.h"
#include "core/multipath_factor.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

int main() {
  using namespace mulink;
  namespace ex = mulink::experiments;

  // A 6 m x 8 m classroom with a 4 m TX-RX link (the paper's Sec. III
  // characterization setup).
  const ex::LinkCase link = ex::MakeClassroomLink();
  auto simulator = ex::MakeSimulator(link);
  Rng rng(42);

  ex::PrintBanner(std::cout, "Static propagation paths");
  for (const auto& path : simulator.StaticPaths()) {
    std::cout << "  " << path.Describe() << "\n";
  }

  // Calibrate on 400 empty-room packets (8 seconds at 50 pkt/s).
  const auto calibration = simulator.CaptureSession(400, std::nullopt, rng);

  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  auto detector = core::Detector::Calibrate(calibration, simulator.band(),
                                            simulator.array(), config);

  ex::PrintBanner(std::cout, "Static MUSIC pseudospectrum peaks");
  for (double angle : detector.static_spectrum().PeakAngles(3)) {
    std::cout << "  path at " << ex::Fmt(angle, 1) << " deg\n";
  }

  // Multipath factor on a fresh packet: the paper's per-packet sensitivity
  // proxy (Eq. 11).
  {
    auto probe = simulator.CaptureSession(1, std::nullopt, rng);
    const auto sanitized = core::SanitizePhase(probe, simulator.band());
    const auto mu =
        core::MeasureMultipathFactors(sanitized.front(), simulator.band());
    double mu_min = mu[0], mu_max = mu[0];
    for (double v : mu) {
      mu_min = std::min(mu_min, v);
      mu_max = std::max(mu_max, v);
    }
    ex::PrintBanner(std::cout, "Multipath factor across subcarriers");
    std::cout << "  min " << ex::Fmt(mu_min, 4) << ", max "
              << ex::Fmt(mu_max, 4) << " (single packet)\n";
  }

  // Derive a threshold from held-out empty windows.
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  for (int i = 0; i < 12; ++i) {
    empty_windows.push_back(simulator.CaptureSession(25, std::nullopt, rng));
  }
  detector.CalibrateThreshold(empty_windows);
  std::cout << "threshold = " << ex::Fmt(detector.threshold(), 4) << "\n";

  // Score windows with a person standing at various spots.
  ex::PrintBanner(std::cout, "Detection at test spots");
  std::vector<std::vector<std::string>> rows;
  for (const auto& spot : ex::Grid3x3(link)) {
    propagation::HumanBody body;
    body.position = spot.position;
    const auto window = simulator.CaptureSession(25, body, rng);
    const double score = detector.Score(window);
    rows.push_back({ex::Fmt(spot.position.x, 2) + "," +
                        ex::Fmt(spot.position.y, 2),
                    ex::Fmt(spot.distance_to_rx_m, 2),
                    ex::Fmt(spot.angle_deg, 1), ex::Fmt(score, 4),
                    detector.Detect(window) ? "DETECTED" : "-"});
  }
  // And two empty windows as sanity checks.
  for (int i = 0; i < 2; ++i) {
    const auto window = simulator.CaptureSession(25, std::nullopt, rng);
    rows.push_back({"(empty)", "-", "-", ex::Fmt(detector.Score(window), 4),
                    detector.Detect(window) ? "FALSE-ALARM" : "quiet"});
  }
  ex::PrintTable(std::cout, "person @ (x,y)",
                 {"position", "dist-to-rx", "angle", "score", "decision"},
                 rows);
  return 0;
}
