// Coverage survey: map a link's detection sensitivity over the whole room.
//
// The paper positions itself as "guidelines for infrastructure assessment
// and deployment" — this example is that tool. It sweeps a grid of candidate
// human positions, scores each with the combined detector, and prints an
// ASCII heat map of where a person would (not) be noticed, plus the
// multipath-factor profile that predicts the sensitive subcarriers.
#include <iostream>

#include "core/detector.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

int main() {
  using namespace mulink;
  namespace ex = mulink::experiments;

  const ex::LinkCase link = ex::MakeClassroomLink();
  auto simulator = ex::MakeSimulator(link);
  Rng rng(1234);

  // Calibrate the combined detector and derive its operating threshold.
  const auto calibration = simulator.CaptureSession(400, std::nullopt, rng);
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  auto detector = core::Detector::Calibrate(calibration, simulator.band(),
                                            simulator.array(), config);
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  for (int i = 0; i < 12; ++i) {
    empty_windows.push_back(simulator.CaptureSession(25, std::nullopt, rng));
  }
  detector.CalibrateThreshold(empty_windows);

  ex::PrintBanner(std::cout, "Sensitivity survey: " + link.name);
  std::cout << "threshold " << ex::Fmt(detector.threshold(), 3)
            << "; legend: '#' strong (>4x), '+' detect, '.' marginal, ' ' "
               "blind; T=AP R=receiver\n\n";

  // Sweep a 0.5 m grid across the room (top row = far wall).
  const double step = 0.5;
  for (double y = link.room.depth() - step; y > 0.0; y -= step) {
    std::cout << "  ";
    for (double x = step; x < link.room.width(); x += step) {
      const geometry::Vec2 pos{x, y};
      if (geometry::Distance(pos, link.tx) < step / 2) {
        std::cout << 'T';
        continue;
      }
      if (geometry::Distance(pos, link.rx) < step / 2) {
        std::cout << 'R';
        continue;
      }
      propagation::HumanBody body;
      body.position = pos;
      const double score =
          detector.Score(simulator.CaptureSession(25, body, rng));
      const double ratio = score / detector.threshold();
      std::cout << (ratio > 4.0 ? '#'
                    : ratio > 1.0 ? '+'
                    : ratio > 0.6 ? '.'
                                  : ' ');
    }
    std::cout << "\n";
  }

  // Subcarrier sensitivity profile: which subcarriers the weighting scheme
  // would lean on for this link (large, stable multipath factor).
  ex::PrintBanner(std::cout, "Per-subcarrier multipath factor profile");
  const auto clean = core::SanitizePhase(
      simulator.CaptureSession(200, std::nullopt, rng), simulator.band());
  const auto mu_rows = core::MeasureMultipathFactors(clean, simulator.band());
  const auto weights = core::ComputeSubcarrierWeights(mu_rows);
  double max_w = dsp::Max(weights.weights);
  std::cout << "  subcarrier weights (normalized bars):\n";
  for (std::size_t k = 0; k < weights.weights.size(); ++k) {
    const int bars =
        max_w > 0.0
            ? static_cast<int>(30.0 * weights.weights[k] / max_w + 0.5)
            : 0;
    std::cout << "  f" << (k + 1 < 10 ? " " : "") << k + 1 << " |"
              << std::string(static_cast<std::size_t>(bars), '=') << "\n";
  }
  std::cout << "\nDeployment hint: blind cells mark where to add a second "
               "link; heavily-weighted\nsubcarriers are the ones the "
               "detector will actually watch on this link.\n";
  return 0;
}
