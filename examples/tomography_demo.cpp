// Tomography demo: watch a Radio Tomographic Imaging network track a person
// walking through the classroom, rendered as ASCII frames.
//
// This is the dense-deployment counterpoint to the paper's single adapted
// link (see bench/ext_rti for the quantitative comparison): 8 perimeter
// nodes, 28 links, ellipse-model image inversion.
#include <iostream>

#include "common/rng.h"
#include "core/rti.h"
#include "core/tracker.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

int main() {
  using namespace mulink;
  namespace ex = mulink::experiments;

  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  const double width = lc.room.width(), depth = lc.room.depth();

  const auto nodes = core::PerimeterNodes(width, depth, 8, 0.5);
  core::RtiConfig config;
  config.ellipse_excess_m = 0.3;
  config.pixel_size_m = 0.5;
  const core::RtiImager imager(nodes, width, depth, config);

  auto sim_config = ex::DefaultSimConfig();
  sim_config.interference_entry_prob = 0.0;
  sim_config.slow_gain_drift_db = 0.05;
  std::vector<nic::ChannelSimulator> sims;
  for (const auto& [a, b] : imager.links()) {
    sims.emplace_back(lc.room, nodes[a], nodes[b],
                      wifi::UniformLinearArray(1, kWavelength / 2.0, 0.0),
                      wifi::BandPlan::Intel5300Channel11(), sim_config);
  }

  ex::PrintBanner(std::cout, "RTI tracking demo (8 nodes, 28 links)");
  std::cout << "legend: '#' strong attenuation, '+' medium, '.' weak, "
               "'@' true position, 'o' estimate\n";

  Rng rng(7);
  // Per-link empty profiles.
  std::vector<double> profile_power(sims.size(), 0.0);
  for (std::size_t l = 0; l < sims.size(); ++l) {
    const auto session = sims[l].CaptureSession(30, std::nullopt, rng);
    for (const auto& packet : session) profile_power[l] += packet.TotalPower();
  }

  // The person walks a diagonal across the room; one frame per step. A
  // constant-velocity Kalman tracker smooths the raw per-frame fixes.
  core::PositionTracker tracker;
  const std::vector<geometry::Vec2> trajectory = {
      {1.2, 1.5}, {2.2, 3.0}, {3.0, 4.2}, {3.8, 5.4}, {4.8, 6.8}};
  for (const auto& person : trajectory) {
    std::vector<double> delta(sims.size(), 0.0);
    for (std::size_t l = 0; l < sims.size(); ++l) {
      propagation::HumanBody body;
      body.position = person;
      const auto session = sims[l].CaptureSession(15, body, rng);
      double power = 0.0;
      for (const auto& packet : session) power += packet.TotalPower();
      const double profile_mean = profile_power[l] / 30.0;
      const double occupied_mean = power / 15.0;
      delta[l] =
          std::max(0.0, 10.0 * std::log10(profile_mean / occupied_mean));
    }
    const auto image = imager.Reconstruct(delta);
    const auto estimate = imager.LocateMax(image);
    const double peak = imager.PeakValue(image);
    const auto tracked = tracker.Update(estimate, 1.0);

    std::cout << "\nperson at (" << ex::Fmt(person.x, 1) << ","
              << ex::Fmt(person.y, 1) << "), fix ("
              << ex::Fmt(estimate.x, 1) << "," << ex::Fmt(estimate.y, 1)
              << ") err " << ex::Fmt(geometry::Distance(person, estimate), 2)
              << " m, tracked (" << ex::Fmt(tracked.x, 1) << ","
              << ex::Fmt(tracked.y, 1) << ") err "
              << ex::Fmt(geometry::Distance(person, tracked), 2) << " m\n";
    const auto& grid = imager.grid();
    for (std::size_t iy = grid.ny; iy > 0; --iy) {
      std::cout << "  ";
      for (std::size_t ix = 0; ix < grid.nx; ++ix) {
        const std::size_t p = (iy - 1) * grid.nx + ix;
        const auto c = grid.PixelCenter(p);
        if (geometry::Distance(c, person) < 0.36) {
          std::cout << '@';
        } else if (geometry::Distance(c, estimate) < 0.36) {
          std::cout << 'o';
        } else {
          const double v = peak > 0.0 ? image[p] / peak : 0.0;
          std::cout << (v > 0.7 ? '#' : v > 0.4 ? '+' : v > 0.2 ? '.' : ' ');
        }
      }
      std::cout << "\n";
    }
  }
  return 0;
}
