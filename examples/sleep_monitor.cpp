// Sleep monitor: presence detection + respiration tracking on one link.
//
// Composes the paper's detector (is anyone in the bedroom?) with the
// breath-monitoring extension (what is their respiration rate?) — the
// pipeline its introduction sketches: detect first, then extract
// higher-level context.
#include <iostream>
#include <optional>

#include "core/breath.h"
#include "core/detector.h"
#include "core/engine.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

int main() {
  using namespace mulink;
  namespace ex = mulink::experiments;

  // A quiet bedroom: the classroom geometry without office stressors.
  auto link = ex::MakeClassroomLink();
  link.walker_bases.clear();
  auto sim_config = ex::DefaultSimConfig();
  sim_config.interference_entry_prob = 0.0;
  sim_config.slow_gain_drift_db = 0.05;
  sim_config.human_sway_sigma_m = 0.001;
  sim_config.background_jitter_m = 0.001;
  auto simulator = ex::MakeSimulator(link, sim_config);
  Rng rng(2024);

  // Calibrate presence detection.
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  auto detector = core::Detector::Calibrate(
      simulator.CaptureSession(400, std::nullopt, rng), simulator.band(),
      simulator.array(), config);
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  for (int i = 0; i < 12; ++i) {
    empty_windows.push_back(simulator.CaptureSession(25, std::nullopt, rng));
  }
  detector.CalibrateThreshold(empty_windows);

  // The engine scores every 0.5 s window of each 20 s epoch in one batch on
  // persistent scratch; the epoch's presence verdict is its last decision.
  core::StreamingConfig stream;
  stream.window_packets = 25;
  stream.hop_packets = 25;
  stream.use_hmm = false;
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), {}, stream);

  ex::PrintBanner(std::cout, "Overnight monitoring (20 s epochs)");

  struct Epoch {
    const char* label;
    std::optional<propagation::HumanBody> occupant;
  };
  const auto sleeper = [&](double bpm) {
    propagation::HumanBody body;
    body.position = {3.2, 4.8};  // the bed, ~0.8 m off the link
    body.breathing_amplitude_m = 0.006;
    body.breathing_rate_hz = bpm / 60.0;
    return body;
  };
  const Epoch night[] = {
      {"22:00 room empty", std::nullopt},
      {"23:00 goes to bed (16 bpm)", sleeper(16.0)},
      {"01:00 deep sleep (11 bpm)", sleeper(11.0)},
      {"05:30 light sleep (15 bpm)", sleeper(15.0)},
      {"07:00 up and away", std::nullopt},
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& epoch : night) {
    // One 20 s capture per epoch (1000 packets at 50 pkt/s).
    const auto session = simulator.CaptureSession(1000, epoch.occupant, rng);

    // Presence: batch the whole epoch; the verdict is the last decision.
    const auto& batch =
        engine.ProcessBatch(std::span<const wifi::CsiPacket>(session));
    const bool present = batch.decisions.back().occupied;

    std::string respiration = "-";
    if (present) {
      const auto estimate = core::EstimateBreathing(session, 50.0);
      respiration = estimate.confidence > 3.0
                        ? ex::Fmt(estimate.rate_hz * 60.0, 1) + " bpm"
                        : "moving/irregular";
    }
    rows.push_back({epoch.label, present ? "occupied" : "empty", respiration});
  }
  ex::PrintTable(std::cout, "night log",
                 {"epoch", "presence", "respiration"}, rows);
  std::cout << "Pipeline: the paper's detector gates the respiration "
               "estimator — no breathing\nanalysis runs (or is reported) "
               "while the room is empty.\n";
  return 0;
}
