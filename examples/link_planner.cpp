// Link planner: compare candidate AP placements before deploying.
//
// The paper's closing pitch is "guidelines for optimal deployment and
// parameter configurations". This example evaluates several candidate AP
// positions/heights against a fixed receiver and ranks them by (a) predicted
// sensitivity from the closed-form link model (Eq. 6 over the measured
// multipath factor) and (b) measured detection coverage over a probe grid.
#include <iostream>

#include "core/detector.h"
#include "common/constants.h"
#include "core/link_model.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

int main() {
  using namespace mulink;
  namespace ex = mulink::experiments;

  // The room to cover: room A of the paper's evaluation, RX fixed on a desk.
  const auto base_case = ex::MakePaperCases()[1];  // room A geometry
  const geometry::Vec2 rx = {4.0, 4.9};

  struct Candidate {
    const char* label;
    geometry::Vec2 tx;
    double tx_height;
  };
  const Candidate candidates[] = {
      {"short link, desk AP", {2.0, 4.5}, 1.4},
      {"long link, wall AP", {0.8, 7.8}, 2.2},
      {"diagonal, shelf AP", {1.2, 2.0}, 1.7},
      {"corner-to-center, desk AP", {6.2, 8.2}, 1.3},
  };

  ex::PrintBanner(std::cout, "Link planner: candidate AP placements");

  std::vector<std::vector<std::string>> rows;
  for (const auto& candidate : candidates) {
    ex::LinkCase lc = base_case;
    lc.name = candidate.label;
    lc.tx = candidate.tx;
    lc.rx = rx;
    lc.heights = {candidate.tx_height, 1.1};

    auto simulator = ex::MakeSimulator(lc);
    Rng rng(7);

    // Calibrate a combined detector and an operating threshold.
    const auto calibration = simulator.CaptureSession(300, std::nullopt, rng);
    core::DetectorConfig config;
    config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
    auto detector = core::Detector::Calibrate(calibration, simulator.band(),
                                              simulator.array(), config);
    std::vector<std::vector<wifi::CsiPacket>> empty_windows;
    for (int i = 0; i < 10; ++i) {
      empty_windows.push_back(simulator.CaptureSession(25, std::nullopt, rng));
    }
    detector.CalibrateThreshold(empty_windows);

    // (a) Model-predicted sensitivity: estimate gamma (LOS-to-reflections
    // amplitude ratio) from the traced static paths, then average the
    // Eq. 5 shadowing sensitivity over the superposition phase.
    const auto paths = simulator.StaticPaths();
    const int los_index = propagation::FindLineOfSight(paths);
    double nlos_power = 0.0;
    for (const auto& path : paths) {
      if (path.kind != propagation::PathKind::kLineOfSight) {
        nlos_power += path.gain_at_center * path.gain_at_center;
      }
    }
    const double gamma =
        paths[static_cast<std::size_t>(los_index)].gain_at_center /
        std::max(std::sqrt(nlos_power), 1e-12);
    double predicted_delta_db = 0.0;
    const int phase_samples = 36;
    for (int i = 0; i < phase_samples; ++i) {
      const double phi = 2.0 * kPi * i / phase_samples;
      predicted_delta_db +=
          std::abs(core::ShadowingDeltaDbFromPhase(0.3, gamma, phi));
    }
    predicted_delta_db /= phase_samples;

    // (b) Measured coverage: fraction of probe-grid spots detected.
    int detected = 0, total = 0;
    for (const auto& spot : ex::Grid3x3(lc)) {
      propagation::HumanBody body;
      body.position = spot.position;
      ++total;
      if (detector.Detect(simulator.CaptureSession(25, body, rng))) {
        ++detected;
      }
    }

    rows.push_back({candidate.label,
                    ex::Fmt(geometry::Distance(candidate.tx, rx), 1),
                    ex::Fmt(candidate.tx_height, 1), ex::Fmt(gamma, 2),
                    ex::Fmt(predicted_delta_db, 1),
                    ex::Fmt(100.0 * detected / total, 0) + "%"});
  }

  ex::PrintTable(std::cout, "candidates ranked data",
                 {"placement", "link_m", "AP_h_m", "gamma",
                  "pred |dS| dB", "grid coverage"},
                 rows);
  std::cout << "Reading: gamma is the traced LOS-to-reflections amplitude "
               "ratio; pred |dS| is the\nphase-averaged Eq. 5 sensitivity "
               "to a mid-link blocker; coverage is the measured\nend-to-end "
               "detection rate over a 3x3 probe grid.\n";
  return 0;
}
