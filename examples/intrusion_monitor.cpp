// Intrusion monitor: stream CSI windows and raise entry/exit events.
//
// Plays out a small scenario on the classroom link: the room is quiet, an
// intruder walks in, loiters near the far corner, crosses the link, and
// leaves. The monitor consumes 0.5 s windows (25 packets at 50 pkt/s, the
// paper's saturation point from Fig. 12) and runs a simple two-threshold
// hysteresis state machine on the detector score.
//
// A second act replays the intrusion behind a faulty NIC (dropped frames,
// corrupted subcarriers, one RX chain dying mid-scenario) with the frame
// guard enabled: quarantined frames never reach the window ring, decisions
// continue on the surviving antennas, and the link-health report at the end
// itemizes every fault the guard absorbed.
#include <iostream>
#include <optional>

#include "core/detector.h"
#include "core/engine.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "nic/frame_guard.h"
#include "obs/export.h"

int main() {
  using namespace mulink;
  namespace ex = mulink::experiments;

  const ex::LinkCase link = ex::MakeClassroomLink();
  auto simulator = ex::MakeSimulator(link);
  Rng rng(99);

  // Calibrate and pick thresholds from empty-room windows.
  const auto calibration = simulator.CaptureSession(400, std::nullopt, rng);
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  auto detector = core::Detector::Calibrate(calibration, simulator.band(),
                                            simulator.array(), config);
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  std::vector<double> empty_scores;
  for (int i = 0; i < 16; ++i) {
    empty_windows.push_back(simulator.CaptureSession(25, std::nullopt, rng));
    empty_scores.push_back(detector.Score(empty_windows.back()));
  }
  detector.CalibrateThreshold(empty_windows);
  const double enter_threshold = detector.threshold();

  // Hand the calibrated detector to the sensing engine: it owns the window
  // ring and every scratch buffer, so the monitoring loop below allocates
  // nothing per window.
  core::StreamingConfig stream;
  stream.window_packets = 25;
  stream.hop_packets = 25;
  stream.use_hmm = false;  // the hysteresis below does the smoothing
  // Guarded ingest costs one inspection per frame and is bit-identical to
  // unguarded ingest on a clean stream — so act one runs guarded too.
  stream.guard_enabled = true;
  // Adaptive calibration: quiet windows keep the profile posterior warm and
  // the recalibration ladder re-baselines in place if the room drifts.
  stream.calibration.enabled = true;
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), empty_scores, stream);
  // Hysteresis is temporal rather than amplitude-based: entry fires on one
  // hot window, clearing requires 3 consecutive windows back below the
  // threshold (occasional empty-room windows graze it, so a single quiet
  // window is not proof the room emptied).
  const double exit_threshold = enter_threshold;

  ex::PrintBanner(std::cout, "Intrusion monitor: " + link.name);
  std::cout << "enter >= " << ex::Fmt(enter_threshold, 3)
            << " (1 window); clear < " << ex::Fmt(exit_threshold, 3)
            << " (3 consecutive windows)\n\n";

  // Script: (seconds, position or empty). 2 windows per second.
  struct Phase {
    const char* label;
    std::optional<geometry::Vec2> position;
    int windows;
  };
  const Phase script[] = {
      {"room empty", std::nullopt, 6},
      {"intruder enters far corner", geometry::Vec2{1.0, 6.5}, 4},
      {"loiters mid-room", geometry::Vec2{2.2, 5.4}, 4},
      {"approaches the link", geometry::Vec2{3.0, 4.6}, 4},
      {"crosses the LOS", geometry::Vec2{3.0, 4.0}, 4},
      {"walks away", geometry::Vec2{4.8, 6.6}, 4},
      {"room empty again", std::nullopt, 8},
  };

  bool occupied = false;
  int quiet_streak = 0;  // debounce: clear only after 3 quiet windows
  int window_index = 0;
  for (const auto& phase : script) {
    for (int i = 0; i < phase.windows; ++i, ++window_index) {
      std::optional<propagation::HumanBody> human;
      if (phase.position.has_value()) {
        propagation::HumanBody body;
        body.position = *phase.position;
        human = body;
      }
      const auto window = simulator.CaptureSession(25, human, rng);
      const auto& batch =
          engine.ProcessBatch(std::span<const wifi::CsiPacket>(window));
      const double score = batch.decisions.back().score;

      const char* event = "";
      if (!occupied && score >= enter_threshold) {
        occupied = true;
        quiet_streak = 0;
        event = "  << PRESENCE DETECTED";
      } else if (occupied) {
        quiet_streak = score < exit_threshold ? quiet_streak + 1 : 0;
        if (quiet_streak >= 3) {
          occupied = false;
          quiet_streak = 0;
          event = "  << room clear";
        }
      }
      std::cout << "t=" << ex::Fmt(window_index * 0.5, 1) << "s  ["
                << (occupied ? "OCCUPIED" : "  idle  ") << "]  score "
                << ex::Fmt(score, 3) << "  (" << phase.label << ")" << event
                << "\n";
      // Live health/metrics line every 2 s, the way a deployed monitor
      // would emit a heartbeat (counters come from the engine's per-link
      // observability shard; all zeros when obs is compiled out).
      if (window_index % 4 == 3) {
        std::cout << "        [obs] "
                  << obs::OneLineSummary(engine.Metrics(0)) << "\n";
      }
    }
  }
  std::cout << "\nNote: sub-second reaction (one 0.5 s window) matches the "
               "paper's Fig. 12 finding\nthat detection saturates with ~25 "
               "packets at 50 packets/second.\n";

  // ---- Act two: the same monitor behind a faulty NIC. --------------------
  ex::PrintBanner(std::cout, "Act two: faulty NIC (guard enabled)");
  auto faulty_config = ex::DefaultSimConfig();
  faulty_config.faults.enabled = true;
  faulty_config.faults.seed = 7;
  faulty_config.faults.drop_prob = 0.05;     // 5% of frames never arrive
  faulty_config.faults.corrupt_prob = 0.01;  // 1% carry NaN/saturated cells
  faulty_config.faults.dead_antenna = 2;     // chain 2 dies...
  faulty_config.faults.dead_from_packet = 150;  // ...3 s into the scenario
  auto faulty = ex::MakeSimulator(link, faulty_config);

  // Fresh link state (ring, guard counters, belief); the calibrated
  // detector and its warm buffers are kept.
  engine.Reset(0);
  const Phase faulty_script[] = {
      {"room empty", std::nullopt, 6},
      {"intruder loiters mid-room", geometry::Vec2{2.2, 5.4}, 8},
      {"room empty again", std::nullopt, 6},
  };
  window_index = 0;
  for (const auto& phase : faulty_script) {
    for (int i = 0; i < phase.windows; ++i, ++window_index) {
      std::optional<propagation::HumanBody> human;
      if (phase.position.has_value()) {
        propagation::HumanBody body;
        body.position = *phase.position;
        human = body;
      }
      const auto burst = faulty.CaptureSession(25, human, rng);
      const auto& batch =
          engine.ProcessBatch(std::span<const wifi::CsiPacket>(burst));
      // Dropped/quarantined frames mean a burst does not always complete a
      // window; decisions fire whenever 25 usable frames have accumulated.
      for (const auto& decision : batch.decisions) {
        std::cout << "t=" << ex::Fmt(decision.timestamp_s, 1) << "s  ["
                  << (decision.occupied ? "OCCUPIED" : "  idle  ")
                  << "]  score " << ex::Fmt(decision.score, 3)
                  << (decision.degraded ? "  [degraded: dead RX chain]" : "")
                  << "  (" << phase.label << ")\n";
      }
    }
  }

  const nic::LinkHealth health = engine.Health(0);
  std::cout << "\nlink health: " << nic::ToString(nic::Status(health)) << "\n"
            << "  " << health.received << " received / " << health.accepted
            << " accepted / " << health.repaired << " repaired / "
            << health.quarantined << " quarantined / " << health.missing
            << " missing\n";
  for (std::size_t f = 0; f < nic::kNumFrameFaults; ++f) {
    if (health.fault_counts[f] == 0) continue;
    std::cout << "  " << nic::ToString(static_cast<nic::FrameFault>(1u << f))
              << ": " << health.fault_counts[f] << "\n";
  }
  std::cout << "  degraded decisions: " << health.degraded_decisions << "\n";
  std::cout << "  calibration: " << nic::ToString(health.calibration_state)
            << " (" << health.quiet_windows << " quiet windows, "
            << health.profile_swaps << " profile swaps)\n";
  std::cout << "  metrics: " << obs::OneLineSummary(engine.Metrics(0))
            << "\n";
  return 0;
}
