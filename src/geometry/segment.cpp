#include "geometry/segment.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mulink::geometry {

double ClosestParameter(Vec2 p, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len_sq = d.NormSq();
  if (len_sq == 0.0) return 0.0;  // degenerate segment
  const double t = (p - s.a).Dot(d) / len_sq;
  return std::clamp(t, 0.0, 1.0);
}

double DistancePointToSegment(Vec2 p, const Segment& s) {
  return Distance(p, s.PointAt(ClosestParameter(p, s)));
}

std::optional<Vec2> Intersect(const Segment& s1, const Segment& s2) {
  const Vec2 r = s1.b - s1.a;
  const Vec2 q = s2.b - s2.a;
  const double denom = r.Cross(q);
  if (std::abs(denom) < 1e-15) return std::nullopt;  // parallel or degenerate
  const Vec2 diff = s2.a - s1.a;
  const double t = diff.Cross(q) / denom;
  const double u = diff.Cross(r) / denom;
  const double eps = 1e-12;
  if (t < -eps || t > 1.0 + eps || u < -eps || u > 1.0 + eps) {
    return std::nullopt;
  }
  return s1.PointAt(std::clamp(t, 0.0, 1.0));
}

Vec2 MirrorAcross(Vec2 p, const Segment& wall) {
  const Vec2 d = wall.b - wall.a;
  const double len_sq = d.NormSq();
  MULINK_REQUIRE(len_sq > 0.0, "MirrorAcross: degenerate wall segment");
  const double t = (p - wall.a).Dot(d) / len_sq;  // foot on the infinite line
  const Vec2 foot = wall.a + d * t;
  return foot * 2.0 - p;
}

}  // namespace mulink::geometry
