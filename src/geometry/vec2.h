// Minimal 2-D vector type for the planar ray-bouncing model.
//
// The paper's analysis (Sec. III-B) is a planar one-bounce model; the
// simulator works in 2-D as well, with antenna/AP heights folded into an
// effective per-case path-gain offset (see experiments::Scenario).
#pragma once

#include <cmath>

namespace mulink::geometry {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2&) const = default;

  double Norm() const { return std::hypot(x, y); }
  constexpr double NormSq() const { return x * x + y * y; }
  constexpr double Dot(Vec2 o) const { return x * o.x + y * o.y; }
  // z-component of the 3-D cross product; sign gives the side of a line.
  constexpr double Cross(Vec2 o) const { return x * o.y - y * o.x; }

  Vec2 Normalized() const {
    const double n = Norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{0.0, 0.0};
  }
  // Counter-clockwise perpendicular.
  constexpr Vec2 Perp() const { return {-y, x}; }
};

inline constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double Distance(Vec2 a, Vec2 b) { return (a - b).Norm(); }

// Angle of the direction a->b measured from +x axis, radians in (-pi, pi].
inline double DirectionAngle(Vec2 a, Vec2 b) {
  const Vec2 d = b - a;
  return std::atan2(d.y, d.x);
}

}  // namespace mulink::geometry
