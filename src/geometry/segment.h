// Line segments and point/segment predicates used by the ray tracer and the
// human shadowing model.
#pragma once

#include <optional>

#include "geometry/vec2.h"

namespace mulink::geometry {

struct Segment {
  Vec2 a;
  Vec2 b;

  double Length() const { return Distance(a, b); }
  Vec2 Direction() const { return (b - a).Normalized(); }
  Vec2 Midpoint() const { return (a + b) * 0.5; }

  // Point at parameter t in [0,1].
  Vec2 PointAt(double t) const { return a + (b - a) * t; }
};

// Shortest distance from point p to the segment (not the infinite line).
double DistancePointToSegment(Vec2 p, const Segment& s);

// Parameter t in [0,1] of the point on the segment closest to p.
double ClosestParameter(Vec2 p, const Segment& s);

// Intersection point of two segments if they properly intersect (including
// endpoints touching), nullopt for parallel/disjoint segments.
std::optional<Vec2> Intersect(const Segment& s1, const Segment& s2);

// Mirror image of point p across the infinite line through the segment.
Vec2 MirrorAcross(Vec2 p, const Segment& wall);

}  // namespace mulink::geometry
