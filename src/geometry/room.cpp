#include "geometry/room.h"

#include "common/assert.h"

namespace mulink::geometry {

Room Room::Rectangular(double width, double depth,
                       double reflection_coefficient) {
  MULINK_REQUIRE(width > 0.0 && depth > 0.0,
                 "Room::Rectangular: dimensions must be positive");
  MULINK_REQUIRE(reflection_coefficient >= 0.0 && reflection_coefficient <= 1.0,
                 "Room::Rectangular: reflection coefficient must be in [0,1]");
  Room room;
  room.width_ = width;
  room.depth_ = depth;
  const Vec2 sw{0.0, 0.0}, se{width, 0.0}, ne{width, depth}, nw{0.0, depth};
  const auto add = [&](Vec2 a, Vec2 b, const char* name) {
    Wall wall;
    wall.segment = {a, b};
    wall.reflection_coefficient = reflection_coefficient;
    wall.name = name;
    room.AddWall(std::move(wall));
  };
  add(sw, se, "south");
  add(se, ne, "east");
  add(ne, nw, "north");
  add(nw, sw, "west");
  return room;
}

bool Room::Contains(Vec2 p, double margin) const {
  return p.x >= margin && p.x <= width_ - margin && p.y >= margin &&
         p.y <= depth_ - margin;
}

}  // namespace mulink::geometry
