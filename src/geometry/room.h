// Rectangular room with material-tagged walls, plus point scatterers that
// stand in for furniture. The paper's testbed rooms (a 6m x 8m classroom for
// the characterization study and two furnished offices for the evaluation)
// are instances of this type, constructed in experiments::Scenario.
#pragma once

#include <string>
#include <vector>

#include "geometry/segment.h"
#include "geometry/vec2.h"

namespace mulink::geometry {

struct Wall {
  Segment segment;
  // Amplitude reflection coefficient in [0, 1] (concrete ~0.4–0.7, drywall
  // ~0.2–0.4 at 2.4 GHz, per Rappaport [22] Table 4.x magnitudes).
  double reflection_coefficient = 0.4;
  // Power loss (dB) of a ray crossing the wall (drywall ~3–6 dB, brick
  // ~8–12 dB, concrete ~12–20 dB at 2.4 GHz). Applied by
  // propagation::ApplyWallTransmission for interior partitions and
  // through-wall scenarios.
  double transmission_loss_db = 8.0;
  std::string name;
};

// A point scatterer standing in for a furniture item / metal cabinet. Its
// path contributes TX -> scatterer -> RX with a bistatic radar-equation
// amplitude derived from the radar cross section below.
struct Scatterer {
  Vec2 position;
  double cross_section_m2 = 0.3;
  std::string name;
};

class Room {
 public:
  // Axis-aligned rectangular room [0,width] x [0,depth] with a uniform wall
  // reflection coefficient.
  static Room Rectangular(double width, double depth,
                          double reflection_coefficient = 0.4);

  Room() = default;

  void AddWall(Wall wall) { walls_.push_back(std::move(wall)); }
  void AddScatterer(Scatterer s) { scatterers_.push_back(std::move(s)); }

  const std::vector<Wall>& walls() const { return walls_; }
  const std::vector<Scatterer>& scatterers() const { return scatterers_; }

  double width() const { return width_; }
  double depth() const { return depth_; }

  bool Contains(Vec2 p, double margin = 0.0) const;

 private:
  std::vector<Wall> walls_;
  std::vector<Scatterer> scatterers_;
  double width_ = 0.0;
  double depth_ = 0.0;
};

}  // namespace mulink::geometry
