// Fresnel-zone geometry for the human shadowing model.
//
// The paper (citing Savazzi et al. [19]) notes that the LOS "sensitivity
// region" of a link is confined to 5–6 wavelengths around the LOS path —
// i.e. the first few Fresnel zones. The shadowing attenuation applied by
// propagation::HumanBody is a function of the normalized Fresnel clearance
// computed here.
#pragma once

#include "geometry/segment.h"
#include "geometry/vec2.h"

namespace mulink::geometry {

// Radius of the n-th Fresnel zone at the point along the TX–RX segment
// closest to `p` (d1/d2 split), for wavelength lambda.
//   r_n = sqrt(n * lambda * d1 * d2 / (d1 + d2))
double FresnelRadiusAt(const Segment& link, Vec2 p, double wavelength,
                       int zone = 1);

// Signed-free clearance ratio: (perpendicular distance of p from the link
// line) / (first Fresnel radius at that point). 0 on the LOS line, 1 on the
// first Fresnel boundary. Returns +inf when p projects outside the segment
// by more than its own Fresnel radius would cover.
double FresnelClearanceRatio(const Segment& link, Vec2 p, double wavelength);

}  // namespace mulink::geometry
