#include "geometry/fresnel.h"

#include <cmath>
#include <limits>

#include "common/assert.h"

namespace mulink::geometry {

double FresnelRadiusAt(const Segment& link, Vec2 p, double wavelength,
                       int zone) {
  MULINK_REQUIRE(wavelength > 0.0, "FresnelRadiusAt: wavelength must be > 0");
  MULINK_REQUIRE(zone >= 1, "FresnelRadiusAt: zone must be >= 1");
  const double total = link.Length();
  MULINK_REQUIRE(total > 0.0, "FresnelRadiusAt: degenerate link");
  const double t = ClosestParameter(p, link);
  const double d1 = t * total;
  const double d2 = (1.0 - t) * total;
  if (d1 <= 0.0 || d2 <= 0.0) return 0.0;  // at an endpoint the zone pinches
  return std::sqrt(static_cast<double>(zone) * wavelength * d1 * d2 / total);
}

double FresnelClearanceRatio(const Segment& link, Vec2 p, double wavelength) {
  const double t = ClosestParameter(p, link);
  if (t <= 0.0 || t >= 1.0) {
    // Projects onto an endpoint: the person stands beyond the TX or RX, where
    // blocking the LOS is geometrically impossible.
    return std::numeric_limits<double>::infinity();
  }
  const double radius = FresnelRadiusAt(link, p, wavelength);
  if (radius <= 0.0) return std::numeric_limits<double>::infinity();
  const double dist = DistancePointToSegment(p, link);
  return dist / radius;
}

}  // namespace mulink::geometry
