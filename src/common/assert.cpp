#include "common/assert.h"

#include <sstream>

namespace mulink::detail {

void ContractFailure(const char* kind, const char* expr, const char* file,
                     int line, const std::string& message) {
  std::ostringstream oss;
  oss << "mulink " << kind << " failed: (" << expr << ") at " << file << ":"
      << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  if (kind == std::string("precondition")) {
    throw PreconditionError(oss.str());
  }
  throw InvariantError(oss.str());
}

}  // namespace mulink::detail
