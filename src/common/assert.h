// Contract-checking macros for mulink.
//
// MULINK_ASSERT checks an internal invariant; MULINK_REQUIRE validates a
// caller-supplied argument (precondition). Both throw, so failures surface in
// tests and long-running experiment harnesses instead of silently corrupting
// results. They are always on: this library powers measurement reproduction,
// where a wrong number is worse than a slow one.
#pragma once

#include <string>

#include "common/error.h"

namespace mulink::detail {

[[noreturn]] void ContractFailure(const char* kind, const char* expr,
                                  const char* file, int line,
                                  const std::string& message);

}  // namespace mulink::detail

#define MULINK_ASSERT(expr)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::mulink::detail::ContractFailure("assertion", #expr, __FILE__,        \
                                        __LINE__, "");                       \
    }                                                                        \
  } while (false)

#define MULINK_ASSERT_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::mulink::detail::ContractFailure("assertion", #expr, __FILE__,        \
                                        __LINE__, (msg));                    \
    }                                                                        \
  } while (false)

#define MULINK_REQUIRE(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::mulink::detail::ContractFailure("precondition", #expr, __FILE__,     \
                                        __LINE__, (msg));                    \
    }                                                                        \
  } while (false)

// Debug-only invariant check for per-packet/per-element hot loops where even
// the predicate's evaluation is a measurable cost. In NDEBUG builds
// (Release / RelWithDebInfo) the expression is parsed but never evaluated —
// `sizeof` keeps it type-checked with zero codegen and zero side effects —
// so the check compiles out cleanly (tests/common_assert_test.cpp pins both
// behaviours). Anything guarding a decision or an external input stays on
// MULINK_ASSERT / MULINK_REQUIRE: for library results, wrong is worse than
// slow.
#if defined(NDEBUG)
#define MULINK_DASSERT(expr)                                                 \
  do {                                                                       \
    (void)sizeof((expr) ? 1 : 0);                                            \
  } while (false)
#else
#define MULINK_DASSERT(expr) MULINK_ASSERT(expr)
#endif
