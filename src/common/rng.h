// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component of the simulator (noise, human sway, background
// dynamics, workload sampling) draws from an explicitly seeded Rng so that an
// entire measurement campaign is reproducible bit-for-bit. There is no global
// generator; callers thread Rng instances (or children forked via Fork()) to
// wherever randomness is needed.
#pragma once

#include <cstdint>
#include <vector>

namespace mulink {

// PCG32 (O'Neill, pcg-random.org, minimal variant). Small, fast, and with a
// stream parameter so independent child generators can be forked without
// correlation — std::mt19937 cannot cheaply do that.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  // Raw 32 uniform bits.
  std::uint32_t NextU32();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi);

  // Standard normal via Box–Muller (cached pair).
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // An independent child generator. Each call yields a distinct stream.
  Rng Fork();

  // Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> Permutation(std::size_t n);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
  std::uint64_t forks_ = 0;
};

}  // namespace mulink
