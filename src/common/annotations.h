// Compile-time contract annotations: hot-path markers and Clang
// thread-safety capabilities (DESIGN.md §16).
//
// Two annotation families live here:
//
//  * MULINK_HOT marks a function as part of the per-decision hot path.
//    tools/mulink-analyze treats every MULINK_HOT function — and everything
//    it reaches through calls inside the hot-path directories — as a
//    no-allocation zone (rule hot-path-alloc), superseding the directory-
//    granular token scan in tools/mulink-lint. On GCC/Clang it also maps to
//    [[gnu::hot]] so the optimizer groups the marked functions.
//
//  * The MULINK_CAPABILITY / MULINK_GUARDED_BY / MULINK_REQUIRES /
//    MULINK_ACQUIRE / MULINK_RELEASE family wires Clang's -Wthread-safety
//    analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
//    through the concurrency layer. On Clang with MULINK_STRICT the build
//    runs -Werror=thread-safety, so touching a guarded field without its
//    capability is a compile error; on every other compiler the macros
//    expand to nothing and the code is unchanged.
//
// Most of mulink's cross-thread state is not mutex-protected — it is
// OWNED: shard state belongs to the shard's worker thread, routing
// counters to the demux thread, a link's calibrator to whichever thread
// is driving that link's decisions. ThreadRole below models exactly that
// discipline as a phantom capability: the owning loop acquires the role
// once (ScopedRole), every function touching the owned state REQUIRES it,
// and callbacks that provably run under the role re-assert it
// (AssertHeld). The capability never exists at runtime — no lock, no
// atomic, no cost — but Clang now proves that, say, ServeCore::Stats()
// cannot silently grow a read of worker-owned roster state without either
// holding the role or carrying an explicit do-not-analyze waiver.
#pragma once

#include <mutex>

// ---------------------------------------------------------------------------
// Hot-path marker (consumed by tools/mulink-analyze, rule hot-path-alloc).
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define MULINK_HOT [[gnu::hot]]
#else
#define MULINK_HOT
#endif

// ---------------------------------------------------------------------------
// Clang thread-safety capability attributes (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MULINK_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MULINK_THREAD_ANNOTATION
#define MULINK_THREAD_ANNOTATION(x)  // not Clang: expands to nothing
#endif

#define MULINK_CAPABILITY(name) MULINK_THREAD_ANNOTATION(capability(name))
#define MULINK_SCOPED_CAPABILITY MULINK_THREAD_ANNOTATION(scoped_lockable)
#define MULINK_GUARDED_BY(x) MULINK_THREAD_ANNOTATION(guarded_by(x))
#define MULINK_PT_GUARDED_BY(x) MULINK_THREAD_ANNOTATION(pt_guarded_by(x))
#define MULINK_REQUIRES(...) \
  MULINK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MULINK_ACQUIRE(...) \
  MULINK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MULINK_RELEASE(...) \
  MULINK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MULINK_TRY_ACQUIRE(...) \
  MULINK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MULINK_EXCLUDES(...) \
  MULINK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MULINK_ASSERT_CAPABILITY(x) \
  MULINK_THREAD_ANNOTATION(assert_capability(x))
#define MULINK_RETURN_CAPABILITY(x) MULINK_THREAD_ANNOTATION(lock_returned(x))
#define MULINK_NO_THREAD_SAFETY_ANALYSIS \
  MULINK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mulink {

// Phantom capability for single-owner state. Acquire/Release generate no
// code; they exist so Clang's analysis can watch the ownership hand-off.
// One ThreadRole instance per ownership domain (e.g. a serving shard's
// worker role, the demux thread's producer role).
class MULINK_CAPABILITY("role") ThreadRole {
 public:
  // Copy/move keep the host object (LinkCalibrator, shard slabs) regular;
  // a copied role is a fresh capability for the copied owner's state.
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) {}
  ThreadRole& operator=(const ThreadRole&) { return *this; }

  void Acquire() MULINK_ACQUIRE() {}
  void Release() MULINK_RELEASE() {}
  // For callbacks that provably run under the role but whose enclosing
  // lambda hides the acquisition from the analysis (it treats a lambda
  // body as a fresh function with no capabilities held).
  void AssertHeld() const MULINK_ASSERT_CAPABILITY(this) {}
};

// RAII role acquisition for an owning loop's scope.
class MULINK_SCOPED_CAPABILITY ScopedRole {
 public:
  explicit ScopedRole(ThreadRole& role) MULINK_ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~ScopedRole() MULINK_RELEASE() { role_.Release(); }
  ScopedRole(const ScopedRole&) = delete;
  ScopedRole& operator=(const ScopedRole&) = delete;

 private:
  ThreadRole& role_;
};

// std::mutex with the capability attribute Clang's analysis needs —
// GUARDED_BY must name an annotated type, and the std type is not one.
// Same codegen as the raw mutex everywhere.
class MULINK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MULINK_ACQUIRE() { mu_.lock(); }
  void Unlock() MULINK_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock for Mutex (std::lock_guard cannot carry the annotations).
class MULINK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MULINK_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MULINK_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace mulink
