// Exception hierarchy for mulink.
#pragma once

#include <stdexcept>
#include <string>

namespace mulink {

// Base class for all library-raised errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

// An internal invariant did not hold (a library bug).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

// A numerical routine failed to converge or produced an unusable result.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

}  // namespace mulink
