#include "common/constants.h"

#include <cmath>

#include "common/assert.h"

namespace mulink {

double DbToPowerRatio(double db) { return std::pow(10.0, db / 10.0); }

double PowerRatioToDb(double ratio) {
  MULINK_REQUIRE(ratio > 0.0, "power ratio must be positive");
  return 10.0 * std::log10(ratio);
}

double DbToAmplitudeRatio(double db) { return std::pow(10.0, db / 20.0); }

double AmplitudeRatioToDb(double ratio) {
  MULINK_REQUIRE(ratio > 0.0, "amplitude ratio must be positive");
  return 20.0 * std::log10(ratio);
}

}  // namespace mulink
