#include "common/rng.h"

#include <cmath>

#include "common/assert.h"
#include "common/constants.h"

namespace mulink {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

std::uint32_t Rng::NextU32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::NextDouble() {
  // 53 random bits -> [0, 1).
  const std::uint64_t hi = NextU32();
  const std::uint64_t lo = NextU32();
  const std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  MULINK_REQUIRE(lo <= hi, "Uniform: lo must be <= hi");
  return lo + (hi - lo) * NextDouble();
}

int Rng::UniformInt(int lo, int hi) {
  MULINK_REQUIRE(lo <= hi, "UniformInt: lo must be <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(
                  static_cast<std::uint64_t>(NextDouble() * static_cast<double>(span)) %
                  span);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * kPi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * kPi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  MULINK_REQUIRE(stddev >= 0.0, "Gaussian: stddev must be non-negative");
  return mean + stddev * NextGaussian();
}

Rng Rng::Fork() {
  ++forks_;
  // Child seed mixes parent entropy; child stream mixes the fork counter so
  // repeated forks are independent.
  const std::uint64_t child_seed =
      (static_cast<std::uint64_t>(NextU32()) << 32) | NextU32();
  return Rng(child_seed, (inc_ >> 1) ^ (forks_ * 0x9E3779B97F4A7C15ULL));
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        UniformInt(0, static_cast<int>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace mulink
