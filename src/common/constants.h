// Physical constants and the 802.11n channel plan used throughout the paper.
//
// The testbed in the paper operates at 2.4 GHz channel 11 with an Intel 5300
// NIC, whose CSI Tool reports 30 subcarriers out of the 56 occupied HT20
// subcarriers. Footnote 1 of the paper gives the exact index map, reproduced
// in kIntel5300SubcarrierIndices below.
#pragma once

#include <array>
#include <complex>

namespace mulink {

using Complex = std::complex<double>;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kSpeedOfLight = 2.99792458e8;  // m/s

// 802.11 channel 11 center frequency (2.4 GHz ISM band).
inline constexpr double kChannel11CenterHz = 2.462e9;

// HT20 OFDM subcarrier spacing: 20 MHz / 64.
inline constexpr double kSubcarrierSpacingHz = 312.5e3;

// Wavelength at the channel 11 center frequency (~12.18 cm).
inline constexpr double kWavelength = kSpeedOfLight / kChannel11CenterHz;

// Number of subcarriers the Intel 5300 CSI Tool reports per (TX,RX) stream.
inline constexpr int kNumSubcarriers = 30;

// Subcarrier indices reported by the Intel 5300 CSI Tool for HT20
// (paper footnote 1; also the CSI Tool documentation for grouping Ng=2).
inline constexpr std::array<int, kNumSubcarriers> kIntel5300SubcarrierIndices =
    {-28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
     1,   3,   5,   7,   9,   11,  13,  15,  17,  19,  21, 23, 25, 27, 28};

// Absolute RF frequency of the k-th reported subcarrier (0-based position in
// kIntel5300SubcarrierIndices).
constexpr double SubcarrierFrequencyHz(int position) {
  return kChannel11CenterHz +
         kSubcarrierSpacingHz *
             static_cast<double>(kIntel5300SubcarrierIndices[
                 static_cast<std::size_t>(position)]);
}

// dB <-> linear power helpers.
double DbToPowerRatio(double db);
double PowerRatioToDb(double ratio);
double DbToAmplitudeRatio(double db);
double AmplitudeRatioToDb(double ratio);

inline constexpr double DegToRad(double deg) { return deg * kPi / 180.0; }
inline constexpr double RadToDeg(double rad) { return rad * 180.0 / kPi; }

}  // namespace mulink
