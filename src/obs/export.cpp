#include "obs/export.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mulink::obs {

namespace {

// JSON-safe number: finite values print as-is, non-finite as 0 (the trace
// and metrics schemas promise plain numbers).
double Finite(double v) { return std::isfinite(v) ? v : 0.0; }

Stage StageAt(std::size_t i) { return static_cast<Stage>(i); }

std::string FmtNs(double ns) {
  std::ostringstream os;
  os << std::fixed;
  if (ns >= 1e6) {
    os << std::setprecision(2) << ns / 1e6 << " ms";
  } else if (ns >= 1e3) {
    os << std::setprecision(1) << ns / 1e3 << " us";
  } else {
    os << std::setprecision(0) << ns << " ns";
  }
  return os.str();
}

}  // namespace

void TableSink::Consume(const Registry& registry) {
  WriteMetricsTable(out_, registry);
}

void JsonSink::Consume(const Registry& registry) {
  WriteMetricsJson(out_, registry);
}

void WriteMetricsTable(std::ostream& out, const Registry& registry) {
  if (!kEnabled) {
    out << "metrics: observability subsystem compiled out (-DMULINK_OBS=OFF)\n";
    return;
  }
  out << "metrics:\n";
  bool any_counter = false;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto counter = static_cast<Counter>(i);
    if (registry.Get(counter) == 0) continue;
    any_counter = true;
    out << "  " << std::left << std::setw(24) << ToString(counter)
        << std::right << std::setw(12) << registry.Get(counter) << "\n";
  }
  if (!any_counter) out << "  (no counters recorded)\n";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const auto gauge = static_cast<Gauge>(i);
    if (!registry.GaugeSet(gauge)) continue;
    out << "  " << std::left << std::setw(24) << ToString(gauge) << std::right
        << std::setw(12) << std::fixed << std::setprecision(4)
        << registry.Get(gauge) << "\n";
  }
  bool any_stage = false;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const auto& h = registry.StageLatency(StageAt(i));
    if (h.count == 0) continue;
    if (!any_stage) {
      any_stage = true;
      out << "stages:" << std::left << std::setw(16) << "" << std::right
          << std::setw(10) << "count" << std::setw(12) << "total"
          << std::setw(12) << "mean" << std::setw(12) << "p50"
          << std::setw(12) << "p95" << std::setw(12) << "max" << "\n";
    }
    out << "  " << std::left << std::setw(21) << ToString(StageAt(i))
        << std::right << std::setw(10) << h.count << std::setw(12)
        << FmtNs(h.total_ns) << std::setw(12) << FmtNs(h.MeanNs())
        << std::setw(12) << FmtNs(h.ApproxQuantileNs(0.5)) << std::setw(12)
        << FmtNs(h.ApproxQuantileNs(0.95)) << std::setw(12) << FmtNs(h.max_ns)
        << "\n";
  }
  if (!any_stage) out << "stages: (no stage timings recorded)\n";
}

void WriteMetricsJson(std::ostream& out, const Registry& registry) {
  out << "{\n  \"obs_enabled\": " << (kEnabled ? "true" : "false")
      << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto counter = static_cast<Counter>(i);
    out << (i == 0 ? "" : ", ") << "\"" << ToString(counter)
        << "\": " << registry.Get(counter);
  }
  out << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const auto gauge = static_cast<Gauge>(i);
    out << (i == 0 ? "" : ", ") << "\"" << ToString(gauge)
        << "\": " << Finite(registry.Get(gauge));
  }
  out << "},\n  \"stages\": {\n";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const auto& h = registry.StageLatency(StageAt(i));
    out << "    \"" << ToString(StageAt(i)) << "\": {\"count\": " << h.count
        << ", \"total_ns\": " << Finite(h.total_ns)
        << ", \"mean_ns\": " << Finite(h.MeanNs())
        << ", \"p50_ns\": " << Finite(h.ApproxQuantileNs(0.5))
        << ", \"p95_ns\": " << Finite(h.ApproxQuantileNs(0.95))
        << ", \"min_ns\": " << Finite(h.min_ns)
        << ", \"max_ns\": " << Finite(h.max_ns) << ", \"buckets\": [";
    for (std::size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      out << (b == 0 ? "" : ", ") << h.buckets[b];
    }
    out << "]}" << (i + 1 < kNumStages ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

void WriteLinkHealthJson(std::ostream& out, const nic::LinkHealth& health) {
  out << "{\n  \"status\": \"" << nic::ToString(nic::Status(health))
      << "\",\n  \"received\": " << health.received
      << ",\n  \"accepted\": " << health.accepted
      << ",\n  \"repaired\": " << health.repaired
      << ",\n  \"quarantined\": " << health.quarantined
      << ",\n  \"missing\": " << health.missing << ",\n  \"faults\": {";
  for (std::size_t f = 0; f < nic::kNumFrameFaults; ++f) {
    const auto fault = static_cast<nic::FrameFault>(1u << f);
    out << (f == 0 ? "" : ", ") << "\"" << nic::ToString(fault)
        << "\": " << health.fault_counts[f];
  }
  out << "},\n  \"dead_antenna_mask\": " << health.dead_antenna_mask
      << ",\n  \"degraded\": " << (health.degraded ? "true" : "false")
      << ",\n  \"degraded_decisions\": " << health.degraded_decisions
      << ",\n  \"profile_drift\": " << (health.profile_drift ? "true" : "false")
      << ",\n  \"empty_score_ewma\": " << Finite(health.empty_score_ewma)
      << ",\n  \"calibration_state\": \""
      << nic::ToString(health.calibration_state) << "\""
      << ",\n  \"calibration_state_id\": "
      << static_cast<unsigned>(health.calibration_state)
      << ",\n  \"quiet_windows\": " << health.quiet_windows
      << ",\n  \"profile_swaps\": " << health.profile_swaps
      << ",\n  \"adaptive_threshold\": " << Finite(health.adaptive_threshold)
      << "\n}\n";
}

void WriteChromeTrace(std::ostream& out, std::span<const TraceEvent> events) {
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    out << "  {\"name\": \"" << ToString(e.stage)
        << "\", \"cat\": \"mulink\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
        << e.tid << ", \"ts\": " << Finite(e.ts_us)
        << ", \"dur\": " << Finite(e.dur_us);
    if (e.scope >= 0) out << ", \"args\": {\"case\": " << e.scope << "}";
    out << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "]}\n";
}

std::string OneLineSummary(const Registry& registry) {
  std::ostringstream os;
  if (!kEnabled) {
    os << "obs=off";
    return os.str();
  }
  os << "win=" << registry.Get(Counter::kWindowsScored)
     << " dec=" << registry.Get(Counter::kDecisions)
     << " q=" << registry.Get(Counter::kPacketsQuarantined)
     << " rep=" << registry.Get(Counter::kPacketsRepaired)
     << " degr=" << registry.Get(Counter::kDegradedDecisions);
  if (registry.GaugeSet(Gauge::kLastScore)) {
    os << " score=" << std::fixed << std::setprecision(3)
       << registry.Get(Gauge::kLastScore);
  }
  const auto& score = registry.StageLatency(Stage::kScore);
  if (score.count > 0) {
    os << " p50(score)=" << FmtNs(score.ApproxQuantileNs(0.5));
  }
  return os.str();
}

}  // namespace mulink::obs
