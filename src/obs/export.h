// Sinks and serializers for the observability registry.
//
// A Sink consumes a merged Registry snapshot; the library ships a no-op
// sink (the runtime kill switch), a human-readable table sink and a JSON
// sink. The free functions underneath are the actual serializers — the CLI,
// benches and examples call them directly, and the link-health JSON here is
// the single serialization monitors scrape (`--guard-json` and the metrics
// JSON embed the same shape).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "nic/frame_guard.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mulink::obs {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Consume(const Registry& registry) = 0;
};

// Runtime kill switch: wire this (or a null Registry*) and nothing is
// formatted or written.
class NullSink : public Sink {
 public:
  void Consume(const Registry&) override {}
};

class TableSink : public Sink {
 public:
  explicit TableSink(std::ostream& out) : out_(out) {}
  void Consume(const Registry& registry) override;

 private:
  std::ostream& out_;
};

class JsonSink : public Sink {
 public:
  explicit JsonSink(std::ostream& out) : out_(out) {}
  void Consume(const Registry& registry) override;

 private:
  std::ostream& out_;
};

// Human-readable: non-zero counters, set gauges, then one row per recorded
// stage (count, total, mean, p50, p95, max).
void WriteMetricsTable(std::ostream& out, const Registry& registry);

// Machine-readable: {"obs_enabled":…, "counters":{…}, "gauges":{…},
// "stages":{name:{count,total_ns,mean_ns,p50_ns,p95_ns,min_ns,max_ns,
// buckets:[…]}}}. Every counter and stage key is always present so scrapers
// can rely on the schema.
void WriteMetricsJson(std::ostream& out, const Registry& registry);

// Link-health snapshot as JSON (the machine-readable twin of the CLI's
// --guard table).
void WriteLinkHealthJson(std::ostream& out, const nic::LinkHealth& health);

// Chrome trace_event format: {"traceEvents":[{"ph":"X",...}]}. Load the
// file in chrome://tracing, about:tracing or ui.perfetto.dev.
void WriteChromeTrace(std::ostream& out, std::span<const TraceEvent> events);

// Compact single-line summary for live monitors:
// "win=12 dec=12 q=3 rep=1 degr=2 score=0.143 p50(score)=71us".
std::string OneLineSummary(const Registry& registry);

}  // namespace mulink::obs
