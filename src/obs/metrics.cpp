#include "obs/metrics.h"

#include <algorithm>

namespace mulink::obs {

const char* ToString(Stage stage) {
  switch (stage) {
    case Stage::kGuardClassify:
      return "guard_classify";
    case Stage::kIngestSanitize:
      return "ingest_sanitize";
    case Stage::kSubcarrierWeighting:
      return "subcarrier_weighting";
    case Stage::kMusicPathWeighting:
      return "music_path_weighting";
    case Stage::kScore:
      return "score";
    case Stage::kHmmFilter:
      return "hmm_filter";
    case Stage::kFusion:
      return "fusion";
    case Stage::kCalibrate:
      return "calibrate";
    case Stage::kCapture:
      return "capture";
    case Stage::kCase:
      return "case";
  }
  return "unknown";
}

const char* ToString(Counter counter) {
  switch (counter) {
    case Counter::kPacketsIngested:
      return "packets_ingested";
    case Counter::kPacketsAccepted:
      return "packets_accepted";
    case Counter::kPacketsRepaired:
      return "packets_repaired";
    case Counter::kPacketsQuarantined:
      return "packets_quarantined";
    case Counter::kRingResyncs:
      return "ring_resyncs";
    case Counter::kWindowsScored:
      return "windows_scored";
    case Counter::kDecisions:
      return "decisions";
    case Counter::kDegradedDecisions:
      return "degraded_decisions";
    case Counter::kDecisionsSuppressed:
      return "decisions_suppressed";
    case Counter::kHmmUpdates:
      return "hmm_updates";
    case Counter::kProfileStackRebuilds:
      return "profile_stack_rebuilds";
    case Counter::kProfileStackHits:
      return "profile_stack_hits";
    case Counter::kBatches:
      return "batches";
    case Counter::kCalibrations:
      return "calibrations";
    case Counter::kSessionsCaptured:
      return "sessions_captured";
    case Counter::kCasesRun:
      return "cases_run";
    case Counter::kTraceEventsDropped:
      return "trace_events_dropped";
    case Counter::kQuietWindows:
      return "quiet_windows";
    case Counter::kProfileSwaps:
      return "profile_swaps";
    case Counter::kLadderTransitions:
      return "ladder_transitions";
    case Counter::kAgcRebaselines:
      return "agc_rebaselines";
    case Counter::kFramesRouted:
      return "frames_routed";
    case Counter::kFramesDropped:
      return "frames_dropped";
    case Counter::kFramesRejected:
      return "frames_rejected";
    case Counter::kLinksAdmitted:
      return "links_admitted";
    case Counter::kLinksEvicted:
      return "links_evicted";
    case Counter::kLinksReadmitted:
      return "links_readmitted";
  }
  return "unknown";
}

const char* ToString(Gauge gauge) {
  switch (gauge) {
    case Gauge::kPosterior:
      return "posterior";
    case Gauge::kLastScore:
      return "last_score";
    case Gauge::kEmptyScoreEwma:
      return "empty_score_ewma";
    case Gauge::kLiveAntennas:
      return "live_antennas";
    case Gauge::kLadderState:
      return "ladder_state";
    case Gauge::kAdaptiveThreshold:
      return "adaptive_threshold";
    case Gauge::kQueueDepth:
      return "queue_depth";
    case Gauge::kResidentLinks:
      return "resident_links";
  }
  return "unknown";
}

double LatencyHistogram::BucketUpperNs(std::size_t i) {
  return kBucketFloorNs * static_cast<double>(std::uint64_t{1} << (i + 1));
}

void LatencyHistogram::Record(double ns) {
  if (ns < 0.0) ns = 0.0;
  std::size_t bucket = kNumBuckets - 1;
  double upper = kBucketFloorNs * 2.0;
  for (std::size_t i = 0; i + 1 < kNumBuckets; ++i, upper *= 2.0) {
    if (ns < upper) {
      bucket = i;
      break;
    }
  }
  ++buckets[bucket];
  if (count == 0) {
    min_ns = ns;
    max_ns = ns;
  } else {
    min_ns = std::min(min_ns, ns);
    max_ns = std::max(max_ns, ns);
  }
  ++count;
  total_ns += ns;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min_ns = other.min_ns;
    max_ns = other.max_ns;
  } else {
    min_ns = std::min(min_ns, other.min_ns);
    max_ns = std::max(max_ns, other.max_ns);
  }
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  total_ns += other.total_ns;
}

void LatencyHistogram::Reset() {
  buckets.fill(0);
  count = 0;
  total_ns = 0.0;
  min_ns = 0.0;
  max_ns = 0.0;
}

double LatencyHistogram::ApproxQuantileNs(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      // Linear interpolation inside the bucket; the overflow bucket reports
      // the observed maximum (no upper edge to interpolate against).
      if (i + 1 >= kNumBuckets) return max_ns;
      const double lower = i == 0 ? 0.0 : BucketUpperNs(i - 1);
      const double upper = BucketUpperNs(i);
      const double frac =
          in_bucket > 0.0 ? (target - seen) / in_bucket : 0.0;
      return std::min(lower + frac * (upper - lower), max_ns);
    }
    seen += in_bucket;
  }
  return max_ns;
}

void Registry::MergeFrom(const Registry& shard) noexcept {
#if MULINK_OBS_ENABLED
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    counters_[i] += shard.counters_[i];
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if ((shard.gauge_set_ >> i) & 1u) {
      gauges_[i] = shard.gauges_[i];
      gauge_set_ |= 1u << i;
    }
  }
  for (std::size_t i = 0; i < kNumStages; ++i) {
    stages_[i].MergeFrom(shard.stages_[i]);
  }
#else
  (void)shard;
#endif
}

void Registry::Reset() noexcept {
  counters_.fill(0);
  gauges_.fill(0.0);
  gauge_set_ = 0;
  ingest_tick_ = 0;
  for (auto& stage : stages_) stage.Reset();
}

bool Registry::Empty() const noexcept {
  for (const auto c : counters_) {
    if (c != 0) return false;
  }
  for (const auto& stage : stages_) {
    if (stage.count != 0) return false;
  }
  return gauge_set_ == 0;
}

}  // namespace mulink::obs
