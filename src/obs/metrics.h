// Observability spine: named pipeline stages, counters, gauges and
// fixed-bucket latency histograms collected into a Registry.
//
// Design rules (DESIGN.md §11):
//  * Zero steady-state allocations — a Registry is a few std::arrays, a
//    histogram is a fixed bucket vector. Recording never touches the heap.
//  * Zero overhead when off — the compile-time kill switch (configure with
//    -DMULINK_OBS=OFF, which defines MULINK_OBS_DISABLED) turns every
//    recording method into an empty inline; at runtime a null Registry
//    pointer is the no-op sink, costing one predictable branch.
//  * Deterministic aggregation — each thread (or campaign case, or link)
//    records into its own Registry shard; shards are merged with MergeFrom
//    in submission order. Counter totals and histogram *counts* are then
//    bit-identical for any thread count; only the measured nanoseconds vary
//    run to run (they are wall-clock observations, not derived state).
//  * Recording must never change decisions — instrumentation reads clocks
//    and bumps integers; it never feeds back into the pipeline.
//
// Per-packet stages (guard classify, ingest sanitize) are latency-sampled
// 1-in-kIngestSampleEvery on a deterministic per-shard tick so a 50 pkt/s
// link pays ~2 clock reads per window, not per packet; per-window stages are
// always timed. Counters are never sampled.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

#if defined(MULINK_OBS_DISABLED)
#define MULINK_OBS_ENABLED 0
#else
#define MULINK_OBS_ENABLED 1
#endif

namespace mulink::obs {

// Compile-time kill switch state, queryable from tests and tools.
inline constexpr bool kEnabled = MULINK_OBS_ENABLED != 0;

// Named stages of the sensing pipeline (plus the campaign-level spans the
// runners record). Display order follows packet flow.
enum class Stage : std::uint8_t {
  kGuardClassify,        // nic::FrameGuard::Inspect on one arriving frame
  kIngestSanitize,       // phase sanitization (ingest-time or window-time)
  kSubcarrierWeighting,  // multipath factors + Eq. 15 weights
  kMusicPathWeighting,   // covariances, spectra, Eq. 17 path weighting
  kScore,                // the remaining distance / statistic computation
  kHmmFilter,            // temporal posterior update
  kFusion,               // multi-link score fusion
  kCalibrate,            // Detector::Calibrate (campaign / setup)
  kCapture,              // simulator session capture (campaign)
  kCase,                 // one whole campaign case, end to end
};

inline constexpr std::size_t kNumStages = 10;

const char* ToString(Stage stage);

enum class Counter : std::uint8_t {
  kPacketsIngested,      // frames offered to a link (pre-guard)
  kPacketsAccepted,      // clean frames entering the window ring
  kPacketsRepaired,      // flagged-but-usable frames entering the ring
  kPacketsQuarantined,   // frames the guard kept out of the ring
  kRingResyncs,          // sequence gaps that flushed a window ring
  kWindowsScored,        // Detector::Score* invocations
  kDecisions,            // presence decisions emitted
  kDegradedDecisions,    // decisions on the dead-chain fallback statistic
  kDecisionsSuppressed,  // completed windows with no usable antennas
  kHmmUpdates,           // posterior filter updates
  kProfileStackRebuilds, // profile covariance stack rebuilt (cache miss)
  kProfileStackHits,     // profile covariance stack reused (cache hit)
  kBatches,              // SensingEngine::ProcessBatch calls
  kCalibrations,         // Detector::Calibrate calls observed
  kSessionsCaptured,     // simulator sessions captured (campaign)
  kCasesRun,             // campaign cases completed
  kTraceEventsDropped,   // trace events lost to a full ring
  kQuietWindows,         // windows accepted as quiet calibration evidence
  kProfileSwaps,         // adaptive profile/threshold swaps applied
  kLadderTransitions,    // recalibration-ladder state transitions
  kAgcRebaselines,       // AGC-jump fast re-baseline paths taken
  kFramesRouted,         // frames the serve demux routed to a shard queue
  kFramesDropped,        // frames displaced by drop-oldest back-pressure
  kFramesRejected,       // frames refused by reject-newest back-pressure
  kLinksAdmitted,        // links admitted to a serving shard roster
  kLinksEvicted,         // links evicted (capacity or health)
  kLinksReadmitted,      // evicted links re-admitted after cooldown
};

inline constexpr std::size_t kNumCounters = 27;

const char* ToString(Counter counter);

enum class Gauge : std::uint8_t {
  kPosterior,       // last decision's P(occupied)
  kLastScore,       // last decision's raw statistic
  kEmptyScoreEwma,  // profile-drift watchdog EWMA
  kLiveAntennas,    // live RX chains at the last decision
  kLadderState,     // recalibration-ladder state (CalibrationLadder value)
  kAdaptiveThreshold,  // threshold installed by the last profile swap
  kQueueDepth,         // shard ingest-queue depth at the last poll
  kResidentLinks,      // links resident on the shard roster
};

inline constexpr std::size_t kNumGauges = 8;

const char* ToString(Gauge gauge);

// Per-packet stages record latency once per this many ticks (counters are
// exact regardless). Power of two; sampling is a deterministic per-shard
// modulo, so histogram counts stay bit-identical across thread counts.
inline constexpr std::uint64_t kIngestSampleEvery = 16;

// Fixed-bucket latency histogram: bucket i holds durations in
// [kBucketFloorNs * 2^i, kBucketFloorNs * 2^(i+1)), the last bucket is the
// overflow. 250 ns .. ~4 ms covers everything from one guard inspection to
// a full combined-scheme window score.
struct LatencyHistogram {
  static constexpr std::size_t kNumBuckets = 15;
  static constexpr double kBucketFloorNs = 250.0;

  std::array<std::uint64_t, kNumBuckets> buckets{};
  std::uint64_t count = 0;
  double total_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;

  // Upper edge of bucket i (the last bucket has no upper edge).
  static double BucketUpperNs(std::size_t i);

  void Record(double ns);
  void MergeFrom(const LatencyHistogram& other);
  void Reset();

  // Bucket-interpolated quantile in ns (0 when empty).
  double ApproxQuantileNs(double q) const;
  double MeanNs() const {
    return count > 0 ? total_ns / static_cast<double>(count) : 0.0;
  }
};

// One shard of metrics: plain arrays, no heap, cheap to merge. Everything
// the pipeline reports flows through a Registry — per-link shards inside
// SensingEngine, per-case shards inside the campaign runners — and shards
// are merged in submission order for deterministic totals.
class Registry {
 public:
  void Add(Counter counter, std::uint64_t n = 1) noexcept {
#if MULINK_OBS_ENABLED
    counters_[static_cast<std::size_t>(counter)] += n;
#else
    (void)counter;
    (void)n;
#endif
  }

  std::uint64_t Get(Counter counter) const noexcept {
    return counters_[static_cast<std::size_t>(counter)];
  }

  void Set(Gauge gauge, double value) noexcept {
#if MULINK_OBS_ENABLED
    gauges_[static_cast<std::size_t>(gauge)] = value;
    gauge_set_ |= 1u << static_cast<std::size_t>(gauge);
#else
    (void)gauge;
    (void)value;
#endif
  }

  double Get(Gauge gauge) const noexcept {
    return gauges_[static_cast<std::size_t>(gauge)];
  }

  bool GaugeSet(Gauge gauge) const noexcept {
    return (gauge_set_ >> static_cast<std::size_t>(gauge)) & 1u;
  }

  void RecordStageNs(Stage stage, double ns) noexcept {
#if MULINK_OBS_ENABLED
    stages_[static_cast<std::size_t>(stage)].Record(ns);
#else
    (void)stage;
    (void)ns;
#endif
  }

  const LatencyHistogram& StageLatency(Stage stage) const noexcept {
    return stages_[static_cast<std::size_t>(stage)];
  }

  // Deterministic per-shard tick for ingest-stage latency sampling.
  bool SampleIngestTick() noexcept {
#if MULINK_OBS_ENABLED
    return (ingest_tick_++ % kIngestSampleEvery) == 0;
#else
    return false;
#endif
  }

  // Fold `shard` into this registry. Counters and histograms accumulate;
  // gauges take the shard's value when the shard wrote one (submission
  // order == last writer wins, deterministically).
  void MergeFrom(const Registry& shard) noexcept;

  void Reset() noexcept;

  // True when nothing has been recorded (all counters and stage counts 0).
  bool Empty() const noexcept;

  const std::array<std::uint64_t, kNumCounters>& counters() const noexcept {
    return counters_;
  }

 private:
  std::array<std::uint64_t, kNumCounters> counters_{};
  std::array<double, kNumGauges> gauges_{};
  std::uint32_t gauge_set_ = 0;
  std::uint64_t ingest_tick_ = 0;
  std::array<LatencyHistogram, kNumStages> stages_{};
};

// Recording macros — the only way library code (src/** outside src/obs) may
// record observability data. tools/mulink-lint enforces this statically
// (rule `obs-macro`): direct Add/Set/RecordStageNs/ScopedStageTimer calls in
// library TUs fail CI. Routing every recording call through one macro family
// guarantees three things at once: the null-registry no-op check is never
// forgotten, the MULINK_OBS compile-time kill switch reaches every call site
// (the macros expand to the same empty inlines when recording is compiled
// out), and a grep for MULINK_OBS_ finds the complete instrumentation
// surface of the pipeline.
//
// `counter` / `gauge` / `stage` are bare enumerator names (kDecisions, not
// obs::Counter::kDecisions); the macros qualify them.

// Increment a counter by 1 on a nullable registry pointer.
#define MULINK_OBS_COUNT(registry_ptr, counter)                            \
  do {                                                                     \
    if ((registry_ptr) != nullptr) {                                       \
      (registry_ptr)->Add(::mulink::obs::Counter::counter);                \
    }                                                                      \
  } while (false)

// Increment a counter by `n` on a nullable registry pointer.
#define MULINK_OBS_COUNT_N(registry_ptr, counter, n)                       \
  do {                                                                     \
    if ((registry_ptr) != nullptr) {                                       \
      (registry_ptr)->Add(::mulink::obs::Counter::counter, (n));           \
    }                                                                      \
  } while (false)

// Increment a counter by `n` on a registry held by value (collection /
// merge paths that own their registry outright).
#define MULINK_OBS_COUNT_REF(registry_ref, counter, n)                     \
  (registry_ref).Add(::mulink::obs::Counter::counter, (n))

// Set a gauge on a nullable registry pointer.
#define MULINK_OBS_GAUGE(registry_ptr, gauge, value)                       \
  do {                                                                     \
    if ((registry_ptr) != nullptr) {                                       \
      (registry_ptr)->Set(::mulink::obs::Gauge::gauge, (value));           \
    }                                                                      \
  } while (false)

// Declare a named RAII timer recording this scope's duration into `stage`.
#define MULINK_OBS_STAGE_TIMER(name, registry_ptr, stage)                  \
  ::mulink::obs::ScopedStageTimer name((registry_ptr),                     \
                                       ::mulink::obs::Stage::stage)

// Evaluates to `registry_ptr` on 1-in-kIngestSampleEvery deterministic
// ticks and nullptr otherwise — the sampled sink for per-packet stages.
#define MULINK_OBS_SAMPLED(registry_ptr)                                   \
  (((registry_ptr) != nullptr && (registry_ptr)->SampleIngestTick())       \
       ? (registry_ptr)                                                    \
       : nullptr)

// RAII stage timer: records the scope's duration into the registry's stage
// histogram on destruction. A null registry is the runtime no-op sink — no
// clock is read at all.
class ScopedStageTimer {
 public:
  ScopedStageTimer(Registry* registry, Stage stage) noexcept
#if MULINK_OBS_ENABLED
      : registry_(registry), stage_(stage) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
#else
  {
    (void)registry;
    (void)stage;
  }
#endif

  ~ScopedStageTimer() {
#if MULINK_OBS_ENABLED
    if (registry_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      registry_->RecordStageNs(
          stage_,
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    }
#endif
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
#if MULINK_OBS_ENABLED
  Registry* registry_ = nullptr;
  Stage stage_{};
  std::chrono::steady_clock::time_point start_{};
#endif
};

}  // namespace mulink::obs
