#include "obs/trace.h"

namespace mulink::obs {

TraceRing::TraceRing(std::size_t capacity, Clock::time_point epoch,
                     std::uint32_t tid)
    : epoch_(epoch), tid_(tid) {
  events_.resize(capacity > 0 ? capacity : 1);
}

void TraceRing::Record(const TraceEvent& event) noexcept {
#if MULINK_OBS_ENABLED
  if (size_ == events_.size()) ++dropped_;  // the overwritten oldest event
  events_[head_] = event;
  head_ = (head_ + 1) % events_.size();
  if (size_ < events_.size()) ++size_;
#else
  (void)event;
#endif
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + events_.size() - size_) % events_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(start + i) % events_.size()]);
  }
  return out;
}

void TraceRing::DrainInto(std::vector<TraceEvent>& out) {
  const std::size_t start = (head_ + events_.size() - size_) % events_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(start + i) % events_.size()]);
  }
  Clear();
}

void TraceRing::Clear() noexcept {
  head_ = 0;
  size_ = 0;
}

}  // namespace mulink::obs
