// Bounded ring of structured trace events, exportable as Chrome
// `trace_event` JSON (chrome://tracing, Perfetto, about:tracing).
//
// A TraceEvent is plain data — a stage, an optional scope index (campaign
// case or link), a thread id and a [ts, ts+dur] span relative to the ring's
// epoch. Recording into a warm ring never allocates; when the ring is full
// the newest events win and the owner's registry counts the loss (the ring
// is a flight recorder, not a lossless log).
//
// TraceRing is single-writer by design: every producer (one campaign case,
// one CLI run) owns its own ring, and rings are drained in submission order
// — the same determinism rule the metric registries follow.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace mulink::obs {

struct TraceEvent {
  Stage stage{};
  std::int32_t scope = -1;  // campaign case / link index, -1 when unscoped
  std::uint32_t tid = 0;    // worker index (0 on the serial path)
  double ts_us = 0.0;       // span start, microseconds since the ring epoch
  double dur_us = 0.0;      // span duration, microseconds
};

class TraceRing {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TraceRing(std::size_t capacity = 4096,
                     Clock::time_point epoch = Clock::now(),
                     std::uint32_t tid = 0);

  // Append one event; overwrites the oldest when full and counts the loss.
  void Record(const TraceEvent& event) noexcept;

  // Events in recording order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const;

  // Drain this ring into `out` in recording order and clear it.
  void DrainInto(std::vector<TraceEvent>& out);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return events_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  Clock::time_point epoch() const noexcept { return epoch_; }
  std::uint32_t tid() const noexcept { return tid_; }

  void Clear() noexcept;

 private:
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  Clock::time_point epoch_;
  std::uint32_t tid_ = 0;
};

// RAII span: records [construction, destruction) into the ring as one event
// stamped with the ring's epoch and tid. Null ring = no-op, no clock read.
class TraceSpan {
 public:
  TraceSpan(TraceRing* ring, Stage stage, std::int32_t scope = -1) noexcept
#if MULINK_OBS_ENABLED
      : ring_(ring), stage_(stage), scope_(scope) {
    if (ring_ != nullptr) start_ = TraceRing::Clock::now();
  }
#else
  {
    (void)ring;
    (void)stage;
    (void)scope;
  }
#endif

  ~TraceSpan() {
#if MULINK_OBS_ENABLED
    if (ring_ == nullptr) return;
    const auto end = TraceRing::Clock::now();
    TraceEvent event;
    event.stage = stage_;
    event.scope = scope_;
    event.tid = ring_->tid();
    event.ts_us =
        std::chrono::duration<double, std::micro>(start_ - ring_->epoch())
            .count();
    event.dur_us = std::chrono::duration<double, std::micro>(end - start_)
                       .count();
    ring_->Record(event);
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if MULINK_OBS_ENABLED
  TraceRing* ring_ = nullptr;
  Stage stage_{};
  std::int32_t scope_ = -1;
  TraceRing::Clock::time_point start_{};
#endif
};

}  // namespace mulink::obs

// Declare a named RAII trace span — the lint-enforced counterpart of the
// MULINK_OBS_* recording macros in obs/metrics.h (tools/mulink-lint rule
// `obs-macro`). `stage` is a bare enumerator name; a null ring is a no-op.
#define MULINK_OBS_TRACE_SPAN(name, ring_ptr, stage, scope)                \
  ::mulink::obs::TraceSpan name((ring_ptr), ::mulink::obs::Stage::stage,   \
                                (scope))
