// Descriptive statistics used across the characterization and evaluation
// pipeline (CDFs over human locations, temporal stability of the multipath
// factor, ROC operating points, ...).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mulink::dsp {

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);  // population variance
double StdDev(std::span<const double> xs);

// Median via partial sort of a copy; exact for both parities.
double Median(std::vector<double> xs);

// Median of a mutable range, reordering it (nth_element) instead of copying.
double MedianInPlace(std::span<double> xs);

// Allocation-free (after warm-up) median: copies into `scratch` and runs
// MedianInPlace. Bit-identical to Median on the same values.
double Median(std::span<const double> xs, std::vector<double>& scratch);

// Linear-interpolated quantile, q in [0, 1].
double Quantile(std::vector<double> xs, double q);

// Median absolute deviation from the median. Multiply by 1.4826 for a
// robust, outlier-immune estimate of a Gaussian's standard deviation.
double MedianAbsDeviation(const std::vector<double>& xs);

// Scratch variant of the above; reuses one buffer for both median passes.
double MedianAbsDeviation(std::span<const double> xs,
                          std::vector<double>& scratch);

double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

// Pearson correlation coefficient.
double Correlation(const std::vector<double>& xs, const std::vector<double>& ys);

// One point of an empirical CDF evaluation.
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};

// Empirical CDF sampled at `num_points` evenly spaced probabilities
// (including 0 and 1). Useful for printing the CDF figures of the paper.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> xs,
                                   std::size_t num_points = 101);

// Fraction of samples <= threshold.
double CdfAt(std::span<const double> xs, double threshold);

// Uniform-bin histogram.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  double BinCenter(std::size_t bin) const;
  double BinWidth() const;
  std::size_t TotalCount() const;
};

Histogram MakeHistogram(const std::vector<double>& xs, double lo, double hi,
                        std::size_t bins);

}  // namespace mulink::dsp
