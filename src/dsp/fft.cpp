#include "dsp/fft.h"

#include <cmath>

#include "common/assert.h"

namespace mulink::dsp {

bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void Transform(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  MULINK_REQUIRE(IsPowerOfTwo(n), "Fft: size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Danielson–Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex w_len(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= w_len;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

}  // namespace

void Fft(std::vector<Complex>& data) { Transform(data, false); }

void Ifft(std::vector<Complex>& data) { Transform(data, true); }

}  // namespace mulink::dsp
