#include "dsp/fft.h"

#include <cmath>

#include "common/assert.h"

namespace mulink::dsp {

bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

// Concatenated per-stage twiddle tables for stages len = 2, 4, ..., n
// (len/2 entries per stage, n-1 total). Entries are produced by the same
// w *= w_len recurrence as the table-free path, preserving bit-identity.
void FillTwiddles(std::vector<Complex>& table, std::size_t n, bool inverse) {
  table.clear();
  // mulink-lint: allow(alloc): twiddle table, cached per FFT size
  table.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex w_len(std::cos(angle), std::sin(angle));
    Complex w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      // mulink-lint: allow(alloc): twiddle table, cached per FFT size
      table.push_back(w);
      w *= w_len;
    }
  }
}

void BitReverse(std::span<Complex> data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void Transform(std::span<Complex> data, bool inverse, FftWorkspace& ws) {
  const std::size_t n = data.size();
  MULINK_REQUIRE(IsPowerOfTwo(n), "Fft: size must be a power of two");
  if (n <= 1) return;

  if (ws.size != n) {
    FillTwiddles(ws.forward, n, false);
    FillTwiddles(ws.inverse, n, true);
    ws.size = n;
  }
  const std::vector<Complex>& table = inverse ? ws.inverse : ws.forward;

  BitReverse(data);

  // Danielson–Lanczos butterflies with precomputed twiddles.
  std::size_t stage_base = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = table[stage_base + k];
        const Complex u = data[i + k];
        const Complex v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
    stage_base += half;
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

}  // namespace

void Fft(std::span<Complex> data, FftWorkspace& ws) {
  Transform(data, false, ws);
}

void Ifft(std::span<Complex> data, FftWorkspace& ws) {
  Transform(data, true, ws);
}

void Fft(std::vector<Complex>& data) {
  FftWorkspace ws;
  Transform(data, false, ws);
}

void Ifft(std::vector<Complex>& data) {
  FftWorkspace ws;
  Transform(data, true, ws);
}

}  // namespace mulink::dsp
