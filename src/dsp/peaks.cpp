#include "dsp/peaks.h"

#include <algorithm>

#include "common/assert.h"

namespace mulink::dsp {

std::vector<Peak> FindPeaks(const std::vector<double>& xs,
                            const PeakOptions& options) {
  MULINK_REQUIRE(xs.size() >= 3, "FindPeaks: need >= 3 samples");
  const double global_max = *std::max_element(xs.begin(), xs.end());

  std::vector<Peak> peaks;
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    // A peak is a sample strictly above its left neighbour and at least as
    // high as its right neighbour (plateaus credit their left edge).
    if (!(xs[i] > xs[i - 1] && xs[i] >= xs[i + 1])) continue;

    // Walk to the flanking minima.
    double left_min = xs[i];
    for (std::size_t j = i; j > 0; --j) {
      left_min = std::min(left_min, xs[j - 1]);
      if (xs[j - 1] > xs[i]) break;
    }
    double right_min = xs[i];
    for (std::size_t j = i + 1; j < xs.size(); ++j) {
      right_min = std::min(right_min, xs[j]);
      if (xs[j] > xs[i]) break;
    }
    Peak p;
    p.index = i;
    p.value = xs[i];
    p.prominence = xs[i] - std::max(left_min, right_min);

    if (global_max > 0.0) {
      if (p.value < options.min_relative_height * global_max) continue;
      if (p.prominence < options.min_relative_prominence * global_max) continue;
    }
    // mulink-lint: allow(alloc): peak list returned by value; AoA analysis path
    peaks.push_back(p);
  }

  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });
  if (options.max_peaks > 0 && peaks.size() > options.max_peaks) {
    // mulink-lint: allow(alloc): peak list returned by value; AoA analysis path
    peaks.resize(options.max_peaks);
  }
  return peaks;
}

}  // namespace mulink::dsp
