// Iterative radix-2 FFT for the OFDM baseband chain.
#pragma once

#include <vector>

#include "common/constants.h"

namespace mulink::dsp {

// In-place forward DFT: X[k] = sum_n x[n] exp(-j 2 pi k n / N).
// Size must be a power of two.
void Fft(std::vector<Complex>& data);

// In-place inverse DFT including the 1/N normalization.
void Ifft(std::vector<Complex>& data);

bool IsPowerOfTwo(std::size_t n);

}  // namespace mulink::dsp
