// Iterative radix-2 FFT for the OFDM baseband chain.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/constants.h"

namespace mulink::dsp {

// Cached twiddle-factor tables. A default-constructed workspace fills its
// tables on first use for a given size; subsequent transforms of that size
// perform no heap allocations. The tables are generated with the exact
// incremental recurrence the allocating path uses, so results stay
// bit-identical.
struct FftWorkspace {
  std::vector<Complex> forward;  // per-stage twiddles, stages len=2,4,...,n
  std::vector<Complex> inverse;
  std::size_t size = 0;
};

// In-place forward DFT: X[k] = sum_n x[n] exp(-j 2 pi k n / N).
// Size must be a power of two.
void Fft(std::vector<Complex>& data);

// In-place inverse DFT including the 1/N normalization.
void Ifft(std::vector<Complex>& data);

// Allocation-free (after warm-up) span variants.
void Fft(std::span<Complex> data, FftWorkspace& ws);
void Ifft(std::span<Complex> data, FftWorkspace& ws);

bool IsPowerOfTwo(std::size_t n);

}  // namespace mulink::dsp
