#include "dsp/delay_domain.h"

#include <cmath>

#include "common/assert.h"

namespace mulink::dsp {

std::vector<Complex> DelayTransform(const std::vector<Complex>& cfr,
                                    const std::vector<double>& offsets_hz,
                                    const std::vector<double>& delays_s) {
  std::vector<Complex> taps(delays_s.size(), Complex(0.0, 0.0));
  DelayTransformInto(cfr, offsets_hz, delays_s, taps);
  return taps;
}

void DelayTransformInto(std::span<const Complex> cfr,
                        std::span<const double> offsets_hz,
                        std::span<const double> delays_s,
                        std::span<Complex> out) {
  MULINK_REQUIRE(cfr.size() == offsets_hz.size(),
                 "DelayTransform: CFR/offset size mismatch");
  MULINK_REQUIRE(!cfr.empty(), "DelayTransform: empty CFR");
  MULINK_REQUIRE(out.size() == delays_s.size(),
                 "DelayTransformInto: output size mismatch");
  const double scale = 1.0 / static_cast<double>(cfr.size());
  for (std::size_t t = 0; t < delays_s.size(); ++t) {
    Complex acc(0.0, 0.0);
    for (std::size_t k = 0; k < cfr.size(); ++k) {
      const double angle = 2.0 * kPi * offsets_hz[k] * delays_s[t];
      acc += cfr[k] * Complex(std::cos(angle), std::sin(angle));
    }
    out[t] = acc * scale;
  }
}

double DominantTapPower(std::span<const Complex> cfr) {
  MULINK_REQUIRE(!cfr.empty(), "DominantTapPower: empty CFR");
  Complex acc(0.0, 0.0);
  for (const auto& h : cfr) acc += h;
  acc /= static_cast<double>(cfr.size());
  return std::norm(acc);
}

std::vector<double> PowerDelayProfile(const std::vector<Complex>& cfr,
                                      const std::vector<double>& offsets_hz,
                                      double max_delay_s,
                                      std::size_t num_taps) {
  MULINK_REQUIRE(num_taps >= 2, "PowerDelayProfile: need >= 2 taps");
  MULINK_REQUIRE(max_delay_s > 0.0, "PowerDelayProfile: max delay must be > 0");
  std::vector<double> delays(num_taps);
  for (std::size_t i = 0; i < num_taps; ++i) {
    delays[i] =
        max_delay_s * static_cast<double>(i) / static_cast<double>(num_taps - 1);
  }
  const auto taps = DelayTransform(cfr, offsets_hz, delays);
  std::vector<double> pdp(num_taps);
  for (std::size_t i = 0; i < num_taps; ++i) pdp[i] = std::norm(taps[i]);
  return pdp;
}

}  // namespace mulink::dsp
