// Frequency-to-delay-domain transform of a CSI vector.
//
// Eq. 10 of the paper approximates the LOS power from |h_hat(0)|^2, the power
// of the dominant delay tap of the inverse transform of the measured CFR —
// the same trick used by FILA (INFOCOM'12) and Sen et al. (MobiSys'13). The
// Intel 5300 reports 30 unevenly spaced subcarriers, so we use a direct
// inverse nonuniform DFT over the actual subcarrier offsets rather than a
// radix-2 IFFT.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/constants.h"

namespace mulink::dsp {

// Inverse nonuniform DFT: given per-subcarrier channel values H(f_k) at
// baseband offsets f_k (Hz relative to the carrier), evaluate
//   h(tau) = (1/K) * sum_k H(f_k) * exp(+j 2 pi f_k tau)
// at each requested delay tau (seconds).
std::vector<Complex> DelayTransform(const std::vector<Complex>& cfr,
                                    const std::vector<double>& offsets_hz,
                                    const std::vector<double>& delays_s);

// Allocation-free variant: out.size() must equal delays_s.size().
void DelayTransformInto(std::span<const Complex> cfr,
                        std::span<const double> offsets_hz,
                        std::span<const double> delays_s,
                        std::span<Complex> out);

// Power of the zero-delay tap |h_hat(0)|^2 — the dominant-path power proxy of
// Eq. 10. Equivalent to |mean_k H(f_k)|^2.
double DominantTapPower(std::span<const Complex> cfr);

// Delay profile over a uniform delay grid [0, max_delay_s] with `num_taps`
// taps; returns per-tap |h(tau)|^2.
std::vector<double> PowerDelayProfile(const std::vector<Complex>& cfr,
                                      const std::vector<double>& offsets_hz,
                                      double max_delay_s, std::size_t num_taps);

}  // namespace mulink::dsp
