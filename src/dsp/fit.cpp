#include "dsp/fit.h"

#include <cmath>

#include "common/assert.h"
#include "linalg/solve.h"

namespace mulink::dsp {

namespace {

double RSquared(std::span<const double> xs, std::span<const double> ys,
                const LinearFit& fit) {
  double mean_y = 0.0;
  for (double y : ys) mean_y += y;
  mean_y /= static_cast<double>(ys.size());

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.Evaluate(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  if (ss_tot == 0.0) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  FitScratch scratch;
  return FitLinear(std::span<const double>(xs), std::span<const double>(ys),
                   scratch);
}

LinearFit FitLinear(std::span<const double> xs, std::span<const double> ys,
                    FitScratch& scratch) {
  MULINK_REQUIRE(xs.size() == ys.size(), "FitLinear: size mismatch");
  MULINK_REQUIRE(xs.size() >= 2, "FitLinear: need >= 2 points");

  scratch.design.rows = xs.size();
  scratch.design.cols = 2;
  // mulink-lint: allow(alloc): warm scratch
  scratch.design.data.resize(xs.size() * 2);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    scratch.design.At(i, 0) = 1.0;
    scratch.design.At(i, 1) = xs[i];
  }
  linalg::SolveLeastSquaresInto(scratch.design, ys, scratch.coeffs,
                                scratch.solve);

  LinearFit fit;
  fit.intercept = scratch.coeffs[0];
  fit.slope = scratch.coeffs[1];
  fit.num_points = xs.size();
  fit.r_squared = RSquared(xs, ys, fit);
  return fit;
}

LinearFit FitLogarithmic(const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  MULINK_REQUIRE(xs.size() == ys.size(), "FitLogarithmic: size mismatch");
  std::vector<double> lx, ly;
  // mulink-lint: allow(alloc): model fitting, calibration path
  lx.reserve(xs.size());
  // mulink-lint: allow(alloc): model fitting, calibration path
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0.0) {
      // mulink-lint: allow(alloc): model fitting, calibration path
      lx.push_back(std::log(xs[i]));
      // mulink-lint: allow(alloc): model fitting, calibration path
      ly.push_back(ys[i]);
    }
  }
  MULINK_REQUIRE(lx.size() >= 2, "FitLogarithmic: need >= 2 positive-x points");
  return FitLinear(lx, ly);
}

double EvaluateLogFit(const LinearFit& fit, double x) {
  MULINK_REQUIRE(x > 0.0, "EvaluateLogFit: x must be positive");
  return fit.Evaluate(std::log(x));
}

}  // namespace mulink::dsp
