// Local-maximum extraction for angular pseudospectra.
#pragma once

#include <cstddef>
#include <vector>

namespace mulink::dsp {

struct Peak {
  std::size_t index = 0;
  double value = 0.0;
  // Height above the higher of the two flanking minima; a crude but effective
  // prominence measure for rejecting ripple peaks.
  double prominence = 0.0;
};

struct PeakOptions {
  // Keep only peaks whose value is at least this fraction of the global max.
  double min_relative_height = 0.05;
  // Keep only peaks whose prominence is at least this fraction of the global max.
  double min_relative_prominence = 0.01;
  // At most this many peaks, strongest first (0 = unlimited).
  std::size_t max_peaks = 0;
};

// Find local maxima of `xs`, sorted by descending value.
std::vector<Peak> FindPeaks(const std::vector<double>& xs,
                            const PeakOptions& options = {});

}  // namespace mulink::dsp
