// Curve fitting used by the link characterization study.
//
// Fig. 3b/3c of the paper fit the per-subcarrier RSS change Delta-s against
// the multipath factor mu with a logarithmic model
//   Delta_s(mu) ~= a + b * ln(mu),
// which follows from Eq. 6 (Delta_s is 10*lg of an affine function of mu).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/solve.h"

namespace mulink::dsp {

struct LinearFit {
  double intercept = 0.0;  // a
  double slope = 0.0;      // b
  double r_squared = 0.0;  // coefficient of determination
  std::size_t num_points = 0;

  double Evaluate(double x) const { return intercept + slope * x; }
};

// Reusable buffers for the scratch FitLinear overload; grow on first use.
struct FitScratch {
  linalg::RMatrix design;
  std::vector<double> coeffs;
  linalg::LeastSquaresScratch solve;
};

// Ordinary least squares fit of y = a + b x.
LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys);

// Scratch variant: identical math (the allocating overload wraps this), but
// allocation-free once `scratch` has warmed up to the problem size. This is
// the per-packet hot path of phase sanitization.
LinearFit FitLinear(std::span<const double> xs, std::span<const double> ys,
                    FitScratch& scratch);

// Fit of y = a + b ln(x). Points with x <= 0 are skipped (the multipath
// factor is strictly positive in theory, but quantization can produce zeros).
// Throws PreconditionError when fewer than 2 usable points remain.
LinearFit FitLogarithmic(const std::vector<double>& xs,
                         const std::vector<double>& ys);

double EvaluateLogFit(const LinearFit& fit, double x);

}  // namespace mulink::dsp
