#include "dsp/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mulink::dsp {

double Mean(std::span<const double> xs) {
  MULINK_REQUIRE(!xs.empty(), "Mean: empty input");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  MULINK_REQUIRE(!xs.empty(), "Variance: empty input");
  const double m = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double MedianInPlace(std::span<double> xs) {
  MULINK_REQUIRE(!xs.empty(), "Median: empty input");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double Median(std::vector<double> xs) { return MedianInPlace(xs); }

double Median(std::span<const double> xs, std::vector<double>& scratch) {
  // mulink-lint: allow(alloc): warm scratch; assign reuses capacity
  scratch.assign(xs.begin(), xs.end());
  return MedianInPlace(scratch);
}

double Quantile(std::vector<double> xs, double q) {
  MULINK_REQUIRE(!xs.empty(), "Quantile: empty input");
  MULINK_REQUIRE(q >= 0.0 && q <= 1.0, "Quantile: q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double MedianAbsDeviation(const std::vector<double>& xs) {
  std::vector<double> scratch;
  return MedianAbsDeviation(std::span<const double>(xs), scratch);
}

double MedianAbsDeviation(std::span<const double> xs,
                          std::vector<double>& scratch) {
  MULINK_REQUIRE(!xs.empty(), "MedianAbsDeviation: empty input");
  // mulink-lint: allow(alloc): warm scratch; assign reuses capacity
  scratch.assign(xs.begin(), xs.end());
  const double med = MedianInPlace(scratch);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    scratch[i] = std::abs(xs[i] - med);
  }
  return MedianInPlace(scratch);
}

double Min(std::span<const double> xs) {
  MULINK_REQUIRE(!xs.empty(), "Min: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  MULINK_REQUIRE(!xs.empty(), "Max: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double Correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  MULINK_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
                 "Correlation: need >= 2 paired samples");
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  MULINK_REQUIRE(sxx > 0.0 && syy > 0.0,
                 "Correlation: inputs must not be constant");
  return sxy / std::sqrt(sxx * syy);
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> xs,
                                   std::size_t num_points) {
  MULINK_REQUIRE(!xs.empty(), "EmpiricalCdf: empty input");
  MULINK_REQUIRE(num_points >= 2, "EmpiricalCdf: need >= 2 points");
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> cdf(num_points);
  for (std::size_t i = 0; i < num_points; ++i) {
    const double p =
        static_cast<double>(i) / static_cast<double>(num_points - 1);
    const double pos = p * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    cdf[i] = {xs[lo] * (1.0 - frac) + xs[hi] * frac, p};
  }
  return cdf;
}

double CdfAt(std::span<const double> xs, double threshold) {
  MULINK_REQUIRE(!xs.empty(), "CdfAt: empty input");
  std::size_t count = 0;
  for (double x : xs) {
    if (x <= threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

double Histogram::BinCenter(std::size_t bin) const {
  MULINK_REQUIRE(bin < counts.size(), "Histogram::BinCenter: out of range");
  return lo + (static_cast<double>(bin) + 0.5) * BinWidth();
}

double Histogram::BinWidth() const {
  return (hi - lo) / static_cast<double>(counts.size());
}

std::size_t Histogram::TotalCount() const {
  std::size_t total = 0;
  for (auto c : counts) total += c;
  return total;
}

Histogram MakeHistogram(const std::vector<double>& xs, double lo, double hi,
                        std::size_t bins) {
  MULINK_REQUIRE(hi > lo, "MakeHistogram: hi must exceed lo");
  MULINK_REQUIRE(bins > 0, "MakeHistogram: need >= 1 bin");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  // mulink-lint: allow(alloc): histogram construction, analysis path
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    if (x < lo || x > hi) continue;
    auto bin = static_cast<std::size_t>((x - lo) / width);
    if (bin >= bins) bin = bins - 1;  // x == hi lands in the last bin
    ++h.counts[bin];
  }
  return h;
}

}  // namespace mulink::dsp
