// Human body model: shadowing and human-created reflection.
//
// Follows the paper's Sec. III-B modeling assumptions, which in turn cite
// Savazzi et al. [19] (dielectric elliptic cylinder; shadowing is pure
// amplitude attenuation beta < 1 with deterministic phase) and Kaltiokallio
// et al. [20] (human-created one-bounce reflected path):
//
//  * Shadowing — any path segment whose first Fresnel zone the person
//    intrudes is attenuated by beta(u), a smooth function of the normalized
//    Fresnel clearance u that reaches beta_min when the person stands dead
//    on the segment and approaches 1 beyond ~2 Fresnel radii. This yields
//    exactly the 5-6 wavelength "sensitivity region" the paper quotes.
//  * Reflection — a new path TX -> person -> RX is added with a bistatic
//    radar-equation amplitude from the body's radar cross section (Eq. 7's
//    a'_R term).
#pragma once

#include "geometry/room.h"
#include "geometry/vec2.h"
#include "propagation/path.h"

namespace mulink::propagation {

struct HumanBody {
  geometry::Vec2 position;

  // Radar cross section of a standing adult at 2.4 GHz (order 0.3–1 m^2).
  double cross_section_m2 = 1.0;

  // Amplitude attenuation of a fully blocked path (beta of Eq. 4; roughly
  // -10 dB through-body loss -> beta_min ~ 0.3).
  double min_shadow_amplitude = 0.3;

  // Width of the shadowing response in units of first Fresnel radii. The
  // attenuation is beta(u) = 1 - (1 - beta_min) * exp(-(u / width)^2).
  double shadow_width_fresnel = 0.8;

  // Standing height. When a path runs above the head (elevated AP), the
  // vertical gap adds to the Fresnel clearance and shadowing fades out —
  // the paper's testbed varies AP heights per case for exactly this reason.
  double height_m = 1.75;

  // Respiration model (the intro's breath-monitoring context, refs [9][10]):
  // the chest displaces sinusoidally by +-breathing_amplitude_m at
  // breathing_rate_hz. Applied by the channel simulator as a periodic
  // position modulation toward the receiver; 0 disables it.
  double breathing_amplitude_m = 0.0;
  double breathing_rate_hz = 0.0;
};

// Endpoint heights of a link (meters above floor). Heights are interpolated
// linearly with traversed length along each propagation path.
struct LinkHeights {
  double tx_m = 1.2;
  double rx_m = 1.2;
};

// Shadowing amplitude factor beta(u) for normalized Fresnel clearance u.
double ShadowAttenuation(const HumanBody& body, double clearance_ratio);

// Apply the human model to a static path set: attenuate every path segment
// the person shadows and append the human-created reflection path.
//
// `wavelength` sets the Fresnel geometry (use kWavelength for channel 11);
// `heights` sets the TX/RX mounting heights for the vertical-clearance term.
PathSet ApplyHuman(const PathSet& static_paths, geometry::Vec2 tx,
                   geometry::Vec2 rx, const HumanBody& body,
                   double wavelength = kWavelength, LinkHeights heights = {});

}  // namespace mulink::propagation
