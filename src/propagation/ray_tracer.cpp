#include "propagation/ray_tracer.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "geometry/segment.h"

namespace mulink::propagation {

using geometry::Segment;
using geometry::Vec2;

namespace {

// Travel direction of the final leg (last bounce -> RX).
double ArrivalDirection(const std::vector<Vec2>& vertices) {
  const auto n = vertices.size();
  return geometry::DirectionAngle(vertices[n - 2], vertices[n - 1]);
}

double PolylineLength(const std::vector<Vec2>& vertices) {
  double len = 0.0;
  for (std::size_t i = 0; i + 1 < vertices.size(); ++i) {
    len += geometry::Distance(vertices[i], vertices[i + 1]);
  }
  return len;
}

}  // namespace

RayTracer::RayTracer(geometry::Room room, FriisModel friis,
                     TraceOptions options)
    : room_(std::move(room)), friis_(friis), options_(options) {
  MULINK_REQUIRE(options_.max_wall_bounces >= 0 &&
                     options_.max_wall_bounces <= 2,
                 "RayTracer: max_wall_bounces must be 0, 1, or 2");
}

PathSet RayTracer::Trace(Vec2 tx, Vec2 rx) const {
  MULINK_REQUIRE(geometry::Distance(tx, rx) > 1e-9,
                 "RayTracer::Trace: tx and rx must differ");
  PathSet paths;
  AddLineOfSight(tx, rx, paths);
  if (options_.max_wall_bounces >= 1) AddOneBouncePaths(tx, rx, paths);
  if (options_.max_wall_bounces >= 2) AddTwoBouncePaths(tx, rx, paths);
  if (options_.include_scatterers) AddScatterPaths(tx, rx, paths);
  PruneWeakPaths(paths);
  return paths;
}

void RayTracer::AddLineOfSight(Vec2 tx, Vec2 rx, PathSet& out) const {
  Path p;
  p.kind = PathKind::kLineOfSight;
  p.vertices = {tx, rx};
  p.length_m = geometry::Distance(tx, rx);
  p.gain_at_center = friis_.AmplitudeGain(p.length_m, kChannel11CenterHz);
  p.arrival_direction_rad = ArrivalDirection(p.vertices);
  out.push_back(std::move(p));
}

void RayTracer::AddOneBouncePaths(Vec2 tx, Vec2 rx, PathSet& out) const {
  for (const auto& wall : room_.walls()) {
    if (wall.reflection_coefficient <= 0.0) continue;
    const Vec2 image = geometry::MirrorAcross(tx, wall.segment);
    // Degenerate when TX lies on the wall line.
    if (geometry::Distance(image, tx) < 1e-9) continue;
    const auto bounce = geometry::Intersect({image, rx}, wall.segment);
    if (!bounce.has_value()) continue;
    // Reject grazing cases where the bounce point coincides with TX or RX.
    if (geometry::Distance(*bounce, tx) < 1e-9 ||
        geometry::Distance(*bounce, rx) < 1e-9) {
      continue;
    }
    Path p;
    p.kind = PathKind::kWallReflection;
    p.vertices = {tx, *bounce, rx};
    p.length_m = PolylineLength(p.vertices);
    p.gain_at_center = wall.reflection_coefficient *
                       friis_.AmplitudeGain(p.length_m, kChannel11CenterHz);
    p.arrival_direction_rad = ArrivalDirection(p.vertices);
    out.push_back(std::move(p));
  }
}

void RayTracer::AddTwoBouncePaths(Vec2 tx, Vec2 rx, PathSet& out) const {
  const auto& walls = room_.walls();
  for (std::size_t i = 0; i < walls.size(); ++i) {
    for (std::size_t j = 0; j < walls.size(); ++j) {
      if (i == j) continue;
      const auto& w1 = walls[i];  // first bounce (nearer TX)
      const auto& w2 = walls[j];  // second bounce (nearer RX)
      if (w1.reflection_coefficient <= 0.0 || w2.reflection_coefficient <= 0.0) {
        continue;
      }
      const Vec2 image1 = geometry::MirrorAcross(tx, w1.segment);
      const Vec2 image2 = geometry::MirrorAcross(image1, w2.segment);
      if (geometry::Distance(image2, rx) < 1e-9) continue;
      const auto bounce2 = geometry::Intersect({image2, rx}, w2.segment);
      if (!bounce2.has_value()) continue;
      const auto bounce1 = geometry::Intersect({image1, *bounce2}, w1.segment);
      if (!bounce1.has_value()) continue;
      if (geometry::Distance(*bounce1, *bounce2) < 1e-9 ||
          geometry::Distance(*bounce1, tx) < 1e-9 ||
          geometry::Distance(*bounce2, rx) < 1e-9) {
        continue;
      }
      Path p;
      p.kind = PathKind::kWallReflection;
      p.vertices = {tx, *bounce1, *bounce2, rx};
      p.length_m = PolylineLength(p.vertices);
      p.gain_at_center = w1.reflection_coefficient * w2.reflection_coefficient *
                         friis_.AmplitudeGain(p.length_m, kChannel11CenterHz);
      p.arrival_direction_rad = ArrivalDirection(p.vertices);
      out.push_back(std::move(p));
    }
  }
}

void RayTracer::AddScatterPaths(Vec2 tx, Vec2 rx, PathSet& out) const {
  for (const auto& s : room_.scatterers()) {
    const double d1 = geometry::Distance(tx, s.position);
    const double d2 = geometry::Distance(s.position, rx);
    if (d1 < 1e-9 || d2 < 1e-9) continue;
    Path p;
    p.kind = PathKind::kScatter;
    p.vertices = {tx, s.position, rx};
    p.length_m = d1 + d2;
    p.gain_at_center = BistaticScatterAmplitude(d1, d2, kChannel11CenterHz,
                                                s.cross_section_m2);
    p.arrival_direction_rad = ArrivalDirection(p.vertices);
    out.push_back(std::move(p));
  }
}

void RayTracer::PruneWeakPaths(PathSet& paths) const {
  const int los = FindLineOfSight(paths);
  if (los < 0) return;
  const double floor_gain =
      paths[static_cast<std::size_t>(los)].gain_at_center *
      options_.min_relative_gain;
  paths.erase(std::remove_if(paths.begin(), paths.end(),
                             [&](const Path& p) {
                               return p.kind != PathKind::kLineOfSight &&
                                      p.gain_at_center < floor_gain;
                             }),
              paths.end());
}

}  // namespace mulink::propagation
