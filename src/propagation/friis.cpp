#include "propagation/friis.h"

#include <cmath>

#include "common/assert.h"
#include "common/constants.h"

namespace mulink::propagation {

double FriisModel::PowerGain(double distance_m, double freq_hz) const {
  MULINK_REQUIRE(distance_m > 0.0, "FriisModel: distance must be > 0");
  MULINK_REQUIRE(freq_hz > 0.0, "FriisModel: frequency must be > 0");
  const double c2 = kSpeedOfLight * kSpeedOfLight;
  return tx_gain * rx_gain * c2 /
         (std::pow(4.0 * kPi * distance_m, attenuation_factor) * freq_hz *
          freq_hz);
}

double FriisModel::AmplitudeGain(double distance_m, double freq_hz) const {
  return std::sqrt(PowerGain(distance_m, freq_hz));
}

double BistaticScatterAmplitude(double d1_m, double d2_m, double freq_hz,
                                double cross_section_m2) {
  MULINK_REQUIRE(d1_m > 0.0 && d2_m > 0.0,
                 "BistaticScatterAmplitude: distances must be > 0");
  MULINK_REQUIRE(freq_hz > 0.0,
                 "BistaticScatterAmplitude: frequency must be > 0");
  MULINK_REQUIRE(cross_section_m2 >= 0.0,
                 "BistaticScatterAmplitude: cross section must be >= 0");
  // The radar equation is a far-field model; clamp the legs at a body-scale
  // Fraunhofer distance so a scatterer brushing an antenna does not produce
  // an unphysical amplitude blow-up.
  constexpr double kFarFieldFloor = 0.4;
  const double d1 = std::max(d1_m, kFarFieldFloor);
  const double d2 = std::max(d2_m, kFarFieldFloor);
  const double lambda = kSpeedOfLight / freq_hz;
  const double power = lambda * lambda * cross_section_m2 /
                       (std::pow(4.0 * kPi, 3.0) * d1 * d1 * d2 * d2);
  return std::sqrt(power);
}

}  // namespace mulink::propagation
