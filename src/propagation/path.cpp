#include "propagation/path.h"

#include <cmath>
#include <sstream>

#include "common/assert.h"

namespace mulink::propagation {

const char* ToString(PathKind kind) {
  switch (kind) {
    case PathKind::kLineOfSight:
      return "LOS";
    case PathKind::kWallReflection:
      return "wall-reflection";
    case PathKind::kScatter:
      return "scatter";
    case PathKind::kHumanReflection:
      return "human-reflection";
  }
  return "unknown";
}

Complex Path::CoefficientAt(double freq_hz) const {
  MULINK_REQUIRE(freq_hz > 0.0, "Path::CoefficientAt: frequency must be > 0");
  const double phase = -2.0 * kPi * freq_hz * length_m / kSpeedOfLight;
  return GainAt(freq_hz) * Complex(std::cos(phase), std::sin(phase));
}

std::string Path::Describe() const {
  std::ostringstream oss;
  oss << ToString(kind) << " len=" << length_m << "m gain=" << gain_at_center
      << " aoa=" << arrival_direction_rad * 180.0 / kPi << "deg";
  return oss.str();
}

double TotalPathPower(const PathSet& paths) {
  double sum = 0.0;
  for (const auto& p : paths) sum += p.gain_at_center * p.gain_at_center;
  return sum;
}

int FindLineOfSight(const PathSet& paths) {
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].kind == PathKind::kLineOfSight) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace mulink::propagation
