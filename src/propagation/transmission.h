// Through-wall transmission: attenuate every path leg that crosses a wall.
//
// The paper's introduction lists through-wall operation among device-free
// sensing's selling points; modelling it needs walls that block as well as
// reflect. This pass runs after ray tracing (and after the human model), so
// interior partitions attenuate the LOS, bounce legs, and human-created
// reflections alike. Bounce vertices lie ON their wall — crossings within a
// small distance of a leg endpoint are not counted.
#pragma once

#include "geometry/room.h"
#include "propagation/path.h"

namespace mulink::propagation {

// Number of proper wall crossings of the leg a->b (endpoint grazes excluded).
std::size_t CountWallCrossings(geometry::Vec2 a, geometry::Vec2 b,
                               const geometry::Room& room);

// Multiply each path's gain by the product of its legs' wall transmission
// factors (10^(-loss_db/20) per crossing).
PathSet ApplyWallTransmission(const PathSet& paths,
                              const geometry::Room& room);

}  // namespace mulink::propagation
