// Image-method ray tracer for rectangular multipath environments.
//
// Generates the static (no human) path set of a TX–RX link: the LOS path,
// specular wall reflections up to a configurable bounce order (the paper's
// analysis uses the one-bounce model of Fig. 1c), and scatter paths off
// furniture-like point scatterers.
#pragma once

#include "geometry/room.h"
#include "propagation/friis.h"
#include "propagation/path.h"

namespace mulink::propagation {

struct TraceOptions {
  // 0 = LOS only, 1 = one-bounce wall reflections (paper model), 2 adds
  // two-bounce wall reflections.
  int max_wall_bounces = 1;
  bool include_scatterers = true;
  // Drop paths whose amplitude gain is below this fraction of the LOS gain
  // (keeps the path set free of numerically irrelevant rays).
  double min_relative_gain = 1e-4;
};

class RayTracer {
 public:
  RayTracer(geometry::Room room, FriisModel friis, TraceOptions options = {});

  // All propagation paths between tx and rx in the static environment.
  // Throws PreconditionError when tx == rx.
  PathSet Trace(geometry::Vec2 tx, geometry::Vec2 rx) const;

  const geometry::Room& room() const { return room_; }
  const FriisModel& friis() const { return friis_; }
  const TraceOptions& options() const { return options_; }

 private:
  void AddLineOfSight(geometry::Vec2 tx, geometry::Vec2 rx, PathSet& out) const;
  void AddOneBouncePaths(geometry::Vec2 tx, geometry::Vec2 rx,
                         PathSet& out) const;
  void AddTwoBouncePaths(geometry::Vec2 tx, geometry::Vec2 rx,
                         PathSet& out) const;
  void AddScatterPaths(geometry::Vec2 tx, geometry::Vec2 rx,
                       PathSet& out) const;
  void PruneWeakPaths(PathSet& paths) const;

  geometry::Room room_;
  FriisModel friis_;
  TraceOptions options_;
};

}  // namespace mulink::propagation
