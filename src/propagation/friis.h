// Free-space path gain per Eq. 9 of the paper (Rappaport [22]):
//
//   Pr = Pt * Gt * Gr * c^2 / ((4 pi d)^n * f^2)
//
// with environmental attenuation factor n (n = 2 in free space). All gains
// here are linear *amplitude* gains (sqrt of the power ratio), unit antenna
// gains unless stated.
#pragma once

namespace mulink::propagation {

struct FriisModel {
  double tx_gain = 1.0;           // Gt (linear power gain)
  double rx_gain = 1.0;           // Gr
  double attenuation_factor = 2.0;  // n of Eq. 9

  // Amplitude gain a = sqrt(Pr/Pt) for distance d (m) and frequency f (Hz).
  double AmplitudeGain(double distance_m, double freq_hz) const;

  // Power gain Pr/Pt.
  double PowerGain(double distance_m, double freq_hz) const;
};

// Bistatic radar-equation amplitude gain for scattering off a compact object
// (human body, furniture):
//   Pr/Pt = Gt * Gr * lambda^2 * sigma / ((4 pi)^3 * d1^2 * d2^2)
// where sigma is the radar cross section (m^2). This models the
// human-created reflected path of Eq. 7, whose strength falls with the
// *product* of the two leg distances rather than their sum.
double BistaticScatterAmplitude(double d1_m, double d2_m, double freq_hz,
                                double cross_section_m2);

}  // namespace mulink::propagation
