#include "propagation/transmission.h"

#include <cmath>

#include "common/assert.h"
#include "geometry/segment.h"

namespace mulink::propagation {

namespace {

// Treat intersections within this distance of a leg endpoint as grazes
// (bounce vertices sit exactly on their wall).
constexpr double kEndpointTolerance = 1e-6;

bool ProperCrossing(geometry::Vec2 a, geometry::Vec2 b,
                    const geometry::Wall& wall) {
  const auto hit = geometry::Intersect({a, b}, wall.segment);
  if (!hit.has_value()) return false;
  if (geometry::Distance(*hit, a) < kEndpointTolerance ||
      geometry::Distance(*hit, b) < kEndpointTolerance) {
    return false;
  }
  return true;
}

}  // namespace

std::size_t CountWallCrossings(geometry::Vec2 a, geometry::Vec2 b,
                               const geometry::Room& room) {
  std::size_t crossings = 0;
  for (const auto& wall : room.walls()) {
    if (ProperCrossing(a, b, wall)) ++crossings;
  }
  return crossings;
}

PathSet ApplyWallTransmission(const PathSet& paths,
                              const geometry::Room& room) {
  PathSet out;
  out.reserve(paths.size());
  for (const auto& path : paths) {
    Path attenuated = path;
    double factor = 1.0;
    for (std::size_t i = 0; i + 1 < path.vertices.size(); ++i) {
      for (const auto& wall : room.walls()) {
        if (ProperCrossing(path.vertices[i], path.vertices[i + 1], wall)) {
          factor *= std::pow(10.0, -wall.transmission_loss_db / 20.0);
        }
      }
    }
    attenuated.gain_at_center = path.gain_at_center * factor;
    out.push_back(std::move(attenuated));
  }
  return out;
}

}  // namespace mulink::propagation
