// Propagation paths produced by the ray tracer.
//
// A path is a polyline TX -> (bounce points...) -> RX with a frequency-
// dependent amplitude gain. The channel impulse response of Eq. 1 in the
// paper is exactly the sum of these paths; wifi::SynthesizeCfr evaluates the
// corresponding Channel Frequency Response on the OFDM subcarrier grid.
#pragma once

#include <string>
#include <vector>

#include "common/constants.h"
#include "geometry/vec2.h"

namespace mulink::propagation {

enum class PathKind {
  kLineOfSight,
  kWallReflection,
  kScatter,          // furniture / static environment scatterer
  kHumanReflection,  // the human-created one-bounce path of Eq. 7
};

const char* ToString(PathKind kind);

struct Path {
  PathKind kind = PathKind::kLineOfSight;

  // Polyline vertices: front() is the TX, back() is the RX.
  std::vector<geometry::Vec2> vertices;

  // Total geometric length in meters.
  double length_m = 0.0;

  // Linear amplitude gain at the carrier center frequency, including path
  // loss, reflection/scattering coefficients and human shadowing attenuation.
  double gain_at_center = 0.0;

  // Angle of arrival at the RX: absolute direction (radians from the +x
  // axis) of the incoming ray's travel direction, i.e. the direction from the
  // last bounce (or TX) toward the RX.
  double arrival_direction_rad = 0.0;

  // Amplitude gain at frequency f (Hz). Friis amplitude scales as 1/f, the
  // property Eq. 10 of the paper uses to split LOS power across subcarriers.
  double GainAt(double freq_hz) const {
    return gain_at_center * (kChannel11CenterHz / freq_hz);
  }

  // Propagation delay in seconds.
  double DelaySeconds() const { return length_m / kSpeedOfLight; }

  // Complex baseband coefficient a * exp(-j 2 pi f d / c) at frequency f.
  Complex CoefficientAt(double freq_hz) const;

  // Human-readable one-line description for debugging / examples.
  std::string Describe() const;
};

// The set of paths that make up one link state (an entire CIR).
using PathSet = std::vector<Path>;

// Total received power (sum of squared gains at center frequency; ignores
// phase — an upper envelope of the coherent sum).
double TotalPathPower(const PathSet& paths);

// Index of the LOS path or -1 when absent.
int FindLineOfSight(const PathSet& paths);

}  // namespace mulink::propagation
