#include "propagation/human.h"

#include <cmath>
#include <limits>

#include "common/assert.h"
#include "geometry/fresnel.h"
#include "geometry/segment.h"
#include "propagation/friis.h"

namespace mulink::propagation {

using geometry::Segment;
using geometry::Vec2;

double ShadowAttenuation(const HumanBody& body, double clearance_ratio) {
  MULINK_REQUIRE(body.min_shadow_amplitude > 0.0 &&
                     body.min_shadow_amplitude <= 1.0,
                 "ShadowAttenuation: beta_min must be in (0,1]");
  MULINK_REQUIRE(body.shadow_width_fresnel > 0.0,
                 "ShadowAttenuation: shadow width must be > 0");
  if (!std::isfinite(clearance_ratio)) return 1.0;
  const double u = clearance_ratio / body.shadow_width_fresnel;
  return 1.0 - (1.0 - body.min_shadow_amplitude) * std::exp(-u * u);
}

PathSet ApplyHuman(const PathSet& static_paths, Vec2 tx, Vec2 rx,
                   const HumanBody& body, double wavelength,
                   LinkHeights heights) {
  MULINK_REQUIRE(wavelength > 0.0, "ApplyHuman: wavelength must be > 0");

  PathSet out;
  out.reserve(static_paths.size() + 1);
  for (const auto& path : static_paths) {
    Path shadowed = path;
    double factor = 1.0;
    double traversed = 0.0;
    for (std::size_t i = 0; i + 1 < path.vertices.size(); ++i) {
      const Segment leg{path.vertices[i], path.vertices[i + 1]};
      const double leg_length = leg.Length();
      if (leg_length < 1e-9) continue;
      const double t = geometry::ClosestParameter(body.position, leg);
      double u;
      if (t <= 0.0 || t >= 1.0) {
        // Projects onto an endpoint: no blockage of this leg.
        u = std::numeric_limits<double>::infinity();
      } else {
        const double radius =
            geometry::FresnelRadiusAt(leg, body.position, wavelength);
        if (radius <= 0.0) {
          u = std::numeric_limits<double>::infinity();
        } else {
          const double lateral =
              geometry::DistancePointToSegment(body.position, leg);
          // Path height at the closest point (linear in traversed length
          // along the whole polyline), and the vertical gap above the head.
          const double frac =
              (traversed + t * leg_length) / std::max(path.length_m, 1e-9);
          const double path_height =
              heights.tx_m + frac * (heights.rx_m - heights.tx_m);
          const double gap = std::max(0.0, path_height - body.height_m);
          u = std::sqrt(lateral * lateral + gap * gap) / radius;
        }
      }
      factor *= ShadowAttenuation(body, u);
      traversed += leg_length;
    }
    shadowed.gain_at_center = path.gain_at_center * factor;
    out.push_back(std::move(shadowed));
  }

  // Human-created one-bounce reflection (Eq. 7's a'_R e^{-j phi'_R} term).
  // When the person stands on (or hugs) the direct link, this would be
  // forward scattering at the same delay as the LOS — energy the shadowing
  // attenuation beta already accounts for — so the reflection is faded in
  // only as the body clears the link's first Fresnel zone.
  const double d1 = geometry::Distance(tx, body.position);
  const double d2 = geometry::Distance(body.position, rx);
  if (d1 > 1e-9 && d2 > 1e-9) {
    const double u_link = geometry::FresnelClearanceRatio(
        Segment{tx, rx}, body.position, wavelength);
    double fade_in = 1.0;
    if (std::isfinite(u_link)) {
      const double u = u_link / body.shadow_width_fresnel;
      fade_in = 1.0 - std::exp(-u * u);
    }
    Path p;
    p.kind = PathKind::kHumanReflection;
    p.vertices = {tx, body.position, rx};
    p.length_m = d1 + d2;
    p.gain_at_center = fade_in *
                       BistaticScatterAmplitude(d1, d2, kChannel11CenterHz,
                                                body.cross_section_m2);
    p.arrival_direction_rad =
        geometry::DirectionAngle(body.position, rx);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace mulink::propagation
