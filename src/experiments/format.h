// ASCII output helpers shared by the figure-regeneration benches.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace mulink::experiments {

// Print "name: (x, y)" series, one row per point.
void PrintSeries(std::ostream& os, const std::string& title,
                 const std::string& x_label, const std::string& y_label,
                 const std::vector<double>& xs, const std::vector<double>& ys);

// Simple fixed-width table.
void PrintTable(std::ostream& os, const std::string& title,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows);

// Format a double with the given precision.
std::string Fmt(double value, int precision = 3);

// Section banner.
void PrintBanner(std::ostream& os, const std::string& text);

// True when argv contains "--smoke": the bench should shrink its workload
// (fewer packets, locations, trials) so CI can execute every figure binary
// in seconds as a crash/regression canary (ctest label `bench_smoke`). A
// smoke run exercises the same code paths; its numbers are not meaningful.
bool SmokeMode(int argc, char** argv);

}  // namespace mulink::experiments
