#include "experiments/workload.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/constants.h"

namespace mulink::experiments {

using geometry::Vec2;

namespace {

// Clamp a position to lie inside the case's room with a small margin.
Vec2 ClampIntoRoom(const LinkCase& link_case, Vec2 p, double margin = 0.3) {
  const auto& room = link_case.room;
  return {std::clamp(p.x, margin, room.width() - margin),
          std::clamp(p.y, margin, room.depth() - margin)};
}

}  // namespace

HumanSpot MakeSpot(const LinkCase& link_case, Vec2 position) {
  // People cannot occupy the antennas: keep spots at least 0.6 m from both
  // endpoints (the AP sits on furniture; the RX is a desktop machine).
  constexpr double kEndpointClearance = 0.6;
  for (const Vec2 endpoint : {link_case.tx, link_case.rx}) {
    const double d = geometry::Distance(position, endpoint);
    if (d < kEndpointClearance) {
      const Vec2 away = d > 1e-9
                            ? (position - endpoint) / d
                            : (link_case.rx - link_case.tx).Normalized().Perp();
      position = endpoint + away * kEndpointClearance;
    }
  }
  HumanSpot spot;
  spot.position = position;
  spot.distance_to_rx_m = geometry::Distance(position, link_case.rx);
  spot.angle_deg = SpotAngleDeg(link_case, position);
  return spot;
}

std::vector<HumanSpot> Grid3x3(const LinkCase& link_case) {
  // Axes: along the link (from RX toward TX and beyond) and lateral. The
  // grid covers "different distances and angles with respect to the
  // receiver" (Sec. V-A): from 1 m out to the link's own length, so each
  // case monitors its own coverage area.
  const Vec2 along = (link_case.tx - link_case.rx).Normalized();
  const Vec2 lateral = along.Perp();

  const double len = link_case.LinkLength();
  const std::vector<double> distances = {1.0, (1.0 + len) / 2.0, len};
  const std::vector<double> offsets = {-1.0, 0.0, 1.0};

  std::vector<HumanSpot> spots;
  spots.reserve(9);
  for (double d : distances) {
    for (double off : offsets) {
      const Vec2 raw = link_case.rx + along * d + lateral * off;
      spots.push_back(MakeSpot(link_case, ClampIntoRoom(link_case, raw)));
    }
  }
  return spots;
}

std::vector<HumanSpot> RandomNearLink(const LinkCase& link_case,
                                      std::size_t count, double max_lateral_m,
                                      Rng& rng) {
  MULINK_REQUIRE(count >= 1, "RandomNearLink: count must be >= 1");
  MULINK_REQUIRE(max_lateral_m >= 0.0,
                 "RandomNearLink: lateral range must be >= 0");
  const Vec2 along = (link_case.rx - link_case.tx).Normalized();
  const Vec2 lateral = along.Perp();
  const double length = link_case.LinkLength();

  std::vector<HumanSpot> spots;
  spots.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = rng.Uniform(0.05, 0.95);
    const double off = rng.Uniform(-max_lateral_m, max_lateral_m);
    const Vec2 raw = link_case.tx + along * (t * length) + lateral * off;
    spots.push_back(MakeSpot(link_case, ClampIntoRoom(link_case, raw)));
  }
  return spots;
}

std::vector<HumanSpot> AngularArc(const LinkCase& link_case, double radius_m,
                                  const std::vector<double>& angles_deg) {
  MULINK_REQUIRE(radius_m > 0.0, "AngularArc: radius must be > 0");
  // Broadside direction: from RX toward TX (the array faces the TX).
  const double broadside = geometry::DirectionAngle(link_case.rx, link_case.tx);
  // The array axis runs at broadside + 90 degrees; positive angles lean
  // toward the positive axis direction (consistent with SpotAngleDeg).
  std::vector<HumanSpot> spots;
  spots.reserve(angles_deg.size());
  for (double a : angles_deg) {
    const double world = broadside - DegToRad(a);
    const Vec2 raw = link_case.rx + Vec2{std::cos(world), std::sin(world)} * radius_m;
    spots.push_back(MakeSpot(link_case, ClampIntoRoom(link_case, raw)));
  }
  return spots;
}

std::vector<HumanSpot> RangeSweep(const LinkCase& link_case,
                                  const std::vector<double>& distances_m,
                                  const std::vector<double>& lateral_offsets_m) {
  const Vec2 along = (link_case.tx - link_case.rx).Normalized();
  const Vec2 lateral = along.Perp();
  std::vector<HumanSpot> spots;
  spots.reserve(distances_m.size() * lateral_offsets_m.size());
  for (double d : distances_m) {
    for (double off : lateral_offsets_m) {
      const Vec2 raw = link_case.rx + along * d + lateral * off;
      spots.push_back(MakeSpot(link_case, ClampIntoRoom(link_case, raw)));
    }
  }
  return spots;
}

WalkTrace CrossLinkWalk(const LinkCase& link_case, double cross_t,
                        double half_span_m) {
  MULINK_REQUIRE(cross_t > 0.0 && cross_t < 1.0,
                 "CrossLinkWalk: cross_t must be in (0,1)");
  MULINK_REQUIRE(half_span_m > 0.0, "CrossLinkWalk: span must be > 0");
  const Vec2 along = (link_case.rx - link_case.tx).Normalized();
  const Vec2 lateral = along.Perp();
  const Vec2 crossing =
      link_case.tx + along * (cross_t * link_case.LinkLength());
  return {ClampIntoRoom(link_case, crossing - lateral * half_span_m),
          ClampIntoRoom(link_case, crossing + lateral * half_span_m)};
}

}  // namespace mulink::experiments
