#include "experiments/parallel_runner.h"

#include <optional>
#include <thread>
#include <vector>

#include "common/assert.h"

namespace mulink::experiments {

ParallelCampaignRunner::ParallelCampaignRunner(std::size_t num_threads)
    : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    num_threads_ = std::thread::hardware_concurrency();
    if (num_threads_ == 0) num_threads_ = 1;
  }
}

void ParallelCampaignRunner::ParallelFor(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  ForIndexed(n, [&fn](std::size_t i, std::size_t) { fn(i); });
}

void ParallelCampaignRunner::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  ForIndexed(n, [&fn](std::size_t i, std::size_t w) { fn(i, w); });
}

CampaignResult ParallelCampaignRunner::Run(
    const std::vector<LinkCase>& cases,
    const std::vector<std::vector<HumanSpot>>& spots_per_case,
    const std::vector<core::DetectionScheme>& schemes,
    const CampaignConfig& config) const {
  ValidateCampaignInputs(cases, spots_per_case, schemes, config);

  // Fork every case's RNG stream sequentially, in case order, on THIS
  // thread — exactly the fork sequence of the serial runner, so each case
  // draws the same samples no matter which pool thread executes it.
  Rng rng(config.seed);
  std::vector<Rng> case_rngs;
  case_rngs.reserve(cases.size());
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    case_rngs.push_back(rng.Fork());
  }

  // Per-case observability shards, merged in case order below — counter
  // totals and histogram counts are then bit-identical for any thread
  // count (only measured nanoseconds vary). Trace rings share one epoch so
  // their spans land on one timeline; each is stamped with the worker that
  // ran the case.
  std::vector<CaseResult> partials(cases.size());
  std::vector<obs::Registry> shards(cases.size());
  std::vector<std::optional<obs::TraceRing>> rings(cases.size());
  const bool tracing = config.collect_trace && obs::kEnabled;
  const auto epoch = obs::TraceRing::Clock::now();
  ForIndexed(cases.size(), [&](std::size_t ci, std::size_t worker) {
    if (tracing) {
      rings[ci].emplace(config.trace_capacity, epoch,
                        static_cast<std::uint32_t>(worker));
    }
    partials[ci] = RunCampaignCase(cases[ci], spots_per_case[ci], schemes,
                                   config, ci, case_rngs[ci], &shards[ci],
                                   rings[ci] ? &*rings[ci] : nullptr);
  });

  // Ordered collection: merge slots in case order regardless of which
  // thread finished first.
  CampaignResult result;
  result.schemes.resize(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    result.schemes[s].scheme = schemes[s];
  }
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    MergeCaseResult(partials[ci], result);
    result.metrics.MergeFrom(shards[ci]);
    if (rings[ci].has_value()) {
      MULINK_OBS_COUNT_REF(result.metrics, kTraceEventsDropped,
                           rings[ci]->dropped());
      rings[ci]->DrainInto(result.trace);
    }
  }
  return result;
}

CampaignResult ParallelCampaignRunner::RunPaper(
    const CampaignConfig& config) const {
  const auto cases = MakePaperCases();
  std::vector<std::vector<HumanSpot>> spots;
  spots.reserve(cases.size());
  for (const auto& c : cases) spots.push_back(Grid3x3(c));
  return Run(cases, spots,
             {core::DetectionScheme::kBaseline,
              core::DetectionScheme::kSubcarrierWeighting,
              core::DetectionScheme::kSubcarrierAndPathWeighting},
             config);
}

}  // namespace mulink::experiments
