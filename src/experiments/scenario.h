// Testbed scenarios encoded from the paper.
//
//  * MakeClassroomLink  — Sec. III's characterization setup: a 6 m x 8 m
//    classroom, 4 m TX-RX link, Tenda AP -> Intel 5300 with 3 antennas.
//  * MakeShortWallLink  — Sec. IV's AoA setup: a 3 m link placed close to a
//    concrete wall to create a strong reflected path (Fig. 5).
//  * MakePaperCases     — Fig. 6's evaluation layout: 5 links (cases) across
//    two furnished office rooms with diverse TX-RX distances. Case 3 is the
//    short link in a relatively vacant area (strong LOS), matching the
//    paper's observation that it performs best and path weighting adds
//    little there; case 1 sits nearest the cluttered wall.
#pragma once

#include <string>
#include <vector>

#include "geometry/room.h"
#include "nic/channel_simulator.h"
#include "wifi/array.h"
#include "wifi/band.h"

namespace mulink::experiments {

struct LinkCase {
  std::string name;
  geometry::Room room;
  geometry::Vec2 tx;
  geometry::Vec2 rx;
  // Base positions of background people (the paper allowed up to 5 students
  // to work ~5 m from the link during the campaign). Installed as
  // nic::BackgroundWalker dynamics by MakeSimulator.
  std::vector<geometry::Vec2> walker_bases;

  // AP / receiver mounting heights (the paper varies AP heights per case).
  propagation::LinkHeights heights;

  double LinkLength() const { return geometry::Distance(tx, rx); }
  // Direction of signal travel along the LOS (tx -> rx).
  double LinkDirection() const { return geometry::DirectionAngle(tx, rx); }
};

LinkCase MakeClassroomLink();
LinkCase MakeShortWallLink();
std::vector<LinkCase> MakePaperCases();

// Through-wall scenario (the intro's through-wall selling point): one 7 m x
// 6 m space split by a drywall partition; the AP sits in the west room, the
// receiver in the east room, and the monitored area is the receiver's room.
LinkCase MakeThroughWallLink();

// Receiver ULA for a case: 3 antennas at half-wavelength spacing, axis
// perpendicular to the link so the LOS arrives at broadside (0 degrees).
wifi::UniformLinearArray MakeArray(const LinkCase& link_case,
                                   std::size_t num_antennas = 3);

// Simulation defaults matching the paper's testbed (50 pkt/s ping stream,
// quantizing Intel 5300 report path, one-bounce tracing).
nic::ChannelSimConfig DefaultSimConfig();

nic::ChannelSimulator MakeSimulator(const LinkCase& link_case,
                                    const nic::ChannelSimConfig& config,
                                    std::size_t num_antennas = 3);
nic::ChannelSimulator MakeSimulator(const LinkCase& link_case);

// Broadside-relative angle (degrees) at which the RX array sees a person
// standing at `position` (sign convention matches MakeArray's orientation).
double SpotAngleDeg(const LinkCase& link_case, geometry::Vec2 position);

}  // namespace mulink::experiments
