// Human-presence workloads for the measurement campaigns.
#pragma once

#include <vector>

#include "common/rng.h"
#include "experiments/scenario.h"

namespace mulink::experiments {

// One tested human-presence location with its evaluation metadata.
struct HumanSpot {
  geometry::Vec2 position;
  double distance_to_rx_m = 0.0;
  double angle_deg = 0.0;  // broadside-relative angle seen by the RX array
};

HumanSpot MakeSpot(const LinkCase& link_case, geometry::Vec2 position);

// The per-case 3x3 grid of Sec. V-A: locations covering different distances
// (1 m .. ~5 m from the receiver, capped by the room) and lateral offsets
// around the link line. Spots falling outside the room are nudged inside.
std::vector<HumanSpot> Grid3x3(const LinkCase& link_case);

// The 500-location characterization workload of Sec. III-A: random positions
// on and near the LOS path (lateral offset up to max_lateral_m).
std::vector<HumanSpot> RandomNearLink(const LinkCase& link_case,
                                      std::size_t count, double max_lateral_m,
                                      Rng& rng);

// Locations on an arc of fixed radius around the receiver, at the given
// broadside-relative angles (Fig. 5c / Fig. 11 workload).
std::vector<HumanSpot> AngularArc(const LinkCase& link_case, double radius_m,
                                  const std::vector<double>& angles_deg);

// Locations binned by distance from the receiver along the link direction
// (Fig. 9 workload): `distances_m` from the RX toward (and past) the TX,
// each with the given lateral offsets.
std::vector<HumanSpot> RangeSweep(const LinkCase& link_case,
                                  const std::vector<double>& distances_m,
                                  const std::vector<double>& lateral_offsets_m);

// Endpoints of the Sec. III-A walk "across the link": perpendicular to the
// LOS, crossing it at parameter `cross_t` in (0,1), extending `half_span_m`
// to each side.
struct WalkTrace {
  geometry::Vec2 from;
  geometry::Vec2 to;
};
WalkTrace CrossLinkWalk(const LinkCase& link_case, double cross_t,
                        double half_span_m);

}  // namespace mulink::experiments
