// Deterministic parallel execution for measurement campaigns.
//
// A campaign is embarrassingly parallel across scenario cells (link cases):
// each case owns its simulator and a pre-forked RNG stream, so cases can run
// on any thread in any order without changing a single drawn sample. The
// runner exploits exactly that: RNG streams are forked *sequentially on the
// calling thread* in case order (reproducing the serial fork sequence), the
// cases are then executed by a std::jthread pool pulling indices from an
// atomic counter, and results land in pre-sized per-case slots merged in
// case order — bit-for-bit identical output regardless of thread count.
#pragma once

#include <cstddef>
#include <functional>

#include "experiments/campaign.h"

namespace mulink::experiments {

class ParallelCampaignRunner {
 public:
  // num_threads == 0 picks std::thread::hardware_concurrency().
  explicit ParallelCampaignRunner(std::size_t num_threads = 0);

  std::size_t num_threads() const { return num_threads_; }

  // Ordered parallel-for: executes fn(i) for every i in [0, n) on the pool.
  // fn must only write to index-i state. The first exception thrown by any
  // task is rethrown here after all threads have joined.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const;

  // Same, with the executing worker's index [0, num_threads) as the second
  // argument — used to stamp trace events with the thread that ran them.
  void ParallelFor(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn) const;

  // Campaign entry points: same inputs and bit-identical outputs as the
  // serial RunCampaign / RunPaperCampaign, with cases fanned out over the
  // pool.
  CampaignResult Run(const std::vector<LinkCase>& cases,
                     const std::vector<std::vector<HumanSpot>>& spots_per_case,
                     const std::vector<core::DetectionScheme>& schemes,
                     const CampaignConfig& config) const;

  CampaignResult RunPaper(const CampaignConfig& config) const;

 private:
  std::size_t num_threads_;
};

}  // namespace mulink::experiments
