// Deterministic parallel execution for measurement campaigns.
//
// A campaign is embarrassingly parallel across scenario cells (link cases):
// each case owns its simulator and a pre-forked RNG stream, so cases can run
// on any thread in any order without changing a single drawn sample. The
// runner exploits exactly that: RNG streams are forked *sequentially on the
// calling thread* in case order (reproducing the serial fork sequence), the
// cases are then executed by a std::jthread pool pulling indices from an
// atomic counter, and results land in pre-sized per-case slots merged in
// case order — bit-for-bit identical output regardless of thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "experiments/campaign.h"

namespace mulink::experiments {

// First-exception capture shared by the pool workers. The annotated
// capability (common/annotations.h) lets Clang -Wthread-safety prove the
// slot is the ONLY cross-thread mutable state in ForIndexed: `error_` is
// unreachable without `mu_`, so a future edit that hoists it out of the
// lock is a compile error under MULINK_STRICT on Clang.
class FirstErrorSlot {
 public:
  // Keep the first error, drop the rest (racing tasks may all throw).
  void Store(std::exception_ptr error) MULINK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (!error_) error_ = std::move(error);
  }

  // Take the stored error (if any) for rethrow after the pool has joined.
  std::exception_ptr Take() MULINK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::exception_ptr out = error_;
    error_ = nullptr;
    return out;
  }

 private:
  Mutex mu_;
  std::exception_ptr error_ MULINK_GUARDED_BY(mu_);
};

class ParallelCampaignRunner {
 public:
  // num_threads == 0 picks std::thread::hardware_concurrency().
  explicit ParallelCampaignRunner(std::size_t num_threads = 0);

  std::size_t num_threads() const { return num_threads_; }

  // Ordered parallel-for over any callable: executes fn(i, worker) for every
  // i in [0, n) on the pool, with the executing worker's index
  // [0, num_threads) as the second argument. The callable is invoked
  // directly (no std::function boxing — serving shards and tight per-case
  // loops pay zero type-erasure dispatch). fn must only write to index-i
  // state. The first exception thrown by any task is rethrown here after
  // all threads have joined.
  template <typename Fn>
  void ForIndexed(std::size_t n, Fn&& fn) const {
    if (n == 0) return;
    const std::size_t workers = std::min(num_threads_, n);
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i, std::size_t{0});
      return;
    }

    std::atomic<std::size_t> next{0};
    FirstErrorSlot first_error;
    {
      std::vector<std::jthread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
              fn(i, w);
            } catch (...) {
              first_error.Store(std::current_exception());
            }
          }
        });
      }
    }  // jthreads join here
    if (auto error = first_error.Take()) std::rethrow_exception(error);
  }

  // Type-erased convenience wrappers over ForIndexed for callers that
  // already hold a std::function (one boxed dispatch per task).
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const;

  // Same, with the worker index — used to stamp trace events with the
  // thread that ran them.
  void ParallelFor(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn) const;

  // Campaign entry points: same inputs and bit-identical outputs as the
  // serial RunCampaign / RunPaperCampaign, with cases fanned out over the
  // pool.
  CampaignResult Run(const std::vector<LinkCase>& cases,
                     const std::vector<std::vector<HumanSpot>>& spots_per_case,
                     const std::vector<core::DetectionScheme>& schemes,
                     const CampaignConfig& config) const;

  CampaignResult RunPaper(const CampaignConfig& config) const;

 private:
  std::size_t num_threads_;
};

}  // namespace mulink::experiments
