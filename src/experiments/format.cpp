#include "experiments/format.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/assert.h"

namespace mulink::experiments {

void PrintSeries(std::ostream& os, const std::string& title,
                 const std::string& x_label, const std::string& y_label,
                 const std::vector<double>& xs, const std::vector<double>& ys) {
  MULINK_REQUIRE(xs.size() == ys.size(), "PrintSeries: size mismatch");
  os << "## " << title << "\n";
  os << "# " << x_label << "\t" << y_label << "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << Fmt(xs[i]) << "\t" << Fmt(ys[i]) << "\n";
  }
  os << "\n";
}

void PrintTable(std::ostream& os, const std::string& title,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  os << "## " << title << "\n";
  std::vector<std::size_t> widths(headers.size(), 0);
  for (std::size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
  }
  for (const auto& row : rows) {
    MULINK_REQUIRE(row.size() == headers.size(),
                   "PrintTable: row width mismatch");
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  print_row(headers);
  std::string rule;
  for (std::size_t c = 0; c < headers.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows) print_row(row);
  os << "\n";
}

std::string Fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void PrintBanner(std::ostream& os, const std::string& text) {
  os << "\n=== " << text << " ===\n\n";
}

bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

}  // namespace mulink::experiments
