#include "experiments/scenario.h"

#include "common/assert.h"
#include "common/constants.h"

namespace mulink::experiments {

using geometry::Room;
using geometry::Scatterer;
using geometry::Vec2;

LinkCase MakeClassroomLink() {
  // 6 m x 8 m classroom (Sec. III-A), concrete shell, desks/computers as
  // scatterers. 4 m link through the room center.
  Room room = Room::Rectangular(6.0, 8.0, 0.65);
  room.AddScatterer({{1.0, 1.2}, 0.35, "desk-row-sw"});
  room.AddScatterer({{5.2, 1.5}, 0.30, "desk-row-se"});
  room.AddScatterer({{0.8, 6.8}, 0.25, "cabinet-nw"});
  room.AddScatterer({{5.3, 7.0}, 0.40, "metal-locker-ne"});
  room.AddScatterer({{3.0, 1.0}, 0.20, "lectern"});

  LinkCase lc;
  lc.name = "classroom-4m";
  lc.room = std::move(room);
  lc.tx = {1.0, 4.0};
  lc.rx = {5.0, 4.0};
  lc.heights = {1.2, 1.1};
  // Sec. III's classroom measurements were controlled, but never sterile:
  // one person at a desk far from the link.
  lc.walker_bases = {{5.4, 7.4}};
  return lc;
}

LinkCase MakeShortWallLink() {
  // 3 m link placed ~1.4 m from a concrete wall to create a notable
  // reflected path (Fig. 5a setup) while leaving room for the 1 m angular
  // arc of test locations around the receiver (Fig. 5c).
  Room room = Room::Rectangular(6.0, 8.0, 0.55);
  room.AddScatterer({{5.0, 6.5}, 0.25, "cabinet"});

  LinkCase lc;
  lc.name = "short-wall-3m";
  lc.room = std::move(room);
  lc.tx = {1.5, 1.4};
  lc.rx = {4.5, 1.4};
  lc.heights = {1.2, 1.1};
  return lc;
}

LinkCase MakeThroughWallLink() {
  Room room = Room::Rectangular(7.0, 6.0, 0.5);
  // Drywall partition at x = 3 with a doorway gap near the south end: two
  // wall segments, light transmission loss, modest reflectivity.
  geometry::Wall partition_north;
  partition_north.segment = {{3.0, 1.2}, {3.0, 6.0}};
  partition_north.reflection_coefficient = 0.3;
  partition_north.transmission_loss_db = 5.0;  // drywall
  partition_north.name = "partition-north";
  room.AddWall(partition_north);
  geometry::Wall partition_south;
  partition_south.segment = {{3.0, 0.0}, {3.0, 0.4}};
  partition_south.reflection_coefficient = 0.3;
  partition_south.transmission_loss_db = 5.0;
  partition_south.name = "partition-south";
  room.AddWall(partition_south);
  room.AddScatterer({{5.8, 5.2}, 0.35, "cabinet-east"});
  room.AddScatterer({{1.0, 5.0}, 0.30, "shelf-west"});

  LinkCase lc;
  lc.name = "through-wall-drywall";
  lc.room = std::move(room);
  lc.tx = {1.2, 3.0};   // west room (AP side)
  lc.rx = {5.8, 3.0};   // east room (monitored side)
  lc.heights = {1.6, 1.1};
  return lc;
}

std::vector<LinkCase> MakePaperCases() {
  std::vector<LinkCase> cases;

  // Room A: 7 m x 9 m furnished office.
  const auto make_room_a = [] {
    Room room = Room::Rectangular(7.0, 9.0, 0.55);
    room.AddScatterer({{0.8, 1.0}, 0.35, "desk-cluster-sw"});
    room.AddScatterer({{6.2, 1.2}, 0.30, "desk-cluster-se"});
    room.AddScatterer({{0.7, 7.8}, 0.40, "metal-cabinet-nw"});
    room.AddScatterer({{6.3, 8.0}, 0.25, "shelf-ne"});
    room.AddScatterer({{3.5, 8.3}, 0.20, "printer-n"});
    room.AddScatterer({{6.4, 4.5}, 0.30, "bookcase-e"});
    return room;
  };

  // Room B: 6 m x 7 m furnished office.
  const auto make_room_b = [] {
    Room room = Room::Rectangular(6.0, 7.0, 0.55);
    room.AddScatterer({{0.9, 0.9}, 0.30, "desk-sw"});
    room.AddScatterer({{5.1, 1.1}, 0.35, "desk-se"});
    room.AddScatterer({{5.4, 6.6}, 0.40, "metal-cabinet-ne"});
    room.AddScatterer({{0.8, 6.1}, 0.25, "shelf-nw"});
    room.AddScatterer({{3.0, 6.4}, 0.20, "whiteboard-n"});
    return room;
  };

  {
    // Case 1: 5 m link along the cluttered north side of room A. Strong
    // NLOS components; the paper sees path weighting dip slightly here due
    // to angle estimation errors.
    LinkCase lc;
    lc.name = "case1-roomA-5m";
    lc.room = make_room_a();
    lc.tx = {1.0, 7.2};
    lc.rx = {6.0, 7.2};
    lc.heights = {2.0, 1.1};  // wall-mounted AP
    lc.walker_bases = {{5.9, 1.6}, {6.2, 2.2}, {5.5, 1.8}};
    cases.push_back(std::move(lc));
  }
  {
    // Case 2: 4 m diagonal link through room A.
    LinkCase lc;
    lc.name = "case2-roomA-4m";
    lc.room = make_room_a();
    lc.tx = {1.2, 2.0};
    lc.rx = {4.0, 4.9};
    lc.heights = {1.7, 1.1};  // shelf AP
    lc.walker_bases = {{6.1, 2.4}, {5.7, 1.6}, {6.2, 3.2}};
    cases.push_back(std::move(lc));
  }
  {
    // Case 3: 3 m link in the relatively vacant center of room A (strong
    // LOS, little nearby clutter).
    LinkCase lc;
    lc.name = "case3-roomA-3m-vacant";
    lc.room = make_room_a();
    lc.tx = {2.0, 4.5};
    lc.rx = {5.0, 4.5};
    lc.heights = {1.4, 1.1};  // desk AP
    lc.walker_bases = {{5.2, 8.4}, {4.8, 0.8}, {5.6, 8.3}};
    cases.push_back(std::move(lc));
  }
  {
    // Case 4: 4.5 m link across room B.
    LinkCase lc;
    lc.name = "case4-roomB-4.5m";
    lc.room = make_room_b();
    lc.tx = {0.8, 2.2};
    lc.rx = {5.3, 2.2};
    lc.heights = {1.9, 1.1};  // wall-mounted AP
    lc.walker_bases = {{5.2, 6.4}, {5.5, 6.0}, {4.9, 6.3}};
    cases.push_back(std::move(lc));
  }
  {
    // Case 5: 3.5 m link near room B's north-east corner clutter.
    LinkCase lc;
    lc.name = "case5-roomB-3.5m";
    lc.room = make_room_b();
    lc.tx = {1.5, 5.2};
    lc.rx = {5.0, 5.2};
    lc.heights = {1.5, 1.1};  // cabinet-top AP
    lc.walker_bases = {{5.0, 1.6}, {4.6, 1.8}, {5.4, 1.7}};
    cases.push_back(std::move(lc));
  }
  return cases;
}

wifi::UniformLinearArray MakeArray(const LinkCase& link_case,
                                   std::size_t num_antennas) {
  // Axis perpendicular to the link; broadside faces the TX so the LOS
  // arrives at 0 degrees.
  const double axis = link_case.LinkDirection() + kPi / 2.0;
  return wifi::UniformLinearArray(num_antennas, kWavelength / 2.0, axis);
}

nic::ChannelSimConfig DefaultSimConfig() {
  nic::ChannelSimConfig config;
  config.friis.attenuation_factor = 2.1;  // mildly lossier than free space
  config.trace.max_wall_bounces = 2;      // walls twice, for realistic richness
  config.trace.include_scatterers = true;
  config.noise.snr_db = 26.0;
  config.packet_rate_hz = 50.0;
  return config;
}

nic::ChannelSimulator MakeSimulator(const LinkCase& link_case,
                                    const nic::ChannelSimConfig& config,
                                    std::size_t num_antennas) {
  nic::ChannelSimConfig with_walkers = config;
  with_walkers.heights = link_case.heights;
  if (with_walkers.walkers.empty()) {
    for (const auto& base : link_case.walker_bases) {
      nic::BackgroundWalker walker;
      walker.base = base;
      with_walkers.walkers.push_back(walker);
    }
  }
  return nic::ChannelSimulator(link_case.room, link_case.tx, link_case.rx,
                               MakeArray(link_case, num_antennas),
                               wifi::BandPlan::Intel5300Channel11(),
                               with_walkers);
}

nic::ChannelSimulator MakeSimulator(const LinkCase& link_case) {
  return MakeSimulator(link_case, DefaultSimConfig());
}

double SpotAngleDeg(const LinkCase& link_case, geometry::Vec2 position) {
  const auto array = MakeArray(link_case);
  // Travel direction of a ray from the person to the RX.
  const double travel = geometry::DirectionAngle(position, link_case.rx);
  return RadToDeg(array.BroadsideAngle(travel));
}

}  // namespace mulink::experiments
