// Measurement-campaign runner: generates CSI sessions for every (case,
// human-location) pair plus empty-room sessions, scores every monitoring
// window under each detection scheme, and returns the labelled scores the
// evaluation figures are computed from.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.h"
#include "core/roc.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"
#include "obs/trace.h"

namespace mulink::experiments {

struct CampaignConfig {
  // Packets per monitoring session at each human location. The paper runs
  // 3 x 5000 packets per location; the default here is scaled down so the
  // full campaign finishes in seconds while keeping dozens of windows per
  // location.
  std::size_t packets_per_location = 600;
  std::size_t calibration_packets = 400;
  // Empty-room monitoring packets per case (negative windows).
  std::size_t empty_packets = 600;
  std::size_t window_packets = 25;

  core::DetectorConfig detector;  // scheme field is ignored (all run)
  nic::ChannelSimConfig sim = DefaultSimConfig();
  propagation::HumanBody human;  // template body (position overwritten)
  std::uint64_t seed = 7;

  // Record case/calibrate/capture spans into CampaignResult::trace
  // (exportable as Chrome trace_event JSON). Metrics counters are always
  // collected when the obs subsystem is compiled in; the trace ring is
  // opt-in because it buffers trace_capacity events per case.
  bool collect_trace = false;
  std::size_t trace_capacity = 4096;
};

// One scored monitoring window with its ground-truth metadata.
struct ScoredWindow {
  double score = 0.0;
  int case_index = 0;
  double distance_to_rx_m = 0.0;  // 0 for empty-room windows
  double angle_deg = 0.0;
};

struct SchemeResult {
  core::DetectionScheme scheme{};
  std::vector<ScoredWindow> positives;  // human present
  std::vector<ScoredWindow> negatives;  // empty room

  core::RocCurve Roc() const;

  // Detection rate (fraction of positive windows >= threshold) over the
  // subset of positives selected by `keep`.
  template <typename Pred>
  double DetectionRate(double threshold, Pred keep) const {
    std::size_t total = 0, hit = 0;
    for (const auto& w : positives) {
      if (!keep(w)) continue;
      ++total;
      if (w.score >= threshold) ++hit;
    }
    return total > 0 ? static_cast<double>(hit) / static_cast<double>(total)
                     : 0.0;
  }
  double DetectionRate(double threshold) const;
  double FalsePositiveRate(double threshold) const;
};

struct CampaignResult {
  std::vector<SchemeResult> schemes;

  // Campaign-wide observability: per-case metric shards merged in case
  // order (bit-identical counter totals for any worker count) and, when
  // CampaignConfig::collect_trace is set, the per-case trace spans in the
  // same order. Empty when the obs subsystem is compiled out.
  obs::Registry metrics;
  std::vector<obs::TraceEvent> trace;

  const SchemeResult& ForScheme(core::DetectionScheme scheme) const;
};

// Run the campaign over `cases`, testing `spots_per_case[i]` human locations
// on case i. All three schemes are scored from the same captured packets.
CampaignResult RunCampaign(const std::vector<LinkCase>& cases,
                           const std::vector<std::vector<HumanSpot>>& spots_per_case,
                           const std::vector<core::DetectionScheme>& schemes,
                           const CampaignConfig& config);

// Convenience: the paper's full Fig. 6 campaign (5 cases, 3x3 grids, all
// three schemes).
CampaignResult RunPaperCampaign(const CampaignConfig& config);

// --- Building blocks shared with ParallelCampaignRunner -------------------

// Partial result of one scenario cell: scored windows per scheme, in
// capture order. One CaseResult is one merge slot of the parallel fan-out.
struct CaseResult {
  std::vector<std::vector<ScoredWindow>> positives;  // [scheme][window]
  std::vector<std::vector<ScoredWindow>> negatives;  // [scheme][window]
};

// Run one case end to end (calibrate, capture, score all schemes) on its
// own pre-forked RNG stream. Self-contained: safe to call from any thread.
// `metrics`/`trace` are this case's private observability shards (null =
// record nothing); the caller merges shards in case order.
CaseResult RunCampaignCase(const LinkCase& link_case,
                           const std::vector<HumanSpot>& spots,
                           const std::vector<core::DetectionScheme>& schemes,
                           const CampaignConfig& config,
                           std::size_t case_index, Rng case_rng,
                           obs::Registry* metrics = nullptr,
                           obs::TraceRing* trace = nullptr);

// Append per-case partials to the campaign result in case order.
void MergeCaseResult(const CaseResult& partial, CampaignResult& result);

// Shared input validation for the serial and parallel runners.
void ValidateCampaignInputs(
    const std::vector<LinkCase>& cases,
    const std::vector<std::vector<HumanSpot>>& spots_per_case,
    const std::vector<core::DetectionScheme>& schemes,
    const CampaignConfig& config);

}  // namespace mulink::experiments
