#include "experiments/campaign.h"

#include "common/assert.h"

namespace mulink::experiments {

core::RocCurve SchemeResult::Roc() const {
  std::vector<double> pos, neg;
  pos.reserve(positives.size());
  neg.reserve(negatives.size());
  for (const auto& w : positives) pos.push_back(w.score);
  for (const auto& w : negatives) neg.push_back(w.score);
  return core::ComputeRoc(pos, neg);
}

double SchemeResult::DetectionRate(double threshold) const {
  return DetectionRate(threshold, [](const ScoredWindow&) { return true; });
}

double SchemeResult::FalsePositiveRate(double threshold) const {
  if (negatives.empty()) return 0.0;
  std::size_t hit = 0;
  for (const auto& w : negatives) {
    if (w.score >= threshold) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(negatives.size());
}

const SchemeResult& CampaignResult::ForScheme(
    core::DetectionScheme scheme) const {
  for (const auto& s : schemes) {
    if (s.scheme == scheme) return s;
  }
  throw PreconditionError("CampaignResult: scheme not present in results");
}

namespace {

std::vector<std::vector<wifi::CsiPacket>> SplitWindows(
    const std::vector<wifi::CsiPacket>& session, std::size_t window) {
  std::vector<std::vector<wifi::CsiPacket>> windows;
  for (std::size_t start = 0; start + window <= session.size();
       start += window) {
    windows.emplace_back(session.begin() + static_cast<std::ptrdiff_t>(start),
                         session.begin() +
                             static_cast<std::ptrdiff_t>(start + window));
  }
  return windows;
}

}  // namespace

CampaignResult RunCampaign(
    const std::vector<LinkCase>& cases,
    const std::vector<std::vector<HumanSpot>>& spots_per_case,
    const std::vector<core::DetectionScheme>& schemes,
    const CampaignConfig& config) {
  MULINK_REQUIRE(cases.size() == spots_per_case.size(),
                 "RunCampaign: cases/spots size mismatch");
  MULINK_REQUIRE(!schemes.empty(), "RunCampaign: need >= 1 scheme");
  MULINK_REQUIRE(config.window_packets >= 2,
                 "RunCampaign: window must hold >= 2 packets");

  CampaignResult result;
  result.schemes.resize(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    result.schemes[s].scheme = schemes[s];
  }

  Rng rng(config.seed);

  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& link_case = cases[ci];
    auto simulator = MakeSimulator(link_case, config.sim);
    Rng case_rng = rng.Fork();

    // Calibration session (empty room).
    const auto calibration =
        simulator.CaptureSession(config.calibration_packets, std::nullopt,
                                 case_rng);

    // One detector per scheme, sharing the calibration capture.
    std::vector<core::Detector> detectors;
    detectors.reserve(schemes.size());
    for (auto scheme : schemes) {
      core::DetectorConfig dc = config.detector;
      dc.scheme = scheme;
      dc.window_packets = config.window_packets;
      detectors.push_back(core::Detector::Calibrate(
          calibration, simulator.band(), simulator.array(), dc));
    }

    // Negative windows: a fresh empty-room session.
    const auto empty_session =
        simulator.CaptureSession(config.empty_packets, std::nullopt, case_rng);
    for (const auto& window :
         SplitWindows(empty_session, config.window_packets)) {
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        ScoredWindow sw;
        sw.score = detectors[s].Score(window);
        sw.case_index = static_cast<int>(ci);
        result.schemes[s].negatives.push_back(sw);
      }
    }

    // Positive windows: one session per human spot.
    for (const auto& spot : spots_per_case[ci]) {
      propagation::HumanBody body = config.human;
      body.position = spot.position;
      const auto session = simulator.CaptureSession(
          config.packets_per_location, body, case_rng);
      for (const auto& window : SplitWindows(session, config.window_packets)) {
        for (std::size_t s = 0; s < schemes.size(); ++s) {
          ScoredWindow sw;
          sw.score = detectors[s].Score(window);
          sw.case_index = static_cast<int>(ci);
          sw.distance_to_rx_m = spot.distance_to_rx_m;
          sw.angle_deg = spot.angle_deg;
          result.schemes[s].positives.push_back(sw);
        }
      }
    }
  }
  return result;
}

CampaignResult RunPaperCampaign(const CampaignConfig& config) {
  const auto cases = MakePaperCases();
  std::vector<std::vector<HumanSpot>> spots;
  spots.reserve(cases.size());
  for (const auto& c : cases) spots.push_back(Grid3x3(c));
  return RunCampaign(cases, spots,
                     {core::DetectionScheme::kBaseline,
                      core::DetectionScheme::kSubcarrierWeighting,
                      core::DetectionScheme::kSubcarrierAndPathWeighting},
                     config);
}

}  // namespace mulink::experiments
