#include "experiments/campaign.h"

#include <optional>

#include "common/assert.h"

namespace mulink::experiments {

core::RocCurve SchemeResult::Roc() const {
  std::vector<double> pos, neg;
  pos.reserve(positives.size());
  neg.reserve(negatives.size());
  for (const auto& w : positives) pos.push_back(w.score);
  for (const auto& w : negatives) neg.push_back(w.score);
  return core::ComputeRoc(pos, neg);
}

double SchemeResult::DetectionRate(double threshold) const {
  return DetectionRate(threshold, [](const ScoredWindow&) { return true; });
}

double SchemeResult::FalsePositiveRate(double threshold) const {
  if (negatives.empty()) return 0.0;
  std::size_t hit = 0;
  for (const auto& w : negatives) {
    if (w.score >= threshold) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(negatives.size());
}

const SchemeResult& CampaignResult::ForScheme(
    core::DetectionScheme scheme) const {
  for (const auto& s : schemes) {
    if (s.scheme == scheme) return s;
  }
  throw PreconditionError("CampaignResult: scheme not present in results");
}

void ValidateCampaignInputs(
    const std::vector<LinkCase>& cases,
    const std::vector<std::vector<HumanSpot>>& spots_per_case,
    const std::vector<core::DetectionScheme>& schemes,
    const CampaignConfig& config) {
  MULINK_REQUIRE(cases.size() == spots_per_case.size(),
                 "RunCampaign: cases/spots size mismatch");
  MULINK_REQUIRE(!schemes.empty(), "RunCampaign: need >= 1 scheme");
  MULINK_REQUIRE(config.window_packets >= 2,
                 "RunCampaign: window must hold >= 2 packets");
}

CaseResult RunCampaignCase(const LinkCase& link_case,
                           const std::vector<HumanSpot>& spots,
                           const std::vector<core::DetectionScheme>& schemes,
                           const CampaignConfig& config,
                           std::size_t case_index, Rng case_rng,
                           obs::Registry* metrics, obs::TraceRing* trace) {
  const auto scope = static_cast<std::int32_t>(case_index);
  MULINK_OBS_TRACE_SPAN(case_span, trace, kCase, scope);
  CaseResult partial;
  partial.positives.resize(schemes.size());
  partial.negatives.resize(schemes.size());

  auto simulator = MakeSimulator(link_case, config.sim);

  // Calibration session (empty room).
  std::vector<wifi::CsiPacket> calibration;
  {
    MULINK_OBS_TRACE_SPAN(span, trace, kCapture, scope);
    calibration = simulator.CaptureSession(config.calibration_packets,
                                           std::nullopt, case_rng);
    MULINK_OBS_COUNT(metrics, kSessionsCaptured);
  }

  // One detector per scheme, sharing the calibration capture. Each keeps a
  // scratch so the whole case scores without per-window allocations.
  std::vector<core::Detector> detectors;
  detectors.reserve(schemes.size());
  {
    MULINK_OBS_TRACE_SPAN(span, trace, kCalibrate, scope);
    MULINK_OBS_STAGE_TIMER(timer, metrics, kCalibrate);
    for (auto scheme : schemes) {
      core::DetectorConfig dc = config.detector;
      dc.scheme = scheme;
      dc.window_packets = config.window_packets;
      detectors.push_back(core::Detector::Calibrate(
          calibration, simulator.band(), simulator.array(), dc));
      MULINK_OBS_COUNT(metrics, kCalibrations);
    }
  }
  std::vector<core::DetectorScratch> scratch(schemes.size());
  for (auto& s : scratch) s.metrics = metrics;

  const std::size_t window = config.window_packets;

  // Negative windows: a fresh empty-room session.
  std::vector<wifi::CsiPacket> empty_session;
  {
    MULINK_OBS_TRACE_SPAN(span, trace, kCapture, scope);
    empty_session = simulator.CaptureSession(config.empty_packets,
                                             std::nullopt, case_rng);
    MULINK_OBS_COUNT(metrics, kSessionsCaptured);
  }
  const std::span<const wifi::CsiPacket> empty_span(empty_session);
  for (std::size_t start = 0; start + window <= empty_session.size();
       start += window) {
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      ScoredWindow sw;
      sw.score = detectors[s].Score(empty_span.subspan(start, window),
                                    scratch[s]);
      sw.case_index = static_cast<int>(case_index);
      partial.negatives[s].push_back(sw);
    }
  }

  // Positive windows: one session per human spot.
  std::vector<wifi::CsiPacket> session;
  for (const auto& spot : spots) {
    propagation::HumanBody body = config.human;
    body.position = spot.position;
    {
      MULINK_OBS_TRACE_SPAN(span, trace, kCapture, scope);
      session = simulator.CaptureSession(config.packets_per_location, body,
                                         case_rng);
      MULINK_OBS_COUNT(metrics, kSessionsCaptured);
    }
    const std::span<const wifi::CsiPacket> session_span(session);
    for (std::size_t start = 0; start + window <= session.size();
         start += window) {
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        ScoredWindow sw;
        sw.score = detectors[s].Score(session_span.subspan(start, window),
                                      scratch[s]);
        sw.case_index = static_cast<int>(case_index);
        sw.distance_to_rx_m = spot.distance_to_rx_m;
        sw.angle_deg = spot.angle_deg;
        partial.positives[s].push_back(sw);
      }
    }
  }
  MULINK_OBS_COUNT(metrics, kCasesRun);
  return partial;
}

void MergeCaseResult(const CaseResult& partial, CampaignResult& result) {
  MULINK_REQUIRE(partial.positives.size() == result.schemes.size() &&
                     partial.negatives.size() == result.schemes.size(),
                 "MergeCaseResult: scheme count mismatch");
  for (std::size_t s = 0; s < result.schemes.size(); ++s) {
    auto& scheme = result.schemes[s];
    scheme.negatives.insert(scheme.negatives.end(),
                            partial.negatives[s].begin(),
                            partial.negatives[s].end());
    scheme.positives.insert(scheme.positives.end(),
                            partial.positives[s].begin(),
                            partial.positives[s].end());
  }
}

CampaignResult RunCampaign(
    const std::vector<LinkCase>& cases,
    const std::vector<std::vector<HumanSpot>>& spots_per_case,
    const std::vector<core::DetectionScheme>& schemes,
    const CampaignConfig& config) {
  ValidateCampaignInputs(cases, spots_per_case, schemes, config);

  CampaignResult result;
  result.schemes.resize(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    result.schemes[s].scheme = schemes[s];
  }

  Rng rng(config.seed);
  // Per-case shards merged in case order — the exact merge discipline the
  // parallel runner uses, so serial and N-thread totals are bit-identical.
  const auto epoch = obs::TraceRing::Clock::now();
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    obs::Registry shard;
    std::optional<obs::TraceRing> ring;
    if (config.collect_trace && obs::kEnabled) {
      ring.emplace(config.trace_capacity, epoch, /*tid=*/0);
    }
    MergeCaseResult(RunCampaignCase(cases[ci], spots_per_case[ci], schemes,
                                    config, ci, rng.Fork(), &shard,
                                    ring ? &*ring : nullptr),
                    result);
    result.metrics.MergeFrom(shard);
    if (ring.has_value()) {
      MULINK_OBS_COUNT_REF(result.metrics, kTraceEventsDropped,
                           ring->dropped());
      ring->DrainInto(result.trace);
    }
  }
  return result;
}

CampaignResult RunPaperCampaign(const CampaignConfig& config) {
  const auto cases = MakePaperCases();
  std::vector<std::vector<HumanSpot>> spots;
  spots.reserve(cases.size());
  for (const auto& c : cases) spots.push_back(Grid3x3(c));
  return RunCampaign(cases, spots,
                     {core::DetectionScheme::kBaseline,
                      core::DetectionScheme::kSubcarrierWeighting,
                      core::DetectionScheme::kSubcarrierAndPathWeighting},
                     config);
}

}  // namespace mulink::experiments
