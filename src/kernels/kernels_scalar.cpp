// Portable scalar backend: a table over the reference loops in
// generic_impl.h. Compiled with -ffp-contract=off so GCC never fuses the
// multiply-adds the AVX2 backend keeps separate.
#include "kernels/generic_impl.h"
#include "kernels/table.h"

namespace mulink::kernels::detail {

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      &GenericAtan2,
      &GenericSinCos,
      &GenericDeinterleave,
      &GenericRotateRows,
      &GenericMuAccumulateRow,
      &GenericMeanStabilityAccumulate,
      &GenericMultiply,
      &GenericSumSquares,
      &GenericNormalizedDistanceSq,
      &GenericWeightedCovariance,
      &GenericBartlettScan,
      &GenericMusicScan,
  };
  return table;
}

}  // namespace mulink::kernels::detail
