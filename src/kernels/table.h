// Internal dispatch table: one function pointer per kernel. kernels.cpp
// selects a table at startup (CPUID) or on SetBackend(); the public entry
// points in kernels.h forward through the active table.
#pragma once

#include <cstddef>

#include "common/constants.h"

namespace mulink::kernels::detail {

struct KernelTable {
  void (*atan2)(const double* y, const double* x, std::size_t n, double* out);
  void (*sincos)(const double* x, std::size_t n, double* sin_out,
                 double* cos_out);
  void (*deinterleave)(const Complex* src, std::size_t n, double* re,
                       double* im);
  void (*rotate_rows)(const Complex* src, std::size_t rows, std::size_t cols,
                      const double* cos_v, const double* sin_v, Complex* dst);
  void (*mu_accumulate_row)(const Complex* row, const double* los_frac,
                            double dominant, std::size_t n, double* mu_accum);
  void (*mean_stability_accumulate)(const double* mu_row, double median,
                                    std::size_t n, double* mean_mu,
                                    double* stability);
  void (*multiply)(const double* a, const double* b, std::size_t n,
                   double* out);
  double (*sum_squares)(const double* a, std::size_t n);
  double (*normalized_distance_sq)(const double* a, const double* b,
                                   double norm, std::size_t n);
  void (*weighted_covariance)(const double* re, const double* im,
                              std::size_t antennas, std::size_t n,
                              const double* w_rep, Complex* out);
  void (*bartlett_scan)(const double* steer_re, const double* steer_im,
                        std::size_t points, std::size_t antennas,
                        const double* const* packed_covs, std::size_t num_covs,
                        double inv_norm, double* const* outs);
  void (*music_scan)(const double* steer_re, const double* steer_im,
                     std::size_t points, std::size_t antennas,
                     const double* noise_re, const double* noise_im,
                     std::size_t noise_dim, double denom_floor, double* out);
};

const KernelTable& ScalarTable();

#if defined(MULINK_SIMD_AVX2)
const KernelTable& Avx2Table();
#endif

}  // namespace mulink::kernels::detail
