// AVX2 backend. Compiled only when MULINK_SIMD=ON, with
// -mavx2 -mno-fma -ffp-contract=off: FMA contraction would change rounding
// versus the scalar reference, and the bit-identity contract (DESIGN.md §14)
// forbids that. Every vector sequence below evaluates the same operation DAG
// as the matching loop in generic_impl.h — elementwise kernels with
// lane == element, reductions with lane == (t % 4) stripe — and loop tails
// either fall back to the scalar helpers or accumulate into the extracted
// stripe lanes, so outputs match the scalar backend bitwise.
#if defined(MULINK_SIMD_AVX2)

#include <immintrin.h>

#include <cstddef>

#include "common/constants.h"
#include "kernels/generic_impl.h"
#include "kernels/table.h"

namespace mulink::kernels::detail {
namespace {

inline __m256d SignMask() { return _mm256_set1_pd(-0.0); }

inline __m256d Abs(__m256d x) { return _mm256_andnot_pd(SignMask(), x); }

inline __m256d Neg(__m256d x) { return _mm256_xor_pd(x, SignMask()); }

// Horizontal combine in the striped order (l0 + l2) + (l1 + l3).
inline double StripedCombine(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);    // l0, l1
  const __m128d hi = _mm256_extractf128_pd(acc, 1);  // l2, l3
  const __m128d pair = _mm_add_pd(lo, hi);           // l0+l2, l1+l3
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

// Finish a striped reduction: spill the vector stripes, accumulate the
// scalar tail terms into lanes 0..2 exactly like detail::StripedSum, then
// combine. `term(t)` must be the same expression the main vector loop used.
template <typename Term>
inline double StripedFinish(__m256d acc, std::size_t t, std::size_t n,
                            Term term) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  if (t < n) lanes[0] += term(t++);
  if (t < n) lanes[1] += term(t++);
  if (t < n) lanes[2] += term(t);
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

// Load 4 interleaved complex values into split re/im vectors.
inline void LoadComplex4(const Complex* src, __m256d* re, __m256d* im) {
  const double* p = reinterpret_cast<const double*>(src);
  const __m256d z0 = _mm256_loadu_pd(p);      // a0 b0 a1 b1
  const __m256d z1 = _mm256_loadu_pd(p + 4);  // a2 b2 a3 b3
  const __m256d lo = _mm256_unpacklo_pd(z0, z1);  // a0 a2 a1 a3
  const __m256d hi = _mm256_unpackhi_pd(z0, z1);  // b0 b2 b1 b3
  *re = _mm256_permute4x64_pd(lo, 0b11011000);    // a0 a1 a2 a3
  *im = _mm256_permute4x64_pd(hi, 0b11011000);    // b0 b1 b2 b3
}

// ---- trig ---------------------------------------------------------------

inline __m256d Atan2Vec(__m256d y, __m256d x) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d ax = Abs(x);
  const __m256d ay = Abs(y);
  const __m256d swap = _mm256_cmp_pd(ay, ax, _CMP_GT_OQ);
  const __m256d num = _mm256_blendv_pd(ay, ax, swap);
  const __m256d den = _mm256_blendv_pd(ax, ay, swap);
  const __m256d den_pos = _mm256_cmp_pd(den, zero, _CMP_GT_OQ);
  // The div runs speculatively for den == 0 lanes (0/0 -> NaN, discarded by
  // the blend); SSE/AVX arithmetic never traps under the default MXCSR.
  const __m256d ratio = _mm256_div_pd(num, den);
  const __m256d t = _mm256_blendv_pd(zero, ratio, den_pos);
  const __m256d t1 = _mm256_div_pd(
      t, _mm256_add_pd(one, _mm256_sqrt_pd(
                                _mm256_add_pd(one, _mm256_mul_pd(t, t)))));
  const __m256d t2 = _mm256_div_pd(
      t1, _mm256_add_pd(one, _mm256_sqrt_pd(_mm256_add_pd(
                                 one, _mm256_mul_pd(t1, t1)))));
  const __m256d u = _mm256_mul_pd(t2, t2);
  __m256d poly = _mm256_set1_pd(kA9);
  poly = _mm256_add_pd(_mm256_set1_pd(kA8), _mm256_mul_pd(u, poly));
  poly = _mm256_add_pd(_mm256_set1_pd(kA7), _mm256_mul_pd(u, poly));
  poly = _mm256_add_pd(_mm256_set1_pd(kA6), _mm256_mul_pd(u, poly));
  poly = _mm256_add_pd(_mm256_set1_pd(kA5), _mm256_mul_pd(u, poly));
  poly = _mm256_add_pd(_mm256_set1_pd(kA4), _mm256_mul_pd(u, poly));
  poly = _mm256_add_pd(_mm256_set1_pd(kA3), _mm256_mul_pd(u, poly));
  poly = _mm256_add_pd(_mm256_set1_pd(kA2), _mm256_mul_pd(u, poly));
  poly = _mm256_add_pd(_mm256_set1_pd(kA1), _mm256_mul_pd(u, poly));
  __m256d base = _mm256_mul_pd(
      _mm256_set1_pd(4.0),
      _mm256_add_pd(t2, _mm256_mul_pd(_mm256_mul_pd(t2, u), poly)));
  base = _mm256_blendv_pd(base, _mm256_sub_pd(_mm256_set1_pd(kHalfPi), base),
                          swap);
  // blendv keys on the sign bit of x — exactly std::signbit (includes -0).
  base =
      _mm256_blendv_pd(base, _mm256_sub_pd(_mm256_set1_pd(kPi), base), x);
  // copysign(base, y)
  return _mm256_or_pd(_mm256_andnot_pd(SignMask(), base),
                      _mm256_and_pd(SignMask(), y));
}

void Avx2Atan2(const double* y, const double* x, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     Atan2Vec(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) {
    out[i] = Atan2Scalar(y[i], x[i]);
  }
}

inline void SinCosVec(__m256d x, __m256d* sin_out, __m256d* cos_out) {
  const __m256d fn = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kTwoOverPi)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(x, _mm256_mul_pd(fn, _mm256_set1_pd(kPiOver2Hi))),
      _mm256_mul_pd(fn, _mm256_set1_pd(kPiOver2Lo)));
  const __m256d t = _mm256_mul_pd(r, r);
  __m256d sp = _mm256_set1_pd(kS6);
  sp = _mm256_add_pd(_mm256_set1_pd(kS5), _mm256_mul_pd(t, sp));
  sp = _mm256_add_pd(_mm256_set1_pd(kS4), _mm256_mul_pd(t, sp));
  sp = _mm256_add_pd(_mm256_set1_pd(kS3), _mm256_mul_pd(t, sp));
  sp = _mm256_add_pd(_mm256_set1_pd(kS2), _mm256_mul_pd(t, sp));
  sp = _mm256_add_pd(_mm256_set1_pd(kS1), _mm256_mul_pd(t, sp));
  const __m256d sin_r =
      _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(r, t), sp));
  __m256d cp = _mm256_set1_pd(kC6);
  cp = _mm256_add_pd(_mm256_set1_pd(kC5), _mm256_mul_pd(t, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(kC4), _mm256_mul_pd(t, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(kC3), _mm256_mul_pd(t, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(kC2), _mm256_mul_pd(t, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(kC1), _mm256_mul_pd(t, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(-0.5), _mm256_mul_pd(t, cp));
  const __m256d cos_r = _mm256_add_pd(_mm256_set1_pd(1.0),
                                      _mm256_mul_pd(t, cp));
  // Quadrant select: fn is integral and small, so the int32 conversion is
  // exact, and &3 on two's complement matches the scalar int64 path.
  const __m128i n32 = _mm256_cvtpd_epi32(fn);
  const __m128i quad = _mm_and_si128(n32, _mm_set1_epi32(3));
  const __m256d m1 = _mm256_castsi256_pd(
      _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(quad, _mm_set1_epi32(1))));
  const __m256d m2 = _mm256_castsi256_pd(
      _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(quad, _mm_set1_epi32(2))));
  const __m256d m3 = _mm256_castsi256_pd(
      _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(quad, _mm_set1_epi32(3))));
  __m256d s = sin_r;
  __m256d c = cos_r;
  s = _mm256_blendv_pd(s, cos_r, m1);
  c = _mm256_blendv_pd(c, Neg(sin_r), m1);
  s = _mm256_blendv_pd(s, Neg(sin_r), m2);
  c = _mm256_blendv_pd(c, Neg(cos_r), m2);
  s = _mm256_blendv_pd(s, Neg(cos_r), m3);
  c = _mm256_blendv_pd(c, sin_r, m3);
  *sin_out = s;
  *cos_out = c;
}

void Avx2SinCos(const double* x, std::size_t n, double* sin_out,
                double* cos_out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d s;
    __m256d c;
    SinCosVec(_mm256_loadu_pd(x + i), &s, &c);
    _mm256_storeu_pd(sin_out + i, s);
    _mm256_storeu_pd(cos_out + i, c);
  }
  for (; i < n; ++i) {
    const SinCosPair sc = SinCosScalar(x[i]);
    sin_out[i] = sc.sin;
    cos_out[i] = sc.cos;
  }
}

// ---- complex layout / rotation -----------------------------------------

void Avx2Deinterleave(const Complex* src, std::size_t n, double* re,
                      double* im) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d r;
    __m256d m;
    LoadComplex4(src + i, &r, &m);
    _mm256_storeu_pd(re + i, r);
    _mm256_storeu_pd(im + i, m);
  }
  for (; i < n; ++i) {
    re[i] = src[i].real();
    im[i] = src[i].imag();
  }
}

void Avx2RotateRows(const Complex* src, std::size_t rows, std::size_t cols,
                    const double* cos_v, const double* sin_v, Complex* dst) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* src_row = reinterpret_cast<const double*>(src + r * cols);
    double* dst_row = reinterpret_cast<double*>(dst + r * cols);
    std::size_t k = 0;
    for (; k + 2 <= cols; k += 2) {
      const __m256d z = _mm256_loadu_pd(src_row + 2 * k);  // a0 b0 a1 b1
      const __m128d c128 = _mm_loadu_pd(cos_v + k);
      const __m128d s128 = _mm_loadu_pd(sin_v + k);
      const __m256d cc = _mm256_permute4x64_pd(
          _mm256_castpd128_pd256(c128), 0b01010000);  // c0 c0 c1 c1
      const __m256d ss = _mm256_permute4x64_pd(
          _mm256_castpd128_pd256(s128), 0b01010000);  // s0 s0 s1 s1
      const __m256d t1 = _mm256_mul_pd(z, cc);  // a*c  b*c ..
      const __m256d zs = _mm256_permute_pd(z, 0b0101);  // b0 a0 b1 a1
      const __m256d t2 = _mm256_mul_pd(zs, ss);  // b*s  a*s ..
      // even lanes a*c - b*s, odd lanes b*c + a*s — the RotateOne DAG.
      _mm256_storeu_pd(dst_row + 2 * k, _mm256_addsub_pd(t1, t2));
    }
    for (; k < cols; ++k) {
      const Complex* src_c = src + r * cols;
      Complex* dst_c = dst + r * cols;
      dst_c[k] = RotateOne(src_c[k], cos_v[k], sin_v[k]);
    }
  }
}

// ---- multipath / weighting ----------------------------------------------

void Avx2MuAccumulateRow(const Complex* row, const double* los_frac,
                         double dominant, std::size_t n, double* mu_accum) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d dom = _mm256_set1_pd(dominant);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m256d re;
    __m256d im;
    LoadComplex4(row + k, &re, &im);
    const __m256d power =
        _mm256_add_pd(_mm256_mul_pd(re, re), _mm256_mul_pd(im, im));
    const __m256d num = _mm256_mul_pd(_mm256_loadu_pd(los_frac + k), dom);
    const __m256d ratio = _mm256_div_pd(num, power);  // blended away if 0/0
    const __m256d pos = _mm256_cmp_pd(power, zero, _CMP_GT_OQ);
    const __m256d mu = _mm256_blendv_pd(zero, ratio, pos);
    _mm256_storeu_pd(mu_accum + k,
                     _mm256_add_pd(_mm256_loadu_pd(mu_accum + k), mu));
  }
  for (; k < n; ++k) {
    mu_accum[k] += MuOne(row[k], los_frac[k], dominant);
  }
}

void Avx2MeanStabilityAccumulate(const double* mu_row, double median,
                                 std::size_t n, double* mean_mu,
                                 double* stability) {
  const __m256d med = _mm256_set1_pd(median);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d mu = _mm256_loadu_pd(mu_row + k);
    _mm256_storeu_pd(mean_mu + k,
                     _mm256_add_pd(_mm256_loadu_pd(mean_mu + k), mu));
    const __m256d gt = _mm256_cmp_pd(mu, med, _CMP_GT_OQ);
    // false lanes add an exact +0.0
    _mm256_storeu_pd(
        stability + k,
        _mm256_add_pd(_mm256_loadu_pd(stability + k), _mm256_and_pd(gt, one)));
  }
  for (; k < n; ++k) {
    mean_mu[k] += mu_row[k];
    stability[k] += mu_row[k] > median ? 1.0 : 0.0;
  }
}

void Avx2Multiply(const double* a, const double* b, std::size_t n,
                  double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

double Avx2SumSquares(const double* a, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m256d v = _mm256_loadu_pd(a + t);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  return StripedFinish(acc, t, n, [&](std::size_t i) { return a[i] * a[i]; });
}

double Avx2NormalizedDistanceSq(const double* a, const double* b, double norm,
                                std::size_t n) {
  const __m256d nv = _mm256_set1_pd(norm);
  __m256d acc = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m256d d = _mm256_div_pd(
        _mm256_sub_pd(_mm256_loadu_pd(a + t), _mm256_loadu_pd(b + t)), nv);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  return StripedFinish(acc, t, n, [&](std::size_t i) {
    const double d = (a[i] - b[i]) / norm;
    return d * d;
  });
}

// ---- covariance ---------------------------------------------------------

double Avx2WeightedDiag(const double* xr, const double* xi, const double* w,
                        std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m256d r = _mm256_loadu_pd(xr + t);
    const __m256d m = _mm256_loadu_pd(xi + t);
    const __m256d sum =
        _mm256_add_pd(_mm256_mul_pd(r, r), _mm256_mul_pd(m, m));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(w + t), sum));
  }
  return StripedFinish(acc, t, n, [&](std::size_t i) {
    return w[i] * (xr[i] * xr[i] + xi[i] * xi[i]);
  });
}

void Avx2WeightedCross(const double* xr, const double* xi, const double* yr,
                       const double* yi, const double* w, std::size_t n,
                       double* out_re, double* out_im) {
  __m256d acc_re = _mm256_setzero_pd();
  __m256d acc_im = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m256d ar = _mm256_loadu_pd(xr + t);
    const __m256d ai = _mm256_loadu_pd(xi + t);
    const __m256d br = _mm256_loadu_pd(yr + t);
    const __m256d bi = _mm256_loadu_pd(yi + t);
    const __m256d wv = _mm256_loadu_pd(w + t);
    const __m256d re_sum =
        _mm256_add_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi));
    const __m256d im_sum =
        _mm256_sub_pd(_mm256_mul_pd(ai, br), _mm256_mul_pd(ar, bi));
    acc_re = _mm256_add_pd(acc_re, _mm256_mul_pd(wv, re_sum));
    acc_im = _mm256_add_pd(acc_im, _mm256_mul_pd(wv, im_sum));
  }
  *out_re = StripedFinish(acc_re, t, n, [&](std::size_t i) {
    return w[i] * (xr[i] * yr[i] + xi[i] * yi[i]);
  });
  *out_im = StripedFinish(acc_im, t, n, [&](std::size_t i) {
    return w[i] * (xi[i] * yr[i] - xr[i] * yi[i]);
  });
}

void Avx2WeightedCovariance(const double* re, const double* im,
                            std::size_t antennas, std::size_t n,
                            const double* w_rep, Complex* out) {
  for (std::size_t i = 0; i < antennas; ++i) {
    const double* xr = re + i * n;
    const double* xi = im + i * n;
    out[i * antennas + i] = Complex(Avx2WeightedDiag(xr, xi, w_rep, n), 0.0);
    for (std::size_t j = i + 1; j < antennas; ++j) {
      double c_re = 0.0;
      double c_im = 0.0;
      Avx2WeightedCross(xr, xi, re + j * n, im + j * n, w_rep, n, &c_re,
                        &c_im);
      out[i * antennas + j] = Complex(c_re, c_im);
      out[j * antennas + i] = Complex(c_re, -c_im);
    }
  }
}

// ---- spectral scans -----------------------------------------------------

void Avx2BartlettScan(const double* steer_re, const double* steer_im,
                      std::size_t points, std::size_t antennas,
                      const double* const* packed_covs, std::size_t num_covs,
                      double inv_norm, double* const* outs) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d inv = _mm256_set1_pd(inv_norm);
  const __m256d two = _mm256_set1_pd(2.0);
  std::size_t i = 0;
  for (; i + 4 <= points; i += 4) {
    for (std::size_t c = 0; c < num_covs; ++c) {
      const double* packed = packed_covs[c];
      __m256d acc = zero;
      for (std::size_t m = 0; m < antennas; ++m) {
        const __m256d p = _mm256_loadu_pd(steer_re + m * points + i);
        const __m256d q = _mm256_loadu_pd(steer_im + m * points + i);
        const __m256d a2 =
            _mm256_add_pd(_mm256_mul_pd(p, p), _mm256_mul_pd(q, q));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(packed[m]), a2));
      }
      std::size_t idx = antennas;
      for (std::size_t m = 0; m < antennas; ++m) {
        for (std::size_t j = m + 1; j < antennas; ++j) {
          const __m256d r = _mm256_set1_pd(packed[idx]);
          const __m256d s = _mm256_set1_pd(packed[idx + 1]);
          idx += 2;
          const __m256d p = _mm256_loadu_pd(steer_re + m * points + i);
          const __m256d q = _mm256_loadu_pd(steer_im + m * points + i);
          const __m256d u = _mm256_loadu_pd(steer_re + j * points + i);
          const __m256d v = _mm256_loadu_pd(steer_im + j * points + i);
          const __m256d cross_re =
              _mm256_add_pd(_mm256_mul_pd(p, u), _mm256_mul_pd(q, v));
          const __m256d cross_im =
              _mm256_sub_pd(_mm256_mul_pd(p, v), _mm256_mul_pd(q, u));
          const __m256d term = _mm256_mul_pd(
              two, _mm256_sub_pd(_mm256_mul_pd(r, cross_re),
                                 _mm256_mul_pd(s, cross_im)));
          acc = _mm256_add_pd(acc, term);
        }
      }
      // max(value, +0.0) matches `value > 0 ? value : 0.0` (also for -0).
      _mm256_storeu_pd(outs[c] + i,
                       _mm256_max_pd(_mm256_mul_pd(acc, inv), zero));
    }
  }
  for (; i < points; ++i) {
    for (std::size_t c = 0; c < num_covs; ++c) {
      const double value =
          BartlettPoint(steer_re, steer_im, points, antennas, packed_covs[c],
                        i) *
          inv_norm;
      outs[c][i] = value > 0.0 ? value : 0.0;
    }
  }
}

void Avx2MusicScan(const double* steer_re, const double* steer_im,
                   std::size_t points, std::size_t antennas,
                   const double* noise_re, const double* noise_im,
                   std::size_t noise_dim, double denom_floor, double* out) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d floor_v = _mm256_set1_pd(denom_floor);
  std::size_t i = 0;
  for (; i + 4 <= points; i += 4) {
    __m256d denom = _mm256_setzero_pd();
    for (std::size_t e = 0; e < noise_dim; ++e) {
      __m256d dot_re = _mm256_setzero_pd();
      __m256d dot_im = _mm256_setzero_pd();
      for (std::size_t m = 0; m < antennas; ++m) {
        const __m256d vr = _mm256_set1_pd(noise_re[e * antennas + m]);
        const __m256d vi = _mm256_set1_pd(noise_im[e * antennas + m]);
        const __m256d p = _mm256_loadu_pd(steer_re + m * points + i);
        const __m256d q = _mm256_loadu_pd(steer_im + m * points + i);
        dot_re = _mm256_add_pd(
            dot_re, _mm256_add_pd(_mm256_mul_pd(vr, p), _mm256_mul_pd(vi, q)));
        dot_im = _mm256_add_pd(
            dot_im, _mm256_sub_pd(_mm256_mul_pd(vr, q), _mm256_mul_pd(vi, p)));
      }
      denom = _mm256_add_pd(denom,
                            _mm256_add_pd(_mm256_mul_pd(dot_re, dot_re),
                                          _mm256_mul_pd(dot_im, dot_im)));
    }
    _mm256_storeu_pd(out + i,
                     _mm256_div_pd(one, _mm256_max_pd(denom, floor_v)));
  }
  for (; i < points; ++i) {
    out[i] = MusicPoint(steer_re, steer_im, points, antennas, noise_re,
                        noise_im, noise_dim, denom_floor, i);
  }
}

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      &Avx2Atan2,
      &Avx2SinCos,
      &Avx2Deinterleave,
      &Avx2RotateRows,
      &Avx2MuAccumulateRow,
      &Avx2MeanStabilityAccumulate,
      &Avx2Multiply,
      &Avx2SumSquares,
      &Avx2NormalizedDistanceSq,
      &Avx2WeightedCovariance,
      &Avx2BartlettScan,
      &Avx2MusicScan,
  };
  return table;
}

}  // namespace mulink::kernels::detail

#endif  // MULINK_SIMD_AVX2
