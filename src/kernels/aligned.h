// 64-byte-aligned, grow-only double buffer backing the SoA workspaces.
//
// The scoring hot path pre-sizes these during calibration / the first
// window; Ensure() on an already-large-enough buffer is a branch and a
// store, so steady-state decisions never allocate (mulink-lint fences the
// directories this is used from).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "common/assert.h"

namespace mulink::kernels {

class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  AlignedBuffer(const AlignedBuffer& other) { CopyFrom(other); }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }

  ~AlignedBuffer() { Release(); }

  // Grow-only resize; contents are unspecified after a growth (every caller
  // fills the buffer right after). Shrinking requests just adjust size().
  void Ensure(std::size_t n) {
    if (n > capacity_) {
      Release();
      data_ = Allocate(n);  // mulink-lint: allow(alloc): grow-only, cold after warmup
      capacity_ = n;
    }
    size_ = n;
  }

  double* data() { return data_; }
  const double* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

 private:
  static double* Allocate(std::size_t n) {
    // Round the byte size up to the 64-byte alignment quantum as
    // std::aligned_alloc requires.
    const std::size_t bytes = (n * sizeof(double) + 63) / 64 * 64;
    void* p = std::aligned_alloc(64, bytes);  // mulink-lint: allow(alloc): cold growth
    MULINK_REQUIRE(p != nullptr, "AlignedBuffer allocation failed");
    return static_cast<double*>(p);
  }

  void CopyFrom(const AlignedBuffer& other) {
    data_ = nullptr;
    size_ = other.size_;
    capacity_ = other.size_;
    if (size_ > 0) {
      data_ = Allocate(size_);
      std::memcpy(data_, other.data_, size_ * sizeof(double));
    }
  }

  void Release() {
    std::free(data_);  // mulink-lint: allow(alloc): paired with aligned_alloc above
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace mulink::kernels
