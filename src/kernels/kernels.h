// Vectorized kernel layer for the scoring core (DESIGN.md §14).
//
// A small set of typed kernels — split-complex covariance accumulation,
// steering-table spectral scans (Bartlett / MUSIC), the sanitize trig maps,
// and the weighting / scoring reductions — each available as a portable
// scalar implementation and, when MULINK_SIMD is ON and the CPU supports it,
// an AVX2 implementation selected by runtime CPUID dispatch.
//
// Contract: for identical inputs, every backend produces bit-identical
// outputs. Elementwise kernels vectorize with lane == output element, so the
// scalar loop and the SIMD lanes perform the same rounded operations per
// element. Reductions are defined with a fixed 4-way striped accumulation
// (acc[t % 4], combined as (l0+l2)+(l1+l3)); the scalar backend implements
// exactly that striping, so reassociation never diverges between backends.
// The trig kernels (Atan2/SinCos) share one polynomial definition across
// backends — they agree with libm to ~1e-13 but are NOT bit-identical to it;
// call sites that switched from libm re-baselined (tolerance policy in
// DESIGN.md §14).
#pragma once

#include <cstddef>

#include "common/annotations.h"
#include "common/constants.h"

namespace mulink::kernels {

enum class Backend {
  kScalar,  // portable fallback; also the semantic reference
  kAvx2,    // AVX2 (no FMA — contraction would break cross-backend parity)
};

const char* ToString(Backend backend);

// Whether the AVX2 backend was compiled in (-DMULINK_SIMD=ON).
bool SimdCompiledIn();

// Whether `backend` can execute on this machine (compiled in + CPUID).
bool BackendAvailable(Backend backend);

// The backend every kernel below currently dispatches to. Defaults to the
// fastest available one (AVX2 when compiled in and supported by the CPU).
Backend ActiveBackend();

// Override dispatch (parity tests score the same window under both
// backends). Requires BackendAvailable(backend).
void SetBackend(Backend backend);

// Restore the default (auto-detected) backend.
void ResetBackend();

// ---- sanitize trig maps ------------------------------------------------

// out[i] = atan2(y[i], x[i]). Shared half-angle + series definition across
// backends; agrees with std::atan2 to ~1e-13 rad (exact for the axis cases
// atan2(±0, x)). Both zero -> ±0 like libm.
MULINK_HOT void Atan2(const double* y, const double* x, std::size_t n, double* out);

// sin_out[i] = sin(x[i]), cos_out[i] = cos(x[i]) via Cody–Waite reduction
// and the classic fdlibm kernel polynomials; ~1e-14 absolute error for the
// |x| < 1e6 range the sanitize corrections live in.
MULINK_HOT void SinCos(const double* x, std::size_t n, double* sin_out, double* cos_out);

// ---- complex layout / rotation -----------------------------------------

// Split an interleaved complex array into SoA planes: re[i] = src[i].real().
MULINK_HOT void Deinterleave(const Complex* src, std::size_t n, double* re, double* im);

// dst[r*cols + k] = src[r*cols + k] * (cos_v[k] + i*sin_v[k]) — the common
// per-subcarrier phase rotation applied to every antenna row. In-place
// (dst == src) is allowed.
MULINK_HOT void RotateRows(const Complex* src, std::size_t rows, std::size_t cols,
                const double* cos_v, const double* sin_v, Complex* dst);

// ---- multipath / weighting reductions ----------------------------------

// Eq. 11 per-subcarrier multipath factors of one antenna row, accumulated:
// mu_accum[k] += |row[k]|^2 > 0 ? (los_frac[k] * dominant) / |row[k]|^2 : 0.
MULINK_HOT void MuAccumulateRow(const Complex* row, const double* los_frac,
                     double dominant, std::size_t n, double* mu_accum);

// Eq. 14/15 accumulation for one packet's mu row:
// mean_mu[k] += mu_row[k]; stability[k] += (mu_row[k] > median) ? 1 : 0.
MULINK_HOT void MeanStabilityAccumulate(const double* mu_row, double median,
                             std::size_t n, double* mean_mu,
                             double* stability);

// out[i] = a[i] * b[i] (path-weight application).
MULINK_HOT void Multiply(const double* a, const double* b, std::size_t n, double* out);

// Striped sum of a[i]^2 (spectrum norm).
MULINK_HOT double SumSquares(const double* a, std::size_t n);

// Striped sum of ((a[i] - b[i]) / norm)^2 (the combined scheme's
// profile-normalized spectrum distance).
MULINK_HOT double NormalizedDistanceSq(const double* a, const double* b, double norm,
                            std::size_t n);

// ---- covariance --------------------------------------------------------

// Weighted Hermitian sample covariance from split-complex planes.
// re/im hold `antennas` planes of n elements each (plane m at offset m*n);
// w_rep holds the per-element weight (the subcarrier weight replicated
// across packets, zero-clipped). Writes the full antennas x antennas
// row-major Hermitian matrix: out[i][j] = striped-sum_t w[t] * x_i(t) *
// conj(x_j(t)), with out[j][i] its exact conjugate and a real diagonal.
MULINK_HOT void WeightedCovariance(const double* re, const double* im,
                        std::size_t antennas, std::size_t n,
                        const double* w_rep, Complex* out);

// ---- spectral scans ----------------------------------------------------

// Packed real layout of a Hermitian matrix consumed by the scans below:
// [diag_0 .. diag_{A-1}, re_01, im_01, re_02, im_02, ..] (pairs i<j in
// row-major order). Size is A^2 doubles.
std::size_t PackedHermitianSize(std::size_t antennas);
MULINK_HOT void PackHermitian(const Complex* cov, std::size_t antennas, double* packed);

// Bartlett scan over an SoA steering table (steer_re/steer_im: plane m at
// offset m*points), batched across `num_covs` packed covariances so the
// steering work amortizes: outs[c][i] = max(a_i^H R_c a_i * inv_norm, 0).
MULINK_HOT void BartlettScan(const double* steer_re, const double* steer_im,
                  std::size_t points, std::size_t antennas,
                  const double* const* packed_covs, std::size_t num_covs,
                  double inv_norm, double* const* outs);

// MUSIC scan: out[i] = 1 / max(sum_e |<v_e, a_i>|^2, denom_floor) over the
// noise eigenvectors v_e (noise_re/noise_im: vector e at offset e*antennas).
MULINK_HOT void MusicScan(const double* steer_re, const double* steer_im,
               std::size_t points, std::size_t antennas,
               const double* noise_re, const double* noise_im,
               std::size_t noise_dim, double denom_floor, double* out);

}  // namespace mulink::kernels
