// Portable reference implementations of every kernel (DESIGN.md §14).
//
// These ARE the semantic definition of the kernel layer: the scalar backend
// is a thin table over these loops, and the AVX2 backend must reproduce
// their results bitwise. Reductions use a fixed 4-way striped accumulator
// (lane = t % 4, combined (l0+l2)+(l1+l3)) so a 4-lane vector accumulator
// performs the identical rounded additions. The AVX2 TU also calls the
// per-element helpers here for loop tails.
#pragma once

#include <cstddef>

#include "common/constants.h"
#include "kernels/trig_core.h"

namespace mulink::kernels::detail {

// Striped 4-accumulator sum: the reduction order every backend implements.
// Tail elements (n % 4) continue filling lanes 0..2 in order, matching the
// AVX2 masked-tail load where absent lanes contribute exact +0.0 terms.
template <typename Term>
inline double StripedSum(std::size_t n, Term term) {
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    acc0 += term(t);
    acc1 += term(t + 1);
    acc2 += term(t + 2);
    acc3 += term(t + 3);
  }
  if (t < n) acc0 += term(t++);
  if (t < n) acc1 += term(t++);
  if (t < n) acc2 += term(t);
  return (acc0 + acc2) + (acc1 + acc3);
}

inline void GenericAtan2(const double* y, const double* x, std::size_t n,
                         double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Atan2Scalar(y[i], x[i]);
  }
}

inline void GenericSinCos(const double* x, std::size_t n, double* sin_out,
                          double* cos_out) {
  for (std::size_t i = 0; i < n; ++i) {
    const SinCosPair sc = SinCosScalar(x[i]);
    sin_out[i] = sc.sin;
    cos_out[i] = sc.cos;
  }
}

inline void GenericDeinterleave(const Complex* src, std::size_t n, double* re,
                                double* im) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = src[i].real();
    im[i] = src[i].imag();
  }
}

// (a + bi) * (c + si) with the exact operation order the AVX2 path uses:
// re' = a*c - b*s, im' = a*s + b*c. This matches libstdc++'s non-C99
// complex operator* DAG for finite inputs, so switching the sanitize
// rotation onto this kernel did not change results.
inline Complex RotateOne(Complex z, double c, double s) {
  const double re = z.real();
  const double im = z.imag();
  return {re * c - im * s, re * s + im * c};
}

inline void GenericRotateRows(const Complex* src, std::size_t rows,
                              std::size_t cols, const double* cos_v,
                              const double* sin_v, Complex* dst) {
  for (std::size_t r = 0; r < rows; ++r) {
    const Complex* src_row = src + r * cols;
    Complex* dst_row = dst + r * cols;
    for (std::size_t k = 0; k < cols; ++k) {
      dst_row[k] = RotateOne(src_row[k], cos_v[k], sin_v[k]);
    }
  }
}

inline double MuOne(Complex h, double los_frac, double dominant) {
  const double re = h.real();
  const double im = h.imag();
  const double power = re * re + im * im;
  return power > 0.0 ? (los_frac * dominant) / power : 0.0;
}

inline void GenericMuAccumulateRow(const Complex* row, const double* los_frac,
                                   double dominant, std::size_t n,
                                   double* mu_accum) {
  for (std::size_t k = 0; k < n; ++k) {
    mu_accum[k] += MuOne(row[k], los_frac[k], dominant);
  }
}

inline void GenericMeanStabilityAccumulate(const double* mu_row, double median,
                                           std::size_t n, double* mean_mu,
                                           double* stability) {
  for (std::size_t k = 0; k < n; ++k) {
    mean_mu[k] += mu_row[k];
    // The AVX2 path adds (mask & 1.0), i.e. +0.0 on false lanes — exact.
    stability[k] += mu_row[k] > median ? 1.0 : 0.0;
  }
}

inline void GenericMultiply(const double* a, const double* b, std::size_t n,
                            double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

inline double GenericSumSquares(const double* a, std::size_t n) {
  return StripedSum(n, [&](std::size_t t) { return a[t] * a[t]; });
}

inline double GenericNormalizedDistanceSq(const double* a, const double* b,
                                          double norm, std::size_t n) {
  return StripedSum(n, [&](std::size_t t) {
    const double d = (a[t] - b[t]) / norm;
    return d * d;
  });
}

inline void GenericWeightedCovariance(const double* re, const double* im,
                                      std::size_t antennas, std::size_t n,
                                      const double* w_rep, Complex* out) {
  for (std::size_t i = 0; i < antennas; ++i) {
    const double* xr = re + i * n;
    const double* xi = im + i * n;
    out[i * antennas + i] =
        Complex(StripedSum(n,
                           [&](std::size_t t) {
                             return w_rep[t] *
                                    (xr[t] * xr[t] + xi[t] * xi[t]);
                           }),
                0.0);
    for (std::size_t j = i + 1; j < antennas; ++j) {
      const double* yr = re + j * n;
      const double* yi = im + j * n;
      // R_ij = sum_t w * x_i(t) * conj(x_j(t))
      const double c_re = StripedSum(n, [&](std::size_t t) {
        return w_rep[t] * (xr[t] * yr[t] + xi[t] * yi[t]);
      });
      const double c_im = StripedSum(n, [&](std::size_t t) {
        return w_rep[t] * (xi[t] * yr[t] - xr[t] * yi[t]);
      });
      out[i * antennas + j] = Complex(c_re, c_im);
      out[j * antennas + i] = Complex(c_re, -c_im);
    }
  }
}

// One Bartlett grid point against one packed covariance: the expanded
// Hermitian quadratic form a^H R a = sum_m d_m |a_m|^2
// + 2 * sum_{m<j} [re_mj*(p*u + q*v) - im_mj*(p*v - q*u)] with a_m = p + qi,
// a_j = u + vi. Evaluated per grid point (SIMD lane = grid point), so both
// backends run the same per-point DAG.
inline double BartlettPoint(const double* steer_re, const double* steer_im,
                            std::size_t points, std::size_t antennas,
                            const double* packed, std::size_t i) {
  double acc = 0.0;
  for (std::size_t m = 0; m < antennas; ++m) {
    const double p = steer_re[m * points + i];
    const double q = steer_im[m * points + i];
    acc += packed[m] * (p * p + q * q);
  }
  std::size_t idx = antennas;
  for (std::size_t m = 0; m < antennas; ++m) {
    for (std::size_t j = m + 1; j < antennas; ++j) {
      const double r = packed[idx];
      const double s = packed[idx + 1];
      idx += 2;
      const double p = steer_re[m * points + i];
      const double q = steer_im[m * points + i];
      const double u = steer_re[j * points + i];
      const double v = steer_im[j * points + i];
      acc += 2.0 * (r * (p * u + q * v) - s * (p * v - q * u));
    }
  }
  return acc;
}

inline void GenericBartlettScan(const double* steer_re, const double* steer_im,
                                std::size_t points, std::size_t antennas,
                                const double* const* packed_covs,
                                std::size_t num_covs, double inv_norm,
                                double* const* outs) {
  for (std::size_t i = 0; i < points; ++i) {
    for (std::size_t c = 0; c < num_covs; ++c) {
      const double value =
          BartlettPoint(steer_re, steer_im, points, antennas, packed_covs[c],
                        i) *
          inv_norm;
      outs[c][i] = value > 0.0 ? value : 0.0;
    }
  }
}

inline double MusicPoint(const double* steer_re, const double* steer_im,
                         std::size_t points, std::size_t antennas,
                         const double* noise_re, const double* noise_im,
                         std::size_t noise_dim, double denom_floor,
                         std::size_t i) {
  double denom = 0.0;
  for (std::size_t e = 0; e < noise_dim; ++e) {
    const double* vr = noise_re + e * antennas;
    const double* vi = noise_im + e * antennas;
    double dot_re = 0.0;
    double dot_im = 0.0;
    for (std::size_t m = 0; m < antennas; ++m) {
      const double p = steer_re[m * points + i];
      const double q = steer_im[m * points + i];
      // conj(v_m) * a_m
      dot_re += vr[m] * p + vi[m] * q;
      dot_im += vr[m] * q - vi[m] * p;
    }
    denom += dot_re * dot_re + dot_im * dot_im;
  }
  return 1.0 / (denom > denom_floor ? denom : denom_floor);
}

inline void GenericMusicScan(const double* steer_re, const double* steer_im,
                             std::size_t points, std::size_t antennas,
                             const double* noise_re, const double* noise_im,
                             std::size_t noise_dim, double denom_floor,
                             double* out) {
  for (std::size_t i = 0; i < points; ++i) {
    out[i] = MusicPoint(steer_re, steer_im, points, antennas, noise_re,
                        noise_im, noise_dim, denom_floor, i);
  }
}

}  // namespace mulink::kernels::detail
