#include "kernels/kernels.h"

#include <atomic>

#include "common/assert.h"
#include "kernels/table.h"

namespace mulink::kernels {
namespace {

using detail::KernelTable;

bool CpuHasAvx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelTable* TableFor(Backend backend) {
#if defined(MULINK_SIMD_AVX2)
  if (backend == Backend::kAvx2) {
    return &detail::Avx2Table();
  }
#else
  (void)backend;
#endif
  return &detail::ScalarTable();
}

Backend DefaultBackend() {
  return SimdCompiledIn() && CpuHasAvx2() ? Backend::kAvx2 : Backend::kScalar;
}

// The active table pointer. Dispatch is a relaxed atomic load: scoring
// threads only ever read it, and the only writers are process start and the
// test-only SetBackend/ResetBackend (called while no scoring runs).
std::atomic<const KernelTable*> g_active_table{TableFor(DefaultBackend())};
std::atomic<Backend> g_active_backend{DefaultBackend()};

const KernelTable& Active() {
  return *g_active_table.load(std::memory_order_relaxed);
}

}  // namespace

const char* ToString(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool SimdCompiledIn() {
#if defined(MULINK_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool BackendAvailable(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return SimdCompiledIn() && CpuHasAvx2();
  }
  return false;
}

Backend ActiveBackend() {
  return g_active_backend.load(std::memory_order_relaxed);
}

void SetBackend(Backend backend) {
  MULINK_REQUIRE(BackendAvailable(backend),
                 "requested kernel backend is not available on this machine");
  g_active_backend.store(backend, std::memory_order_relaxed);
  g_active_table.store(TableFor(backend), std::memory_order_relaxed);
}

void ResetBackend() { SetBackend(DefaultBackend()); }

void Atan2(const double* y, const double* x, std::size_t n, double* out) {
  Active().atan2(y, x, n, out);
}

void SinCos(const double* x, std::size_t n, double* sin_out, double* cos_out) {
  Active().sincos(x, n, sin_out, cos_out);
}

void Deinterleave(const Complex* src, std::size_t n, double* re, double* im) {
  Active().deinterleave(src, n, re, im);
}

void RotateRows(const Complex* src, std::size_t rows, std::size_t cols,
                const double* cos_v, const double* sin_v, Complex* dst) {
  Active().rotate_rows(src, rows, cols, cos_v, sin_v, dst);
}

void MuAccumulateRow(const Complex* row, const double* los_frac,
                     double dominant, std::size_t n, double* mu_accum) {
  Active().mu_accumulate_row(row, los_frac, dominant, n, mu_accum);
}

void MeanStabilityAccumulate(const double* mu_row, double median,
                             std::size_t n, double* mean_mu,
                             double* stability) {
  Active().mean_stability_accumulate(mu_row, median, n, mean_mu, stability);
}

void Multiply(const double* a, const double* b, std::size_t n, double* out) {
  Active().multiply(a, b, n, out);
}

double SumSquares(const double* a, std::size_t n) {
  return Active().sum_squares(a, n);
}

double NormalizedDistanceSq(const double* a, const double* b, double norm,
                            std::size_t n) {
  return Active().normalized_distance_sq(a, b, norm, n);
}

void WeightedCovariance(const double* re, const double* im,
                        std::size_t antennas, std::size_t n,
                        const double* w_rep, Complex* out) {
  Active().weighted_covariance(re, im, antennas, n, w_rep, out);
}

std::size_t PackedHermitianSize(std::size_t antennas) {
  return antennas * antennas;
}

// Packing is layout shuffling, not arithmetic — one scalar definition.
void PackHermitian(const Complex* cov, std::size_t antennas, double* packed) {
  for (std::size_t m = 0; m < antennas; ++m) {
    packed[m] = cov[m * antennas + m].real();
  }
  std::size_t idx = antennas;
  for (std::size_t m = 0; m < antennas; ++m) {
    for (std::size_t j = m + 1; j < antennas; ++j) {
      packed[idx] = cov[m * antennas + j].real();
      packed[idx + 1] = cov[m * antennas + j].imag();
      idx += 2;
    }
  }
}

void BartlettScan(const double* steer_re, const double* steer_im,
                  std::size_t points, std::size_t antennas,
                  const double* const* packed_covs, std::size_t num_covs,
                  double inv_norm, double* const* outs) {
  Active().bartlett_scan(steer_re, steer_im, points, antennas, packed_covs,
                         num_covs, inv_norm, outs);
}

void MusicScan(const double* steer_re, const double* steer_im,
               std::size_t points, std::size_t antennas,
               const double* noise_re, const double* noise_im,
               std::size_t noise_dim, double denom_floor, double* out) {
  Active().music_scan(steer_re, steer_im, points, antennas, noise_re, noise_im,
                      noise_dim, denom_floor, out);
}

}  // namespace mulink::kernels
