// Shared scalar definitions of the kernel-layer trig maps.
//
// Both backends include this header: the scalar backend loops over these
// functions directly, and the AVX2 backend evaluates the SAME constants and
// operation DAG with vector instructions (plus these scalars for tails), so
// the two backends are bit-identical by construction. The definitions follow
// the classic fdlibm structure — Cody–Waite two-term π/2 reduction with the
// __kernel_sin / __kernel_cos minimax polynomials — but are NOT bit-identical
// to libm (call sites re-baselined; tolerance policy in DESIGN.md §14).
#pragma once

#include <cmath>
#include <cstdint>

namespace mulink::kernels::detail {

// 2/π and the two-term Cody–Waite split of π/2 (fdlibm e_rem_pio2 constants).
inline constexpr double kTwoOverPi = 6.36619772367581382433e-01;
inline constexpr double kPiOver2Hi = 1.57079632673412561417e+00;
inline constexpr double kPiOver2Lo = 6.07710050650619224932e-11;

// fdlibm __kernel_sin coefficients (odd series in r over |r| <= π/4).
inline constexpr double kS1 = -1.66666666666666324348e-01;
inline constexpr double kS2 = 8.33333333332248946124e-03;
inline constexpr double kS3 = -1.98412698298579493134e-04;
inline constexpr double kS4 = 2.75573137070700676789e-06;
inline constexpr double kS5 = -2.50507602534068634195e-08;
inline constexpr double kS6 = 1.58969099521155010221e-10;

// fdlibm __kernel_cos coefficients (even series in r).
inline constexpr double kC1 = 4.16666666666666019037e-02;
inline constexpr double kC2 = -1.38888888888741095749e-03;
inline constexpr double kC3 = 2.48015872894767294178e-05;
inline constexpr double kC4 = -2.75573143513906633035e-07;
inline constexpr double kC5 = 2.08757232129817482790e-09;
inline constexpr double kC6 = -1.13596475577881948265e-11;

inline constexpr double kHalfPi = 1.57079632679489661923;
inline constexpr double kPi = 3.14159265358979323846;

// atan Taylor coefficients: atan(z) = z + z^3 * P(z^2) with P evaluated in
// Horner form; after two half-angle reductions |z| <= tan(π/16) ≈ 0.1989, so
// truncating after the z^21 term leaves < 4e-18 series error.
inline constexpr double kA1 = -1.0 / 3.0;
inline constexpr double kA2 = 1.0 / 5.0;
inline constexpr double kA3 = -1.0 / 7.0;
inline constexpr double kA4 = 1.0 / 9.0;
inline constexpr double kA5 = -1.0 / 11.0;
inline constexpr double kA6 = 1.0 / 13.0;
inline constexpr double kA7 = -1.0 / 15.0;
inline constexpr double kA8 = 1.0 / 17.0;
inline constexpr double kA9 = -1.0 / 19.0;

struct SinCosPair {
  double sin;
  double cos;
};

// Argument reduction uses round-to-nearest-even (std::nearbyint under the
// default FP environment == _mm256_round_pd(_MM_FROUND_TO_NEAREST_INT)); the
// quadrant index comes from the reduced multiple of π/2 masked to 2 bits,
// which two's-complement arithmetic makes consistent for negative n.
inline SinCosPair SinCosScalar(double x) {
  const double fn = std::nearbyint(x * kTwoOverPi);
  const double r = (x - fn * kPiOver2Hi) - fn * kPiOver2Lo;
  const double t = r * r;
  const double sin_r =
      r + r * t *
              (kS1 + t * (kS2 + t * (kS3 + t * (kS4 + t * (kS5 + t * kS6)))));
  const double cos_r =
      1.0 + t * (-0.5 +
                 t * (kC1 +
                      t * (kC2 + t * (kC3 + t * (kC4 + t * (kC5 + t * kC6))))));
  const int quadrant = static_cast<int>(static_cast<std::int64_t>(fn)) & 3;
  switch (quadrant) {
    case 0:
      return {sin_r, cos_r};
    case 1:
      return {cos_r, -sin_r};
    case 2:
      return {-sin_r, -cos_r};
    default:
      return {-cos_r, sin_r};
  }
}

// atan2 via octant fold + two half-angle reductions + Taylor series. The
// fold computes atan(min/max) on [0, 1], the half-angle steps
// t' = t / (1 + sqrt(1 + t^2)) each halve the angle (so the final series
// argument is tan(angle/4) <= tan(π/16)), and the quadrant is restored from
// the signs. Division and sqrt are exactly rounded on every backend, and the
// branches map to blends whose scalar semantics are replicated here, so the
// backends agree bitwise. atan2(±0, x>0) = ±0 and atan2(±0, x<0) = ±π match
// libm exactly.
inline double Atan2Scalar(double y, double x) {
  const double ax = std::fabs(x);
  const double ay = std::fabs(y);
  const bool swap = ay > ax;
  const double num = swap ? ax : ay;
  const double den = swap ? ay : ax;
  const double t = den > 0.0 ? num / den : 0.0;
  const double t1 = t / (1.0 + std::sqrt(1.0 + t * t));
  const double t2 = t1 / (1.0 + std::sqrt(1.0 + t1 * t1));
  const double u = t2 * t2;
  const double poly =
      kA1 +
      u * (kA2 +
           u * (kA3 +
                u * (kA4 +
                     u * (kA5 +
                          u * (kA6 + u * (kA7 + u * (kA8 + u * kA9)))))));
  double base = 4.0 * (t2 + t2 * u * poly);
  if (swap) {
    base = kHalfPi - base;
  }
  if (std::signbit(x)) {
    base = kPi - base;
  }
  return std::copysign(base, y);
}

}  // namespace mulink::kernels::detail
