#include "core/engine.h"

#include <bit>
#include <optional>
#include <utility>

#include "common/assert.h"
#include "dsp/stats.h"
#include "kernels/kernels.h"

namespace mulink::core {

struct SensingEngine::LinkState {
  LinkState(std::unique_ptr<Detector> owned,
            std::shared_ptr<const Detector> shared,
            const std::vector<double>& empty_scores, StreamingConfig cfg,
            DetectorScratch* engine_scratch)
      : owned_detector(std::move(owned)),
        shared_detector(std::move(shared)),
        view(owned_detector ? owned_detector.get() : shared_detector.get()),
        config(cfg),
        pre_sanitize(view->UsesSanitizedInput()),
        ingest(config),
        scratch(engine_scratch != nullptr
                    ? engine_scratch
                    // mulink-lint: allow(alloc): ctor, setup path
                    : (own_scratch = std::make_unique<DetectorScratch>())
                          .get()) {
    MULINK_REQUIRE(config.window_packets >= 2,
                   "SensingEngine: window must hold >= 2 packets");
    MULINK_REQUIRE(config.hop_packets >= 1 &&
                       config.hop_packets <= config.window_packets,
                   "SensingEngine: hop must be in [1, window]");
    MULINK_REQUIRE(owned_detector != nullptr || !config.calibration.enabled,
                   "SensingEngine: adaptive calibration mutates the detector "
                   "in place; shared-detector links must disable it");
    if (config.use_hmm) {
      hmm = PresenceHmm::FitFromEmptyScores(empty_scores, config.hmm);
      filter.emplace(*hmm);  // mulink-lint: allow(alloc): ctor, setup path
    }
    // Seed the drift watchdog's EWMA at the expected quiet score so the
    // first windows after construction or Reset cannot spuriously trip the
    // flag (mirrors StreamingDetector).
    if (!empty_scores.empty()) {
      ingest.quiet_score_seed = dsp::Mean(empty_scores);
      ingest.empty_score_ewma = ingest.quiet_score_seed;
    }
    calibrator.Configure(*view, std::span<const double>(empty_scores),
                         config.calibration);
    // mulink-lint: allow(alloc): ctor, setup path
    ring.reserve(config.window_packets);
    // mulink-lint: allow(alloc): ctor, setup path
    window.reserve(config.window_packets);
    if (pre_sanitize) {
      // mulink-lint: allow(alloc): ctor, setup path
      mu_ring.resize(config.window_packets);
      // mulink-lint: allow(alloc): ctor, setup path
      mu_median_ring.resize(config.window_packets, 0.0);
      // mulink-lint: allow(alloc): ctor, setup path
      mu_window.resize(config.window_packets, nullptr);
      // mulink-lint: allow(alloc): ctor, setup path
      median_window.resize(config.window_packets, 0.0);
      if (view->config().scheme ==
          DetectionScheme::kSubcarrierAndPathWeighting) {
        // Split-complex slab cache (see SampleCovarianceSlabsInto): each
        // ring slot keeps its packet pre-deinterleaved so full-mask
        // combined windows skip both the window copy and the per-window
        // re-split of every packet. One contiguous block for the whole
        // ring: at fleet scale the window read is the dominant cold-memory
        // cost of a decision, and a single sequential run (with one wrap)
        // streams far better than window_packets scattered heap blocks.
        soa_stride = 2 * view->num_antennas() * view->num_subcarriers();
        // mulink-lint: allow(alloc): ctor, setup path
        soa_slabs.resize(config.window_packets * soa_stride, 0.0);
        // mulink-lint: allow(alloc): ctor, setup path
        soa_window.resize(config.window_packets, nullptr);
      }
    } else {
      // Amplitude-only baseline: the per-packet distance is a deterministic
      // map of the raw packet, so it rides the ring like the mu factors do
      // for sanitized schemes. Epoch stamps invalidate cached values when a
      // recalibration swaps the amplitude profile under the ring.
      // mulink-lint: allow(alloc): ctor, setup path
      baseline_ring.resize(config.window_packets, 0.0);
      // mulink-lint: allow(alloc): ctor, setup path
      baseline_epoch_ring.resize(config.window_packets, ~std::uint64_t{0});
      // mulink-lint: allow(alloc): ctor, setup path
      baseline_window.resize(config.window_packets, 0.0);
    }
  }

  const Detector& det() const { return *view; }

  // Mirror of StreamingDetector::Push — same ring discipline, same HMM
  // update — so batch and streaming decisions are bit-identical. The one
  // deliberate difference: per-packet maps are computed ONCE on ingest
  // (phase sanitize + multipath factors for sanitized schemes, the
  // amplitude distance for the baseline), so overlapping windows reuse
  // window-hop rows instead of re-deriving all window_packets of them.
  std::optional<PresenceDecision> Push(const wifi::CsiPacket& packet) {
    const Detector& detector = det();
    obs::Registry* const sink = metrics_on ? &metrics : nullptr;
    ingest.metrics = sink;
    scratch->metrics = sink;
    calibrator.metrics = sink;
    const auto report = ingest.Admit(packet);
    if (!report.has_value()) return std::nullopt;  // quarantined
    if (report->resync) {
      // Gap too wide to straddle: flush the ring, keep the temporal state.
      write_pos = 0;
      count = 0;
      packets_since_decision = 0;
    }
    if (write_pos >= ring.size()) {
      // mulink-lint: allow(alloc): initial ring fill only; capacity reserved in ctor
      ring.emplace_back();  // initial fill only; capacity is reserved
    }
    wifi::CsiPacket& slot = ring[write_pos];
    if (pre_sanitize) {
      // Writes into the slot, reusing its CSI buffer once warm. Per-packet
      // sanitize latency is sampled on the shard's deterministic tick, like
      // the guard-classify stage.
      obs::Registry* const timed = MULINK_OBS_SAMPLED(sink);
      MULINK_OBS_STAGE_TIMER(timer, timed, kIngestSanitize);
      SanitizePhaseInto(packet, detector.band(), slot, scratch->sanitize);
      // Multipath factors and their median are per-packet maps of the
      // sanitized slot, so they ride the ring too: each hop's decision
      // reuses window-hop rows instead of re-deriving all window_packets
      // of them (ScoreSanitizedPrepared is bit-identical to the
      // recompute-per-window path on the same packets).
      MeasureMultipathFactorsInto(slot, detector.band(), mu_ring[write_pos],
                                  scratch->multipath);
      mu_median_ring[write_pos] =
          dsp::Median(mu_ring[write_pos], scratch->median_scratch);
      if (!soa_slabs.empty()) {
        // Split the sanitized slot into the slot's slab (antenna-major re
        // rows then im rows — exactly kernels::Deinterleave's bytes), so
        // the covariance planes assemble by memcpy at decision time.
        double* const slab = soa_slabs.data() + write_pos * soa_stride;
        const std::size_t num_sub = detector.num_subcarriers();
        const std::size_t num_ant = detector.num_antennas();
        for (std::size_t m = 0; m < num_ant; ++m) {
          kernels::Deinterleave(slot.csi.raw() + m * num_sub, num_sub,
                                slab + m * num_sub,
                                slab + (num_ant + m) * num_sub);
        }
      }
    } else {
      slot = packet;  // copy-assign reuses the slot's CSI buffer
      baseline_ring[write_pos] = detector.BaselinePacketScore(slot);
      baseline_epoch_ring[write_pos] = detector.profile_epoch();
    }
    write_pos = (write_pos + 1) % config.window_packets;
    if (count < config.window_packets) ++count;
    ++packets_since_decision;

    if (count < config.window_packets ||
        packets_since_decision < config.hop_packets) {
      return std::nullopt;
    }
    packets_since_decision = 0;

    PresenceDecision decision;
    // The decision fires on the packet just pushed, so it is the newest
    // packet of every window shape below.
    decision.timestamp_s = packet.timestamp_s;

    const std::uint32_t live_mask = ingest.LiveMask(detector.num_antennas());
    const std::uint32_t full_mask =
        GuardedIngest::FullMask(detector.num_antennas());
    MULINK_OBS_GAUGE(sink, kLiveAntennas,
                     static_cast<double>(std::popcount(live_mask)));
    if (live_mask == 0 ||
        (live_mask != full_mask && !config.degraded_fallback)) {
      // Every chain dead, or fallback disabled while one is: pause
      // decisions until the chain revives.
      MULINK_OBS_COUNT(sink, kDecisionsSuppressed);
      return std::nullopt;
    }

    // Baseline fast path: full-mask windows fold the ingest-cached packet
    // distances directly (bit-identical to ScoreBaseline), and the window
    // vector is only assembled when the calibrator needs to learn from it.
    const bool baseline_fast =
        !pre_sanitize && live_mask == full_mask &&
        BaselineCacheFresh(detector.profile_epoch());
    // Combined-scheme fast path: full-mask windows score straight from the
    // ingest-cached SoA slabs (bit-identical — the slab bytes ARE the
    // Deinterleave output the covariance kernel would otherwise compute),
    // so the window vector is only assembled for degraded windows or when
    // the calibrator needs packets to learn from.
    const bool slab_fast = !soa_slabs.empty() && live_mask == full_mask;
    const bool need_window =
        (!baseline_fast && !slab_fast) || calibrator.enabled();
    if (need_window) {
      // mulink-lint: allow(alloc): capacity reserved in ctor; resize never reallocates
      window.resize(config.window_packets);
    }
    for (std::size_t i = 0; i < config.window_packets; ++i) {
      const std::size_t slot_idx = (write_pos + i) % config.window_packets;
      if (need_window) window[i] = ring[slot_idx];
      if (pre_sanitize) {
        mu_window[i] = mu_ring[slot_idx].data();
        median_window[i] = mu_median_ring[slot_idx];
        if (slab_fast) {
          soa_window[i] = soa_slabs.data() + slot_idx * soa_stride;
        }
      } else if (baseline_fast) {
        baseline_window[i] = baseline_ring[slot_idx];
      }
    }
    // Stale window contents from an earlier hop must not leak into the
    // fast paths, so the span is empty whenever the window was not
    // (re)assembled this hop.
    const std::span<const wifi::CsiPacket> window_span =
        need_window ? std::span<const wifi::CsiPacket>(window)
                    : std::span<const wifi::CsiPacket>();

    if (live_mask != full_mask && detector.has_threshold()) {
      // Degraded mode: surviving antennas only, fallback threshold, HMM
      // frozen (its emission model belongs to the primary statistic). The
      // ring holds sanitized packets when pre_sanitize is on, so the
      // degraded score matches StreamingDetector's bit for bit.
      decision.score =
          pre_sanitize
              ? detector.ScoreSanitizedDegraded(window_span, *scratch,
                                                live_mask)
              : detector.ScoreDegraded(window_span, *scratch, live_mask);
      decision.occupied = decision.score >= detector.fallback_threshold();
      decision.posterior = decision.occupied ? 1.0 : 0.0;
      decision.degraded = true;
      ingest.degraded = true;
      ++ingest.degraded_decisions;
      MULINK_OBS_COUNT(sink, kDegradedDecisions);
    } else {
      if (pre_sanitize) {
        Detector::PreparedWindowFactors factors;
        factors.mu_rows = std::span<const double* const>(mu_window);
        factors.medians = std::span<const double>(median_window);
        if (slab_fast) {
          factors.csi_slabs = std::span<const double* const>(soa_window);
        }
        decision.score =
            detector.ScoreSanitizedPrepared(window_span, factors, *scratch);
      } else if (baseline_fast) {
        decision.score = detector.ScoreBaselinePrepared(
            std::span<const double>(baseline_window), *scratch);
      } else {
        decision.score = detector.Score(window_span, *scratch);
      }
      if (filter.has_value()) {
        MULINK_OBS_STAGE_TIMER(hmm_timer, sink, kHmmFilter);
        decision.posterior = filter->Update(decision.score);
        decision.occupied =
            decision.posterior >= config.decision_probability ||
            (config.hmm_threshold_fusion && detector.has_threshold() &&
             decision.score >= detector.threshold());
        MULINK_OBS_COUNT(sink, kHmmUpdates);
      } else {
        decision.occupied = decision.score >= detector.threshold();
        decision.posterior = decision.occupied ? 1.0 : 0.0;
      }
      ingest.degraded = false;
      ingest.ObserveDecision(decision, detector, config);
    }
    if (calibrator.enabled()) {
      CalibrationWindowContext context;
      context.degraded = decision.degraded;
      context.repaired_frames = ingest.repaired_since_decision;
      context.agc_frames = ingest.agc_frames_since_decision;
      // The ring already holds packets in the detector's expected
      // sanitization state (sanitized on ingest iff the scheme consumes
      // sanitized windows), so the posteriors learn from window_span
      // directly — bit-identical to StreamingDetector's per-window copy.
      // Calibration requires an owned detector (enforced in the ctor).
      calibrator.ObserveDecision(decision.score, decision.posterior,
                                 window_span, *owned_detector, context);
      if (hmm.has_value()) {
        // Every-window emission refit from the live quiet posterior —
        // same rationale and ordering as StreamingDetector (bit-identical
        // flip points between the two paths).
        hmm->RefitEmptyEmission(calibrator.quiet_log_mean(),
                                calibrator.quiet_log_sigma());
      }
      ingest.profile_drift = calibrator.drift_flagged();
    }
    ingest.repaired_since_decision = 0;
    ingest.agc_frames_since_decision = 0;
    occupied = decision.occupied;
    posterior = decision.posterior;
    MULINK_OBS_COUNT(sink, kDecisions);
    MULINK_OBS_GAUGE(sink, kLastScore, decision.score);
    MULINK_OBS_GAUGE(sink, kPosterior, decision.posterior);
    return decision;
  }

  // True when every cached baseline distance in the (full) ring was
  // computed against the detector's current amplitude profile. A ladder
  // swap (ApplyProfile/UpdateProfile) bumps the epoch, which falls back to
  // full window rescoring until the ring refills with fresh stamps.
  bool BaselineCacheFresh(std::uint64_t epoch) const {
    for (std::size_t i = 0; i < config.window_packets; ++i) {
      if (baseline_epoch_ring[i] != epoch) return false;
    }
    return true;
  }

  void Reset() {
    write_pos = 0;
    count = 0;
    packets_since_decision = 0;
    occupied = false;
    posterior = 0.0;
    if (filter.has_value()) filter->Reset();
    ingest.Reset();
    calibrator.Reset(det());
    metrics.Reset();
    result.decisions.clear();
    result.occupied = false;
    result.posterior = 0.0;
  }

  // Exactly one of owned/shared is set; `view` is the scoring-side alias.
  // Calibration (which rewrites thresholds and profiles in place) is only
  // legal on owned links.
  std::unique_ptr<Detector> owned_detector;
  std::shared_ptr<const Detector> shared_detector;
  const Detector* view = nullptr;
  StreamingConfig config;
  // Sanitize on ingest only when the scheme consumes sanitized windows (the
  // amplitude-only baseline must see raw packets).
  bool pre_sanitize = false;
  GuardedIngest ingest;
  LinkCalibrator calibrator;
  std::optional<PresenceHmm> hmm;
  std::optional<PresenceHmm::Filter> filter;  // references hmm; do not move
  std::vector<wifi::CsiPacket> ring;
  std::vector<wifi::CsiPacket> window;
  // Ingest-time multipath factors riding the packet ring (pre_sanitize
  // links only): mu_ring[slot] / mu_median_ring[slot] belong to ring[slot];
  // mu_window / median_window are their window-ordered views for
  // ScoreSanitizedPrepared.
  std::vector<std::vector<double>> mu_ring;
  std::vector<double> mu_median_ring;
  std::vector<const double*> mu_window;
  std::vector<double> median_window;
  // Ingest-time split-complex slabs riding the ring (combined-scheme links
  // only): the slab at soa_slabs[slot * soa_stride] holds ring[slot]'s CSI
  // deinterleaved antenna-major (re rows then im rows), and soa_window is
  // the window-ordered pointer view handed to ScoreSanitizedPrepared via
  // PreparedWindowFactors. One flat block so the per-decision window read
  // is a sequential stream.
  std::vector<double> soa_slabs;
  std::size_t soa_stride = 0;
  std::vector<const double*> soa_window;
  // Ingest-time baseline distances riding the ring (baseline links only),
  // stamped with the profile epoch they were computed under.
  std::vector<double> baseline_ring;
  std::vector<std::uint64_t> baseline_epoch_ring;
  std::vector<double> baseline_window;
  std::size_t write_pos = 0;
  std::size_t count = 0;
  std::size_t packets_since_decision = 0;
  bool occupied = false;
  double posterior = 0.0;
  // Own scratch by default; engine-owned shared workspace in fleet mode
  // (`scratch` then aliases the engine's, `own_scratch` stays null).
  std::unique_ptr<DetectorScratch> own_scratch;
  DetectorScratch* scratch = nullptr;
  BatchResult result;
  // Per-link observability shard; merged in link order by AggregateMetrics.
  obs::Registry metrics;
  bool metrics_on = true;
};

SensingEngine::SensingEngine() = default;
SensingEngine::~SensingEngine() = default;
SensingEngine::SensingEngine(SensingEngine&&) noexcept = default;
SensingEngine& SensingEngine::operator=(SensingEngine&&) noexcept = default;

std::size_t SensingEngine::AddLink(Detector detector,
                                   const std::vector<double>& empty_scores,
                                   StreamingConfig config) {
  // mulink-lint: allow(alloc): AddLink, setup path
  auto owned = std::make_unique<Detector>(std::move(detector));
  // mulink-lint: allow(alloc): AddLink, setup path
  return InstallLink(std::make_unique<LinkState>(std::move(owned), nullptr,
                                                 empty_scores, config,
                                                 shared_scratch_.get()));
}

std::size_t SensingEngine::AddLink(std::shared_ptr<const Detector> detector,
                                   const std::vector<double>& empty_scores,
                                   StreamingConfig config) {
  MULINK_REQUIRE(detector != nullptr,
                 "SensingEngine: shared detector must be non-null");
  // mulink-lint: allow(alloc): AddLink, setup path
  return InstallLink(std::make_unique<LinkState>(
      nullptr, std::move(detector), empty_scores, config,
      shared_scratch_.get()));
}

std::size_t SensingEngine::InstallLink(std::unique_ptr<LinkState> state) {
  ++active_links_;
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    links_[slot] = std::move(state);
    return slot;
  }
  // mulink-lint: allow(alloc): AddLink, setup path
  links_.push_back(std::move(state));
  return links_.size() - 1;
}

void SensingEngine::RemoveLink(std::size_t link) {
  MULINK_REQUIRE(link < links_.size() && links_[link] != nullptr,
                 "SensingEngine: RemoveLink on inactive slot");
  links_[link].reset();
  // mulink-lint: allow(alloc): eviction path, off the per-packet hot loop
  free_slots_.push_back(link);
  --active_links_;
}

bool SensingEngine::LinkActive(std::size_t link) const {
  return link < links_.size() && links_[link] != nullptr;
}

void SensingEngine::UseSharedScratch() {
  MULINK_REQUIRE(links_.empty(),
                 "SensingEngine: UseSharedScratch must precede AddLink");
  if (shared_scratch_ == nullptr) {
    // mulink-lint: allow(alloc): setup path
    shared_scratch_ = std::make_unique<DetectorScratch>();
  }
}

SensingEngine::LinkState& SensingEngine::Link(std::size_t link) {
  MULINK_REQUIRE(link < links_.size() && links_[link] != nullptr,
                 "SensingEngine: link out of range or removed");
  return *links_[link];
}

const SensingEngine::LinkState& SensingEngine::Link(std::size_t link) const {
  MULINK_REQUIRE(link < links_.size() && links_[link] != nullptr,
                 "SensingEngine: link out of range or removed");
  return *links_[link];
}

const BatchResult& SensingEngine::ProcessBatch(
    std::size_t link, std::span<const wifi::CsiPacket> packets) {
  LinkState& state = Link(link);
  state.metrics_on = metrics_enabled_;
  if (metrics_enabled_) MULINK_OBS_COUNT_REF(state.metrics, kBatches, 1);
  state.result.decisions.clear();
  for (const auto& packet : packets) {
    if (auto decision = state.Push(packet)) {
      // mulink-lint: allow(alloc): batch output; clear() keeps capacity, warm after first batch
      state.result.decisions.push_back(*decision);
    }
  }
  state.result.occupied = state.occupied;
  state.result.posterior = state.posterior;
  return state.result;
}

const BatchResult& SensingEngine::ProcessBatch(
    std::span<const wifi::CsiPacket> packets) {
  MULINK_REQUIRE(active_links_ == 1 && links_.size() == 1,
                 "SensingEngine: single-link ProcessBatch needs exactly one "
                 "registered link");
  return ProcessBatch(0, packets);
}

std::optional<PresenceDecision> SensingEngine::ProcessPacket(
    std::size_t link, const wifi::CsiPacket& packet) {
  LinkState& state = Link(link);
  state.metrics_on = metrics_enabled_;
  return state.Push(packet);
}

double SensingEngine::ScoreWindow(std::size_t link,
                                  std::span<const wifi::CsiPacket> window) {
  LinkState& state = Link(link);
  state.scratch->metrics = metrics_enabled_ ? &state.metrics : nullptr;
  return state.det().Score(window, *state.scratch);
}

bool SensingEngine::occupied(std::size_t link) const {
  return Link(link).occupied;
}

double SensingEngine::posterior(std::size_t link) const {
  return Link(link).posterior;
}

nic::LinkHealth SensingEngine::Health(std::size_t link) const {
  nic::LinkHealth health = Link(link).ingest.Health();
  Link(link).calibrator.FillHealth(health);
  return health;
}

const LinkCalibrator& SensingEngine::Calibrator(std::size_t link) const {
  return Link(link).calibrator;
}

const obs::Registry& SensingEngine::Metrics(std::size_t link) const {
  return Link(link).metrics;
}

obs::Registry SensingEngine::AggregateMetrics() const {
  obs::Registry total;
  for (const auto& link : links_) {
    if (link != nullptr) total.MergeFrom(link->metrics);
  }
  return total;
}

const Detector& SensingEngine::detector(std::size_t link) const {
  return Link(link).det();
}

const StreamingConfig& SensingEngine::config(std::size_t link) const {
  return Link(link).config;
}

void SensingEngine::Reset(std::size_t link) { Link(link).Reset(); }

void SensingEngine::ResetAll() {
  for (auto& link : links_) {
    if (link != nullptr) link->Reset();
  }
}

}  // namespace mulink::core
