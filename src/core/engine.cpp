#include "core/engine.h"

#include <bit>
#include <optional>
#include <utility>

#include "common/assert.h"
#include "dsp/stats.h"

namespace mulink::core {

struct SensingEngine::LinkState {
  LinkState(Detector det, const std::vector<double>& empty_scores,
            StreamingConfig cfg)
      : detector(std::move(det)),
        config(cfg),
        pre_sanitize(detector.UsesSanitizedInput()),
        ingest(config) {
    MULINK_REQUIRE(config.window_packets >= 2,
                   "SensingEngine: window must hold >= 2 packets");
    MULINK_REQUIRE(config.hop_packets >= 1 &&
                       config.hop_packets <= config.window_packets,
                   "SensingEngine: hop must be in [1, window]");
    if (config.use_hmm) {
      hmm = PresenceHmm::FitFromEmptyScores(empty_scores, config.hmm);
      filter.emplace(*hmm);  // mulink-lint: allow(alloc): ctor, setup path
    }
    // Seed the drift watchdog's EWMA at the expected quiet score so the
    // first windows after construction or Reset cannot spuriously trip the
    // flag (mirrors StreamingDetector).
    if (!empty_scores.empty()) {
      ingest.quiet_score_seed = dsp::Mean(empty_scores);
      ingest.empty_score_ewma = ingest.quiet_score_seed;
    }
    calibrator.Configure(detector, std::span<const double>(empty_scores),
                         config.calibration);
    // mulink-lint: allow(alloc): ctor, setup path
    ring.reserve(config.window_packets);
    // mulink-lint: allow(alloc): ctor, setup path
    window.reserve(config.window_packets);
    if (pre_sanitize) {
      // mulink-lint: allow(alloc): ctor, setup path
      mu_ring.resize(config.window_packets);
      // mulink-lint: allow(alloc): ctor, setup path
      mu_median_ring.resize(config.window_packets, 0.0);
      // mulink-lint: allow(alloc): ctor, setup path
      mu_window.resize(config.window_packets, nullptr);
      // mulink-lint: allow(alloc): ctor, setup path
      median_window.resize(config.window_packets, 0.0);
    }
  }

  // Mirror of StreamingDetector::Push — same ring discipline, same HMM
  // update — so batch and streaming decisions are bit-identical. The one
  // deliberate difference: packets are phase-sanitized ONCE on ingest (a
  // deterministic per-packet map), so overlapping windows score through
  // ScoreSanitized without re-sanitizing window_packets packets every hop.
  std::optional<PresenceDecision> Push(const wifi::CsiPacket& packet) {
    obs::Registry* const sink = metrics_on ? &metrics : nullptr;
    ingest.metrics = sink;
    scratch.metrics = sink;
    calibrator.metrics = sink;
    const auto report = ingest.Admit(packet);
    if (!report.has_value()) return std::nullopt;  // quarantined
    if (report->resync) {
      // Gap too wide to straddle: flush the ring, keep the temporal state.
      write_pos = 0;
      count = 0;
      packets_since_decision = 0;
    }
    if (write_pos >= ring.size()) {
      // mulink-lint: allow(alloc): initial ring fill only; capacity reserved in ctor
      ring.emplace_back();  // initial fill only; capacity is reserved
    }
    wifi::CsiPacket& slot = ring[write_pos];
    if (pre_sanitize) {
      // Writes into the slot, reusing its CSI buffer once warm. Per-packet
      // sanitize latency is sampled on the shard's deterministic tick, like
      // the guard-classify stage.
      obs::Registry* const timed = MULINK_OBS_SAMPLED(sink);
      MULINK_OBS_STAGE_TIMER(timer, timed, kIngestSanitize);
      SanitizePhaseInto(packet, detector.band(), slot, scratch.sanitize);
      // Multipath factors and their median are per-packet maps of the
      // sanitized slot, so they ride the ring too: each hop's decision
      // reuses window-hop rows instead of re-deriving all window_packets
      // of them (ScoreSanitizedPrepared is bit-identical to the
      // recompute-per-window path on the same packets).
      MeasureMultipathFactorsInto(slot, detector.band(), mu_ring[write_pos],
                                  scratch.multipath);
      mu_median_ring[write_pos] =
          dsp::Median(mu_ring[write_pos], scratch.median_scratch);
    } else {
      slot = packet;  // copy-assign reuses the slot's CSI buffer
    }
    write_pos = (write_pos + 1) % config.window_packets;
    if (count < config.window_packets) ++count;
    ++packets_since_decision;

    if (count < config.window_packets ||
        packets_since_decision < config.hop_packets) {
      return std::nullopt;
    }
    packets_since_decision = 0;

    // mulink-lint: allow(alloc): capacity reserved in ctor; resize never reallocates
    window.resize(config.window_packets);
    for (std::size_t i = 0; i < config.window_packets; ++i) {
      const std::size_t slot_idx = (write_pos + i) % config.window_packets;
      window[i] = ring[slot_idx];
      if (pre_sanitize) {
        mu_window[i] = mu_ring[slot_idx].data();
        median_window[i] = mu_median_ring[slot_idx];
      }
    }
    PresenceDecision decision;
    decision.timestamp_s = window.back().timestamp_s;
    const std::span<const wifi::CsiPacket> window_span(window);

    const std::uint32_t live_mask = ingest.LiveMask(detector.num_antennas());
    const std::uint32_t full_mask =
        GuardedIngest::FullMask(detector.num_antennas());
    MULINK_OBS_GAUGE(sink, kLiveAntennas,
                     static_cast<double>(std::popcount(live_mask)));
    if (live_mask == 0 ||
        (live_mask != full_mask && !config.degraded_fallback)) {
      // Every chain dead, or fallback disabled while one is: pause
      // decisions until the chain revives.
      MULINK_OBS_COUNT(sink, kDecisionsSuppressed);
      return std::nullopt;
    }
    if (live_mask != full_mask && detector.has_threshold()) {
      // Degraded mode: surviving antennas only, fallback threshold, HMM
      // frozen (its emission model belongs to the primary statistic). The
      // ring holds sanitized packets when pre_sanitize is on, so the
      // degraded score matches StreamingDetector's bit for bit.
      decision.score =
          pre_sanitize
              ? detector.ScoreSanitizedDegraded(window_span, scratch,
                                                live_mask)
              : detector.ScoreDegraded(window_span, scratch, live_mask);
      decision.occupied = decision.score >= detector.fallback_threshold();
      decision.posterior = decision.occupied ? 1.0 : 0.0;
      decision.degraded = true;
      ingest.degraded = true;
      ++ingest.degraded_decisions;
      MULINK_OBS_COUNT(sink, kDegradedDecisions);
    } else {
      if (pre_sanitize) {
        Detector::PreparedWindowFactors factors;
        factors.mu_rows = std::span<const double* const>(mu_window);
        factors.medians = std::span<const double>(median_window);
        decision.score =
            detector.ScoreSanitizedPrepared(window_span, factors, scratch);
      } else {
        decision.score = detector.Score(window_span, scratch);
      }
      if (filter.has_value()) {
        MULINK_OBS_STAGE_TIMER(hmm_timer, sink, kHmmFilter);
        decision.posterior = filter->Update(decision.score);
        decision.occupied =
            decision.posterior >= config.decision_probability ||
            (config.hmm_threshold_fusion && detector.has_threshold() &&
             decision.score >= detector.threshold());
        MULINK_OBS_COUNT(sink, kHmmUpdates);
      } else {
        decision.occupied = decision.score >= detector.threshold();
        decision.posterior = decision.occupied ? 1.0 : 0.0;
      }
      ingest.degraded = false;
      ingest.ObserveDecision(decision, detector, config);
    }
    if (calibrator.enabled()) {
      CalibrationWindowContext context;
      context.degraded = decision.degraded;
      context.repaired_frames = ingest.repaired_since_decision;
      context.agc_frames = ingest.agc_frames_since_decision;
      // The ring already holds packets in the detector's expected
      // sanitization state (sanitized on ingest iff the scheme consumes
      // sanitized windows), so the posteriors learn from window_span
      // directly — bit-identical to StreamingDetector's per-window copy.
      calibrator.ObserveDecision(decision.score, decision.posterior,
                                 window_span, detector, context);
      if (hmm.has_value()) {
        // Every-window emission refit from the live quiet posterior —
        // same rationale and ordering as StreamingDetector (bit-identical
        // flip points between the two paths).
        hmm->RefitEmptyEmission(calibrator.quiet_log_mean(),
                                calibrator.quiet_log_sigma());
      }
      ingest.profile_drift = calibrator.drift_flagged();
    }
    ingest.repaired_since_decision = 0;
    ingest.agc_frames_since_decision = 0;
    occupied = decision.occupied;
    posterior = decision.posterior;
    MULINK_OBS_COUNT(sink, kDecisions);
    MULINK_OBS_GAUGE(sink, kLastScore, decision.score);
    MULINK_OBS_GAUGE(sink, kPosterior, decision.posterior);
    return decision;
  }

  void Reset() {
    write_pos = 0;
    count = 0;
    packets_since_decision = 0;
    occupied = false;
    posterior = 0.0;
    if (filter.has_value()) filter->Reset();
    ingest.Reset();
    calibrator.Reset(detector);
    metrics.Reset();
    result.decisions.clear();
    result.occupied = false;
    result.posterior = 0.0;
  }

  Detector detector;
  StreamingConfig config;
  // Sanitize on ingest only when the scheme consumes sanitized windows (the
  // amplitude-only baseline must see raw packets).
  bool pre_sanitize = false;
  GuardedIngest ingest;
  LinkCalibrator calibrator;
  std::optional<PresenceHmm> hmm;
  std::optional<PresenceHmm::Filter> filter;  // references hmm; do not move
  std::vector<wifi::CsiPacket> ring;
  std::vector<wifi::CsiPacket> window;
  // Ingest-time multipath factors riding the packet ring (pre_sanitize
  // links only): mu_ring[slot] / mu_median_ring[slot] belong to ring[slot];
  // mu_window / median_window are their window-ordered views for
  // ScoreSanitizedPrepared.
  std::vector<std::vector<double>> mu_ring;
  std::vector<double> mu_median_ring;
  std::vector<const double*> mu_window;
  std::vector<double> median_window;
  std::size_t write_pos = 0;
  std::size_t count = 0;
  std::size_t packets_since_decision = 0;
  bool occupied = false;
  double posterior = 0.0;
  DetectorScratch scratch;
  BatchResult result;
  // Per-link observability shard; merged in link order by AggregateMetrics.
  obs::Registry metrics;
  bool metrics_on = true;
};

SensingEngine::SensingEngine() = default;
SensingEngine::~SensingEngine() = default;
SensingEngine::SensingEngine(SensingEngine&&) noexcept = default;
SensingEngine& SensingEngine::operator=(SensingEngine&&) noexcept = default;

std::size_t SensingEngine::AddLink(Detector detector,
                                   const std::vector<double>& empty_scores,
                                   StreamingConfig config) {
  // mulink-lint: allow(alloc): AddLink, setup path
  links_.push_back(std::make_unique<LinkState>(std::move(detector),
                                               empty_scores, config));
  return links_.size() - 1;
}

SensingEngine::LinkState& SensingEngine::Link(std::size_t link) {
  MULINK_REQUIRE(link < links_.size(), "SensingEngine: link out of range");
  return *links_[link];
}

const SensingEngine::LinkState& SensingEngine::Link(std::size_t link) const {
  MULINK_REQUIRE(link < links_.size(), "SensingEngine: link out of range");
  return *links_[link];
}

const BatchResult& SensingEngine::ProcessBatch(
    std::size_t link, std::span<const wifi::CsiPacket> packets) {
  LinkState& state = Link(link);
  state.metrics_on = metrics_enabled_;
  if (metrics_enabled_) MULINK_OBS_COUNT_REF(state.metrics, kBatches, 1);
  state.result.decisions.clear();
  for (const auto& packet : packets) {
    if (auto decision = state.Push(packet)) {
      // mulink-lint: allow(alloc): batch output; clear() keeps capacity, warm after first batch
      state.result.decisions.push_back(*decision);
    }
  }
  state.result.occupied = state.occupied;
  state.result.posterior = state.posterior;
  return state.result;
}

const BatchResult& SensingEngine::ProcessBatch(
    std::span<const wifi::CsiPacket> packets) {
  MULINK_REQUIRE(links_.size() == 1,
                 "SensingEngine: single-link ProcessBatch needs exactly one "
                 "registered link");
  return ProcessBatch(0, packets);
}

double SensingEngine::ScoreWindow(std::size_t link,
                                  std::span<const wifi::CsiPacket> window) {
  LinkState& state = Link(link);
  state.scratch.metrics = metrics_enabled_ ? &state.metrics : nullptr;
  return state.detector.Score(window, state.scratch);
}

bool SensingEngine::occupied(std::size_t link) const {
  return Link(link).occupied;
}

double SensingEngine::posterior(std::size_t link) const {
  return Link(link).posterior;
}

nic::LinkHealth SensingEngine::Health(std::size_t link) const {
  nic::LinkHealth health = Link(link).ingest.Health();
  Link(link).calibrator.FillHealth(health);
  return health;
}

const LinkCalibrator& SensingEngine::Calibrator(std::size_t link) const {
  return Link(link).calibrator;
}

const obs::Registry& SensingEngine::Metrics(std::size_t link) const {
  return Link(link).metrics;
}

obs::Registry SensingEngine::AggregateMetrics() const {
  obs::Registry total;
  for (const auto& link : links_) total.MergeFrom(link->metrics);
  return total;
}

const Detector& SensingEngine::detector(std::size_t link) const {
  return Link(link).detector;
}

const StreamingConfig& SensingEngine::config(std::size_t link) const {
  return Link(link).config;
}

void SensingEngine::Reset(std::size_t link) { Link(link).Reset(); }

void SensingEngine::ResetAll() {
  for (auto& link : links_) link->Reset();
}

}  // namespace mulink::core
