#include "core/link_model.h"

#include <cmath>

#include "common/assert.h"
#include "common/constants.h"

namespace mulink::core {

namespace {

void CheckGamma(double gamma) {
  MULINK_REQUIRE(gamma > 0.0, "link model: gamma must be > 0");
}

void CheckBeta(double beta) {
  MULINK_REQUIRE(beta > 0.0 && beta <= 1.0, "link model: beta must be in (0,1]");
}

}  // namespace

double MultipathFactorClosedForm(double gamma, double phi_rad) {
  CheckGamma(gamma);
  const double denom = gamma * gamma + 1.0 + 2.0 * gamma * std::cos(phi_rad);
  MULINK_REQUIRE(denom > 0.0,
                 "MultipathFactorClosedForm: total power vanished "
                 "(perfect destructive superposition)");
  return gamma * gamma / denom;
}

double ShadowingDeltaDbFromPhase(double beta, double gamma, double phi_rad) {
  CheckBeta(beta);
  CheckGamma(gamma);
  const double cosphi = std::cos(phi_rad);
  const double num = beta * beta * gamma * gamma + 1.0 + 2.0 * beta * gamma * cosphi;
  const double den = gamma * gamma + 1.0 + 2.0 * gamma * cosphi;
  MULINK_REQUIRE(num > 0.0 && den > 0.0,
                 "ShadowingDeltaDbFromPhase: degenerate superposition");
  return 10.0 * std::log10(num / den);
}

double ShadowingDeltaDbFromMu(double beta, double gamma, double mu) {
  CheckBeta(beta);
  CheckGamma(gamma);
  MULINK_REQUIRE(mu > 0.0, "ShadowingDeltaDbFromMu: mu must be > 0");
  const double arg =
      beta + (1.0 - beta) * (1.0 - beta * gamma * gamma) / (gamma * gamma) * mu;
  MULINK_REQUIRE(arg > 0.0, "ShadowingDeltaDbFromMu: non-positive power ratio");
  return 10.0 * std::log10(arg);
}

double ReflectionDeltaDbFromMu(double eta, double gamma, double phi_rad,
                               double phi_prime_rad, double mu) {
  CheckGamma(gamma);
  MULINK_REQUIRE(eta >= 0.0, "ReflectionDeltaDbFromMu: eta must be >= 0");
  MULINK_REQUIRE(mu > 0.0, "ReflectionDeltaDbFromMu: mu must be > 0");
  const double bracket = gamma * std::cos(phi_prime_rad) +
                         std::cos(phi_prime_rad - phi_rad);
  const double arg =
      1.0 + (eta * eta + 2.0 * eta * bracket) / (gamma * gamma) * mu;
  MULINK_REQUIRE(arg > 0.0, "ReflectionDeltaDbFromMu: non-positive power ratio");
  return 10.0 * std::log10(arg);
}

double SinglePathShadowingDeltaDb(double beta) {
  CheckBeta(beta);
  return 10.0 * std::log10(beta * beta);
}

bool ShadowingRaisesRss(double beta, double gamma, double phi_rad) {
  return ShadowingDeltaDbFromPhase(beta, gamma, phi_rad) > 0.0;
}

double PhaseFromExcessLength(double excess_length_m, double freq_hz) {
  MULINK_REQUIRE(excess_length_m >= 0.0,
                 "PhaseFromExcessLength: excess length must be >= 0");
  MULINK_REQUIRE(freq_hz > 0.0, "PhaseFromExcessLength: frequency must be > 0");
  return 2.0 * kPi * freq_hz * excess_length_m / kSpeedOfLight;
}

}  // namespace mulink::core
