// Batch-oriented sensing engine: the workspace-owning composition root of
// the ingest-to-decision hot path.
//
// One SensingEngine owns one LinkState per monitored link. A LinkState keeps
// everything the link needs between batches — the calibrated Detector
// (static profile, Eq. 15/17 weights, threshold), the packet ring buffer,
// the HMM temporal state and every scratch buffer of the scoring pipeline —
// so ProcessBatch ingests a span of CSI packets and emits presence decisions
// with zero heap allocations once the buffers are warm.
//
// Fleet mode (src/serve): links that share a channel configuration can be
// registered against one immutable shared Detector (AddLink shared_ptr
// overload) and score through one engine-owned shared scratch
// (UseSharedScratch), so per-link memory shrinks to the packet ring and the
// profile-side covariance stack stays warm across consecutive links of the
// same config. Shared-detector links cannot run adaptive calibration (the
// ladder mutates the detector in place); register an owned copy for that.
//
// Decision semantics are bit-identical to feeding the same packets one at a
// time through StreamingDetector::Push (see core_engine_test).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "core/detector.h"
#include "core/hmm.h"
#include "core/streaming.h"

namespace mulink::core {

// Decisions produced by one ProcessBatch call. The vector is a reused
// member buffer — its contents are valid until the next ProcessBatch/Reset
// on the same link.
struct BatchResult {
  std::vector<PresenceDecision> decisions;
  // Belief after the batch (unchanged if no window completed).
  bool occupied = false;
  double posterior = 0.0;
};

class SensingEngine {
 public:
  SensingEngine();
  ~SensingEngine();

  // Engines are move-only: LinkStates hold scratch and HMM filter state
  // that must not be duplicated silently. (Defined out of line — LinkState
  // is incomplete here.)
  SensingEngine(SensingEngine&&) noexcept;
  SensingEngine& operator=(SensingEngine&&) noexcept;

  // Register a calibrated link. `detector` must have its threshold set;
  // `empty_scores` fit the HMM emission model when config.use_hmm is on.
  // Returns the link index used by the per-link calls below (freed slots
  // from RemoveLink are reused before new ones are appended).
  std::size_t AddLink(Detector detector,
                      const std::vector<double>& empty_scores,
                      StreamingConfig config = {});

  // Fleet-mode registration: many links share one immutable calibrated
  // detector (one channel config group). Requires
  // !config.calibration.enabled — the recalibration ladder mutates the
  // detector in place, which a shared profile must never see.
  std::size_t AddLink(std::shared_ptr<const Detector> detector,
                      const std::vector<double>& empty_scores,
                      StreamingConfig config = {});

  // Drop one link entirely (serving-tier eviction). Its slot index is
  // recycled by the next AddLink; every other link keeps its index. The
  // slot is invalid until then — per-link calls on it are precondition
  // errors.
  void RemoveLink(std::size_t link);
  bool LinkActive(std::size_t link) const;

  // Total slots ever created (including freed ones awaiting reuse) and the
  // number currently active.
  std::size_t NumLinks() const { return links_.size(); }
  std::size_t NumActiveLinks() const { return active_links_; }

  // Route every link's scoring through one engine-owned scratch workspace
  // instead of per-link scratch. Serving shards use this: resident links
  // share one warm workspace, and links that share a detector reuse its
  // profile covariance stack across consecutive decisions. Must be called
  // before the first AddLink.
  void UseSharedScratch();

  // Ingest a batch of packets for one link. Every completed window (aligned
  // to the configured hop) contributes one decision. The returned reference
  // stays valid until the next ProcessBatch/Reset on this link.
  const BatchResult& ProcessBatch(std::size_t link,
                                  std::span<const wifi::CsiPacket> packets);

  // Single-link convenience (requires exactly one registered link).
  const BatchResult& ProcessBatch(std::span<const wifi::CsiPacket> packets);

  // Packet-at-a-time ingest for serving loops: identical semantics to
  // ProcessBatch over a one-packet span, without touching the BatchResult
  // buffer. Returns a decision when this packet completed a window.
  MULINK_HOT std::optional<PresenceDecision> ProcessPacket(
      std::size_t link, const wifi::CsiPacket& packet);

  // Score one window directly on the link's scratch, bypassing the ring
  // (for offline session scoring on engine-owned buffers).
  double ScoreWindow(std::size_t link,
                     std::span<const wifi::CsiPacket> window);

  // Current belief per link (unoccupied before the first window).
  bool occupied(std::size_t link) const;
  double posterior(std::size_t link) const;

  // Link health snapshot: frame-guard fault counters, dead-antenna mask,
  // degraded-mode, profile-drift watchdog and calibration-ladder state.
  // All-zero when the link's guard and adaptive calibration are disabled.
  nic::LinkHealth Health(std::size_t link) const;

  // Adaptive-calibration state for one link (inert when the link's
  // config.calibration.enabled is false).
  const LinkCalibrator& Calibrator(std::size_t link) const;

  // Observability. Each link records into its own Registry shard (ingest
  // and decision counters, per-stage latency histograms, profile-stack
  // cache stats); AggregateMetrics merges the shards in link order, so the
  // totals are deterministic for a fixed ingest sequence. Enabled by
  // default; disabling detaches every link's shard (runtime no-op sink)
  // without clearing what was recorded. Decisions are bit-identical with
  // metrics on, off, or compiled out (-DMULINK_OBS=OFF).
  void SetMetricsEnabled(bool enabled) { metrics_enabled_ = enabled; }
  bool metrics_enabled() const { return metrics_enabled_; }
  const obs::Registry& Metrics(std::size_t link) const;
  obs::Registry AggregateMetrics() const;

  const Detector& detector(std::size_t link) const;
  const StreamingConfig& config(std::size_t link) const;

  // Drop buffered packets and temporal state; keeps all warm buffers.
  void Reset(std::size_t link);
  void ResetAll();

 private:
  // All per-link persistent state. Held behind unique_ptr because the HMM
  // filter stores a reference to its PresenceHmm — LinkState addresses must
  // survive links_ growth.
  struct LinkState;

  std::size_t InstallLink(std::unique_ptr<LinkState> state);

  LinkState& Link(std::size_t link);
  const LinkState& Link(std::size_t link) const;

  std::vector<std::unique_ptr<LinkState>> links_;
  std::vector<std::size_t> free_slots_;
  std::size_t active_links_ = 0;
  // Engine-owned workspace shared by every link when UseSharedScratch() was
  // called (null otherwise; links then own their scratch).
  std::unique_ptr<DetectorScratch> shared_scratch_;
  bool metrics_enabled_ = true;
};

}  // namespace mulink::core
