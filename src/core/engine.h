// Batch-oriented sensing engine: the workspace-owning composition root of
// the ingest-to-decision hot path.
//
// One SensingEngine owns one LinkState per monitored link. A LinkState keeps
// everything the link needs between batches — the calibrated Detector
// (static profile, Eq. 15/17 weights, threshold), the packet ring buffer,
// the HMM temporal state and every scratch buffer of the scoring pipeline —
// so ProcessBatch ingests a span of CSI packets and emits presence decisions
// with zero heap allocations once the buffers are warm.
//
// Decision semantics are bit-identical to feeding the same packets one at a
// time through StreamingDetector::Push (see core_engine_test).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/detector.h"
#include "core/hmm.h"
#include "core/streaming.h"

namespace mulink::core {

// Decisions produced by one ProcessBatch call. The vector is a reused
// member buffer — its contents are valid until the next ProcessBatch/Reset
// on the same link.
struct BatchResult {
  std::vector<PresenceDecision> decisions;
  // Belief after the batch (unchanged if no window completed).
  bool occupied = false;
  double posterior = 0.0;
};

class SensingEngine {
 public:
  SensingEngine();
  ~SensingEngine();

  // Engines are move-only: LinkStates hold scratch and HMM filter state
  // that must not be duplicated silently. (Defined out of line — LinkState
  // is incomplete here.)
  SensingEngine(SensingEngine&&) noexcept;
  SensingEngine& operator=(SensingEngine&&) noexcept;

  // Register a calibrated link. `detector` must have its threshold set;
  // `empty_scores` fit the HMM emission model when config.use_hmm is on.
  // Returns the link index used by the per-link calls below.
  std::size_t AddLink(Detector detector,
                      const std::vector<double>& empty_scores,
                      StreamingConfig config = {});

  std::size_t NumLinks() const { return links_.size(); }

  // Ingest a batch of packets for one link. Every completed window (aligned
  // to the configured hop) contributes one decision. The returned reference
  // stays valid until the next ProcessBatch/Reset on this link.
  const BatchResult& ProcessBatch(std::size_t link,
                                  std::span<const wifi::CsiPacket> packets);

  // Single-link convenience (requires exactly one registered link).
  const BatchResult& ProcessBatch(std::span<const wifi::CsiPacket> packets);

  // Score one window directly on the link's scratch, bypassing the ring
  // (for offline session scoring on engine-owned buffers).
  double ScoreWindow(std::size_t link,
                     std::span<const wifi::CsiPacket> window);

  // Current belief per link (unoccupied before the first window).
  bool occupied(std::size_t link) const;
  double posterior(std::size_t link) const;

  // Link health snapshot: frame-guard fault counters, dead-antenna mask,
  // degraded-mode, profile-drift watchdog and calibration-ladder state.
  // All-zero when the link's guard and adaptive calibration are disabled.
  nic::LinkHealth Health(std::size_t link) const;

  // Adaptive-calibration state for one link (inert when the link's
  // config.calibration.enabled is false).
  const LinkCalibrator& Calibrator(std::size_t link) const;

  // Observability. Each link records into its own Registry shard (ingest
  // and decision counters, per-stage latency histograms, profile-stack
  // cache stats); AggregateMetrics merges the shards in link order, so the
  // totals are deterministic for a fixed ingest sequence. Enabled by
  // default; disabling detaches every link's shard (runtime no-op sink)
  // without clearing what was recorded. Decisions are bit-identical with
  // metrics on, off, or compiled out (-DMULINK_OBS=OFF).
  void SetMetricsEnabled(bool enabled) { metrics_enabled_ = enabled; }
  bool metrics_enabled() const { return metrics_enabled_; }
  const obs::Registry& Metrics(std::size_t link) const;
  obs::Registry AggregateMetrics() const;

  const Detector& detector(std::size_t link) const;
  const StreamingConfig& config(std::size_t link) const;

  // Drop buffered packets and temporal state; keeps all warm buffers.
  void Reset(std::size_t link);
  void ResetAll();

 private:
  // All per-link persistent state. Held behind unique_ptr because the HMM
  // filter stores a reference to its PresenceHmm — LinkState addresses must
  // survive links_ growth.
  struct LinkState;

  LinkState& Link(std::size_t link);
  const LinkState& Link(std::size_t link) const;

  std::vector<std::unique_ptr<LinkState>> links_;
  bool metrics_enabled_ = true;
};

}  // namespace mulink::core
