#include "core/calibration/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mulink::core {

namespace {

// Floors shared with PresenceHmm's log-Gaussian fit, so an emission re-fit
// from the posterior behaves like a fresh fit on the same data.
constexpr double kScoreFloor = 1e-12;
constexpr double kLogSigmaFloor = 0.05;

}  // namespace

// ---------------------------------------------------------------- scores --

void QuietScorePosterior::Seed(std::span<const double> empty_scores) {
  weight_ = mean_ = m2_ = 0.0;
  log_weight_ = log_mean_ = log_m2_ = 0.0;
  for (const double score : empty_scores) {
    weight_ += 1.0;
    const double delta = score - mean_;
    mean_ += delta / weight_;
    m2_ += delta * (score - mean_);

    const double log_score = std::log(std::max(score, kScoreFloor));
    log_weight_ += 1.0;
    const double log_delta = log_score - log_mean_;
    log_mean_ += log_delta / log_weight_;
    log_m2_ += log_delta * (log_score - log_mean_);
  }
  seed_weight_ = weight_;
  seed_mean_ = mean_;
  seed_m2_ = m2_;
  seed_log_weight_ = log_weight_;
  seed_log_mean_ = log_mean_;
  seed_log_m2_ = log_m2_;
}

void QuietScorePosterior::Observe(double score, double forgetting) {
  // Exponentially forgotten Welford update: the sufficient statistics
  // (weight, mean, M2) decay by the forgetting factor before the new window
  // is folded in, so the posterior tracks a slowly moving quiet channel.
  weight_ = forgetting * weight_ + 1.0;
  const double delta = score - mean_;
  mean_ += delta / weight_;
  m2_ = forgetting * m2_ + delta * (score - mean_);

  const double log_score = std::log(std::max(score, kScoreFloor));
  log_weight_ = forgetting * log_weight_ + 1.0;
  const double log_delta = log_score - log_mean_;
  log_mean_ += log_delta / log_weight_;
  log_m2_ = forgetting * log_m2_ + log_delta * (log_score - log_mean_);
}

double QuietScorePosterior::StdDev() const {
  return std::sqrt(std::max(Variance(), 0.0));
}

double QuietScorePosterior::LogSigma() const {
  const double var = log_weight_ > 0.0 ? log_m2_ / log_weight_ : 0.0;
  return std::max(std::sqrt(std::max(var, 0.0)), kLogSigmaFloor);
}

void QuietScorePosterior::ReseedScaled(double new_mean) {
  if (seed_mean_ <= 0.0 || new_mean <= 0.0) return;
  const double scale = new_mean / seed_mean_;
  weight_ = seed_weight_;
  mean_ = new_mean;
  m2_ = seed_m2_ * scale * scale;
  log_weight_ = seed_log_weight_;
  log_mean_ = seed_log_mean_ + std::log(scale);
  log_m2_ = seed_log_m2_;
}

void QuietScorePosterior::Deweight(double max_weight) {
  if (weight_ > max_weight && weight_ > 0.0) {
    // Scale M2 with the weight so the per-window variance is unchanged.
    m2_ *= max_weight / weight_;
    weight_ = max_weight;
  }
  if (log_weight_ > max_weight && log_weight_ > 0.0) {
    log_m2_ *= max_weight / log_weight_;
    log_weight_ = max_weight;
  }
}

void QuietScorePosterior::Reset() {
  weight_ = seed_weight_;
  mean_ = seed_mean_;
  m2_ = seed_m2_;
  log_weight_ = seed_log_weight_;
  log_mean_ = seed_log_mean_;
  log_m2_ = seed_log_m2_;
}

// --------------------------------------------------------------- profile --

void ProfilePosterior::Configure(std::size_t num_antennas,
                                 std::size_t num_subcarriers) {
  num_antennas_ = num_antennas;
  num_subcarriers_ = num_subcarriers;
  const std::size_t cells = num_antennas * num_subcarriers;
  // mulink-lint: allow(alloc): Configure, setup path
  mean_power_.assign(cells, 0.0);
  // mulink-lint: allow(alloc): Configure, setup path
  mean_amplitude_.assign(cells, 0.0);
  // mulink-lint: allow(alloc): Configure, setup path
  mean_variance_.assign(cells, 0.0);
  // mulink-lint: allow(alloc): Configure, setup path
  seed_power_.assign(cells, 0.0);
  // mulink-lint: allow(alloc): Configure, setup path
  seed_amplitude_.assign(cells, 0.0);
  // mulink-lint: allow(alloc): Configure, setup path
  seed_variance_.assign(cells, 0.0);
  weight_ = seed_weight_ = 0.0;
}

void ProfilePosterior::SeedFrom(const Detector& detector) {
  MULINK_REQUIRE(detector.num_antennas() == num_antennas_ &&
                     detector.num_subcarriers() == num_subcarriers_,
                 "ProfilePosterior: detector shape mismatch");
  const auto& power = detector.profile_power();
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      const std::size_t idx = m * num_subcarriers_ + k;
      mean_power_[idx] = power[m][k];
      // The detector's amplitude/variance profiles are not exposed, but the
      // prior only needs to anchor the posterior near the active profile:
      // amplitude ~ sqrt(power) and the variance prior starts at zero,
      // letting the first observed windows set the temporal floor.
      mean_amplitude_[idx] = std::sqrt(std::max(power[m][k], 0.0));
      mean_variance_[idx] = 0.0;
    }
  }
  weight_ = 1.0;  // one window's worth of prior mass
  seed_weight_ = weight_;
  std::copy(mean_power_.begin(), mean_power_.end(), seed_power_.begin());
  std::copy(mean_amplitude_.begin(), mean_amplitude_.end(),
            seed_amplitude_.begin());
  std::copy(mean_variance_.begin(), mean_variance_.end(),
            seed_variance_.begin());
}

void ProfilePosterior::Observe(std::span<const wifi::CsiPacket> window,
                               double forgetting) {
  if (window.empty() || num_antennas_ == 0) return;
  MULINK_REQUIRE(window[0].NumAntennas() == num_antennas_ &&
                     window[0].NumSubcarriers() == num_subcarriers_,
                 "ProfilePosterior: window shape mismatch");
  const double inv_n = 1.0 / static_cast<double>(window.size());
  weight_ = forgetting * weight_ + 1.0;
  const double inv_w = 1.0 / weight_;
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      double sum_p = 0.0, sum_p2 = 0.0, sum_a = 0.0;
      for (const auto& packet : window) {
        const double p = packet.SubcarrierPower(m, k);
        sum_p += p;
        sum_p2 += p * p;
        sum_a += std::sqrt(p);
      }
      const double mean_p = sum_p * inv_n;
      const double mean_a = sum_a * inv_n;
      const double var = std::max(sum_p2 * inv_n - mean_p * mean_p, 0.0);
      const std::size_t idx = m * num_subcarriers_ + k;
      mean_power_[idx] += (mean_p - mean_power_[idx]) * inv_w;
      mean_amplitude_[idx] += (mean_a - mean_amplitude_[idx]) * inv_w;
      mean_variance_[idx] += (var - mean_variance_[idx]) * inv_w;
    }
  }
}

void ProfilePosterior::Deweight(double max_weight) {
  weight_ = std::min(weight_, max_weight);
}

void ProfilePosterior::Reset() {
  weight_ = seed_weight_;
  std::copy(seed_power_.begin(), seed_power_.end(), mean_power_.begin());
  std::copy(seed_amplitude_.begin(), seed_amplitude_.end(),
            mean_amplitude_.begin());
  std::copy(seed_variance_.begin(), seed_variance_.end(),
            mean_variance_.begin());
}

// ---------------------------------------------------------------- ladder --

void LinkCalibrator::Configure(const Detector& detector,
                               std::span<const double> empty_scores,
                               const CalibrationConfig& config) {
  // Wiring entry point: this caller is the link's single owner.
  ScopedRole owner(owner_role_);
  config_ = config;
  state_ = LadderState::kHealthy;
  drift_streak_ = calm_streak_ = 0;
  blackout_streak_ = 0;
  ambient_fallback_ = false;
  recal_collected_ = recal_elapsed_ = 0;
  degraded_elapsed_ = degraded_entries_ = 0;
  consecutive_swaps_ = healed_streak_ = windows_since_swap_ = 0;
  probation_left_ = 0;
  staged_write_ = staged_count_ = 0;
  quiet_windows_ = profile_swaps_ = agc_rebaselines_ = 0;
  ladder_transitions_ = 0;
  adaptive_threshold_ = 0.0;
  if (!config_.enabled) return;
  MULINK_REQUIRE(config_.forgetting > 0.0 && config_.forgetting <= 1.0,
                 "LinkCalibrator: forgetting must be in (0,1]");
  MULINK_REQUIRE(config_.recalibration_forgetting > 0.0 &&
                     config_.recalibration_forgetting <= 1.0,
                 "LinkCalibrator: recalibration_forgetting must be in (0,1]");
  MULINK_REQUIRE(config_.quiet_posterior_max >= 0.0 &&
                     config_.quiet_posterior_max <= 1.0,
                 "LinkCalibrator: quiet_posterior_max must be in [0,1]");
  MULINK_REQUIRE(config_.drift_ewma_alpha > 0.0 &&
                     config_.drift_ewma_alpha <= 1.0,
                 "LinkCalibrator: drift_ewma_alpha must be in (0,1]");
  MULINK_REQUIRE(config_.drift_confirm_windows >= 1,
                 "LinkCalibrator: drift_confirm_windows must be >= 1");
  MULINK_REQUIRE(config_.drift_ewma_sigma > 0.0,
                 "LinkCalibrator: drift_ewma_sigma must be > 0");
  MULINK_REQUIRE(config_.recalibration_quiet_windows >= 1,
                 "LinkCalibrator: recalibration_quiet_windows must be >= 1");
  MULINK_REQUIRE(config_.threshold_sigma > 0.0,
                 "LinkCalibrator: threshold_sigma must be > 0");
  score_posterior_.Seed(empty_scores);
  profile_posterior_.Configure(detector.num_antennas(),
                               detector.num_subcarriers());
  profile_posterior_.SeedFrom(detector);
  score_ewma_ = score_posterior_.Mean();
  ambient_ewma_ = score_posterior_.Mean();
  drift_log_anchor_ = score_posterior_.LogMean();
  drift_log_sigma_ = score_posterior_.LogSigma();
  baseline_threshold_ratio_ =
      detector.has_threshold() && score_posterior_.Mean() > 0.0
          ? detector.threshold() / score_posterior_.Mean()
          : 0.0;
  stage_packets_ = config_.staged_quiet_packets > 0;
  refresh_angular_ =
      detector.config().scheme ==
          DetectionScheme::kSubcarrierAndPathWeighting &&
      detector.num_antennas() >= 2;
  staged_.clear();
  if (stage_packets_) {
    // mulink-lint: allow(alloc): Configure, setup path
    staged_.reserve(config_.staged_quiet_packets);
  }
}

void LinkCalibrator::TransitionTo(LadderState next) {
  if (next == state_) return;
  state_ = next;
  ++ladder_transitions_;
  MULINK_OBS_COUNT(metrics, kLadderTransitions);
}

void LinkCalibrator::EnterRecalibrating(bool agc_path) {
  (void)agc_path;  // the AGC path differs only in how it was entered
  // A confirmed change point: the posterior history describes the OLD
  // channel. Cap the stale evidence at one window's worth of prior mass so
  // the recalibration_quiet_windows collected next dominate the swap —
  // otherwise a steady-state posterior (effective memory ~1/(1-forgetting)
  // windows) would pull the staged profile halfway back to the stale one.
  score_posterior_.Deweight(1.0);
  profile_posterior_.Deweight(1.0);
  recal_collected_ = 0;
  // A retry out of Degraded, or a blackout escape, has already demonstrated
  // that no classification-derived gate admits evidence — the failed
  // attempt (or the blackout streak itself) IS the starvation probe. Start
  // with the starvation clock expired so the ambient fallback band opens on
  // the first window instead of idling through another probe.
  recal_elapsed_ = (state_ == LadderState::kDegraded ||
                    (config_.blackout_windows > 0 &&
                     blackout_streak_ >= config_.blackout_windows))
                       ? config_.starvation_windows
                       : 0;
  drift_streak_ = calm_streak_ = 0;
  blackout_streak_ = 0;
  ambient_fallback_ = false;  // re-arms only if this attempt starves too
  staged_write_ = staged_count_ = 0;
  probation_left_ = 0;  // the Recalibrating state supersedes any probation
  // A retry out of Degraded starts a fresh swap budget: the retry's swap
  // gets its Healthy probation instead of freezing the link on arithmetic.
  if (state_ == LadderState::kDegraded) consecutive_swaps_ = 0;
  TransitionTo(LadderState::kRecalibrating);
}

void LinkCalibrator::AbortRecalibration() {
  // The room never looked vacant long enough to recalibrate from. Degrade;
  // each retry widens the evidence gate (see ObserveDecision), and the
  // max_degraded_entries-th degradation freezes the ladder until an
  // explicit Reset.
  ++degraded_entries_;
  degraded_elapsed_ = 0;
  recal_collected_ = recal_elapsed_ = 0;
  TransitionTo(degraded_entries_ >= config_.max_degraded_entries
                   ? LadderState::kFrozen
                   : LadderState::kDegraded);
}

void LinkCalibrator::StageQuietPackets(
    std::span<const wifi::CsiPacket> window) {
  const std::size_t per =
      std::min(config_.staged_packets_per_window, window.size());
  for (std::size_t i = 0; i < per; ++i) {
    const std::size_t idx = i * window.size() / per;
    if (staged_write_ < staged_.size()) {
      staged_[staged_write_] = window[idx];  // copy-assign reuses CSI buffer
    } else {
      // mulink-lint: allow(alloc): initial staging-ring fill; capacity reserved in Configure
      staged_.push_back(window[idx]);
    }
    staged_write_ = (staged_write_ + 1) % config_.staged_quiet_packets;
    if (staged_count_ < config_.staged_quiet_packets) ++staged_count_;
  }
}

void LinkCalibrator::ApplySwap(Detector& detector) {
  // Cold path by contract: runs between windows, a handful of times per
  // deployment-day. The posterior buffers are the staged (shadow) copy; the
  // installs below overwrite the active profile in place, so the stream
  // never drops a packet around a swap.
  detector.ApplyProfile(profile_posterior_.power(),
                        profile_posterior_.amplitude(),
                        profile_posterior_.variance());
  if (refresh_angular_ &&
      staged_count_ >= std::min<std::size_t>(8, config_.staged_quiet_packets)) {
    detector.RefreshAngularProfile(
        std::span<const wifi::CsiPacket>(staged_.data(), staged_count_));
  }
  // Re-anchor the operating point against the NEW profile. Every score in
  // the posterior was measured against the profile just replaced — installing
  // its threshold verbatim pins a drifted-scale level onto a detector whose
  // vacant score has collapsed back to baseline (missed detections AND a
  // re-widened false-positive corridor). Instead, score the staged quiet
  // packets under the freshly installed profile to measure the new quiet
  // level, rescale the posterior to the seeded prior's shape at that level,
  // and re-apply the calibrated threshold margin relative to it.
  double rebased = 0.0;
  if (staged_count_ >= 2) {
    const std::span<const wifi::CsiPacket> staged(staged_.data(),
                                                  staged_count_);
    rebased = detector.UsesSanitizedInput()
                  ? detector.ScoreSanitized(staged, swap_scratch_)
                  : detector.Score(staged, swap_scratch_);
  }
  // Clamp the rebased level to [1, 1.5]x the calibration-time quiet mean.
  // The floor: staged packets are in-sample for the profile just fit to
  // them, which biases their score low, and drift compensation only ever
  // needs to move the operating point UP — tightening below the validated
  // calibration would trade the paper's false-positive margin for nothing.
  // The ceiling: a collection contaminated by residual motion (or a link
  // whose profile refresh could not fully absorb the fault) would otherwise
  // install an arbitrarily inflated operating point, and the HMM emission
  // re-fit from it goes blind to weak presence — missed detections that
  // then feed the "quiet" posterior and entrench the overshoot. A swap
  // whose profile refresh worked lands near 1x; one that needs more than
  // 1.5x did not work, and the next trigger (or probation re-anchor)
  // handles the residue instead of papering over it.
  const double seed_mean = score_posterior_.SeedMean();
  rebased = std::clamp(rebased, seed_mean, 1.5 * seed_mean);
  double new_threshold;
  if (rebased > 0.0 && baseline_threshold_ratio_ > 0.0) {
    score_posterior_.ReseedScaled(rebased);
    new_threshold = rebased * baseline_threshold_ratio_;
  } else {
    // No staged evidence to rebase on (staging disabled or a degenerate
    // collection): fall back to the posterior's own predictive threshold.
    new_threshold = score_posterior_.Threshold(config_.threshold_sigma);
  }
  if (new_threshold > 0.0) {
    if (detector.has_threshold() && detector.threshold() > 0.0) {
      // Move the fallback threshold by the same relative step so degraded
      // decisions keep their calibrated margin on the new operating point.
      const double ratio = new_threshold / detector.threshold();
      detector.SetFallbackThreshold(detector.fallback_threshold() * ratio);
    }
    detector.SetThreshold(new_threshold);
  }
  adaptive_threshold_ = detector.threshold();
  ++profile_swaps_;
  // Swap-chasing is measured by swap-to-swap SPACING, not by the calm-streak
  // heal alone: under a continuous ramp the ladder legitimately re-anchors
  // every few hours, and ramp noise keeps the calm streak from ever running
  // heal_windows long — the consecutive-swap count would creep up across
  // genuinely independent swaps until the cap tripped at some arbitrary
  // later moment. A drift trigger that held off for a full heal span BEYOND
  // probation is pacing, not chasing; only a re-trigger hot on the heels of
  // the previous swap keeps escalating.
  if (windows_since_swap_ >= 2 * config_.heal_windows) consecutive_swaps_ = 0;
  windows_since_swap_ = 0;
  ++consecutive_swaps_;
  MULINK_OBS_COUNT(metrics, kProfileSwaps);
  MULINK_OBS_GAUGE(metrics, kAdaptiveThreshold, adaptive_threshold_);

  // Fresh drift bookkeeping against the new operating point. The trigger
  // anchor set here is provisional — probation re-anchors it on the
  // converged posterior (see ObserveDecision).
  score_ewma_ = score_posterior_.Mean();
  drift_log_anchor_ = score_posterior_.LogMean();
  drift_log_sigma_ = score_posterior_.LogSigma();
  drift_streak_ = calm_streak_ = healed_streak_ = 0;
  blackout_streak_ = 0;
  ambient_fallback_ = false;
  recal_collected_ = recal_elapsed_ = 0;
  staged_write_ = staged_count_ = 0;
  probation_left_ = config_.heal_windows;
  if (consecutive_swaps_ > config_.max_consecutive_swaps) {
    // Swapping is not clearing the drift signal: stop chasing it.
    ++degraded_entries_;
    degraded_elapsed_ = 0;
    TransitionTo(degraded_entries_ >= config_.max_degraded_entries
                     ? LadderState::kFrozen
                     : LadderState::kDegraded);
  } else {
    TransitionTo(LadderState::kHealthy);
  }
}

bool LinkCalibrator::ObserveDecision(double score, double posterior,
                                     std::span<const wifi::CsiPacket> window,
                                     Detector& detector,
                                     const CalibrationWindowContext& context) {
  // The one per-decision entry point: the caller (streaming detector,
  // engine worker, serving shard) is the link's single driving thread, so
  // this call IS the owner role for the double-buffer swap state.
  ScopedRole owner(owner_role_);
  if (!config_.enabled || state_ == LadderState::kFrozen) return false;

  // Every decision — quiet or not — advances the ladder's clocks.
  if (state_ == LadderState::kRecalibrating) ++recal_elapsed_;
  if (state_ == LadderState::kDegraded) ++degraded_elapsed_;
  ++windows_since_swap_;
  if (probation_left_ > 0 && --probation_left_ == 0) {
    // Probation over: the posterior has re-converged on the ACTUAL
    // post-swap quiet level (the staged estimate it was reseeded from is
    // biased in-sample). Re-anchor the drift trigger there rather than at
    // the staged guess, or residual rebase error reads as fresh drift and
    // the ladder thrashes through back-to-back swaps.
    drift_log_anchor_ = score_posterior_.LogMean();
    drift_log_sigma_ = score_posterior_.LogSigma();
    score_ewma_ = score_posterior_.Mean();
    drift_streak_ = calm_streak_ = 0;
  }

  // AGC fast re-baseline: a confirmed gain step obsoletes the profile at
  // once — no point waiting out drift confirmation on stale statistics.
  if (config_.agc_fast_rebaseline &&
      context.agc_frames >= config_.agc_frames_min &&
      (state_ == LadderState::kHealthy ||
       state_ == LadderState::kDriftSuspected)) {
    ++agc_rebaselines_;
    MULINK_OBS_COUNT(metrics, kAgcRebaselines);
    EnterRecalibrating(/*agc_path=*/true);
  }

  // Quiet evidence: a clean decision the HMM/detector is confident is
  // vacant, from a hop the frame guard left untainted. Degraded decisions
  // and hops with repaired (flagged) frames never feed the posteriors.
  // Under active drift the stale HMM emission panics before the linear
  // threshold does, so drift sensing — and evidence collection while
  // Recalibrating — also accept clean windows whose score still sits at or
  // below the active threshold ("plausibly vacant"); steady-state posterior
  // updates stay gated on the HMM's confident vacancy.
  const bool tainted = context.degraded || context.repaired_frames > 0;
  const bool strictly_quiet =
      !tainted && posterior <= config_.quiet_posterior_max;
  // Ambient level: an EWMA over EVERY untainted window's score, occupied
  // or not. With episodic occupancy it sits near the vacant level most of
  // the time, and unlike everything else here it does not depend on any
  // classification — it is the bootstrap estimate the starvation fallback
  // below needs when a step change pushes the vacant room past every
  // classification-derived gate.
  if (!tainted) {
    ambient_ewma_ = ambient_ewma_ <= 0.0
                        ? score
                        : ambient_ewma_ +
                              config_.drift_ewma_alpha * (score - ambient_ewma_);
  }
  // The plausible-vacancy gate is the active threshold in steady state.
  // While Recalibrating (and through post-swap probation) it is the STAGED
  // adaptive threshold (floored at the active one, capped at twice it):
  // under continuing drift the stale threshold falls behind the vacant
  // room before the evidence is in, and the gate must track the very drift
  // it is measuring. That tracking has a bootstrap hole after a large step
  // change: the staged threshold can only expand through admitted windows,
  // and no window is admitted when the whole room moved past the cap. When
  // Recalibrating has run starvation-long with NOTHING collected, fall
  // back to a band above the ambient EWMA — a vacant-but-louder room
  // clusters there, while a genuinely occupied room keeps the collection
  // clock running toward Degraded.
  double plausible_gate =
      detector.has_threshold() ? detector.threshold() : 0.0;
  const bool staged_gate =
      state_ == LadderState::kRecalibrating || probation_left_ > 0;
  if (staged_gate && plausible_gate > 0.0) {
    plausible_gate =
        std::clamp(score_posterior_.Threshold(config_.threshold_sigma),
                   plausible_gate, 2.0 * plausible_gate);
    // Once an attempt has starved, the band stays open for the REST of the
    // attempt (ambient_fallback_): the staged gate is capped at twice the
    // stale threshold, so after a step change far past that cap the first
    // fallback-admitted window would otherwise be the last — collection
    // stalls at one window, times out, and a room that is merely louder
    // now walks the ladder to Frozen one window per attempt.
    if (state_ == LadderState::kRecalibrating &&
        (recal_collected_ == 0 || ambient_fallback_) &&
        recal_elapsed_ >= config_.starvation_windows && ambient_ewma_ > 0.0) {
      plausible_gate = std::max(plausible_gate, 1.5 * ambient_ewma_);
      ambient_fallback_ = true;
    }
  }
  const bool plausibly_quiet =
      strictly_quiet ||
      (!tainted && plausible_gate > 0.0 && score <= plausible_gate);
  if (!tainted) {
    blackout_streak_ = plausibly_quiet ? 0 : blackout_streak_ + 1;
  }

  bool swapped = false;
  if (plausibly_quiet) {
    score_ewma_ += config_.drift_ewma_alpha * (score - score_ewma_);
    MULINK_OBS_GAUGE(metrics, kEmptyScoreEwma, score_ewma_);
    const bool learn = staged_gate || strictly_quiet;
    if (learn) {
      ++quiet_windows_;
      MULINK_OBS_COUNT(metrics, kQuietWindows);
      const double forgetting = staged_gate
                                    ? config_.recalibration_forgetting
                                    : config_.forgetting;
      score_posterior_.Observe(score, forgetting);
      profile_posterior_.Observe(window, forgetting);
    }

    switch (state_) {
      case LadderState::kHealthy:
      case LadderState::kDriftSuspected: {
        // The trigger stands down through post-swap probation: its anchor
        // is the staged estimate until probation re-anchors it on the
        // converged posterior, and judging drift (or health) against a
        // known-stale reference only produces thrash.
        if (probation_left_ > 0) break;
        // The more sensitive of the threshold-fraction and the
        // posterior-sigma levels is the drift reference.
        double reference =
            detector.has_threshold() && detector.threshold() > 0.0
                ? config_.drift_score_fraction * detector.threshold()
                : 0.0;
        // The sigma level is anchored at the quiet statistics the last
        // (re)calibration installed, NOT the live posterior — the posterior
        // keeps absorbing slow drift in steady state, so a reference built
        // on it would rise with the EWMA and never fire. It is computed in
        // LOG-sigma coordinates: the HMM's empty emission is a log-Gaussian
        // fit of the same scores and flips its decisions a fixed number of
        // log-sigmas out, so this trigger tracks each link's own quiet
        // spread and stays a fixed fraction below the flip point.
        if (drift_log_sigma_ > 0.0) {
          const double sigma_level =
              std::exp(drift_log_anchor_ +
                       config_.drift_ewma_sigma * drift_log_sigma_);
          reference =
              reference > 0.0 ? std::min(reference, sigma_level) : sigma_level;
        }
        const bool drifting = reference > 0.0 && score_ewma_ > reference;
        if (drifting) {
          ++drift_streak_;
          calm_streak_ = 0;
          healed_streak_ = 0;
        } else {
          ++calm_streak_;
          drift_streak_ = 0;
        }
        if (state_ == LadderState::kHealthy) {
          if (!drifting && ++healed_streak_ >= config_.heal_windows) {
            // Sustained calm after a swap: the recalibration took. Re-arm
            // the full escalation budget.
            consecutive_swaps_ = 0;
            degraded_entries_ = 0;
          }
          if (drift_streak_ >= config_.drift_confirm_windows) {
            drift_streak_ = calm_streak_ = 0;
            TransitionTo(LadderState::kDriftSuspected);
          }
        } else {  // kDriftSuspected
          if (drift_streak_ >= config_.drift_confirm_windows) {
            EnterRecalibrating(/*agc_path=*/false);
          } else if (calm_streak_ >= config_.drift_confirm_windows) {
            drift_streak_ = calm_streak_ = 0;
            TransitionTo(LadderState::kHealthy);
          }
        }
        break;
      }
      case LadderState::kRecalibrating: {
        if (stage_packets_) StageQuietPackets(window);
        if (++recal_collected_ >= config_.recalibration_quiet_windows) {
          ApplySwap(detector);
          swapped = true;
        }
        break;
      }
      case LadderState::kDegraded:
        // Keep observing slowly while the backoff runs; the retry below
        // re-enters Recalibrating with the accumulated evidence.
        break;
      case LadderState::kFrozen:
        break;  // unreachable (early return above)
    }
  }

  // Blackout escape (see CalibrationConfig::blackout_windows): the room has
  // sat above every gate for far longer than an occupancy episode — jump to
  // Recalibrating so the starvation fallback can re-baseline from ambient.
  // From Degraded this cuts the retry backoff short: a step change landing
  // during the backoff would otherwise charge false positives for the whole
  // span.
  if ((state_ == LadderState::kHealthy ||
       state_ == LadderState::kDriftSuspected ||
       state_ == LadderState::kDegraded) &&
      config_.blackout_windows > 0 &&
      blackout_streak_ >= config_.blackout_windows) {
    EnterRecalibrating(/*agc_path=*/false);
  }

  // Timeouts and backoffs run on every decision.
  if (state_ == LadderState::kRecalibrating && !swapped &&
      recal_elapsed_ >= config_.recalibration_timeout_windows) {
    AbortRecalibration();
  }
  if (state_ == LadderState::kDegraded &&
      degraded_elapsed_ >= config_.degraded_backoff_windows) {
    EnterRecalibrating(/*agc_path=*/false);
  }

  MULINK_OBS_GAUGE(metrics, kLadderState,
                   static_cast<double>(static_cast<std::uint8_t>(state_)));
  return swapped;
}

void LinkCalibrator::FillHealth(nic::LinkHealth& health) const {
  if (!config_.enabled) return;
  health.calibration_state = state_;
  health.quiet_windows = quiet_windows_;
  health.profile_swaps = profile_swaps_;
  health.adaptive_threshold = adaptive_threshold_;
  // The ladder owns the drift flag when enabled: raised from
  // DriftSuspected on, and — unlike the legacy flag-only watchdog —
  // cleared again by a successful recalibration or a drift walk-back.
  health.profile_drift = drift_flagged();
  health.empty_score_ewma = score_ewma_;
}

void LinkCalibrator::Reset(const Detector& detector) {
  // Operator re-arm: same single-owner contract as ObserveDecision.
  ScopedRole owner(owner_role_);
  if (!config_.enabled) return;
  state_ = LadderState::kHealthy;
  score_posterior_.Reset();
  // Re-seed the profile posterior from the detector's CURRENT profile: the
  // detector keeps whatever adaptation its swaps installed (there is no
  // shadow copy of the original), so the prior must anchor there too.
  profile_posterior_.SeedFrom(detector);
  score_ewma_ = score_posterior_.Mean();
  ambient_ewma_ = score_posterior_.Mean();
  drift_log_anchor_ = score_posterior_.LogMean();
  drift_log_sigma_ = score_posterior_.LogSigma();
  drift_streak_ = calm_streak_ = 0;
  blackout_streak_ = 0;
  ambient_fallback_ = false;
  recal_collected_ = recal_elapsed_ = 0;
  degraded_elapsed_ = degraded_entries_ = 0;
  consecutive_swaps_ = healed_streak_ = windows_since_swap_ = 0;
  probation_left_ = 0;
  staged_write_ = staged_count_ = 0;
  quiet_windows_ = profile_swaps_ = agc_rebaselines_ = 0;
  ladder_transitions_ = 0;
  adaptive_threshold_ = 0.0;
}

}  // namespace mulink::core
