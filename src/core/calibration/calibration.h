// Online Bayesian calibration with a drift-adaptive recalibration ladder.
//
// The paper's 92%/4.5% operating point assumes a fresh static profile s(0),
// but deployments drift for weeks: thermal gain ramps, furniture moves, AGC
// retrains. The profile-drift watchdog in core/streaming only raises a flag;
// this subsystem acts on it. Following the empirical-fading Bayesian
// calibration of Schmidhammer et al. (arXiv:2205.05331) with link-level fade
// statistics in the spirit of Yiğitler et al. (arXiv:1405.7237), each link
// maintains
//
//  * a posterior over the quiet-period window score — exponentially
//    forgotten Gaussian sufficient statistics (weight, mean, M2) in both the
//    linear and the log domain, seeded from the calibration empty scores.
//    Its predictive mean + sigma * std is the adaptive detection threshold,
//    and the log-domain statistics re-fit the HMM's empty emission on swap;
//  * a posterior over the quiet-period profile — per-(antenna, subcarrier)
//    forgetting-weighted mean power / amplitude / temporal variance, seeded
//    from the detector's active profile. Its means are the staged (shadow)
//    profile a swap installs.
//
// Both posteriors are updated online, ONLY from windows the HMM/detector
// classifies as confidently vacant (posterior at or below a bound) that the
// frame guard left untainted (no repaired frames in the hop, no degraded or
// dead-chain scoring, no resync straddling the window). Drift sensing and
// Recalibrating evidence additionally accept "plausibly vacant" clean
// windows whose score still sits at or below the active threshold: under
// real drift the stale HMM emission panics before the linear threshold is
// reached, and its panic is part of the drift signal, not a reason to
// starve the ladder.
//
// The LinkCalibrator drives the recalibration ladder
//
//   Healthy -> DriftSuspected -> Recalibrating -> Degraded -> Frozen
//
// replacing the flag-only watchdog: a persistent quiet-score EWMA excursion
// toward the threshold suspects drift, confirmation switches the posteriors
// to a fast forgetting factor and collects quiet evidence, and the swap
// installs the staged profile, threshold and HMM emission in place — double
// buffered between windows, the stream never drops a packet and the hot
// path never allocates (the posterior buffers are preallocated; the swap
// itself is the cold path). A confirmed AGC step re-baselines through the
// same Recalibrating state without waiting out drift confirmation. Repeated
// failed recalibrations degrade and finally freeze the ladder; only Reset
// re-arms a frozen link. State is surfaced through nic::LinkHealth, the
// MULINK_OBS_* counters/gauges, and the CLI / intrusion monitor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "core/detector.h"
#include "nic/frame_guard.h"
#include "obs/metrics.h"
#include "wifi/csi.h"

namespace mulink::core {

// Ladder states live in nic (next to LinkHealth) so health snapshots can
// carry and name them without a core dependency; the machine lives here.
using LadderState = nic::CalibrationLadder;

struct CalibrationConfig {
  // Master switch. Off: the LinkCalibrator is inert and the legacy
  // flag-only watchdog in GuardedIngest keeps sole ownership of
  // LinkHealth::profile_drift.
  bool enabled = false;

  // Quiet-evidence gate: a clean decision with posterior at or below this
  // bound counts as a confidently vacant window.
  double quiet_posterior_max = 0.1;

  // Forgetting factor per quiet window for both posteriors in steady state
  // (effective memory ~ 1/(1 - forgetting) windows)...
  double forgetting = 0.98;
  // ...and the fast factor used while Recalibrating (including the AGC
  // re-baseline path), so fresh evidence dominates the stale prior.
  double recalibration_forgetting = 0.75;

  // Adaptive threshold margin, reapplied on swap:
  // threshold = posterior mean + threshold_sigma * predictive std.
  double threshold_sigma = 3.0;

  // Drift detection: a fast EWMA of quiet-window scores (seeded at the
  // posterior mean) persistently above the drift reference for
  // drift_confirm_windows consecutive quiet windows moves Healthy ->
  // DriftSuspected; the same persistence again confirms and moves
  // DriftSuspected -> Recalibrating. The same count of calm quiet windows
  // walks DriftSuspected back to Healthy. The reference is the MORE
  // sensitive of two levels: drift_score_fraction x the active threshold,
  // and the anchored quiet level shifted by drift_ewma_sigma LOG-sigmas —
  // exp(log_anchor + drift_ewma_sigma * log_sigma), both anchored at the
  // last (re)calibration. The log-sigma level matters with an HMM in front:
  // its emissions are log-Gaussian fits of the same quiet scores and its
  // decisions flip a fixed number of log-sigmas above the quiet mean (well
  // below the linear threshold), so a trigger in the same coordinates sits
  // at a fixed fraction of the flip point on EVERY link, whatever its
  // spread.
  double drift_ewma_alpha = 0.1;
  double drift_score_fraction = 0.9;
  double drift_ewma_sigma = 1.5;
  std::size_t drift_confirm_windows = 4;

  // Quiet windows of fast-forgetting evidence collected in Recalibrating
  // before the staged profile/threshold swap is applied.
  std::size_t recalibration_quiet_windows = 8;
  // Decisions (quiet or not) Recalibrating may spend before giving up —
  // a room that never looks vacant cannot be recalibrated from.
  std::size_t recalibration_timeout_windows = 240;
  // Evidence-starvation fallback: when Recalibrating has run this many
  // decisions with NOTHING collected, the evidence gate falls back to a
  // band above the classification-free ambient EWMA. A large step change
  // can move the vacant room past every threshold-derived gate, and the
  // staged gate can only expand through windows it admits — without the
  // fallback such a room deadlocks the ladder into Degraded/Frozen. Once
  // open, the band stays open for the rest of the attempt: the staged gate
  // is capped at twice the stale threshold, so past that cap the first
  // admitted window would otherwise also be the last.
  std::size_t starvation_windows = 16;
  // Blackout escape: consecutive untainted windows ABOVE the plausible-
  // vacancy gate before the ladder concludes the room has moved beyond
  // every gate it owns and jumps to Recalibrating (whose starvation
  // fallback can bootstrap from the ambient EWMA). It fires from Healthy
  // and DriftSuspected — every other path to Recalibrating consumes
  // plausibly vacant windows, so a step change past twice the stale
  // threshold would otherwise leave the ladder idling while the filter
  // flags the whole stream — and from Degraded, where it cuts the retry
  // backoff short: a step change that lands during the backoff would
  // otherwise charge false positives for the full degraded_backoff_windows
  // span. Must comfortably exceed a typical occupancy episode — an
  // occupant produces the same signature until they leave. 0 disables the
  // escape. A blackout-triggered (or Degraded-retry) entry into
  // Recalibrating starts with the starvation clock already expired: the
  // streak itself proved that no classification-derived gate admits
  // evidence, so the ambient band opens immediately.
  std::size_t blackout_windows = 24;

  // Swap attempts without an intervening healed period before the ladder
  // declares the link Degraded. A Degraded link retries after
  // degraded_backoff_windows decisions (or as soon as the blackout escape
  // above fires), entering Recalibrating with the ambient-EWMA starvation
  // fallback armed from the first window: after a step change the vacant
  // room can sit far above every threshold-derived gate, and a retry that
  // re-ran the starvation probe would starve on the very evidence it
  // needs — the ladder would freeze on a room that is merely louder now.
  // Once Degraded has been entered max_degraded_entries times the ladder
  // freezes; only Reset re-arms it.
  std::size_t max_consecutive_swaps = 3;
  std::size_t degraded_backoff_windows = 32;
  std::size_t max_degraded_entries = 3;
  // Quiet windows without a drift signal after a swap that count as healed
  // (resets the consecutive-swap and degraded-entry budgets). The same
  // span doubles as the post-swap PROBATION period: the swap re-anchored
  // the posterior (and the HMM emission re-fit from it) on a staged
  // estimate that is biased in-sample, so for heal_windows decisions the
  // posteriors keep learning from plausibly vacant windows under the
  // Recalibrating-style gate instead of HMM-confident ones — if the
  // estimate landed off, the filter's own saturated posterior could never
  // clear the strict gate to correct it. The drift trigger stands down for
  // the same span and re-anchors on the converged posterior when probation
  // ends, so residual rebase error does not read as fresh drift.
  std::size_t heal_windows = 16;

  // AGC fast re-baseline: when at least agc_frames_min repaired
  // RSSI-outlier frames land in one hop, jump straight to Recalibrating
  // with the fast forgetting factor instead of waiting out drift
  // confirmation (a confirmed gain step obsoletes the profile at once).
  bool agc_fast_rebaseline = true;
  std::size_t agc_frames_min = 6;

  // Quiet packets (in the detector's expected sanitization state) staged
  // while Recalibrating; 0 disables staging. A swap scores them against the
  // FRESHLY installed profile to re-anchor the posterior and threshold on
  // the new operating point (the pre-swap scores were measured against the
  // old profile and carry its scale), and — combined scheme only — feeds
  // them to the angular-profile refresh. Cold-path cost.
  std::size_t staged_quiet_packets = 32;
  // Packets staged per quiet window (evenly spaced inside the window).
  std::size_t staged_packets_per_window = 4;
};

// Exponentially forgotten Gaussian sufficient statistics (weight, mean, M2)
// over quiet-window scores, in the linear and the log domain. The linear
// predictive mean/std set the adaptive threshold; the log statistics re-fit
// the HMM empty emission. Seed() snapshots the prior so Reset() restores
// the just-calibrated state.
class QuietScorePosterior {
 public:
  // Fit the prior from calibration empty-window scores (may be empty: the
  // posterior then starts uninformative and the first observations set it).
  void Seed(std::span<const double> empty_scores);

  // Fold one quiet-window score in with the given forgetting factor.
  void Observe(double score, double forgetting);

  // Effective number of windows behind the current estimate.
  double EffectiveWindows() const { return weight_; }
  double Mean() const { return mean_; }
  double Variance() const { return weight_ > 0.0 ? m2_ / weight_ : 0.0; }
  double StdDev() const;
  // Adaptive detection threshold: mean + sigma * predictive std.
  double Threshold(double sigma) const { return mean_ + sigma * StdDev(); }

  double LogMean() const { return log_mean_; }
  // Predictive log-std with the same floor PresenceHmm's fit applies.
  double LogSigma() const;
  // Quiet-score mean of the seeded prior (the calibration-time level).
  double SeedMean() const { return seed_mean_; }

  // Cap the effective evidence behind the current estimate (the estimate
  // itself is unchanged; the spread per window is preserved). Called at a
  // detected change point so fresh evidence dominates the stale history.
  void Deweight(double max_weight);

  // Back to the seeded prior.
  void Reset();

  // Re-anchor to the seeded prior's SHAPE at a new quiet level: a profile
  // swap changes the scale every past score was measured on, so the linear
  // statistics are restored scaled by new_mean/seed_mean (mean, std and the
  // log-domain location all move together; the log spread is scale-free and
  // keeps the seed's value). No-op unless both means are positive.
  void ReseedScaled(double new_mean);

 private:
  double weight_ = 0.0, mean_ = 0.0, m2_ = 0.0;
  double log_weight_ = 0.0, log_mean_ = 0.0, log_m2_ = 0.0;
  // Snapshot taken by Seed() for Reset().
  double seed_weight_ = 0.0, seed_mean_ = 0.0, seed_m2_ = 0.0;
  double seed_log_weight_ = 0.0, seed_log_mean_ = 0.0, seed_log_m2_ = 0.0;
};

// Per-(antenna, subcarrier) forgetting-weighted mean power, mean amplitude
// and mean within-window temporal variance over quiet windows — the staged
// profile a recalibration swap installs. Diagonal (per-cell) covariance:
// the cross terms the combined scheme needs live in the retained packets it
// re-derives its pseudospectrum from, not here. All buffers are sized once
// by Configure; Observe is allocation-free.
class ProfilePosterior {
 public:
  // Allocate the flattened [antenna][subcarrier] buffers.
  void Configure(std::size_t num_antennas, std::size_t num_subcarriers);

  // Take the detector's active profile as the prior (with unit weight), so
  // the first swaps blend rather than replace.
  void SeedFrom(const Detector& detector);

  // Fold one quiet window in (same sanitization state as the profile:
  // sanitized for every scheme but the baseline). Allocation-free.
  void Observe(std::span<const wifi::CsiPacket> window, double forgetting);

  double EffectiveWindows() const { return weight_; }
  double MeanPower(std::size_t m, std::size_t k) const {
    return mean_power_[m * num_subcarriers_ + k];
  }
  double MeanAmplitude(std::size_t m, std::size_t k) const {
    return mean_amplitude_[m * num_subcarriers_ + k];
  }
  double MeanVariance(std::size_t m, std::size_t k) const {
    return mean_variance_[m * num_subcarriers_ + k];
  }
  std::span<const double> power() const { return mean_power_; }
  std::span<const double> amplitude() const { return mean_amplitude_; }
  std::span<const double> variance() const { return mean_variance_; }

  // Cap the effective evidence behind the current means (see
  // QuietScorePosterior::Deweight): at a change point the stale profile
  // history must not outweigh the windows collected while Recalibrating.
  void Deweight(double max_weight);

  // Back to the last SeedFrom state.
  void Reset();

 private:
  std::size_t num_antennas_ = 0;
  std::size_t num_subcarriers_ = 0;
  double weight_ = 0.0;
  std::vector<double> mean_power_;
  std::vector<double> mean_amplitude_;
  std::vector<double> mean_variance_;
  // SeedFrom snapshot for Reset.
  double seed_weight_ = 0.0;
  std::vector<double> seed_power_;
  std::vector<double> seed_amplitude_;
  std::vector<double> seed_variance_;
};

// One decision's worth of context the ladder needs from the ingest path.
struct CalibrationWindowContext {
  // Decision used the degraded (dead-chain fallback) statistic.
  bool degraded = false;
  // Repaired (flagged-but-usable) frames entered the ring this hop — the
  // window is tainted and must not feed the posteriors.
  std::size_t repaired_frames = 0;
  // Repaired frames carrying the RSSI-outlier (AGC) fault this hop.
  std::size_t agc_frames = 0;
};

// Per-link calibration state: both posteriors, the staged quiet-packet ring
// for the angular refresh, and the recalibration ladder. Owned by
// StreamingDetector and SensingEngine's LinkState exactly like
// GuardedIngest, and driven with identical inputs on both paths, so batch
// and streaming adaptation stay bit-identical.
class LinkCalibrator {
 public:
  LinkCalibrator() = default;

  // Wire the calibrator to a link at AddLink time. Allocates every buffer
  // the steady state needs; inert when config.enabled is false.
  void Configure(const Detector& detector,
                 std::span<const double> empty_scores,
                 const CalibrationConfig& config);

  bool enabled() const { return config_.enabled; }

  // Observe one emitted decision (clean or degraded) and run the ladder.
  // `score`/`posterior` are the decision's statistic and P(occupied);
  // `window` is the scored window in the detector's expected sanitization
  // state; `detector` is mutated in place when a swap fires. Returns true
  // when a profile/threshold swap was applied this decision — the caller
  // must then re-fit its HMM empty emission from quiet_log_mean/sigma().
  bool ObserveDecision(double score, double posterior,
                       std::span<const wifi::CsiPacket> window,
                       Detector& detector,
                       const CalibrationWindowContext& context);

  LadderState state() const { return state_; }
  // Drift flag the ladder exposes in place of the legacy watchdog: set from
  // DriftSuspected on, cleared by a successful swap or a walk-back.
  bool drift_flagged() const {
    return state_ != LadderState::kHealthy;
  }
  std::uint64_t quiet_windows() const { return quiet_windows_; }
  std::uint64_t profile_swaps() const { return profile_swaps_; }
  std::uint64_t agc_rebaselines() const { return agc_rebaselines_; }
  // Active threshold after the last swap (0 before any swap).
  double adaptive_threshold() const { return adaptive_threshold_; }
  double quiet_score_ewma() const { return score_ewma_; }
  double quiet_log_mean() const { return score_posterior_.LogMean(); }
  double quiet_log_sigma() const { return score_posterior_.LogSigma(); }
  const QuietScorePosterior& score_posterior() const {
    return score_posterior_;
  }
  const ProfilePosterior& profile_posterior() const {
    return profile_posterior_;
  }
  const CalibrationConfig& config() const { return config_; }

  // Fill the calibration fields of a health snapshot.
  void FillHealth(nic::LinkHealth& health) const;

  // Back to the just-configured state: the ladder returns to Healthy (the
  // frozen state does NOT survive a Reset, by design — an operator reset is
  // the explicit re-arm), the score posterior returns to its calibration
  // prior, and the profile posterior re-seeds from the detector's CURRENT
  // profile (swaps are not undone; there is no shadow of the original).
  void Reset(const Detector& detector);

  // Observability shard of the owning link (null = no-op sink), re-pointed
  // by the owner every push exactly like GuardedIngest::metrics.
  obs::Registry* metrics = nullptr;

 private:
  void TransitionTo(LadderState next);
  void EnterRecalibrating(bool agc_path) MULINK_REQUIRES(owner_role_);
  // A recalibration attempt ended without a swap (quiet evidence never
  // materialized): degrade, or freeze on the second degradation.
  void AbortRecalibration();
  // Install the staged profile, threshold and angular refresh in place.
  void ApplySwap(Detector& detector) MULINK_REQUIRES(owner_role_);
  void StageQuietPackets(std::span<const wifi::CsiPacket> window)
      MULINK_REQUIRES(owner_role_);

  CalibrationConfig config_;
  bool stage_packets_ = false;    // staged_quiet_packets > 0
  bool refresh_angular_ = false;  // combined scheme with a usable ULA
  LadderState state_ = LadderState::kHealthy;
  // threshold / quiet-score-mean at Configure time: the calibrated margin a
  // swap re-applies relative to the rebased quiet level.
  double baseline_threshold_ratio_ = 0.0;
  // Single-owner capability for the double-buffered swap state below: a
  // link's calibrator is driven by exactly one thread (the link's streaming
  // detector, an engine worker, or a serving shard). The public entry
  // points (Configure, ObserveDecision, Reset) acquire the role for their
  // scope; the swap internals REQUIRE it, so under Clang -Wthread-safety
  // nothing can reach the staged ring or the in-place swap from outside a
  // driving entry point (DESIGN.md §16).
  ThreadRole owner_role_;

  // Scratch for scoring the staged packets under the new profile on swap
  // (cold path; buffers warm up on the first swap).
  DetectorScratch swap_scratch_ MULINK_GUARDED_BY(owner_role_);

  QuietScorePosterior score_posterior_;
  ProfilePosterior profile_posterior_;

  // Fast drift EWMA over quiet-window scores, seeded at the posterior mean.
  double score_ewma_ = 0.0;
  // EWMA over every untainted window's score, occupied or not — the
  // classification-free ambient level behind the starvation fallback.
  double ambient_ewma_ = 0.0;
  // Quiet-score log statistics installed by the last (re)calibration — the
  // FIXED reference the drift trigger compares the EWMA against. The live
  // posterior cannot serve here: in steady state it keeps learning the very
  // drift the trigger is meant to detect and the reference would chase the
  // EWMA until the HMM panics first.
  double drift_log_anchor_ = 0.0;
  double drift_log_sigma_ = 0.0;
  std::size_t drift_streak_ = 0;  // consecutive drifting quiet windows
  std::size_t calm_streak_ = 0;   // consecutive calm quiet windows
  // Consecutive untainted windows above the plausible gate (blackout).
  std::size_t blackout_streak_ = 0;
  // The current Recalibrating attempt starved and opened the ambient-EWMA
  // band; it stays open for the rest of the attempt (the staged gate is
  // capped at twice the stale threshold, so after a large step change the
  // first fallback-admitted window would otherwise also be the last).
  bool ambient_fallback_ = false;

  // Recalibrating progress.
  std::size_t recal_collected_ = 0;
  std::size_t recal_elapsed_ = 0;

  // Degraded backoff / escalation.
  std::size_t degraded_elapsed_ = 0;
  std::size_t degraded_entries_ = 0;
  std::size_t consecutive_swaps_ = 0;
  std::size_t healed_streak_ = 0;
  // Decisions since the last applied swap (swap-to-swap spacing): swaps far
  // enough apart are independent re-anchors, not chasing (see ApplySwap).
  std::size_t windows_since_swap_ = 0;
  // Post-swap probation countdown (see CalibrationConfig::heal_windows).
  std::size_t probation_left_ = 0;

  // Staged quiet packets for the post-swap re-anchor and angular refresh —
  // the shadow half of the double-buffered swap (the live half is the
  // detector profile ApplySwap overwrites in place).
  std::vector<wifi::CsiPacket> staged_ MULINK_GUARDED_BY(owner_role_);
  std::size_t staged_write_ MULINK_GUARDED_BY(owner_role_) = 0;
  std::size_t staged_count_ MULINK_GUARDED_BY(owner_role_) = 0;

  std::uint64_t quiet_windows_ = 0;
  std::uint64_t profile_swaps_ = 0;
  std::uint64_t agc_rebaselines_ = 0;
  std::uint64_t ladder_transitions_ = 0;
  double adaptive_threshold_ = 0.0;
};

}  // namespace mulink::core
