#include "core/rti.h"
// mulink-lint: cold-tu(tomographic imaging extension, image-rate not packet-rate)

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mulink::core {

geometry::Vec2 RtiGrid::PixelCenter(std::size_t pixel) const {
  MULINK_REQUIRE(pixel < NumPixels(), "RtiGrid: pixel out of range");
  const std::size_t ix = pixel % nx;
  const std::size_t iy = pixel / nx;
  return {(static_cast<double>(ix) + 0.5) * pixel_size_m,
          (static_cast<double>(iy) + 0.5) * pixel_size_m};
}

RtiImager::RtiImager(std::vector<geometry::Vec2> nodes, double width_m,
                     double depth_m, const RtiConfig& config)
    : nodes_(std::move(nodes)), config_(config) {
  MULINK_REQUIRE(nodes_.size() >= 3, "RtiImager: need >= 3 nodes");
  MULINK_REQUIRE(width_m > 0.0 && depth_m > 0.0,
                 "RtiImager: area must be positive");
  MULINK_REQUIRE(config_.pixel_size_m > 0.0,
                 "RtiImager: pixel size must be > 0");
  MULINK_REQUIRE(config_.regularization > 0.0,
                 "RtiImager: regularization must be > 0");

  grid_.width_m = width_m;
  grid_.depth_m = depth_m;
  grid_.pixel_size_m = config_.pixel_size_m;
  grid_.nx = static_cast<std::size_t>(
      std::ceil(width_m / config_.pixel_size_m));
  grid_.ny = static_cast<std::size_t>(
      std::ceil(depth_m / config_.pixel_size_m));

  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      links_.emplace_back(i, j);
    }
  }

  // Ellipse weight matrix (Wilson & Patwari's 1/sqrt(link length) inside the
  // excess-path ellipse).
  const std::size_t num_pixels = grid_.NumPixels();
  weights_.assign(links_.size() * num_pixels, 0.0);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const auto& [a, b] = links_[l];
    const double link_length = geometry::Distance(nodes_[a], nodes_[b]);
    if (link_length < 1e-9) continue;
    const double weight = 1.0 / std::sqrt(link_length);
    for (std::size_t p = 0; p < num_pixels; ++p) {
      const auto center = grid_.PixelCenter(p);
      const double excess = geometry::Distance(center, nodes_[a]) +
                            geometry::Distance(center, nodes_[b]) -
                            link_length;
      if (excess < config_.ellipse_excess_m) {
        weights_[l * num_pixels + p] = weight;
      }
    }
  }

  // Gram matrix W W^T + alpha I (L x L).
  gram_ = linalg::RMatrix(links_.size(), links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    for (std::size_t j = i; j < links_.size(); ++j) {
      double dot = 0.0;
      for (std::size_t p = 0; p < num_pixels; ++p) {
        dot += weights_[i * num_pixels + p] * weights_[j * num_pixels + p];
      }
      gram_.At(i, j) = dot;
      gram_.At(j, i) = dot;
    }
    gram_.At(i, i) += config_.regularization;
  }
}

double RtiImager::Weight(std::size_t link, std::size_t pixel) const {
  MULINK_REQUIRE(link < links_.size(), "RtiImager: link out of range");
  MULINK_REQUIRE(pixel < grid_.NumPixels(), "RtiImager: pixel out of range");
  return weights_[link * grid_.NumPixels() + pixel];
}

std::vector<double> RtiImager::Reconstruct(
    const std::vector<double>& delta_rss_db) const {
  MULINK_REQUIRE(delta_rss_db.size() == links_.size(),
                 "RtiImager: one RSS change per link required");
  // Dual-form Tikhonov: u = (W W^T + alpha I)^-1 Delta_y; x = W^T u.
  const auto u = linalg::SolveLinear(gram_, delta_rss_db);
  const std::size_t num_pixels = grid_.NumPixels();
  std::vector<double> image(num_pixels, 0.0);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (u[l] == 0.0) continue;
    for (std::size_t p = 0; p < num_pixels; ++p) {
      image[p] += weights_[l * num_pixels + p] * u[l];
    }
  }
  return image;
}

geometry::Vec2 RtiImager::LocateMax(const std::vector<double>& image) const {
  MULINK_REQUIRE(image.size() == grid_.NumPixels(),
                 "RtiImager: image size mismatch");
  const auto best =
      std::max_element(image.begin(), image.end()) - image.begin();
  return grid_.PixelCenter(static_cast<std::size_t>(best));
}

double RtiImager::PeakValue(const std::vector<double>& image) const {
  MULINK_REQUIRE(!image.empty(), "RtiImager: empty image");
  return *std::max_element(image.begin(), image.end());
}

std::vector<geometry::Vec2> PerimeterNodes(double width_m, double depth_m,
                                           std::size_t count,
                                           double margin_m) {
  MULINK_REQUIRE(count >= 3, "PerimeterNodes: need >= 3 nodes");
  MULINK_REQUIRE(width_m > 2.0 * margin_m && depth_m > 2.0 * margin_m,
                 "PerimeterNodes: margin too large for the area");
  const double w = width_m - 2.0 * margin_m;
  const double d = depth_m - 2.0 * margin_m;
  const double perimeter = 2.0 * (w + d);
  std::vector<geometry::Vec2> nodes;
  nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double s = perimeter * static_cast<double>(i) /
               static_cast<double>(count);
    geometry::Vec2 p;
    if (s < w) {
      p = {margin_m + s, margin_m};
    } else if (s < w + d) {
      p = {width_m - margin_m, margin_m + (s - w)};
    } else if (s < 2.0 * w + d) {
      p = {width_m - margin_m - (s - w - d), depth_m - margin_m};
    } else {
      p = {margin_m, depth_m - margin_m - (s - 2.0 * w - d)};
    }
    nodes.push_back(p);
  }
  return nodes;
}

}  // namespace mulink::core
