#include "core/sanitize.h"

#include <cmath>

#include "common/assert.h"
#include "common/constants.h"
#include "dsp/fit.h"
#include "kernels/kernels.h"

namespace mulink::core {

namespace {

// (Re)fill the cached subcarrier offsets when the band fingerprint changes.
// The cached values are exactly BandPlan::OffsetHz(k), so warm and cold
// packets sanitize bit-identically.
void EnsureOffsets(const wifi::BandPlan& band, SanitizeScratch& scratch) {
  const std::size_t num_sc = band.NumSubcarriers();
  const bool stale = scratch.offsets.size() != num_sc ||
                     scratch.band_center_hz != band.center_hz() ||
                     scratch.band_spacing_hz != band.spacing_hz() ||
                     scratch.band_indices != band.indices();
  if (!stale) return;
  // mulink-lint: allow(alloc): band-fingerprint cache rebuild, cold
  scratch.offsets.resize(num_sc);
  for (std::size_t k = 0; k < num_sc; ++k) {
    scratch.offsets[k] = band.OffsetHz(k);
  }
  scratch.band_center_hz = band.center_hz();
  scratch.band_spacing_hz = band.spacing_hz();
  scratch.band_indices = band.indices();  // allow(alloc): cache rebuild, cold
}

}  // namespace

std::vector<double> UnwrapPhase(const std::vector<double>& phases) {
  std::vector<double> out(phases.size());
  UnwrapPhaseInto(phases, out);
  return out;
}

void UnwrapPhaseInto(std::span<const double> phases, std::span<double> out) {
  MULINK_REQUIRE(out.size() == phases.size(),
                 "UnwrapPhaseInto: output size mismatch");
  if (phases.empty()) return;
  out[0] = phases[0];
  double accumulator = 0.0;
  for (std::size_t i = 1; i < phases.size(); ++i) {
    double delta = phases[i] - phases[i - 1];
    while (delta > kPi) {
      delta -= 2.0 * kPi;
      accumulator -= 2.0 * kPi;
    }
    while (delta < -kPi) {
      delta += 2.0 * kPi;
      accumulator += 2.0 * kPi;
    }
    out[i] = phases[i] + accumulator;
  }
}

PhaseFit FitLinearPhase(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band) {
  SanitizeScratch scratch;
  return FitLinearPhase(packet, band, scratch);
}

PhaseFit FitLinearPhase(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band, SanitizeScratch& scratch) {
  MULINK_REQUIRE(packet.NumSubcarriers() == band.NumSubcarriers(),
                 "FitLinearPhase: packet/band subcarrier mismatch");
  const std::size_t num_sc = packet.NumSubcarriers();
  const std::size_t num_ant = packet.NumAntennas();
  MULINK_REQUIRE(num_ant >= 1 && num_sc >= 2,
                 "FitLinearPhase: need >= 1 antenna and >= 2 subcarriers");

  // Antenna-averaged phase per subcarrier. Averaging complex values rather
  // than raw angles keeps weak antennas from dominating via wrap glitches.
  // The sums stay in split-complex lanes so the angle extraction runs
  // through the vectorized kernels::Atan2 (same accumulation order as the
  // historical std::arg loop; the atan2 itself is the kernel-layer
  // polynomial, re-baselined per DESIGN.md §14).
  scratch.avg_phase.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  scratch.sum_re.Ensure(num_sc);
  scratch.sum_im.Ensure(num_sc);
  const Complex* csi = packet.csi.raw();
  for (std::size_t k = 0; k < num_sc; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t m = 0; m < num_ant; ++m) acc += csi[m * num_sc + k];
    scratch.sum_re[k] = acc.real();
    scratch.sum_im[k] = acc.imag();
  }
  kernels::Atan2(scratch.sum_im.data(), scratch.sum_re.data(), num_sc,
                 scratch.avg_phase.data());
  scratch.unwrapped.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  UnwrapPhaseInto(scratch.avg_phase, scratch.unwrapped);

  EnsureOffsets(band, scratch);

  const auto fit =
      dsp::FitLinear(std::span<const double>(scratch.offsets),
                     std::span<const double>(scratch.unwrapped), scratch.fit);
  return PhaseFit{fit.intercept, fit.slope};
}

wifi::CsiPacket SanitizePhase(const wifi::CsiPacket& packet,
                              const wifi::BandPlan& band) {
  wifi::CsiPacket out;
  SanitizeScratch scratch;
  SanitizePhaseInto(packet, band, out, scratch);
  return out;
}

void SanitizePhaseInto(const wifi::CsiPacket& packet,
                       const wifi::BandPlan& band, wifi::CsiPacket& out,
                       SanitizeScratch& scratch) {
  const PhaseFit fit = FitLinearPhase(packet, band, scratch);
  out = packet;  // copy-assign reuses out's CSI capacity
  const std::size_t num_sc = packet.NumSubcarriers();
  // Per-subcarrier rotation e^{-j correction}, with the sin/cos pair from
  // the vectorized kernel and the rotation applied row-wise across all
  // antennas (they share the correction — inter-antenna phase is preserved).
  scratch.corrections.Ensure(num_sc);
  scratch.rot_cos.Ensure(num_sc);
  scratch.rot_sin.Ensure(num_sc);
  // scratch.offsets is warm: FitLinearPhase above ran EnsureOffsets.
  for (std::size_t k = 0; k < num_sc; ++k) {
    scratch.corrections[k] =
        -(fit.offset_rad + fit.slope_rad_per_hz * scratch.offsets[k]);
  }
  kernels::SinCos(scratch.corrections.data(), num_sc, scratch.rot_sin.data(),
                  scratch.rot_cos.data());
  kernels::RotateRows(packet.csi.raw(), packet.NumAntennas(), num_sc,
                      scratch.rot_cos.data(), scratch.rot_sin.data(),
                      out.csi.raw());
}

std::vector<wifi::CsiPacket> SanitizePhase(
    const std::vector<wifi::CsiPacket>& packets, const wifi::BandPlan& band) {
  std::vector<wifi::CsiPacket> out;
  SanitizeScratch scratch;
  SanitizePhaseInto(packets, band, out, scratch);
  return out;
}

void SanitizePhaseInto(std::span<const wifi::CsiPacket> packets,
                       const wifi::BandPlan& band,
                       std::vector<wifi::CsiPacket>& out,
                       SanitizeScratch& scratch) {
  // mulink-lint: allow(alloc): warm batch output rows
  out.resize(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    SanitizePhaseInto(packets[i], band, out[i], scratch);
  }
}

}  // namespace mulink::core
