#include "core/sanitize.h"

#include <cmath>

#include "common/assert.h"
#include "common/constants.h"
#include "dsp/fit.h"

namespace mulink::core {

std::vector<double> UnwrapPhase(const std::vector<double>& phases) {
  std::vector<double> out(phases.size());
  UnwrapPhaseInto(phases, out);
  return out;
}

void UnwrapPhaseInto(std::span<const double> phases, std::span<double> out) {
  MULINK_REQUIRE(out.size() == phases.size(),
                 "UnwrapPhaseInto: output size mismatch");
  if (phases.empty()) return;
  out[0] = phases[0];
  double accumulator = 0.0;
  for (std::size_t i = 1; i < phases.size(); ++i) {
    double delta = phases[i] - phases[i - 1];
    while (delta > kPi) {
      delta -= 2.0 * kPi;
      accumulator -= 2.0 * kPi;
    }
    while (delta < -kPi) {
      delta += 2.0 * kPi;
      accumulator += 2.0 * kPi;
    }
    out[i] = phases[i] + accumulator;
  }
}

PhaseFit FitLinearPhase(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band) {
  SanitizeScratch scratch;
  return FitLinearPhase(packet, band, scratch);
}

PhaseFit FitLinearPhase(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band, SanitizeScratch& scratch) {
  MULINK_REQUIRE(packet.NumSubcarriers() == band.NumSubcarriers(),
                 "FitLinearPhase: packet/band subcarrier mismatch");
  const std::size_t num_sc = packet.NumSubcarriers();
  const std::size_t num_ant = packet.NumAntennas();
  MULINK_REQUIRE(num_ant >= 1 && num_sc >= 2,
                 "FitLinearPhase: need >= 1 antenna and >= 2 subcarriers");

  // Antenna-averaged phase per subcarrier. Averaging complex values rather
  // than raw angles keeps weak antennas from dominating via wrap glitches.
  scratch.avg_phase.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  const Complex* csi = packet.csi.raw();
  for (std::size_t k = 0; k < num_sc; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t m = 0; m < num_ant; ++m) acc += csi[m * num_sc + k];
    scratch.avg_phase[k] = std::arg(acc);
  }
  scratch.unwrapped.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  UnwrapPhaseInto(scratch.avg_phase, scratch.unwrapped);

  scratch.offsets.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  for (std::size_t k = 0; k < num_sc; ++k) scratch.offsets[k] = band.OffsetHz(k);

  const auto fit =
      dsp::FitLinear(std::span<const double>(scratch.offsets),
                     std::span<const double>(scratch.unwrapped), scratch.fit);
  return PhaseFit{fit.intercept, fit.slope};
}

wifi::CsiPacket SanitizePhase(const wifi::CsiPacket& packet,
                              const wifi::BandPlan& band) {
  wifi::CsiPacket out;
  SanitizeScratch scratch;
  SanitizePhaseInto(packet, band, out, scratch);
  return out;
}

void SanitizePhaseInto(const wifi::CsiPacket& packet,
                       const wifi::BandPlan& band, wifi::CsiPacket& out,
                       SanitizeScratch& scratch) {
  const PhaseFit fit = FitLinearPhase(packet, band, scratch);
  out = packet;  // copy-assign reuses out's CSI capacity
  Complex* dst = out.csi.raw();
  const Complex* src = packet.csi.raw();
  const std::size_t num_sc = packet.NumSubcarriers();
  for (std::size_t k = 0; k < num_sc; ++k) {
    const double correction =
        fit.offset_rad + fit.slope_rad_per_hz * band.OffsetHz(k);
    const Complex rot(std::cos(-correction), std::sin(-correction));
    for (std::size_t m = 0; m < packet.NumAntennas(); ++m) {
      dst[m * num_sc + k] = src[m * num_sc + k] * rot;
    }
  }
}

std::vector<wifi::CsiPacket> SanitizePhase(
    const std::vector<wifi::CsiPacket>& packets, const wifi::BandPlan& band) {
  std::vector<wifi::CsiPacket> out;
  SanitizeScratch scratch;
  SanitizePhaseInto(packets, band, out, scratch);
  return out;
}

void SanitizePhaseInto(std::span<const wifi::CsiPacket> packets,
                       const wifi::BandPlan& band,
                       std::vector<wifi::CsiPacket>& out,
                       SanitizeScratch& scratch) {
  // mulink-lint: allow(alloc): warm batch output rows
  out.resize(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    SanitizePhaseInto(packets[i], band, out[i], scratch);
  }
}

}  // namespace mulink::core
