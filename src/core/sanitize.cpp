#include "core/sanitize.h"

#include <cmath>

#include "common/assert.h"
#include "common/constants.h"
#include "dsp/fit.h"

namespace mulink::core {

std::vector<double> UnwrapPhase(const std::vector<double>& phases) {
  std::vector<double> out(phases.size());
  if (phases.empty()) return out;
  out[0] = phases[0];
  double accumulator = 0.0;
  for (std::size_t i = 1; i < phases.size(); ++i) {
    double delta = phases[i] - phases[i - 1];
    while (delta > kPi) {
      delta -= 2.0 * kPi;
      accumulator -= 2.0 * kPi;
    }
    while (delta < -kPi) {
      delta += 2.0 * kPi;
      accumulator += 2.0 * kPi;
    }
    out[i] = phases[i] + accumulator;
  }
  return out;
}

PhaseFit FitLinearPhase(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band) {
  MULINK_REQUIRE(packet.NumSubcarriers() == band.NumSubcarriers(),
                 "FitLinearPhase: packet/band subcarrier mismatch");
  const std::size_t num_sc = packet.NumSubcarriers();
  const std::size_t num_ant = packet.NumAntennas();
  MULINK_REQUIRE(num_ant >= 1 && num_sc >= 2,
                 "FitLinearPhase: need >= 1 antenna and >= 2 subcarriers");

  // Antenna-averaged phase per subcarrier. Averaging complex values rather
  // than raw angles keeps weak antennas from dominating via wrap glitches.
  std::vector<double> avg_phase(num_sc, 0.0);
  for (std::size_t k = 0; k < num_sc; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t m = 0; m < num_ant; ++m) acc += packet.csi.At(m, k);
    avg_phase[k] = std::arg(acc);
  }
  const auto unwrapped = UnwrapPhase(avg_phase);

  std::vector<double> offsets(num_sc);
  for (std::size_t k = 0; k < num_sc; ++k) offsets[k] = band.OffsetHz(k);

  const auto fit = dsp::FitLinear(offsets, unwrapped);
  return PhaseFit{fit.intercept, fit.slope};
}

wifi::CsiPacket SanitizePhase(const wifi::CsiPacket& packet,
                              const wifi::BandPlan& band) {
  const PhaseFit fit = FitLinearPhase(packet, band);
  wifi::CsiPacket out = packet;
  for (std::size_t k = 0; k < packet.NumSubcarriers(); ++k) {
    const double correction =
        fit.offset_rad + fit.slope_rad_per_hz * band.OffsetHz(k);
    const Complex rot(std::cos(-correction), std::sin(-correction));
    for (std::size_t m = 0; m < packet.NumAntennas(); ++m) {
      out.csi.At(m, k) = packet.csi.At(m, k) * rot;
    }
  }
  return out;
}

std::vector<wifi::CsiPacket> SanitizePhase(
    const std::vector<wifi::CsiPacket>& packets, const wifi::BandPlan& band) {
  std::vector<wifi::CsiPacket> out;
  out.reserve(packets.size());
  for (const auto& p : packets) out.push_back(SanitizePhase(p, band));
  return out;
}

}  // namespace mulink::core
