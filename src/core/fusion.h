// Multi-link fusion.
//
// The paper's introduction contrasts its approach — making ONE link
// sensitive and wide via multipath adaptation — with prior art that blankets
// a space with many naive links. This module provides the many-links side of
// that comparison (and the natural production composition: several adapted
// links covering a large space).
#pragma once

#include <vector>

#include "core/detector.h"

namespace mulink::core {

enum class FusionRule {
  kAny,        // alarm if any link alarms (max coverage, sums the FPs)
  kMajority,   // alarm if more than half of the links alarm
  kMeanScore,  // threshold the mean of threshold-normalized scores
  kMaxScore,   // threshold the max of threshold-normalized scores
};

const char* ToString(FusionRule rule);

class MultiLinkDetector {
 public:
  explicit MultiLinkDetector(FusionRule rule = FusionRule::kAny);

  // Add a calibrated link detector. Its threshold must already be set — it
  // doubles as the per-link score normalizer.
  void AddLink(Detector detector);

  std::size_t NumLinks() const { return links_.size(); }
  const Detector& link(std::size_t i) const;

  // Threshold-normalized score per link: score / link threshold, so 1.0 is
  // each link's own operating point. `windows[i]` feeds link i.
  std::vector<double> NormalizedScores(
      const std::vector<std::vector<wifi::CsiPacket>>& windows) const;

  // Scratch variant: writes into `out` and scores every link on its own
  // persistent DetectorScratch — the steady-state fusion path is
  // allocation-free.
  void NormalizedScoresInto(
      const std::vector<std::vector<wifi::CsiPacket>>& windows,
      std::vector<double>& out) const;

  // Fused scalar statistic (kMeanScore / kMaxScore semantics; for the voting
  // rules this is the fraction of links alarming).
  double FusedScore(
      const std::vector<std::vector<wifi::CsiPacket>>& windows) const;

  // Fused decision per the configured rule.
  bool Detect(const std::vector<std::vector<wifi::CsiPacket>>& windows) const;

  FusionRule rule() const { return rule_; }

 private:
  FusionRule rule_;
  std::vector<Detector> links_;
  // One scratch per link plus the fused score buffer, so repeated
  // FusedScore/Detect calls allocate nothing once warm.
  mutable std::vector<DetectorScratch> scratch_;
  mutable std::vector<double> scores_scratch_;
};

}  // namespace mulink::core
