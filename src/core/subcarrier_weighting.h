// Subcarrier weighting via frequency diversity (paper Sec. IV-A2,
// Eq. 12–15).
//
// Subcarriers whose multipath factor is consistently large are the most
// sensitive to human presence; weighting the per-subcarrier RSS change by
//   w_k = | mu_bar_k * r_k | / ( sum_k mu_bar_k * sum_k r_k )
// (Eq. 15) boosts them, where mu_bar_k is the temporal mean of mu over the
// monitoring window and r_k (Eq. 13/14) is the fraction of packets whose
// mu_k exceeds the per-packet median across subcarriers — a stability vote.
#pragma once

#include <span>
#include <vector>

#include "wifi/band.h"
#include "wifi/csi.h"

namespace mulink::core {

struct SubcarrierWeights {
  std::vector<double> mean_mu;    // mu_bar_k
  std::vector<double> stability;  // r_k in [0, 1]
  std::vector<double> weights;    // Eq. 15 combined weight per subcarrier
};

// Which factors enter the combined weight — for ablating the design of
// Eq. 15 (the paper motivates both factors; ablate_weighting quantifies
// them separately).
enum class WeightingMode {
  kUniform,               // w_k = 1/K (no weighting)
  kMeanMuOnly,            // w_k ∝ mu_bar_k (Eq. 12 aggregated over packets)
  kStabilityOnly,         // w_k ∝ r_k
  kMeanMuTimesStability,  // w_k ∝ mu_bar_k * r_k (Eq. 15, the paper's choice)
};

const char* ToString(WeightingMode mode);

// Eq. 13–15 from per-packet multipath factors (mu_per_packet[m][k]).
SubcarrierWeights ComputeSubcarrierWeights(
    const std::vector<std::vector<double>>& mu_per_packet,
    WeightingMode mode = WeightingMode::kMeanMuTimesStability);

// Scratch variant: reuses `out`'s vectors and `median_scratch` so the
// monitoring loop computes weights without heap traffic.
void ComputeSubcarrierWeightsInto(
    const std::vector<std::vector<double>>& mu_per_packet, WeightingMode mode,
    SubcarrierWeights& out, std::vector<double>& median_scratch);

// Prepared-factors variant: each window packet's mu row (`mu_rows[m]`, a
// pointer to `num_sc` doubles) and its cross-subcarrier median were computed
// once at ingest, so overlapping windows skip re-deriving them per decision.
// Bit-identical to the scratch variant fed the same rows, because it runs
// the same accumulation in the same order.
void ComputeSubcarrierWeightsInto(std::span<const double* const> mu_rows,
                                  std::span<const double> medians,
                                  std::size_t num_sc, WeightingMode mode,
                                  SubcarrierWeights& out);

// Single-packet variant (Eq. 12): weights proportional to |mu_k|.
SubcarrierWeights ComputeSubcarrierWeightsSinglePacket(
    const std::vector<double>& mu);

// Weighted per-subcarrier RSS change: Delta_s~(f_k) = w_k * Delta_s(f_k).
std::vector<double> ApplySubcarrierWeights(const SubcarrierWeights& weights,
                                           const std::vector<double>& delta_s);

// Convenience: compute weights directly from a monitoring window of packets.
SubcarrierWeights ComputeSubcarrierWeights(
    const std::vector<wifi::CsiPacket>& window, const wifi::BandPlan& band);

}  // namespace mulink::core
