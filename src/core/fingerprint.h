// Fingerprint-based passive localization (the approach of the authors' own
// prior work, ref [15]): train per-cell CSI signatures offline, locate a
// person by nearest-neighbour matching online.
//
// The paper contrasts its calibration-light scheme against exactly this
// "labor-intensive site-survey" approach; having both in one library lets
// deployments choose (and bench/ext_localization quantify) the trade.
#pragma once

#include <string>
#include <vector>

#include "wifi/csi.h"

namespace mulink::core {

struct FingerprintConfig {
  std::size_t k_neighbors = 3;
};

class FingerprintLocalizer {
 public:
  explicit FingerprintLocalizer(FingerprintConfig config = {});

  // Add one labelled training window (a cell label such as "cell-2x3" or
  // "empty"). Windows need >= 1 packet; all windows must share one
  // (antennas, subcarriers) shape.
  void AddTrainingWindow(const std::string& label,
                         const std::vector<wifi::CsiPacket>& window);

  std::size_t NumTrainingSamples() const { return samples_.size(); }
  std::vector<std::string> Labels() const;

  struct Result {
    std::string label;
    // Fraction of the k nearest neighbours agreeing with the winner.
    double confidence = 0.0;
    // Feature distance to the nearest neighbour.
    double nearest_distance = 0.0;
  };

  // k-NN match of a monitoring window against the survey.
  Result Locate(const std::vector<wifi::CsiPacket>& window) const;

  // The feature extractor (exposed for tests): per-(antenna, subcarrier)
  // median amplitude over the window, L2-normalized — scale-free, so AGC
  // and TX-power drift do not displace fingerprints.
  static std::vector<double> Feature(const std::vector<wifi::CsiPacket>& window);

 private:
  struct Sample {
    std::string label;
    std::vector<double> feature;
  };

  FingerprintConfig config_;
  std::vector<Sample> samples_;
};

}  // namespace mulink::core
