// Path weighting via spatial diversity (paper Sec. IV-B2, Eq. 17).
//
// The detection threshold is global, so the weak impact of human presence on
// NLOS (reflected) paths limits coverage. Path weighting boosts those
// directions: given the *static* (calibration-time) pseudospectrum Ps(theta),
// the weight is w(theta) = 1 / Ps(theta) inside a trusted angular window
// [theta_min, theta_max] (±60° in the paper's implementation — ULA angle
// estimates degrade toward endfire) and 0 outside.
#pragma once

#include <vector>

#include "core/music.h"

namespace mulink::core {

struct PathWeightingConfig {
  double theta_min_deg = -60.0;
  double theta_max_deg = 60.0;
  // Ps(theta) floor, as a fraction of the spectrum's max, protecting 1/Ps
  // against division blow-ups in deep pseudospectrum nulls.
  double spectrum_floor_ratio = 0.1;
};

struct PathWeights {
  std::vector<double> theta_deg;
  std::vector<double> weights;  // w(theta) of Eq. 17 on the same grid
};

// Eq. 17 weights from the calibration-stage static pseudospectrum.
PathWeights ComputePathWeights(const Pseudospectrum& static_spectrum,
                               const PathWeightingConfig& config = {});

// Element-wise weighted pseudospectrum (grids must match).
std::vector<double> ApplyPathWeights(const PathWeights& weights,
                                     const Pseudospectrum& spectrum);

// Scratch variant: `out` is resized to the grid; no allocation once warm.
void ApplyPathWeightsInto(const PathWeights& weights,
                          const Pseudospectrum& spectrum,
                          std::vector<double>& out);

}  // namespace mulink::core
