// Closed-form one-bounce link sensitivity models (paper Sec. III-B).
//
// All equations assume the receiver is phase-synchronized to the LOS path
// (phi_L = 0), gamma = a_L / a_R > 1 is the LOS-to-reflection amplitude
// ratio, and phi is the reflected path's phase lag. They drive the
// model-vs-measurement validation tests and the predictive examples.
#pragma once

namespace mulink::core {

// Eq. 3: multipath factor mu = (a_L / |h_N|)^2 = gamma^2 / (gamma^2 + 1 +
// 2 gamma cos phi). For the idealized two-path channel this is the exact
// LOS-power share of total received power.
double MultipathFactorClosedForm(double gamma, double phi_rad);

// Eq. 5: shadowing sensitivity in dB as a function of the raw phase phi.
// beta in (0, 1] is the human-induced LOS amplitude attenuation.
double ShadowingDeltaDbFromPhase(double beta, double gamma, double phi_rad);

// Eq. 6: the same quantity re-expressed through the multipath factor:
//   Delta_s = 10 lg [ beta + (1 - beta) (1 - beta gamma^2) / gamma^2 * mu ]
double ShadowingDeltaDbFromMu(double beta, double gamma, double mu);

// Eq. 8: reflection sensitivity in dB when the person adds a path of
// relative amplitude eta = a'_R / a_R at phase phi_prime:
//   Delta_s = 10 lg { 1 + (eta^2 + 2 eta [gamma cos phi' + cos(phi' - phi)])
//                         / gamma^2 * mu }
double ReflectionDeltaDbFromMu(double eta, double gamma, double phi_rad,
                               double phi_prime_rad, double mu);

// Single-path (LOS only) shadowing change: 10 lg beta^2 — the paper's
// reference point "Delta_s = 10 lg beta^2 < 0".
double SinglePathShadowingDeltaDb(double beta);

// Sec. III-B "Diverse Link Behaviors": threshold condition under which
// shadowing *raises* RSS — cos phi < -gamma (beta + 1) / 2 ... rearranged,
// returns true when Eq. 5 yields Delta_s > 0 for the given parameters.
bool ShadowingRaisesRss(double beta, double gamma, double phi_rad);

// Phase lag of a reflected path with excess length delta_d at frequency f:
// phi = 2 pi f delta_d / c (the frequency-configurability relation of
// Sec. III-B "Configurable Link Sensitivity").
double PhaseFromExcessLength(double excess_length_m, double freq_hz);

}  // namespace mulink::core
