#include "core/path_weighting.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "kernels/kernels.h"

namespace mulink::core {

PathWeights ComputePathWeights(const Pseudospectrum& static_spectrum,
                               const PathWeightingConfig& config) {
  MULINK_REQUIRE(!static_spectrum.power.empty(),
                 "ComputePathWeights: empty static spectrum");
  MULINK_REQUIRE(config.theta_max_deg > config.theta_min_deg,
                 "ComputePathWeights: empty angular window");
  MULINK_REQUIRE(config.spectrum_floor_ratio > 0.0,
                 "ComputePathWeights: floor ratio must be > 0");

  const double max_power = *std::max_element(static_spectrum.power.begin(),
                                             static_spectrum.power.end());
  MULINK_REQUIRE(max_power > 0.0,
                 "ComputePathWeights: static spectrum has no power");
  const double floor = max_power * config.spectrum_floor_ratio;

  PathWeights w;
  w.theta_deg = static_spectrum.theta_deg;
  // mulink-lint: allow(alloc): calibration path
  w.weights.resize(static_spectrum.power.size());
  for (std::size_t i = 0; i < w.weights.size(); ++i) {
    const double theta = static_spectrum.theta_deg[i];
    if (theta < config.theta_min_deg || theta > config.theta_max_deg) {
      w.weights[i] = 0.0;
    } else {
      w.weights[i] = 1.0 / std::max(static_spectrum.power[i], floor);
    }
  }
  return w;
}

std::vector<double> ApplyPathWeights(const PathWeights& weights,
                                     const Pseudospectrum& spectrum) {
  std::vector<double> out;
  ApplyPathWeightsInto(weights, spectrum, out);
  return out;
}

void ApplyPathWeightsInto(const PathWeights& weights,
                          const Pseudospectrum& spectrum,
                          std::vector<double>& out) {
  MULINK_REQUIRE(weights.weights.size() == spectrum.power.size(),
                 "ApplyPathWeights: grid size mismatch");
  // mulink-lint: allow(alloc): warm output; sized to the fixed angular grid
  out.resize(spectrum.power.size());
  kernels::Multiply(weights.weights.data(), spectrum.power.data(), out.size(),
                    out.data());
}

}  // namespace mulink::core
