// Radio Tomographic Imaging (Wilson & Patwari, TMC'10 — the paper's
// reference [3]): the dense-deployment prior art the introduction positions
// multipath adaptation against.
//
// A perimeter network of N nodes forms L = N(N-1)/2 links; a person
// attenuates the links whose ellipse they stand in. RTI discretizes the
// space into pixels, models per-link RSS change as Delta_y = W x (W the
// ellipse weight matrix, x the pixel attenuation image), and inverts with
// Tikhonov regularization:
//   x = (W^T W + alpha I)^-1 W^T Delta_y = W^T (W W^T + alpha I)^-1 Delta_y.
// The dual form on the right needs only an L x L solve, precomputed here.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "geometry/vec2.h"
#include "linalg/solve.h"

namespace mulink::core {

struct RtiConfig {
  double pixel_size_m = 0.3;
  // Excess path length (m) defining a link's sensitivity ellipse: pixel p is
  // inside link l's ellipse when d(p,tx)+d(p,rx) < d(tx,rx) + excess.
  double ellipse_excess_m = 0.15;
  // Tikhonov regularization strength alpha.
  double regularization = 5.0;
};

struct RtiGrid {
  double width_m = 0.0;
  double depth_m = 0.0;
  std::size_t nx = 0;
  std::size_t ny = 0;
  double pixel_size_m = 0.0;

  std::size_t NumPixels() const { return nx * ny; }
  geometry::Vec2 PixelCenter(std::size_t pixel) const;
};

class RtiImager {
 public:
  // Nodes are transceiver positions (typically on the room perimeter); all
  // node pairs become links. Needs >= 3 nodes.
  RtiImager(std::vector<geometry::Vec2> nodes, double width_m, double depth_m,
            const RtiConfig& config = {});

  const std::vector<std::pair<std::size_t, std::size_t>>& links() const {
    return links_;
  }
  const RtiGrid& grid() const { return grid_; }
  const std::vector<geometry::Vec2>& nodes() const { return nodes_; }

  // Reconstruct the pixel attenuation image from per-link RSS changes (dB,
  // one per links() entry; attenuation = positive values expected).
  std::vector<double> Reconstruct(const std::vector<double>& delta_rss_db) const;

  // Position of the strongest image pixel.
  geometry::Vec2 LocateMax(const std::vector<double>& image) const;

  // Peak image value (a presence statistic: near zero for an empty room).
  double PeakValue(const std::vector<double>& image) const;

  // The ellipse weight of link l at pixel p (exposed for tests).
  double Weight(std::size_t link, std::size_t pixel) const;

 private:
  std::vector<geometry::Vec2> nodes_;
  std::vector<std::pair<std::size_t, std::size_t>> links_;
  RtiGrid grid_;
  RtiConfig config_;
  // Dense L x P weight matrix, row-major.
  std::vector<double> weights_;
  // Precomputed (W W^T + alpha I), kept factorable per reconstruction.
  linalg::RMatrix gram_;
};

// Evenly spaced node positions along a rectangular perimeter with a margin.
std::vector<geometry::Vec2> PerimeterNodes(double width_m, double depth_m,
                                           std::size_t count,
                                           double margin_m = 0.4);

}  // namespace mulink::core
