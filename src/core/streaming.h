// Streaming presence detection: packet-at-a-time ingestion with windowed
// scoring and optional HMM temporal smoothing — the deployable wrapper
// around Detector for live CSI feeds (50 packets/s in the paper's testbed).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/annotations.h"
#include "core/calibration/calibration.h"
#include "core/detector.h"
#include "core/hmm.h"
#include "nic/frame_guard.h"
#include "obs/metrics.h"

namespace mulink::core {

struct StreamingConfig {
  // Window length scored per decision and the hop between decisions
  // (hop == window -> non-overlapping decisions, the paper's cadence).
  std::size_t window_packets = 25;
  std::size_t hop_packets = 25;

  // Smooth scores with the two-state presence HMM (Sec. V-B1's suggestion);
  // when off, decisions fall back to the detector's raw threshold.
  bool use_hmm = true;
  HmmConfig hmm;
  // Posterior above which the room is declared occupied (HMM mode).
  double decision_probability = 0.5;
  // Decision fusion (HMM mode): also declare occupied when the raw score
  // crosses the detector's active threshold, even if the posterior stayed
  // below decision_probability. With adaptive calibration the HMM's empty
  // emission legitimately tracks the drifting quiet level, which makes
  // weak presence — scores between the quiet fit's flip point and the
  // calibrated threshold — read as vacant; the re-anchored threshold is
  // the absolute operating point that still catches it. Off by default:
  // without calibration a stale threshold under drift charges every
  // vacant window above it as a false positive.
  bool hmm_threshold_fusion = false;

  // Frame validation (nic::FrameGuard) in front of the ring. Quarantined
  // frames never reach a window; repairable frames are ingested with their
  // faults counted; a sequence gap wider than the guard's resync limit
  // flushes the ring (the buffered packets and the new one no longer form a
  // contiguous window). Off by default — guarded ingest of a clean stream
  // is bit-identical to unguarded ingest.
  bool guard_enabled = false;
  nic::FrameGuardConfig guard;

  // When the guard confirms a dead RX chain, keep deciding on the surviving
  // antennas via Detector::ScoreDegraded (the combined scheme falls back to
  // subcarrier-only weighting; MUSIC needs the full array). When false,
  // decisions pause until the chain revives. Degraded decisions bypass the
  // HMM — its emission model was fitted to the primary statistic — and the
  // filter resumes, state intact, on recovery.
  bool degraded_fallback = true;

  // Profile-drift watchdog: an EWMA of scores over windows the detector
  // itself believes are empty (posterior at or below this bound). When the
  // EWMA of believed-empty scores climbs to a fraction of the decision
  // threshold, the static profile s(0) no longer matches the quiet channel
  // and LinkHealth::profile_drift flags that recalibration (or
  // Detector::UpdateProfile) is due.
  double watchdog_empty_posterior = 0.2;
  double watchdog_ewma_alpha = 0.1;
  double watchdog_score_fraction = 0.9;
  std::size_t watchdog_min_windows = 8;

  // Online Bayesian calibration (core/calibration): per-link posteriors
  // over the quiet profile and threshold plus the recalibration ladder
  // Healthy -> DriftSuspected -> Recalibrating -> Degraded -> Frozen. When
  // enabled, the ladder owns LinkHealth::profile_drift (it can clear the
  // flag by recalibrating in place); the legacy watchdog above keeps
  // feeding its EWMA either way. Off by default.
  CalibrationConfig calibration;
};

struct PresenceDecision {
  double timestamp_s = 0.0;   // timestamp of the newest packet in the window
  double score = 0.0;         // raw detector statistic
  double posterior = 0.0;     // P(occupied); equals score>threshold when !use_hmm
  bool occupied = false;
  // Decided on the degraded (dead-chain fallback) statistic against the
  // fallback threshold; posterior is the hard 0/1 of that comparison.
  bool degraded = false;
};

// Guard, degraded-mode and watchdog state shared by StreamingDetector and
// SensingEngine's per-link state, so batch and streaming ingest stay
// bit-identical under the same fault stream.
struct GuardedIngest {
  GuardedIngest() = default;
  explicit GuardedIngest(const StreamingConfig& config) {
    // mulink-lint: allow(alloc): ctor, setup path
    if (config.guard_enabled) guard.emplace(config.guard);
  }

  // Inspect one arriving frame. nullopt means the frame is quarantined and
  // must not reach the ring; otherwise the report's `resync` flag tells the
  // caller to flush its ring before ingesting the frame.
  std::optional<nic::FrameReport> Admit(const wifi::CsiPacket& packet);

  // All-antennas mask for a detector with `num_antennas` chains.
  static std::uint32_t FullMask(std::size_t num_antennas);

  // Live-antenna mask (FullMask when unguarded or nothing is dead).
  std::uint32_t LiveMask(std::size_t num_antennas) const;

  // Watchdog bookkeeping after a clean (non-degraded) decision.
  void ObserveDecision(const PresenceDecision& decision,
                       const Detector& detector,
                       const StreamingConfig& config);

  // Aggregate guard counters plus the degradation/watchdog fields.
  nic::LinkHealth Health() const;

  // Back to the just-constructed state (guard counters included), so a
  // reset link decides bit-identically to a fresh one fed the same tail.
  // The metrics pointer is kept — the owning link resets its own registry.
  void Reset();

  // Observability shard (owned by the enclosing link). Admit mirrors the
  // guard's accept/repair/quarantine tallies and ring resyncs into it, with
  // the per-frame inspection latency sampled 1-in-kIngestSampleEvery; null
  // is the no-op sink.
  obs::Registry* metrics = nullptr;

  std::optional<nic::FrameGuard> guard;
  bool degraded = false;  // last decision used the fallback statistic
  std::size_t degraded_decisions = 0;
  std::size_t empty_windows_seen = 0;
  double empty_score_ewma = 0.0;
  bool profile_drift = false;
  // Expected quiet score from the calibration empty scores (0 when none
  // were provided). Seeds empty_score_ewma at construction and on Reset so
  // the first windows after a reset cannot spuriously trip profile_drift
  // from a cold EWMA; with no seed the legacy first-window hard set stays.
  double quiet_score_seed = 0.0;
  // Taint bookkeeping for the calibration ladder: repaired (flagged but
  // usable) frames — and the subset carrying the RSSI-outlier AGC fault —
  // admitted since the last emitted decision. The owner zeroes both after
  // each decision.
  std::size_t repaired_since_decision = 0;
  std::size_t agc_frames_since_decision = 0;
};

class StreamingDetector {
 public:
  // `detector` must have a calibrated threshold. `empty_scores` are
  // empty-room window scores used to fit the HMM emission model (>= 2 when
  // use_hmm is on).
  StreamingDetector(Detector detector, const std::vector<double>& empty_scores,
                    StreamingConfig config = {});

  // Feed one packet. Returns a decision whenever a full window (aligned to
  // the hop) completes, nullopt otherwise.
  MULINK_HOT std::optional<PresenceDecision> Push(const wifi::CsiPacket& packet);

  // Current belief (last decision; unoccupied before the first window).
  bool occupied() const { return occupied_; }
  double posterior() const { return posterior_; }

  // Link health snapshot: frame-guard counters plus degraded-mode,
  // profile-drift and calibration-ladder state. All-zero when the guard and
  // adaptive calibration are disabled.
  nic::LinkHealth Health() const {
    nic::LinkHealth health = ingest_.Health();
    calibrator_.FillHealth(health);
    return health;
  }

  // Adaptive-calibration state (inert when config.calibration.enabled is
  // false).
  const LinkCalibrator& calibrator() const { return calibrator_; }

  // Observability: ingest/guard counters, decision counters and per-stage
  // latency histograms recorded by this detector. Enabled by default;
  // disabling detaches the registry (the runtime no-op sink) without
  // touching recorded values. Decisions are bit-identical either way.
  void SetMetricsEnabled(bool enabled);
  bool metrics_enabled() const { return metrics_enabled_; }
  const obs::Registry& Metrics() const { return metrics_; }

  // Drop buffered packets and reset the temporal state (metrics included).
  void Reset();

  const StreamingConfig& config() const { return config_; }
  const Detector& detector() const { return detector_; }

 private:
  Detector detector_;
  StreamingConfig config_;
  GuardedIngest ingest_;
  LinkCalibrator calibrator_;
  std::optional<PresenceHmm> hmm_;
  std::optional<PresenceHmm::Filter> filter_;
  // Fixed-capacity ring of the last window_packets packets plus an
  // arrival-ordered window assembled for scoring. Packet slots are
  // copy-assigned, so their CSI buffers are reused — steady-state Push
  // performs no heap allocations.
  std::vector<wifi::CsiPacket> ring_;
  std::vector<wifi::CsiPacket> window_;
  std::size_t write_pos_ = 0;
  std::size_t count_ = 0;
  mutable DetectorScratch scratch_;
  std::size_t packets_since_decision_ = 0;
  bool occupied_ = false;
  double posterior_ = 0.0;
  obs::Registry metrics_;
  bool metrics_enabled_ = true;
};

}  // namespace mulink::core
