// Streaming presence detection: packet-at-a-time ingestion with windowed
// scoring and optional HMM temporal smoothing — the deployable wrapper
// around Detector for live CSI feeds (50 packets/s in the paper's testbed).
#pragma once

#include <optional>
#include <vector>

#include "core/detector.h"
#include "core/hmm.h"

namespace mulink::core {

struct StreamingConfig {
  // Window length scored per decision and the hop between decisions
  // (hop == window -> non-overlapping decisions, the paper's cadence).
  std::size_t window_packets = 25;
  std::size_t hop_packets = 25;

  // Smooth scores with the two-state presence HMM (Sec. V-B1's suggestion);
  // when off, decisions fall back to the detector's raw threshold.
  bool use_hmm = true;
  HmmConfig hmm;
  // Posterior above which the room is declared occupied (HMM mode).
  double decision_probability = 0.5;
};

struct PresenceDecision {
  double timestamp_s = 0.0;   // timestamp of the newest packet in the window
  double score = 0.0;         // raw detector statistic
  double posterior = 0.0;     // P(occupied); equals score>threshold when !use_hmm
  bool occupied = false;
};

class StreamingDetector {
 public:
  // `detector` must have a calibrated threshold. `empty_scores` are
  // empty-room window scores used to fit the HMM emission model (>= 2 when
  // use_hmm is on).
  StreamingDetector(Detector detector, const std::vector<double>& empty_scores,
                    StreamingConfig config = {});

  // Feed one packet. Returns a decision whenever a full window (aligned to
  // the hop) completes, nullopt otherwise.
  std::optional<PresenceDecision> Push(const wifi::CsiPacket& packet);

  // Current belief (last decision; unoccupied before the first window).
  bool occupied() const { return occupied_; }
  double posterior() const { return posterior_; }

  // Drop buffered packets and reset the temporal state.
  void Reset();

  const StreamingConfig& config() const { return config_; }
  const Detector& detector() const { return detector_; }

 private:
  Detector detector_;
  StreamingConfig config_;
  std::optional<PresenceHmm> hmm_;
  std::optional<PresenceHmm::Filter> filter_;
  // Fixed-capacity ring of the last window_packets packets plus an
  // arrival-ordered window assembled for scoring. Packet slots are
  // copy-assigned, so their CSI buffers are reused — steady-state Push
  // performs no heap allocations.
  std::vector<wifi::CsiPacket> ring_;
  std::vector<wifi::CsiPacket> window_;
  std::size_t write_pos_ = 0;
  std::size_t count_ = 0;
  mutable DetectorScratch scratch_;
  std::size_t packets_since_decision_ = 0;
  bool occupied_ = false;
  double posterior_ = 0.0;
};

}  // namespace mulink::core
