// CSI phase sanitization, following Sen et al., MobiSys'12 (paper ref [26]).
//
// Commodity NICs stamp every packet with a random common phase (CFO/PLL) and
// a random linear phase slope across subcarriers (sampling time offset).
// Sanitization removes both by fitting a line to the unwrapped cross-
// subcarrier phase and subtracting it. The *same* correction is applied to
// every RX antenna — they share an oscillator — so inter-antenna phase
// relations, which MUSIC needs, are preserved.
#pragma once

#include <span>
#include <vector>

#include "dsp/fit.h"
#include "kernels/aligned.h"
#include "wifi/band.h"
#include "wifi/csi.h"

namespace mulink::core {

// Linear phase model fitted during sanitization: phase ~ offset + slope * f_off.
struct PhaseFit {
  double offset_rad = 0.0;
  double slope_rad_per_hz = 0.0;
};

// Reusable buffers for the per-packet phase fit; grows on first use. The
// aligned buffers are the SoA lanes the kernel-layer trig maps
// (kernels::Atan2 / kernels::SinCos / kernels::RotateRows) consume.
struct SanitizeScratch {
  std::vector<double> avg_phase;
  std::vector<double> unwrapped;
  // Subcarrier baseband offsets, cached against the band fingerprint below
  // (BandPlan::OffsetHz is an out-of-line call; two full sweeps per packet
  // were measurable at the ingest cadence).
  std::vector<double> offsets;
  double band_center_hz = 0.0;
  double band_spacing_hz = 0.0;
  std::vector<int> band_indices;
  dsp::FitScratch fit;
  kernels::AlignedBuffer sum_re;       // antenna-summed CSI, split complex
  kernels::AlignedBuffer sum_im;
  kernels::AlignedBuffer corrections;  // -(offset + slope * f_off) per k
  kernels::AlignedBuffer rot_cos;
  kernels::AlignedBuffer rot_sin;
};

// Unwrap a phase sequence (adjacent jumps > pi are folded).
std::vector<double> UnwrapPhase(const std::vector<double>& phases);

// Allocation-free variant: out.size() must equal phases.size().
void UnwrapPhaseInto(std::span<const double> phases, std::span<double> out);

// Fit the linear phase model to the antenna-averaged unwrapped CSI phase.
PhaseFit FitLinearPhase(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band);
PhaseFit FitLinearPhase(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band, SanitizeScratch& scratch);

// Remove the fitted common phase and STO slope from all antennas.
wifi::CsiPacket SanitizePhase(const wifi::CsiPacket& packet,
                              const wifi::BandPlan& band);

// Scratch variant writing into `out`; no heap traffic once `out` and the
// scratch have warmed up to the packet shape.
void SanitizePhaseInto(const wifi::CsiPacket& packet,
                       const wifi::BandPlan& band, wifi::CsiPacket& out,
                       SanitizeScratch& scratch);

// Convenience: sanitize a whole capture session.
std::vector<wifi::CsiPacket> SanitizePhase(
    const std::vector<wifi::CsiPacket>& packets, const wifi::BandPlan& band);

// Scratch variant over a window of packets; `out` is resized to match.
void SanitizePhaseInto(std::span<const wifi::CsiPacket> packets,
                       const wifi::BandPlan& band,
                       std::vector<wifi::CsiPacket>& out,
                       SanitizeScratch& scratch);

}  // namespace mulink::core
