#include "core/subcarrier_weighting.h"

#include <cmath>

#include "common/assert.h"
#include "core/multipath_factor.h"
#include "dsp/stats.h"
#include "kernels/kernels.h"

namespace mulink::core {

const char* ToString(WeightingMode mode) {
  switch (mode) {
    case WeightingMode::kUniform:
      return "uniform";
    case WeightingMode::kMeanMuOnly:
      return "mean-mu";
    case WeightingMode::kStabilityOnly:
      return "stability";
    case WeightingMode::kMeanMuTimesStability:
      return "mean-mu*stability";
  }
  return "unknown";
}

SubcarrierWeights ComputeSubcarrierWeights(
    const std::vector<std::vector<double>>& mu_per_packet,
    WeightingMode mode) {
  SubcarrierWeights w;
  std::vector<double> median_scratch;
  ComputeSubcarrierWeightsInto(mu_per_packet, mode, w, median_scratch);
  return w;
}

namespace {

// Shared Eq. 15 tail: out.mean_mu / out.stability hold the per-subcarrier
// sums over `num_packets` rows; normalize them and derive the weights.
void FinishSubcarrierWeights(std::size_t num_packets, WeightingMode mode,
                             SubcarrierWeights& out) {
  const std::size_t num_sc = out.mean_mu.size();
  for (std::size_t k = 0; k < num_sc; ++k) {
    out.mean_mu[k] /= static_cast<double>(num_packets);
    out.stability[k] /= static_cast<double>(num_packets);
  }

  double sum_mu = 0.0, sum_r = 0.0;
  for (std::size_t k = 0; k < num_sc; ++k) {
    sum_mu += out.mean_mu[k];
    sum_r += out.stability[k];
  }
  // mulink-lint: allow(alloc): warm output; assign reuses capacity
  out.weights.assign(num_sc, 0.0);
  const double uniform = 1.0 / static_cast<double>(num_sc);
  bool degenerate = false;
  switch (mode) {
    case WeightingMode::kUniform:
      for (auto& v : out.weights) v = uniform;
      break;
    case WeightingMode::kMeanMuOnly:
      if (sum_mu > 0.0) {
        for (std::size_t k = 0; k < num_sc; ++k) {
          out.weights[k] = std::abs(out.mean_mu[k]) / sum_mu;
        }
      } else {
        degenerate = true;
      }
      break;
    case WeightingMode::kStabilityOnly:
      if (sum_r > 0.0) {
        for (std::size_t k = 0; k < num_sc; ++k) {
          out.weights[k] = out.stability[k] / sum_r;
        }
      } else {
        degenerate = true;
      }
      break;
    case WeightingMode::kMeanMuTimesStability:
      if (sum_mu * sum_r > 0.0) {
        for (std::size_t k = 0; k < num_sc; ++k) {
          out.weights[k] =
              std::abs(out.mean_mu[k] * out.stability[k]) / (sum_mu * sum_r);
        }
      } else {
        degenerate = true;
      }
      break;
  }
  if (degenerate) {
    // Degenerate window (all-zero mu or stability): fall back to uniform so
    // the detector degrades to the baseline instead of reporting zeros.
    for (auto& v : out.weights) v = uniform;
  }
}

}  // namespace

void ComputeSubcarrierWeightsInto(
    const std::vector<std::vector<double>>& mu_per_packet, WeightingMode mode,
    SubcarrierWeights& out, std::vector<double>& median_scratch) {
  MULINK_REQUIRE(!mu_per_packet.empty(),
                 "ComputeSubcarrierWeights: need >= 1 packet");
  const std::size_t num_packets = mu_per_packet.size();
  const std::size_t num_sc = mu_per_packet[0].size();
  MULINK_REQUIRE(num_sc >= 1, "ComputeSubcarrierWeights: empty mu vector");
  for (const auto& row : mu_per_packet) {
    MULINK_REQUIRE(row.size() == num_sc,
                   "ComputeSubcarrierWeights: ragged mu matrix");
  }

  // mulink-lint: allow(alloc): warm output; assign reuses capacity
  out.mean_mu.assign(num_sc, 0.0);
  // mulink-lint: allow(alloc): warm output; assign reuses capacity
  out.stability.assign(num_sc, 0.0);

  for (std::size_t m = 0; m < num_packets; ++m) {
    const double median = dsp::Median(mu_per_packet[m], median_scratch);
    // mean_mu[k] += mu; stability[k] += (mu > median) — delta_m of Eq. 14.
    kernels::MeanStabilityAccumulate(mu_per_packet[m].data(), median, num_sc,
                                     out.mean_mu.data(), out.stability.data());
  }
  FinishSubcarrierWeights(num_packets, mode, out);
}

void ComputeSubcarrierWeightsInto(std::span<const double* const> mu_rows,
                                  std::span<const double> medians,
                                  std::size_t num_sc, WeightingMode mode,
                                  SubcarrierWeights& out) {
  MULINK_REQUIRE(!mu_rows.empty(),
                 "ComputeSubcarrierWeights: need >= 1 packet");
  MULINK_REQUIRE(medians.size() == mu_rows.size(),
                 "ComputeSubcarrierWeights: median/row count mismatch");
  MULINK_REQUIRE(num_sc >= 1, "ComputeSubcarrierWeights: empty mu vector");

  // mulink-lint: allow(alloc): warm output; assign reuses capacity
  out.mean_mu.assign(num_sc, 0.0);
  // mulink-lint: allow(alloc): warm output; assign reuses capacity
  out.stability.assign(num_sc, 0.0);

  for (std::size_t m = 0; m < mu_rows.size(); ++m) {
    kernels::MeanStabilityAccumulate(mu_rows[m], medians[m], num_sc,
                                     out.mean_mu.data(), out.stability.data());
  }
  FinishSubcarrierWeights(mu_rows.size(), mode, out);
}

SubcarrierWeights ComputeSubcarrierWeightsSinglePacket(
    const std::vector<double>& mu) {
  return ComputeSubcarrierWeights(std::vector<std::vector<double>>{mu});
}

std::vector<double> ApplySubcarrierWeights(const SubcarrierWeights& weights,
                                           const std::vector<double>& delta_s) {
  MULINK_REQUIRE(weights.weights.size() == delta_s.size(),
                 "ApplySubcarrierWeights: size mismatch");
  std::vector<double> out(delta_s.size());
  for (std::size_t k = 0; k < delta_s.size(); ++k) {
    out[k] = weights.weights[k] * delta_s[k];
  }
  return out;
}

SubcarrierWeights ComputeSubcarrierWeights(
    const std::vector<wifi::CsiPacket>& window, const wifi::BandPlan& band) {
  return ComputeSubcarrierWeights(MeasureMultipathFactors(window, band));
}

}  // namespace mulink::core
