// Two-state hidden Markov model over detector scores.
//
// The paper observes a plateau in its ROC curves and attributes it to
// magnified background dynamics, suggesting "to model the static profiles as
// well, e.g. via hidden Markov models [27]" (Sec. V-B1). This module is that
// extension: states {empty, occupied} with log-normal score emissions, the
// empty state fitted from calibration scores, plus forward-backward
// smoothing, Viterbi decoding, and an online filter for streaming use.
//
// Occupancy changes on the human timescale (seconds), while score outliers
// from interference bursts last one window — the transition prior lets the
// model absorb isolated outliers that a memoryless threshold converts
// straight into false positives.
#pragma once

#include <vector>

namespace mulink::core {

struct HmmConfig {
  // Per-window probability of the room changing occupancy state.
  double transition_prob = 0.02;
  // Heavy-tail mixture weight: each state's emission is
  // (1 - outlier_prob) * Gaussian + outlier_prob * Uniform over
  // [outlier_log_min, outlier_log_max] in log-score. This is what lets the
  // model attribute a single interference-burst window to "outlier" rather
  // than to an occupancy change.
  double outlier_prob = 0.02;
  double outlier_log_min = -12.0;
  double outlier_log_max = 4.0;
  // Occupied-state emission: mean log-score sits this many empty-state
  // sigmas above the empty mean...
  double occupied_shift_sigmas = 4.0;
  // ...with this much wider spread (people at different spots score over a
  // wide range).
  double occupied_sigma_scale = 2.5;
  // Stationary prior probability of occupancy.
  double occupancy_prior = 0.5;
};

class PresenceHmm {
 public:
  // Fit the empty-state emission from calibration-window scores (>= 2,
  // non-negative; emissions are Gaussian in log-score). The occupied state
  // is placed occupied_shift_sigmas above the empty mean.
  static PresenceHmm FitFromEmptyScores(const std::vector<double>& empty_scores,
                                        const HmmConfig& config = {});

  // Semi-supervised variant: fit BOTH emissions from labelled score sets
  // (e.g. empty-room windows plus a few calibration walk-throughs). Ignores
  // config.occupied_shift_sigmas / occupied_sigma_scale.
  static PresenceHmm FitFromLabelledScores(
      const std::vector<double>& empty_scores,
      const std::vector<double>& occupied_scores, const HmmConfig& config = {});

  // Posterior P(occupied | all scores) per window via forward-backward.
  std::vector<double> PosteriorOccupied(const std::vector<double>& scores) const;

  // Most likely state sequence via Viterbi (true = occupied).
  std::vector<bool> Decode(const std::vector<double>& scores) const;

  // Online (causal) filter: P(occupied | scores seen so far).
  class Filter {
   public:
    explicit Filter(const PresenceHmm& hmm);
    // Feed one window score, get the updated posterior.
    double Update(double score);
    double posterior() const { return posterior_; }
    void Reset();

   private:
    const PresenceHmm& hmm_;
    double posterior_;
  };

  // Online recalibration hook (core/calibration): re-centre the empty-state
  // emission on the adapted quiet-score log statistics and re-derive the
  // occupied state per config (shift/scale) — the same construction
  // FitFromEmptyScores uses, including its sigma floor. Transitions, the
  // outlier mixture and any live Filter posterior are untouched, so the
  // filter rides through a profile swap without losing temporal state.
  // (A labelled occupied fit from FitFromLabelledScores is overwritten by
  // the shift-derived one; streaming links fit from empty scores only.)
  void RefitEmptyEmission(double log_mean, double log_sigma);

  double empty_log_mean() const { return empty_log_mean_; }
  double empty_log_sigma() const { return empty_log_sigma_; }
  double occupied_log_mean() const { return occupied_log_mean_; }
  double occupied_log_sigma() const { return occupied_log_sigma_; }
  const HmmConfig& config() const { return config_; }

 private:
  PresenceHmm(double empty_mean, double empty_sigma, double occupied_mean,
              double occupied_sigma, const HmmConfig& config);

  // Emission log-likelihoods for a score.
  double LogLikelihoodEmpty(double score) const;
  double LogLikelihoodOccupied(double score) const;

  double empty_log_mean_ = 0.0;
  double empty_log_sigma_ = 1.0;
  double occupied_log_mean_ = 0.0;
  double occupied_log_sigma_ = 1.0;
  HmmConfig config_;
};

}  // namespace mulink::core
