#include "core/fusion.h"

#include <algorithm>

#include "common/assert.h"

namespace mulink::core {

const char* ToString(FusionRule rule) {
  switch (rule) {
    case FusionRule::kAny:
      return "any";
    case FusionRule::kMajority:
      return "majority";
    case FusionRule::kMeanScore:
      return "mean-score";
    case FusionRule::kMaxScore:
      return "max-score";
  }
  return "unknown";
}

MultiLinkDetector::MultiLinkDetector(FusionRule rule) : rule_(rule) {}

void MultiLinkDetector::AddLink(Detector detector) {
  MULINK_REQUIRE(detector.threshold() > 0.0,
                 "MultiLinkDetector: link threshold must be set and positive "
                 "(it doubles as the score normalizer)");
  // mulink-lint: allow(alloc): AddLink, setup path
  links_.push_back(std::move(detector));
  scratch_.emplace_back();  // mulink-lint: allow(alloc): AddLink, setup path
}

const Detector& MultiLinkDetector::link(std::size_t i) const {
  MULINK_REQUIRE(i < links_.size(), "MultiLinkDetector: link out of range");
  return links_[i];
}

std::vector<double> MultiLinkDetector::NormalizedScores(
    const std::vector<std::vector<wifi::CsiPacket>>& windows) const {
  std::vector<double> scores;
  NormalizedScoresInto(windows, scores);
  return scores;
}

void MultiLinkDetector::NormalizedScoresInto(
    const std::vector<std::vector<wifi::CsiPacket>>& windows,
    std::vector<double>& out) const {
  MULINK_REQUIRE(!links_.empty(), "MultiLinkDetector: no links added");
  MULINK_REQUIRE(windows.size() == links_.size(),
                 "MultiLinkDetector: one window per link required");
  // mulink-lint: allow(alloc): output sized to link count; warm after first call
  out.resize(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    out[i] = links_[i].Score(std::span<const wifi::CsiPacket>(windows[i]),
                             scratch_[i]) /
             links_[i].threshold();
  }
}

double MultiLinkDetector::FusedScore(
    const std::vector<std::vector<wifi::CsiPacket>>& windows) const {
  NormalizedScoresInto(windows, scores_scratch_);
  const auto& scores = scores_scratch_;
  switch (rule_) {
    case FusionRule::kAny:
    case FusionRule::kMajority: {
      std::size_t alarms = 0;
      for (double s : scores) {
        if (s >= 1.0) ++alarms;
      }
      return static_cast<double>(alarms) / static_cast<double>(scores.size());
    }
    case FusionRule::kMeanScore: {
      double sum = 0.0;
      for (double s : scores) sum += s;
      return sum / static_cast<double>(scores.size());
    }
    case FusionRule::kMaxScore:
      return *std::max_element(scores.begin(), scores.end());
  }
  return 0.0;
}

bool MultiLinkDetector::Detect(
    const std::vector<std::vector<wifi::CsiPacket>>& windows) const {
  const double fused = FusedScore(windows);
  switch (rule_) {
    case FusionRule::kAny:
      return fused > 0.0;
    case FusionRule::kMajority:
      return fused > 0.5;
    case FusionRule::kMeanScore:
    case FusionRule::kMaxScore:
      return fused >= 1.0;
  }
  return false;
}

}  // namespace mulink::core
