#include "core/crowd.h"
// mulink-lint: cold-tu(offline crowd-count fitting, not the per-decision path)

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "dsp/stats.h"

namespace mulink::core {

CrowdEstimator CrowdEstimator::Calibrate(
    const std::vector<wifi::CsiPacket>& empty_session,
    const CrowdConfig& config) {
  MULINK_REQUIRE(empty_session.size() >= 10,
                 "CrowdEstimator: need >= 10 calibration packets");
  MULINK_REQUIRE(config.variance_factor > 1.0,
                 "CrowdEstimator: variance factor must exceed 1");
  CrowdEstimator estimator;
  estimator.config_ = config;
  estimator.num_antennas_ = empty_session[0].NumAntennas();
  estimator.num_subcarriers_ = empty_session[0].NumSubcarriers();

  estimator.empty_variance_.assign(
      estimator.num_antennas_,
      std::vector<double>(estimator.num_subcarriers_, 0.0));
  std::vector<double> series(empty_session.size());
  for (std::size_t m = 0; m < estimator.num_antennas_; ++m) {
    for (std::size_t k = 0; k < estimator.num_subcarriers_; ++k) {
      for (std::size_t t = 0; t < empty_session.size(); ++t) {
        series[t] = empty_session[t].SubcarrierPower(m, k);
      }
      // Keep a floor so a dead subcarrier cannot flag on pure noise.
      estimator.empty_variance_[m][k] =
          std::max(dsp::Variance(series), 1e-30);
    }
  }
  return estimator;
}

double CrowdEstimator::PerturbedFraction(
    const std::vector<wifi::CsiPacket>& window) const {
  MULINK_REQUIRE(window.size() >= 4,
                 "CrowdEstimator: need >= 4 packets per window");
  MULINK_REQUIRE(window[0].NumAntennas() == num_antennas_ &&
                     window[0].NumSubcarriers() == num_subcarriers_,
                 "CrowdEstimator: window shape mismatch vs calibration");
  std::size_t perturbed = 0;
  std::vector<double> series(window.size());
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      for (std::size_t t = 0; t < window.size(); ++t) {
        series[t] = window[t].SubcarrierPower(m, k);
      }
      if (dsp::Variance(series) >
          config_.variance_factor * empty_variance_[m][k]) {
        ++perturbed;
      }
    }
  }
  return static_cast<double>(perturbed) /
         static_cast<double>(num_antennas_ * num_subcarriers_);
}

void CrowdEstimator::Train(
    const std::vector<std::pair<std::size_t, std::vector<wifi::CsiPacket>>>&
        labelled) {
  MULINK_REQUIRE(labelled.size() >= 2,
                 "CrowdEstimator: need >= 2 labelled windows");
  // Least-squares grid fit of f(n) = fmax (1 - exp(-c n)).
  std::vector<std::pair<double, double>> points;  // (count, fraction)
  double max_fraction = 0.0;
  bool has_positive = false;
  for (const auto& [count, window] : labelled) {
    const double fraction = PerturbedFraction(window);
    points.emplace_back(static_cast<double>(count), fraction);
    max_fraction = std::max(max_fraction, fraction);
    if (count > 0) has_positive = true;
  }
  MULINK_REQUIRE(has_positive,
                 "CrowdEstimator: need at least one occupied training window");

  double best_error = 1e300;
  for (double fmax = std::max(max_fraction, 0.05); fmax <= 1.0;
       fmax += 0.05) {
    for (double c = 0.05; c <= 3.0; c += 0.05) {
      double error = 0.0;
      for (const auto& [n, f] : points) {
        const double predicted = fmax * (1.0 - std::exp(-c * n));
        error += (predicted - f) * (predicted - f);
      }
      if (error < best_error) {
        best_error = error;
        fraction_scale_ = fmax;
        rate_ = c;
      }
    }
  }
  trained_ = true;
}

std::size_t CrowdEstimator::EstimateCount(
    const std::vector<wifi::CsiPacket>& window) const {
  MULINK_REQUIRE(trained_, "CrowdEstimator: call Train before EstimateCount");
  const double fraction = PerturbedFraction(window);
  // Invert f = fmax (1 - exp(-c n)): n = -ln(1 - f/fmax) / c. Near
  // saturation the inverse diverges, so the ratio is capped — counts beyond
  // the saturation knee are reported as "many" rather than extrapolated.
  const double ratio =
      std::clamp(fraction / fraction_scale_, 0.0, 0.95);
  const double n = -std::log1p(-ratio) / rate_;
  return static_cast<std::size_t>(std::lround(std::max(0.0, n)));
}

}  // namespace mulink::core
