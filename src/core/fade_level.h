// Fade level — the related-work link-state metric the paper's multipath
// factor competes with (Wilson & Patwari, TMC'12 [12]; channel-sweeping
// adaptation in Kaltiokallio et al., MASS'12 [28]).
//
// Fade level = measured RSS (dB) minus the RSS a pure path-loss model
// predicts for the link distance. Deep-faded links (negative fade level,
// destructive superposition) are more sensitive to nearby motion; anti-fade
// links respond mostly to LOS crossings.
//
// The paper criticizes fade level on two counts this module lets benches
// verify head-to-head (bench/ablate_metrics):
//  (1) it depends on a propagation formula — a wrong path-loss exponent or
//      TX-power assumption biases it, while the multipath factor is a pure
//      power ratio measured from one packet;
//  (2) it is a per-link scalar, while mu is available per subcarrier.
#pragma once

#include <vector>

#include "propagation/friis.h"
#include "wifi/band.h"
#include "wifi/csi.h"

namespace mulink::core {

struct FadeLevelModel {
  // The path-loss model assumed by the metric (not necessarily the truth).
  propagation::FriisModel friis;
  // Assumed transmit power scale: |H|^2 predicted = tx_power_scale * Friis
  // power gain. 1.0 when CSI is calibrated to pure channel units.
  double tx_power_scale = 1.0;
};

// Per-link fade level in dB: mean measured subcarrier power vs the model's
// prediction at `distance_m`.
double MeasureFadeLevel(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band, double distance_m,
                        const FadeLevelModel& model = {});

// Per-subcarrier variant (Kaltiokallio-style channel diversity view):
// fade_level[k] uses the model prediction at subcarrier k's frequency.
std::vector<double> MeasureFadeLevelPerSubcarrier(
    const wifi::CsiPacket& packet, const wifi::BandPlan& band,
    double distance_m, const FadeLevelModel& model = {});

// Channel-sweeping selection (the ZigBee adaptation of [28], transplanted to
// OFDM subcarriers): index of the most-faded subcarrier — the one fade-level
// theory predicts is most motion-sensitive.
std::size_t MostFadedSubcarrier(const wifi::CsiPacket& packet,
                                const wifi::BandPlan& band, double distance_m,
                                const FadeLevelModel& model = {});

}  // namespace mulink::core
