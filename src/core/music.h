// MUSIC angle-of-arrival estimation (Schmidt '86; paper Sec. IV-B1).
//
// Snapshots are the per-subcarrier antenna vectors of each CSI packet (the
// standard trick for bandwidth-limited WiFi: 30 subcarriers x M packets
// snapshots for a 3x3 covariance). The paper deliberately uses *plain*
// MUSIC rather than spatially smoothed MUSIC: smoothing would halve the
// effective aperture and a 3-antenna array could then resolve only one path.
#pragma once

#include <vector>

#include "linalg/cmatrix.h"
#include "wifi/array.h"
#include "wifi/band.h"
#include "wifi/csi.h"

namespace mulink::core {

struct MusicConfig {
  double theta_min_deg = -90.0;
  double theta_max_deg = 90.0;
  std::size_t num_points = 181;
  // Assumed signal-subspace dimension; must be < number of antennas.
  std::size_t num_sources = 2;
};

struct Pseudospectrum {
  std::vector<double> theta_deg;
  std::vector<double> power;

  // Angles of the strongest local maxima, strongest first.
  std::vector<double> PeakAngles(std::size_t max_peaks = 0) const;

  // Value at the grid point nearest to the given angle.
  double ValueAt(double angle_deg) const;

  // Scale so that the L2 norm of `power` is 1 (for scale-free comparison).
  Pseudospectrum Normalized() const;

  // Gaussian smoothing along the angle axis (sigma in degrees). MUSIC peaks
  // from a high-SNR covariance are razor sharp, so a +-1 grid-point peak
  // jitter between two spectra produces huge pointwise ratios; smoothing to
  // roughly the array's angular resolution makes spectrum comparison stable.
  Pseudospectrum Smoothed(double sigma_deg) const;
};

// Sample covariance across antennas, accumulated over all packets and
// subcarriers, optionally weighting subcarrier k's contribution by
// weights[k] (the subcarrier-weighted variant of Sec. IV-C).
linalg::CMatrix SampleCovariance(const std::vector<wifi::CsiPacket>& packets,
                                 const std::vector<double>& weights = {});

// MUSIC pseudospectrum P(theta) = 1 / (a^H E_n E_n^H a) from a covariance.
Pseudospectrum ComputeMusicSpectrum(const linalg::CMatrix& covariance,
                                    const wifi::UniformLinearArray& array,
                                    const wifi::BandPlan& band,
                                    const MusicConfig& config = {});

// Conventional (Bartlett) beamformer spectrum B(theta) = a^H R a.
//
// Unlike MUSIC it is *linear* in the covariance — and hence in per-
// subcarrier signal strength — which is the property Sec. IV-C leans on to
// weight monitoring and calibration sides independently before subtracting.
// The detector uses it for the monitoring-stage angular comparison; MUSIC
// remains the calibration-stage tool for AoA and the Eq. 17 path weights.
Pseudospectrum ComputeBartlettSpectrum(const linalg::CMatrix& covariance,
                                       const wifi::UniformLinearArray& array,
                                       const wifi::BandPlan& band,
                                       const MusicConfig& config = {});

// Bartlett spectrum straight from packets (optionally subcarrier-weighted).
Pseudospectrum ComputeBartlettSpectrum(
    const std::vector<wifi::CsiPacket>& packets,
    const wifi::UniformLinearArray& array, const wifi::BandPlan& band,
    const MusicConfig& config = {}, const std::vector<double>& weights = {});

// Convenience: covariance + spectrum in one call.
Pseudospectrum ComputeMusicSpectrum(const std::vector<wifi::CsiPacket>& packets,
                                    const wifi::UniformLinearArray& array,
                                    const wifi::BandPlan& band,
                                    const MusicConfig& config = {},
                                    const std::vector<double>& weights = {});

// Eq. 16: incident angle from the inter-antenna phase shift at
// half-wavelength spacing, theta = arcsin(delta_phi / pi). Exposed for the
// two-antenna sanity checks and tests.
double AngleFromPhaseShift(double delta_phi_rad);

// Estimate the angle of a NEW path (e.g. a person's reflection) by
// subtracting the calibration-time covariance from the monitoring-window
// covariance and running MUSIC on the (PSD-shifted) residual — the angle
// estimator behind Fig. 10's error study.
double EstimateNewPathAngleDeg(const std::vector<wifi::CsiPacket>& window,
                               const linalg::CMatrix& static_covariance,
                               const wifi::UniformLinearArray& array,
                               const wifi::BandPlan& band);

// Forward-backward spatially smoothed covariance (Shan/Wax/Kailath; the
// smoothed MUSIC of ArrayTrack [17] and Wi-Vi [24] the paper discusses in
// Sec. IV-B1). Averages all length-L subarray covariances of an M-antenna
// ULA covariance, plus the conjugate-reversed ("backward") copies, restoring
// rank for fully correlated (coherent multipath) sources at the cost of the
// effective aperture: the result is L x L, resolving at most L-1 sources.
//
// This is exactly why the paper sticks with plain MUSIC on 3 antennas: L = 2
// leaves room for only ONE path, and it needs at least two (LOS + bounce).
linalg::CMatrix SpatiallySmoothedCovariance(const linalg::CMatrix& covariance,
                                            std::size_t subarray_size);

// Smoothed-MUSIC pseudospectrum: smooth the covariance, then run MUSIC with
// a subarray-sized steering vector (same element spacing as `array`).
// Requires config.num_sources < subarray_size.
Pseudospectrum ComputeSmoothedMusicSpectrum(
    const std::vector<wifi::CsiPacket>& packets,
    const wifi::UniformLinearArray& array, const wifi::BandPlan& band,
    std::size_t subarray_size, const MusicConfig& config = {});

}  // namespace mulink::core
