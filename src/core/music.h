// MUSIC angle-of-arrival estimation (Schmidt '86; paper Sec. IV-B1).
//
// Snapshots are the per-subcarrier antenna vectors of each CSI packet (the
// standard trick for bandwidth-limited WiFi: 30 subcarriers x M packets
// snapshots for a 3x3 covariance). The paper deliberately uses *plain*
// MUSIC rather than spatially smoothed MUSIC: smoothing would halve the
// effective aperture and a 3-antenna array could then resolve only one path.
#pragma once

#include <span>
#include <vector>

#include "kernels/aligned.h"
#include "linalg/cmatrix.h"
#include "linalg/hermitian_eig.h"
#include "wifi/array.h"
#include "wifi/band.h"
#include "wifi/csi.h"

namespace mulink::core {

struct MusicConfig {
  double theta_min_deg = -90.0;
  double theta_max_deg = 90.0;
  std::size_t num_points = 181;
  // Assumed signal-subspace dimension; must be < number of antennas.
  std::size_t num_sources = 2;
};

struct Pseudospectrum {
  std::vector<double> theta_deg;
  std::vector<double> power;

  // Angles of the strongest local maxima, strongest first.
  std::vector<double> PeakAngles(std::size_t max_peaks = 0) const;

  // Value at the grid point nearest to the given angle.
  double ValueAt(double angle_deg) const;

  // Scale so that the L2 norm of `power` is 1 (for scale-free comparison).
  Pseudospectrum Normalized() const;

  // Gaussian smoothing along the angle axis (sigma in degrees). MUSIC peaks
  // from a high-SNR covariance are razor sharp, so a +-1 grid-point peak
  // jitter between two spectra produces huge pointwise ratios; smoothing to
  // roughly the array's angular resolution makes spectrum comparison stable.
  Pseudospectrum Smoothed(double sigma_deg) const;
};

// Reusable scratch for the covariance/spectrum hot path. Besides plain
// buffers it caches the steering-vector table for a fixed
// (array, band, MusicConfig) grid — the table is invalidated and rebuilt
// whenever any of those fingerprint fields change. The buffers are the
// split-complex SoA planes the kernel layer (src/kernels, DESIGN.md §14)
// consumes: 64-byte aligned, grown once during warm-up, zero hot-path
// allocations afterwards.
struct MusicWorkspace {
  linalg::EigWorkspace eig_ws;
  linalg::EigenSystem eig;

  // Split-complex window planes for the covariance kernel: plane m holds
  // packets.size() * num_subcarriers lanes of antenna m, packet-major;
  // w_rep is the per-lane subcarrier weight (replicated across packets,
  // zero-clipped).
  kernels::AlignedBuffer plane_re;
  kernels::AlignedBuffer plane_im;
  kernels::AlignedBuffer w_rep;

  // Packed Hermitian covariances (kernels::PackHermitian layout) for the
  // batched Bartlett scan, and split noise-eigenvector planes for MUSIC.
  kernels::AlignedBuffer packed_a;
  kernels::AlignedBuffer packed_b;
  kernels::AlignedBuffer noise_re;
  kernels::AlignedBuffer noise_im;

  // Cached steering table: row i holds a(theta_i) for grid point i, plus the
  // split SoA mirror (plane m = steer_re/im[m * points ..]) and the grid
  // angles, all rebuilt together when the fingerprint below goes stale.
  std::vector<Complex> steering_table;
  kernels::AlignedBuffer steer_re;
  kernels::AlignedBuffer steer_im;
  std::vector<double> theta_grid_deg;
  std::size_t table_points = 0;
  std::size_t table_antennas = 0;
  double table_theta_min_deg = 0.0;
  double table_theta_max_deg = 0.0;
  double table_freq_hz = 0.0;
  double table_spacing_m = 0.0;
  double table_axis_rad = 0.0;
};

// Sample covariance across antennas, accumulated over all packets and
// subcarriers, optionally weighting subcarrier k's contribution by
// weights[k] (the subcarrier-weighted variant of Sec. IV-C).
linalg::CMatrix SampleCovariance(const std::vector<wifi::CsiPacket>& packets,
                                 const std::vector<double>& weights = {});

// Scratch variant: accumulates into `out` (resized to antennas x antennas)
// with zero heap traffic after warm-up. Bit-identical to SampleCovariance.
void SampleCovarianceInto(std::span<const wifi::CsiPacket> packets,
                          std::span<const double> weights, linalg::CMatrix& out,
                          MusicWorkspace& ws);

// Pre-split variant for ingest-cached windows: slab p points at packet p's
// split-complex block — antenna-major re rows then im rows, each
// num_antennas * num_subcarriers doubles, exactly the bytes
// kernels::Deinterleave produces from the packet's CSI. Callers that score
// overlapping windows (SensingEngine) split each packet once at ingest and
// assemble the window by memcpy here, instead of re-deinterleaving every
// packet on every hop. Bit-identical to SampleCovarianceInto on the packets
// the slabs were split from.
void SampleCovarianceSlabsInto(std::span<const double* const> slabs,
                               std::size_t num_antennas,
                               std::size_t num_subcarriers,
                               std::span<const double> weights,
                               linalg::CMatrix& out, MusicWorkspace& ws);

// Per-subcarrier covariance stack: block k holds the *unweighted* sum over
// packets of the antenna outer product x_k x_k^H. Because the weighted
// sample covariance is linear in the per-subcarrier terms, a caller that
// scores many windows against a fixed packet set (the combined scheme's
// retained calibration profile) can build the stack once and re-combine it
// with each window's subcarrier weights in O(K * A^2), instead of
// re-scanning all packets every window.
struct SubcarrierCovarianceStack {
  std::size_t num_antennas = 0;
  std::size_t num_subcarriers = 0;
  std::size_t num_packets = 0;
  // num_subcarriers blocks of num_antennas^2 row-major entries.
  std::vector<Complex> data;

  const Complex* Block(std::size_t k) const {
    return data.data() + k * num_antennas * num_antennas;
  }
};

// Build the stack from `packets`; deterministic, so rebuilding from the same
// packets reproduces the stack bit-for-bit.
void BuildSubcarrierCovarianceStack(std::span<const wifi::CsiPacket> packets,
                                    SubcarrierCovarianceStack& out);

// out = (sum_k w_k C_k) / (num_packets * sum_k w_k) over subcarriers with
// w_k > 0 — the weighted sample covariance of the stacked packets. Pass an
// empty weights span for uniform weighting.
void CombineSubcarrierCovariances(const SubcarrierCovarianceStack& stack,
                                  std::span<const double> weights,
                                  linalg::CMatrix& out);

// MUSIC pseudospectrum P(theta) = 1 / (a^H E_n E_n^H a) from a covariance.
Pseudospectrum ComputeMusicSpectrum(const linalg::CMatrix& covariance,
                                    const wifi::UniformLinearArray& array,
                                    const wifi::BandPlan& band,
                                    const MusicConfig& config = {});

// Scratch variant of the above writing into `out`.
void ComputeMusicSpectrumInto(const linalg::CMatrix& covariance,
                              const wifi::UniformLinearArray& array,
                              const wifi::BandPlan& band,
                              const MusicConfig& config, Pseudospectrum& out,
                              MusicWorkspace& ws);

// Conventional (Bartlett) beamformer spectrum B(theta) = a^H R a.
//
// Unlike MUSIC it is *linear* in the covariance — and hence in per-
// subcarrier signal strength — which is the property Sec. IV-C leans on to
// weight monitoring and calibration sides independently before subtracting.
// The detector uses it for the monitoring-stage angular comparison; MUSIC
// remains the calibration-stage tool for AoA and the Eq. 17 path weights.
Pseudospectrum ComputeBartlettSpectrum(const linalg::CMatrix& covariance,
                                       const wifi::UniformLinearArray& array,
                                       const wifi::BandPlan& band,
                                       const MusicConfig& config = {});

// Scratch variant of the above writing into `out`.
void ComputeBartlettSpectrumInto(const linalg::CMatrix& covariance,
                                 const wifi::UniformLinearArray& array,
                                 const wifi::BandPlan& band,
                                 const MusicConfig& config, Pseudospectrum& out,
                                 MusicWorkspace& ws);

// Batched pair variant: both covariances are scanned in one pass over the
// cached steering table, so the per-grid-point steering loads amortize
// across the monitor/profile pair the combined scheme evaluates every
// window. Each output is bit-identical to the single-covariance scratch
// variant above.
void ComputeBartlettSpectraInto(const linalg::CMatrix& covariance_a,
                                const linalg::CMatrix& covariance_b,
                                const wifi::UniformLinearArray& array,
                                const wifi::BandPlan& band,
                                const MusicConfig& config, Pseudospectrum& out_a,
                                Pseudospectrum& out_b, MusicWorkspace& ws);

// Bartlett spectrum straight from packets (optionally subcarrier-weighted).
Pseudospectrum ComputeBartlettSpectrum(
    const std::vector<wifi::CsiPacket>& packets,
    const wifi::UniformLinearArray& array, const wifi::BandPlan& band,
    const MusicConfig& config = {}, const std::vector<double>& weights = {});

// Convenience: covariance + spectrum in one call.
Pseudospectrum ComputeMusicSpectrum(const std::vector<wifi::CsiPacket>& packets,
                                    const wifi::UniformLinearArray& array,
                                    const wifi::BandPlan& band,
                                    const MusicConfig& config = {},
                                    const std::vector<double>& weights = {});

// Eq. 16: incident angle from the inter-antenna phase shift at
// half-wavelength spacing, theta = arcsin(delta_phi / pi). Exposed for the
// two-antenna sanity checks and tests.
double AngleFromPhaseShift(double delta_phi_rad);

// Estimate the angle of a NEW path (e.g. a person's reflection) by
// subtracting the calibration-time covariance from the monitoring-window
// covariance and running MUSIC on the (PSD-shifted) residual — the angle
// estimator behind Fig. 10's error study.
double EstimateNewPathAngleDeg(const std::vector<wifi::CsiPacket>& window,
                               const linalg::CMatrix& static_covariance,
                               const wifi::UniformLinearArray& array,
                               const wifi::BandPlan& band);

// Forward-backward spatially smoothed covariance (Shan/Wax/Kailath; the
// smoothed MUSIC of ArrayTrack [17] and Wi-Vi [24] the paper discusses in
// Sec. IV-B1). Averages all length-L subarray covariances of an M-antenna
// ULA covariance, plus the conjugate-reversed ("backward") copies, restoring
// rank for fully correlated (coherent multipath) sources at the cost of the
// effective aperture: the result is L x L, resolving at most L-1 sources.
//
// This is exactly why the paper sticks with plain MUSIC on 3 antennas: L = 2
// leaves room for only ONE path, and it needs at least two (LOS + bounce).
linalg::CMatrix SpatiallySmoothedCovariance(const linalg::CMatrix& covariance,
                                            std::size_t subarray_size);

// Smoothed-MUSIC pseudospectrum: smooth the covariance, then run MUSIC with
// a subarray-sized steering vector (same element spacing as `array`).
// Requires config.num_sources < subarray_size.
Pseudospectrum ComputeSmoothedMusicSpectrum(
    const std::vector<wifi::CsiPacket>& packets,
    const wifi::UniformLinearArray& array, const wifi::BandPlan& band,
    std::size_t subarray_size, const MusicConfig& config = {});

}  // namespace mulink::core
