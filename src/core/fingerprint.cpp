#include "core/fingerprint.h"
// mulink-lint: cold-tu(offline localization training/query, not the per-decision path)

#include <algorithm>
#include <cmath>
#include <map>

#include "common/assert.h"
#include "dsp/stats.h"

namespace mulink::core {

FingerprintLocalizer::FingerprintLocalizer(FingerprintConfig config)
    : config_(config) {
  MULINK_REQUIRE(config_.k_neighbors >= 1,
                 "FingerprintLocalizer: k must be >= 1");
}

std::vector<double> FingerprintLocalizer::Feature(
    const std::vector<wifi::CsiPacket>& window) {
  MULINK_REQUIRE(!window.empty(), "FingerprintLocalizer: empty window");
  const std::size_t num_ant = window[0].NumAntennas();
  const std::size_t num_sc = window[0].NumSubcarriers();

  std::vector<double> feature;
  feature.reserve(num_ant * num_sc);
  std::vector<double> amps(window.size());
  for (std::size_t m = 0; m < num_ant; ++m) {
    for (std::size_t k = 0; k < num_sc; ++k) {
      for (std::size_t t = 0; t < window.size(); ++t) {
        amps[t] = std::sqrt(window[t].SubcarrierPower(m, k));
      }
      feature.push_back(dsp::Median(amps));
    }
  }
  double norm = 0.0;
  for (double v : feature) norm += v * v;
  norm = std::sqrt(norm);
  MULINK_REQUIRE(norm > 0.0, "FingerprintLocalizer: zero-power window");
  for (double& v : feature) v /= norm;
  return feature;
}

void FingerprintLocalizer::AddTrainingWindow(
    const std::string& label, const std::vector<wifi::CsiPacket>& window) {
  MULINK_REQUIRE(!label.empty(), "FingerprintLocalizer: empty label");
  auto feature = Feature(window);
  if (!samples_.empty()) {
    MULINK_REQUIRE(feature.size() == samples_[0].feature.size(),
                   "FingerprintLocalizer: inconsistent window shapes");
  }
  samples_.push_back({label, std::move(feature)});
}

std::vector<std::string> FingerprintLocalizer::Labels() const {
  std::vector<std::string> labels;
  for (const auto& s : samples_) {
    if (std::find(labels.begin(), labels.end(), s.label) == labels.end()) {
      labels.push_back(s.label);
    }
  }
  return labels;
}

FingerprintLocalizer::Result FingerprintLocalizer::Locate(
    const std::vector<wifi::CsiPacket>& window) const {
  MULINK_REQUIRE(samples_.size() >= config_.k_neighbors,
                 "FingerprintLocalizer: not enough training samples");
  const auto feature = Feature(window);
  MULINK_REQUIRE(feature.size() == samples_[0].feature.size(),
                 "FingerprintLocalizer: window shape mismatch vs training");

  // Distances to every training sample.
  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    double d = 0.0;
    for (std::size_t j = 0; j < feature.size(); ++j) {
      const double diff = feature[j] - samples_[i].feature[j];
      d += diff * diff;
    }
    distances.emplace_back(std::sqrt(d), i);
  }
  std::partial_sort(distances.begin(),
                    distances.begin() +
                        static_cast<std::ptrdiff_t>(config_.k_neighbors),
                    distances.end());

  // Majority vote over the k nearest, ties broken by the nearer neighbour.
  std::map<std::string, std::size_t> votes;
  for (std::size_t i = 0; i < config_.k_neighbors; ++i) {
    ++votes[samples_[distances[i].second].label];
  }
  Result result;
  std::size_t best_votes = 0;
  for (std::size_t i = 0; i < config_.k_neighbors; ++i) {
    const auto& label = samples_[distances[i].second].label;
    if (votes[label] > best_votes) {
      best_votes = votes[label];
      result.label = label;
    }
  }
  result.confidence = static_cast<double>(best_votes) /
                      static_cast<double>(config_.k_neighbors);
  result.nearest_distance = distances[0].first;
  return result;
}

}  // namespace mulink::core
