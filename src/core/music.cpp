#include "core/music.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/assert.h"
#include "dsp/peaks.h"
#include "kernels/kernels.h"
#include "linalg/hermitian_eig.h"

namespace mulink::core {

std::vector<double> Pseudospectrum::PeakAngles(std::size_t max_peaks) const {
  dsp::PeakOptions options;
  options.max_peaks = max_peaks;
  // MUSIC peak heights span decades (1 / noise-subspace projection), so a
  // secondary path's peak can sit orders of magnitude below the primary's;
  // keep only a permissive floor to reject grid ripple.
  options.min_relative_height = 1e-6;
  options.min_relative_prominence = 1e-6;
  const auto peaks = dsp::FindPeaks(power, options);
  std::vector<double> angles;
  // mulink-lint: allow(alloc): AoA analysis API, off the decision path
  angles.reserve(peaks.size());
  // mulink-lint: allow(alloc): AoA analysis API, off the decision path
  for (const auto& p : peaks) angles.push_back(theta_deg[p.index]);
  return angles;
}

double Pseudospectrum::ValueAt(double angle_deg) const {
  MULINK_REQUIRE(!theta_deg.empty(), "Pseudospectrum::ValueAt: empty spectrum");
  std::size_t best = 0;
  double best_dist = std::abs(theta_deg[0] - angle_deg);
  for (std::size_t i = 1; i < theta_deg.size(); ++i) {
    const double d = std::abs(theta_deg[i] - angle_deg);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return power[best];
}

Pseudospectrum Pseudospectrum::Normalized() const {
  double norm_sq = 0.0;
  for (double v : power) norm_sq += v * v;
  Pseudospectrum out = *this;
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& v : out.power) v *= inv;
  }
  return out;
}

Pseudospectrum Pseudospectrum::Smoothed(double sigma_deg) const {
  MULINK_REQUIRE(sigma_deg > 0.0, "Smoothed: sigma must be > 0");
  MULINK_REQUIRE(theta_deg.size() >= 2, "Smoothed: need >= 2 grid points");
  const double step = theta_deg[1] - theta_deg[0];
  const double sigma_pts = sigma_deg / step;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma_pts)));

  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double kernel_sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (i / sigma_pts) * (i / sigma_pts));
    kernel[static_cast<std::size_t>(i + radius)] = v;
    kernel_sum += v;
  }
  for (auto& v : kernel) v /= kernel_sum;

  Pseudospectrum out = *this;
  const int n = static_cast<int>(power.size());
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = -radius; j <= radius; ++j) {
      const int idx = std::clamp(i + j, 0, n - 1);  // replicate edges
      acc += kernel[static_cast<std::size_t>(j + radius)] *
             power[static_cast<std::size_t>(idx)];
    }
    out.power[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

linalg::CMatrix SampleCovariance(const std::vector<wifi::CsiPacket>& packets,
                                 const std::vector<double>& weights) {
  linalg::CMatrix r;
  MusicWorkspace ws;
  SampleCovarianceInto(packets, weights, r, ws);
  return r;
}

void SampleCovarianceInto(std::span<const wifi::CsiPacket> packets,
                          std::span<const double> weights, linalg::CMatrix& out,
                          MusicWorkspace& ws) {
  MULINK_REQUIRE(!packets.empty(), "SampleCovariance: need >= 1 packet");
  const std::size_t num_ant = packets[0].NumAntennas();
  const std::size_t num_sc = packets[0].NumSubcarriers();
  MULINK_REQUIRE(num_ant >= 2, "SampleCovariance: need >= 2 antennas");
  MULINK_REQUIRE(weights.empty() || weights.size() == num_sc,
                 "SampleCovariance: weights size mismatch");

  out.Resize(num_ant, num_ant);

  // Pack the window into split-complex SoA planes (plane m = antenna m,
  // packet-major) and the per-lane replicated weight plane, then hand the
  // whole reduction to the covariance kernel. Subcarriers with w <= 0 stay
  // in the planes with weight 0 — an exact multiply-by-zero no-op that
  // keeps the lanes dense for SIMD.
  const std::size_t num_pk = packets.size();
  const std::size_t n = num_pk * num_sc;
  ws.plane_re.Ensure(num_ant * n);
  ws.plane_im.Ensure(num_ant * n);
  ws.w_rep.Ensure(n);
  for (std::size_t p = 0; p < num_pk; ++p) {
    const auto& packet = packets[p];
    MULINK_REQUIRE(packet.NumAntennas() == num_ant &&
                       packet.NumSubcarriers() == num_sc,
                   "SampleCovariance: inconsistent packet dimensions");
    const Complex* csi = packet.csi.raw();
    for (std::size_t m = 0; m < num_ant; ++m) {
      kernels::Deinterleave(csi + m * num_sc, num_sc,
                            ws.plane_re.data() + m * n + p * num_sc,
                            ws.plane_im.data() + m * n + p * num_sc);
    }
  }
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < num_sc; ++k) {
    const double w = weights.empty() ? 1.0 : weights[k];
    const double clipped = w > 0.0 ? w : 0.0;
    ws.w_rep[k] = clipped;
    weight_sum += clipped;
  }
  for (std::size_t p = 1; p < num_pk; ++p) {
    std::memcpy(ws.w_rep.data() + p * num_sc, ws.w_rep.data(),
                num_sc * sizeof(double));
  }
  MULINK_REQUIRE(weight_sum > 0.0, "SampleCovariance: all weights are zero");
  kernels::WeightedCovariance(ws.plane_re.data(), ws.plane_im.data(), num_ant,
                              n, ws.w_rep.data(), out.raw());
  const double total_weight = weight_sum * static_cast<double>(num_pk);
  out *= Complex(1.0 / total_weight, 0.0);
}

void SampleCovarianceSlabsInto(std::span<const double* const> slabs,
                               std::size_t num_antennas,
                               std::size_t num_subcarriers,
                               std::span<const double> weights,
                               linalg::CMatrix& out, MusicWorkspace& ws) {
  MULINK_REQUIRE(!slabs.empty(), "SampleCovariance: need >= 1 packet");
  MULINK_REQUIRE(num_antennas >= 2, "SampleCovariance: need >= 2 antennas");
  MULINK_REQUIRE(weights.empty() || weights.size() == num_subcarriers,
                 "SampleCovariance: weights size mismatch");

  out.Resize(num_antennas, num_antennas);

  // Assemble the packet-major planes by memcpy from the per-packet slabs —
  // the same bytes the Deinterleave path writes, so the kernel reduction
  // (and the score downstream) is bit-identical.
  const std::size_t num_pk = slabs.size();
  const std::size_t n = num_pk * num_subcarriers;
  const std::size_t row_bytes = num_subcarriers * sizeof(double);
  ws.plane_re.Ensure(num_antennas * n);
  ws.plane_im.Ensure(num_antennas * n);
  ws.w_rep.Ensure(n);
  for (std::size_t p = 0; p < num_pk; ++p) {
    const double* slab = slabs[p];
    for (std::size_t m = 0; m < num_antennas; ++m) {
      std::memcpy(ws.plane_re.data() + m * n + p * num_subcarriers,
                  slab + m * num_subcarriers, row_bytes);
      std::memcpy(ws.plane_im.data() + m * n + p * num_subcarriers,
                  slab + (num_antennas + m) * num_subcarriers, row_bytes);
    }
  }
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < num_subcarriers; ++k) {
    const double w = weights.empty() ? 1.0 : weights[k];
    const double clipped = w > 0.0 ? w : 0.0;
    ws.w_rep[k] = clipped;
    weight_sum += clipped;
  }
  for (std::size_t p = 1; p < num_pk; ++p) {
    std::memcpy(ws.w_rep.data() + p * num_subcarriers, ws.w_rep.data(),
                num_subcarriers * sizeof(double));
  }
  MULINK_REQUIRE(weight_sum > 0.0, "SampleCovariance: all weights are zero");
  kernels::WeightedCovariance(ws.plane_re.data(), ws.plane_im.data(),
                              num_antennas, n, ws.w_rep.data(), out.raw());
  const double total_weight = weight_sum * static_cast<double>(num_pk);
  out *= Complex(1.0 / total_weight, 0.0);
}

void BuildSubcarrierCovarianceStack(std::span<const wifi::CsiPacket> packets,
                                    SubcarrierCovarianceStack& out) {
  MULINK_REQUIRE(!packets.empty(),
                 "SubcarrierCovarianceStack: need >= 1 packet");
  const std::size_t num_ant = packets[0].NumAntennas();
  const std::size_t num_sc = packets[0].NumSubcarriers();
  MULINK_REQUIRE(num_ant >= 2, "SubcarrierCovarianceStack: need >= 2 antennas");

  out.num_antennas = num_ant;
  out.num_subcarriers = num_sc;
  out.num_packets = packets.size();
  // mulink-lint: allow(alloc): covariance stack rebuild, cached per profile version
  out.data.assign(num_sc * num_ant * num_ant, Complex(0.0, 0.0));
  for (const auto& packet : packets) {
    MULINK_REQUIRE(packet.NumAntennas() == num_ant &&
                       packet.NumSubcarriers() == num_sc,
                   "SubcarrierCovarianceStack: inconsistent packet dimensions");
    const Complex* csi = packet.csi.raw();
    for (std::size_t k = 0; k < num_sc; ++k) {
      Complex* block = out.data.data() + k * num_ant * num_ant;
      for (std::size_t i = 0; i < num_ant; ++i) {
        const Complex xi = csi[i * num_sc + k];
        for (std::size_t j = 0; j < num_ant; ++j) {
          block[i * num_ant + j] += xi * std::conj(csi[j * num_sc + k]);
        }
      }
    }
  }
}

void CombineSubcarrierCovariances(const SubcarrierCovarianceStack& stack,
                                  std::span<const double> weights,
                                  linalg::CMatrix& out) {
  MULINK_REQUIRE(stack.num_packets > 0,
                 "CombineSubcarrierCovariances: empty stack");
  MULINK_REQUIRE(weights.empty() || weights.size() == stack.num_subcarriers,
                 "CombineSubcarrierCovariances: weights size mismatch");
  const std::size_t num_ant = stack.num_antennas;
  out.Resize(num_ant, num_ant);
  Complex* r = out.raw();
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < stack.num_subcarriers; ++k) {
    const double w = weights.empty() ? 1.0 : weights[k];
    if (w <= 0.0) continue;
    const Complex* block = stack.Block(k);
    for (std::size_t e = 0; e < num_ant * num_ant; ++e) {
      r[e] += w * block[e];
    }
    weight_sum += w;
  }
  MULINK_REQUIRE(weight_sum > 0.0,
                 "CombineSubcarrierCovariances: all weights are zero");
  const double total = weight_sum * static_cast<double>(stack.num_packets);
  out *= Complex(1.0 / total, 0.0);
}

namespace {

// Lazily (re)build the steering-vector table for the spectrum grid. The
// cached values are produced by the same SteeringVector math as the
// allocating path, so spectra computed from the table are bit-identical.
const Complex* EnsureSteeringTable(const wifi::UniformLinearArray& array,
                                   const wifi::BandPlan& band,
                                   const MusicConfig& config,
                                   MusicWorkspace& ws) {
  const std::size_t num_ant = array.num_antennas();
  const double freq = band.center_hz();
  const bool stale =
      ws.table_points != config.num_points || ws.table_antennas != num_ant ||
      ws.table_theta_min_deg != config.theta_min_deg ||
      ws.table_theta_max_deg != config.theta_max_deg ||
      ws.table_freq_hz != freq || ws.table_spacing_m != array.spacing_m() ||
      ws.table_axis_rad != array.axis_angle_rad();
  if (stale) {
    // mulink-lint: allow(alloc): steering table rebuild, cached until geometry changes
    ws.steering_table.resize(config.num_points * num_ant);
    // mulink-lint: allow(alloc): steering table rebuild, cached until geometry changes
    ws.theta_grid_deg.resize(config.num_points);
    for (std::size_t i = 0; i < config.num_points; ++i) {
      const double frac = static_cast<double>(i) /
                          static_cast<double>(config.num_points - 1);
      const double theta_deg =
          config.theta_min_deg +
          frac * (config.theta_max_deg - config.theta_min_deg);
      ws.theta_grid_deg[i] = theta_deg;
      array.SteeringVectorInto(
          DegToRad(theta_deg), freq,
          std::span<Complex>(ws.steering_table.data() + i * num_ant, num_ant));
    }
    // Mirror the table into split SoA planes (plane m = antenna m, grid
    // point contiguous) for the scan kernels.
    ws.steer_re.Ensure(config.num_points * num_ant);
    ws.steer_im.Ensure(config.num_points * num_ant);
    for (std::size_t i = 0; i < config.num_points; ++i) {
      for (std::size_t m = 0; m < num_ant; ++m) {
        const Complex a = ws.steering_table[i * num_ant + m];
        ws.steer_re[m * config.num_points + i] = a.real();
        ws.steer_im[m * config.num_points + i] = a.imag();
      }
    }
    ws.table_points = config.num_points;
    ws.table_antennas = num_ant;
    ws.table_theta_min_deg = config.theta_min_deg;
    ws.table_theta_max_deg = config.theta_max_deg;
    ws.table_freq_hz = freq;
    ws.table_spacing_m = array.spacing_m();
    ws.table_axis_rad = array.axis_angle_rad();
  }
  return ws.steering_table.data();
}

}  // namespace

Pseudospectrum ComputeMusicSpectrum(const linalg::CMatrix& covariance,
                                    const wifi::UniformLinearArray& array,
                                    const wifi::BandPlan& band,
                                    const MusicConfig& config) {
  Pseudospectrum spectrum;
  MusicWorkspace ws;
  ComputeMusicSpectrumInto(covariance, array, band, config, spectrum, ws);
  return spectrum;
}

void ComputeMusicSpectrumInto(const linalg::CMatrix& covariance,
                              const wifi::UniformLinearArray& array,
                              const wifi::BandPlan& band,
                              const MusicConfig& config, Pseudospectrum& out,
                              MusicWorkspace& ws) {
  const std::size_t num_ant = array.num_antennas();
  MULINK_REQUIRE(covariance.rows() == num_ant && covariance.cols() == num_ant,
                 "ComputeMusicSpectrum: covariance/array size mismatch");
  MULINK_REQUIRE(config.num_sources >= 1 && config.num_sources < num_ant,
                 "ComputeMusicSpectrum: num_sources must be in [1, antennas)");
  MULINK_REQUIRE(config.num_points >= 3,
                 "ComputeMusicSpectrum: need >= 3 grid points");
  MULINK_REQUIRE(config.theta_max_deg > config.theta_min_deg,
                 "ComputeMusicSpectrum: empty angle range");

  linalg::HermitianEigen(covariance, ws.eig, ws.eig_ws);
  // Noise subspace: eigenvectors of the smallest (num_ant - num_sources)
  // eigenvalues (HermitianEigen sorts ascending).
  const std::size_t noise_dim = num_ant - config.num_sources;
  EnsureSteeringTable(array, band, config, ws);
  const Complex* vectors = ws.eig.vectors.raw();

  // Split the noise eigenvectors into SoA planes (vector e at offset
  // e * num_ant) and hand the ||E_n^H a||^2 scan to the kernel — the same
  // per-point accumulation order as the historical loop, so spectra are
  // unchanged bit-for-bit.
  ws.noise_re.Ensure(noise_dim * num_ant);
  ws.noise_im.Ensure(noise_dim * num_ant);
  for (std::size_t e = 0; e < noise_dim; ++e) {
    for (std::size_t m = 0; m < num_ant; ++m) {
      const Complex v = vectors[m * num_ant + e];
      ws.noise_re[e * num_ant + m] = v.real();
      ws.noise_im[e * num_ant + m] = v.imag();
    }
  }
  // mulink-lint: allow(alloc): warm spectrum output
  out.theta_deg.resize(config.num_points);
  // mulink-lint: allow(alloc): warm spectrum output
  out.power.resize(config.num_points);
  std::memcpy(out.theta_deg.data(), ws.theta_grid_deg.data(),
              config.num_points * sizeof(double));
  kernels::MusicScan(ws.steer_re.data(), ws.steer_im.data(), config.num_points,
                     num_ant, ws.noise_re.data(), ws.noise_im.data(), noise_dim,
                     1e-12, out.power.data());
}

Pseudospectrum ComputeBartlettSpectrum(const linalg::CMatrix& covariance,
                                       const wifi::UniformLinearArray& array,
                                       const wifi::BandPlan& band,
                                       const MusicConfig& config) {
  Pseudospectrum spectrum;
  MusicWorkspace ws;
  ComputeBartlettSpectrumInto(covariance, array, band, config, spectrum, ws);
  return spectrum;
}

namespace {

// Shared tail of the Bartlett scans: pack covariances, run the kernel over
// the cached steering planes, copy the cached grid angles out.
void BartlettScanInto(std::span<const linalg::CMatrix* const> covariances,
                      std::span<Pseudospectrum* const> outs,
                      const wifi::UniformLinearArray& array,
                      const wifi::BandPlan& band, const MusicConfig& config,
                      MusicWorkspace& ws) {
  const std::size_t num_ant = array.num_antennas();
  MULINK_REQUIRE(config.num_points >= 3,
                 "ComputeBartlettSpectrum: need >= 3 grid points");
  MULINK_REQUIRE(config.theta_max_deg > config.theta_min_deg,
                 "ComputeBartlettSpectrum: empty angle range");
  for (const linalg::CMatrix* covariance : covariances) {
    MULINK_REQUIRE(
        covariance->rows() == num_ant && covariance->cols() == num_ant,
        "ComputeBartlettSpectrum: covariance/array size mismatch");
  }
  EnsureSteeringTable(array, band, config, ws);

  const std::size_t packed_size = kernels::PackedHermitianSize(num_ant);
  kernels::AlignedBuffer* const packed_bufs[2] = {&ws.packed_a, &ws.packed_b};
  const double* packed[2] = {nullptr, nullptr};
  double* powers[2] = {nullptr, nullptr};
  MULINK_ASSERT(covariances.size() <= 2);
  for (std::size_t c = 0; c < covariances.size(); ++c) {
    packed_bufs[c]->Ensure(packed_size);
    kernels::PackHermitian(covariances[c]->raw(), num_ant,
                           packed_bufs[c]->data());
    packed[c] = packed_bufs[c]->data();
    Pseudospectrum& out = *outs[c];
    // mulink-lint: allow(alloc): warm spectrum output
    out.theta_deg.resize(config.num_points);
    // mulink-lint: allow(alloc): warm spectrum output
    out.power.resize(config.num_points);
    std::memcpy(out.theta_deg.data(), ws.theta_grid_deg.data(),
                config.num_points * sizeof(double));
    powers[c] = out.power.data();
  }
  const double inv_norm = 1.0 / static_cast<double>(num_ant * num_ant);
  kernels::BartlettScan(ws.steer_re.data(), ws.steer_im.data(),
                        config.num_points, num_ant, packed, covariances.size(),
                        inv_norm, powers);
}

}  // namespace

void ComputeBartlettSpectrumInto(const linalg::CMatrix& covariance,
                                 const wifi::UniformLinearArray& array,
                                 const wifi::BandPlan& band,
                                 const MusicConfig& config, Pseudospectrum& out,
                                 MusicWorkspace& ws) {
  const linalg::CMatrix* const covariances[1] = {&covariance};
  Pseudospectrum* const outs[1] = {&out};
  BartlettScanInto(covariances, outs, array, band, config, ws);
}

void ComputeBartlettSpectraInto(const linalg::CMatrix& covariance_a,
                                const linalg::CMatrix& covariance_b,
                                const wifi::UniformLinearArray& array,
                                const wifi::BandPlan& band,
                                const MusicConfig& config,
                                Pseudospectrum& out_a, Pseudospectrum& out_b,
                                MusicWorkspace& ws) {
  const linalg::CMatrix* const covariances[2] = {&covariance_a, &covariance_b};
  Pseudospectrum* const outs[2] = {&out_a, &out_b};
  BartlettScanInto(covariances, outs, array, band, config, ws);
}

Pseudospectrum ComputeBartlettSpectrum(
    const std::vector<wifi::CsiPacket>& packets,
    const wifi::UniformLinearArray& array, const wifi::BandPlan& band,
    const MusicConfig& config, const std::vector<double>& weights) {
  return ComputeBartlettSpectrum(SampleCovariance(packets, weights), array,
                                 band, config);
}

Pseudospectrum ComputeMusicSpectrum(const std::vector<wifi::CsiPacket>& packets,
                                    const wifi::UniformLinearArray& array,
                                    const wifi::BandPlan& band,
                                    const MusicConfig& config,
                                    const std::vector<double>& weights) {
  return ComputeMusicSpectrum(SampleCovariance(packets, weights), array, band,
                              config);
}

double AngleFromPhaseShift(double delta_phi_rad) {
  const double ratio = std::clamp(delta_phi_rad / kPi, -1.0, 1.0);
  return std::asin(ratio);
}

double EstimateNewPathAngleDeg(const std::vector<wifi::CsiPacket>& window,
                               const linalg::CMatrix& static_covariance,
                               const wifi::UniformLinearArray& array,
                               const wifi::BandPlan& band) {
  const auto monitor_cov = SampleCovariance(window);
  MULINK_REQUIRE(static_covariance.rows() == monitor_cov.rows(),
                 "EstimateNewPathAngleDeg: covariance size mismatch");
  auto diff = monitor_cov - static_covariance;
  // The difference of two PSD matrices may be indefinite; shift by the
  // smallest eigenvalue so MUSIC sees a PSD matrix.
  const auto eig = linalg::HermitianEigen(diff);
  const double lambda_min = std::min(eig.values.front(), 0.0);
  for (std::size_t i = 0; i < diff.rows(); ++i) {
    diff.At(i, i) -= Complex(lambda_min, 0.0);
  }
  MusicConfig config;
  config.num_sources = 1;
  const auto spectrum = ComputeMusicSpectrum(diff, array, band, config);
  const auto peaks = spectrum.PeakAngles(1);
  return peaks.empty() ? 0.0 : peaks[0];
}

linalg::CMatrix SpatiallySmoothedCovariance(const linalg::CMatrix& covariance,
                                            std::size_t subarray_size) {
  const std::size_t m = covariance.rows();
  MULINK_REQUIRE(covariance.cols() == m,
                 "SpatiallySmoothedCovariance: covariance must be square");
  MULINK_REQUIRE(subarray_size >= 2 && subarray_size <= m,
                 "SpatiallySmoothedCovariance: subarray size must be in "
                 "[2, antennas]");
  const std::size_t num_subarrays = m - subarray_size + 1;

  // Forward smoothing: average the principal L x L blocks.
  linalg::CMatrix forward(subarray_size, subarray_size);
  for (std::size_t s = 0; s < num_subarrays; ++s) {
    for (std::size_t i = 0; i < subarray_size; ++i) {
      for (std::size_t j = 0; j < subarray_size; ++j) {
        forward.At(i, j) += covariance.At(s + i, s + j);
      }
    }
  }
  forward *= Complex(1.0 / static_cast<double>(num_subarrays), 0.0);

  // Backward smoothing: J * conj(R_f) * J (exchange-conjugate), averaged in.
  linalg::CMatrix smoothed(subarray_size, subarray_size);
  for (std::size_t i = 0; i < subarray_size; ++i) {
    for (std::size_t j = 0; j < subarray_size; ++j) {
      const Complex backward = std::conj(
          forward.At(subarray_size - 1 - i, subarray_size - 1 - j));
      smoothed.At(i, j) = 0.5 * (forward.At(i, j) + backward);
    }
  }
  return smoothed;
}

Pseudospectrum ComputeSmoothedMusicSpectrum(
    const std::vector<wifi::CsiPacket>& packets,
    const wifi::UniformLinearArray& array, const wifi::BandPlan& band,
    std::size_t subarray_size, const MusicConfig& config) {
  MULINK_REQUIRE(config.num_sources < subarray_size,
                 "ComputeSmoothedMusicSpectrum: num_sources must be < "
                 "subarray size");
  const auto full = SampleCovariance(packets);
  const auto smoothed = SpatiallySmoothedCovariance(full, subarray_size);
  const wifi::UniformLinearArray subarray(subarray_size, array.spacing_m(),
                                          array.axis_angle_rad());
  return ComputeMusicSpectrum(smoothed, subarray, band, config);
}

}  // namespace mulink::core
