#include "core/music.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "dsp/peaks.h"
#include "linalg/hermitian_eig.h"

namespace mulink::core {

std::vector<double> Pseudospectrum::PeakAngles(std::size_t max_peaks) const {
  dsp::PeakOptions options;
  options.max_peaks = max_peaks;
  // MUSIC peak heights span decades (1 / noise-subspace projection), so a
  // secondary path's peak can sit orders of magnitude below the primary's;
  // keep only a permissive floor to reject grid ripple.
  options.min_relative_height = 1e-6;
  options.min_relative_prominence = 1e-6;
  const auto peaks = dsp::FindPeaks(power, options);
  std::vector<double> angles;
  angles.reserve(peaks.size());
  for (const auto& p : peaks) angles.push_back(theta_deg[p.index]);
  return angles;
}

double Pseudospectrum::ValueAt(double angle_deg) const {
  MULINK_REQUIRE(!theta_deg.empty(), "Pseudospectrum::ValueAt: empty spectrum");
  std::size_t best = 0;
  double best_dist = std::abs(theta_deg[0] - angle_deg);
  for (std::size_t i = 1; i < theta_deg.size(); ++i) {
    const double d = std::abs(theta_deg[i] - angle_deg);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return power[best];
}

Pseudospectrum Pseudospectrum::Normalized() const {
  double norm_sq = 0.0;
  for (double v : power) norm_sq += v * v;
  Pseudospectrum out = *this;
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& v : out.power) v *= inv;
  }
  return out;
}

Pseudospectrum Pseudospectrum::Smoothed(double sigma_deg) const {
  MULINK_REQUIRE(sigma_deg > 0.0, "Smoothed: sigma must be > 0");
  MULINK_REQUIRE(theta_deg.size() >= 2, "Smoothed: need >= 2 grid points");
  const double step = theta_deg[1] - theta_deg[0];
  const double sigma_pts = sigma_deg / step;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma_pts)));

  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double kernel_sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (i / sigma_pts) * (i / sigma_pts));
    kernel[static_cast<std::size_t>(i + radius)] = v;
    kernel_sum += v;
  }
  for (auto& v : kernel) v /= kernel_sum;

  Pseudospectrum out = *this;
  const int n = static_cast<int>(power.size());
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = -radius; j <= radius; ++j) {
      const int idx = std::clamp(i + j, 0, n - 1);  // replicate edges
      acc += kernel[static_cast<std::size_t>(j + radius)] *
             power[static_cast<std::size_t>(idx)];
    }
    out.power[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

linalg::CMatrix SampleCovariance(const std::vector<wifi::CsiPacket>& packets,
                                 const std::vector<double>& weights) {
  MULINK_REQUIRE(!packets.empty(), "SampleCovariance: need >= 1 packet");
  const std::size_t num_ant = packets[0].NumAntennas();
  const std::size_t num_sc = packets[0].NumSubcarriers();
  MULINK_REQUIRE(num_ant >= 2, "SampleCovariance: need >= 2 antennas");
  MULINK_REQUIRE(weights.empty() || weights.size() == num_sc,
                 "SampleCovariance: weights size mismatch");

  linalg::CMatrix r(num_ant, num_ant);
  double total_weight = 0.0;
  std::vector<Complex> x(num_ant);
  for (const auto& packet : packets) {
    MULINK_REQUIRE(packet.NumAntennas() == num_ant &&
                       packet.NumSubcarriers() == num_sc,
                   "SampleCovariance: inconsistent packet dimensions");
    for (std::size_t k = 0; k < num_sc; ++k) {
      const double w = weights.empty() ? 1.0 : weights[k];
      if (w <= 0.0) continue;
      for (std::size_t m = 0; m < num_ant; ++m) x[m] = packet.csi.At(m, k);
      for (std::size_t i = 0; i < num_ant; ++i) {
        for (std::size_t j = 0; j < num_ant; ++j) {
          r.At(i, j) += w * x[i] * std::conj(x[j]);
        }
      }
      total_weight += w;
    }
  }
  MULINK_REQUIRE(total_weight > 0.0, "SampleCovariance: all weights are zero");
  r *= Complex(1.0 / total_weight, 0.0);
  return r;
}

Pseudospectrum ComputeMusicSpectrum(const linalg::CMatrix& covariance,
                                    const wifi::UniformLinearArray& array,
                                    const wifi::BandPlan& band,
                                    const MusicConfig& config) {
  const std::size_t num_ant = array.num_antennas();
  MULINK_REQUIRE(covariance.rows() == num_ant && covariance.cols() == num_ant,
                 "ComputeMusicSpectrum: covariance/array size mismatch");
  MULINK_REQUIRE(config.num_sources >= 1 && config.num_sources < num_ant,
                 "ComputeMusicSpectrum: num_sources must be in [1, antennas)");
  MULINK_REQUIRE(config.num_points >= 3,
                 "ComputeMusicSpectrum: need >= 3 grid points");
  MULINK_REQUIRE(config.theta_max_deg > config.theta_min_deg,
                 "ComputeMusicSpectrum: empty angle range");

  const auto eig = linalg::HermitianEigen(covariance);
  // Noise subspace: eigenvectors of the smallest (num_ant - num_sources)
  // eigenvalues (HermitianEigen sorts ascending).
  const std::size_t noise_dim = num_ant - config.num_sources;

  Pseudospectrum spectrum;
  spectrum.theta_deg.resize(config.num_points);
  spectrum.power.resize(config.num_points);

  for (std::size_t i = 0; i < config.num_points; ++i) {
    const double frac = static_cast<double>(i) /
                        static_cast<double>(config.num_points - 1);
    const double theta_deg =
        config.theta_min_deg + frac * (config.theta_max_deg - config.theta_min_deg);
    const double theta = DegToRad(theta_deg);
    const auto steering = array.SteeringVector(theta, band.center_hz());

    // ||E_n^H a||^2 = sum over noise eigenvectors of |<e, a>|^2.
    double denom = 0.0;
    for (std::size_t n = 0; n < noise_dim; ++n) {
      const auto e = eig.Vector(n);
      denom += std::norm(linalg::Dot(e, steering));
    }
    spectrum.theta_deg[i] = theta_deg;
    spectrum.power[i] = 1.0 / std::max(denom, 1e-12);
  }
  return spectrum;
}

Pseudospectrum ComputeBartlettSpectrum(const linalg::CMatrix& covariance,
                                       const wifi::UniformLinearArray& array,
                                       const wifi::BandPlan& band,
                                       const MusicConfig& config) {
  const std::size_t num_ant = array.num_antennas();
  MULINK_REQUIRE(covariance.rows() == num_ant && covariance.cols() == num_ant,
                 "ComputeBartlettSpectrum: covariance/array size mismatch");
  MULINK_REQUIRE(config.num_points >= 3,
                 "ComputeBartlettSpectrum: need >= 3 grid points");
  MULINK_REQUIRE(config.theta_max_deg > config.theta_min_deg,
                 "ComputeBartlettSpectrum: empty angle range");

  Pseudospectrum spectrum;
  spectrum.theta_deg.resize(config.num_points);
  spectrum.power.resize(config.num_points);
  for (std::size_t i = 0; i < config.num_points; ++i) {
    const double frac = static_cast<double>(i) /
                        static_cast<double>(config.num_points - 1);
    const double theta_deg =
        config.theta_min_deg +
        frac * (config.theta_max_deg - config.theta_min_deg);
    const auto a = array.SteeringVector(DegToRad(theta_deg), band.center_hz());
    // a^H R a — real and non-negative for Hermitian PSD R.
    const auto ra = covariance.Apply(a);
    const double value = linalg::Dot(a, ra).real() /
                         static_cast<double>(num_ant * num_ant);
    spectrum.theta_deg[i] = theta_deg;
    spectrum.power[i] = std::max(value, 0.0);
  }
  return spectrum;
}

Pseudospectrum ComputeBartlettSpectrum(
    const std::vector<wifi::CsiPacket>& packets,
    const wifi::UniformLinearArray& array, const wifi::BandPlan& band,
    const MusicConfig& config, const std::vector<double>& weights) {
  return ComputeBartlettSpectrum(SampleCovariance(packets, weights), array,
                                 band, config);
}

Pseudospectrum ComputeMusicSpectrum(const std::vector<wifi::CsiPacket>& packets,
                                    const wifi::UniformLinearArray& array,
                                    const wifi::BandPlan& band,
                                    const MusicConfig& config,
                                    const std::vector<double>& weights) {
  return ComputeMusicSpectrum(SampleCovariance(packets, weights), array, band,
                              config);
}

double AngleFromPhaseShift(double delta_phi_rad) {
  const double ratio = std::clamp(delta_phi_rad / kPi, -1.0, 1.0);
  return std::asin(ratio);
}

double EstimateNewPathAngleDeg(const std::vector<wifi::CsiPacket>& window,
                               const linalg::CMatrix& static_covariance,
                               const wifi::UniformLinearArray& array,
                               const wifi::BandPlan& band) {
  const auto monitor_cov = SampleCovariance(window);
  MULINK_REQUIRE(static_covariance.rows() == monitor_cov.rows(),
                 "EstimateNewPathAngleDeg: covariance size mismatch");
  auto diff = monitor_cov - static_covariance;
  // The difference of two PSD matrices may be indefinite; shift by the
  // smallest eigenvalue so MUSIC sees a PSD matrix.
  const auto eig = linalg::HermitianEigen(diff);
  const double lambda_min = std::min(eig.values.front(), 0.0);
  for (std::size_t i = 0; i < diff.rows(); ++i) {
    diff.At(i, i) -= Complex(lambda_min, 0.0);
  }
  MusicConfig config;
  config.num_sources = 1;
  const auto spectrum = ComputeMusicSpectrum(diff, array, band, config);
  const auto peaks = spectrum.PeakAngles(1);
  return peaks.empty() ? 0.0 : peaks[0];
}

linalg::CMatrix SpatiallySmoothedCovariance(const linalg::CMatrix& covariance,
                                            std::size_t subarray_size) {
  const std::size_t m = covariance.rows();
  MULINK_REQUIRE(covariance.cols() == m,
                 "SpatiallySmoothedCovariance: covariance must be square");
  MULINK_REQUIRE(subarray_size >= 2 && subarray_size <= m,
                 "SpatiallySmoothedCovariance: subarray size must be in "
                 "[2, antennas]");
  const std::size_t num_subarrays = m - subarray_size + 1;

  // Forward smoothing: average the principal L x L blocks.
  linalg::CMatrix forward(subarray_size, subarray_size);
  for (std::size_t s = 0; s < num_subarrays; ++s) {
    for (std::size_t i = 0; i < subarray_size; ++i) {
      for (std::size_t j = 0; j < subarray_size; ++j) {
        forward.At(i, j) += covariance.At(s + i, s + j);
      }
    }
  }
  forward *= Complex(1.0 / static_cast<double>(num_subarrays), 0.0);

  // Backward smoothing: J * conj(R_f) * J (exchange-conjugate), averaged in.
  linalg::CMatrix smoothed(subarray_size, subarray_size);
  for (std::size_t i = 0; i < subarray_size; ++i) {
    for (std::size_t j = 0; j < subarray_size; ++j) {
      const Complex backward = std::conj(
          forward.At(subarray_size - 1 - i, subarray_size - 1 - j));
      smoothed.At(i, j) = 0.5 * (forward.At(i, j) + backward);
    }
  }
  return smoothed;
}

Pseudospectrum ComputeSmoothedMusicSpectrum(
    const std::vector<wifi::CsiPacket>& packets,
    const wifi::UniformLinearArray& array, const wifi::BandPlan& band,
    std::size_t subarray_size, const MusicConfig& config) {
  MULINK_REQUIRE(config.num_sources < subarray_size,
                 "ComputeSmoothedMusicSpectrum: num_sources must be < "
                 "subarray size");
  const auto full = SampleCovariance(packets);
  const auto smoothed = SpatiallySmoothedCovariance(full, subarray_size);
  const wifi::UniformLinearArray subarray(subarray_size, array.spacing_m(),
                                          array.axis_angle_rad());
  return ComputeMusicSpectrum(smoothed, subarray, band, config);
}

}  // namespace mulink::core
