#include "core/fade_level.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mulink::core {

namespace {

double PredictedPower(const FadeLevelModel& model, double distance_m,
                      double freq_hz) {
  return model.tx_power_scale * model.friis.PowerGain(distance_m, freq_hz);
}

}  // namespace

double MeasureFadeLevel(const wifi::CsiPacket& packet,
                        const wifi::BandPlan& band, double distance_m,
                        const FadeLevelModel& model) {
  MULINK_REQUIRE(distance_m > 0.0, "MeasureFadeLevel: distance must be > 0");
  MULINK_REQUIRE(packet.NumSubcarriers() == band.NumSubcarriers(),
                 "MeasureFadeLevel: packet/band subcarrier mismatch");
  double measured = 0.0, predicted = 0.0;
  for (std::size_t m = 0; m < packet.NumAntennas(); ++m) {
    for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
      measured += packet.SubcarrierPower(m, k);
      predicted += PredictedPower(model, distance_m, band.FrequencyHz(k));
    }
  }
  MULINK_REQUIRE(predicted > 0.0, "MeasureFadeLevel: model predicts no power");
  constexpr double kFloor = 1e-30;
  return 10.0 * std::log10(std::max(measured, kFloor) / predicted);
}

std::vector<double> MeasureFadeLevelPerSubcarrier(
    const wifi::CsiPacket& packet, const wifi::BandPlan& band,
    double distance_m, const FadeLevelModel& model) {
  MULINK_REQUIRE(distance_m > 0.0,
                 "MeasureFadeLevelPerSubcarrier: distance must be > 0");
  MULINK_REQUIRE(packet.NumSubcarriers() == band.NumSubcarriers(),
                 "MeasureFadeLevelPerSubcarrier: subcarrier mismatch");
  std::vector<double> fade(band.NumSubcarriers());
  constexpr double kFloor = 1e-30;
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) {
    double measured = 0.0;
    for (std::size_t m = 0; m < packet.NumAntennas(); ++m) {
      measured += packet.SubcarrierPower(m, k);
    }
    measured /= static_cast<double>(packet.NumAntennas());
    const double predicted =
        PredictedPower(model, distance_m, band.FrequencyHz(k));
    fade[k] = 10.0 * std::log10(std::max(measured, kFloor) /
                                std::max(predicted, kFloor));
  }
  return fade;
}

std::size_t MostFadedSubcarrier(const wifi::CsiPacket& packet,
                                const wifi::BandPlan& band, double distance_m,
                                const FadeLevelModel& model) {
  const auto fade = MeasureFadeLevelPerSubcarrier(packet, band, distance_m,
                                                  model);
  return static_cast<std::size_t>(
      std::min_element(fade.begin(), fade.end()) - fade.begin());
}

}  // namespace mulink::core
