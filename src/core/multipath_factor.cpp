#include "core/multipath_factor.h"

#include <cmath>

#include "common/assert.h"
#include "dsp/delay_domain.h"
#include "kernels/kernels.h"

namespace mulink::core {

namespace {

// (Re)build the cached LOS fractions when the band fingerprint changes.
// The fractions are produced by the same sequential ops as
// EstimateLosPower's inv_f2 pass, so factors computed from the cache match
// the allocating path bit-for-bit.
void EnsureLosFractions(const wifi::BandPlan& band, MultipathScratch& scratch) {
  const std::size_t num_sc = band.NumSubcarriers();
  const bool stale = scratch.los_frac.size() != num_sc ||
                     scratch.band_center_hz != band.center_hz() ||
                     scratch.band_spacing_hz != band.spacing_hz() ||
                     scratch.band_indices != band.indices();
  if (!stale) return;
  // mulink-lint: allow(alloc): band-fingerprint cache rebuild, cold
  scratch.los_frac.resize(num_sc);
  double inv_f2_sum = 0.0;
  for (std::size_t k = 0; k < num_sc; ++k) {
    const double f = band.FrequencyHz(k);
    scratch.los_frac[k] = 1.0 / (f * f);
    inv_f2_sum += scratch.los_frac[k];
  }
  for (std::size_t k = 0; k < num_sc; ++k) {
    scratch.los_frac[k] /= inv_f2_sum;
  }
  scratch.band_center_hz = band.center_hz();
  scratch.band_spacing_hz = band.spacing_hz();
  scratch.band_indices = band.indices();  // allow(alloc): cache rebuild, cold
}

}  // namespace

std::vector<double> EstimateLosPower(const std::vector<Complex>& cfr,
                                     const wifi::BandPlan& band) {
  MULINK_REQUIRE(cfr.size() == band.NumSubcarriers(),
                 "EstimateLosPower: CFR/band size mismatch");
  const double dominant = dsp::DominantTapPower(cfr);

  double inv_f2_sum = 0.0;
  std::vector<double> inv_f2(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    const double f = band.FrequencyHz(k);
    inv_f2[k] = 1.0 / (f * f);
    inv_f2_sum += inv_f2[k];
  }

  std::vector<double> los(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    los[k] = inv_f2[k] / inv_f2_sum * dominant;
  }
  return los;
}

std::vector<double> MeasureMultipathFactors(const std::vector<Complex>& cfr,
                                            const wifi::BandPlan& band) {
  const auto los = EstimateLosPower(cfr, band);
  std::vector<double> mu(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    const double power = std::norm(cfr[k]);
    mu[k] = power > 0.0 ? los[k] / power : 0.0;
  }
  return mu;
}

std::vector<double> MeasureMultipathFactors(const wifi::CsiPacket& packet,
                                            const wifi::BandPlan& band) {
  std::vector<double> avg;
  MultipathScratch scratch;
  MeasureMultipathFactorsInto(packet, band, avg, scratch);
  return avg;
}

void MeasureMultipathFactorsInto(const wifi::CsiPacket& packet,
                                 const wifi::BandPlan& band,
                                 std::vector<double>& out,
                                 MultipathScratch& scratch) {
  MULINK_REQUIRE(packet.NumAntennas() >= 1,
                 "MeasureMultipathFactors: packet has no antennas");
  const std::size_t num_sc = packet.NumSubcarriers();
  MULINK_REQUIRE(num_sc == band.NumSubcarriers(),
                 "MeasureMultipathFactors: packet/band size mismatch");
  // mulink-lint: allow(alloc): warm output; no realloc once sized
  out.assign(num_sc, 0.0);
  EnsureLosFractions(band, scratch);
  const Complex* csi = packet.csi.raw();
  for (std::size_t m = 0; m < packet.NumAntennas(); ++m) {
    const Complex* row = csi + m * num_sc;
    // Eq. 10/11 with the cached LOS fractions: the per-antenna work is one
    // dominant-tap mean plus the vectorized mu accumulation. The kernel's
    // (los_frac * dominant) / power matches the historical
    // (inv_f2/sum) * dominant then /power evaluation order exactly.
    const double dominant =
        dsp::DominantTapPower(std::span<const Complex>(row, num_sc));
    kernels::MuAccumulateRow(row, scratch.los_frac.data(), dominant, num_sc,
                             out.data());
  }
  for (auto& v : out) v /= static_cast<double>(packet.NumAntennas());
}

std::vector<std::vector<double>> MeasureMultipathFactors(
    const std::vector<wifi::CsiPacket>& packets, const wifi::BandPlan& band) {
  std::vector<std::vector<double>> out;
  MultipathScratch scratch;
  MeasureMultipathFactorsInto(packets, band, out, scratch);
  return out;
}

void MeasureMultipathFactorsInto(std::span<const wifi::CsiPacket> packets,
                                 const wifi::BandPlan& band,
                                 std::vector<std::vector<double>>& out,
                                 MultipathScratch& scratch) {
  // mulink-lint: allow(alloc): warm per-packet output rows
  out.resize(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    MeasureMultipathFactorsInto(packets[i], band, out[i], scratch);
  }
}

}  // namespace mulink::core
