#include "core/multipath_factor.h"

#include <cmath>

#include "common/assert.h"
#include "dsp/delay_domain.h"

namespace mulink::core {

std::vector<double> EstimateLosPower(const std::vector<Complex>& cfr,
                                     const wifi::BandPlan& band) {
  MULINK_REQUIRE(cfr.size() == band.NumSubcarriers(),
                 "EstimateLosPower: CFR/band size mismatch");
  const double dominant = dsp::DominantTapPower(cfr);

  double inv_f2_sum = 0.0;
  std::vector<double> inv_f2(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    const double f = band.FrequencyHz(k);
    inv_f2[k] = 1.0 / (f * f);
    inv_f2_sum += inv_f2[k];
  }

  std::vector<double> los(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    los[k] = inv_f2[k] / inv_f2_sum * dominant;
  }
  return los;
}

std::vector<double> MeasureMultipathFactors(const std::vector<Complex>& cfr,
                                            const wifi::BandPlan& band) {
  const auto los = EstimateLosPower(cfr, band);
  std::vector<double> mu(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    const double power = std::norm(cfr[k]);
    mu[k] = power > 0.0 ? los[k] / power : 0.0;
  }
  return mu;
}

std::vector<double> MeasureMultipathFactors(const wifi::CsiPacket& packet,
                                            const wifi::BandPlan& band) {
  MULINK_REQUIRE(packet.NumAntennas() >= 1,
                 "MeasureMultipathFactors: packet has no antennas");
  std::vector<double> avg(packet.NumSubcarriers(), 0.0);
  for (std::size_t m = 0; m < packet.NumAntennas(); ++m) {
    const auto mu = MeasureMultipathFactors(packet.AntennaCfr(m), band);
    for (std::size_t k = 0; k < mu.size(); ++k) avg[k] += mu[k];
  }
  for (auto& v : avg) v /= static_cast<double>(packet.NumAntennas());
  return avg;
}

std::vector<std::vector<double>> MeasureMultipathFactors(
    const std::vector<wifi::CsiPacket>& packets, const wifi::BandPlan& band) {
  std::vector<std::vector<double>> out;
  out.reserve(packets.size());
  for (const auto& p : packets) {
    out.push_back(MeasureMultipathFactors(p, band));
  }
  return out;
}

}  // namespace mulink::core
