#include "core/multipath_factor.h"

#include <cmath>

#include "common/assert.h"
#include "dsp/delay_domain.h"

namespace mulink::core {

std::vector<double> EstimateLosPower(const std::vector<Complex>& cfr,
                                     const wifi::BandPlan& band) {
  MULINK_REQUIRE(cfr.size() == band.NumSubcarriers(),
                 "EstimateLosPower: CFR/band size mismatch");
  const double dominant = dsp::DominantTapPower(cfr);

  double inv_f2_sum = 0.0;
  std::vector<double> inv_f2(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    const double f = band.FrequencyHz(k);
    inv_f2[k] = 1.0 / (f * f);
    inv_f2_sum += inv_f2[k];
  }

  std::vector<double> los(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    los[k] = inv_f2[k] / inv_f2_sum * dominant;
  }
  return los;
}

std::vector<double> MeasureMultipathFactors(const std::vector<Complex>& cfr,
                                            const wifi::BandPlan& band) {
  const auto los = EstimateLosPower(cfr, band);
  std::vector<double> mu(cfr.size());
  for (std::size_t k = 0; k < cfr.size(); ++k) {
    const double power = std::norm(cfr[k]);
    mu[k] = power > 0.0 ? los[k] / power : 0.0;
  }
  return mu;
}

std::vector<double> MeasureMultipathFactors(const wifi::CsiPacket& packet,
                                            const wifi::BandPlan& band) {
  std::vector<double> avg;
  MultipathScratch scratch;
  MeasureMultipathFactorsInto(packet, band, avg, scratch);
  return avg;
}

void MeasureMultipathFactorsInto(const wifi::CsiPacket& packet,
                                 const wifi::BandPlan& band,
                                 std::vector<double>& out,
                                 MultipathScratch& scratch) {
  MULINK_REQUIRE(packet.NumAntennas() >= 1,
                 "MeasureMultipathFactors: packet has no antennas");
  const std::size_t num_sc = packet.NumSubcarriers();
  MULINK_REQUIRE(num_sc == band.NumSubcarriers(),
                 "MeasureMultipathFactors: packet/band size mismatch");
  // mulink-lint: allow(alloc): warm output; no realloc once sized
  out.assign(num_sc, 0.0);
  scratch.cfr.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  scratch.inv_f2.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  scratch.los.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  scratch.mu.resize(num_sc);  // mulink-lint: allow(alloc): warm scratch
  const Complex* csi = packet.csi.raw();
  for (std::size_t m = 0; m < packet.NumAntennas(); ++m) {
    const Complex* row = csi + m * num_sc;
    for (std::size_t k = 0; k < num_sc; ++k) scratch.cfr[k] = row[k];

    // Inlined EstimateLosPower on the scratch buffers (same operations,
    // same order as the allocating path).
    const double dominant = dsp::DominantTapPower(scratch.cfr);
    double inv_f2_sum = 0.0;
    for (std::size_t k = 0; k < num_sc; ++k) {
      const double f = band.FrequencyHz(k);
      scratch.inv_f2[k] = 1.0 / (f * f);
      inv_f2_sum += scratch.inv_f2[k];
    }
    for (std::size_t k = 0; k < num_sc; ++k) {
      scratch.los[k] = scratch.inv_f2[k] / inv_f2_sum * dominant;
    }
    for (std::size_t k = 0; k < num_sc; ++k) {
      const double power = std::norm(scratch.cfr[k]);
      scratch.mu[k] = power > 0.0 ? scratch.los[k] / power : 0.0;
    }
    for (std::size_t k = 0; k < num_sc; ++k) out[k] += scratch.mu[k];
  }
  for (auto& v : out) v /= static_cast<double>(packet.NumAntennas());
}

std::vector<std::vector<double>> MeasureMultipathFactors(
    const std::vector<wifi::CsiPacket>& packets, const wifi::BandPlan& band) {
  std::vector<std::vector<double>> out;
  MultipathScratch scratch;
  MeasureMultipathFactorsInto(packets, band, out, scratch);
  return out;
}

void MeasureMultipathFactorsInto(std::span<const wifi::CsiPacket> packets,
                                 const wifi::BandPlan& band,
                                 std::vector<std::vector<double>>& out,
                                 MultipathScratch& scratch) {
  // mulink-lint: allow(alloc): warm per-packet output rows
  out.resize(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    MeasureMultipathFactorsInto(packets[i], band, out[i], scratch);
  }
}

}  // namespace mulink::core
