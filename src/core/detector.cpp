#include "core/detector.h"

#include <algorithm>

#include <atomic>
#include <bit>
#include <cmath>

#include "common/assert.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "kernels/kernels.h"
#include "linalg/hermitian_eig.h"

namespace mulink::core {

namespace {

// Process-unique profile versions: every (re)build of a detector's retained
// calibration set gets a fresh value, so a DetectorScratch shared across
// detector instances never reuses a stale covariance stack.
std::uint64_t NextProfileVersion() {
  static std::atomic<std::uint64_t> counter{0};
  // Relaxed is sufficient (and what the analyzer's atomics rule demands be
  // said out loud): the value is only used for uniqueness, never to order
  // other memory.
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

const char* ToString(DetectionScheme scheme) {
  switch (scheme) {
    case DetectionScheme::kBaseline:
      return "baseline";
    case DetectionScheme::kSubcarrierWeighting:
      return "subcarrier-weighting";
    case DetectionScheme::kSubcarrierAndPathWeighting:
      return "subcarrier+path-weighting";
    case DetectionScheme::kVarianceMobile:
      return "variance-mobile";
  }
  return "unknown";
}

Detector::Detector(const wifi::BandPlan& band,
                   const wifi::UniformLinearArray& array,
                   const DetectorConfig& config)
    : band_(band), array_(array), config_(config) {}

Detector Detector::Calibrate(const std::vector<wifi::CsiPacket>& empty_session,
                             const wifi::BandPlan& band,
                             const wifi::UniformLinearArray& array,
                             const DetectorConfig& config) {
  MULINK_REQUIRE(empty_session.size() >= 2,
                 "Detector::Calibrate: need >= 2 calibration packets");
  const std::size_t num_ant = empty_session[0].NumAntennas();
  const std::size_t num_sc = empty_session[0].NumSubcarriers();
  MULINK_REQUIRE(num_sc == band.NumSubcarriers(),
                 "Detector::Calibrate: packet/band subcarrier mismatch");
  MULINK_REQUIRE(num_ant == array.num_antennas(),
                 "Detector::Calibrate: packet/array antenna mismatch");
  if (config.scheme == DetectionScheme::kSubcarrierAndPathWeighting) {
    MULINK_REQUIRE(num_ant >= 2,
                   "Detector::Calibrate: combined scheme needs >= 2 antennas");
  }

  Detector d(band, array, config);
  d.num_antennas_ = num_ant;
  d.num_subcarriers_ = num_sc;

  const auto sanitized = SanitizePhase(empty_session, band);

  // Static power/amplitude profile s(0).
  // mulink-lint: allow(alloc): calibration path
  d.profile_power_.assign(num_ant, std::vector<double>(num_sc, 0.0));
  // mulink-lint: allow(alloc): calibration path
  d.profile_amplitude_.assign(num_ant, std::vector<double>(num_sc, 0.0));
  for (const auto& packet : sanitized) {
    for (std::size_t m = 0; m < num_ant; ++m) {
      for (std::size_t k = 0; k < num_sc; ++k) {
        const double p = packet.SubcarrierPower(m, k);
        d.profile_power_[m][k] += p;
        d.profile_amplitude_[m][k] += std::sqrt(p);
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(sanitized.size());
  double power_sum = 0.0, amp_sum = 0.0;
  for (std::size_t m = 0; m < num_ant; ++m) {
    for (std::size_t k = 0; k < num_sc; ++k) {
      d.profile_power_[m][k] *= inv_n;
      d.profile_amplitude_[m][k] *= inv_n;
      power_sum += d.profile_power_[m][k];
      amp_sum += d.profile_amplitude_[m][k];
    }
  }
  // Empty-room temporal variance per (antenna, subcarrier) — the noise/
  // dynamics floor the mobile-target variance statistic must exceed.
  // mulink-lint: allow(alloc): calibration path
  d.profile_variance_.assign(num_ant, std::vector<double>(num_sc, 0.0));
  for (const auto& packet : sanitized) {
    for (std::size_t m = 0; m < num_ant; ++m) {
      for (std::size_t k = 0; k < num_sc; ++k) {
        const double diff =
            packet.SubcarrierPower(m, k) - d.profile_power_[m][k];
        d.profile_variance_[m][k] += diff * diff;
      }
    }
  }
  for (std::size_t m = 0; m < num_ant; ++m) {
    for (std::size_t k = 0; k < num_sc; ++k) {
      d.profile_variance_[m][k] *= inv_n;
    }
  }

  d.profile_scale_power_ = power_sum / static_cast<double>(num_ant * num_sc);
  d.profile_scale_amplitude_ = amp_sum / static_cast<double>(num_ant * num_sc);
  MULINK_REQUIRE(d.profile_scale_power_ > 0.0,
                 "Detector::Calibrate: calibration session has no power");

  // Retain an even subsample of sanitized packets for monitoring-time
  // re-weighted pseudospectrum computation.
  const std::size_t keep =
      std::min(config.retained_calibration_packets, sanitized.size());
  // mulink-lint: allow(alloc): calibration path
  d.retained_calibration_.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const std::size_t idx = i * sanitized.size() / keep;
    // mulink-lint: allow(alloc): calibration path
    d.retained_calibration_.push_back(sanitized[idx]);
  }
  d.profile_version_ = NextProfileVersion();
  d.profile_epoch_ = NextProfileVersion();

  // Static pseudospectrum and Eq. 17 path weights (combined scheme only
  // needs them, but they are cheap and useful introspection for all).
  if (num_ant >= 2) {
    d.static_spectrum_ =
        ComputeMusicSpectrum(d.retained_calibration_, array, band,
                             config.music)
            .Smoothed(config.spectrum_smoothing_deg);
    d.path_weights_ =
        ComputePathWeights(d.static_spectrum_, config.path_weighting);
  }
  return d;
}

double Detector::Score(const std::vector<wifi::CsiPacket>& window) const {
  DetectorScratch scratch;
  return Score(std::span<const wifi::CsiPacket>(window), scratch);
}

double Detector::Score(std::span<const wifi::CsiPacket> window,
                       DetectorScratch& scratch) const {
  MULINK_REQUIRE(!window.empty(), "Detector::Score: empty window");
  MULINK_REQUIRE(window[0].NumAntennas() == num_antennas_ &&
                     window[0].NumSubcarriers() == num_subcarriers_,
                 "Detector::Score: window dimensions mismatch calibration");
  MULINK_OBS_COUNT(scratch.metrics, kWindowsScored);
  if (config_.scheme == DetectionScheme::kBaseline) {
    MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kScore);
    return ScoreBaseline(window, FullAntennaMask());
  }
  {
    MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kIngestSanitize);
    SanitizePhaseInto(window, band_, scratch.sanitized, scratch.sanitize);
  }
  return DispatchSanitized(std::span<const wifi::CsiPacket>(scratch.sanitized),
                           scratch, nullptr);
}

double Detector::ScoreSanitized(std::span<const wifi::CsiPacket> window,
                                DetectorScratch& scratch) const {
  MULINK_REQUIRE(!window.empty(), "Detector::ScoreSanitized: empty window");
  MULINK_REQUIRE(
      window[0].NumAntennas() == num_antennas_ &&
          window[0].NumSubcarriers() == num_subcarriers_,
      "Detector::ScoreSanitized: window dimensions mismatch calibration");
  MULINK_OBS_COUNT(scratch.metrics, kWindowsScored);
  if (config_.scheme == DetectionScheme::kBaseline) {
    MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kScore);
    return ScoreBaseline(window, FullAntennaMask());
  }
  return DispatchSanitized(window, scratch, nullptr);
}

double Detector::ScoreSanitizedPrepared(
    std::span<const wifi::CsiPacket> window,
    const PreparedWindowFactors& factors, DetectorScratch& scratch) const {
  // With ingest-split slabs the combined scheme never touches the window
  // packets, so the caller may pass an empty window span.
  const bool slab_window =
      window.empty() && !factors.csi_slabs.empty() &&
      config_.scheme == DetectionScheme::kSubcarrierAndPathWeighting;
  const std::size_t window_packets =
      slab_window ? factors.csi_slabs.size() : window.size();
  MULINK_REQUIRE(window_packets > 0,
                 "Detector::ScoreSanitizedPrepared: empty window");
  MULINK_REQUIRE(slab_window ||
                     (window[0].NumAntennas() == num_antennas_ &&
                      window[0].NumSubcarriers() == num_subcarriers_),
                 "Detector::ScoreSanitizedPrepared: window dimensions "
                 "mismatch calibration");
  MULINK_REQUIRE(factors.mu_rows.size() == window_packets &&
                     factors.medians.size() == window_packets,
                 "Detector::ScoreSanitizedPrepared: factors/window size "
                 "mismatch");
  MULINK_OBS_COUNT(scratch.metrics, kWindowsScored);
  if (config_.scheme == DetectionScheme::kBaseline) {
    MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kScore);
    return ScoreBaseline(window, FullAntennaMask());
  }
  return DispatchSanitized(window, scratch, &factors);
}

std::uint32_t Detector::FullAntennaMask() const {
  return num_antennas_ >= 32 ? 0xffffffffu
                             : ((1u << num_antennas_) - 1u);
}

double Detector::ScoreDegraded(std::span<const wifi::CsiPacket> window,
                               DetectorScratch& scratch,
                               std::uint32_t live_mask) const {
  MULINK_REQUIRE(!window.empty(), "Detector::ScoreDegraded: empty window");
  MULINK_REQUIRE(window[0].NumAntennas() == num_antennas_ &&
                     window[0].NumSubcarriers() == num_subcarriers_,
                 "Detector::ScoreDegraded: window dimensions mismatch "
                 "calibration");
  MULINK_REQUIRE((live_mask & FullAntennaMask()) != 0,
                 "Detector::ScoreDegraded: no live antennas");
  MULINK_OBS_COUNT(scratch.metrics, kWindowsScored);
  if (config_.scheme == DetectionScheme::kBaseline) {
    MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kScore);
    return ScoreBaseline(window, live_mask);
  }
  {
    MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kIngestSanitize);
    SanitizePhaseInto(window, band_, scratch.sanitized, scratch.sanitize);
  }
  return DispatchSanitizedDegraded(
      std::span<const wifi::CsiPacket>(scratch.sanitized), scratch,
      live_mask);
}

double Detector::ScoreSanitizedDegraded(
    std::span<const wifi::CsiPacket> window, DetectorScratch& scratch,
    std::uint32_t live_mask) const {
  MULINK_REQUIRE(!window.empty(),
                 "Detector::ScoreSanitizedDegraded: empty window");
  MULINK_REQUIRE(window[0].NumAntennas() == num_antennas_ &&
                     window[0].NumSubcarriers() == num_subcarriers_,
                 "Detector::ScoreSanitizedDegraded: window dimensions "
                 "mismatch calibration");
  MULINK_REQUIRE((live_mask & FullAntennaMask()) != 0,
                 "Detector::ScoreSanitizedDegraded: no live antennas");
  MULINK_OBS_COUNT(scratch.metrics, kWindowsScored);
  if (config_.scheme == DetectionScheme::kBaseline) {
    MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kScore);
    return ScoreBaseline(window, live_mask);
  }
  return DispatchSanitizedDegraded(window, scratch, live_mask);
}

double Detector::DispatchSanitizedDegraded(
    std::span<const wifi::CsiPacket> sanitized, DetectorScratch& scratch,
    std::uint32_t live_mask) const {
  switch (config_.scheme) {
    case DetectionScheme::kBaseline:
      break;  // handled by the callers above
    case DetectionScheme::kSubcarrierWeighting:
      return ScoreSubcarrierWeighting(sanitized, scratch, live_mask, nullptr);
    case DetectionScheme::kSubcarrierAndPathWeighting:
      // MUSIC needs the full 3-element ULA; with a dead chain the angular
      // statistic is meaningless, so fall back to subcarrier-only
      // weighting over the live rows (decisions use fallback_threshold()).
      return ScoreSubcarrierWeighting(sanitized, scratch, live_mask, nullptr);
    case DetectionScheme::kVarianceMobile:
      return ScoreVarianceMobile(sanitized, scratch, live_mask, nullptr);
  }
  return 0.0;
}

double Detector::DispatchSanitized(std::span<const wifi::CsiPacket> sanitized,
                                   DetectorScratch& scratch,
                                   const PreparedWindowFactors* prepared)
    const {
  switch (config_.scheme) {
    case DetectionScheme::kBaseline:
      break;  // handled by the callers above
    case DetectionScheme::kSubcarrierWeighting:
      return ScoreSubcarrierWeighting(sanitized, scratch, FullAntennaMask(),
                                      prepared);
    case DetectionScheme::kSubcarrierAndPathWeighting:
      return ScoreCombined(sanitized, scratch, prepared);
    case DetectionScheme::kVarianceMobile:
      return ScoreVarianceMobile(sanitized, scratch, FullAntennaMask(),
                                 prepared);
  }
  return 0.0;
}

void Detector::ComputeWindowWeights(std::span<const wifi::CsiPacket> sanitized,
                                    DetectorScratch& scratch,
                                    const PreparedWindowFactors* prepared)
    const {
  MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kSubcarrierWeighting);
  if (prepared != nullptr) {
    ComputeSubcarrierWeightsInto(prepared->mu_rows, prepared->medians,
                                 num_subcarriers_, config_.weighting_mode,
                                 scratch.weights);
  } else {
    MeasureMultipathFactorsInto(sanitized, band_, scratch.mu,
                                scratch.multipath);
    ComputeSubcarrierWeightsInto(scratch.mu, config_.weighting_mode,
                                 scratch.weights, scratch.median_scratch);
  }
}

std::vector<double> Detector::ScoreSession(
    const std::vector<wifi::CsiPacket>& session) const {
  MULINK_REQUIRE(session.size() >= config_.window_packets,
                 "Detector::ScoreSession: session shorter than one window");
  std::vector<double> scores;
  const std::size_t m = config_.window_packets;
  // mulink-lint: allow(alloc): legacy convenience API; engine path is allocation-free
  scores.reserve(session.size() / m);
  DetectorScratch scratch;
  const std::span<const wifi::CsiPacket> all(session);
  for (std::size_t start = 0; start + m <= session.size(); start += m) {
    // mulink-lint: allow(alloc): legacy convenience API; engine path is allocation-free
    scores.push_back(Score(all.subspan(start, m), scratch));
  }
  return scores;
}

bool Detector::Detect(const std::vector<wifi::CsiPacket>& window) const {
  MULINK_REQUIRE(threshold_set_,
                 "Detector::Detect: threshold not calibrated; call "
                 "SetThreshold or CalibrateThreshold first");
  return Score(window) >= threshold_;
}

void Detector::CalibrateThreshold(
    const std::vector<std::vector<wifi::CsiPacket>>& empty_windows) {
  MULINK_REQUIRE(empty_windows.size() >= 2,
                 "Detector::CalibrateThreshold: need >= 2 empty windows");
  std::vector<double> scores;
  // mulink-lint: allow(alloc): calibration path
  scores.reserve(empty_windows.size());
  DetectorScratch scratch;
  for (const auto& w : empty_windows) {
    // mulink-lint: allow(alloc): calibration path
    scores.push_back(Score(std::span<const wifi::CsiPacket>(w), scratch));
  }
  threshold_ =
      dsp::Mean(scores) + config_.threshold_sigma * dsp::StdDev(scores);
  threshold_set_ = true;

  // The combined scheme's degraded fallback (subcarrier-only weighting)
  // lives on a different scale than the angular statistic, so derive its
  // threshold from the same empty windows. The other schemes' degraded
  // statistic is a per-antenna average of the primary one — same scale,
  // same threshold.
  if (config_.scheme == DetectionScheme::kSubcarrierAndPathWeighting) {
    std::vector<double> fallback_scores;
    // mulink-lint: allow(alloc): calibration path
    fallback_scores.reserve(empty_windows.size());
    for (const auto& w : empty_windows) {
      fallback_scores.push_back(  // mulink-lint: allow(alloc): calibration path
          ScoreDegraded(std::span<const wifi::CsiPacket>(w), scratch,
                        FullAntennaMask()));
    }
    fallback_threshold_ = dsp::Mean(fallback_scores) +
                          config_.threshold_sigma * dsp::StdDev(fallback_scores);
    fallback_threshold_set_ = true;
  }
}

void Detector::UpdateProfile(const std::vector<wifi::CsiPacket>& empty_window,
                             double alpha) {
  MULINK_REQUIRE(alpha > 0.0 && alpha <= 1.0,
                 "Detector::UpdateProfile: alpha must be in (0,1]");
  MULINK_REQUIRE(!empty_window.empty(),
                 "Detector::UpdateProfile: empty window");
  MULINK_REQUIRE(empty_window[0].NumAntennas() == num_antennas_ &&
                     empty_window[0].NumSubcarriers() == num_subcarriers_,
                 "Detector::UpdateProfile: window shape mismatch");
  const auto sanitized = SanitizePhase(empty_window, band_);

  double power_sum = 0.0, amp_sum = 0.0;
  std::vector<double> powers(sanitized.size());
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      double mean_power = 0.0, mean_amp = 0.0;
      for (std::size_t i = 0; i < sanitized.size(); ++i) {
        powers[i] = sanitized[i].SubcarrierPower(m, k);
        mean_power += powers[i];
        mean_amp += std::sqrt(powers[i]);
      }
      mean_power /= static_cast<double>(sanitized.size());
      mean_amp /= static_cast<double>(sanitized.size());
      profile_power_[m][k] =
          (1.0 - alpha) * profile_power_[m][k] + alpha * mean_power;
      profile_amplitude_[m][k] =
          (1.0 - alpha) * profile_amplitude_[m][k] + alpha * mean_amp;
      if (sanitized.size() >= 2) {
        profile_variance_[m][k] =
            (1.0 - alpha) * profile_variance_[m][k] +
            alpha * dsp::Variance(powers);
      }
      power_sum += profile_power_[m][k];
      amp_sum += profile_amplitude_[m][k];
    }
  }
  profile_scale_power_ =
      power_sum / static_cast<double>(num_antennas_ * num_subcarriers_);
  profile_scale_amplitude_ =
      amp_sum / static_cast<double>(num_antennas_ * num_subcarriers_);
  profile_epoch_ = NextProfileVersion();

  // Rotate a slice of the retained calibration packets (oldest first) so the
  // combined scheme's angular profile follows the environment.
  if (!retained_calibration_.empty()) {
    const std::size_t replace = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               alpha * static_cast<double>(retained_calibration_.size())));
    for (std::size_t i = 0; i < replace && i < sanitized.size(); ++i) {
      retained_calibration_[retained_rotation_ %
                            retained_calibration_.size()] = sanitized[i];
      ++retained_rotation_;
    }
    profile_version_ = NextProfileVersion();
    if (num_antennas_ >= 2) {
      static_spectrum_ =
          ComputeMusicSpectrum(retained_calibration_, array_, band_,
                               config_.music)
              .Smoothed(config_.spectrum_smoothing_deg);
      path_weights_ = ComputePathWeights(static_spectrum_,
                                         config_.path_weighting);
    }
  }
}

void Detector::ApplyProfile(std::span<const double> power,
                            std::span<const double> amplitude,
                            std::span<const double> variance) {
  const std::size_t cells = num_antennas_ * num_subcarriers_;
  MULINK_REQUIRE(power.size() == cells && amplitude.size() == cells &&
                     variance.size() == cells,
                 "Detector::ApplyProfile: shape mismatch");
  double power_sum = 0.0, amp_sum = 0.0;
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      const std::size_t idx = m * num_subcarriers_ + k;
      profile_power_[m][k] = power[idx];
      profile_amplitude_[m][k] = amplitude[idx];
      profile_variance_[m][k] = variance[idx];
      power_sum += power[idx];
      amp_sum += amplitude[idx];
    }
  }
  profile_scale_power_ = power_sum / static_cast<double>(cells);
  profile_scale_amplitude_ = amp_sum / static_cast<double>(cells);
  MULINK_REQUIRE(profile_scale_power_ > 0.0,
                 "Detector::ApplyProfile: staged profile has no power");
  profile_epoch_ = NextProfileVersion();
}

void Detector::RefreshAngularProfile(
    std::span<const wifi::CsiPacket> staged) {
  if (staged.empty() || retained_calibration_.empty() || num_antennas_ < 2) {
    return;
  }
  MULINK_REQUIRE(staged[0].NumAntennas() == num_antennas_ &&
                     staged[0].NumSubcarriers() == num_subcarriers_,
                 "Detector::RefreshAngularProfile: packet shape mismatch");
  // Re-anchor the retained packets onto the ACTIVE profile's per-cell
  // amplitude before rotating the staged slice in. The rotation below only
  // replaces a fraction of the set, and both the pseudospectrum and the
  // combined scheme's profile-side covariance are built from the retained
  // packets — left at the pre-drift gain they would dominate the profile
  // statistics no matter what ApplyProfile installed. Scaling each cell's
  // amplitude to the applied profile keeps the packets' phase structure
  // (the angular information) while moving their scale to the new operating
  // point; a gain ramp or AGC step is a real scalar, so for those faults
  // the correction is exact.
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      double stale_amp = 0.0;
      for (const auto& packet : retained_calibration_) {
        stale_amp += std::sqrt(packet.SubcarrierPower(m, k));
      }
      stale_amp /= static_cast<double>(retained_calibration_.size());
      const double target = profile_amplitude_[m][k];
      if (stale_amp <= 0.0 || target <= 0.0) continue;
      const double scale = target / stale_amp;
      for (auto& packet : retained_calibration_) {
        packet.csi.At(m, k) *= scale;
      }
    }
  }
  const std::size_t rotate =
      std::min(staged.size(), retained_calibration_.size());
  for (std::size_t i = 0; i < rotate; ++i) {
    // Copy-assign reuses the slot's CSI buffer; the rotation cursor keeps
    // replacing the oldest retained packets first, like UpdateProfile.
    retained_calibration_[retained_rotation_ %
                          retained_calibration_.size()] = staged[i];
    ++retained_rotation_;
  }
  profile_version_ = NextProfileVersion();
  static_spectrum_ =
      ComputeMusicSpectrum(retained_calibration_, array_, band_,
                           config_.music)
          .Smoothed(config_.spectrum_smoothing_deg);
  path_weights_ =
      ComputePathWeights(static_spectrum_, config_.path_weighting);
}

double Detector::ScoreBaseline(std::span<const wifi::CsiPacket> window,
                               std::uint32_t live_mask) const {
  // The paper's baseline is the naive per-packet Euclidean distance of CSI
  // amplitudes against the profile (the prior-work recipe its evaluation
  // compares against). Averaging the *distances* rather than the CSI keeps
  // the per-packet noise floor inside the statistic — which is exactly why
  // this baseline loses weak/faraway targets. The statistic is a
  // per-antenna average, so restricting it to the live rows of a degraded
  // window preserves its scale (and the calibrated threshold).
  const std::size_t live = static_cast<std::size_t>(
      std::popcount(live_mask & FullAntennaMask()));
  double score = 0.0;
  for (const auto& packet : window) {
    double packet_score = 0.0;
    for (std::size_t m = 0; m < num_antennas_; ++m) {
      if (((live_mask >> m) & 1u) == 0) continue;
      double sum_sq = 0.0;
      for (std::size_t k = 0; k < num_subcarriers_; ++k) {
        const double amp = std::sqrt(packet.SubcarrierPower(m, k));
        const double diff =
            (amp - profile_amplitude_[m][k]) / profile_scale_amplitude_;
        sum_sq += diff * diff;
      }
      packet_score += std::sqrt(sum_sq);
    }
    score += packet_score / static_cast<double>(live);
  }
  return score / static_cast<double>(window.size());
}

double Detector::BaselinePacketScore(const wifi::CsiPacket& packet) const {
  // Exactly one full-mask iteration of ScoreBaseline's packet loop: the
  // antennas accumulate in index order and the per-antenna subcarrier walk
  // is unchanged, so folding these values with ScoreBaselinePrepared below
  // reproduces ScoreBaseline bit for bit.
  double packet_score = 0.0;
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    double sum_sq = 0.0;
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      const double amp = std::sqrt(packet.SubcarrierPower(m, k));
      const double diff =
          (amp - profile_amplitude_[m][k]) / profile_scale_amplitude_;
      sum_sq += diff * diff;
    }
    packet_score += std::sqrt(sum_sq);
  }
  return packet_score;
}

double Detector::ScoreBaselinePrepared(std::span<const double> packet_scores,
                                       DetectorScratch& scratch) const {
  MULINK_REQUIRE(config_.scheme == DetectionScheme::kBaseline,
                 "Detector::ScoreBaselinePrepared: baseline scheme only");
  MULINK_REQUIRE(!packet_scores.empty(),
                 "Detector::ScoreBaselinePrepared: empty window");
  MULINK_OBS_COUNT(scratch.metrics, kWindowsScored);
  MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kScore);
  // Same accumulation order and divisors as the full-mask ScoreBaseline
  // (live == num_antennas_ there), so the fold is bit-identical.
  const double live = static_cast<double>(num_antennas_);
  double score = 0.0;
  for (const double packet_score : packet_scores) {
    score += packet_score / live;
  }
  return score / static_cast<double>(packet_scores.size());
}

double Detector::ScoreSubcarrierWeighting(
    std::span<const wifi::CsiPacket> sanitized, DetectorScratch& scratch,
    std::uint32_t live_mask, const PreparedWindowFactors* prepared) const {
  ComputeWindowWeights(sanitized, scratch, prepared);
  MULINK_OBS_STAGE_TIMER(score_timer, scratch.metrics, kScore);
  const auto& weights = scratch.weights;

  // Uniform weight reference so weighting redistributes emphasis without
  // changing the overall score scale (weights sum to <= 1 by construction).
  const double uniform = 1.0 / static_cast<double>(num_subcarriers_);

  // Dead rows contribute zero mu to the antenna-averaged factors, which
  // scales every mu_bar_k by the same constant — Eq. 15 normalizes it away,
  // so the weights are unaffected. Only the power distance below must skip
  // the dead rows (a silent chain reads as a full-profile deviation).
  const std::size_t live = static_cast<std::size_t>(
      std::popcount(live_mask & FullAntennaMask()));
  double score = 0.0;
  auto& powers = scratch.powers;
  // mulink-lint: allow(alloc): warm scratch; capacity sticks after first window
  powers.resize(sanitized.size());
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    if (((live_mask >> m) & 1u) == 0) continue;
    double sum_sq = 0.0;
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      for (std::size_t i = 0; i < sanitized.size(); ++i) {
        powers[i] = sanitized[i].SubcarrierPower(m, k);
      }
      const double window_power =
          config_.robust_window_aggregate
              ? dsp::Median(powers, scratch.median_scratch)
              : dsp::Mean(powers);
      // Eq. 12's linear power difference, normalized by the profile's mean
      // power so one global threshold works across links. (A dB-domain
      // difference was evaluated and rejected: the log expands the noise of
      // deep-fade subcarriers — exactly the ones Eq. 15 up-weights.)
      const double delta_s =
          (window_power - profile_power_[m][k]) / profile_scale_power_;
      const double weighted = (weights.weights[k] / uniform) * delta_s;
      sum_sq += weighted * weighted;
    }
    score += std::sqrt(sum_sq);
  }
  return score / static_cast<double>(live);
}

double Detector::ScoreVarianceMobile(
    std::span<const wifi::CsiPacket> sanitized, DetectorScratch& scratch,
    std::uint32_t live_mask, const PreparedWindowFactors* prepared) const {
  MULINK_REQUIRE(sanitized.size() >= 2,
                 "Detector: variance statistic needs >= 2 packets");
  ComputeWindowWeights(sanitized, scratch, prepared);
  MULINK_OBS_STAGE_TIMER(score_timer, scratch.metrics, kScore);
  const auto& weights = scratch.weights;
  const double uniform = 1.0 / static_cast<double>(num_subcarriers_);

  const std::size_t live = static_cast<std::size_t>(
      std::popcount(live_mask & FullAntennaMask()));
  double score = 0.0;
  auto& powers = scratch.powers;
  // mulink-lint: allow(alloc): warm scratch; capacity sticks after first window
  powers.resize(sanitized.size());
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    if (((live_mask >> m) & 1u) == 0) continue;
    double sum_sq = 0.0;
    for (std::size_t k = 0; k < num_subcarriers_; ++k) {
      for (std::size_t i = 0; i < sanitized.size(); ++i) {
        powers[i] = sanitized[i].SubcarrierPower(m, k);
      }
      // EXCESS temporal spread over the empty-room floor (walkers, noise
      // and interference already vibrate the channel; only spread beyond
      // that is evidence of a moving person). The robust aggregate swaps the
      // variance for a MAD-based estimate that one interference burst cannot
      // inflate; both are normalized like Delta_s so one global threshold
      // works across links.
      double window_variance;
      if (config_.robust_window_aggregate) {
        const double robust_sigma =
            1.4826 * dsp::MedianAbsDeviation(powers, scratch.median_scratch);
        window_variance = robust_sigma * robust_sigma;
      } else {
        window_variance = dsp::Variance(powers);
      }
      const double excess =
          std::max(0.0, window_variance - profile_variance_[m][k]);
      const double sigma = std::sqrt(excess) / profile_scale_power_;
      const double weighted = (weights.weights[k] / uniform) * sigma;
      sum_sq += weighted * weighted;
    }
    score += std::sqrt(sum_sq);
  }
  return score / static_cast<double>(live);
}

double Detector::ScoreCombined(std::span<const wifi::CsiPacket> sanitized,
                               DetectorScratch& scratch,
                               const PreparedWindowFactors* prepared) const {
  MULINK_REQUIRE(num_antennas_ >= 2,
                 "Detector: combined scheme needs >= 2 antennas");
  ComputeWindowWeights(sanitized, scratch, prepared);
  const auto& weights = scratch.weights;

  // Same monitoring-stage subcarrier weights applied to both sides — valid
  // because the Bartlett angular spectrum is linear in per-subcarrier
  // strength (the "linear properties" argument of Sec. IV-C) — then the
  // Eq. 17 path weights from the calibration-stage MUSIC spectrum.
  auto& monitor_cov = scratch.monitor_cov;
  auto& profile_cov = scratch.profile_cov;
  {
    MULINK_OBS_STAGE_TIMER(timer, scratch.metrics, kMusicPathWeighting);
    if (prepared != nullptr && !prepared->csi_slabs.empty()) {
      // Ingest-split slabs: same bytes, no per-window re-deinterleave.
      SampleCovarianceSlabsInto(prepared->csi_slabs, num_antennas_,
                                num_subcarriers_, weights.weights,
                                monitor_cov, scratch.music);
    } else {
      SampleCovarianceInto(std::span<const wifi::CsiPacket>(sanitized),
                           weights.weights, monitor_cov, scratch.music);
    }
    // The profile side scores a *fixed* packet set against per-window
    // weights, so its per-subcarrier covariance stack is cached in the
    // workspace and only re-combined here; the full packet scan happens once
    // per profile version (first window, or after UpdateProfile rotates the
    // set).
    if (scratch.profile_version != profile_version_) {
      MULINK_OBS_COUNT(scratch.metrics, kProfileStackRebuilds);
      BuildSubcarrierCovarianceStack(
          std::span<const wifi::CsiPacket>(retained_calibration_),
          scratch.profile_stack);
      scratch.profile_version = profile_version_;
    } else {
      MULINK_OBS_COUNT(scratch.metrics, kProfileStackHits);
    }
    CombineSubcarrierCovariances(scratch.profile_stack, weights.weights,
                                 profile_cov);
    if (config_.noise_floor_subtraction) {
      // Spatially-white components (AWGN, receiver-local interference) add
      // lambda_min * I to the covariance; removing it keeps the angular
      // statistic about propagation paths only. Only lambda_min is needed,
      // so the closed-form smallest-eigenvalue path skips the full Jacobi
      // diagonalization the MUSIC calibration stage still uses.
      for (auto* cov : {&monitor_cov, &profile_cov}) {
        const double floor =
            std::max(linalg::SmallestHermitianEigenvalue(*cov), 0.0);
        for (std::size_t i = 0; i < cov->rows(); ++i) {
          cov->At(i, i) -= Complex(floor, 0.0);
        }
      }
    }
    // Both Bartlett scans share one pass over the steering table.
    ComputeBartlettSpectraInto(monitor_cov, profile_cov, array_, band_,
                               config_.music, scratch.monitor_spectrum,
                               scratch.profile_spectrum, scratch.music);

    ApplyPathWeightsInto(path_weights_, scratch.monitor_spectrum,
                         scratch.weighted_monitor);
    ApplyPathWeightsInto(path_weights_, scratch.profile_spectrum,
                         scratch.weighted_profile);
  }
  MULINK_OBS_STAGE_TIMER(score_timer, scratch.metrics, kScore);
  const auto& weighted_monitor = scratch.weighted_monitor;
  const auto& weighted_profile = scratch.weighted_profile;

  // Euclidean distance of the weighted spectra, normalized by the weighted
  // profile so one global threshold works across links of different length.
  const double norm_profile = std::sqrt(
      kernels::SumSquares(weighted_profile.data(), weighted_profile.size()));
  MULINK_ASSERT_MSG(norm_profile > 0.0,
                    "combined score: weighted profile spectrum is all zero");
  return std::sqrt(kernels::NormalizedDistanceSq(
      weighted_monitor.data(), weighted_profile.data(), norm_profile,
      weighted_monitor.size()));
}

}  // namespace mulink::core
