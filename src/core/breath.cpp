#include "core/breath.h"
// mulink-lint: cold-tu(offline breathing-rate analysis, not the per-decision path)

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "dsp/fft.h"
#include "dsp/stats.h"

namespace mulink::core {

BreathEstimate EstimateBreathing(const std::vector<wifi::CsiPacket>& session,
                                 double packet_rate_hz,
                                 const BreathConfig& config) {
  MULINK_REQUIRE(session.size() >= 64,
                 "EstimateBreathing: need >= 64 packets (a few seconds)");
  MULINK_REQUIRE(packet_rate_hz > 0.0,
                 "EstimateBreathing: packet rate must be > 0");
  MULINK_REQUIRE(dsp::IsPowerOfTwo(config.fft_size) &&
                     config.fft_size >= session.size(),
                 "EstimateBreathing: fft_size must be a power of two >= "
                 "session length");
  MULINK_REQUIRE(config.max_rate_hz > config.min_rate_hz &&
                     config.min_rate_hz > 0.0,
                 "EstimateBreathing: empty rate band");
  MULINK_REQUIRE(config.max_rate_hz < packet_rate_hz / 2.0,
                 "EstimateBreathing: band exceeds Nyquist");

  const std::size_t num_ant = session[0].NumAntennas();
  const std::size_t num_sc = session[0].NumSubcarriers();
  const std::size_t n = session.size();

  // Aggregate normalized periodograms across (antenna, subcarrier) series.
  std::vector<double> aggregate(config.fft_size / 2, 0.0);
  std::vector<Complex> buffer;
  std::vector<double> series(n);
  for (std::size_t m = 0; m < num_ant; ++m) {
    for (std::size_t k = 0; k < num_sc; ++k) {
      for (std::size_t t = 0; t < n; ++t) {
        series[t] = session[t].SubcarrierPower(m, k);
      }
      const double mean = dsp::Mean(series);
      if (mean <= 0.0) continue;
      double variance = 0.0;
      buffer.assign(config.fft_size, Complex(0.0, 0.0));
      for (std::size_t t = 0; t < n; ++t) {
        // Detrend and normalize to relative power so strong subcarriers do
        // not monopolize the aggregate; apply a Hann window.
        const double x = (series[t] - mean) / mean;
        variance += x * x;
        const double window =
            0.5 * (1.0 - std::cos(2.0 * kPi * static_cast<double>(t) /
                                  static_cast<double>(n - 1)));
        buffer[t] = Complex(x * window, 0.0);
      }
      if (variance <= 0.0) continue;
      dsp::Fft(buffer);
      for (std::size_t b = 0; b < aggregate.size(); ++b) {
        aggregate[b] += std::norm(buffer[b]) / variance;
      }
    }
  }

  // Restrict to the respiration band.
  const double bin_hz =
      packet_rate_hz / static_cast<double>(config.fft_size);
  BreathEstimate estimate;
  for (std::size_t b = 1; b < aggregate.size(); ++b) {
    const double f = static_cast<double>(b) * bin_hz;
    if (f < config.min_rate_hz || f > config.max_rate_hz) continue;
    estimate.frequencies_hz.push_back(f);
    estimate.spectrum.push_back(aggregate[b]);
  }
  MULINK_REQUIRE(estimate.spectrum.size() >= 3,
                 "EstimateBreathing: band too narrow for the resolution; "
                 "capture longer or raise fft_size");

  std::size_t best = 0;
  for (std::size_t i = 1; i < estimate.spectrum.size(); ++i) {
    if (estimate.spectrum[i] > estimate.spectrum[best]) best = i;
  }
  estimate.rate_hz = estimate.frequencies_hz[best];
  const double median = dsp::Median(estimate.spectrum);
  estimate.confidence =
      median > 0.0 ? estimate.spectrum[best] / median : 0.0;
  return estimate;
}

}  // namespace mulink::core
