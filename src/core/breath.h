// Respiration rate estimation from CSI time series — the breath-monitoring
// context the paper's introduction cites (Wi-Sleep [9], WiBreathe [10]) as a
// downstream consumer of reliable device-free detection.
//
// A breathing person's chest sweeps a few millimetres periodically; the
// human-created reflection's phase rotates with it and modulates every
// subcarrier's power at the respiration rate. The estimator detrends each
// (antenna, subcarrier) power series, takes its periodogram, aggregates
// spectra across subcarriers, and picks the dominant peak inside the human
// respiration band.
#pragma once

#include <vector>

#include "wifi/csi.h"

namespace mulink::core {

struct BreathConfig {
  // Human respiration band (Hz): ~6 to 36 breaths per minute.
  double min_rate_hz = 0.1;
  double max_rate_hz = 0.6;
  // Zero-padded FFT length for the periodogram (power of two).
  std::size_t fft_size = 1024;
};

struct BreathEstimate {
  double rate_hz = 0.0;
  // Peak-to-median power ratio of the aggregated in-band spectrum; empty
  // rooms produce values near 1, a breather well above (threshold ~3).
  double confidence = 0.0;
  // The aggregated in-band spectrum (for plotting / debugging).
  std::vector<double> spectrum;
  std::vector<double> frequencies_hz;
};

// Estimate the respiration rate from a capture session (>= ~15 s of packets
// recommended for sub-0.02 Hz resolution). `packet_rate_hz` is the capture
// rate (50 in the paper's testbed).
BreathEstimate EstimateBreathing(const std::vector<wifi::CsiPacket>& session,
                                 double packet_rate_hz,
                                 const BreathConfig& config = {});

}  // namespace mulink::core
