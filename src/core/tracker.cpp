#include "core/tracker.h"

#include <cmath>

#include "common/assert.h"

namespace mulink::core {

namespace {

// x and y decouple into two independent [position, velocity] filters, so the
// 4x4 problem reduces to two 2x2 Kalman updates — done here explicitly.
struct Axis {
  double pos, vel;      // state
  double p00, p01, p11; // symmetric covariance
};

void PredictAxis(Axis& axis, double dt, double accel_sigma) {
  // x' = F x with F = [1 dt; 0 1]; P' = F P F^T + Q.
  axis.pos += dt * axis.vel;
  const double p00 = axis.p00 + dt * (2.0 * axis.p01 + dt * axis.p11);
  const double p01 = axis.p01 + dt * axis.p11;
  axis.p00 = p00;
  axis.p01 = p01;
  // White-acceleration process noise.
  const double q = accel_sigma * accel_sigma;
  axis.p00 += q * dt * dt * dt * dt / 4.0;
  axis.p01 += q * dt * dt * dt / 2.0;
  axis.p11 += q * dt * dt;
}

void UpdateAxis(Axis& axis, double measurement, double meas_sigma) {
  const double r = meas_sigma * meas_sigma;
  const double s = axis.p00 + r;           // innovation variance
  const double k0 = axis.p00 / s;          // Kalman gains
  const double k1 = axis.p01 / s;
  const double innovation = measurement - axis.pos;
  axis.pos += k0 * innovation;
  axis.vel += k1 * innovation;
  const double p00 = (1.0 - k0) * axis.p00;
  const double p01 = (1.0 - k0) * axis.p01;
  const double p11 = axis.p11 - k1 * axis.p01;
  axis.p00 = p00;
  axis.p01 = p01;
  axis.p11 = p11;
}

}  // namespace

PositionTracker::PositionTracker(TrackerConfig config) : config_(config) {
  MULINK_REQUIRE(config_.acceleration_sigma > 0.0 &&
                     config_.measurement_sigma_m > 0.0 &&
                     config_.initial_speed_sigma > 0.0,
                 "PositionTracker: noise parameters must be positive");
}

void PositionTracker::Reset() {
  initialized_ = false;
  state_ = {};
  covariance_ = {};
}

geometry::Vec2 PositionTracker::Update(geometry::Vec2 measurement,
                                       double dt_s) {
  MULINK_REQUIRE(dt_s >= 0.0, "PositionTracker: dt must be >= 0");
  if (!initialized_) {
    state_ = {measurement.x, measurement.y, 0.0, 0.0};
    const double r = config_.measurement_sigma_m * config_.measurement_sigma_m;
    const double v = config_.initial_speed_sigma * config_.initial_speed_sigma;
    covariance_ = {r, 0, 0, 0,  //
                   0, r, 0, 0,  //
                   0, 0, v, 0,  //
                   0, 0, 0, v};
    initialized_ = true;
    return measurement;
  }

  Axis x{state_[0], state_[2], covariance_[0], covariance_[2],
         covariance_[10]};
  Axis y{state_[1], state_[3], covariance_[5], covariance_[7],
         covariance_[15]};
  PredictAxis(x, dt_s, config_.acceleration_sigma);
  PredictAxis(y, dt_s, config_.acceleration_sigma);
  UpdateAxis(x, measurement.x, config_.measurement_sigma_m);
  UpdateAxis(y, measurement.y, config_.measurement_sigma_m);

  state_ = {x.pos, y.pos, x.vel, y.vel};
  covariance_[0] = x.p00;
  covariance_[2] = x.p01;
  covariance_[10] = x.p11;
  covariance_[5] = y.p00;
  covariance_[7] = y.p01;
  covariance_[15] = y.p11;
  return position();
}

geometry::Vec2 PositionTracker::Predict(double dt_s) const {
  MULINK_REQUIRE(initialized_, "PositionTracker: not initialized");
  MULINK_REQUIRE(dt_s >= 0.0, "PositionTracker: dt must be >= 0");
  return {state_[0] + dt_s * state_[2], state_[1] + dt_s * state_[3]};
}

}  // namespace mulink::core
