// Runtime measurement of the multipath factor mu (paper Sec. IV-A1,
// Eq. 9–11) — the paper's central measurable proxy for detection
// sensitivity, extracted from a single packet.
//
// mu_k = P_L(f_k) / |H(f_k)|^2, with the per-subcarrier LOS power split from
// the dominant delay tap by Friis' f^{-2} frequency dependence:
//   P_L(f_k) = (f_k^{-2} / sum_i f_i^{-2}) * |h_hat(0)|^2.
#pragma once

#include <span>
#include <vector>

#include "wifi/band.h"
#include "wifi/csi.h"

namespace mulink::core {

// Reusable buffers for per-packet multipath factor extraction. The Friis
// f^{-2} LOS fractions depend only on the band plan, so they are computed
// once and cached against the band fingerprint below instead of being
// rebuilt per antenna row (they were the bulk of the per-packet cost).
struct MultipathScratch {
  // los_frac[k] = f_k^{-2} / sum_i f_i^{-2} for the cached band.
  std::vector<double> los_frac;
  double band_center_hz = 0.0;
  double band_spacing_hz = 0.0;
  std::vector<int> band_indices;
};

// Per-subcarrier LOS power estimate P_L(f_k) of Eq. 10 for one antenna's CFR.
std::vector<double> EstimateLosPower(const std::vector<Complex>& cfr,
                                     const wifi::BandPlan& band);

// Eq. 11 multipath factors for one antenna's CFR (one value per subcarrier).
// Subcarriers whose measured power quantized to zero yield mu = 0.
std::vector<double> MeasureMultipathFactors(const std::vector<Complex>& cfr,
                                            const wifi::BandPlan& band);

// Antenna-averaged multipath factors for a whole packet. The paper's
// single-antenna schemes average metrics across the three antennas.
std::vector<double> MeasureMultipathFactors(const wifi::CsiPacket& packet,
                                            const wifi::BandPlan& band);

// Scratch variant: writes the antenna-averaged factors into `out` (resized
// to the subcarrier count) without allocating once warmed up.
void MeasureMultipathFactorsInto(const wifi::CsiPacket& packet,
                                 const wifi::BandPlan& band,
                                 std::vector<double>& out,
                                 MultipathScratch& scratch);

// Multipath factors for every packet of a session: result[m][k] is packet
// m's factor on subcarrier k.
std::vector<std::vector<double>> MeasureMultipathFactors(
    const std::vector<wifi::CsiPacket>& packets, const wifi::BandPlan& band);

// Scratch variant over a window; `out` is resized to packets.size().
void MeasureMultipathFactorsInto(std::span<const wifi::CsiPacket> packets,
                                 const wifi::BandPlan& band,
                                 std::vector<std::vector<double>>& out,
                                 MultipathScratch& scratch);

}  // namespace mulink::core
