#include "core/streaming.h"

#include <bit>

#include "common/assert.h"
#include "dsp/stats.h"

namespace mulink::core {

std::optional<nic::FrameReport> GuardedIngest::Admit(
    const wifi::CsiPacket& packet) {
  MULINK_OBS_COUNT(metrics, kPacketsIngested);
  if (!guard.has_value()) {
    MULINK_OBS_COUNT(metrics, kPacketsAccepted);
    return nic::FrameReport{};
  }
  // Per-frame latency is sampled 1-in-kIngestSampleEvery (deterministic
  // tick, so totals merge bit-identically across shards); the verdict
  // counters below stay exact.
  obs::Registry* const timed = MULINK_OBS_SAMPLED(metrics);
  nic::FrameReport report;
  {
    MULINK_OBS_STAGE_TIMER(timer, timed, kGuardClassify);
    report = guard->Inspect(packet);
  }
  if (report.resync) MULINK_OBS_COUNT(metrics, kRingResyncs);
  switch (report.verdict) {
    case nic::FrameVerdict::kQuarantine:
      MULINK_OBS_COUNT(metrics, kPacketsQuarantined);
      break;
    case nic::FrameVerdict::kRepair:
      // Taint bookkeeping for the calibration ladder: a repaired frame in
      // the hop disqualifies its window as quiet evidence, and a burst of
      // RSSI-outlier repairs is the AGC fast re-baseline trigger.
      ++repaired_since_decision;
      if (report.Has(nic::FrameFault::kRssiOutlier)) {
        ++agc_frames_since_decision;
      }
      MULINK_OBS_COUNT(metrics, kPacketsRepaired);
      MULINK_OBS_COUNT(metrics, kPacketsAccepted);
      break;
    default:
      MULINK_OBS_COUNT(metrics, kPacketsAccepted);
      break;
  }
  if (report.verdict == nic::FrameVerdict::kQuarantine) return std::nullopt;
  return report;
}

std::uint32_t GuardedIngest::FullMask(std::size_t num_antennas) {
  return num_antennas >= 32
             ? 0xffffffffu
             : ((1u << static_cast<std::uint32_t>(num_antennas)) - 1u);
}

std::uint32_t GuardedIngest::LiveMask(std::size_t num_antennas) const {
  const std::uint32_t full = FullMask(num_antennas);
  if (!guard.has_value()) return full;
  return full & ~guard->dead_antenna_mask();
}

void GuardedIngest::ObserveDecision(const PresenceDecision& decision,
                                    const Detector& detector,
                                    const StreamingConfig& config) {
  if (!guard.has_value()) return;
  if (decision.posterior > config.watchdog_empty_posterior) return;
  if (empty_windows_seen == 0 && quiet_score_seed <= 0.0) {
    // No calibration scores to seed from: legacy cold start, the first
    // believed-empty window sets the EWMA outright.
    empty_score_ewma = decision.score;
  } else {
    // Seeded (at construction and after Reset the EWMA already sits at the
    // expected quiet score), so early windows blend instead of jumping —
    // a reset cannot spuriously trip profile_drift on its first windows.
    empty_score_ewma +=
        config.watchdog_ewma_alpha * (decision.score - empty_score_ewma);
  }
  ++empty_windows_seen;
  MULINK_OBS_GAUGE(metrics, kEmptyScoreEwma, empty_score_ewma);
  if (detector.has_threshold() &&
      empty_windows_seen >= config.watchdog_min_windows &&
      empty_score_ewma >
          config.watchdog_score_fraction * detector.threshold()) {
    profile_drift = true;
  }
}

nic::LinkHealth GuardedIngest::Health() const {
  nic::LinkHealth health;
  if (guard.has_value()) health = guard->health();
  health.degraded = degraded;
  health.degraded_decisions = degraded_decisions;
  health.profile_drift = profile_drift;
  health.empty_score_ewma = empty_score_ewma;
  return health;
}

void GuardedIngest::Reset() {
  if (guard.has_value()) guard->Reset();
  degraded = false;
  degraded_decisions = 0;
  empty_windows_seen = 0;
  empty_score_ewma = quiet_score_seed;  // cold-start seed survives a reset
  profile_drift = false;
  repaired_since_decision = 0;
  agc_frames_since_decision = 0;
}

StreamingDetector::StreamingDetector(Detector detector,
                                     const std::vector<double>& empty_scores,
                                     StreamingConfig config)
    : detector_(std::move(detector)), config_(config), ingest_(config_) {
  MULINK_REQUIRE(config_.window_packets >= 2,
                 "StreamingDetector: window must hold >= 2 packets");
  MULINK_REQUIRE(config_.hop_packets >= 1 &&
                     config_.hop_packets <= config_.window_packets,
                 "StreamingDetector: hop must be in [1, window]");
  if (config_.use_hmm) {
    hmm_ = PresenceHmm::FitFromEmptyScores(empty_scores, config_.hmm);
    filter_.emplace(*hmm_);  // mulink-lint: allow(alloc): ctor, setup path
  }
  // Seed the drift watchdog's EWMA at the expected quiet score so the first
  // windows after construction or Reset cannot spuriously trip the flag.
  if (!empty_scores.empty()) {
    ingest_.quiet_score_seed = dsp::Mean(empty_scores);
    ingest_.empty_score_ewma = ingest_.quiet_score_seed;
  }
  calibrator_.Configure(detector_, std::span<const double>(empty_scores),
                        config_.calibration);
  // mulink-lint: allow(alloc): ctor, setup path
  ring_.reserve(config_.window_packets);
  // mulink-lint: allow(alloc): ctor, setup path
  window_.reserve(config_.window_packets);
}

void StreamingDetector::SetMetricsEnabled(bool enabled) {
  metrics_enabled_ = enabled;
}

void StreamingDetector::Reset() {
  // Keep ring_ / window_ storage (and each packet's CSI buffer) so the next
  // fill is still allocation-free; stale slots are overwritten before use.
  write_pos_ = 0;
  count_ = 0;
  packets_since_decision_ = 0;
  occupied_ = false;
  posterior_ = 0.0;
  if (filter_.has_value()) filter_->Reset();
  ingest_.Reset();
  calibrator_.Reset(detector_);
  metrics_.Reset();
}

std::optional<PresenceDecision> StreamingDetector::Push(
    const wifi::CsiPacket& packet) {
  // Re-point the shard every packet so a moved detector never records into
  // its old address; two stores, then everything downstream sees one sink.
  obs::Registry* const sink = metrics_enabled_ ? &metrics_ : nullptr;
  ingest_.metrics = sink;
  scratch_.metrics = sink;
  calibrator_.metrics = sink;
  const auto report = ingest_.Admit(packet);
  if (!report.has_value()) return std::nullopt;  // quarantined
  if (report->resync) {
    // Gap too wide to straddle: the buffered packets and this one no longer
    // form a contiguous window. Flush the ring, keep the temporal state.
    write_pos_ = 0;
    count_ = 0;
    packets_since_decision_ = 0;
  }
  if (write_pos_ < ring_.size()) {
    ring_[write_pos_] = packet;  // copy-assign reuses the slot's CSI buffer
  } else {
    // mulink-lint: allow(alloc): initial ring fill only; capacity reserved in ctor
    ring_.push_back(packet);  // initial fill only; capacity is reserved
  }
  write_pos_ = (write_pos_ + 1) % config_.window_packets;
  if (count_ < config_.window_packets) ++count_;
  ++packets_since_decision_;

  if (count_ < config_.window_packets ||
      packets_since_decision_ < config_.hop_packets) {
    return std::nullopt;
  }
  packets_since_decision_ = 0;

  // Assemble the window in arrival order: the oldest packet sits at
  // write_pos_ once the ring is full.
  // mulink-lint: allow(alloc): capacity reserved in ctor; resize never reallocates
  window_.resize(config_.window_packets);
  for (std::size_t i = 0; i < config_.window_packets; ++i) {
    window_[i] = ring_[(write_pos_ + i) % config_.window_packets];
  }
  PresenceDecision decision;
  decision.timestamp_s = window_.back().timestamp_s;
  const std::span<const wifi::CsiPacket> window_span(window_);

  const std::uint32_t live_mask = ingest_.LiveMask(detector_.num_antennas());
  const std::uint32_t full_mask =
      GuardedIngest::FullMask(detector_.num_antennas());
  MULINK_OBS_GAUGE(sink, kLiveAntennas,
                   static_cast<double>(std::popcount(live_mask)));
  if (live_mask == 0 ||
      (live_mask != full_mask && !config_.degraded_fallback)) {
    // Every chain dead, or fallback disabled while one is: pause decisions
    // until the chain revives (the belief holds at its last value).
    MULINK_OBS_COUNT(sink, kDecisionsSuppressed);
    return std::nullopt;
  }
  if (live_mask != full_mask && detector_.has_threshold()) {
    // Degraded mode: score the surviving antennas, compare against the
    // fallback threshold, keep the HMM frozen (its emission model belongs
    // to the primary statistic).
    decision.score = detector_.ScoreDegraded(window_span, scratch_, live_mask);
    decision.occupied = decision.score >= detector_.fallback_threshold();
    decision.posterior = decision.occupied ? 1.0 : 0.0;
    decision.degraded = true;
    ingest_.degraded = true;
    ++ingest_.degraded_decisions;
    MULINK_OBS_COUNT(sink, kDegradedDecisions);
  } else {
    decision.score = detector_.Score(window_span, scratch_);
    if (filter_.has_value()) {
      MULINK_OBS_STAGE_TIMER(hmm_timer, sink, kHmmFilter);
      decision.posterior = filter_->Update(decision.score);
      decision.occupied =
          decision.posterior >= config_.decision_probability ||
          (config_.hmm_threshold_fusion && detector_.has_threshold() &&
           decision.score >= detector_.threshold());
      MULINK_OBS_COUNT(sink, kHmmUpdates);
    } else {
      decision.occupied = decision.score >= detector_.threshold();
      decision.posterior = decision.occupied ? 1.0 : 0.0;
    }
    ingest_.degraded = false;
    ingest_.ObserveDecision(decision, detector_, config_);
  }
  if (calibrator_.enabled()) {
    CalibrationWindowContext context;
    context.degraded = decision.degraded;
    context.repaired_frames = ingest_.repaired_since_decision;
    context.agc_frames = ingest_.agc_frames_since_decision;
    // The posteriors learn from the window in the detector's expected
    // sanitization state: Score left the sanitized copy in the scratch
    // (bit-identical to the engine's ingest-time sanitization); the
    // amplitude-only baseline learns from raw packets.
    const std::span<const wifi::CsiPacket> learn_window =
        detector_.UsesSanitizedInput() && !decision.degraded
            ? std::span<const wifi::CsiPacket>(scratch_.sanitized)
            : window_span;
    calibrator_.ObserveDecision(decision.score, decision.posterior,
                                learn_window, detector_, context);
    if (hmm_.has_value()) {
      // Pin the HMM's empty emission to the live quiet posterior every
      // window, not just after a profile swap: the posterior absorbs slow
      // drift online, so the filter's flip point moves with the link and
      // the corridor between drift onset and the next swap stops charging
      // false positives. On quiet windows this is a real update; otherwise
      // the posterior (and hence the refit) is a no-op. The filter's
      // temporal state rides through untouched, and step changes still go
      // through the ladder — the posterior refuses to learn from windows
      // the filter calls occupied, so a jump stalls this refit until the
      // swap re-anchors the posterior.
      hmm_->RefitEmptyEmission(calibrator_.quiet_log_mean(),
                               calibrator_.quiet_log_sigma());
    }
    // The ladder owns the drift flag when enabled — unlike the flag-only
    // watchdog it can clear it again by recalibrating in place.
    ingest_.profile_drift = calibrator_.drift_flagged();
  }
  ingest_.repaired_since_decision = 0;
  ingest_.agc_frames_since_decision = 0;
  occupied_ = decision.occupied;
  posterior_ = decision.posterior;
  MULINK_OBS_COUNT(sink, kDecisions);
  MULINK_OBS_GAUGE(sink, kLastScore, decision.score);
  MULINK_OBS_GAUGE(sink, kPosterior, decision.posterior);
  return decision;
}

}  // namespace mulink::core
