#include "core/streaming.h"

#include "common/assert.h"

namespace mulink::core {

StreamingDetector::StreamingDetector(Detector detector,
                                     const std::vector<double>& empty_scores,
                                     StreamingConfig config)
    : detector_(std::move(detector)), config_(config) {
  MULINK_REQUIRE(config_.window_packets >= 2,
                 "StreamingDetector: window must hold >= 2 packets");
  MULINK_REQUIRE(config_.hop_packets >= 1 &&
                     config_.hop_packets <= config_.window_packets,
                 "StreamingDetector: hop must be in [1, window]");
  if (config_.use_hmm) {
    hmm_ = PresenceHmm::FitFromEmptyScores(empty_scores, config_.hmm);
    filter_.emplace(*hmm_);
  }
}

void StreamingDetector::Reset() {
  buffer_.clear();
  packets_since_decision_ = 0;
  occupied_ = false;
  posterior_ = 0.0;
  if (filter_.has_value()) filter_->Reset();
}

std::optional<PresenceDecision> StreamingDetector::Push(
    const wifi::CsiPacket& packet) {
  buffer_.push_back(packet);
  while (buffer_.size() > config_.window_packets) buffer_.pop_front();
  ++packets_since_decision_;

  if (buffer_.size() < config_.window_packets ||
      packets_since_decision_ < config_.hop_packets) {
    return std::nullopt;
  }
  packets_since_decision_ = 0;

  const std::vector<wifi::CsiPacket> window(buffer_.begin(), buffer_.end());
  PresenceDecision decision;
  decision.timestamp_s = window.back().timestamp_s;
  decision.score = detector_.Score(window);
  if (filter_.has_value()) {
    decision.posterior = filter_->Update(decision.score);
    decision.occupied = decision.posterior >= config_.decision_probability;
  } else {
    decision.occupied = decision.score >= detector_.threshold();
    decision.posterior = decision.occupied ? 1.0 : 0.0;
  }
  occupied_ = decision.occupied;
  posterior_ = decision.posterior;
  return decision;
}

}  // namespace mulink::core
