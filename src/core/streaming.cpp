#include "core/streaming.h"

#include "common/assert.h"

namespace mulink::core {

StreamingDetector::StreamingDetector(Detector detector,
                                     const std::vector<double>& empty_scores,
                                     StreamingConfig config)
    : detector_(std::move(detector)), config_(config) {
  MULINK_REQUIRE(config_.window_packets >= 2,
                 "StreamingDetector: window must hold >= 2 packets");
  MULINK_REQUIRE(config_.hop_packets >= 1 &&
                     config_.hop_packets <= config_.window_packets,
                 "StreamingDetector: hop must be in [1, window]");
  if (config_.use_hmm) {
    hmm_ = PresenceHmm::FitFromEmptyScores(empty_scores, config_.hmm);
    filter_.emplace(*hmm_);
  }
  ring_.reserve(config_.window_packets);
  window_.reserve(config_.window_packets);
}

void StreamingDetector::Reset() {
  // Keep ring_ / window_ storage (and each packet's CSI buffer) so the next
  // fill is still allocation-free; stale slots are overwritten before use.
  write_pos_ = 0;
  count_ = 0;
  packets_since_decision_ = 0;
  occupied_ = false;
  posterior_ = 0.0;
  if (filter_.has_value()) filter_->Reset();
}

std::optional<PresenceDecision> StreamingDetector::Push(
    const wifi::CsiPacket& packet) {
  if (write_pos_ < ring_.size()) {
    ring_[write_pos_] = packet;  // copy-assign reuses the slot's CSI buffer
  } else {
    ring_.push_back(packet);  // initial fill only; capacity is reserved
  }
  write_pos_ = (write_pos_ + 1) % config_.window_packets;
  if (count_ < config_.window_packets) ++count_;
  ++packets_since_decision_;

  if (count_ < config_.window_packets ||
      packets_since_decision_ < config_.hop_packets) {
    return std::nullopt;
  }
  packets_since_decision_ = 0;

  // Assemble the window in arrival order: the oldest packet sits at
  // write_pos_ once the ring is full.
  window_.resize(config_.window_packets);
  for (std::size_t i = 0; i < config_.window_packets; ++i) {
    window_[i] = ring_[(write_pos_ + i) % config_.window_packets];
  }
  PresenceDecision decision;
  decision.timestamp_s = window_.back().timestamp_s;
  decision.score =
      detector_.Score(std::span<const wifi::CsiPacket>(window_), scratch_);
  if (filter_.has_value()) {
    decision.posterior = filter_->Update(decision.score);
    decision.occupied = decision.posterior >= config_.decision_probability;
  } else {
    decision.occupied = decision.score >= detector_.threshold();
    decision.posterior = decision.occupied ? 1.0 : 0.0;
  }
  occupied_ = decision.occupied;
  posterior_ = decision.posterior;
  return decision;
}

}  // namespace mulink::core
