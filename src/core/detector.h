// Device-free human detection pipeline (paper Sec. IV-C).
//
// Two stages, as in the paper:
//  * Calibration — from an empty-room CSI session: phase-sanitize, store the
//    static profile s(0) (per-antenna per-subcarrier mean power), the static
//    angular pseudospectrum and the Eq. 17 path weights, plus a subsample of
//    sanitized calibration packets so monitoring-stage subcarrier weights can
//    be applied consistently to both sides before the distance is taken.
//  * Monitoring — a window of M packets is scored against the profile; the
//    score exceeding the threshold declares human presence.
//
// Four schemes are provided — the paper's three plus its mobile-target
// statistic:
//  * kBaseline                    — per-packet Euclidean distance of CSI
//                                   amplitudes (the naive prior-work recipe).
//  * kSubcarrierWeighting         — Eq. 15-weighted RSS change distance.
//  * kSubcarrierAndPathWeighting  — distance between subcarrier-weighted,
//                                   path-weighted angular spectra.
//  * kVarianceMobile              — subcarrier-weighted excess temporal
//                                   variance (Sec. III's statistic for
//                                   moving targets [18]).
//
// Scores are normalized by the static profile's mean power so one global
// threshold works across links — the role AGC scaling plays on real NICs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "core/multipath_factor.h"
#include "core/music.h"
#include "core/path_weighting.h"
#include "core/sanitize.h"
#include "core/subcarrier_weighting.h"
#include "obs/metrics.h"
#include "wifi/array.h"
#include "wifi/band.h"
#include "wifi/csi.h"

namespace mulink::core {

enum class DetectionScheme {
  kBaseline,
  kSubcarrierWeighting,
  kSubcarrierAndPathWeighting,
  // Variance statistic for MOBILE targets (Sec. III: "the mean of the RSS
  // difference is used to detect stationary targets, while the corresponding
  // variance is adopted for mobile targets" [18]). Subcarrier-weighted
  // temporal variance of per-subcarrier power over the window.
  kVarianceMobile,
};

const char* ToString(DetectionScheme scheme);

struct DetectorConfig {
  DetectionScheme scheme = DetectionScheme::kSubcarrierAndPathWeighting;
  MusicConfig music;
  PathWeightingConfig path_weighting;

  // Eq. 15 factor selection (ablation hook; the paper's scheme is the
  // product of mean multipath factor and stability ratio).
  WeightingMode weighting_mode = WeightingMode::kMeanMuTimesStability;

  // Monitoring window length M in packets (paper: ~0.5 s at 50 pkt/s).
  std::size_t window_packets = 25;

  // Gaussian smoothing (degrees) applied to pseudospectra before they are
  // compared / inverted into Eq. 17 weights. Roughly the 3-antenna array's
  // angular resolution; keeps the spectrum distance stable under the +-1
  // grid-point peak jitter of finite-sample MUSIC.
  double spectrum_smoothing_deg = 6.0;

  // How many sanitized calibration packets to retain for re-weighted
  // pseudospectrum computation (evenly subsampled from the session).
  std::size_t retained_calibration_packets = 128;

  // Aggregate the window's per-subcarrier power with the median instead of
  // the mean. The paper uses the mean of the RSS difference for stationary
  // targets; the median is the robust drop-in that survives co-channel
  // interference bursts shorter than half the window (see the
  // ablate_weighting bench for the comparison).
  bool robust_window_aggregate = true;

  // Subtract the smallest covariance eigenvalue (the spatially-white noise
  // floor) before the Bartlett comparison in the combined scheme. Removes
  // AWGN and receiver-local interference from the angular statistic.
  bool noise_floor_subtraction = true;

  // Auto-threshold margin: threshold = mean + sigma * std of empty-window
  // scores (used by CalibrateThreshold).
  double threshold_sigma = 3.0;
};

// Every buffer the scoring hot path needs, owned by the caller so repeated
// Score calls perform zero heap allocations after the first window. One
// scratch serves one detector shape at a time; sharing it across detectors
// is safe (buffers re-grow) but defeats the warm-up.
struct DetectorScratch {
  // Observability shard the scoring path reports into: per-stage timings
  // (sanitize, subcarrier weighting, MUSIC/path weighting, score) plus the
  // windows-scored and profile-stack cache counters. Null (the default) is
  // the no-op sink — scoring reads no clocks and bumps no counters.
  // Recording never changes a score.
  obs::Registry* metrics = nullptr;
  SanitizeScratch sanitize;
  std::vector<wifi::CsiPacket> sanitized;
  MultipathScratch multipath;
  std::vector<std::vector<double>> mu;
  SubcarrierWeights weights;
  std::vector<double> median_scratch;
  std::vector<double> powers;  // per-window temporal powers of one subcarrier
  linalg::CMatrix monitor_cov;
  linalg::CMatrix profile_cov;
  // Per-subcarrier covariance stack of the detector's retained calibration
  // packets, rebuilt whenever `profile_version` falls behind the detector's
  // profile (first use, UpdateProfile, or a different Detector instance).
  // Amortizes the profile-side covariance scan across windows: a warm
  // scratch combines the stack with the window's subcarrier weights in
  // O(subcarriers * antennas^2) instead of re-scanning every packet.
  SubcarrierCovarianceStack profile_stack;
  std::uint64_t profile_version = 0;
  MusicWorkspace music;
  Pseudospectrum monitor_spectrum;
  Pseudospectrum profile_spectrum;
  std::vector<double> weighted_monitor;
  std::vector<double> weighted_profile;
};

class Detector {
 public:
  // Build a detector from an empty-room calibration session. Requires >= 2
  // packets; the combined scheme additionally requires >= 2 RX antennas.
  static Detector Calibrate(const std::vector<wifi::CsiPacket>& empty_session,
                            const wifi::BandPlan& band,
                            const wifi::UniformLinearArray& array,
                            const DetectorConfig& config = {});

  // Decision statistic for a monitoring window (>= 1 packet; the combined
  // scheme needs >= 2 packets for a stable covariance). Higher = more
  // evidence of human presence.
  double Score(const std::vector<wifi::CsiPacket>& window) const;

  // Workspace variant: bit-identical to Score, but all intermediate buffers
  // live in `scratch`, so steady-state scoring is allocation-free.
  MULINK_HOT double Score(std::span<const wifi::CsiPacket> window,
                          DetectorScratch& scratch) const;

  // Score a window whose packets are already phase-sanitized (exactly as
  // SanitizePhaseInto would produce them). Callers that ingest packets
  // incrementally — SensingEngine — sanitize each packet once on arrival
  // and score overlapping windows through this entry point, instead of
  // re-sanitizing the whole window every hop. Bit-identical to Score on the
  // raw window, because sanitization is a deterministic per-packet map.
  MULINK_HOT double ScoreSanitized(std::span<const wifi::CsiPacket> window,
                                   DetectorScratch& scratch) const;

  // Per-packet multipath factors prepared once at ingest (the engine fast
  // path): mu_rows[m] points at packet m's num_subcarriers() factors and
  // medians[m] is that row's cross-subcarrier median, both in window order.
  // Like sanitization, mu extraction is a deterministic per-packet map, so
  // caching it at ingest instead of re-deriving window_packets rows every
  // hop changes no bits of the score.
  struct PreparedWindowFactors {
    std::span<const double* const> mu_rows;
    std::span<const double> medians;
    // Optional ingest-split CSI slabs, one per window packet (antenna-major
    // re rows then im rows, exactly kernels::Deinterleave's bytes — see
    // SampleCovarianceSlabsInto). When set, the combined scheme's monitor
    // covariance reads these instead of the window packets, so the caller
    // can skip materializing the window entirely (pass an empty window span
    // to ScoreSanitizedPrepared). Ignored by the other schemes.
    std::span<const double* const> csi_slabs;
  };

  // ScoreSanitized with ingest-prepared multipath factors. Bit-identical to
  // ScoreSanitized on the same window when the factors match what
  // MeasureMultipathFactorsInto / dsp::Median produce for its packets.
  MULINK_HOT double ScoreSanitizedPrepared(
      std::span<const wifi::CsiPacket> window,
      const PreparedWindowFactors& factors, DetectorScratch& scratch) const;

  // Per-packet contribution to the baseline statistic: the full-mask inner
  // body of ScoreBaseline (sum over antennas of the normalized amplitude
  // distance to the profile). A deterministic per-packet map of the RAW
  // packet, so ingest paths cache one double per ring slot and fold the
  // window's statistic with ScoreBaselinePrepared instead of re-walking
  // window_packets x antennas x subcarriers every hop. Values are tied to
  // profile_epoch(): a profile rewrite invalidates them.
  MULINK_HOT double BaselinePacketScore(const wifi::CsiPacket& packet) const;

  // Fold ingest-cached per-packet baseline scores (window order) into the
  // window statistic. Bit-identical to Score on the same raw window when
  // every entry equals BaselinePacketScore of its packet under the current
  // profile epoch. Baseline scheme only.
  double ScoreBaselinePrepared(std::span<const double> packet_scores,
                               DetectorScratch& scratch) const;

  // Monotonic epoch of the amplitude profile the baseline statistic reads;
  // bumped by Calibrate, UpdateProfile and ApplyProfile. Caches of
  // BaselinePacketScore stamped with an older epoch must recompute.
  std::uint64_t profile_epoch() const { return profile_epoch_; }

  // Degraded-mode statistic for windows with dead RX chains: only the
  // antennas set in `live_mask` (bit m = antenna m) contribute. The
  // combined scheme always falls back to subcarrier-only weighting here —
  // MUSIC needs the full ULA — and its decisions compare against
  // fallback_threshold(); the other schemes score their own statistic over
  // the live rows and keep their primary threshold (their score is a
  // per-antenna average, so the scale is preserved). For those schemes a
  // full live_mask is bit-identical to Score.
  double ScoreDegraded(std::span<const wifi::CsiPacket> window,
                       DetectorScratch& scratch,
                       std::uint32_t live_mask) const;

  // Degraded scoring of an already-sanitized window (engine ingest path).
  MULINK_HOT double ScoreSanitizedDegraded(
      std::span<const wifi::CsiPacket> window, DetectorScratch& scratch,
      std::uint32_t live_mask) const;

  // Whether Score sanitizes its input (every scheme except the baseline,
  // which is amplitude-only). When false, callers must not pre-sanitize —
  // feed raw windows to Score.
  bool UsesSanitizedInput() const {
    return config_.scheme != DetectionScheme::kBaseline;
  }

  const wifi::BandPlan& band() const { return band_; }

  // Score every consecutive window of config.window_packets in a session.
  std::vector<double> ScoreSession(
      const std::vector<wifi::CsiPacket>& session) const;

  bool Detect(const std::vector<wifi::CsiPacket>& window) const;

  // Set the operating threshold directly (e.g. from a ROC sweep).
  void SetThreshold(double threshold) {
    threshold_ = threshold;
    threshold_set_ = true;
  }
  double threshold() const { return threshold_; }
  bool has_threshold() const { return threshold_set_; }

  // Threshold for ScoreDegraded decisions. CalibrateThreshold derives it
  // from the same empty windows when the scheme is the combined one (whose
  // fallback statistic lives on a different scale); every other scheme
  // shares the primary threshold.
  void SetFallbackThreshold(double threshold) {
    fallback_threshold_ = threshold;
    fallback_threshold_set_ = true;
  }
  double fallback_threshold() const {
    return fallback_threshold_set_ ? fallback_threshold_ : threshold_;
  }

  // Derive the threshold from held-out empty-room windows:
  // mean + threshold_sigma * std of their scores.
  void CalibrateThreshold(
      const std::vector<std::vector<wifi::CsiPacket>>& empty_windows);

  // Closed-loop drift compensation for long deployments: blend a window the
  // deployment believes is empty (e.g. HMM posterior ~0 for minutes) into
  // the static profile with EWMA weight alpha. Keeps slow AGC/TX-power and
  // furniture drift from inflating false positives between manual
  // recalibrations (the paper's campaign spanned two weeks). A subset of
  // the retained calibration packets is rotated out so the combined
  // scheme's angular profile tracks too.
  void UpdateProfile(const std::vector<wifi::CsiPacket>& empty_window,
                     double alpha = 0.05);

  // In-place recalibration entry points for core/calibration's ladder. Both
  // run between windows, never mid-score — the caller owns that contract.
  //
  // Overwrite the static profile with posterior means (flattened row-major
  // [antenna][subcarrier] spans) and re-derive the normalization scales.
  // Allocation-free: the double-buffered swap writes the staged values over
  // the active profile without touching packet buffers or the threshold.
  void ApplyProfile(std::span<const double> power,
                    std::span<const double> amplitude,
                    std::span<const double> variance);

  // Rotate staged sanitized quiet packets into the retained calibration set
  // (oldest first, reusing each slot's CSI buffer) and recompute the static
  // pseudospectrum and Eq. 17 path weights, so the combined scheme's
  // angular profile follows the recalibrated environment. Cold path; no-op
  // for single-antenna links or an empty `staged`.
  void RefreshAngularProfile(std::span<const wifi::CsiPacket> staged);

  // Calibrated shape (rows / columns of every CSI matrix this detector
  // accepts).
  std::size_t num_antennas() const { return num_antennas_; }
  std::size_t num_subcarriers() const { return num_subcarriers_; }

  // Introspection for the characterization benches.
  const Pseudospectrum& static_spectrum() const { return static_spectrum_; }
  const PathWeights& path_weights() const { return path_weights_; }
  const std::vector<std::vector<double>>& profile_power() const {
    return profile_power_;
  }
  const DetectorConfig& config() const { return config_; }

 private:
  Detector(const wifi::BandPlan& band, const wifi::UniformLinearArray& array,
           const DetectorConfig& config);

  // All antennas usable (the non-degraded case; bit m = antenna m).
  std::uint32_t FullAntennaMask() const;

  double ScoreBaseline(std::span<const wifi::CsiPacket> window,
                       std::uint32_t live_mask) const;
  // The scheme bodies below take an already-sanitized window; only antennas
  // in live_mask contribute (the full mask reproduces the clean statistic
  // bit for bit).
  double DispatchSanitized(std::span<const wifi::CsiPacket> sanitized,
                           DetectorScratch& scratch,
                           const PreparedWindowFactors* prepared) const;
  double DispatchSanitizedDegraded(std::span<const wifi::CsiPacket> sanitized,
                                   DetectorScratch& scratch,
                                   std::uint32_t live_mask) const;
  // Eq. 13–15 window weights into scratch.weights — from the prepared
  // per-packet factors when given, else measured from the sanitized window.
  void ComputeWindowWeights(std::span<const wifi::CsiPacket> sanitized,
                            DetectorScratch& scratch,
                            const PreparedWindowFactors* prepared) const;
  double ScoreSubcarrierWeighting(std::span<const wifi::CsiPacket> sanitized,
                                  DetectorScratch& scratch,
                                  std::uint32_t live_mask,
                                  const PreparedWindowFactors* prepared) const;
  double ScoreCombined(std::span<const wifi::CsiPacket> sanitized,
                       DetectorScratch& scratch,
                       const PreparedWindowFactors* prepared) const;
  double ScoreVarianceMobile(std::span<const wifi::CsiPacket> sanitized,
                             DetectorScratch& scratch, std::uint32_t live_mask,
                             const PreparedWindowFactors* prepared) const;

  wifi::BandPlan band_;
  wifi::UniformLinearArray array_;
  DetectorConfig config_;

  std::size_t num_antennas_ = 0;
  std::size_t num_subcarriers_ = 0;

  // Static profile: mean power / amplitude / temporal variance per
  // (antenna, subcarrier).
  std::vector<std::vector<double>> profile_power_;
  std::vector<std::vector<double>> profile_amplitude_;
  std::vector<std::vector<double>> profile_variance_;
  // Mean per-antenna profile power (normalization scale).
  double profile_scale_power_ = 0.0;
  double profile_scale_amplitude_ = 0.0;

  std::vector<wifi::CsiPacket> retained_calibration_;
  std::size_t retained_rotation_ = 0;
  // Process-unique version of retained_calibration_'s contents; compared
  // against DetectorScratch::profile_version to invalidate its cached
  // covariance stack. Unique across Detector instances so one scratch can
  // be shared between detectors without cross-talk.
  std::uint64_t profile_version_ = 0;
  // Epoch of profile_amplitude_/profile_scale_amplitude_ (the baseline
  // statistic's inputs); drawn from the same process-unique counter as
  // profile_version_ so sharing a scratch across detectors stays safe.
  std::uint64_t profile_epoch_ = 0;
  Pseudospectrum static_spectrum_;
  PathWeights path_weights_;

  double threshold_ = 0.0;
  bool threshold_set_ = false;
  double fallback_threshold_ = 0.0;
  bool fallback_threshold_set_ = false;
};

}  // namespace mulink::core
