#include "core/roc.h"
// mulink-lint: cold-tu(campaign ROC analysis, runs after scoring)

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace mulink::core {

double RocCurve::Auc() const {
  MULINK_REQUIRE(points.size() >= 2, "RocCurve::Auc: need >= 2 points");
  double area = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dx =
        points[i].false_positive_rate - points[i - 1].false_positive_rate;
    const double avg_y =
        0.5 * (points[i].true_positive_rate + points[i - 1].true_positive_rate);
    area += dx * avg_y;
  }
  return area;
}

RocPoint RocCurve::BestBalancedAccuracy() const {
  MULINK_REQUIRE(!points.empty(), "RocCurve: empty curve");
  RocPoint best = points.front();
  double best_acc = BalancedAccuracy(best);
  for (const auto& p : points) {
    const double acc = BalancedAccuracy(p);
    if (acc > best_acc) {
      best_acc = acc;
      best = p;
    }
  }
  return best;
}

RocPoint RocCurve::PointAtFalsePositive(double max_fpr) const {
  MULINK_REQUIRE(!points.empty(), "RocCurve: empty curve");
  RocPoint best{std::numeric_limits<double>::infinity(), 0.0, 0.0};
  bool found = false;
  for (const auto& p : points) {
    if (p.false_positive_rate <= max_fpr &&
        (!found || p.true_positive_rate > best.true_positive_rate)) {
      best = p;
      found = true;
    }
  }
  return found ? best : points.front();
}

double RocCurve::TruePositiveAt(double fpr) const {
  MULINK_REQUIRE(points.size() >= 2, "RocCurve: need >= 2 points");
  // Step semantics: the best TPR achievable without exceeding the FPR budget
  // (ROC curves are step functions of the threshold; interpolating between
  // operating points would promise rates no threshold delivers).
  return PointAtFalsePositive(fpr).true_positive_rate;
}

RocCurve ComputeRoc(const std::vector<double>& positive_scores,
                    const std::vector<double>& negative_scores) {
  MULINK_REQUIRE(!positive_scores.empty() && !negative_scores.empty(),
                 "ComputeRoc: need scores from both classes");

  std::vector<double> thresholds;
  thresholds.reserve(positive_scores.size() + negative_scores.size() + 2);
  thresholds.insert(thresholds.end(), positive_scores.begin(),
                    positive_scores.end());
  thresholds.insert(thresholds.end(), negative_scores.begin(),
                    negative_scores.end());
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  RocCurve curve;
  curve.points.reserve(thresholds.size() + 2);

  const auto rate_above = [](const std::vector<double>& scores, double thr) {
    std::size_t count = 0;
    for (double s : scores) {
      if (s >= thr) ++count;
    }
    return static_cast<double>(count) / static_cast<double>(scores.size());
  };

  // Leading point: threshold above every score -> (0, 0).
  curve.points.push_back(
      {thresholds.front() + 1.0, 0.0, 0.0});
  for (double thr : thresholds) {
    curve.points.push_back(
        {thr, rate_above(positive_scores, thr), rate_above(negative_scores, thr)});
  }
  return curve;
}

double BalancedAccuracy(const RocPoint& point) {
  return 0.5 * (point.true_positive_rate + (1.0 - point.false_positive_rate));
}

}  // namespace mulink::core
