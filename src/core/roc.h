// Receiver Operating Characteristic computation for the evaluation
// (paper Sec. V, Fig. 7) and for calibrating operating thresholds.
#pragma once

#include <vector>

namespace mulink::core {

struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   // TP: detected / human-present windows
  double false_positive_rate = 0.0;  // FP: detected / human-absent windows
};

struct RocCurve {
  // Sorted by descending threshold, i.e. from (0,0) toward (1,1).
  std::vector<RocPoint> points;

  // Area under the curve via trapezoidal integration.
  double Auc() const;

  // Operating point maximizing balanced accuracy (TPR + (1 - FPR)) / 2 —
  // the "balanced detection accuracy" the paper reports.
  RocPoint BestBalancedAccuracy() const;

  // Highest-TPR point whose FPR does not exceed `max_fpr`.
  RocPoint PointAtFalsePositive(double max_fpr) const;

  // TPR linearly interpolated at the given FPR.
  double TruePositiveAt(double fpr) const;
};

// Build the ROC from decision scores; higher score = more human-like.
// Thresholds sweep over all distinct observed scores.
RocCurve ComputeRoc(const std::vector<double>& positive_scores,
                    const std::vector<double>& negative_scores);

// Balanced accuracy of one operating point: (TPR + (1 - FPR)) / 2.
double BalancedAccuracy(const RocPoint& point);

}  // namespace mulink::core
