#include "core/hmm.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/assert.h"
#include "dsp/stats.h"

namespace mulink::core {

namespace {

constexpr double kScoreFloor = 1e-12;

double GaussianLogPdf(double x, double mean, double sigma) {
  const double z = (x - mean) / sigma;
  return -0.5 * z * z - std::log(sigma) - 0.9189385332046727;  // ln sqrt(2 pi)
}

// log(exp(a) + exp(b)) without overflow.
double LogSumExp(double a, double b) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

}  // namespace

namespace {

// Fitted (mean, sigma) of log-scores with a sigma floor.
std::pair<double, double> FitLogGaussian(const std::vector<double>& scores) {
  std::vector<double> logs;
  // mulink-lint: allow(alloc): HMM fit, calibration path
  logs.reserve(scores.size());
  for (double s : scores) {
    MULINK_REQUIRE(s >= 0.0, "PresenceHmm: scores must be non-negative");
    // mulink-lint: allow(alloc): HMM fit, calibration path
    logs.push_back(std::log(std::max(s, kScoreFloor)));
  }
  return {dsp::Mean(logs), std::max(dsp::StdDev(logs), 0.05)};
}

}  // namespace

PresenceHmm::PresenceHmm(double empty_mean, double empty_sigma,
                         double occupied_mean, double occupied_sigma,
                         const HmmConfig& config)
    : empty_log_mean_(empty_mean),
      empty_log_sigma_(empty_sigma),
      occupied_log_mean_(occupied_mean),
      occupied_log_sigma_(occupied_sigma),
      config_(config) {}

PresenceHmm PresenceHmm::FitFromLabelledScores(
    const std::vector<double>& empty_scores,
    const std::vector<double>& occupied_scores, const HmmConfig& config) {
  MULINK_REQUIRE(empty_scores.size() >= 2 && occupied_scores.size() >= 2,
                 "PresenceHmm: need >= 2 scores per state to fit");
  MULINK_REQUIRE(config.transition_prob > 0.0 && config.transition_prob < 1.0,
                 "PresenceHmm: transition prob must be in (0,1)");
  const auto [empty_mean, empty_sigma] = FitLogGaussian(empty_scores);
  const auto [occ_mean, occ_sigma] = FitLogGaussian(occupied_scores);
  return PresenceHmm(empty_mean, empty_sigma, occ_mean, occ_sigma, config);
}

PresenceHmm PresenceHmm::FitFromEmptyScores(
    const std::vector<double>& empty_scores, const HmmConfig& config) {
  MULINK_REQUIRE(empty_scores.size() >= 2,
                 "PresenceHmm: need >= 2 empty scores to fit");
  MULINK_REQUIRE(config.transition_prob > 0.0 && config.transition_prob < 1.0,
                 "PresenceHmm: transition prob must be in (0,1)");
  MULINK_REQUIRE(config.occupied_shift_sigmas > 0.0,
                 "PresenceHmm: occupied shift must be > 0");
  MULINK_REQUIRE(config.occupied_sigma_scale >= 1.0,
                 "PresenceHmm: occupied sigma scale must be >= 1");
  MULINK_REQUIRE(config.outlier_prob >= 0.0 && config.outlier_prob < 1.0,
                 "PresenceHmm: outlier prob must be in [0,1)");
  MULINK_REQUIRE(config.outlier_log_max > config.outlier_log_min,
                 "PresenceHmm: empty outlier log range");
  const auto [mean, sigma] = FitLogGaussian(empty_scores);
  return PresenceHmm(mean, sigma,
                     mean + config.occupied_shift_sigmas * sigma,
                     config.occupied_sigma_scale * sigma, config);
}

void PresenceHmm::RefitEmptyEmission(double log_mean, double log_sigma) {
  empty_log_mean_ = log_mean;
  empty_log_sigma_ = std::max(log_sigma, 0.05);  // FitLogGaussian's floor
  occupied_log_mean_ =
      empty_log_mean_ + config_.occupied_shift_sigmas * empty_log_sigma_;
  occupied_log_sigma_ = config_.occupied_sigma_scale * empty_log_sigma_;
}

double PresenceHmm::LogLikelihoodEmpty(double score) const {
  const double x = std::log(std::max(score, kScoreFloor));
  const double gauss = GaussianLogPdf(x, empty_log_mean_, empty_log_sigma_);
  if (config_.outlier_prob <= 0.0) return gauss;
  const double outlier =
      -std::log(config_.outlier_log_max - config_.outlier_log_min);
  return LogSumExp(std::log1p(-config_.outlier_prob) + gauss,
                   std::log(config_.outlier_prob) + outlier);
}

double PresenceHmm::LogLikelihoodOccupied(double score) const {
  const double x = std::log(std::max(score, kScoreFloor));
  const double gauss =
      GaussianLogPdf(x, occupied_log_mean_, occupied_log_sigma_);
  if (config_.outlier_prob <= 0.0) return gauss;
  const double outlier =
      -std::log(config_.outlier_log_max - config_.outlier_log_min);
  return LogSumExp(std::log1p(-config_.outlier_prob) + gauss,
                   std::log(config_.outlier_prob) + outlier);
}

std::vector<double> PresenceHmm::PosteriorOccupied(
    const std::vector<double>& scores) const {
  MULINK_REQUIRE(!scores.empty(), "PresenceHmm: empty score sequence");
  const std::size_t n = scores.size();
  const double log_stay = std::log1p(-config_.transition_prob);
  const double log_switch = std::log(config_.transition_prob);

  // Forward pass in log domain: alpha[t][s].
  std::vector<std::array<double, 2>> alpha(n), beta(n);
  alpha[0][0] = std::log(1.0 - config_.occupancy_prior) +
                LogLikelihoodEmpty(scores[0]);
  alpha[0][1] =
      std::log(config_.occupancy_prior) + LogLikelihoodOccupied(scores[0]);
  for (std::size_t t = 1; t < n; ++t) {
    const double to_empty =
        LogSumExp(alpha[t - 1][0] + log_stay, alpha[t - 1][1] + log_switch);
    const double to_occupied =
        LogSumExp(alpha[t - 1][1] + log_stay, alpha[t - 1][0] + log_switch);
    alpha[t][0] = to_empty + LogLikelihoodEmpty(scores[t]);
    alpha[t][1] = to_occupied + LogLikelihoodOccupied(scores[t]);
  }

  // Backward pass.
  beta[n - 1][0] = 0.0;
  beta[n - 1][1] = 0.0;
  for (std::size_t ti = n - 1; ti > 0; --ti) {
    const std::size_t t = ti - 1;
    const double from_empty_next =
        LogLikelihoodEmpty(scores[t + 1]) + beta[t + 1][0];
    const double from_occ_next =
        LogLikelihoodOccupied(scores[t + 1]) + beta[t + 1][1];
    beta[t][0] = LogSumExp(log_stay + from_empty_next,
                           log_switch + from_occ_next);
    beta[t][1] = LogSumExp(log_stay + from_occ_next,
                           log_switch + from_empty_next);
  }

  std::vector<double> posterior(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double log_empty = alpha[t][0] + beta[t][0];
    const double log_occ = alpha[t][1] + beta[t][1];
    const double log_z = LogSumExp(log_empty, log_occ);
    posterior[t] = std::exp(log_occ - log_z);
  }
  return posterior;
}

std::vector<bool> PresenceHmm::Decode(const std::vector<double>& scores) const {
  MULINK_REQUIRE(!scores.empty(), "PresenceHmm: empty score sequence");
  const std::size_t n = scores.size();
  const double log_stay = std::log1p(-config_.transition_prob);
  const double log_switch = std::log(config_.transition_prob);

  std::vector<std::array<double, 2>> delta(n);
  std::vector<std::array<int, 2>> backpointer(n);
  delta[0][0] = std::log(1.0 - config_.occupancy_prior) +
                LogLikelihoodEmpty(scores[0]);
  delta[0][1] =
      std::log(config_.occupancy_prior) + LogLikelihoodOccupied(scores[0]);
  for (std::size_t t = 1; t < n; ++t) {
    for (int s = 0; s < 2; ++s) {
      const double from_same = delta[t - 1][static_cast<std::size_t>(s)] +
                               log_stay;
      const double from_other =
          delta[t - 1][static_cast<std::size_t>(1 - s)] + log_switch;
      const bool stay = from_same >= from_other;
      const double emit = s == 0 ? LogLikelihoodEmpty(scores[t])
                                 : LogLikelihoodOccupied(scores[t]);
      delta[t][static_cast<std::size_t>(s)] =
          (stay ? from_same : from_other) + emit;
      backpointer[t][static_cast<std::size_t>(s)] = stay ? s : 1 - s;
    }
  }

  std::vector<bool> states(n);
  int current = delta[n - 1][1] > delta[n - 1][0] ? 1 : 0;
  states[n - 1] = current == 1;
  for (std::size_t ti = n - 1; ti > 0; --ti) {
    current = backpointer[ti][static_cast<std::size_t>(current)];
    states[ti - 1] = current == 1;
  }
  return states;
}

PresenceHmm::Filter::Filter(const PresenceHmm& hmm)
    : hmm_(hmm), posterior_(hmm.config().occupancy_prior) {}

void PresenceHmm::Filter::Reset() {
  posterior_ = hmm_.config().occupancy_prior;
}

double PresenceHmm::Filter::Update(double score) {
  const double p = hmm_.config().transition_prob;
  // Predict.
  const double prior_occ = posterior_ * (1.0 - p) + (1.0 - posterior_) * p;
  // Update.
  const double like_occ = std::exp(hmm_.LogLikelihoodOccupied(score));
  const double like_empty = std::exp(hmm_.LogLikelihoodEmpty(score));
  const double numerator = prior_occ * like_occ;
  const double denominator =
      numerator + (1.0 - prior_occ) * like_empty;
  posterior_ = denominator > 0.0 ? numerator / denominator : prior_occ;
  return posterior_;
}

}  // namespace mulink::core
