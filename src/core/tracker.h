// Constant-velocity Kalman filter over 2-D position measurements — smooths
// the per-window location estimates of the RTI imager (or any localizer)
// into a track, the "tracking" half of detect/localize/track pipelines.
#pragma once

#include <array>

#include "geometry/vec2.h"

namespace mulink::core {

struct TrackerConfig {
  // Process noise: white acceleration with this standard deviation (m/s^2).
  double acceleration_sigma = 0.3;
  // Measurement noise standard deviation (m) of the position fixes.
  double measurement_sigma_m = 0.5;
  // Initial velocity uncertainty (m/s).
  double initial_speed_sigma = 1.5;
};

class PositionTracker {
 public:
  explicit PositionTracker(TrackerConfig config = {});

  // Feed a position fix taken dt_s seconds after the previous one (the
  // first call initializes the track). Returns the filtered position.
  geometry::Vec2 Update(geometry::Vec2 measurement, double dt_s);

  // Predict the position dt_s ahead of the last update without consuming a
  // measurement (for coasting through missed detections).
  geometry::Vec2 Predict(double dt_s) const;

  bool initialized() const { return initialized_; }
  geometry::Vec2 position() const { return {state_[0], state_[1]}; }
  geometry::Vec2 velocity() const { return {state_[2], state_[3]}; }

  void Reset();

 private:
  TrackerConfig config_;
  bool initialized_ = false;
  // State [x, y, vx, vy] and covariance (row-major 4x4).
  std::array<double, 4> state_{};
  std::array<double, 16> covariance_{};
};

}  // namespace mulink::core
