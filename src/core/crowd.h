// Device-free crowd counting in the style of Electronic Frog Eye (Xi et
// al., INFOCOM'14 — the paper's reference [29]).
//
// The key observable: more people perturb more of the channel. The metric
// here is the "perturbed fraction" — the share of (antenna, subcarrier)
// cells whose windowed variance significantly exceeds the calibrated
// empty-room variance — which grows monotonically (and saturates) with the
// number of people. A tiny monotone regression maps the fraction to a count.
#pragma once

#include <cstddef>
#include <vector>

#include "wifi/csi.h"

namespace mulink::core {

struct CrowdConfig {
  // A cell counts as perturbed when its window variance exceeds this factor
  // times its calibrated empty-room variance.
  double variance_factor = 3.0;
};

class CrowdEstimator {
 public:
  // Calibrate the per-cell empty-room variance from an empty session.
  static CrowdEstimator Calibrate(const std::vector<wifi::CsiPacket>& empty_session,
                                  const CrowdConfig& config = {});

  // Fraction of cells perturbed in a monitoring window (0..1).
  double PerturbedFraction(const std::vector<wifi::CsiPacket>& window) const;

  // Fit the fraction -> count mapping from labelled training windows
  // (count, window). Uses the saturating model f = fmax (1 - exp(-c n))
  // grid-fitted over c, anchored at the measured singleton fraction.
  void Train(const std::vector<std::pair<std::size_t,
                                         std::vector<wifi::CsiPacket>>>& labelled);

  // Estimated head count for a window (requires Train; rounds to the
  // nearest non-negative integer).
  std::size_t EstimateCount(const std::vector<wifi::CsiPacket>& window) const;

  bool trained() const { return trained_; }
  double fraction_scale() const { return fraction_scale_; }
  double rate() const { return rate_; }

 private:
  CrowdEstimator() = default;

  CrowdConfig config_;
  std::vector<std::vector<double>> empty_variance_;  // [antenna][subcarrier]
  std::size_t num_antennas_ = 0;
  std::size_t num_subcarriers_ = 0;

  bool trained_ = false;
  double fraction_scale_ = 1.0;  // fmax of the saturating model
  double rate_ = 0.5;            // c of the saturating model
};

}  // namespace mulink::core
