// Sharded multi-link serving core.
//
// ServeCore turns the single-thread SensingEngine into a fleet-scale
// service: links are hashed onto shards, each shard owns a SensingEngine
// workspace pinned to one worker thread, and a single demux thread routes
// CSI frames into bounded lock-free ingest queues (spsc_ring.h). All
// cross-thread traffic flows through those queues — shard state (roster,
// LRU list, decision log, metrics) is worker-owned and needs no locks.
//
// Link lifecycle: links are admitted lazily on their first routed frame
// against a registered profile (a channel-config group sharing one
// immutable calibrated Detector and, through the engine's shared scratch,
// one warm scoring workspace per shard). A full roster evicts the
// least-recently-used link; an unhealthy link (quarantine storm or an
// all-dead antenna set) is evicted with a readmission cooldown counted in
// ITS OWN frames, so the eviction point is a deterministic function of the
// link's stream alone.
//
// Determinism contract: the demux preserves per-link frame order (one
// producer, FIFO queues), and each link's decisions depend only on its own
// frames, so with back-pressure kBlock (forced by deterministic mode) the
// per-link decision sequences — and the link-id-major merged log — are
// bit-identical for ANY shard count. The one topology-dependent exception
// is capacity (LRU) eviction, which depends on which links share a shard;
// the contract holds whenever max_resident_per_shard is not exceeded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "core/engine.h"
#include "serve/spsc_ring.h"

namespace mulink::serve {

// What the demux does when a shard's ingest queue is full.
enum class BackPressure : std::uint8_t {
  kBlock,         // spin until the worker frees a slot (no frame loss)
  kDropOldest,    // discard the queue's oldest frame, then enqueue
  kRejectNewest,  // refuse the incoming frame
};

const char* ToString(BackPressure policy);

struct ServeConfig {
  std::size_t num_shards = 1;
  // Per-shard ingest queue capacity (rounded up to a power of two).
  std::size_t queue_capacity = 1024;
  BackPressure policy = BackPressure::kDropOldest;
  // Forces kBlock so no frame is ever lost — with per-link FIFO order this
  // makes per-link decision logs bit-identical across shard counts.
  bool deterministic = false;
  // Roster cap per shard; 0 = unbounded. Beyond it the LRU link is evicted
  // to make room (its engine slot is recycled).
  std::size_t max_resident_per_shard = 0;
  // Health-based eviction: links whose guard quarantined more than
  // max_quarantine_ratio of their frames (after health_check_min_frames),
  // or whose RX chains are all dead, are evicted and barred for
  // readmit_after_frames of their OWN subsequent frames.
  bool evict_unhealthy = false;
  double max_quarantine_ratio = 0.5;
  std::uint64_t health_check_min_frames = 64;
  std::uint64_t readmit_after_frames = 256;
  // Record every decision into per-shard logs (MergedDecisionLog). Off for
  // pure-throughput runs: the log is the one hot-path sink that grows.
  bool collect_decision_log = false;
  // Per-link streaming parameters (window, hop, HMM, guard). Calibration
  // is forced OFF for shared-profile links and ON as-given for profiles
  // registered with per_link_calibration.
  core::StreamingConfig stream;
};

struct DecisionRecord {
  std::uint64_t link_id = 0;
  core::PresenceDecision decision;
};

// Post-run, per-shard totals. Producer-side fields (routed/dropped/
// rejected) are written by the demux thread, the rest by the shard worker;
// read them after Drain()/Stop().
struct ShardStats {
  std::uint64_t frames_routed = 0;
  std::uint64_t frames_dropped = 0;   // drop-oldest displacements
  std::uint64_t frames_rejected = 0;  // reject-newest refusals
  std::uint64_t frames_processed = 0;
  std::uint64_t decisions = 0;
  std::uint64_t links_admitted = 0;
  std::uint64_t links_evicted = 0;
  std::uint64_t links_readmitted = 0;
  std::size_t resident_links = 0;
  // Queue depth observed at each worker poll: log2 buckets (bucket i counts
  // polls with depth in [2^i, 2^(i+1)), bucket 0 includes depth 0..1) plus
  // the max. Percentiles fall out of the bucket CDF.
  static constexpr std::size_t kDepthBuckets = 20;
  std::uint64_t depth_buckets[kDepthBuckets] = {};
  std::uint64_t depth_samples = 0;
  std::size_t max_depth = 0;
};

class ServeCore {
 public:
  explicit ServeCore(ServeConfig config);
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  // Register a channel-config group. Links admitted against the profile
  // share `detector` (immutable) unless per_link_calibration is set, in
  // which case each admitted link gets its own mutable copy and runs the
  // config.stream recalibration ladder in-shard — hot recalibration never
  // stalls other shards (or other links: the ladder swap is per-link).
  // Must be called before Start().
  std::uint32_t RegisterProfile(std::shared_ptr<const core::Detector> detector,
                                std::vector<double> empty_scores,
                                bool per_link_calibration = false);

  std::size_t num_shards() const { return config_.num_shards; }
  // Stable link→shard routing (splitmix64 of the link id, mod shards).
  std::size_t ShardOf(std::uint64_t link_id) const;

  void Start();

  // Demux entry point — single producer thread. Routes the frame to its
  // link's shard under the configured back-pressure policy. Returns false
  // iff the frame was rejected (kRejectNewest on a full queue).
  MULINK_HOT bool Submit(std::uint64_t link_id, std::uint32_t profile_id,
                         const wifi::CsiPacket& packet);

  // Block until every submitted frame has been consumed (workers stay up).
  void Drain();

  // Drain, stop and join all workers. Idempotent; called by the dtor.
  void Stop();

  // Per-shard totals (call after Drain() or Stop()).
  std::vector<ShardStats> Stats() const;

  // All decision records, link-id-major with per-link arrival order
  // preserved — the determinism artifact. Empty unless
  // config.collect_decision_log. Call after Stop()/Drain().
  std::vector<DecisionRecord> MergedDecisionLog() const;

  // Router registry + each shard's registry + each shard's engine links,
  // merged in shard order (deterministic for a fixed ingest sequence).
  obs::Registry AggregateMetrics() const;

 private:
  struct Frame {
    std::uint64_t link_id = 0;
    std::uint32_t profile_id = 0;
    wifi::CsiPacket packet;
  };

  struct Profile {
    std::shared_ptr<const core::Detector> detector;
    std::vector<double> empty_scores;
    bool per_link_calibration = false;
  };

  struct Shard;

  void WorkerLoop(std::stop_token stop, Shard& shard);
  MULINK_HOT void ProcessFrame(Shard& shard, const Frame& frame);
  std::size_t AdmitLink(Shard& shard, std::uint64_t link_id,
                        std::uint32_t profile_id);
  void EvictEntry(Shard& shard, std::uint32_t entry_idx,
                  std::uint64_t cooldown_frames);

  ServeConfig config_;
  BackPressure effective_policy_;
  std::vector<Profile> profiles_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Demux-owned registry for routing counters (workers never touch it).
  obs::Registry router_metrics_;
  std::vector<std::jthread> workers_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace mulink::serve
